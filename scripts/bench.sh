#!/usr/bin/env bash
# Builds the perf benchmarks in Release and records the JSON baselines the
# repo tracks across PRs:
#   BENCH_gemm.json — kernel micro-benchmarks (bench/perf_layers.cpp);
#                     compare BM_GemmNN vs BM_GemmRefNN for the packed
#                     micro-kernel speedup over the pre-optimization loops.
#   BENCH_mc.json   — Monte-Carlo inference throughput
#                     (bench/perf_mc_inference.cpp); compare BM_Mc*Batched
#                     vs BM_Mc*Serial at the same T.
#   BENCH_serve.json— serving-layer overhead (bench/perf_serve.cpp);
#                     compare BM_SessionPredict* against the raw
#                     BM_RawMcForwardBatched*/BM_Mc*Batched numbers,
#                     BM_CompiledVsGraph*/{T,1} (fused zero-alloc plans)
#                     against the same benchmark's /{T,0} graph baseline,
#                     BM_SessionPredictCrossbarTiled (64×64 tiles,
#                     bit-sliced columns, shared ADCs) against the
#                     monolithic BM_SessionPredictCrossbar baseline, and
#                     the integer-execution pairs — BM_SessionPredict{Lstm,}
#                     QuantInt8/8 vs the matching QuantSim/8 rows — for the
#                     kQuantInt8 backend's speedup on dense-heavy models
#                     (the acceptance target is ≥2× on the LSTM pair), and
#                     the tracing tax — BM_SessionPredictLstmSmallTraced/8
#                     (serve::trace enabled, 1-in-64 head sampling, live
#                     per-request context) vs the untraced
#                     BM_SessionPredictLstmSmall/8 — which must stay
#                     within 2% (docs/OBSERVABILITY.md).
#
# Usage: scripts/bench.sh [build-dir]   (default: build-bench)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build-bench}"

cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
cmake --build "$build_dir" -j"$(nproc)" --target perf_layers perf_mc_inference perf_serve

min_time="${RIPPLE_BENCH_MIN_TIME:-0.5}"

"$build_dir/perf_layers" \
  --benchmark_min_time="$min_time" \
  --benchmark_out_format=json \
  --benchmark_out="$repo_root/BENCH_gemm.json"

"$build_dir/perf_mc_inference" \
  --benchmark_min_time="$min_time" \
  --benchmark_out_format=json \
  --benchmark_out="$repo_root/BENCH_mc.json"

"$build_dir/perf_serve" \
  --benchmark_min_time="$min_time" \
  --benchmark_out_format=json \
  --benchmark_out="$repo_root/BENCH_serve.json"

echo "wrote $repo_root/BENCH_gemm.json, $repo_root/BENCH_mc.json and $repo_root/BENCH_serve.json"
