#include "quant/bitcodec.h"

#include <algorithm>

#include "tensor/check.h"

namespace ripple::quant {

int64_t flip_random_bits(std::vector<int32_t>& codes, int bits, float p,
                         Rng& rng) {
  RIPPLE_CHECK(bits >= 1 && bits <= 31) << "bits out of range";
  RIPPLE_CHECK(p >= 0.0f && p <= 1.0f) << "flip probability out of range";
  if (p == 0.0f || codes.empty()) return 0;
  int64_t flipped = 0;
  for (int32_t& code : codes) {
    for (int b = 0; b < bits; ++b) {
      if (rng.bernoulli(p)) {
        code ^= (1 << b);
        ++flipped;
      }
    }
  }
  return flipped;
}

void flip_exact_bits(std::vector<int32_t>& codes, int bits, int64_t count,
                     Rng& rng) {
  RIPPLE_CHECK(bits >= 1 && bits <= 31) << "bits out of range";
  const int64_t total = static_cast<int64_t>(codes.size()) * bits;
  RIPPLE_CHECK(count >= 0 && count <= total)
      << "cannot flip " << count << " of " << total << " bits";
  if (count == 0) return;
  // Sample positions without replacement via partial Fisher-Yates over the
  // flattened (code, bit) index space.
  std::vector<int64_t> positions(static_cast<size_t>(total));
  for (int64_t i = 0; i < total; ++i) positions[static_cast<size_t>(i)] = i;
  for (int64_t i = 0; i < count; ++i) {
    const int64_t j = rng.randint(i, total - 1);
    std::swap(positions[static_cast<size_t>(i)],
              positions[static_cast<size_t>(j)]);
    const int64_t pos = positions[static_cast<size_t>(i)];
    codes[static_cast<size_t>(pos / bits)] ^=
        (1 << static_cast<int>(pos % bits));
  }
}

int64_t hamming_distance(const std::vector<int32_t>& a,
                         const std::vector<int32_t>& b, int bits) {
  RIPPLE_CHECK(a.size() == b.size()) << "code vectors differ in length";
  const uint32_t mask = bits >= 31 ? 0x7fffffffu : ((1u << bits) - 1u);
  int64_t dist = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    uint32_t x = (static_cast<uint32_t>(a[i]) ^ static_cast<uint32_t>(b[i])) &
                 mask;
    dist += __builtin_popcount(x);
  }
  return dist;
}

}  // namespace ripple::quant
