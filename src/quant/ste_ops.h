// Straight-through-estimator (STE) autograd ops for quantization-aware
// training.
#pragma once

#include "autograd/variable.h"

namespace ripple::quant {

/// Binarization w_b = sign(w)·alpha with clipped STE backward
/// (gradient passes where |w| <= 1, the IR-Net clip region).
autograd::Variable binarize_ste(const autograd::Variable& w, float alpha);

/// Symmetric uniform fake quantization:
///   q = clamp(round(x/scale), -qmax, qmax) · scale,  qmax = 2^(bits-1)-1.
/// Backward passes gradient where |x| <= qmax·scale.
autograd::Variable fake_quant_ste(const autograd::Variable& x, float scale,
                                  int bits);

/// PACT activation quantization: y = clamp(x, 0, α) quantized to `bits`
/// levels with Δ = α / (2^bits − 1). Gradients: dx passes where 0 < x < α;
/// dα collects the gradient of the clipped region (x >= α).
autograd::Variable pact_quant(const autograd::Variable& x,
                              const autograd::Variable& alpha, int bits);

}  // namespace ripple::quant
