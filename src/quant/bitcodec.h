// Bit-level manipulation of deployed weight codes.
//
// Retention faults and programming errors in NVM cells manifest as bit
// flips in the stored weight codes (§IV-A2). flip_random_bits applies an
// i.i.d. per-bit flip with probability p across every bit of every code —
// the fault model behind the paper's "x% bit flips" sweeps.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/random.h"

namespace ripple::quant {

/// Flips each of the low `bits` bits of every code independently with
/// probability `p`. Returns the number of bits flipped.
int64_t flip_random_bits(std::vector<int32_t>& codes, int bits, float p,
                         Rng& rng);

/// Flips exactly `count` uniformly chosen (code, bit) positions without
/// replacement (used for deterministic fault-count experiments).
void flip_exact_bits(std::vector<int32_t>& codes, int bits, int64_t count,
                     Rng& rng);

/// Number of differing bits between two code vectors (restricted to the low
/// `bits` bits).
int64_t hamming_distance(const std::vector<int32_t>& a,
                         const std::vector<int32_t>& b, int bits);

}  // namespace ripple::quant
