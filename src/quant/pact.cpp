#include "quant/pact.h"

#include "nn/activation.h"
#include "quant/ste_ops.h"

namespace ripple::quant {

PactActivation::PactActivation(int bits, float alpha_init,
                               nn::ActivationNoisePtr noise)
    : bits_(bits), noise_(std::move(noise)) {
  RIPPLE_CHECK(alpha_init > 0.0f) << "PACT alpha must start positive";
  alpha_ = &register_parameter("alpha", Tensor::scalar(alpha_init),
                               autograd::ParamKind::kOther);
}

autograd::Variable PactActivation::forward(const autograd::Variable& x) {
  autograd::Variable y = x;
  if (noise_ != nullptr && noise_->enabled)
    y = nn::apply_activation_noise(y, *noise_);
  // Keep alpha positive: hardware clipping cannot be negative. The check in
  // pact_quant throws if training drives it <= 0; clamp defensively first.
  if (alpha_->var.value().item() < 1e-3f)
    alpha_->var.value().fill(1e-3f);
  return pact_quant(y, alpha_->var, bits_);
}

float PactActivation::alpha() const { return alpha_->var.value().item(); }

}  // namespace ripple::quant
