// PACT activation quantization layer (Choi et al., arXiv:1805.06085).
//
// Learns the clipping threshold α jointly with the network; activations are
// clipped to [0, α] and uniformly quantized to 2^bits − 1 levels. Used for
// the U-Net's 4-bit activations and M5's 8-bit activations.
#pragma once

#include "nn/layer.h"
#include "nn/noise.h"

namespace ripple::quant {

class PactActivation : public nn::Layer {
 public:
  /// `alpha_init` of 6.0 mirrors the common ReLU6-style starting point.
  explicit PactActivation(int bits, float alpha_init = 6.0f,
                          nn::ActivationNoisePtr noise = nullptr);

  autograd::Variable forward(const autograd::Variable& x) override;

  float alpha() const;
  int bits() const { return bits_; }

 private:
  int bits_;
  autograd::Parameter* alpha_ = nullptr;
  nn::ActivationNoisePtr noise_;
};

}  // namespace ripple::quant
