#include "quant/quantizer.h"

#include <algorithm>
#include <cmath>

#include "tensor/ops.h"

namespace ripple::quant {

// ---- BinaryQuantizer -------------------------------------------------------

float BinaryQuantizer::dynamic_alpha(const Tensor& w) const {
  const float a = ops::mean(ops::abs(w));
  // Degenerate all-zero weights: fall back to 1 so sign() output is usable.
  return a > 0.0f ? a : 1.0f;
}

autograd::Variable BinaryQuantizer::apply(const autograd::Variable& w) {
  const float alpha = calibrated_ ? alpha_ : dynamic_alpha(w.value());
  return binarize_ste(w, alpha);
}

void BinaryQuantizer::calibrate(const Tensor& w) {
  alpha_ = dynamic_alpha(w);
  calibrated_ = true;
}

std::vector<int32_t> BinaryQuantizer::encode(const Tensor& w) const {
  std::vector<int32_t> codes(static_cast<size_t>(w.numel()));
  const float* p = w.data();
  for (int64_t i = 0; i < w.numel(); ++i)
    codes[static_cast<size_t>(i)] = p[i] < 0.0f ? 0 : 1;
  return codes;
}

Tensor BinaryQuantizer::decode(const std::vector<int32_t>& codes,
                               const Shape& shape) const {
  RIPPLE_CHECK(calibrated_) << "BinaryQuantizer::decode before calibrate()";
  RIPPLE_CHECK(static_cast<int64_t>(codes.size()) == shape_numel(shape))
      << "code count does not match shape";
  Tensor w(shape);
  float* p = w.data();
  for (size_t i = 0; i < codes.size(); ++i)
    p[i] = (codes[i] & 1) != 0 ? alpha_ : -alpha_;
  return w;
}

// ---- IntQuantizer --------------------------------------------------------

IntQuantizer::IntQuantizer(int bits)
    : bits_(bits), qmax_((1 << (bits - 1)) - 1) {
  RIPPLE_CHECK(bits >= 2 && bits <= 16)
      << "IntQuantizer bits must be in [2,16], got " << bits;
}

float IntQuantizer::dynamic_scale(const Tensor& w) const {
  const float mx = ops::max(ops::abs(w));
  return mx > 0.0f ? mx / static_cast<float>(qmax_) : 1.0f;
}

autograd::Variable IntQuantizer::apply(const autograd::Variable& w) {
  const float scale = calibrated_ ? scale_ : dynamic_scale(w.value());
  return fake_quant_ste(w, scale, bits_);
}

void IntQuantizer::calibrate(const Tensor& w) {
  scale_ = dynamic_scale(w);
  calibrated_ = true;
}

std::vector<int32_t> IntQuantizer::encode(const Tensor& w) const {
  RIPPLE_CHECK(calibrated_) << "IntQuantizer::encode before calibrate()";
  std::vector<int32_t> codes(static_cast<size_t>(w.numel()));
  const float* p = w.data();
  const uint32_t mask = (1u << bits_) - 1u;
  for (int64_t i = 0; i < w.numel(); ++i) {
    const float q = std::round(p[i] / scale_);
    const auto qi = static_cast<int32_t>(
        std::clamp(q, -static_cast<float>(qmax_), static_cast<float>(qmax_)));
    // Two's complement restricted to the low `bits_` bits.
    codes[static_cast<size_t>(i)] =
        static_cast<int32_t>(static_cast<uint32_t>(qi) & mask);
  }
  return codes;
}

Tensor IntQuantizer::decode(const std::vector<int32_t>& codes,
                            const Shape& shape) const {
  RIPPLE_CHECK(calibrated_) << "IntQuantizer::decode before calibrate()";
  RIPPLE_CHECK(static_cast<int64_t>(codes.size()) == shape_numel(shape))
      << "code count does not match shape";
  Tensor w(shape);
  float* p = w.data();
  const auto sign_bit = static_cast<uint32_t>(1u << (bits_ - 1));
  const uint32_t mask = (1u << bits_) - 1u;
  for (size_t i = 0; i < codes.size(); ++i) {
    uint32_t u = static_cast<uint32_t>(codes[i]) & mask;
    int32_t v = static_cast<int32_t>(u);
    if ((u & sign_bit) != 0)
      v -= static_cast<int32_t>(1u << bits_);  // sign-extend
    p[i] = static_cast<float>(v) * scale_;
  }
  return w;
}

std::unique_ptr<Quantizer> make_quantizer(int bits) {
  if (bits == 1) return std::make_unique<BinaryQuantizer>();
  return std::make_unique<IntQuantizer>(bits);
}

}  // namespace ripple::quant
