#include "quant/int8/int8_gemm.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "tensor/env.h"
#include "tensor/threadpool.h"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define RIPPLE_X86 1
#endif

namespace ripple::quant::int8 {
namespace {

int64_t ceil_div(int64_t a, int64_t b) { return (a + b - 1) / b; }

inline int32_t load_group(const uint8_t* p) {
  int32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

// A tile kernel computes the exact int32 accumulators of a kMR×kNR block:
// acc[r*kNR + j] = Σ_k rows[r][k]·panel[k][j]. The driver hands it an
// interleaved A block — [g][r][kKG] bytes, rows already aliased into
// remainder slots — so every broadcast group the kernel consumes is one
// contiguous 4-byte load instead of eight scattered row-pointer reads
// (the difference between ~10% and ~50% of the VNNI port bound on skinny
// serving shapes). Sign interpretation of each operand is baked into the
// kernel variant.
using TileFn = void (*)(const uint8_t* ablock, int64_t kgroups,
                        const uint8_t* panel, int32_t* acc);

// ---- portable tile kernels (always compiled; the RIPPLE_SIMD=0 oracle) -----

template <bool kRowsU8>
void tile_scalar(const uint8_t* ablock, int64_t kgroups, const uint8_t* panel,
                 int32_t* acc) {
  for (int64_t e = 0; e < kMR * kNR; ++e) acc[e] = 0;
  for (int64_t g = 0; g < kgroups; ++g) {
    const uint8_t* pg = panel + g * kKG * kNR;
    for (int64_t r = 0; r < kMR; ++r) {  // kMR == the scalar kernel's mr
      const uint8_t* a = ablock + (g * kMR + r) * kKG;
      int32_t* arow = acc + r * kNR;
      for (int64_t j = 0; j < kNR; ++j) {
        const uint8_t* w = pg + j * kKG;
        int32_t dot = 0;
        for (int64_t kk = 0; kk < kKG; ++kk) {
          const int32_t av =
              kRowsU8 ? int32_t(a[kk]) : int32_t(int8_t(a[kk]));
          const int32_t wv =
              kRowsU8 ? int32_t(int8_t(w[kk])) : int32_t(w[kk]);
          dot += av * wv;
        }
        arow[j] += dot;
      }
    }
  }
}

// ---- SIMD tile kernels (per-function target; selected via CPUID) -----------
//
// vpmaddubsw/vpdpbusd multiply unsigned×signed bytes in a fixed operand
// order, so each ISA gets two variants that only swap the operands. The u8
// operand is always the 7-bit dynamic-quantized side, so the vpmaddubsw
// intermediate |u·s + u·s| ≤ 127·128·2 < 2^15 never saturates and the
// accumulators match tile_scalar bit-for-bit.

#ifdef RIPPLE_X86

__attribute__((target("avx2"))) inline void store_acc8(int32_t* dst,
                                                       __m256i v) {
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst), v);
}

// AVX2 runs 4-row tiles: 4 rows × (lo, hi) = 8 accumulator registers plus
// the two panel halves, the broadcast and the `ones` constant stay inside
// the 16-register ymm file with room for the loop carried addresses.
inline constexpr int64_t kMrAvx2 = 4;

#define RIPPLE_INT8_TILE_AVX2(NAME, MADD)                                     \
  __attribute__((target("avx2"))) void NAME(                                  \
      const uint8_t* ablock, int64_t kgroups, const uint8_t* panel,           \
      int32_t* acc) {                                                         \
    const __m256i ones = _mm256_set1_epi16(1);                                \
    __m256i lo[kMrAvx2], hi[kMrAvx2];                                         \
    for (int64_t r = 0; r < kMrAvx2; ++r) {                                   \
      lo[r] = _mm256_setzero_si256();                                         \
      hi[r] = _mm256_setzero_si256();                                         \
    }                                                                         \
    for (int64_t g = 0; g < kgroups; ++g) {                                   \
      const __m256i b0 = _mm256_loadu_si256(                                  \
          reinterpret_cast<const __m256i*>(panel + g * kKG * kNR));           \
      const __m256i b1 = _mm256_loadu_si256(                                  \
          reinterpret_cast<const __m256i*>(panel + g * kKG * kNR + 32));      \
      const uint8_t* a = ablock + g * kMrAvx2 * kKG;                          \
      for (int64_t r = 0; r < kMrAvx2; ++r) {                                 \
        const __m256i av = _mm256_set1_epi32(load_group(a + r * kKG));        \
        lo[r] = _mm256_add_epi32(                                             \
            lo[r], _mm256_madd_epi16(MADD(av, b0), ones));                    \
        hi[r] = _mm256_add_epi32(                                             \
            hi[r], _mm256_madd_epi16(MADD(av, b1), ones));                    \
      }                                                                       \
    }                                                                         \
    for (int64_t r = 0; r < kMrAvx2; ++r) {                                   \
      store_acc8(acc + r * kNR, lo[r]);                                       \
      store_acc8(acc + r * kNR + 8, hi[r]);                                   \
    }                                                                         \
  }

#define RIPPLE_MADD_ROWS_U8(av, b) _mm256_maddubs_epi16((av), (b))
#define RIPPLE_MADD_ROWS_S8(av, b) _mm256_maddubs_epi16((b), (av))
RIPPLE_INT8_TILE_AVX2(tile_avx2_u8rows, RIPPLE_MADD_ROWS_U8)
RIPPLE_INT8_TILE_AVX2(tile_avx2_s8rows, RIPPLE_MADD_ROWS_S8)
#undef RIPPLE_MADD_ROWS_U8
#undef RIPPLE_MADD_ROWS_S8
#undef RIPPLE_INT8_TILE_AVX2

// VNNI runs full kMR = 8-row tiles with the K-group loop unrolled by two:
// 16 independent vpdpbusd chains per iteration (the instruction's ~5-cycle
// latency needs that much ILP to keep the dot-product ports saturated),
// every broadcast a contiguous 4-byte load from the interleaved A block,
// and the whole working set — 8 sums + 2 panels + broadcast — well inside
// the 32-register zmm file. The 8-row body is spelled out because the
// rolled loop keeps GCC from register-allocating the sums array (~2×).
#define RIPPLE_INT8_DP8(DP, S, A, B)                                          \
  S[0] = DP(S[0], _mm512_set1_epi32(load_group((A))), (B));                   \
  S[1] = DP(S[1], _mm512_set1_epi32(load_group((A) + kKG)), (B));             \
  S[2] = DP(S[2], _mm512_set1_epi32(load_group((A) + 2 * kKG)), (B));         \
  S[3] = DP(S[3], _mm512_set1_epi32(load_group((A) + 3 * kKG)), (B));         \
  S[4] = DP(S[4], _mm512_set1_epi32(load_group((A) + 4 * kKG)), (B));         \
  S[5] = DP(S[5], _mm512_set1_epi32(load_group((A) + 5 * kKG)), (B));         \
  S[6] = DP(S[6], _mm512_set1_epi32(load_group((A) + 6 * kKG)), (B));         \
  S[7] = DP(S[7], _mm512_set1_epi32(load_group((A) + 7 * kKG)), (B));

#define RIPPLE_INT8_TILE_VNNI(NAME, DP)                                       \
  __attribute__((target("avx512f,avx512bw,avx512vnni"))) void NAME(           \
      const uint8_t* ablock, int64_t kgroups, const uint8_t* panel,           \
      int32_t* acc) {                                                         \
    __m512i sums[kMR];                                                        \
    for (int64_t r = 0; r < kMR; ++r) sums[r] = _mm512_setzero_si512();       \
    int64_t g = 0;                                                            \
    for (; g + 2 <= kgroups; g += 2) {                                        \
      const __m512i b0 = _mm512_loadu_si512(panel + g * kKG * kNR);           \
      const __m512i b1 = _mm512_loadu_si512(panel + (g + 1) * kKG * kNR);     \
      const uint8_t* a = ablock + g * kMR * kKG;                              \
      RIPPLE_INT8_DP8(DP, sums, a, b0)                                        \
      RIPPLE_INT8_DP8(DP, sums, a + kMR * kKG, b1)                            \
    }                                                                         \
    for (; g < kgroups; ++g) {                                                \
      const __m512i b = _mm512_loadu_si512(panel + g * kKG * kNR);            \
      const uint8_t* a = ablock + g * kMR * kKG;                              \
      RIPPLE_INT8_DP8(DP, sums, a, b)                                         \
    }                                                                         \
    for (int64_t r = 0; r < kMR; ++r)                                         \
      _mm512_storeu_si512(acc + r * kNR, sums[r]);                            \
  }

#define RIPPLE_DP_ROWS_U8(acc, av, b) _mm512_dpbusd_epi32((acc), (av), (b))
#define RIPPLE_DP_ROWS_S8(acc, av, b) _mm512_dpbusd_epi32((acc), (b), (av))
RIPPLE_INT8_TILE_VNNI(tile_vnni_u8rows, RIPPLE_DP_ROWS_U8)
RIPPLE_INT8_TILE_VNNI(tile_vnni_s8rows, RIPPLE_DP_ROWS_S8)
#undef RIPPLE_DP_ROWS_U8
#undef RIPPLE_DP_ROWS_S8
#undef RIPPLE_INT8_TILE_VNNI
#undef RIPPLE_INT8_DP8

#endif  // RIPPLE_X86

// ---- kernel selection ------------------------------------------------------

struct Int8Kernel {
  TileFn u8rows;
  TileFn s8rows;
  int64_t mr;  // rows per tile (≤ kMR); the driver blocks M by this
  /// True for the CPUID-selected kernels: the epilogue and the dynamic
  /// quantizers may take their AVX2 forms (bit-identical results; AVX2
  /// support is implied by either SIMD kernel being selected).
  bool simd;
  /// True when the VNNI kernel is active (implies AVX-512F): the epilogue
  /// may take its 16-lane form — one zmm covers a full tile row.
  bool simd512;
  const char* name;
};

const Int8Kernel kScalarKernel = {tile_scalar<true>, tile_scalar<false>, kMR,
                                  false, false, "scalar"};

Int8Kernel best_simd_kernel() {
#ifdef RIPPLE_X86
  if (__builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512bw") &&
      __builtin_cpu_supports("avx512vnni"))
    return {tile_vnni_u8rows, tile_vnni_s8rows, kMR, true, true,
            "avx512-vnni"};
  if (__builtin_cpu_supports("avx2"))
    return {tile_avx2_u8rows, tile_avx2_s8rows, kMrAvx2, true, false, "avx2"};
#endif
  return kScalarKernel;
}

Int8Kernel detect_kernel() {
  if (env_int("RIPPLE_SIMD", 1) == 0) return kScalarKernel;
  return best_simd_kernel();
}

// Not synchronized against in-flight calls; set_int8_backend is a
// test/bench hook, not a hot-path API (same contract as set_gemm_backend).
Int8Kernel g_kernel = detect_kernel();

// ---- requantize epilogue (shared scalar code on every kernel path) ---------

// Writes the valid sub-tile of C from the exact accumulators. γ/β is
// applied as two separate memory sweeps (mul, then add) so each element
// sees exactly one rounded multiply followed by one rounded add — the same
// rounding sequence as deploy/plan.cpp's affine_into and the graph's
// channel ops, and immune to fp-contract fusing the pair into an fma.
void requantize_tile(const int32_t* acc, int64_t i0, int64_t mvalid,
                     int64_t j0, int64_t nvalid, int64_t m, int64_t n,
                     const Int8Epilogue& ep, float* c, int64_t ldc) {
  const int64_t rows_per_rep =
      ep.replicas > 0 ? std::max<int64_t>(1, m / ep.replicas) : m;
  for (int64_t r = 0; r < mvalid; ++r) {
    const int64_t i = i0 + r;
    const int32_t* arow = acc + r * kNR;
    float* crow = c + i * ldc + j0;
    const int64_t row_zp = ep.row_zp ? ep.row_zp[i] : 0;
    const float row_s = ep.row_scale ? ep.row_scale[i] : 0.0f;
    for (int64_t jj = 0; jj < nvalid; ++jj) {
      const int64_t j = j0 + jj;
      const int64_t corr = ep.row_zp
                               ? row_zp * int64_t(ep.wsum[j])
                               : int64_t(ep.col_zp[j]) * ep.wsum[i];
      const float s =
          ep.weight_scale * (ep.row_scale ? row_s : ep.col_scale[j]);
      float v = float(int64_t(arow[jj]) - corr) * s;
      if (ep.col_bias != nullptr)
        v += ep.col_bias[j];
      else if (ep.row_bias != nullptr)
        v += ep.row_bias[i];
      if (ep.relu && !(v > 0.0f)) v = 0.0f;
      crow[jj] = v;
    }
    if (ep.gamma != nullptr) {
      const float* g = ep.gamma + (i / rows_per_rep) * n + j0;
      const float* b = ep.beta + (i / rows_per_rep) * n + j0;
      for (int64_t jj = 0; jj < nvalid; ++jj) crow[jj] *= g[jj];
      for (int64_t jj = 0; jj < nvalid; ++jj) crow[jj] += b[jj];
    }
  }
}

#ifdef RIPPLE_X86

// AVX2 requantize, bit-identical to requantize_tile: per lane it performs
// the same operation sequence — int32 subtract of the zero-point
// correction, cvtdq2ps (round-to-nearest-even, like the scalar
// int→float conversion of the identical value), one multiply, one add,
// then max(v, 0) whose NaN/−0 behaviour matches `!(v > 0)`. The int32
// correction arithmetic is exact because the driver only selects this
// path for k ≤ 2^17, where |acc − zp·wsum| ≤ 127·128·k < 2^31.
__attribute__((target("avx2"))) void requantize_tile_avx2(
    const int32_t* acc, int64_t i0, int64_t mvalid, int64_t j0,
    int64_t nvalid, int64_t m, int64_t n, const Int8Epilogue& ep, float* c,
    int64_t ldc) {
  const int64_t rows_per_rep =
      ep.replicas > 0 ? std::max<int64_t>(1, m / ep.replicas) : m;
  const __m256 zero = _mm256_setzero_ps();
  for (int64_t r = 0; r < mvalid; ++r) {
    const int64_t i = i0 + r;
    const int32_t* arow = acc + r * kNR;
    float* crow = c + i * ldc + j0;
    const int64_t row_zp = ep.row_zp ? ep.row_zp[i] : 0;
    const float row_s = ep.row_scale ? ep.row_scale[i] : 0.0f;
    int64_t jj = 0;
    for (; jj + 8 <= nvalid; jj += 8) {
      const __m256i a = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(arow + jj));
      __m256i corr;
      __m256 s;
      if (ep.row_zp != nullptr) {
        corr = _mm256_mullo_epi32(
            _mm256_set1_epi32(int32_t(row_zp)),
            _mm256_loadu_si256(
                reinterpret_cast<const __m256i*>(ep.wsum + j0 + jj)));
        s = _mm256_set1_ps(ep.weight_scale * row_s);
      } else {
        corr = _mm256_mullo_epi32(
            _mm256_loadu_si256(
                reinterpret_cast<const __m256i*>(ep.col_zp + j0 + jj)),
            _mm256_set1_epi32(ep.wsum[i]));
        s = _mm256_mul_ps(_mm256_set1_ps(ep.weight_scale),
                          _mm256_loadu_ps(ep.col_scale + j0 + jj));
      }
      __m256 v = _mm256_mul_ps(
          _mm256_cvtepi32_ps(_mm256_sub_epi32(a, corr)), s);
      if (ep.col_bias != nullptr)
        v = _mm256_add_ps(v, _mm256_loadu_ps(ep.col_bias + j0 + jj));
      else if (ep.row_bias != nullptr)
        v = _mm256_add_ps(v, _mm256_set1_ps(ep.row_bias[i]));
      if (ep.relu) v = _mm256_max_ps(v, zero);  // returns 0 when v is NaN
      _mm256_storeu_ps(crow + jj, v);
    }
    for (; jj < nvalid; ++jj) {
      const int64_t j = j0 + jj;
      const int64_t corr = ep.row_zp
                               ? row_zp * int64_t(ep.wsum[j])
                               : int64_t(ep.col_zp[j]) * ep.wsum[i];
      const float s =
          ep.weight_scale * (ep.row_scale ? row_s : ep.col_scale[j]);
      float v = float(int64_t(arow[jj]) - corr) * s;
      if (ep.col_bias != nullptr)
        v += ep.col_bias[j];
      else if (ep.row_bias != nullptr)
        v += ep.row_bias[i];
      if (ep.relu && !(v > 0.0f)) v = 0.0f;
      crow[jj] = v;
    }
    if (ep.gamma != nullptr) {
      const float* g = ep.gamma + (i / rows_per_rep) * n + j0;
      const float* b = ep.beta + (i / rows_per_rep) * n + j0;
      int64_t t = 0;
      for (; t + 8 <= nvalid; t += 8)
        _mm256_storeu_ps(crow + t, _mm256_mul_ps(_mm256_loadu_ps(crow + t),
                                                 _mm256_loadu_ps(g + t)));
      for (; t < nvalid; ++t) crow[t] *= g[t];
      for (t = 0; t + 8 <= nvalid; t += 8)
        _mm256_storeu_ps(crow + t, _mm256_add_ps(_mm256_loadu_ps(crow + t),
                                                 _mm256_loadu_ps(b + t)));
      for (; t < nvalid; ++t) crow[t] += b[t];
    }
  }
}

// 16-lane requantize for the VNNI kernel: one masked zmm op chain covers a
// full kNR-wide tile row, halving the epilogue work versus the AVX2 form.
// Same per-lane operation sequence as the scalar reference (int32 subtract,
// cvtdq2ps, one mul, one add, max(v, 0), then γ/β as two separate rounded
// steps), so outputs stay bit-identical. fp-contract must be off here:
// target("avx512f") brings FMA into scope and GCC contracts mul+add pairs
// — even _mm512_mul_ps/_mm512_add_ps intrinsics, which lower to plain
// vector MULT/PLUS — into one fused rounding, silently breaking the
// bit-exactness contract. (The AVX2 epilogue is immune only because
// target("avx2") does not enable FMA.) Partial panels use lane masks
// rather than a scalar tail so every element goes through the same
// instruction sequence.
__attribute__((target("avx512f"), optimize("fp-contract=off"))) void
requantize_tile_avx512(
    const int32_t* acc, int64_t i0, int64_t mvalid, int64_t j0,
    int64_t nvalid, int64_t m, int64_t n, const Int8Epilogue& ep, float* c,
    int64_t ldc) {
  const int64_t rows_per_rep =
      ep.replicas > 0 ? std::max<int64_t>(1, m / ep.replicas) : m;
  const __m512 zero = _mm512_setzero_ps();
  const __mmask16 mk = static_cast<__mmask16>((1u << nvalid) - 1u);
  for (int64_t r = 0; r < mvalid; ++r) {
    const int64_t i = i0 + r;
    // The accumulator tile is always full kNR wide; only the epilogue
    // operands and the C store need masking against n.
    const __m512i a = _mm512_loadu_si512(acc + r * kNR);
    float* crow = c + i * ldc + j0;
    __m512i corr;
    __m512 s;
    if (ep.row_zp != nullptr) {
      corr = _mm512_mullo_epi32(_mm512_set1_epi32(int32_t(ep.row_zp[i])),
                                _mm512_maskz_loadu_epi32(mk, ep.wsum + j0));
      s = _mm512_set1_ps(ep.weight_scale * ep.row_scale[i]);
    } else {
      corr = _mm512_mullo_epi32(_mm512_maskz_loadu_epi32(mk, ep.col_zp + j0),
                                _mm512_set1_epi32(ep.wsum[i]));
      s = _mm512_mul_ps(_mm512_set1_ps(ep.weight_scale),
                        _mm512_maskz_loadu_ps(mk, ep.col_scale + j0));
    }
    __m512 v =
        _mm512_mul_ps(_mm512_cvtepi32_ps(_mm512_sub_epi32(a, corr)), s);
    if (ep.col_bias != nullptr)
      v = _mm512_add_ps(v, _mm512_maskz_loadu_ps(mk, ep.col_bias + j0));
    else if (ep.row_bias != nullptr)
      v = _mm512_add_ps(v, _mm512_set1_ps(ep.row_bias[i]));
    if (ep.relu) v = _mm512_max_ps(v, zero);  // returns 0 when v is NaN
    if (ep.gamma != nullptr) {
      const float* g = ep.gamma + (i / rows_per_rep) * n + j0;
      const float* b = ep.beta + (i / rows_per_rep) * n + j0;
      v = _mm512_mul_ps(v, _mm512_maskz_loadu_ps(mk, g));
      v = _mm512_add_ps(v, _mm512_maskz_loadu_ps(mk, b));
    }
    _mm512_mask_storeu_ps(crow, mk, v);
  }
}

#endif  // RIPPLE_X86

}  // namespace

// ---- driver ----------------------------------------------------------------

void int8_gemm(RowsAre mode, const void* rows, int64_t m, int64_t k,
               const void* panels, int64_t n, const Int8Epilogue& ep,
               float* c, int64_t ldc) {
  if (m <= 0 || n <= 0) return;
  const Int8Kernel ki = g_kernel;
  const TileFn fn = mode == RowsAre::kU8 ? ki.u8rows : ki.s8rows;
  const uint8_t* rowbytes = static_cast<const uint8_t*>(rows);
  const uint8_t* panelbytes = static_cast<const uint8_t*>(panels);
  const int64_t k4 = padded_k(k);
  const int64_t kgroups = k4 / kKG;
  const int64_t pb = panel_bytes(k);
  const int64_t npanels = num_panels(n);
  const int64_t mr = ki.mr;
  const int64_t mblocks = ceil_div(m, mr);
  // Interleave the quantized rows into per-row-block A blocks — [g][r][kKG]
  // bytes, remainder rows aliased to the last valid row — so the tile
  // kernels broadcast from contiguous memory. One linear pass over A (tiny
  // next to the k·n panel traffic), repaid once per column panel.
  const int64_t astride = kgroups * mr * kKG;
  thread_local std::vector<uint8_t> ablocks;
  ablocks.resize(static_cast<size_t>(mblocks * astride));
  uint8_t* ab = ablocks.data();
  for (int64_t b = 0; b < mblocks; ++b) {
    const int64_t i0 = b * mr;
    uint8_t* dst = ab + b * astride;
    for (int64_t r = 0; r < mr; ++r) {
      const uint8_t* src = rowbytes + std::min(i0 + r, m - 1) * k4;
      for (int64_t g = 0; g < kgroups; ++g)
        std::memcpy(dst + (g * mr + r) * kKG, src + g * kKG, kKG);
    }
  }
  // The AVX2 epilogue's int32 correction arithmetic is exact only while
  // |acc − zp·wsum| ≤ 127·128·k fits an int32; past that (k > 2^17,
  // far beyond any real layer) keep the int64 scalar reference.
#ifdef RIPPLE_X86
  const bool vec_ep = ki.simd && k <= (int64_t(1) << 17);
#endif
  // Column panels are the parallel axis: conv lowerings are a handful of
  // weight rows against thousands of output-position panels, so splitting
  // on M would leave the pool idle (the fp32 driver's small-M gap this
  // subsystem's carryover fixes). Each (panel, row-block) tile is written
  // by exactly one task, so the split never changes results.
  parallel_for(
      npanels,
      [&](int64_t p0, int64_t p1) {
        alignas(64) int32_t acc[kMR * kNR];
        for (int64_t p = p0; p < p1; ++p) {
          const uint8_t* panel = panelbytes + p * pb;
          const int64_t j0 = p * kNR;
          const int64_t nvalid = std::min(kNR, n - j0);
          for (int64_t b = 0; b < mblocks; ++b) {
            const int64_t i0 = b * mr;
            const int64_t mvalid = std::min(mr, m - i0);
            fn(ab + b * astride, kgroups, panel, acc);
#ifdef RIPPLE_X86
            if (vec_ep) {
              if (ki.simd512)
                requantize_tile_avx512(acc, i0, mvalid, j0, nvalid, m, n, ep,
                                       c, ldc);
              else
                requantize_tile_avx2(acc, i0, mvalid, j0, nvalid, m, n, ep, c,
                                     ldc);
              continue;
            }
#endif
            requantize_tile(acc, i0, mvalid, j0, nvalid, m, n, ep, c, ldc);
          }
        }
      },
      /*grain=*/1);
}

// ---- packing & dynamic quantization ----------------------------------------

void pack_panels_s8(const int8_t* src, int64_t n, int64_t k, int8_t* dst) {
  std::memset(dst, 0, static_cast<size_t>(packed_bytes(n, k)));
  const int64_t pb = panel_bytes(k);
  for (int64_t j = 0; j < n; ++j) {
    const int8_t* row = src + j * k;
    int8_t* panel = dst + (j / kNR) * pb + (j % kNR) * kKG;
    for (int64_t kk = 0; kk < k; ++kk)
      panel[(kk / kKG) * kKG * kNR + kk % kKG] = row[kk];
  }
}

namespace {

// 7-bit affine from a [lo, hi] range. Keeping activations in [0, 127]
// costs half a bit of precision but buys the no-saturation guarantee that
// makes scalar/AVX2/VNNI bit-identical.
inline void range_to_affine(float lo, float hi, float* scale, int32_t* zp) {
  if (hi > lo) {
    // Clamp to FLT_MIN so the reciprocal used by quantize_value is finite
    // even for denormal-width ranges.
    const float s = std::max((hi - lo) / 127.0f, 1.17549435e-38f);
    *scale = s;
    *zp = std::clamp<int32_t>(int32_t(std::lrintf(-lo / s)), 0, 127);
  } else {
    // Constant input: pick the affine that reproduces it exactly.
    const float c = lo;
    *scale = std::fabs(c) > 0.0f ? std::fabs(c) / 127.0f : 1.0f;
    *zp = c < 0.0f ? 127 : 0;
  }
}

inline uint8_t quantize_value(float x, float inv_scale, int32_t zp) {
  return uint8_t(
      std::clamp<int32_t>(int32_t(std::lrintf(x * inv_scale)) + zp, 0, 127));
}

#ifdef RIPPLE_X86

// AVX2 min/max scan of one row. Lane-wise min/max then a horizontal
// reduction visits every element exactly once, so the result equals the
// scalar scan's (min/max are exact — no rounding, order-free).
__attribute__((target("avx2"))) void row_range_avx2(const float* row,
                                                    int64_t k, float* lo_out,
                                                    float* hi_out) {
  float lo = row[0], hi = row[0];
  int64_t kk = 0;
  if (k >= 8) {
    __m256 vlo = _mm256_loadu_ps(row);
    __m256 vhi = vlo;
    for (kk = 8; kk + 8 <= k; kk += 8) {
      const __m256 v = _mm256_loadu_ps(row + kk);
      vlo = _mm256_min_ps(vlo, v);
      vhi = _mm256_max_ps(vhi, v);
    }
    alignas(32) float tmp[8];
    _mm256_store_ps(tmp, vlo);
    lo = tmp[0];
    for (int t = 1; t < 8; ++t) lo = std::min(lo, tmp[t]);
    _mm256_store_ps(tmp, vhi);
    hi = tmp[0];
    for (int t = 1; t < 8; ++t) hi = std::max(hi, tmp[t]);
  }
  for (; kk < k; ++kk) {
    lo = std::min(lo, row[kk]);
    hi = std::max(hi, row[kk]);
  }
  *lo_out = lo;
  *hi_out = hi;
}

// Quantizes 8 floats to 8 clamped u8 codes. cvtps2dq rounds to nearest
// even under the default MXCSR mode — the same rounding lrintf performs —
// so the codes match quantize_value bit-for-bit.
__attribute__((target("avx2"))) inline __m128i quantize8_avx2(
    const float* x, __m256 vinv, __m256i vzp) {
  __m256i q = _mm256_cvtps_epi32(_mm256_mul_ps(_mm256_loadu_ps(x), vinv));
  q = _mm256_add_epi32(q, vzp);
  q = _mm256_max_epi32(q, _mm256_setzero_si256());
  q = _mm256_min_epi32(q, _mm256_set1_epi32(127));
  const __m128i p16 = _mm_packus_epi32(_mm256_castsi256_si128(q),
                                       _mm256_extracti128_si256(q, 1));
  return _mm_packus_epi16(p16, p16);  // 8 codes in the low 64 bits
}

__attribute__((target("avx2"))) void quantize_row_avx2(const float* row,
                                                       int64_t k, int64_t k4,
                                                       uint8_t* out,
                                                       float* scale,
                                                       int32_t* zp) {
  float lo, hi;
  row_range_avx2(row, k, &lo, &hi);
  range_to_affine(lo, hi, scale, zp);
  const float inv = 1.0f / *scale;
  const __m256 vinv = _mm256_set1_ps(inv);
  const __m256i vzp = _mm256_set1_epi32(*zp);
  int64_t kk = 0;
  for (; kk + 8 <= k; kk += 8)
    _mm_storel_epi64(reinterpret_cast<__m128i*>(out + kk),
                     quantize8_avx2(row + kk, vinv, vzp));
  for (; kk < k; ++kk) out[kk] = quantize_value(row[kk], inv, *zp);
  for (; kk < k4; ++kk) out[kk] = 0;
}

// Quantize+pack of one full kNR-wide panel: each K group quantizes 4 rows
// of 16 column codes, then a 4×16 byte transpose (three unpack levels)
// lands them directly in panel order out[j·kKG + kk] — no strided
// single-byte stores. Codes match quantize_value bit-for-bit (same
// rounding as quantize8_avx2 above); `inv` is the precomputed 1/scale per
// column, the same division result the scalar path uses.
__attribute__((target("avx2"))) void pack_panel_avx2(const float* cols,
                                                     int64_t k, int64_t l,
                                                     int64_t j0,
                                                     uint8_t* panel,
                                                     const float* inv,
                                                     const int32_t* zp) {
  const __m256 vinv0 = _mm256_loadu_ps(inv + j0);
  const __m256 vinv1 = _mm256_loadu_ps(inv + j0 + 8);
  const __m256i vzp0 =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(zp + j0));
  const __m256i vzp1 =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(zp + j0 + 8));
  const int64_t kfull = k & ~int64_t(kKG - 1);
  for (int64_t kk = 0; kk < kfull; kk += kKG) {
    __m128i rows[kKG];
    for (int64_t t = 0; t < kKG; ++t) {
      const float* row = cols + (kk + t) * l + j0;
      rows[t] = _mm_unpacklo_epi64(quantize8_avx2(row, vinv0, vzp0),
                                   quantize8_avx2(row + 8, vinv1, vzp1));
    }
    const __m128i t0 = _mm_unpacklo_epi8(rows[0], rows[1]);
    const __m128i t1 = _mm_unpackhi_epi8(rows[0], rows[1]);
    const __m128i t2 = _mm_unpacklo_epi8(rows[2], rows[3]);
    const __m128i t3 = _mm_unpackhi_epi8(rows[2], rows[3]);
    uint8_t* out = panel + (kk / kKG) * kKG * kNR;
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out),
                     _mm_unpacklo_epi16(t0, t2));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 16),
                     _mm_unpackhi_epi16(t0, t2));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 32),
                     _mm_unpacklo_epi16(t1, t3));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 48),
                     _mm_unpackhi_epi16(t1, t3));
  }
  for (int64_t kk = kfull; kk < k; ++kk) {
    const float* row = cols + kk * l + j0;
    uint8_t* out = panel + (kk / kKG) * kKG * kNR + kk % kKG;
    for (int64_t j = 0; j < kNR; ++j)
      out[j * kKG] = quantize_value(row[j], inv[j0 + j], zp[j0 + j]);
  }
}

#endif  // RIPPLE_X86

}  // namespace

void quantize_rows_u8(const float* x, int64_t m, int64_t k, uint8_t* dst,
                      float* scale, int32_t* zp) {
  const int64_t k4 = padded_k(k);
#ifdef RIPPLE_X86
  const bool simd = g_kernel.simd;
#endif
  parallel_for(
      m,
      [&](int64_t r0, int64_t r1) {
        for (int64_t i = r0; i < r1; ++i) {
          const float* row = x + i * k;
          uint8_t* out = dst + i * k4;
#ifdef RIPPLE_X86
          if (simd) {
            quantize_row_avx2(row, k, k4, out, &scale[i], &zp[i]);
            continue;
          }
#endif
          float lo = row[0], hi = row[0];
          for (int64_t kk = 1; kk < k; ++kk) {
            lo = std::min(lo, row[kk]);
            hi = std::max(hi, row[kk]);
          }
          range_to_affine(lo, hi, &scale[i], &zp[i]);
          const float inv = 1.0f / scale[i];
          for (int64_t kk = 0; kk < k; ++kk)
            out[kk] = quantize_value(row[kk], inv, zp[i]);
          for (int64_t kk = k; kk < k4; ++kk) out[kk] = 0;
        }
      },
      /*grain=*/8);
}

void quantize_pack_cols_u8(const float* cols, int64_t k, int64_t l,
                           uint8_t* dst, float* scale, int32_t* zp) {
  // Per-column ranges, swept row-major so the strided matrix is read
  // contiguously. One column is one output position's receptive field, so
  // its affine is a pure function of that position's inputs — independent
  // of batch grouping or replica count, which is what keeps reduced-row
  // plan traces and full-row graph passes bit-identical.
  thread_local std::vector<float> lo_buf, hi_buf;
  lo_buf.resize(static_cast<size_t>(l));
  hi_buf.resize(static_cast<size_t>(l));
  float* lo = lo_buf.data();
  float* hi = hi_buf.data();
  std::memcpy(lo, cols, static_cast<size_t>(l) * sizeof(float));
  std::memcpy(hi, cols, static_cast<size_t>(l) * sizeof(float));
  for (int64_t kk = 1; kk < k; ++kk) {
    const float* row = cols + kk * l;
    for (int64_t j = 0; j < l; ++j) {
      lo[j] = std::min(lo[j], row[j]);
      hi[j] = std::max(hi[j], row[j]);
    }
  }
  for (int64_t j = 0; j < l; ++j) range_to_affine(lo[j], hi[j], &scale[j], &zp[j]);
#ifdef RIPPLE_X86
  const bool simd = g_kernel.simd;
  thread_local std::vector<float> inv_buf;
  if (simd) {
    inv_buf.resize(static_cast<size_t>(l));
    for (int64_t j = 0; j < l; ++j) inv_buf[j] = 1.0f / scale[j];
  }
  const float* inv = inv_buf.data();
#endif
  std::memset(dst, 0, static_cast<size_t>(packed_bytes(l, k)));
  const int64_t pb = panel_bytes(k);
  parallel_for(
      num_panels(l),
      [&](int64_t p0, int64_t p1) {
        for (int64_t p = p0; p < p1; ++p) {
          uint8_t* panel = dst + p * pb;
          const int64_t jw = std::min(kNR, l - p * kNR);
#ifdef RIPPLE_X86
          if (simd && jw == kNR) {
            pack_panel_avx2(cols, k, l, p * kNR, panel, inv, zp);
            continue;
          }
#endif
          for (int64_t kk = 0; kk < k; ++kk) {
            const float* row = cols + kk * l + p * kNR;
            uint8_t* out = panel + (kk / kKG) * kKG * kNR + kk % kKG;
            for (int64_t j = 0; j < jw; ++j)
              out[j * kKG] =
                  quantize_value(row[j], 1.0f / scale[p * kNR + j],
                                 zp[p * kNR + j]);
          }
        }
      },
      /*grain=*/4);
}

// ---- backend selection hooks ----------------------------------------------

void set_int8_backend(Int8Backend backend) {
  switch (backend) {
    case Int8Backend::kAuto:
      g_kernel = detect_kernel();
      break;
    case Int8Backend::kScalar:
      g_kernel = kScalarKernel;
      break;
    case Int8Backend::kSimd:
      g_kernel = best_simd_kernel();
      break;
  }
}

const char* int8_backend_name() { return g_kernel.name; }

}  // namespace ripple::quant::int8
