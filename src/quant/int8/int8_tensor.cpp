#include "quant/int8/int8_tensor.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "quant/int8/int8_gemm.h"
#include "tensor/check.h"

namespace ripple::quant::int8 {
namespace {

// Lays out decoded s8 codes per orientation and computes the per-output
// code sums.
Int8Tensor finish(std::vector<int8_t> codes, int32_t bits, float calibration,
                  int64_t rows, int64_t k, bool conv) {
  Int8Tensor t;
  t.rows = rows;
  t.k = k;
  t.scale = calibration;
  t.bits = bits;
  t.conv = conv;
  t.wsum.assign(static_cast<size_t>(rows), 0);
  for (int64_t i = 0; i < rows; ++i) {
    int32_t s = 0;
    const int8_t* row = codes.data() + i * k;
    for (int64_t kk = 0; kk < k; ++kk) s += row[kk];
    t.wsum[static_cast<size_t>(i)] = s;
  }
  if (conv) {
    const int64_t k4 = padded_k(k);
    t.data.assign(static_cast<size_t>(rows * k4), 0);
    for (int64_t i = 0; i < rows; ++i)
      std::memcpy(t.data.data() + i * k4, codes.data() + i * k,
                  static_cast<size_t>(k));
  } else {
    t.data.resize(static_cast<size_t>(packed_bytes(rows, k)));
    pack_panels_s8(codes.data(), rows, k, t.data.data());
  }
  return t;
}

}  // namespace

Int8Tensor Int8Tensor::from_codes(const std::vector<int32_t>& codes,
                                  int32_t bits, float calibration,
                                  int64_t rows, int64_t k, bool conv) {
  RIPPLE_CHECK(bits >= 1 && bits <= 8)
      << "Int8Tensor needs 1..8-bit codes, got " << bits;
  RIPPLE_CHECK(static_cast<int64_t>(codes.size()) == rows * k)
      << "Int8Tensor: " << codes.size() << " codes for a " << rows << "x" << k
      << " weight";
  std::vector<int8_t> s8(codes.size());
  if (bits == 1) {
    // BinaryQuantizer: bit0 = 1 for +α, 0 for −α.
    for (size_t i = 0; i < codes.size(); ++i)
      s8[i] = (codes[i] & 1) != 0 ? int8_t(1) : int8_t(-1);
  } else {
    // IntQuantizer: low `bits` bits are two's complement; sign-extend.
    const int shift = 32 - bits;
    for (size_t i = 0; i < codes.size(); ++i)
      s8[i] = static_cast<int8_t>(
          static_cast<int32_t>(static_cast<uint32_t>(codes[i]) << shift) >>
          shift);
  }
  return finish(std::move(s8), bits, calibration, rows, k, conv);
}

Int8Tensor Int8Tensor::from_fp32(const float* w, int64_t rows, int64_t k,
                                 float calibration, int32_t bits, bool conv) {
  RIPPLE_CHECK(bits >= 1 && bits <= 8)
      << "Int8Tensor needs 1..8-bit codes, got " << bits;
  std::vector<int8_t> s8(static_cast<size_t>(rows * k));
  if (bits == 1) {
    // BinaryQuantizer::encode: negative → 0 (−α), else 1 (+α).
    for (int64_t i = 0; i < rows * k; ++i)
      s8[static_cast<size_t>(i)] = w[i] < 0.0f ? int8_t(-1) : int8_t(1);
  } else {
    // Clamp to the full int8 range, not ±qmax: sign-bit flips produce the
    // −(qmax+1) code, whose decoded value must survive the round-trip.
    const float inv = calibration != 0.0f ? 1.0f / calibration : 0.0f;
    for (int64_t i = 0; i < rows * k; ++i)
      s8[static_cast<size_t>(i)] = static_cast<int8_t>(std::clamp<int32_t>(
          static_cast<int32_t>(std::lrintf(w[i] * inv)), -128, 127));
  }
  return finish(std::move(s8), bits, calibration, rows, k, conv);
}

}  // namespace ripple::quant::int8
