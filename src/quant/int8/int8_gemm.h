// Integer GEMM micro-kernels for the kQuantInt8 execution backend.
//
// The artifact carries every quantized weight as frozen integer codes plus
// one fp32 scale; kQuantSim decodes them back to fp32 and runs the float
// kernels. This subsystem keeps the codes as int8 and executes the dense
// compute through u8×s8 dot-product kernels with exact int32 accumulation:
//
//   AVX-512 VNNI  vpdpbusd        — 64 MACs per instruction
//   AVX2          vpmaddubsw + vpmaddwd(1) — 32 MACs per instruction pair
//   scalar        plain int loops — the RIPPLE_SIMD=0 reference
//
// One GEMM shape serves both lowering orientations:
//
//   C[m, n] = rows[m, k] · panels[k, n]       (+ requantize epilogue)
//
//   linear:  rows = dynamically quantized activations (u8, per-row affine),
//            panels = prepacked weight columns (s8, per-tensor scale).
//   conv:    rows = prepacked weight rows (s8, per-tensor scale),
//            panels = im2col columns quantized per output position
//            (u8, per-column affine) in the same pass that packs them.
//
// Activations quantize to 7 bits ([0, 127]) on purpose: |u8·s8 + u8·s8| ≤
// 127·128·2 = 32512 < 2^15, so the AVX2 vpmaddubsw i16 pair-sums can never
// saturate and all three kernels produce bit-identical int32 accumulators.
// The requantize epilogue (zero-point correction, scale, bias, ReLU, the
// per-replica stochastic-affine mul/add) has a scalar reference and an
// AVX2 form that performs the same IEEE operation sequence lane-wise
// (int32 subtract, cvt-to-float, one mul, one add — identical rounding),
// so the fp32 outputs stay bit-exact across scalar/AVX2/VNNI — the same
// contract the fp32 GEMM's plan-verification gate relies on.
//
// Panel layout (the int8 analogue of pack_gemm_b_nt): panels of kNR = 16
// columns, K blocked into groups of kKG = 4 bytes — one group is exactly
// the 4-byte dot each vpdpbusd lane / vpmaddubsw pair-chain consumes:
//
//   byte(panel p, group g, col j, kk) = dst[p·panel_bytes + g·64 + j·4 + kk]
//
// Rows are plain row-major with k zero-padded up to a multiple of kKG
// (zero bytes contribute nothing on either operand, signed or unsigned).
#pragma once

#include <cstdint>
#include <new>
#include <vector>

namespace ripple::quant::int8 {

inline constexpr int64_t kNR = 16;  // panel width (output columns)
inline constexpr int64_t kKG = 4;   // K group depth (bytes per i32 lane dot)

/// 64-byte-aligned storage for packed panels. One K group of a panel is
/// exactly one 64-byte kernel load (kKG·kNR bytes), so cache-line
/// alignment keeps every VNNI panel load inside a single line — plain
/// vector storage (typically 16-byte aligned) makes each one a split load.
template <class T>
struct PanelAllocator : std::allocator<T> {
  template <class U>
  struct rebind {
    using other = PanelAllocator<U>;
  };
  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(64)));
  }
  void deallocate(T* p, std::size_t n) {
    ::operator delete(p, n * sizeof(T), std::align_val_t(64));
  }
};
using PanelVec = std::vector<int8_t, PanelAllocator<int8_t>>;
using PanelVecU8 = std::vector<uint8_t, PanelAllocator<uint8_t>>;
/// Maximum rows per kernel tile. Each kernel declares its own row block —
/// VNNI runs 8 rows (8 independent vpdpbusd chains amortise one panel
/// load), AVX2 runs 4 (8 i32 accumulator registers already fill half the
/// ymm file) — and the driver blocks M by the active kernel's value.
inline constexpr int64_t kMR = 8;

inline int64_t padded_k(int64_t k) { return (k + kKG - 1) / kKG * kKG; }
inline int64_t num_panels(int64_t n) { return (n + kNR - 1) / kNR; }
/// Bytes of one packed panel for inner dimension k.
inline int64_t panel_bytes(int64_t k) { return padded_k(k) * kNR; }
/// Total bytes of the packed panel form of a [k, n] operand.
inline int64_t packed_bytes(int64_t n, int64_t k) {
  return num_panels(n) * panel_bytes(k);
}

/// Which operand carries the unsigned (activation) bytes. The hardware dot
/// instructions are u8×s8 with a fixed operand order, so the kernels need
/// to know which side to feed where.
enum class RowsAre { kU8, kS8 };

/// Requantization epilogue: maps the exact int32 accumulator of C[i, j] to
/// fp32. Exactly one side is dynamically quantized (per-row for linear,
/// per-column for conv); the weight side contributes one per-tensor scale
/// plus per-output integer sums for the zero-point correction:
///
///   v = float(acc − zp·wsum) · (dyn_scale · weight_scale) + bias
///   if relu: v = max(v, 0)
///   if gamma: v = v·γ[r, ch]; v = v + β[r, ch]   (replica r = i / (m/T))
///
/// The γ/β application uses two separate rounding steps (mul, then add),
/// matching deploy/plan.cpp's affine_into and the graph's channel ops
/// bit-for-bit — what lets the backend claim a plan's fused linear+affine
/// step and still pass the bit-exact verification gate.
struct Int8Epilogue {
  // Dynamic affine of the quantized activation operand; exactly one pair
  // is set. Indexed by row i (linear) or column j (conv).
  const float* row_scale = nullptr;
  const int32_t* row_zp = nullptr;
  const float* col_scale = nullptr;
  const int32_t* col_zp = nullptr;
  float weight_scale = 1.0f;
  /// Per-output integer weight sums: indexed by j when rows are the
  /// activations (linear), by i when rows are the weights (conv).
  const int32_t* wsum = nullptr;
  const float* row_bias = nullptr;  // conv: per output channel i
  const float* col_bias = nullptr;  // linear: per output feature j
  bool relu = false;
  /// Per-replica channel affine (linear orientation only): [replicas, n].
  const float* gamma = nullptr;
  const float* beta = nullptr;
  int64_t replicas = 1;
};

/// C[m, n] = rows[m, k] · panels + epilogue. `rows` is row-major with
/// stride padded_k(k) bytes (padding zeroed); `panels` is the packed panel
/// layout above; `c` is fully overwritten (ldc = row stride in floats).
/// Work splits over column panels × kMR row blocks on the thread pool —
/// serving shapes are short and wide (small m, large n), so column panels
/// are the parallel axis.
void int8_gemm(RowsAre mode, const void* rows, int64_t m, int64_t k,
               const void* panels, int64_t n, const Int8Epilogue& ep,
               float* c, int64_t ldc);

/// Packs s8 source rows [n, k] (row-major, e.g. a weight matrix whose n
/// rows become the n output columns) into the panel layout.
void pack_panels_s8(const int8_t* src, int64_t n, int64_t k, int8_t* dst);

/// Dynamically quantizes fp32 rows [m, k] to u8 with one affine per row
/// (7-bit: q = clamp(lrint(x/s) + zp, 0, 127)), writing row-major padded
/// rows plus per-row scale/zero-point.
void quantize_rows_u8(const float* x, int64_t m, int64_t k, uint8_t* dst,
                      float* scale, int32_t* zp);

/// Fused quantize+pack of an im2col matrix cols[k, l] (row k contiguous,
/// length l): one affine per output column l — column contents are a row's
/// receptive field, so the scales are independent of how the caller
/// grouped or replicated rows — written directly in panel layout.
void quantize_pack_cols_u8(const float* cols, int64_t k, int64_t l,
                           uint8_t* dst, float* scale, int32_t* zp);

/// Kernel dispatch, mirroring tensor/gemm.h's GemmBackend: kAuto honors
/// RIPPLE_SIMD=0 (scalar) and otherwise picks the best CPUID-supported
/// kernel (VNNI > AVX2 > scalar).
enum class Int8Backend { kAuto, kScalar, kSimd };
void set_int8_backend(Int8Backend backend);
const char* int8_backend_name();

}  // namespace ripple::quant::int8
