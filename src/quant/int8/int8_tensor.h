// Int8Tensor — a weight matrix held in its integer hardware representation.
//
// The artifact stores each quantized fault target as frozen integer codes
// plus one fp32 calibration scalar (deploy::QuantRecord). kQuantSim
// decodes those codes back to fp32 and serves them through the float
// kernels; Int8Tensor instead keeps the codes as int8 — laid out directly
// in the form the int8 GEMM consumes — so serving never round-trips
// through fp32:
//
//   linear weights [Fout, Fin]  → packed column panels (int8_gemm.h
//                                 layout); outputs are GEMM columns.
//   conv weights   [Cout, CK]   → zero-padded row-major rows; outputs are
//                                 GEMM rows against quantized im2col
//                                 column panels.
//
// Alongside the codes it precomputes the per-output integer code sums the
// requantize epilogue needs for activation zero-point correction.
#pragma once

#include <cstdint>
#include <vector>

#include "quant/int8/int8_gemm.h"

namespace ripple::quant::int8 {

struct Int8Tensor {
  int64_t rows = 0;    // outputs: Fout (linear) / Cout (conv)
  int64_t k = 0;       // inner dim: Fin / CK
  float scale = 1.0f;  // frozen per-tensor calibration (α / scale)
  int32_t bits = 0;    // source code width (1 = binary, else k-bit)
  bool conv = false;   // layout selector (see header comment)
  /// Packed panels (linear) or padded row-major rows (conv);
  /// 64-byte-aligned so every panel K-group load stays in one cache line.
  PanelVec data;
  /// Per-output sums of the int8 codes, for zero-point correction.
  std::vector<int32_t> wsum;

  bool defined() const { return rows > 0; }

  /// Builds from the artifact's frozen codes (deploy::QuantRecord::codes,
  /// one int32 per weight with the low `bits` bits meaningful): binary
  /// codes map bit0 → ±1 with scale = α; k-bit codes sign-extend. Requires
  /// 1 ≤ bits ≤ 8 and codes.size() == rows·k.
  static Int8Tensor from_codes(const std::vector<int32_t>& codes,
                               int32_t bits, float calibration, int64_t rows,
                               int64_t k, bool conv);

  /// Re-encodes deployed fp32 values against a *frozen* calibration — the
  /// invalidate()→warm-up rebuild path after in-place weight mutation.
  /// Inverse of the quantizer decode: any value on the grid c·scale with
  /// c ∈ [−128, 127] (every bit-flipped code, including the
  /// −(qmax+1) sign-flip patterns) is recovered exactly; off-grid values
  /// (post-programming analog noise) snap to the nearest grid point.
  static Int8Tensor from_fp32(const float* w, int64_t rows, int64_t k,
                              float calibration, int32_t bits, bool conv);
};

}  // namespace ripple::quant::int8
