#include "quant/ste_ops.h"

#include <cmath>

#include "deploy/trace.h"
#include "tensor/ops.h"

namespace ripple::quant {

namespace ag = ripple::autograd;
namespace {

// Records a unary quantizer step for plan compilation; called only after
// the caller's active_trace() null check.
template <typename F>
void trace_unary(deploy::OpTag tag, const Tensor& x, const Tensor& out,
                 F op) {
  deploy::TraceStep ts;
  ts.tag = tag;
  ts.inputs = {x};
  ts.output = out;
  ts.fn = [op](const Tensor* const* ins, int, Tensor& o) {
    const float* pa = ins[0]->data();
    float* po = o.data();
    const int64_t n = o.numel();
    for (int64_t i = 0; i < n; ++i) po[i] = op(pa[i]);
  };
  deploy::active_trace()->record(std::move(ts));
}

}  // namespace

ag::Variable binarize_ste(const ag::Variable& w, float alpha) {
  RIPPLE_CHECK(alpha > 0.0f) << "binarize_ste alpha must be positive, got "
                             << alpha;
  Tensor out = ops::mul_scalar(ops::sign(w.value()), alpha);
  Tensor wv = w.value();
  return ag::make_op_node(
      std::move(out), {w.node()},
      [wv](ag::Node& n) {
        if (!n.parents[0]->requires_grad) return;
        Tensor dx(wv.shape());
        const float* pw = wv.data();
        const float* pdy = n.grad.data();
        float* pdx = dx.data();
        for (int64_t i = 0; i < wv.numel(); ++i)
          pdx[i] = std::fabs(pw[i]) <= 1.0f ? pdy[i] : 0.0f;
        n.parents[0]->accumulate_grad(dx);
      },
      "binarize_ste");
}

ag::Variable fake_quant_ste(const ag::Variable& x, float scale, int bits) {
  RIPPLE_CHECK(bits >= 2 && bits <= 16) << "fake_quant_ste bits out of range";
  RIPPLE_CHECK(scale > 0.0f) << "fake_quant_ste scale must be positive";
  const float qmax = static_cast<float>((1 << (bits - 1)) - 1);
  const float limit = qmax * scale;
  Tensor out = ops::map(x.value(), [scale, qmax](float v) {
    const float q = std::round(v / scale);
    return std::clamp(q, -qmax, qmax) * scale;
  });
  if (deploy::active_trace() != nullptr) {
    trace_unary(deploy::OpTag::kFakeQuant, x.value(), out,
                [scale, qmax](float v) {
                  const float q = std::round(v / scale);
                  return std::clamp(q, -qmax, qmax) * scale;
                });
  }
  Tensor xv = x.value();
  return ag::make_op_node(
      std::move(out), {x.node()},
      [xv, limit](ag::Node& n) {
        if (!n.parents[0]->requires_grad) return;
        Tensor dx(xv.shape());
        const float* px = xv.data();
        const float* pdy = n.grad.data();
        float* pdx = dx.data();
        for (int64_t i = 0; i < xv.numel(); ++i)
          pdx[i] = std::fabs(px[i]) <= limit ? pdy[i] : 0.0f;
        n.parents[0]->accumulate_grad(dx);
      },
      "fake_quant_ste");
}

ag::Variable pact_quant(const ag::Variable& x, const ag::Variable& alpha,
                        int bits) {
  RIPPLE_CHECK(bits >= 2 && bits <= 16) << "pact_quant bits out of range";
  RIPPLE_CHECK(alpha.numel() == 1) << "pact_quant alpha must be scalar";
  const float a = alpha.value().item();
  RIPPLE_CHECK(a > 0.0f) << "pact_quant alpha must stay positive, got " << a;
  const float levels = static_cast<float>((1 << bits) - 1);
  const float delta = a / levels;
  Tensor out = ops::map(x.value(), [a, delta](float v) {
    const float y = std::clamp(v, 0.0f, a);
    return std::round(y / delta) * delta;
  });
  if (deploy::active_trace() != nullptr) {
    // α is frozen in eval serving, so baking its value is exact; a weight
    // update invalidates the session's plans with the rest of the cache.
    trace_unary(deploy::OpTag::kPact, x.value(), out, [a, delta](float v) {
      const float y = std::clamp(v, 0.0f, a);
      return std::round(y / delta) * delta;
    });
  }
  Tensor xv = x.value();
  return ag::make_op_node(
      std::move(out), {x.node(), alpha.node()},
      [xv, a](ag::Node& n) {
        const float* px = xv.data();
        const float* pdy = n.grad.data();
        if (n.parents[0]->requires_grad) {
          Tensor dx(xv.shape());
          float* pdx = dx.data();
          for (int64_t i = 0; i < xv.numel(); ++i)
            pdx[i] = (px[i] > 0.0f && px[i] < a) ? pdy[i] : 0.0f;
          n.parents[0]->accumulate_grad(dx);
        }
        if (n.parents[1]->requires_grad) {
          double acc = 0.0;
          for (int64_t i = 0; i < xv.numel(); ++i)
            if (px[i] >= a) acc += pdy[i];
          n.parents[1]->accumulate_grad(
              Tensor::full(n.parents[1]->value.shape(),
                           static_cast<float>(acc)));
        }
      },
      "pact_quant");
}

}  // namespace ripple::quant
