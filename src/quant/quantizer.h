// Weight quantizers: QAT forward transform + deployment bit codec.
//
// During training, apply() fake-quantizes with a *dynamic* scale recomputed
// from the latent weights each step. At deployment time calibrate() freezes
// the scale; encode()/decode() then round-trip weights through their
// integer hardware representation so fault injectors can flip individual
// bits of the deployed codes (the scale itself lives in digital logic and
// is not a fault target).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "autograd/variable.h"
#include "quant/ste_ops.h"

namespace ripple::quant {

class Quantizer {
 public:
  virtual ~Quantizer() = default;

  /// QAT transform applied to the latent weight every forward.
  virtual autograd::Variable apply(const autograd::Variable& w) = 0;

  /// Freezes the dynamic scale from the trained latent weights.
  virtual void calibrate(const Tensor& w) = 0;
  virtual bool calibrated() const = 0;

  /// The frozen calibration scalar (α for binary, scale for k-bit) — the
  /// digital-logic constant a deployment artifact persists. Valid once
  /// calibrated.
  virtual float calibration() const = 0;
  /// Restores a frozen calibration without re-reading weights (artifact
  /// load path); the quantizer is calibrated afterwards.
  virtual void set_calibration(float c) = 0;

  /// Bit width of one deployed weight.
  virtual int bits() const = 0;

  /// Integer codes of the deployed weights (low `bits()` bits meaningful).
  virtual std::vector<int32_t> encode(const Tensor& w) const = 0;
  /// Deployed weight values corresponding to codes.
  virtual Tensor decode(const std::vector<int32_t>& codes,
                        const Shape& shape) const = 0;
};

/// 1-bit: w_b = sign(w)·α with α = mean(|w|). Code: bit0 = 1 for positive.
class BinaryQuantizer : public Quantizer {
 public:
  autograd::Variable apply(const autograd::Variable& w) override;
  void calibrate(const Tensor& w) override;
  bool calibrated() const override { return calibrated_; }
  float calibration() const override { return alpha_; }
  void set_calibration(float c) override {
    alpha_ = c;
    calibrated_ = true;
  }
  int bits() const override { return 1; }
  std::vector<int32_t> encode(const Tensor& w) const override;
  Tensor decode(const std::vector<int32_t>& codes,
                const Shape& shape) const override;

  float alpha() const { return alpha_; }

 private:
  float dynamic_alpha(const Tensor& w) const;
  bool calibrated_ = false;
  float alpha_ = 1.0f;
};

/// k-bit symmetric (two's complement, range [-qmax, qmax]) with per-tensor
/// scale = max|w| / qmax.
class IntQuantizer : public Quantizer {
 public:
  explicit IntQuantizer(int bits);
  autograd::Variable apply(const autograd::Variable& w) override;
  void calibrate(const Tensor& w) override;
  bool calibrated() const override { return calibrated_; }
  float calibration() const override { return scale_; }
  void set_calibration(float c) override {
    scale_ = c;
    calibrated_ = true;
  }
  int bits() const override { return bits_; }
  std::vector<int32_t> encode(const Tensor& w) const override;
  Tensor decode(const std::vector<int32_t>& codes,
                const Shape& shape) const override;

  float scale() const { return scale_; }
  int32_t qmax() const { return qmax_; }

 private:
  float dynamic_scale(const Tensor& w) const;
  int bits_;
  int32_t qmax_;
  bool calibrated_ = false;
  float scale_ = 1.0f;
};

/// Factory for the per-model weight precisions used in the paper
/// (1 = binary, 4/8 = integer).
std::unique_ptr<Quantizer> make_quantizer(int bits);

}  // namespace ripple::quant
