// Common interface of the four evaluated topologies.
//
// Lifecycle of a fault experiment:
//   construct → train (QAT transforms active) → deploy() → FaultInjector
//   over fault_targets() → MC evaluation with set_mc_mode(true).
#pragma once

#include <memory>
#include <vector>

#include "autograd/module.h"
#include "core/affine_dropout.h"
#include "core/init.h"
#include "fault/injector.h"
#include "models/variants.h"
#include "nn/noise.h"

namespace ripple::core {
class InvertedNorm;
}

namespace ripple::nn {
class Dropout;
class SpatialDropout;
}  // namespace ripple::nn

namespace ripple::models {

/// Hyper-parameters shared by every topology/variant combination.
struct VariantConfig {
  Variant variant = Variant::kProposed;
  /// Dropout probability for both conventional MC-Dropout baselines and the
  /// proposed affine dropout (paper: 0.3 everywhere).
  float dropout_p = 0.3f;
  /// Affine-parameter init for the proposed inverted norm (paper: N, σ=0.3).
  core::AffineInit init;
  /// Granularity of the affine dropout (paper deploys vector-wise).
  core::DropGranularity granularity = core::DropGranularity::kVectorWise;
  /// Ablation switch: affine before (true, paper) or after normalization.
  bool affine_first = true;
};

class TaskModel : public autograd::Module {
 public:
  explicit TaskModel(VariantConfig config)
      : config_(config),
        noise_(std::make_shared<nn::ActivationNoiseConfig>()) {}

  const VariantConfig& config() const { return config_; }
  Variant variant() const { return config_.variant; }

  /// Builds the autograd graph; output semantics depend on the task
  /// (class logits / pixel logits / regression value).
  virtual autograd::Variable forward(const Tensor& x) = 0;

  /// Inference without graph construction.
  Tensor predict(const Tensor& x);

  /// Keeps the stochastic layers sampling in eval mode (MC inference).
  virtual void set_mc_mode(bool on) = 0;

  /// Batched Monte-Carlo: fold t replicas into the batch dimension of the
  /// stochastic norm layers (see fault/mc_batch.h). Default: no stochastic
  /// norm layers to configure.
  virtual void set_mc_replicas(int64_t t) { (void)t; }

  /// InvertedNorm layers in construction order, for seeding deterministic
  /// per-layer mask streams. Empty for variants without them.
  virtual std::vector<core::InvertedNorm*> inverted_norm_layers() {
    return {};
  }

  /// MC-Dropout layers (element-wise / spatial) in construction order; the
  /// serving session binds each stochastic layer — inverted norms first,
  /// then these — to a mask-stream slot. Empty for variants without them.
  virtual std::vector<nn::Dropout*> dropout_layers() { return {}; }
  virtual std::vector<nn::SpatialDropout*> spatial_dropout_layers() {
    return {};
  }

  /// Freezes quantizers and replaces latent weights with their deployed
  /// quantized values (calibrate → encode → decode over fault_targets());
  /// weight transforms become identity afterwards. Shared by all
  /// topologies — models only supply clear_weight_transforms().
  void deploy();
  bool deployed() const { return deployed_; }

  /// Frozen per-target quantizer calibrations (α / scale) in
  /// fault_targets() order; 0 for full-precision targets. The digital-logic
  /// constants a deployment artifact persists. Deployed models only.
  std::vector<float> quantizer_calibrations();

  /// Marks the model deployed from restored artifact state: the frozen
  /// calibrations are installed instead of re-computed from weights (which
  /// already hold the deployed values), and the QAT weight transforms are
  /// cleared. `calibrations` follows fault_targets() order.
  void restore_deployed(const std::vector<float>& calibrations);

  /// Parameters eligible for fault injection with their bit codecs.
  virtual std::vector<fault::FaultTarget> fault_targets() = 0;

  /// Activation-noise hook shared by this model's activation layers.
  const nn::ActivationNoisePtr& noise() const { return noise_; }

  /// True when the deployed weights are 1-bit — variation is then injected
  /// into pre-activation values rather than weights (§IV-A2).
  virtual bool binary_weights() const = 0;

  /// Short identifier for caching/reporting, e.g. "resnet".
  virtual const char* name() const = 0;

 protected:
  /// Clears the QAT weight transforms once the deployed values live in the
  /// parameter tensors (called by deploy()/restore_deployed()).
  virtual void clear_weight_transforms() = 0;

  VariantConfig config_;
  nn::ActivationNoisePtr noise_;
  bool deployed_ = false;
};

}  // namespace ripple::models
