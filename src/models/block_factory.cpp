#include "models/block_factory.h"

namespace ripple::models {

nn::Layer& BlockFactory::add_norm(nn::Sequential& seq, int64_t channels,
                                  int64_t groups) {
  if (config_.variant == Variant::kProposed) {
    core::InvertedNorm::Options opts;
    opts.groups = groups;
    opts.dropout_p = config_.dropout_p;
    opts.granularity = config_.granularity;
    opts.init = config_.init;
    opts.affine_first = config_.affine_first;
    auto& layer = seq.emplace<core::InvertedNorm>(channels, opts, rng_);
    inverted_.push_back(&layer);
    return layer;
  }
  return seq.emplace<nn::BatchNorm>(channels);
}

void BlockFactory::add_dropout(nn::Sequential& seq) {
  switch (config_.variant) {
    case Variant::kSpinDrop: {
      auto& layer = seq.emplace<nn::Dropout>(config_.dropout_p, rng_);
      dropouts_.push_back(&layer);
      break;
    }
    case Variant::kSpatialSpinDrop: {
      auto& layer = seq.emplace<nn::SpatialDropout>(config_.dropout_p, rng_);
      spatial_.push_back(&layer);
      break;
    }
    case Variant::kConventional:
    case Variant::kProposed:
      break;  // no explicit dropout layer
  }
}

void BlockFactory::set_mc_mode(bool on) {
  for (auto* l : inverted_) l->set_mc_mode(on);
  for (auto* l : dropouts_) l->set_mc_mode(on);
  for (auto* l : spatial_) l->set_mc_mode(on);
}

void BlockFactory::set_mc_replicas(int64_t t) {
  for (auto* l : inverted_) l->set_mc_replicas(t);
}

}  // namespace ripple::models
