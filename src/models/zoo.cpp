#include "models/zoo.h"

#include <cstdint>
#include <filesystem>
#include <fstream>

#include "deploy/artifact.h"
#include "tensor/check.h"
#include "tensor/env.h"

namespace ripple::models {
namespace {

constexpr char kMagic[4] = {'R', 'P', 'L', 'M'};

void write_string(std::ofstream& out, const std::string& s) {
  const auto len = static_cast<uint32_t>(s.size());
  out.write(reinterpret_cast<const char*>(&len), sizeof(len));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string read_string(std::ifstream& in) {
  uint32_t len = 0;
  in.read(reinterpret_cast<char*>(&len), sizeof(len));
  if (!in || len > (1u << 20)) throw std::runtime_error("corrupt state file");
  std::string s(len, '\0');
  in.read(s.data(), len);
  return s;
}

void write_tensor(std::ofstream& out, const Tensor& t) {
  const int32_t rank = t.rank();
  out.write(reinterpret_cast<const char*>(&rank), sizeof(rank));
  for (int64_t d : t.shape())
    out.write(reinterpret_cast<const char*>(&d), sizeof(d));
  out.write(reinterpret_cast<const char*>(t.data()),
            static_cast<std::streamsize>(t.numel() * sizeof(float)));
}

void read_tensor_into(std::ifstream& in, Tensor& t, const std::string& name) {
  int32_t rank = 0;
  in.read(reinterpret_cast<char*>(&rank), sizeof(rank));
  if (!in || rank != t.rank())
    throw std::runtime_error("state rank mismatch for " + name);
  for (int i = 0; i < rank; ++i) {
    int64_t d = 0;
    in.read(reinterpret_cast<char*>(&d), sizeof(d));
    if (!in || d != t.dim(i))
      throw std::runtime_error("state shape mismatch for " + name);
  }
  in.read(reinterpret_cast<char*>(t.data()),
          static_cast<std::streamsize>(t.numel() * sizeof(float)));
  if (!in) throw std::runtime_error("truncated state for " + name);
}

}  // namespace

std::string model_cache_dir() {
  return env_string("RIPPLE_MODEL_CACHE", "ripple_model_cache");
}

void save_state(autograd::Module& module, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("save_state: cannot open " + path);
  out.write(kMagic, 4);
  const auto params = module.parameters();
  const auto buffers = module.buffers();
  const auto n_params = static_cast<uint32_t>(params.size());
  const auto n_buffers = static_cast<uint32_t>(buffers.size());
  out.write(reinterpret_cast<const char*>(&n_params), sizeof(n_params));
  for (auto* p : params) {
    write_string(out, p->name);
    write_tensor(out, p->var.value());
  }
  out.write(reinterpret_cast<const char*>(&n_buffers), sizeof(n_buffers));
  for (auto& b : buffers) {
    write_string(out, b.name);
    write_tensor(out, *b.tensor);
  }
  if (!out) throw std::runtime_error("save_state: write failed " + path);
}

bool load_state(autograd::Module& module, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  char magic[4];
  in.read(magic, 4);
  if (!in || std::string(magic, 4) != std::string(kMagic, 4))
    throw std::runtime_error("load_state: bad magic in " + path);
  const auto params = module.parameters();
  const auto buffers = module.buffers();
  uint32_t n_params = 0;
  in.read(reinterpret_cast<char*>(&n_params), sizeof(n_params));
  if (n_params != params.size())
    throw std::runtime_error("load_state: parameter count mismatch in " +
                             path);
  for (auto* p : params) {
    const std::string name = read_string(in);
    if (name != p->name)
      throw std::runtime_error("load_state: expected parameter " + p->name +
                               ", found " + name);
    read_tensor_into(in, p->var.value(), name);
  }
  uint32_t n_buffers = 0;
  in.read(reinterpret_cast<char*>(&n_buffers), sizeof(n_buffers));
  if (n_buffers != buffers.size())
    throw std::runtime_error("load_state: buffer count mismatch in " + path);
  for (auto& b : buffers) {
    const std::string name = read_string(in);
    if (name != b.name)
      throw std::runtime_error("load_state: expected buffer " + b.name +
                               ", found " + name);
    read_tensor_into(in, *b.tensor, name);
  }
  return true;
}

bool train_or_load(TaskModel& model, const std::string& cache_key,
                   const std::function<void()>& train_fn) {
  const std::string dir = model_cache_dir();
  if (dir.empty()) {
    train_fn();
    if (!model.deployed()) model.deploy();
    return false;
  }
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/" + cache_key + deploy::kArtifactExtension;
  if (deploy::load_artifact_into(model, path)) return true;
  train_fn();
  if (!model.deployed()) model.deploy();
  deploy::save_artifact(model, path, deploy::default_session_options(model));
  return false;
}

}  // namespace ripple::models
