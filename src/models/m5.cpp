#include "models/m5.h"

#include "autograd/ops.h"

namespace ripple::models {

namespace ag = ripple::autograd;

template <typename LayerT>
void M5::quantize_weight(LayerT& layer) {
  quantizers_.push_back(
      std::make_unique<quant::IntQuantizer>(topo_.weight_bits));
  quant::Quantizer* q = quantizers_.back().get();
  layer.set_weight_transform(
      [q](const ag::Variable& w) { return q->apply(w); });
  targets_.push_back({&layer.weight(), q});
  transform_resets_.push_back(
      [&layer] { layer.set_weight_transform(nullptr); });
}

M5::M5(Topology topo, VariantConfig config, Rng* rng)
    : TaskModel(config), topo_(topo), factory_(config, rng) {
  const int64_t w = topo_.width;

  auto& conv1 = body_.emplace<nn::Conv1d>(1, w, 16, /*stride=*/4,
                                          /*pad=*/6, /*bias=*/false);
  quantize_weight(conv1);
  factory_.add_norm(body_, w);
  body_.emplace<quant::PactActivation>(topo_.activation_bits, 6.0f, noise_);
  factory_.add_dropout(body_);
  body_.emplace<nn::MaxPool1d>(4);

  auto& conv2 = body_.emplace<nn::Conv1d>(w, 2 * w, 3, /*stride=*/1,
                                          /*pad=*/1, /*bias=*/false);
  quantize_weight(conv2);
  factory_.add_norm(body_, 2 * w);
  body_.emplace<quant::PactActivation>(topo_.activation_bits, 6.0f, noise_);
  factory_.add_dropout(body_);
  body_.emplace<nn::MaxPool1d>(4);

  auto& conv3 = body_.emplace<nn::Conv1d>(2 * w, 2 * w, 3, /*stride=*/1,
                                          /*pad=*/1, /*bias=*/false);
  quantize_weight(conv3);
  factory_.add_norm(body_, 2 * w);
  body_.emplace<quant::PactActivation>(topo_.activation_bits, 6.0f, noise_);
  factory_.add_dropout(body_);
  body_.emplace<nn::MaxPool1d>(2);

  body_.emplace<nn::GlobalAvgPool1d>();

  head_ = std::make_unique<nn::Linear>(2 * w, topo_.classes, /*bias=*/true);
  quantize_weight(*head_);

  register_module("body", body_);
  register_module("head", *head_);
}

ag::Variable M5::forward(const Tensor& x) {
  RIPPLE_CHECK(x.rank() == 3 && x.dim(1) == 1)
      << "M5 expects [N,1,L], got " << shape_to_string(x.shape());
  ag::Variable v(x);
  v = body_.forward(v);
  return head_->forward(v);
}

void M5::set_mc_mode(bool on) { factory_.set_mc_mode(on); }

void M5::set_mc_replicas(int64_t t) { factory_.set_mc_replicas(t); }

std::vector<core::InvertedNorm*> M5::inverted_norm_layers() {
  return factory_.inverted_norms();
}

std::vector<nn::Dropout*> M5::dropout_layers() {
  return factory_.dropouts();
}

std::vector<nn::SpatialDropout*> M5::spatial_dropout_layers() {
  return factory_.spatial_dropouts();
}

void M5::clear_weight_transforms() {
  for (auto& reset : transform_resets_) reset();
}

std::vector<fault::FaultTarget> M5::fault_targets() { return targets_; }

}  // namespace ripple::models
