// M5 1-D convolutional network for keyword spotting (W/A = 8/8).
//
// Scaled version of the five-layer M5 of the paper's audio experiment: a
// wide-kernel strided first conv followed by two 3-tap convs, each with the
// variant norm stack, PACT 8-bit activations and max-pooling; classifier
// head on global average pooled features. All conv/linear weights train
// with 8-bit fake quantization (IntQuantizer).
#pragma once

#include <memory>
#include <vector>

#include "models/block_factory.h"
#include "nn/conv.h"
#include "nn/linear.h"
#include "nn/pooling.h"
#include "quant/pact.h"
#include "quant/quantizer.h"

namespace ripple::models {

class M5 : public TaskModel {
 public:
  struct Topology {
    int64_t classes = 8;
    int64_t width = 12;       // first-stage channels; later stages double
    int64_t input_length = 512;
    int weight_bits = 8;
    int activation_bits = 8;
  };

  M5(Topology topo, VariantConfig config, Rng* rng = nullptr);

  autograd::Variable forward(const Tensor& x) override;
  void set_mc_mode(bool on) override;
  void set_mc_replicas(int64_t t) override;
  std::vector<core::InvertedNorm*> inverted_norm_layers() override;
  std::vector<nn::Dropout*> dropout_layers() override;
  std::vector<nn::SpatialDropout*> spatial_dropout_layers() override;
  std::vector<fault::FaultTarget> fault_targets() override;
  bool binary_weights() const override { return false; }
  const char* name() const override { return "m5"; }

  const Topology& topology() const { return topo_; }

 private:
  void clear_weight_transforms() override;
  template <typename LayerT>
  void quantize_weight(LayerT& layer);

  Topology topo_;
  BlockFactory factory_;
  std::vector<std::unique_ptr<quant::Quantizer>> quantizers_;
  std::vector<fault::FaultTarget> targets_;
  std::vector<std::function<void()>> transform_resets_;

  nn::Sequential body_;
  std::unique_ptr<nn::Linear> head_;
};

}  // namespace ripple::models
