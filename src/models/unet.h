// Small U-Net for vessel segmentation — the DRIVE stand-in (W/A = 1/4).
//
// Encoder-decoder with skip connections: two encoder stages, a bottleneck,
// and two decoder stages consuming nearest-neighbour-upsampled features
// concatenated with the matching encoder output. Conv weights are binary
// (BinaryQuantizer); activations quantize to 4 bits via PACT, matching the
// paper's U-Net precision. The proposed variant normalizes over channel
// groups of C_out/8 (GroupNorm-style, §IV-A1).
#pragma once

#include <memory>
#include <vector>

#include "models/block_factory.h"
#include "nn/conv.h"
#include "nn/pooling.h"
#include "quant/pact.h"
#include "quant/quantizer.h"

namespace ripple::models {

class UNet : public TaskModel {
 public:
  struct Topology {
    int64_t base_channels = 8;  // encoder stage 1; deeper stages double
    int activation_bits = 4;
  };

  UNet(Topology topo, VariantConfig config, Rng* rng = nullptr);

  /// x is [N,1,H,W] (H, W divisible by 4); returns per-pixel logits of the
  /// same shape.
  autograd::Variable forward(const Tensor& x) override;
  void set_mc_mode(bool on) override;
  void set_mc_replicas(int64_t t) override;
  std::vector<core::InvertedNorm*> inverted_norm_layers() override;
  std::vector<nn::Dropout*> dropout_layers() override;
  std::vector<nn::SpatialDropout*> spatial_dropout_layers() override;
  std::vector<fault::FaultTarget> fault_targets() override;
  bool binary_weights() const override { return true; }
  const char* name() const override { return "unet"; }

  const Topology& topology() const { return topo_; }

 private:
  void clear_weight_transforms() override;
  /// conv(binary) → variant norm (grouped for proposed) → PACT → dropout,
  /// packaged as one Sequential stage.
  void make_stage(nn::Sequential& stage, int64_t cin, int64_t cout);

  int64_t groups_for(int64_t channels) const;

  Topology topo_;
  BlockFactory factory_;
  std::vector<std::unique_ptr<quant::Quantizer>> quantizers_;
  std::vector<fault::FaultTarget> targets_;
  std::vector<std::function<void()>> transform_resets_;

  nn::Sequential enc1_;
  nn::Sequential enc2_;
  nn::Sequential bottleneck_;
  nn::Sequential dec2_;
  nn::Sequential dec1_;
  std::unique_ptr<nn::MaxPool2d> pool_;
  std::unique_ptr<nn::Conv2d> out_conv_;  // full precision 1×1 head
};

}  // namespace ripple::models
