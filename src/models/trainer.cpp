#include "models/trainer.h"

#include <cstdio>

#include "autograd/loss.h"
#include "autograd/optimizer.h"

namespace ripple::models {
namespace {

namespace ag = ripple::autograd;

/// Generic epoch loop; `step` consumes one batch index list and returns the
/// batch loss.
TrainLog run_epochs(TaskModel& model, int64_t n, const TrainConfig& config,
                    const std::function<double(const std::vector<int64_t>&)>&
                        step) {
  RIPPLE_CHECK(n > 0) << "empty training set";
  model.set_training(true);
  Rng shuffle_rng(config.seed);
  TrainLog log;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    const std::vector<int64_t> order = data::shuffled_indices(n, shuffle_rng);
    double epoch_loss = 0.0;
    int64_t batches = 0;
    for (auto [begin, end] : data::batch_ranges(n, config.batch_size)) {
      std::vector<int64_t> idx(order.begin() + begin, order.begin() + end);
      epoch_loss += step(idx);
      ++batches;
    }
    log.epoch_losses.push_back(epoch_loss / static_cast<double>(batches));
    if (config.verbose)
      std::fprintf(stderr, "  epoch %d/%d loss %.4f\n", epoch + 1,
                   config.epochs, log.epoch_losses.back());
  }
  model.set_training(false);
  return log;
}

}  // namespace

TrainLog train_classifier(TaskModel& model,
                          const data::ClassificationData& train,
                          const TrainConfig& config) {
  ag::Adam opt(model.parameters(), config.lr, 0.9f, 0.999f, 1e-8f,
               config.weight_decay);
  return run_epochs(model, train.size(), config,
                    [&](const std::vector<int64_t>& idx) {
                      Tensor xb = data::take_rows(train.x, idx);
                      std::vector<int64_t> yb;
                      yb.reserve(idx.size());
                      for (int64_t i : idx)
                        yb.push_back(train.y[static_cast<size_t>(i)]);
                      opt.zero_grad();
                      ag::Variable loss =
                          ag::cross_entropy_loss(model.forward(xb), yb);
                      loss.backward();
                      opt.step();
                      return static_cast<double>(loss.value().item());
                    });
}

TrainLog train_regressor(TaskModel& model, const data::SeriesData& train,
                         const TrainConfig& config) {
  ag::Adam opt(model.parameters(), config.lr, 0.9f, 0.999f, 1e-8f,
               config.weight_decay);
  return run_epochs(model, train.size(), config,
                    [&](const std::vector<int64_t>& idx) {
                      Tensor xb = data::take_rows(train.windows, idx);
                      Tensor yb = data::take_rows(train.targets, idx);
                      opt.zero_grad();
                      ag::Variable loss = ag::mse_loss(model.forward(xb), yb);
                      loss.backward();
                      opt.step();
                      return static_cast<double>(loss.value().item());
                    });
}

TrainLog train_segmenter(TaskModel& model,
                         const data::SegmentationData& train,
                         const TrainConfig& config) {
  ag::Adam opt(model.parameters(), config.lr, 0.9f, 0.999f, 1e-8f,
               config.weight_decay);
  return run_epochs(model, train.size(), config,
                    [&](const std::vector<int64_t>& idx) {
                      Tensor xb = data::take_rows(train.images, idx);
                      Tensor yb = data::take_rows(train.masks, idx);
                      opt.zero_grad();
                      ag::Variable loss =
                          ag::bce_with_logits_loss(model.forward(xb), yb);
                      loss.backward();
                      opt.step();
                      return static_cast<double>(loss.value().item());
                    });
}

}  // namespace ripple::models
