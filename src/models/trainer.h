// Shared training loops (Adam + task loss) for the four topologies.
//
// Weight decay is part of the Bayesian story: MC-Dropout training with L2
// regularization approximates a Gaussian-process posterior (Gal &
// Ghahramani, 2016), so a small weight_decay stays on by default.
#pragma once

#include <vector>

#include "data/dataset.h"
#include "models/task_model.h"

namespace ripple::models {

struct TrainConfig {
  int epochs = 8;
  int64_t batch_size = 32;
  float lr = 2e-3f;
  float weight_decay = 1e-4f;
  uint64_t seed = 1234;
  bool verbose = false;
};

struct TrainLog {
  std::vector<double> epoch_losses;
  double final_loss() const {
    return epoch_losses.empty() ? 0.0 : epoch_losses.back();
  }
};

/// Softmax cross-entropy on class logits.
TrainLog train_classifier(TaskModel& model,
                          const data::ClassificationData& train,
                          const TrainConfig& config);

/// MSE on the normalized next-step target.
TrainLog train_regressor(TaskModel& model, const data::SeriesData& train,
                         const TrainConfig& config);

/// Pixel-wise BCE-with-logits on segmentation masks.
TrainLog train_segmenter(TaskModel& model, const data::SegmentationData& train,
                         const TrainConfig& config);

}  // namespace ripple::models
