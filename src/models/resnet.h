// Binarized residual CNN — the ResNet-18/CIFAR-10 stand-in (W/A = 1/1).
//
// Scaled to the synthetic 10-class image task: full-precision stem and
// classifier head (standard binary-NN practice, cf. IR-Net [18]), two
// residual stages of binary 3×3 convolutions with sign activations, and
// the variant-dependent normalization stack from BlockFactory. Activations
// binarize through SignActivation, whose pre-sign input is the injection
// point for conductance variation (§IV-A2).
#pragma once

#include <memory>
#include <vector>

#include "models/block_factory.h"
#include "nn/activation.h"
#include "nn/conv.h"
#include "nn/linear.h"
#include "nn/pooling.h"
#include "quant/quantizer.h"

namespace ripple::models {

class BinaryResNet : public TaskModel {
 public:
  struct Topology {
    int64_t in_channels = 3;
    int64_t classes = 10;
    int64_t width = 12;  // stage-1 channels; stage 2 doubles
  };

  BinaryResNet(Topology topo, VariantConfig config, Rng* rng = nullptr);

  autograd::Variable forward(const Tensor& x) override;
  void set_mc_mode(bool on) override;
  void set_mc_replicas(int64_t t) override;
  std::vector<core::InvertedNorm*> inverted_norm_layers() override;
  std::vector<nn::Dropout*> dropout_layers() override;
  std::vector<nn::SpatialDropout*> spatial_dropout_layers() override;
  std::vector<fault::FaultTarget> fault_targets() override;
  bool binary_weights() const override { return true; }
  const char* name() const override { return "resnet"; }

  const Topology& topology() const { return topo_; }

 private:
  void clear_weight_transforms() override;
  /// Binary conv: registers an owned BinaryQuantizer as weight transform.
  std::unique_ptr<nn::Conv2d> make_binary_conv(int64_t cin, int64_t cout,
                                               int64_t k, int64_t stride,
                                               int64_t pad);

  Topology topo_;
  BlockFactory factory_;
  std::vector<std::unique_ptr<quant::Quantizer>> quantizers_;
  std::vector<fault::FaultTarget> targets_;

  // Stem (full precision).
  std::unique_ptr<nn::Conv2d> stem_conv_;
  nn::Sequential stem_norm_;
  std::unique_ptr<nn::SignActivation> stem_sign_;

  // Stage 1 (width → width).
  std::unique_ptr<nn::Conv2d> b1_conv1_;
  nn::Sequential b1_norm1_;
  std::unique_ptr<nn::SignActivation> b1_sign1_;
  nn::Sequential b1_drop1_;
  std::unique_ptr<nn::Conv2d> b1_conv2_;
  nn::Sequential b1_norm2_;
  std::unique_ptr<nn::SignActivation> b1_sign2_;
  nn::Sequential b1_drop2_;

  // Stage 2 (width → 2·width, stride 2) with projection shortcut.
  std::unique_ptr<nn::Conv2d> b2_conv1_;
  nn::Sequential b2_norm1_;
  std::unique_ptr<nn::SignActivation> b2_sign1_;
  nn::Sequential b2_drop1_;
  std::unique_ptr<nn::Conv2d> b2_conv2_;
  nn::Sequential b2_norm2_;
  std::unique_ptr<nn::Conv2d> b2_skip_conv_;
  nn::Sequential b2_skip_norm_;
  std::unique_ptr<nn::SignActivation> b2_sign2_;
  nn::Sequential b2_drop2_;

  // Head (full precision).
  std::unique_ptr<nn::Linear> head_;
};

}  // namespace ripple::models
