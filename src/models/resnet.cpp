#include "models/resnet.h"

#include "autograd/ops.h"

namespace ripple::models {

namespace ag = ripple::autograd;

std::unique_ptr<nn::Conv2d> BinaryResNet::make_binary_conv(
    int64_t cin, int64_t cout, int64_t k, int64_t stride, int64_t pad) {
  auto conv = std::make_unique<nn::Conv2d>(cin, cout, k, stride, pad,
                                           /*bias=*/false);
  quantizers_.push_back(std::make_unique<quant::BinaryQuantizer>());
  quant::Quantizer* q = quantizers_.back().get();
  conv->set_weight_transform(
      [q](const ag::Variable& w) { return q->apply(w); });
  targets_.push_back({&conv->weight(), q});
  return conv;
}

BinaryResNet::BinaryResNet(Topology topo, VariantConfig config, Rng* rng)
    : TaskModel(config), topo_(topo), factory_(config, rng) {
  RIPPLE_CHECK(topo_.width >= 4) << "width too small";
  const int64_t w = topo_.width;

  stem_conv_ = std::make_unique<nn::Conv2d>(topo_.in_channels, w, 3, 1, 1,
                                            /*bias=*/false);
  targets_.push_back({&stem_conv_->weight(), nullptr});
  factory_.add_norm(stem_norm_, w);
  stem_sign_ = std::make_unique<nn::SignActivation>(noise_);

  b1_conv1_ = make_binary_conv(w, w, 3, 1, 1);
  factory_.add_norm(b1_norm1_, w);
  b1_sign1_ = std::make_unique<nn::SignActivation>(noise_);
  factory_.add_dropout(b1_drop1_);
  b1_conv2_ = make_binary_conv(w, w, 3, 1, 1);
  factory_.add_norm(b1_norm2_, w);
  b1_sign2_ = std::make_unique<nn::SignActivation>(noise_);
  factory_.add_dropout(b1_drop2_);

  b2_conv1_ = make_binary_conv(w, 2 * w, 3, 2, 1);
  factory_.add_norm(b2_norm1_, 2 * w);
  b2_sign1_ = std::make_unique<nn::SignActivation>(noise_);
  factory_.add_dropout(b2_drop1_);
  b2_conv2_ = make_binary_conv(2 * w, 2 * w, 3, 1, 1);
  factory_.add_norm(b2_norm2_, 2 * w);
  b2_skip_conv_ = make_binary_conv(w, 2 * w, 1, 2, 0);
  factory_.add_norm(b2_skip_norm_, 2 * w);
  b2_sign2_ = std::make_unique<nn::SignActivation>(noise_);
  factory_.add_dropout(b2_drop2_);

  head_ = std::make_unique<nn::Linear>(2 * w, topo_.classes, /*bias=*/true);
  targets_.push_back({&head_->weight(), nullptr});

  register_module("stem_conv", *stem_conv_);
  register_module("stem_norm", stem_norm_);
  register_module("b1_conv1", *b1_conv1_);
  register_module("b1_norm1", b1_norm1_);
  register_module("b1_drop1", b1_drop1_);
  register_module("b1_conv2", *b1_conv2_);
  register_module("b1_norm2", b1_norm2_);
  register_module("b1_drop2", b1_drop2_);
  register_module("b2_conv1", *b2_conv1_);
  register_module("b2_norm1", b2_norm1_);
  register_module("b2_drop1", b2_drop1_);
  register_module("b2_conv2", *b2_conv2_);
  register_module("b2_norm2", b2_norm2_);
  register_module("b2_skip_conv", *b2_skip_conv_);
  register_module("b2_skip_norm", b2_skip_norm_);
  register_module("b2_drop2", b2_drop2_);
  register_module("head", *head_);
}

ag::Variable BinaryResNet::forward(const Tensor& x) {
  RIPPLE_CHECK(x.rank() == 4 && x.dim(1) == topo_.in_channels)
      << "BinaryResNet expects [N," << topo_.in_channels << ",H,W], got "
      << shape_to_string(x.shape());
  ag::Variable v(x);

  // Stem (full precision weights, binary output activation).
  v = stem_sign_->forward(stem_norm_.forward(stem_conv_->forward(v)));

  // Stage 1: two binary convs with identity shortcut.
  {
    ag::Variable identity = v;
    ag::Variable y = b1_sign1_->forward(b1_norm1_.forward(
        b1_conv1_->forward(v)));
    y = b1_drop1_.forward(y);
    y = b1_norm2_.forward(b1_conv2_->forward(y));
    v = b1_sign2_->forward(ag::add(y, identity));
    v = b1_drop2_.forward(v);
  }

  // Stage 2: downsampling block with projection shortcut.
  {
    ag::Variable y = b2_sign1_->forward(b2_norm1_.forward(
        b2_conv1_->forward(v)));
    y = b2_drop1_.forward(y);
    y = b2_norm2_.forward(b2_conv2_->forward(y));
    ag::Variable skip = b2_skip_norm_.forward(b2_skip_conv_->forward(v));
    v = b2_sign2_->forward(ag::add(y, skip));
    v = b2_drop2_.forward(v);
  }

  v = ag::global_avg_pool2d(v);
  return head_->forward(v);
}

void BinaryResNet::set_mc_mode(bool on) { factory_.set_mc_mode(on); }

void BinaryResNet::set_mc_replicas(int64_t t) { factory_.set_mc_replicas(t); }

std::vector<core::InvertedNorm*> BinaryResNet::inverted_norm_layers() {
  return factory_.inverted_norms();
}

std::vector<nn::Dropout*> BinaryResNet::dropout_layers() {
  return factory_.dropouts();
}

std::vector<nn::SpatialDropout*> BinaryResNet::spatial_dropout_layers() {
  return factory_.spatial_dropouts();
}

void BinaryResNet::clear_weight_transforms() {
  for (auto* conv :
       {b1_conv1_.get(), b1_conv2_.get(), b2_conv1_.get(), b2_conv2_.get(),
        b2_skip_conv_.get()})
    conv->set_weight_transform(nullptr);
}

std::vector<fault::FaultTarget> BinaryResNet::fault_targets() {
  return targets_;
}

}  // namespace ripple::models
