#include "models/unet.h"

#include "autograd/ops.h"

namespace ripple::models {

namespace ag = ripple::autograd;

int64_t UNet::groups_for(int64_t channels) const {
  // Paper: groups of C_out/8 channels together → 8 groups when divisible.
  return channels % 8 == 0 ? 8 : 1;
}

void UNet::make_stage(nn::Sequential& stage, int64_t cin, int64_t cout) {
  auto& conv = stage.emplace<nn::Conv2d>(cin, cout, 3, /*stride=*/1,
                                         /*pad=*/1, /*bias=*/false);
  quantizers_.push_back(std::make_unique<quant::BinaryQuantizer>());
  quant::Quantizer* q = quantizers_.back().get();
  conv.set_weight_transform(
      [q](const ag::Variable& w) { return q->apply(w); });
  targets_.push_back({&conv.weight(), q});
  transform_resets_.push_back(
      [&conv] { conv.set_weight_transform(nullptr); });

  factory_.add_norm(stage, cout, groups_for(cout));
  stage.emplace<quant::PactActivation>(topo_.activation_bits, 4.0f, noise_);
  factory_.add_dropout(stage);
}

UNet::UNet(Topology topo, VariantConfig config, Rng* rng)
    : TaskModel(config), topo_(topo), factory_(config, rng) {
  const int64_t c = topo_.base_channels;
  make_stage(enc1_, 1, c);
  make_stage(enc2_, c, 2 * c);
  make_stage(bottleneck_, 2 * c, 4 * c);
  make_stage(dec2_, 4 * c + 2 * c, 2 * c);
  make_stage(dec1_, 2 * c + c, c);
  pool_ = std::make_unique<nn::MaxPool2d>(2);
  out_conv_ = std::make_unique<nn::Conv2d>(c, 1, 1, /*stride=*/1, /*pad=*/0,
                                           /*bias=*/true);
  targets_.push_back({&out_conv_->weight(), nullptr});

  register_module("enc1", enc1_);
  register_module("enc2", enc2_);
  register_module("bottleneck", bottleneck_);
  register_module("dec2", dec2_);
  register_module("dec1", dec1_);
  register_module("out_conv", *out_conv_);
}

ag::Variable UNet::forward(const Tensor& x) {
  RIPPLE_CHECK(x.rank() == 4 && x.dim(1) == 1)
      << "UNet expects [N,1,H,W], got " << shape_to_string(x.shape());
  RIPPLE_CHECK(x.dim(2) % 4 == 0 && x.dim(3) % 4 == 0)
      << "UNet needs H,W divisible by 4";
  ag::Variable v(x);
  ag::Variable e1 = enc1_.forward(v);                    // [N, c,  H,  W]
  ag::Variable e2 = enc2_.forward(pool_->forward(e1));   // [N, 2c, H/2,W/2]
  ag::Variable b = bottleneck_.forward(pool_->forward(e2));  // [N,4c,H/4,..]
  ag::Variable u2 = ag::upsample_nearest2x(b);            // [N,4c,H/2,..]
  ag::Variable d2 = dec2_.forward(ag::concat_channels(u2, e2));
  ag::Variable u1 = ag::upsample_nearest2x(d2);           // [N,2c,H,W]
  ag::Variable d1 = dec1_.forward(ag::concat_channels(u1, e1));
  return out_conv_->forward(d1);
}

void UNet::set_mc_mode(bool on) { factory_.set_mc_mode(on); }

void UNet::set_mc_replicas(int64_t t) { factory_.set_mc_replicas(t); }

std::vector<core::InvertedNorm*> UNet::inverted_norm_layers() {
  return factory_.inverted_norms();
}

std::vector<nn::Dropout*> UNet::dropout_layers() {
  return factory_.dropouts();
}

std::vector<nn::SpatialDropout*> UNet::spatial_dropout_layers() {
  return factory_.spatial_dropouts();
}

void UNet::clear_weight_transforms() {
  for (auto& reset : transform_resets_) reset();
}

std::vector<fault::FaultTarget> UNet::fault_targets() { return targets_; }

}  // namespace ripple::models
