#include "models/lstm_forecaster.h"

#include "autograd/ops.h"

namespace ripple::models {

namespace ag = ripple::autograd;

void LstmForecaster::quantize_cell(nn::LstmCell& cell) {
  // One quantizer per weight matrix: W_ih and W_hh have different ranges.
  quantizers_.push_back(
      std::make_unique<quant::IntQuantizer>(topo_.weight_bits));
  quant::Quantizer* q_ih = quantizers_.back().get();
  quantizers_.push_back(
      std::make_unique<quant::IntQuantizer>(topo_.weight_bits));
  quant::Quantizer* q_hh = quantizers_.back().get();
  cell.set_weight_transform(nullptr);  // replaced by the pair below
  // LstmCell applies one transform to both matrices; dispatch by pointer
  // identity of the underlying value storage.
  autograd::Parameter* p_ih = &cell.weight_ih();
  autograd::Parameter* p_hh = &cell.weight_hh();
  cell.set_weight_transform(
      [q_ih, q_hh, p_ih, p_hh](const ag::Variable& w) {
        if (w.node() == p_ih->var.node()) return q_ih->apply(w);
        if (w.node() == p_hh->var.node()) return q_hh->apply(w);
        return q_ih->apply(w);
      });
  targets_.push_back({p_ih, q_ih});
  targets_.push_back({p_hh, q_hh});
  transform_resets_.push_back(
      [&cell] { cell.set_weight_transform(nullptr); });
}

LstmForecaster::LstmForecaster(Topology topo, VariantConfig config, Rng* rng)
    : TaskModel(config), topo_(topo), factory_(config, rng) {
  cell1_ = std::make_unique<nn::LstmCell>(1, topo_.hidden);
  cell2_ = std::make_unique<nn::LstmCell>(topo_.hidden, topo_.hidden);
  quantize_cell(*cell1_);
  quantize_cell(*cell2_);

  factory_.add_norm(norm1_, topo_.hidden);
  factory_.add_dropout(drop1_);
  factory_.add_norm(norm2_, topo_.hidden);
  factory_.add_dropout(drop2_);

  head_ = std::make_unique<nn::Linear>(topo_.hidden, 1, /*bias=*/true);
  quantizers_.push_back(
      std::make_unique<quant::IntQuantizer>(topo_.weight_bits));
  quant::Quantizer* q_head = quantizers_.back().get();
  head_->set_weight_transform(
      [q_head](const ag::Variable& w) { return q_head->apply(w); });
  targets_.push_back({&head_->weight(), q_head});
  transform_resets_.push_back(
      [this] { head_->set_weight_transform(nullptr); });

  register_module("cell1", *cell1_);
  register_module("cell2", *cell2_);
  register_module("norm1", norm1_);
  register_module("drop1", drop1_);
  register_module("norm2", norm2_);
  register_module("drop2", drop2_);
  register_module("head", *head_);
}

ag::Variable LstmForecaster::forward(const Tensor& x) {
  RIPPLE_CHECK(x.rank() == 3 && x.dim(2) == 1)
      << "LstmForecaster expects [N,T,1], got " << shape_to_string(x.shape());
  const int64_t n = x.dim(0);
  const int64_t steps = x.dim(1);
  ag::Variable seq(x);

  nn::LstmCell::State s1 = cell1_->initial_state(n);
  nn::LstmCell::State s2 = cell2_->initial_state(n);
  ag::Variable h2_last;
  for (int64_t t = 0; t < steps; ++t) {
    ag::Variable x_t = ag::select_time(seq, t);
    s1 = cell1_->forward(x_t, s1);
    ag::Variable h1 = drop1_.forward(norm1_.forward(s1.h));
    s2 = cell2_->forward(h1, s2);
    h2_last = s2.h;
  }
  ag::Variable h = drop2_.forward(norm2_.forward(h2_last));
  return head_->forward(h);
}

void LstmForecaster::set_mc_mode(bool on) { factory_.set_mc_mode(on); }

void LstmForecaster::set_mc_replicas(int64_t t) { factory_.set_mc_replicas(t); }

std::vector<core::InvertedNorm*> LstmForecaster::inverted_norm_layers() {
  return factory_.inverted_norms();
}

std::vector<nn::Dropout*> LstmForecaster::dropout_layers() {
  return factory_.dropouts();
}

std::vector<nn::SpatialDropout*> LstmForecaster::spatial_dropout_layers() {
  return factory_.spatial_dropouts();
}

void LstmForecaster::clear_weight_transforms() {
  for (auto& reset : transform_resets_) reset();
}

std::vector<fault::FaultTarget> LstmForecaster::fault_targets() {
  return targets_;
}

}  // namespace ripple::models
