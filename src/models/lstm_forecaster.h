// Two-layer LSTM autoregressive forecaster for the CO2 task (W/A = 8/8).
//
// Matches the paper's "two LSTM layers and a classifier layer". The
// variant norm stack is applied feature-wise to each timestep's hidden
// state between the LSTM layers, and once more to the final hidden state
// before the regression head — the LSTM analogue of "inverted norm after
// every conv layer".
#pragma once

#include <memory>
#include <vector>

#include "models/block_factory.h"
#include "nn/linear.h"
#include "nn/lstm.h"
#include "quant/quantizer.h"

namespace ripple::models {

class LstmForecaster : public TaskModel {
 public:
  struct Topology {
    int64_t hidden = 24;
    int64_t window = 24;  // input timesteps
    int weight_bits = 8;
  };

  LstmForecaster(Topology topo, VariantConfig config, Rng* rng = nullptr);

  /// x is [N, window, 1]; returns [N, 1].
  autograd::Variable forward(const Tensor& x) override;
  void set_mc_mode(bool on) override;
  void set_mc_replicas(int64_t t) override;
  std::vector<core::InvertedNorm*> inverted_norm_layers() override;
  std::vector<nn::Dropout*> dropout_layers() override;
  std::vector<nn::SpatialDropout*> spatial_dropout_layers() override;
  std::vector<fault::FaultTarget> fault_targets() override;
  bool binary_weights() const override { return false; }
  const char* name() const override { return "lstm"; }

  const Topology& topology() const { return topo_; }

 private:
  void clear_weight_transforms() override;
  void quantize_cell(nn::LstmCell& cell);

  Topology topo_;
  BlockFactory factory_;
  std::vector<std::unique_ptr<quant::Quantizer>> quantizers_;
  std::vector<fault::FaultTarget> targets_;
  std::vector<std::function<void()>> transform_resets_;

  std::unique_ptr<nn::LstmCell> cell1_;
  std::unique_ptr<nn::LstmCell> cell2_;
  nn::Sequential norm1_;  // between LSTM layers (per timestep)
  nn::Sequential drop1_;
  nn::Sequential norm2_;  // on the final hidden state
  nn::Sequential drop2_;
  std::unique_ptr<nn::Linear> head_;
};

}  // namespace ripple::models
