#include "models/evaluate.h"

#include <cstring>

#include "core/inverted_norm.h"
#include "core/metrics.h"
#include "fault/mc_batch.h"
#include "tensor/ops.h"

namespace ripple::models {
namespace {

/// RAII: eval mode + MC sampling for the scope of one evaluation.
class McScope {
 public:
  explicit McScope(TaskModel& model) : model_(model) {
    model_.set_training(false);
    model_.set_mc_mode(true);
  }
  ~McScope() { model_.set_mc_mode(false); }

 private:
  TaskModel& model_;
};

/// RAII: MC mode + deterministic per-layer mask streams + replica fold.
/// `replicas` is t for the batched pass and 1 for the serial reference.
class McBatchScope {
 public:
  McBatchScope(TaskModel& model, int64_t replicas, uint64_t seed)
      : model_(model), mc_(model) {
    layers_ = model_.inverted_norm_layers();
    for (size_t i = 0; i < layers_.size(); ++i)
      layers_[i]->set_mask_stream(fault::layer_stream_seed(seed, i));
    model_.set_mc_replicas(replicas);
  }
  ~McBatchScope() {
    model_.set_mc_replicas(1);
    for (auto* l : layers_) l->clear_mask_stream();
  }

 private:
  TaskModel& model_;
  McScope mc_;
  std::vector<core::InvertedNorm*> layers_;
};

}  // namespace

Tensor probs_mc(TaskModel& model, const Tensor& x, int mc_samples) {
  McScope scope(model);
  const core::McClassification mc = core::mc_classify(
      [&model](const Tensor& batch) { return model.predict(batch); }, x,
      mc_samples);
  return mc.mean_probs;
}

double accuracy_mc(TaskModel& model, const data::ClassificationData& test,
                   int mc_samples, int64_t batch_size) {
  McScope scope(model);
  int64_t correct = 0;
  for (auto [begin, end] : data::batch_ranges(test.size(), batch_size)) {
    Tensor xb = data::slice_rows(test.x, begin, end - begin);
    const core::McClassification mc = core::mc_classify(
        [&model](const Tensor& batch) { return model.predict(batch); }, xb,
        mc_samples);
    for (int64_t i = begin; i < end; ++i)
      if (mc.predictions[static_cast<size_t>(i - begin)] ==
          test.y[static_cast<size_t>(i)])
        ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(test.size());
}

double rmse_mc(TaskModel& model, const data::SeriesData& test, int mc_samples,
               int64_t batch_size) {
  McScope scope(model);
  double sq_sum = 0.0;
  int64_t count = 0;
  for (auto [begin, end] : data::batch_ranges(test.size(), batch_size)) {
    Tensor xb = data::slice_rows(test.windows, begin, end - begin);
    Tensor yb = data::slice_rows(test.targets, begin, end - begin);
    const core::McRegression mc = core::mc_regress(
        [&model](const Tensor& batch) { return model.predict(batch); }, xb,
        mc_samples);
    const float* pp = mc.mean.data();
    const float* pt = yb.data();
    for (int64_t i = 0; i < yb.numel(); ++i) {
      const double d = pp[i] - pt[i];
      sq_sum += d * d;
      ++count;
    }
  }
  return std::sqrt(sq_sum / static_cast<double>(count));
}

double miou_mc(TaskModel& model, const data::SegmentationData& test,
               int mc_samples, int64_t batch_size) {
  McScope scope(model);
  // Aggregate intersection/union over the whole set, not per batch.
  int64_t inter_fg = 0;
  int64_t union_fg = 0;
  int64_t inter_bg = 0;
  int64_t union_bg = 0;
  for (auto [begin, end] : data::batch_ranges(test.size(), batch_size)) {
    Tensor xb = data::slice_rows(test.images, begin, end - begin);
    Tensor yb = data::slice_rows(test.masks, begin, end - begin);
    Tensor probs = core::mc_segment(
        [&model](const Tensor& batch) { return model.predict(batch); }, xb,
        mc_samples);
    const float* pp = probs.data();
    const float* pt = yb.data();
    for (int64_t i = 0; i < probs.numel(); ++i) {
      const bool p = pp[i] >= 0.5f;
      const bool t = pt[i] >= 0.5f;
      if (p && t) ++inter_fg;
      if (p || t) ++union_fg;
      if (!p && !t) ++inter_bg;
      if (!p || !t) ++union_bg;
    }
  }
  const double iou_fg =
      union_fg > 0 ? static_cast<double>(inter_fg) / union_fg : 1.0;
  const double iou_bg =
      union_bg > 0 ? static_cast<double>(inter_bg) / union_bg : 1.0;
  return 0.5 * (iou_fg + iou_bg);
}

Tensor mc_forward_batched(TaskModel& model, const Tensor& x, int t,
                          uint64_t seed) {
  RIPPLE_CHECK(t >= 1) << "mc_forward_batched needs t >= 1";
  McBatchScope scope(model, t, seed);
  return model.predict(fault::replicate_batch(x, t));
}

Tensor mc_forward_serial(TaskModel& model, const Tensor& x, int t,
                         uint64_t seed) {
  RIPPLE_CHECK(t >= 1) << "mc_forward_serial needs t >= 1";
  McBatchScope scope(model, /*replicas=*/1, seed);
  std::vector<core::InvertedNorm*> layers = model.inverted_norm_layers();
  Tensor stacked;
  for (int r = 0; r < t; ++r) {
    for (auto* l : layers) l->set_mask_replica_offset(r);
    Tensor y = model.predict(x);
    if (!stacked.defined()) {
      Shape shape = y.shape();
      shape[0] *= t;
      stacked = Tensor(shape);
    }
    std::memcpy(stacked.data() + static_cast<int64_t>(r) * y.numel(),
                y.data(), sizeof(float) * static_cast<size_t>(y.numel()));
  }
  return stacked;
}

core::McClassification probs_mc_batched(TaskModel& model, const Tensor& x,
                                        int t, uint64_t seed) {
  Tensor logits = mc_forward_batched(model, x, t, seed);
  RIPPLE_CHECK(logits.rank() == 2) << "classifier must return [N,C] logits";
  Tensor probs = ops::softmax_rows(logits);
  fault::ReplicaMoments moments = fault::replica_moments(probs, t);
  core::McClassification out;
  out.samples = t;
  out.mean_probs = std::move(moments.mean);
  out.variance = std::move(moments.variance);
  out.predictions = ops::argmax_rows(out.mean_probs);
  return out;
}

}  // namespace ripple::models
