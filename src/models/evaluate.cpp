#include "models/evaluate.h"

#include "core/metrics.h"
#include "tensor/ops.h"

namespace ripple::models {
namespace {

/// RAII: eval mode + MC sampling for the scope of one evaluation.
class McScope {
 public:
  explicit McScope(TaskModel& model) : model_(model) {
    model_.set_training(false);
    model_.set_mc_mode(true);
  }
  ~McScope() { model_.set_mc_mode(false); }

 private:
  TaskModel& model_;
};

}  // namespace

Tensor probs_mc(TaskModel& model, const Tensor& x, int mc_samples) {
  McScope scope(model);
  const core::McClassification mc = core::mc_classify(
      [&model](const Tensor& batch) { return model.predict(batch); }, x,
      mc_samples);
  return mc.mean_probs;
}

double accuracy_mc(TaskModel& model, const data::ClassificationData& test,
                   int mc_samples, int64_t batch_size) {
  McScope scope(model);
  int64_t correct = 0;
  for (auto [begin, end] : data::batch_ranges(test.size(), batch_size)) {
    Tensor xb = data::slice_rows(test.x, begin, end - begin);
    const core::McClassification mc = core::mc_classify(
        [&model](const Tensor& batch) { return model.predict(batch); }, xb,
        mc_samples);
    for (int64_t i = begin; i < end; ++i)
      if (mc.predictions[static_cast<size_t>(i - begin)] ==
          test.y[static_cast<size_t>(i)])
        ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(test.size());
}

double rmse_mc(TaskModel& model, const data::SeriesData& test, int mc_samples,
               int64_t batch_size) {
  McScope scope(model);
  double sq_sum = 0.0;
  int64_t count = 0;
  for (auto [begin, end] : data::batch_ranges(test.size(), batch_size)) {
    Tensor xb = data::slice_rows(test.windows, begin, end - begin);
    Tensor yb = data::slice_rows(test.targets, begin, end - begin);
    const core::McRegression mc = core::mc_regress(
        [&model](const Tensor& batch) { return model.predict(batch); }, xb,
        mc_samples);
    const float* pp = mc.mean.data();
    const float* pt = yb.data();
    for (int64_t i = 0; i < yb.numel(); ++i) {
      const double d = pp[i] - pt[i];
      sq_sum += d * d;
      ++count;
    }
  }
  return std::sqrt(sq_sum / static_cast<double>(count));
}

double miou_mc(TaskModel& model, const data::SegmentationData& test,
               int mc_samples, int64_t batch_size) {
  McScope scope(model);
  // Aggregate intersection/union over the whole set, not per batch.
  int64_t inter_fg = 0;
  int64_t union_fg = 0;
  int64_t inter_bg = 0;
  int64_t union_bg = 0;
  for (auto [begin, end] : data::batch_ranges(test.size(), batch_size)) {
    Tensor xb = data::slice_rows(test.images, begin, end - begin);
    Tensor yb = data::slice_rows(test.masks, begin, end - begin);
    Tensor probs = core::mc_segment(
        [&model](const Tensor& batch) { return model.predict(batch); }, xb,
        mc_samples);
    const float* pp = probs.data();
    const float* pt = yb.data();
    for (int64_t i = 0; i < probs.numel(); ++i) {
      const bool p = pp[i] >= 0.5f;
      const bool t = pt[i] >= 0.5f;
      if (p && t) ++inter_fg;
      if (p || t) ++union_fg;
      if (!p && !t) ++inter_bg;
      if (!p || !t) ++union_bg;
    }
  }
  const double iou_fg =
      union_fg > 0 ? static_cast<double>(inter_fg) / union_fg : 1.0;
  const double iou_bg =
      union_bg > 0 ? static_cast<double>(inter_bg) / union_bg : 1.0;
  return 0.5 * (iou_fg + iou_bg);
}

}  // namespace ripple::models
