// Deprecated shims over the serving API — see evaluate.h for the
// migration table. Each helper builds a short-lived InferenceSession with
// the legacy call's semantics (batch size, samples, seed source) and
// forwards to it.
#include "models/evaluate.h"

#include "serve/metrics.h"
#include "serve/session.h"
#include "tensor/random.h"

namespace ripple::models {

namespace {

serve::SessionOptions legacy_options(serve::TaskKind task, int mc_samples,
                                     uint64_t seed, int64_t batch_rows) {
  serve::SessionOptions opts;
  opts.task = task;
  opts.mc_samples = mc_samples;
  opts.seed = seed;
  // Legacy helpers evaluated `batch_rows` inputs per forward regardless of
  // T; max_batch counts stacked rows, so scale it by the effective T.
  opts.max_batch = batch_rows;
  return opts;
}

/// Session whose chunking reproduces the legacy per-batch evaluation and
/// whose seed comes from the global generator — reseeding global_rng()
/// still makes consecutive evaluations reproducible.
serve::SessionOptions dataset_options(serve::TaskKind task, TaskModel& model,
                                      int mc_samples, int64_t batch_size) {
  const int eff = mc_samples_for(model.variant(), mc_samples);
  return legacy_options(task, mc_samples, global_rng().next_u64(),
                        batch_size * eff);
}

serve::SessionOptions raw_options(serve::TaskKind task, const Tensor& x,
                                  int t, uint64_t seed,
                                  serve::ExecutionPolicy policy) {
  serve::SessionOptions opts = legacy_options(
      task, t, seed, x.dim(0) * static_cast<int64_t>(t));  // never chunk
  opts.policy = policy;
  opts.clamp_samples = false;  // stack exactly t replicas, like the original
  return opts;
}

}  // namespace

double accuracy_mc(TaskModel& model, const data::ClassificationData& test,
                   int mc_samples, int64_t batch_size) {
  serve::InferenceSession session(
      model, dataset_options(serve::TaskKind::kClassification, model,
                             mc_samples, batch_size));
  return serve::accuracy(session, test);
}

Tensor probs_mc(TaskModel& model, const Tensor& x, int mc_samples) {
  serve::InferenceSession session(
      model, dataset_options(serve::TaskKind::kClassification, model,
                             mc_samples, x.dim(0)));
  return session.classify(x).mean_probs;
}

double rmse_mc(TaskModel& model, const data::SeriesData& test, int mc_samples,
               int64_t batch_size) {
  serve::InferenceSession session(
      model, dataset_options(serve::TaskKind::kRegression, model, mc_samples,
                             batch_size));
  return serve::rmse(session, test);
}

double miou_mc(TaskModel& model, const data::SegmentationData& test,
               int mc_samples, int64_t batch_size) {
  serve::InferenceSession session(
      model, dataset_options(serve::TaskKind::kSegmentation, model,
                             mc_samples, batch_size));
  return serve::miou(session, test);
}

Tensor mc_forward_batched(TaskModel& model, const Tensor& x, int t,
                          uint64_t seed) {
  RIPPLE_CHECK(t >= 1) << "mc_forward_batched needs t >= 1";
  serve::InferenceSession session(
      model, raw_options(serve::TaskKind::kClassification, x, t, seed,
                         serve::ExecutionPolicy::kBatched));
  return session.mc_outputs(x);
}

Tensor mc_forward_serial(TaskModel& model, const Tensor& x, int t,
                         uint64_t seed) {
  RIPPLE_CHECK(t >= 1) << "mc_forward_serial needs t >= 1";
  serve::InferenceSession session(
      model, raw_options(serve::TaskKind::kClassification, x, t, seed,
                         serve::ExecutionPolicy::kSerial));
  return session.mc_outputs(x);
}

core::McClassification probs_mc_batched(TaskModel& model, const Tensor& x,
                                        int t, uint64_t seed) {
  serve::InferenceSession session(
      model, raw_options(serve::TaskKind::kClassification, x, t, seed,
                         serve::ExecutionPolicy::kBatched));
  const serve::Classification mc = session.classify(x);
  core::McClassification out;
  out.samples = mc.samples;
  out.mean_probs = mc.mean_probs;
  out.variance = mc.variance;
  out.predictions = mc.predictions;
  return out;
}

}  // namespace ripple::models
