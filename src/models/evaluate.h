// Bayesian MC evaluation of a deployed model on each task's metric.
//
// All helpers switch the model to eval mode with MC sampling enabled
// (set_mc_mode(true)); pass mc_samples_for(variant, T) so the
// deterministic conventional NN runs a single pass.
#pragma once

#include "core/bayesian.h"
#include "data/dataset.h"
#include "models/task_model.h"

namespace ripple::models {

/// Classification accuracy with `mc_samples`-pass averaging, evaluated in
/// batches of `batch_size`.
double accuracy_mc(TaskModel& model, const data::ClassificationData& test,
                   int mc_samples, int64_t batch_size = 64);

/// MC-averaged class probabilities [N, C] for a batch of inputs.
Tensor probs_mc(TaskModel& model, const Tensor& x, int mc_samples);

/// Forecast RMSE (normalized units) with MC-mean predictions.
double rmse_mc(TaskModel& model, const data::SeriesData& test, int mc_samples,
               int64_t batch_size = 256);

/// Binary segmentation mIoU with MC-averaged pixel probabilities.
double miou_mc(TaskModel& model, const data::SegmentationData& test,
               int mc_samples, int64_t batch_size = 16);

}  // namespace ripple::models
