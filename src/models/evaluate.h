// Bayesian MC evaluation of a deployed model on each task's metric.
//
// All helpers switch the model to eval mode with MC sampling enabled
// (set_mc_mode(true)); pass mc_samples_for(variant, T) so the
// deterministic conventional NN runs a single pass.
#pragma once

#include "core/bayesian.h"
#include "data/dataset.h"
#include "models/task_model.h"

namespace ripple::models {

/// Classification accuracy with `mc_samples`-pass averaging, evaluated in
/// batches of `batch_size`.
double accuracy_mc(TaskModel& model, const data::ClassificationData& test,
                   int mc_samples, int64_t batch_size = 64);

/// MC-averaged class probabilities [N, C] for a batch of inputs.
Tensor probs_mc(TaskModel& model, const Tensor& x, int mc_samples);

/// Forecast RMSE (normalized units) with MC-mean predictions.
double rmse_mc(TaskModel& model, const data::SeriesData& test, int mc_samples,
               int64_t batch_size = 256);

/// Binary segmentation mIoU with MC-averaged pixel probabilities.
double miou_mc(TaskModel& model, const data::SegmentationData& test,
               int mc_samples, int64_t batch_size = 16);

// ---- batched Monte-Carlo forward (fault/mc_batch.h) ------------------------
// The T stochastic samples fold into the batch dimension: the input is
// replicated once and ONE forward pass runs, with only the InvertedNorm
// layers diverging per replica. Each InvertedNorm draws its masks from a
// deterministic per-layer stream, so the batched and serial paths sample
// identical masks for the same seed and agree to float rounding.

/// One batched MC pass: returns the stacked raw model outputs [t·N, ...],
/// replica-major.
Tensor mc_forward_batched(TaskModel& model, const Tensor& x, int t,
                          uint64_t seed);

/// Serial reference path (t separate passes) under the same mask-stream
/// convention; kept as the cross-check oracle for the batched path.
Tensor mc_forward_serial(TaskModel& model, const Tensor& x, int t,
                         uint64_t seed);

/// Batched analogue of probs_mc for classifiers: softmax per stacked row,
/// then across-replica mean/variance — all from a single forward pass.
core::McClassification probs_mc_batched(TaskModel& model, const Tensor& x,
                                        int t, uint64_t seed);

}  // namespace ripple::models
