// DEPRECATED Bayesian MC evaluation helpers.
//
// This was the original research-harness evaluation surface: free
// functions that mutate the model's MC flags per call. It has been
// replaced by the thread-safe serving API (serve/session.h +
// serve/metrics.h); every helper below is now a thin shim that constructs
// a temporary serve::InferenceSession, and the declarations are kept for
// one release only — migrate:
//
//   accuracy_mc(model, test, T)        → serve::accuracy(session, test)
//   probs_mc(model, x, T)              → session.classify(x).mean_probs
//   rmse_mc(model, test, T)            → serve::rmse(session, test)
//   miou_mc(model, test, T)            → serve::miou(session, test)
//   mc_forward_batched(model, x, T, s) → session.mc_outputs(x)   (kBatched)
//   mc_forward_serial(model, x, T, s)  → session.mc_outputs(x)   (kSerial)
//   probs_mc_batched(model, x, T, s)   → session.classify(x)
//
// The dataset helpers (accuracy_mc/probs_mc/rmse_mc/miou_mc) draw their
// session seed from global_rng(), preserving the legacy contract that
// reseeding the global generator makes consecutive evaluations
// reproducible. The mc_forward_* shims take the seed explicitly and still
// stack exactly t replicas for deterministic variants.
#pragma once

#include "core/bayesian.h"
#include "data/dataset.h"
#include "models/task_model.h"

namespace ripple::models {

/// Classification accuracy with `mc_samples`-pass averaging, evaluated in
/// batches of `batch_size`. Deprecated: serve::accuracy.
double accuracy_mc(TaskModel& model, const data::ClassificationData& test,
                   int mc_samples, int64_t batch_size = 64);

/// MC-averaged class probabilities [N, C] for a batch of inputs.
/// Deprecated: serve::InferenceSession::classify.
Tensor probs_mc(TaskModel& model, const Tensor& x, int mc_samples);

/// Forecast RMSE (normalized units) with MC-mean predictions.
/// Deprecated: serve::rmse.
double rmse_mc(TaskModel& model, const data::SeriesData& test, int mc_samples,
               int64_t batch_size = 256);

/// Binary segmentation mIoU with MC-averaged pixel probabilities.
/// Deprecated: serve::miou.
double miou_mc(TaskModel& model, const data::SegmentationData& test,
               int mc_samples, int64_t batch_size = 16);

// ---- batched Monte-Carlo forward (fault/mc_batch.h) ------------------------
// The T stochastic samples fold into the batch dimension: the input is
// replicated once and ONE forward pass runs, with only the stochastic
// layers diverging per replica. Each layer draws its masks from a
// deterministic per-layer stream, so the batched and serial paths sample
// identical masks for the same seed and agree to float rounding.

/// One batched MC pass: returns the stacked raw model outputs [t·N, ...],
/// replica-major. Deprecated: session.mc_outputs with kBatched.
Tensor mc_forward_batched(TaskModel& model, const Tensor& x, int t,
                          uint64_t seed);

/// Serial reference path (t separate passes) under the same mask-stream
/// convention; kept as the cross-check oracle for the batched path.
/// Deprecated: session.mc_outputs with kSerial.
Tensor mc_forward_serial(TaskModel& model, const Tensor& x, int t,
                         uint64_t seed);

/// Batched analogue of probs_mc for classifiers: softmax per stacked row,
/// then across-replica mean/variance — all from a single forward pass.
/// Deprecated: session.classify.
core::McClassification probs_mc_batched(TaskModel& model, const Tensor& x,
                                        int t, uint64_t seed);

}  // namespace ripple::models
