#include "models/task_model.h"

#include "autograd/variable.h"
#include "tensor/check.h"

namespace ripple::models {

Tensor TaskModel::predict(const Tensor& x) {
  autograd::NoGradGuard no_grad;
  return forward(x).value();
}

void TaskModel::deploy() {
  RIPPLE_CHECK(!deployed_) << "deploy() called twice";
  for (fault::FaultTarget& t : fault_targets()) {
    if (t.quantizer == nullptr) continue;
    Tensor& w = t.param->var.value();
    t.quantizer->calibrate(w);
    w.copy_from(t.quantizer->decode(t.quantizer->encode(w), w.shape()));
  }
  // The deployed values already are the hardware weights; the transforms
  // become identity.
  clear_weight_transforms();
  deployed_ = true;
}

std::vector<float> TaskModel::quantizer_calibrations() {
  RIPPLE_CHECK(deployed_) << "quantizer_calibrations() before deploy()";
  std::vector<float> out;
  for (const fault::FaultTarget& t : fault_targets())
    out.push_back(t.quantizer != nullptr ? t.quantizer->calibration() : 0.0f);
  return out;
}

void TaskModel::restore_deployed(const std::vector<float>& calibrations) {
  RIPPLE_CHECK(!deployed_) << "restore_deployed() on a deployed model";
  const std::vector<fault::FaultTarget> targets = fault_targets();
  RIPPLE_CHECK(calibrations.size() == targets.size())
      << "restore_deployed: " << calibrations.size() << " calibrations for "
      << targets.size() << " fault targets";
  for (size_t i = 0; i < targets.size(); ++i) {
    if (targets[i].quantizer == nullptr) continue;
    targets[i].quantizer->set_calibration(calibrations[i]);
  }
  clear_weight_transforms();
  deployed_ = true;
}

}  // namespace ripple::models
