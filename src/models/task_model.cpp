#include "models/task_model.h"

#include "autograd/variable.h"

namespace ripple::models {

Tensor TaskModel::predict(const Tensor& x) {
  autograd::NoGradGuard no_grad;
  return forward(x).value();
}

}  // namespace ripple::models
