// Model state persistence and the train-or-load cache used by benches.
//
// Bench binaries share trained models (e.g. Table I and Fig. 5a both need
// the four image classifiers); caching deployment artifacts under
// RIPPLE_MODEL_CACHE (default "ripple_model_cache/") makes each subsequent
// bench start from the same deployed weights instantly and keeps the whole
// suite reproducible. Since the deploy/ redesign the cache stores .rpla
// deployment artifacts (deploy/artifact.h) — the very files
// serve::InferenceSession::open serves — instead of the old raw-state
// .rplm dumps, so anything a bench trains is immediately servable without
// retraining in-process.
#pragma once

#include <functional>
#include <string>

#include "autograd/module.h"
#include "models/task_model.h"

namespace ripple::models {

/// Directory for cached model state; created on demand. Set
/// RIPPLE_MODEL_CACHE=  (empty) to disable caching.
std::string model_cache_dir();

/// Serializes all parameters and buffers (names + tensors).
void save_state(autograd::Module& module, const std::string& path);

/// Restores state saved by save_state. Returns false when the file is
/// missing; throws on name/shape mismatch (stale cache — delete it).
bool load_state(autograd::Module& module, const std::string& path);

/// Loads the deployment artifact `<cache_dir>/<cache_key>.rpla` if
/// present, otherwise runs train_fn, deploys the model (when train_fn did
/// not) and saves the artifact. Either way the model comes back
/// *deployed* — quantizer scales frozen, hardware weight values in place —
/// ready for an InferenceSession. Returns true when the cache was hit.
bool train_or_load(TaskModel& model, const std::string& cache_key,
                   const std::function<void()>& train_fn);

}  // namespace ripple::models
