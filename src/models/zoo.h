// Model state persistence and the train-or-load cache used by benches.
//
// Bench binaries share trained models (e.g. Table I and Fig. 5a both need
// the four image classifiers); caching trained state under
// RIPPLE_MODEL_CACHE (default "ripple_model_cache/") makes each subsequent
// bench start from the same trained weights instantly and keeps the whole
// suite reproducible.
#pragma once

#include <functional>
#include <string>

#include "autograd/module.h"

namespace ripple::models {

/// Directory for cached model state; created on demand. Set
/// RIPPLE_MODEL_CACHE=  (empty) to disable caching.
std::string model_cache_dir();

/// Serializes all parameters and buffers (names + tensors).
void save_state(autograd::Module& module, const std::string& path);

/// Restores state saved by save_state. Returns false when the file is
/// missing; throws on name/shape mismatch (stale cache — delete it).
bool load_state(autograd::Module& module, const std::string& path);

/// Loads `<cache_dir>/<cache_key>.rplm` if present, otherwise runs
/// train_fn and saves. Returns true when the cache was hit.
bool train_or_load(autograd::Module& model, const std::string& cache_key,
                   const std::function<void()>& train_fn);

}  // namespace ripple::models
