#include "models/variants.h"

namespace ripple::models {

const char* variant_name(Variant v) {
  switch (v) {
    case Variant::kConventional:
      return "NN";
    case Variant::kSpinDrop:
      return "SpinDrop";
    case Variant::kSpatialSpinDrop:
      return "SpatialSpinDrop";
    case Variant::kProposed:
      return "Proposed";
  }
  return "unknown";
}

std::vector<Variant> all_variants() {
  return {Variant::kConventional, Variant::kSpinDrop,
          Variant::kSpatialSpinDrop, Variant::kProposed};
}

int mc_samples_for(Variant v, int requested) {
  return v == Variant::kConventional ? 1 : requested;
}

}  // namespace ripple::models
