// The four method variants compared throughout the paper's evaluation
// (Table I, Figs. 5-6):
//   Conventional      — plain NN: BatchNorm, no dropout, deterministic.
//   SpinDrop [8]      — Dropout-based Bayesian NN (element-wise MC-Dropout).
//   SpatialSpinDrop [7]— spatial (channel-wise) MC-Dropout.
//   Proposed          — inverted normalization + affine dropout (this paper).
#pragma once

#include <vector>

namespace ripple::models {

enum class Variant {
  kConventional,
  kSpinDrop,
  kSpatialSpinDrop,
  kProposed,
};

const char* variant_name(Variant v);

/// All four, in the paper's table order.
std::vector<Variant> all_variants();

/// Bayesian variants sample multiple stochastic passes; the conventional
/// NN is deterministic, so one pass suffices.
int mc_samples_for(Variant v, int requested);

}  // namespace ripple::models
