// Builds the variant-dependent normalization / dropout layers and keeps
// typed handles so models can toggle MC mode uniformly.
//
// Per-variant post-conv stack (activation added by the topology itself):
//   Conventional:     conv → BatchNorm → act
//   SpinDrop:         conv → BatchNorm → act → Dropout(p)
//   SpatialSpinDrop:  conv → BatchNorm → act → SpatialDropout(p)
//   Proposed:         conv → InvertedNorm(p, affine dropout) → act
#pragma once

#include <vector>

#include "core/inverted_norm.h"
#include "models/task_model.h"
#include "nn/dropout.h"
#include "nn/norm.h"

namespace ripple::models {

class BlockFactory {
 public:
  BlockFactory(const VariantConfig& config, Rng* rng = nullptr)
      : config_(config), rng_(rng) {}

  /// Appends the variant's norm layer. `groups` selects the inverted-norm
  /// grouping for the proposed variant (1 = per-instance; the U-Net passes
  /// its GroupNorm-style group count). Baselines always use BatchNorm.
  nn::Layer& add_norm(nn::Sequential& seq, int64_t channels,
                      int64_t groups = 1);

  /// Appends the variant's post-activation dropout (identity for
  /// Conventional and Proposed — the latter's stochasticity lives in the
  /// affine dropout inside the norm).
  void add_dropout(nn::Sequential& seq);

  /// Toggles MC sampling on every stochastic layer created so far.
  void set_mc_mode(bool on);

  /// Folds t Monte-Carlo replicas into the batch dimension of every
  /// InvertedNorm created so far (element-wise dropout layers already
  /// sample independent masks per batch row, so they need no hook).
  void set_mc_replicas(int64_t t);

  /// The InvertedNorm layers created so far, in construction order —
  /// used to seed deterministic per-layer mask streams for batched MC.
  const std::vector<core::InvertedNorm*>& inverted_norms() const {
    return inverted_;
  }

  /// Element-wise / spatial dropout layers created so far, in construction
  /// order — the serving session binds each to a deterministic mask-stream
  /// slot so MC-Dropout baselines replay bit-exactly batched vs serial.
  const std::vector<nn::Dropout*>& dropouts() const { return dropouts_; }
  const std::vector<nn::SpatialDropout*>& spatial_dropouts() const {
    return spatial_;
  }

 private:
  VariantConfig config_;
  Rng* rng_;
  std::vector<core::InvertedNorm*> inverted_;
  std::vector<nn::Dropout*> dropouts_;
  std::vector<nn::SpatialDropout*> spatial_;
};

}  // namespace ripple::models
