// Error-checking macros for the ripple library.
//
// All precondition violations throw ripple::CheckError (derived from
// std::logic_error) so callers can distinguish programming errors from
// environmental failures (std::runtime_error).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace ripple {

/// Thrown when a RIPPLE_CHECK precondition fails.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] void throw_check_failure(const char* cond, const char* file,
                                      int line, const std::string& msg);

/// Builds the optional message from stream-style arguments.
class MessageBuilder {
 public:
  template <typename T>
  MessageBuilder& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }
  std::string str() const { return stream_.str(); }

 private:
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace ripple

/// RIPPLE_CHECK(cond) or RIPPLE_CHECK(cond) << "context " << value;
/// Evaluates `cond`; on failure throws ripple::CheckError with file/line and
/// any streamed context.
#define RIPPLE_CHECK(cond)                                                   \
  if (cond) {                                                                \
  } else                                                                     \
    ::ripple::detail::CheckFailer{#cond, __FILE__, __LINE__} =               \
        ::ripple::detail::MessageBuilder{}

namespace ripple::detail {

/// Receives the finished MessageBuilder and throws. operator= has lower
/// precedence than operator<<, so all streamed args are collected first.
struct CheckFailer {
  const char* cond;
  const char* file;
  int line;
  [[noreturn]] void operator=(const MessageBuilder& mb) const {
    throw_check_failure(cond, file, line, mb.str());
  }
};

}  // namespace ripple::detail
