#include "tensor/vmath.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "tensor/env.h"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define RIPPLE_X86 1
#endif

namespace ripple {
namespace {

// Cephes expf constants: n = rint(x·log2e), r = x − n·ln2_hi − n·ln2_lo,
// exp(r) ≈ 1 + r + r²·P(r), result scaled by 2^n through the exponent
// bits. Inputs are clamped to [-87, 88] so n ∈ [-126, 127] and the scale
// stays a normal float; the consumers below only need exp of clamped
// arguments (σ and tanh saturate long before the clamp distorts them).
constexpr float kExpLo = -87.0f;
constexpr float kExpHi = 88.0f;
constexpr float kLog2e = 1.44269504088896341f;
constexpr float kLn2Hi = 0.693359375f;
constexpr float kLn2Lo = -2.12194440e-4f;
constexpr float kExpC0 = 1.9875691500e-4f;
constexpr float kExpC1 = 1.3981999507e-3f;
constexpr float kExpC2 = 8.3334519073e-3f;
constexpr float kExpC3 = 4.1665795894e-2f;
constexpr float kExpC4 = 1.6666665459e-1f;
constexpr float kExpC5 = 5.0000001201e-1f;

// Cephes tanhf: odd polynomial x + x³·Q(x²) below 0.625, else
// 1 − 2/(exp(2|x|)+1) with the sign copied back.
constexpr float kTanhSmall = 0.625f;
constexpr float kTanhQ0 = -5.70498872745e-3f;
constexpr float kTanhQ1 = 2.06390887954e-2f;
constexpr float kTanhQ2 = -5.37397155531e-2f;
constexpr float kTanhQ3 = 1.33314422036e-1f;
constexpr float kTanhQ4 = -3.33332819422e-1f;

// std::fma is the correctly rounded fused op — the same rounding
// vfmadd213ps performs per lane, which is what keeps the scalar and
// vector forms bit-identical.
inline float exp_core(float x) {
  x = std::min(std::max(x, kExpLo), kExpHi);
  const float nf = std::nearbyintf(x * kLog2e);
  float r = std::fma(nf, -kLn2Hi, x);
  r = std::fma(nf, -kLn2Lo, r);
  float p = kExpC0;
  p = std::fma(p, r, kExpC1);
  p = std::fma(p, r, kExpC2);
  p = std::fma(p, r, kExpC3);
  p = std::fma(p, r, kExpC4);
  p = std::fma(p, r, kExpC5);
  const float e = std::fma(r * r, p, r) + 1.0f;
  const uint32_t bits = uint32_t(int32_t(nf) + 127) << 23;
  float s;
  std::memcpy(&s, &bits, sizeof(s));
  return e * s;
}

#ifdef RIPPLE_X86

__attribute__((target("avx2,fma"))) inline __m256 exp_core8(__m256 x) {
  x = _mm256_min_ps(_mm256_max_ps(x, _mm256_set1_ps(kExpLo)),
                    _mm256_set1_ps(kExpHi));
  const __m256 nf =
      _mm256_round_ps(_mm256_mul_ps(x, _mm256_set1_ps(kLog2e)),
                      _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  __m256 r = _mm256_fmadd_ps(nf, _mm256_set1_ps(-kLn2Hi), x);
  r = _mm256_fmadd_ps(nf, _mm256_set1_ps(-kLn2Lo), r);
  __m256 p = _mm256_set1_ps(kExpC0);
  p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(kExpC1));
  p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(kExpC2));
  p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(kExpC3));
  p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(kExpC4));
  p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(kExpC5));
  const __m256 e = _mm256_add_ps(
      _mm256_fmadd_ps(_mm256_mul_ps(r, r), p, r), _mm256_set1_ps(1.0f));
  const __m256i n = _mm256_cvtps_epi32(nf);
  const __m256 s = _mm256_castsi256_ps(
      _mm256_slli_epi32(_mm256_add_epi32(n, _mm256_set1_epi32(127)), 23));
  return _mm256_mul_ps(e, s);
}

__attribute__((target("avx2,fma"))) inline __m256 sigmoid8(__m256 x) {
  const __m256 e = exp_core8(_mm256_sub_ps(_mm256_setzero_ps(), x));
  return _mm256_div_ps(_mm256_set1_ps(1.0f),
                       _mm256_add_ps(e, _mm256_set1_ps(1.0f)));
}

__attribute__((target("avx2,fma"))) inline __m256 tanh8(__m256 x) {
  const __m256 signmask = _mm256_set1_ps(-0.0f);
  const __m256 z = _mm256_andnot_ps(signmask, x);
  // Large branch: 1 − 2/(exp(2z)+1), sign restored.
  const __m256 e = exp_core8(_mm256_add_ps(z, z));
  const __m256 big = _mm256_sub_ps(
      _mm256_set1_ps(1.0f),
      _mm256_div_ps(_mm256_set1_ps(2.0f),
                    _mm256_add_ps(e, _mm256_set1_ps(1.0f))));
  const __m256 big_signed =
      _mm256_or_ps(big, _mm256_and_ps(x, signmask));
  // Small branch: x + x³·Q(x²).
  const __m256 x2 = _mm256_mul_ps(x, x);
  __m256 q = _mm256_set1_ps(kTanhQ0);
  q = _mm256_fmadd_ps(q, x2, _mm256_set1_ps(kTanhQ1));
  q = _mm256_fmadd_ps(q, x2, _mm256_set1_ps(kTanhQ2));
  q = _mm256_fmadd_ps(q, x2, _mm256_set1_ps(kTanhQ3));
  q = _mm256_fmadd_ps(q, x2, _mm256_set1_ps(kTanhQ4));
  const __m256 small = _mm256_fmadd_ps(_mm256_mul_ps(x2, x), q, x);
  const __m256 is_small =
      _mm256_cmp_ps(z, _mm256_set1_ps(kTanhSmall), _CMP_LT_OQ);
  return _mm256_blendv_ps(big_signed, small, is_small);
}

__attribute__((target("avx2,fma"))) void vtanh_avx2(const float* x, float* y,
                                                    int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8)
    _mm256_storeu_ps(y + i, tanh8(_mm256_loadu_ps(x + i)));
  for (; i < n; ++i) y[i] = vtanh1(x[i]);
}

__attribute__((target("avx2,fma"))) void vsigmoid_avx2(const float* x,
                                                        float* y, int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8)
    _mm256_storeu_ps(y + i, sigmoid8(_mm256_loadu_ps(x + i)));
  for (; i < n; ++i) y[i] = vsigmoid1(x[i]);
}

// 16-lane AVX-512 mirrors of the kernels above: every operation is the
// same IEEE op at double width (roundscale 0x08 ≡ round-to-nearest with
// exceptions suppressed, mask-blend ≡ blendv), so lanes stay bit-identical
// to the scalar forms and the 8/16-lane dispatch never changes results.

__attribute__((target("avx512f,avx512dq"))) inline __m512 exp_core16(__m512 x) {
  x = _mm512_min_ps(_mm512_max_ps(x, _mm512_set1_ps(kExpLo)),
                    _mm512_set1_ps(kExpHi));
  const __m512 nf = _mm512_roundscale_ps(
      _mm512_mul_ps(x, _mm512_set1_ps(kLog2e)),
      _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  __m512 r = _mm512_fmadd_ps(nf, _mm512_set1_ps(-kLn2Hi), x);
  r = _mm512_fmadd_ps(nf, _mm512_set1_ps(-kLn2Lo), r);
  __m512 p = _mm512_set1_ps(kExpC0);
  p = _mm512_fmadd_ps(p, r, _mm512_set1_ps(kExpC1));
  p = _mm512_fmadd_ps(p, r, _mm512_set1_ps(kExpC2));
  p = _mm512_fmadd_ps(p, r, _mm512_set1_ps(kExpC3));
  p = _mm512_fmadd_ps(p, r, _mm512_set1_ps(kExpC4));
  p = _mm512_fmadd_ps(p, r, _mm512_set1_ps(kExpC5));
  const __m512 e = _mm512_add_ps(
      _mm512_fmadd_ps(_mm512_mul_ps(r, r), p, r), _mm512_set1_ps(1.0f));
  const __m512i n = _mm512_cvtps_epi32(nf);
  const __m512 s = _mm512_castsi512_ps(
      _mm512_slli_epi32(_mm512_add_epi32(n, _mm512_set1_epi32(127)), 23));
  return _mm512_mul_ps(e, s);
}

__attribute__((target("avx512f,avx512dq"))) inline __m512 sigmoid16(__m512 x) {
  const __m512 e = exp_core16(_mm512_sub_ps(_mm512_setzero_ps(), x));
  return _mm512_div_ps(_mm512_set1_ps(1.0f),
                       _mm512_add_ps(e, _mm512_set1_ps(1.0f)));
}

__attribute__((target("avx512f,avx512dq"))) inline __m512 tanh16(__m512 x) {
  const __m512 signmask = _mm512_set1_ps(-0.0f);
  const __m512 z = _mm512_andnot_ps(signmask, x);
  const __m512 e = exp_core16(_mm512_add_ps(z, z));
  const __m512 big = _mm512_sub_ps(
      _mm512_set1_ps(1.0f),
      _mm512_div_ps(_mm512_set1_ps(2.0f),
                    _mm512_add_ps(e, _mm512_set1_ps(1.0f))));
  const __m512 big_signed =
      _mm512_or_ps(big, _mm512_and_ps(x, signmask));
  const __m512 x2 = _mm512_mul_ps(x, x);
  __m512 q = _mm512_set1_ps(kTanhQ0);
  q = _mm512_fmadd_ps(q, x2, _mm512_set1_ps(kTanhQ1));
  q = _mm512_fmadd_ps(q, x2, _mm512_set1_ps(kTanhQ2));
  q = _mm512_fmadd_ps(q, x2, _mm512_set1_ps(kTanhQ3));
  q = _mm512_fmadd_ps(q, x2, _mm512_set1_ps(kTanhQ4));
  const __m512 small = _mm512_fmadd_ps(_mm512_mul_ps(x2, x), q, x);
  const __mmask16 is_small =
      _mm512_cmp_ps_mask(z, _mm512_set1_ps(kTanhSmall), _CMP_LT_OQ);
  return _mm512_mask_blend_ps(is_small, big_signed, small);
}

__attribute__((target("avx512f,avx512dq"))) void vtanh_avx512(const float* x, float* y,
                                                     int64_t n) {
  int64_t i = 0;
  for (; i + 16 <= n; i += 16)
    _mm512_storeu_ps(y + i, tanh16(_mm512_loadu_ps(x + i)));
  for (; i < n; ++i) y[i] = vtanh1(x[i]);
}

__attribute__((target("avx512f,avx512dq"))) void vsigmoid_avx512(const float* x,
                                                        float* y, int64_t n) {
  int64_t i = 0;
  for (; i + 16 <= n; i += 16)
    _mm512_storeu_ps(y + i, sigmoid16(_mm512_loadu_ps(x + i)));
  for (; i < n; ++i) y[i] = vsigmoid1(x[i]);
}

bool simd_enabled() {
  static const bool on = env_int("RIPPLE_SIMD", 1) != 0 &&
                         __builtin_cpu_supports("avx2") &&
                         __builtin_cpu_supports("fma");
  return on;
}

bool simd512_enabled() {
  static const bool on = simd_enabled() &&
                         __builtin_cpu_supports("avx512f") &&
                         __builtin_cpu_supports("avx512dq");
  return on;
}

#endif  // RIPPLE_X86

}  // namespace

float vsigmoid1(float x) {
  return 1.0f / (1.0f + exp_core(0.0f - x));
}

float vtanh1(float x) {
  const float z = std::fabs(x);
  const float e = exp_core(z + z);
  const float big = 1.0f - 2.0f / (e + 1.0f);
  const float x2 = x * x;
  float q = kTanhQ0;
  q = std::fma(q, x2, kTanhQ1);
  q = std::fma(q, x2, kTanhQ2);
  q = std::fma(q, x2, kTanhQ3);
  q = std::fma(q, x2, kTanhQ4);
  const float small = std::fma(x2 * x, q, x);
  return z < kTanhSmall ? small : std::copysign(big, x);
}

void vtanh(const float* x, float* y, int64_t n) {
#ifdef RIPPLE_X86
  if (simd512_enabled()) {
    vtanh_avx512(x, y, n);
    return;
  }
  if (simd_enabled()) {
    vtanh_avx2(x, y, n);
    return;
  }
#endif
  for (int64_t i = 0; i < n; ++i) y[i] = vtanh1(x[i]);
}

void vsigmoid(const float* x, float* y, int64_t n) {
#ifdef RIPPLE_X86
  if (simd512_enabled()) {
    vsigmoid_avx512(x, y, n);
    return;
  }
  if (simd_enabled()) {
    vsigmoid_avx2(x, y, n);
    return;
  }
#endif
  for (int64_t i = 0; i < n; ++i) y[i] = vsigmoid1(x[i]);
}

}  // namespace ripple
