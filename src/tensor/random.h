// Seeded random number generation.
//
// All stochastic components of the library (affine dropout masks, fault
// injection, dataset synthesis, weight init) draw from an explicitly passed
// Rng so experiments are reproducible run-to-run. A process-wide generator
// (global_rng) exists for convenience and is seeded from RIPPLE_SEED.
#pragma once

#include <cstdint>
#include <random>

namespace ripple {

/// Wrapper around std::mt19937_64 with convenience draws. Not thread-safe;
/// create one per thread (see Rng::fork for deterministic sub-streams).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Deterministically derive an independent sub-stream (e.g. one per
  /// Monte-Carlo chip instance) without disturbing this generator's state.
  Rng fork(uint64_t stream_id) const;

  /// U[lo, hi).
  float uniform(float lo = 0.0f, float hi = 1.0f);
  /// N(mean, stddev^2).
  float normal(float mean = 0.0f, float stddev = 1.0f);
  /// True with probability p (clamped to [0,1]).
  bool bernoulli(float p);
  /// Uniform integer in [lo, hi] inclusive.
  int64_t randint(int64_t lo, int64_t hi);

  /// Raw 64-bit draw (for hashing / sub-seeding).
  uint64_t next_u64();

  /// Resets the stream to a fresh seed (reproducible re-evaluation).
  void reseed(uint64_t seed);

  uint64_t seed() const { return seed_; }

  std::mt19937_64& engine() { return engine_; }

 private:
  uint64_t seed_;
  std::mt19937_64 engine_;
};

/// Process-wide generator, seeded from env RIPPLE_SEED (default 42).
Rng& global_rng();

/// splitmix64 — used for deriving fork seeds.
uint64_t splitmix64(uint64_t x);

}  // namespace ripple
