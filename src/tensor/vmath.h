// Vectorized transcendental kernels for the serving hot path.
//
// Serving time on recurrent models is dominated not by GEMM but by the
// per-element σ/tanh gate activations (libm calls, ~10–15 ns each: a
// [8, 512] gate block costs more than the int8 GEMM that produced it).
// These kernels replace them with polynomial forms (Cephes-style range
// reduction, ≤ a few ulp) evaluated 8 lanes at a time under AVX2+FMA.
//
// The contract that makes them usable on verified paths: the scalar form
// (vtanh1/vsigmoid1) and the vector form perform the SAME per-element IEEE
// operation sequence — every multiply, fma, add, compare-select and the
// int-exponent scale step rounds identically lane-wise — so results are
// bit-identical regardless of chunking, of the scalar tail position, and
// across RIPPLE_SIMD=0/1 builds. The compiled-plan verification gate
// (plan output memcmp'd against the graph oracle) therefore keeps holding
// when both sides call these kernels, in any segmentation.
//
// NaN inputs are unspecified (they cannot reach the gate activations:
// upstream GEMMs and norms produce finite values from finite weights).
#pragma once

#include <cstdint>

namespace ripple {

/// y[i] = tanh(x[i]).
void vtanh(const float* x, float* y, int64_t n);
/// y[i] = 1 / (1 + exp(-x[i])) (logistic sigmoid).
void vsigmoid(const float* x, float* y, int64_t n);

/// Single-element forms: the exact scalar operation sequence the vector
/// kernels perform per lane (and their remainder-tail implementation).
float vtanh1(float x);
float vsigmoid1(float x);

}  // namespace ripple
