#include "tensor/im2col.h"

#include <algorithm>
#include <cstring>

namespace ripple {
namespace {

/// First output index whose input index ox·stride + offset is >= 0.
inline int64_t first_valid(int64_t offset, int64_t stride) {
  if (offset >= 0) return 0;
  return (-offset + stride - 1) / stride;
}

/// One past the last output index whose input index stays < extent.
inline int64_t last_valid(int64_t extent, int64_t offset, int64_t stride) {
  if (offset >= extent) return 0;
  return (extent - 1 - offset) / stride + 1;
}

}  // namespace

int64_t conv_out_size(int64_t in, int64_t kernel, int64_t stride,
                      int64_t pad) {
  RIPPLE_CHECK(stride >= 1) << "stride must be >= 1";
  const int64_t padded = in + 2 * pad;
  RIPPLE_CHECK(padded >= kernel)
      << "kernel " << kernel << " larger than padded input " << padded;
  return (padded - kernel) / stride + 1;
}

void im2col_2d(const float* image, int64_t c, int64_t h, int64_t w, int64_t kh,
               int64_t kw, int64_t stride, int64_t pad, float* cols) {
  const int64_t oh = conv_out_size(h, kh, stride, pad);
  const int64_t ow = conv_out_size(w, kw, stride, pad);
  im2col_2d_ld(image, c, h, w, kh, kw, stride, pad, cols, oh * ow);
}

void im2col_2d_ld(const float* image, int64_t c, int64_t h, int64_t w,
                  int64_t kh, int64_t kw, int64_t stride, int64_t pad,
                  float* cols, int64_t ld) {
  const int64_t oh = conv_out_size(h, kh, stride, pad);
  const int64_t ow = conv_out_size(w, kw, stride, pad);
  int64_t row = 0;
  for (int64_t ch = 0; ch < c; ++ch) {
    const float* plane = image + ch * h * w;
    for (int64_t dy = 0; dy < kh; ++dy) {
      for (int64_t dx = 0; dx < kw; ++dx, ++row) {
        float* out_row = cols + row * ld;
        // Valid-x window for this kernel column: padding contributes only
        // at the edges, so the interior copies without per-pixel checks
        // (contiguous memcpy when stride == 1).
        const int64_t ox_lo = std::min(ow, first_valid(dx - pad, stride));
        const int64_t ox_hi =
            std::max(ox_lo, std::min(ow, last_valid(w, dx - pad, stride)));
        for (int64_t oy = 0; oy < oh; ++oy) {
          const int64_t iy = oy * stride + dy - pad;
          float* dst = out_row + oy * ow;
          if (iy < 0 || iy >= h) {
            std::memset(dst, 0, sizeof(float) * ow);
            continue;
          }
          const float* src = plane + iy * w + dx - pad;
          if (ox_lo > 0) std::memset(dst, 0, sizeof(float) * ox_lo);
          if (stride == 1) {
            std::memcpy(dst + ox_lo, src + ox_lo,
                        sizeof(float) * (ox_hi - ox_lo));
          } else {
            for (int64_t ox = ox_lo; ox < ox_hi; ++ox)
              dst[ox] = src[ox * stride];
          }
          if (ox_hi < ow)
            std::memset(dst + ox_hi, 0, sizeof(float) * (ow - ox_hi));
        }
      }
    }
  }
}

void col2im_2d(const float* cols, int64_t c, int64_t h, int64_t w, int64_t kh,
               int64_t kw, int64_t stride, int64_t pad, float* image) {
  const int64_t oh = conv_out_size(h, kh, stride, pad);
  const int64_t ow = conv_out_size(w, kw, stride, pad);
  const int64_t out_area = oh * ow;
  int64_t row = 0;
  for (int64_t ch = 0; ch < c; ++ch) {
    float* plane = image + ch * h * w;
    for (int64_t dy = 0; dy < kh; ++dy) {
      for (int64_t dx = 0; dx < kw; ++dx, ++row) {
        const float* in_row = cols + row * out_area;
        for (int64_t oy = 0; oy < oh; ++oy) {
          const int64_t iy = oy * stride + dy - pad;
          if (iy < 0 || iy >= h) continue;
          float* dst = plane + iy * w;
          for (int64_t ox = 0; ox < ow; ++ox) {
            const int64_t ix = ox * stride + dx - pad;
            if (ix >= 0 && ix < w) dst[ix] += in_row[oy * ow + ox];
          }
        }
      }
    }
  }
}

void im2col_1d(const float* signal, int64_t c, int64_t l, int64_t k,
               int64_t stride, int64_t pad, float* cols) {
  im2col_1d_ld(signal, c, l, k, stride, pad, cols,
               conv_out_size(l, k, stride, pad));
}

void im2col_1d_ld(const float* signal, int64_t c, int64_t l, int64_t k,
                  int64_t stride, int64_t pad, float* cols, int64_t ld) {
  const int64_t ol = conv_out_size(l, k, stride, pad);
  int64_t row = 0;
  for (int64_t ch = 0; ch < c; ++ch) {
    const float* line = signal + ch * l;
    for (int64_t dx = 0; dx < k; ++dx, ++row) {
      float* out_row = cols + row * ld;
      const int64_t ox_lo = std::min(ol, first_valid(dx - pad, stride));
      const int64_t ox_hi =
          std::max(ox_lo, std::min(ol, last_valid(l, dx - pad, stride)));
      if (ox_lo > 0) std::memset(out_row, 0, sizeof(float) * ox_lo);
      const float* src = line + dx - pad;
      if (stride == 1) {
        std::memcpy(out_row + ox_lo, src + ox_lo,
                    sizeof(float) * (ox_hi - ox_lo));
      } else {
        for (int64_t ox = ox_lo; ox < ox_hi; ++ox)
          out_row[ox] = src[ox * stride];
      }
      if (ox_hi < ol)
        std::memset(out_row + ox_hi, 0, sizeof(float) * (ol - ox_hi));
    }
  }
}

void col2im_1d(const float* cols, int64_t c, int64_t l, int64_t k,
               int64_t stride, int64_t pad, float* signal) {
  const int64_t ol = conv_out_size(l, k, stride, pad);
  int64_t row = 0;
  for (int64_t ch = 0; ch < c; ++ch) {
    float* line = signal + ch * l;
    for (int64_t dx = 0; dx < k; ++dx, ++row) {
      const float* in_row = cols + row * ol;
      for (int64_t ox = 0; ox < ol; ++ox) {
        const int64_t ix = ox * stride + dx - pad;
        if (ix >= 0 && ix < l) line[ix] += in_row[ox];
      }
    }
  }
}

}  // namespace ripple
