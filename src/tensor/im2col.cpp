#include "tensor/im2col.h"

namespace ripple {

int64_t conv_out_size(int64_t in, int64_t kernel, int64_t stride,
                      int64_t pad) {
  RIPPLE_CHECK(stride >= 1) << "stride must be >= 1";
  const int64_t padded = in + 2 * pad;
  RIPPLE_CHECK(padded >= kernel)
      << "kernel " << kernel << " larger than padded input " << padded;
  return (padded - kernel) / stride + 1;
}

void im2col_2d(const float* image, int64_t c, int64_t h, int64_t w, int64_t kh,
               int64_t kw, int64_t stride, int64_t pad, float* cols) {
  const int64_t oh = conv_out_size(h, kh, stride, pad);
  const int64_t ow = conv_out_size(w, kw, stride, pad);
  const int64_t out_area = oh * ow;
  int64_t row = 0;
  for (int64_t ch = 0; ch < c; ++ch) {
    const float* plane = image + ch * h * w;
    for (int64_t dy = 0; dy < kh; ++dy) {
      for (int64_t dx = 0; dx < kw; ++dx, ++row) {
        float* out_row = cols + row * out_area;
        for (int64_t oy = 0; oy < oh; ++oy) {
          const int64_t iy = oy * stride + dy - pad;
          if (iy < 0 || iy >= h) {
            for (int64_t ox = 0; ox < ow; ++ox) out_row[oy * ow + ox] = 0.0f;
            continue;
          }
          const float* src = plane + iy * w;
          for (int64_t ox = 0; ox < ow; ++ox) {
            const int64_t ix = ox * stride + dx - pad;
            out_row[oy * ow + ox] =
                (ix >= 0 && ix < w) ? src[ix] : 0.0f;
          }
        }
      }
    }
  }
}

void col2im_2d(const float* cols, int64_t c, int64_t h, int64_t w, int64_t kh,
               int64_t kw, int64_t stride, int64_t pad, float* image) {
  const int64_t oh = conv_out_size(h, kh, stride, pad);
  const int64_t ow = conv_out_size(w, kw, stride, pad);
  const int64_t out_area = oh * ow;
  int64_t row = 0;
  for (int64_t ch = 0; ch < c; ++ch) {
    float* plane = image + ch * h * w;
    for (int64_t dy = 0; dy < kh; ++dy) {
      for (int64_t dx = 0; dx < kw; ++dx, ++row) {
        const float* in_row = cols + row * out_area;
        for (int64_t oy = 0; oy < oh; ++oy) {
          const int64_t iy = oy * stride + dy - pad;
          if (iy < 0 || iy >= h) continue;
          float* dst = plane + iy * w;
          for (int64_t ox = 0; ox < ow; ++ox) {
            const int64_t ix = ox * stride + dx - pad;
            if (ix >= 0 && ix < w) dst[ix] += in_row[oy * ow + ox];
          }
        }
      }
    }
  }
}

void im2col_1d(const float* signal, int64_t c, int64_t l, int64_t k,
               int64_t stride, int64_t pad, float* cols) {
  const int64_t ol = conv_out_size(l, k, stride, pad);
  int64_t row = 0;
  for (int64_t ch = 0; ch < c; ++ch) {
    const float* line = signal + ch * l;
    for (int64_t dx = 0; dx < k; ++dx, ++row) {
      float* out_row = cols + row * ol;
      for (int64_t ox = 0; ox < ol; ++ox) {
        const int64_t ix = ox * stride + dx - pad;
        out_row[ox] = (ix >= 0 && ix < l) ? line[ix] : 0.0f;
      }
    }
  }
}

void col2im_1d(const float* cols, int64_t c, int64_t l, int64_t k,
               int64_t stride, int64_t pad, float* signal) {
  const int64_t ol = conv_out_size(l, k, stride, pad);
  int64_t row = 0;
  for (int64_t ch = 0; ch < c; ++ch) {
    float* line = signal + ch * l;
    for (int64_t dx = 0; dx < k; ++dx, ++row) {
      const float* in_row = cols + row * ol;
      for (int64_t ox = 0; ox < ol; ++ox) {
        const int64_t ix = ox * stride + dx - pad;
        if (ix >= 0 && ix < l) line[ix] += in_row[ox];
      }
    }
  }
}

}  // namespace ripple
