// Blocked single-precision GEMM kernels (row-major).
//
// Three transpose variants cover everything the autograd engine needs:
//   gemm_nn:  C += A · B        (M×K, K×N)
//   gemm_nt:  C += A · Bᵀ       (M×K, N×K)
//   gemm_tn:  C += Aᵀ · B       (K×M, K×N)
// All kernels accumulate into C (callers zero C first when needed) so the
// same routine serves both forward passes and gradient accumulation.
#pragma once

#include <cstdint>

#include "tensor/tensor.h"

namespace ripple {

/// C[M,N] += A[M,K] · B[K,N]
void gemm_nn(int64_t m, int64_t n, int64_t k, const float* a, const float* b,
             float* c);

/// C[M,N] += A[M,K] · B[N,K]ᵀ
void gemm_nt(int64_t m, int64_t n, int64_t k, const float* a, const float* b,
             float* c);

/// C[M,N] += A[K,M]ᵀ · B[K,N]
void gemm_tn(int64_t m, int64_t n, int64_t k, const float* a, const float* b,
             float* c);

/// out = a · b for 2-d tensors; allocates the result and zeroes it first.
Tensor matmul(const Tensor& a, const Tensor& b);

}  // namespace ripple
