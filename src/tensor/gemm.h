// Packed single-precision GEMM kernels (row-major).
//
// Three transpose variants cover everything the autograd engine needs:
//   gemm_nn:  C += A · B        (M×K, K×N)
//   gemm_nt:  C += A · Bᵀ       (M×K, N×K)
//   gemm_tn:  C += Aᵀ · B       (K×M, K×N)
// All kernels accumulate into C (callers zero C first when needed) so the
// same routine serves both forward passes and gradient accumulation.
//
// Implementation: BLIS-style register-blocked micro-kernel over packed A/B
// panels held in per-thread scratch buffers. A portable scalar micro-kernel
// is always compiled; AVX2/FMA and AVX-512 kernels are compiled with
// per-function target attributes and selected at runtime from CPUID
// (override with RIPPLE_SIMD=0 or set_gemm_backend). The `_ex` entry points
// take a pluggable epilogue (bias add along rows or columns, optional ReLU)
// applied while the output block is cache-hot, so conv2d/linear fuse their
// bias/activation pass instead of re-walking the output.
#pragma once

#include <atomic>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "tensor/tensor.h"

namespace ripple {

/// Fused output transform applied after the C += A·B accumulation.
/// row_bias[i] is added to every element of row i (conv: per-out-channel
/// bias of a [Cout, OH*OW] output); col_bias[j] to every element of column
/// j (linear: per-feature bias of an [N, Fout] output). relu clamps at 0.
struct GemmEpilogue {
  const float* row_bias = nullptr;
  const float* col_bias = nullptr;
  bool relu = false;

  bool active() const {
    return row_bias != nullptr || col_bias != nullptr || relu;
  }
};

/// C[M,N] += A[M,K] · B[K,N], then epilogue.
void gemm_nn_ex(int64_t m, int64_t n, int64_t k, const float* a,
                const float* b, float* c, const GemmEpilogue& ep);

/// C[M,N] += A[M,K] · B[N,K]ᵀ, then epilogue.
void gemm_nt_ex(int64_t m, int64_t n, int64_t k, const float* a,
                const float* b, float* c, const GemmEpilogue& ep);

/// C[M,N] += A[K,M]ᵀ · B[K,N], then epilogue.
void gemm_tn_ex(int64_t m, int64_t n, int64_t k, const float* a,
                const float* b, float* c, const GemmEpilogue& ep);

/// C[M,N] += A[M,K] · B[K,N]
void gemm_nn(int64_t m, int64_t n, int64_t k, const float* a, const float* b,
             float* c);

/// C[M,N] += A[M,K] · B[N,K]ᵀ
void gemm_nt(int64_t m, int64_t n, int64_t k, const float* a, const float* b,
             float* c);

/// C[M,N] += A[K,M]ᵀ · B[K,N]
void gemm_tn(int64_t m, int64_t n, int64_t k, const float* a, const float* b,
             float* c);

/// A matrix pre-packed into micro-kernel panels. Pack conv/linear weights
/// once per call and reuse across the batch (and across the T folded
/// Monte-Carlo replicas) instead of re-packing per sample.
struct PackedGemmA {
  int64_t m = 0;
  int64_t k = 0;
  std::vector<float> panels;  // internal layout; see gemm.cpp
};

/// Packs row-major A[M,K] for repeated gemm_nn_prepacked calls.
PackedGemmA pack_gemm_a(int64_t m, int64_t k, const float* a);

/// C[M,N] += packed_A · B[K,N], then epilogue.
void gemm_nn_prepacked(const PackedGemmA& a, int64_t n, const float* b,
                       float* c, const GemmEpilogue& ep = {});

/// The B operand of gemm_nt (row-major B[N,K], used as Bᵀ) pre-packed into
/// micro-kernel panels. Unlike A panels (always kMR wide), B panels are nr
/// elements wide where nr depends on the dispatched kernel; `nr` records
/// which kernel the panels were packed for, and consumers must re-pack when
/// it no longer matches (see pack_gemm_b_nt_cached).
struct PackedGemmB {
  int64_t n = 0;
  int64_t k = 0;
  int64_t nr = 0;
  std::vector<float> panels;  // internal layout; see gemm.cpp
};

/// Packs row-major B[N,K] for repeated gemm_nt_prepacked calls with the
/// currently dispatched kernel width.
PackedGemmB pack_gemm_b_nt(int64_t n, int64_t k, const float* b);

/// C[M,N] += A[M,K] · packed_Bᵀ, then epilogue. Bit-identical to
/// gemm_nt_ex on the same operands (packing is pure data movement; the
/// block loop and micro-kernel are shared). Requires b.nr to match the
/// dispatched kernel.
void gemm_nt_prepacked(int64_t m, const float* a, const PackedGemmB& b,
                       float* c, const GemmEpilogue& ep = {});

/// Read-mostly cache of packed weight panels keyed by (data pointer, dims)
/// — deployed conv weights (A of gemm_nn) and linear/LSTM weights (B of
/// gemm_nt) are packed once per *session* instead of once per forward
/// call. Lifecycle: a single-threaded warm-up pass runs with the cache
/// installed (PackCacheScope) and records every packing, then freeze()
/// makes lookups lock-free and the cache safe to share across any number
/// of concurrently serving threads. clear() empties and re-opens recording
/// — required after in-place weight mutation (fault injection), which
/// keeps the data pointer while changing the values.
class PackedACache {
 public:
  /// Cached panels for A, or nullptr. Lock-free once frozen; during
  /// recording only the (single) warm-up thread may call.
  const PackedGemmA* find(const float* a, int64_t m, int64_t k) const;
  /// Records a packing (recording phase only); returns the stored copy.
  const PackedGemmA* insert(const float* a, int64_t m, int64_t k,
                            PackedGemmA packed);
  /// Cached gemm_nt B panels for `b`, or nullptr; same locking contract.
  const PackedGemmB* find_b(const float* b, int64_t n, int64_t k) const;
  const PackedGemmB* insert_b(const float* b, int64_t n, int64_t k,
                              PackedGemmB packed);
  void freeze();
  bool frozen() const;
  void clear();
  size_t size() const;

 private:
  struct Key {
    const float* a;
    int64_t m;
    int64_t k;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    size_t operator()(const Key& key) const;
  };

  std::atomic<bool> frozen_{false};
  std::unordered_map<Key, PackedGemmA, KeyHash> map_;
  std::unordered_map<Key, PackedGemmB, KeyHash> bmap_;
};

/// The pack cache installed on this thread (nullptr outside any scope).
/// Ops that pack weights consult it via pack_gemm_a_cached.
PackedACache* active_pack_cache();

/// RAII: installs `cache` as this thread's active pack cache.
class PackCacheScope {
 public:
  explicit PackCacheScope(PackedACache* cache);
  ~PackCacheScope();
  PackCacheScope(const PackCacheScope&) = delete;
  PackCacheScope& operator=(const PackCacheScope&) = delete;

 private:
  PackedACache* previous_;
};

/// Packs A[M,K] or fetches it from the active cache. `local` is scratch for
/// the uncached path; the returned reference is valid for the current call.
const PackedGemmA& pack_gemm_a_cached(int64_t m, int64_t k, const float* a,
                                      PackedGemmA& local);

/// Packs the gemm_nt B[N,K] operand or fetches it from the active cache.
/// A cached entry whose `nr` no longer matches the dispatched kernel is
/// ignored (re-packed into `local`), so a backend switch after freeze()
/// degrades to per-call packing instead of wrong results.
const PackedGemmB& pack_gemm_b_nt_cached(int64_t n, int64_t k, const float* b,
                                         PackedGemmB& local);

/// Kernel selection. kAuto probes CPUID once (honouring RIPPLE_SIMD=0);
/// kScalar/kSimd force a backend — used by tests to cross-check the SIMD
/// kernels against the portable one.
enum class GemmBackend { kAuto, kScalar, kSimd };
void set_gemm_backend(GemmBackend backend);
/// Name of the micro-kernel currently dispatched: "scalar", "avx2", or
/// "avx512".
const char* gemm_backend_name();

/// Reference kernels (the pre-optimization blocked loops, serial). Kept as
/// the correctness oracle for tests and the baseline for BENCH_gemm.json.
void gemm_ref_nn(int64_t m, int64_t n, int64_t k, const float* a,
                 const float* b, float* c);
void gemm_ref_nt(int64_t m, int64_t n, int64_t k, const float* a,
                 const float* b, float* c);
void gemm_ref_tn(int64_t m, int64_t n, int64_t k, const float* a,
                 const float* b, float* c);

/// out = a · b for 2-d tensors; allocates the result and zeroes it first.
Tensor matmul(const Tensor& a, const Tensor& b);

}  // namespace ripple
