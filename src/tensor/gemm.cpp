#include "tensor/gemm.h"

#include <algorithm>

#include "tensor/threadpool.h"

namespace ripple {
namespace {

// Cache blocking sizes tuned for a small L1/L2 CPU; the i-k-j loop order in
// the inner kernel lets the compiler vectorize over j.
constexpr int64_t kBlockM = 64;
constexpr int64_t kBlockK = 256;

void gemm_nn_rows(int64_t row_begin, int64_t row_end, int64_t n, int64_t k,
                  const float* a, const float* b, float* c) {
  for (int64_t i0 = row_begin; i0 < row_end; i0 += kBlockM) {
    const int64_t i1 = std::min(row_end, i0 + kBlockM);
    for (int64_t k0 = 0; k0 < k; k0 += kBlockK) {
      const int64_t k1 = std::min(k, k0 + kBlockK);
      for (int64_t i = i0; i < i1; ++i) {
        const float* arow = a + i * k;
        float* crow = c + i * n;
        for (int64_t kk = k0; kk < k1; ++kk) {
          const float av = arow[kk];
          if (av == 0.0f) continue;  // binary/sparse weights hit this often
          const float* brow = b + kk * n;
          for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
        }
      }
    }
  }
}

}  // namespace

void gemm_nn(int64_t m, int64_t n, int64_t k, const float* a, const float* b,
             float* c) {
  if (m <= 0 || n <= 0 || k <= 0) return;
  parallel_for(
      m, [&](int64_t begin, int64_t end) { gemm_nn_rows(begin, end, n, k, a, b, c); },
      /*grain=*/std::max<int64_t>(1, 16384 / std::max<int64_t>(1, n * k / 64)));
}

void gemm_nt(int64_t m, int64_t n, int64_t k, const float* a, const float* b,
             float* c) {
  if (m <= 0 || n <= 0 || k <= 0) return;
  parallel_for(m, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      const float* arow = a + i * k;
      float* crow = c + i * n;
      for (int64_t j = 0; j < n; ++j) {
        const float* brow = b + j * k;
        float acc = 0.0f;
        for (int64_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
        crow[j] += acc;
      }
    }
  });
}

void gemm_tn(int64_t m, int64_t n, int64_t k, const float* a, const float* b,
             float* c) {
  if (m <= 0 || n <= 0 || k <= 0) return;
  // C[i,j] += sum_kk A[kk,i] * B[kk,j]; iterate kk outer to stream both
  // operands row-wise.
  for (int64_t kk = 0; kk < k; ++kk) {
    const float* arow = a + kk * m;
    const float* brow = b + kk * n;
    for (int64_t i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = c + i * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  RIPPLE_CHECK(a.rank() == 2 && b.rank() == 2)
      << "matmul needs 2-d operands, got " << shape_to_string(a.shape())
      << " and " << shape_to_string(b.shape());
  RIPPLE_CHECK(a.dim(1) == b.dim(0))
      << "matmul inner dims differ: " << shape_to_string(a.shape()) << " · "
      << shape_to_string(b.shape());
  Tensor c({a.dim(0), b.dim(1)});
  gemm_nn(a.dim(0), b.dim(1), a.dim(1), a.data(), b.data(), c.data());
  return c;
}

}  // namespace ripple
