#include "tensor/gemm.h"

#include <algorithm>
#include <atomic>
#include <cstring>

#include "tensor/env.h"
#include "tensor/threadpool.h"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define RIPPLE_X86 1
#endif

namespace ripple {
namespace {

// BLIS-style blocking: the micro-kernel computes a MR×nr tile of C from an
// A panel packed as [kc][MR] and a B panel packed as [kc][nr]. kc is capped
// at kKC so both panels stay L1/L2-resident; A blocks are repacked per kMC
// rows, B blocks per kNC columns.
constexpr int64_t kMR = 6;
constexpr int64_t kMaxNR = 32;  // widest kernel (avx512)
constexpr int64_t kKC = 256;
constexpr int64_t kMC = 96;  // multiple of kMR
constexpr int64_t kNC = 2048;

using MicroKernel = void (*)(int64_t kc, const float* ap, const float* bp,
                             float* c, int64_t ldc);

struct KernelInfo {
  int64_t nr;
  MicroKernel fn;
  const char* name;
};

// ---- portable micro-kernel (always compiled) -------------------------------

void kernel_scalar_6x16(int64_t kc, const float* ap, const float* bp, float* c,
                        int64_t ldc) {
  float acc[kMR][16];
  for (int64_t i = 0; i < kMR; ++i)
    for (int64_t j = 0; j < 16; ++j) acc[i][j] = c[i * ldc + j];
  for (int64_t kk = 0; kk < kc; ++kk) {
    const float* a = ap + kk * kMR;
    const float* b = bp + kk * 16;
    for (int64_t i = 0; i < kMR; ++i) {
      const float av = a[i];
      for (int64_t j = 0; j < 16; ++j) acc[i][j] += av * b[j];
    }
  }
  for (int64_t i = 0; i < kMR; ++i)
    for (int64_t j = 0; j < 16; ++j) c[i * ldc + j] = acc[i][j];
}

// ---- SIMD micro-kernels (per-function target; selected via CPUID) ----------

#ifdef RIPPLE_X86

__attribute__((target("avx2,fma"))) void kernel_avx2_6x16(int64_t kc,
                                                          const float* ap,
                                                          const float* bp,
                                                          float* c,
                                                          int64_t ldc) {
  __m256 acc[kMR][2];
  for (int64_t i = 0; i < kMR; ++i) {
    acc[i][0] = _mm256_loadu_ps(c + i * ldc);
    acc[i][1] = _mm256_loadu_ps(c + i * ldc + 8);
  }
  for (int64_t kk = 0; kk < kc; ++kk) {
    const __m256 b0 = _mm256_loadu_ps(bp + kk * 16);
    const __m256 b1 = _mm256_loadu_ps(bp + kk * 16 + 8);
    const float* a = ap + kk * kMR;
    for (int64_t i = 0; i < kMR; ++i) {
      const __m256 av = _mm256_broadcast_ss(a + i);
      acc[i][0] = _mm256_fmadd_ps(av, b0, acc[i][0]);
      acc[i][1] = _mm256_fmadd_ps(av, b1, acc[i][1]);
    }
  }
  for (int64_t i = 0; i < kMR; ++i) {
    _mm256_storeu_ps(c + i * ldc, acc[i][0]);
    _mm256_storeu_ps(c + i * ldc + 8, acc[i][1]);
  }
}

__attribute__((target("avx512f"))) void kernel_avx512_6x32(int64_t kc,
                                                           const float* ap,
                                                           const float* bp,
                                                           float* c,
                                                           int64_t ldc) {
  __m512 acc[kMR][2];
  for (int64_t i = 0; i < kMR; ++i) {
    acc[i][0] = _mm512_loadu_ps(c + i * ldc);
    acc[i][1] = _mm512_loadu_ps(c + i * ldc + 16);
  }
  for (int64_t kk = 0; kk < kc; ++kk) {
    const __m512 b0 = _mm512_loadu_ps(bp + kk * 32);
    const __m512 b1 = _mm512_loadu_ps(bp + kk * 32 + 16);
    const float* a = ap + kk * kMR;
    for (int64_t i = 0; i < kMR; ++i) {
      const __m512 av = _mm512_set1_ps(a[i]);
      acc[i][0] = _mm512_fmadd_ps(av, b0, acc[i][0]);
      acc[i][1] = _mm512_fmadd_ps(av, b1, acc[i][1]);
    }
  }
  for (int64_t i = 0; i < kMR; ++i) {
    _mm512_storeu_ps(c + i * ldc, acc[i][0]);
    _mm512_storeu_ps(c + i * ldc + 16, acc[i][1]);
  }
}

#endif  // RIPPLE_X86

// ---- kernel selection ------------------------------------------------------

const KernelInfo kScalarKernel = {16, kernel_scalar_6x16, "scalar"};

KernelInfo best_simd_kernel() {
#ifdef RIPPLE_X86
  if (__builtin_cpu_supports("avx512f"))
    return {32, kernel_avx512_6x32, "avx512"};
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma"))
    return {16, kernel_avx2_6x16, "avx2"};
#endif
  return kScalarKernel;
}

KernelInfo detect_kernel() {
  if (env_int("RIPPLE_SIMD", 1) == 0) return kScalarKernel;
  return best_simd_kernel();
}

// Not synchronized against in-flight GEMM calls; set_gemm_backend is a
// test/bench hook, not a hot-path API.
KernelInfo g_kernel = detect_kernel();

int64_t ceil_div(int64_t a, int64_t b) { return (a + b - 1) / b; }

// ---- packing ---------------------------------------------------------------
// A panels: ap[p * kb * kMR + kk * kMR + i] = A(i0 + p*kMR + i, k0 + kk),
// rows past m padded with zeros. B panels: bp[q * kb * nr + kk * nr + j] =
// B(k0 + kk, j0 + q*nr + j), columns past n padded with zeros.

void pack_a_nn(const float* a, int64_t lda, int64_t i0, int64_t mb, int64_t k0,
               int64_t kb, float* dst) {
  const int64_t panels = ceil_div(mb, kMR);
  for (int64_t p = 0; p < panels; ++p) {
    float* out = dst + p * kb * kMR;
    const int64_t iw = std::min(kMR, mb - p * kMR);
    for (int64_t i = 0; i < iw; ++i) {
      const float* src = a + (i0 + p * kMR + i) * lda + k0;
      for (int64_t kk = 0; kk < kb; ++kk) out[kk * kMR + i] = src[kk];
    }
    for (int64_t i = iw; i < kMR; ++i)
      for (int64_t kk = 0; kk < kb; ++kk) out[kk * kMR + i] = 0.0f;
  }
}

// A stored transposed ([K, M] row-major): panel reads are contiguous in m.
void pack_a_tn(const float* a, int64_t lda /* = m */, int64_t i0, int64_t mb,
               int64_t k0, int64_t kb, float* dst) {
  const int64_t panels = ceil_div(mb, kMR);
  for (int64_t p = 0; p < panels; ++p) {
    float* out = dst + p * kb * kMR;
    const int64_t iw = std::min(kMR, mb - p * kMR);
    for (int64_t kk = 0; kk < kb; ++kk) {
      const float* src = a + (k0 + kk) * lda + i0 + p * kMR;
      float* orow = out + kk * kMR;
      for (int64_t i = 0; i < iw; ++i) orow[i] = src[i];
      for (int64_t i = iw; i < kMR; ++i) orow[i] = 0.0f;
    }
  }
}

void pack_b_nn(const float* b, int64_t ldb /* = n */, int64_t k0, int64_t kb,
               int64_t j0, int64_t nb, int64_t nr, float* dst) {
  const int64_t panels = ceil_div(nb, nr);
  for (int64_t q = 0; q < panels; ++q) {
    float* out = dst + q * kb * nr;
    const int64_t jw = std::min(nr, nb - q * nr);
    for (int64_t kk = 0; kk < kb; ++kk) {
      const float* src = b + (k0 + kk) * ldb + j0 + q * nr;
      float* orow = out + kk * nr;
      for (int64_t j = 0; j < jw; ++j) orow[j] = src[j];
      for (int64_t j = jw; j < nr; ++j) orow[j] = 0.0f;
    }
  }
}

// B stored transposed ([N, K] row-major): gather one source row per column.
void pack_b_nt(const float* b, int64_t ldb /* = k */, int64_t k0, int64_t kb,
               int64_t j0, int64_t nb, int64_t nr, float* dst) {
  const int64_t panels = ceil_div(nb, nr);
  for (int64_t q = 0; q < panels; ++q) {
    float* out = dst + q * kb * nr;
    const int64_t jw = std::min(nr, nb - q * nr);
    for (int64_t j = 0; j < jw; ++j) {
      const float* src = b + (j0 + q * nr + j) * ldb + k0;
      for (int64_t kk = 0; kk < kb; ++kk) out[kk * nr + j] = src[kk];
    }
    for (int64_t j = jw; j < nr; ++j)
      for (int64_t kk = 0; kk < kb; ++kk) out[kk * nr + j] = 0.0f;
  }
}

// ---- epilogue --------------------------------------------------------------

void apply_epilogue(int64_t m, int64_t n, float* c, const GemmEpilogue& ep) {
  if (!ep.active()) return;
  parallel_for(
      m,
      [&](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) {
          float* row = c + i * n;
          const float rb = ep.row_bias != nullptr ? ep.row_bias[i] : 0.0f;
          if (ep.col_bias != nullptr) {
            for (int64_t j = 0; j < n; ++j) row[j] += rb + ep.col_bias[j];
          } else if (ep.row_bias != nullptr) {
            for (int64_t j = 0; j < n; ++j) row[j] += rb;
          }
          if (ep.relu)
            for (int64_t j = 0; j < n; ++j) row[j] = row[j] > 0.0f ? row[j] : 0.0f;
        }
      },
      /*grain=*/std::max<int64_t>(1, 4096 / std::max<int64_t>(1, n)));
}

// ---- macro-kernel over one packed (A block, B block) pair ------------------

void run_block(const KernelInfo& ki, int64_t kb, const float* apbuf,
               int64_t mb, const float* bpbuf, int64_t nb, float* cblock,
               int64_t ldc) {
  const int64_t mpanels = ceil_div(mb, kMR);
  const int64_t npanels = ceil_div(nb, ki.nr);
  float ct[kMR * kMaxNR];
  for (int64_t q = 0; q < npanels; ++q) {
    const float* bp = bpbuf + q * kb * ki.nr;
    const int64_t jw = std::min(ki.nr, nb - q * ki.nr);
    for (int64_t p = 0; p < mpanels; ++p) {
      const float* ap = apbuf + p * kb * kMR;
      const int64_t iw = std::min(kMR, mb - p * kMR);
      float* cdst = cblock + p * kMR * ldc + q * ki.nr;
      if (iw == kMR && jw == ki.nr) {
        ki.fn(kb, ap, bp, cdst, ldc);
      } else {
        // Edge tile: compute into a zeroed scratch tile, add the valid part.
        std::memset(ct, 0, sizeof(float) * kMR * ki.nr);
        ki.fn(kb, ap, bp, ct, ki.nr);
        for (int64_t i = 0; i < iw; ++i)
          for (int64_t j = 0; j < jw; ++j)
            cdst[i * ldc + j] += ct[i * ki.nr + j];
      }
    }
  }
}

// Shared driver: PackA(dst, i0, mb, k0, kb) packs one A block;
// PackB(scratch, k0, kb, j0, nb, nr) returns the packed B panels for one
// (k, n) block — either by packing into `scratch` or by pointing into
// pre-packed storage. Blocks are visited jc-major then k0, the layout
// pack_gemm_b_nt records.
template <class PackA, class PackB>
void gemm_driver(int64_t m, int64_t n, int64_t k, PackA&& pack_a_fn,
                 PackB&& pack_b_fn, float* c, const GemmEpilogue& ep) {
  if (m <= 0 || n <= 0 || k <= 0) {
    apply_epilogue(m, n, c, ep);
    return;
  }
  const KernelInfo ki = g_kernel;
  thread_local std::vector<float> bpbuf;
  for (int64_t jc = 0; jc < n; jc += kNC) {
    const int64_t nb = std::min(kNC, n - jc);
    for (int64_t k0 = 0; k0 < k; k0 += kKC) {
      const int64_t kb = std::min(kKC, k - k0);
      const float* bp = pack_b_fn(bpbuf, k0, kb, jc, nb, ki.nr);
      const int64_t mblocks = ceil_div(m, kMC);
      const int64_t npanels = ceil_div(nb, ki.nr);
      // 2-D work split. M blocks alone cap parallelism at ceil(m/kMC) — one
      // task for the small-M/large-N shapes the im2col convs produce, with
      // the rest of the pool idle. When blocks are scarcer than threads,
      // each also splits its column panels into nchunks contiguous ranges;
      // every C tile is still written by exactly one run_block call, so the
      // split never changes results. Consecutive work indices share an M
      // block, so a participant claiming a range re-packs A only at block
      // boundaries.
      const int64_t nthreads = ThreadPool::global().size() + 1;
      const int64_t nchunks =
          std::clamp<int64_t>(nthreads / mblocks, 1, npanels);
      parallel_for(
          mblocks * nchunks,
          [&](int64_t w0, int64_t w1) {
            thread_local std::vector<float> apbuf;
            apbuf.resize(static_cast<size_t>((kMC / kMR) * kb * kMR));
            int64_t packed_blk = -1;
            for (int64_t w = w0; w < w1; ++w) {
              const int64_t blk = w / nchunks;
              const int64_t i0 = blk * kMC;
              const int64_t mb = std::min(kMC, m - i0);
              if (blk != packed_blk) {
                pack_a_fn(apbuf.data(), i0, mb, k0, kb);
                packed_blk = blk;
              }
              const int64_t chunk = w % nchunks;
              const int64_t q0 = chunk * npanels / nchunks;
              const int64_t q1 = (chunk + 1) * npanels / nchunks;
              if (q0 == q1) continue;
              run_block(ki, kb, apbuf.data(), mb, bp + q0 * kb * ki.nr,
                        std::min(nb - q0 * ki.nr, (q1 - q0) * ki.nr),
                        c + i0 * n + jc + q0 * ki.nr, n);
            }
          },
          /*grain=*/1);
    }
  }
  apply_epilogue(m, n, c, ep);
}

}  // namespace

// ---- public API ------------------------------------------------------------

namespace {

/// Adapts a pack_b_* call to the driver's provider signature: packs into
/// the driver's scratch buffer and returns it.
template <class Pack>
auto pack_b_into_scratch(Pack&& pack) {
  return [pack](std::vector<float>& scratch, int64_t k0, int64_t kb,
                int64_t j0, int64_t nb, int64_t nr) -> const float* {
    scratch.resize(static_cast<size_t>(ceil_div(nb, nr) * kb * nr));
    pack(scratch.data(), k0, kb, j0, nb, nr);
    return scratch.data();
  };
}

}  // namespace

void gemm_nn_ex(int64_t m, int64_t n, int64_t k, const float* a,
                const float* b, float* c, const GemmEpilogue& ep) {
  gemm_driver(
      m, n, k,
      [&](float* dst, int64_t i0, int64_t mb, int64_t k0, int64_t kb) {
        pack_a_nn(a, k, i0, mb, k0, kb, dst);
      },
      pack_b_into_scratch([&](float* dst, int64_t k0, int64_t kb, int64_t j0,
                              int64_t nb, int64_t nr) {
        pack_b_nn(b, n, k0, kb, j0, nb, nr, dst);
      }),
      c, ep);
}

void gemm_nt_ex(int64_t m, int64_t n, int64_t k, const float* a,
                const float* b, float* c, const GemmEpilogue& ep) {
  gemm_driver(
      m, n, k,
      [&](float* dst, int64_t i0, int64_t mb, int64_t k0, int64_t kb) {
        pack_a_nn(a, k, i0, mb, k0, kb, dst);
      },
      pack_b_into_scratch([&](float* dst, int64_t k0, int64_t kb, int64_t j0,
                              int64_t nb, int64_t nr) {
        pack_b_nt(b, k, k0, kb, j0, nb, nr, dst);
      }),
      c, ep);
}

void gemm_tn_ex(int64_t m, int64_t n, int64_t k, const float* a,
                const float* b, float* c, const GemmEpilogue& ep) {
  gemm_driver(
      m, n, k,
      [&](float* dst, int64_t i0, int64_t mb, int64_t k0, int64_t kb) {
        pack_a_tn(a, m, i0, mb, k0, kb, dst);
      },
      pack_b_into_scratch([&](float* dst, int64_t k0, int64_t kb, int64_t j0,
                              int64_t nb, int64_t nr) {
        pack_b_nn(b, n, k0, kb, j0, nb, nr, dst);
      }),
      c, ep);
}

void gemm_nn(int64_t m, int64_t n, int64_t k, const float* a, const float* b,
             float* c) {
  gemm_nn_ex(m, n, k, a, b, c, {});
}

void gemm_nt(int64_t m, int64_t n, int64_t k, const float* a, const float* b,
             float* c) {
  gemm_nt_ex(m, n, k, a, b, c, {});
}

void gemm_tn(int64_t m, int64_t n, int64_t k, const float* a, const float* b,
             float* c) {
  gemm_tn_ex(m, n, k, a, b, c, {});
}

PackedGemmA pack_gemm_a(int64_t m, int64_t k, const float* a) {
  PackedGemmA packed;
  packed.m = m;
  packed.k = k;
  if (m <= 0 || k <= 0) return packed;
  const int64_t mpanels = ceil_div(m, kMR);
  packed.panels.resize(static_cast<size_t>(mpanels * kMR * k));
  // Per-k-block layout matching the driver: block t holds all m panels for
  // k ∈ [t·kKC, t·kKC + kb); full blocks have stride mpanels·kMR·kKC.
  float* dst = packed.panels.data();
  for (int64_t k0 = 0; k0 < k; k0 += kKC) {
    const int64_t kb = std::min(kKC, k - k0);
    pack_a_nn(a, k, 0, m, k0, kb, dst);
    dst += mpanels * kMR * kb;
  }
  return packed;
}

PackedGemmB pack_gemm_b_nt(int64_t n, int64_t k, const float* b) {
  PackedGemmB packed;
  packed.n = n;
  packed.k = k;
  packed.nr = g_kernel.nr;
  if (n <= 0 || k <= 0) return packed;
  // Blocks stored in the driver's visit order (jc-major, then k0), each
  // ceil(nb/nr) panels of kb·nr floats, so gemm_nt_prepacked walks the
  // buffer with a running offset.
  size_t total = 0;
  for (int64_t jc = 0; jc < n; jc += kNC) {
    const int64_t nb = std::min(kNC, n - jc);
    total += static_cast<size_t>(ceil_div(nb, packed.nr) * packed.nr * k);
  }
  packed.panels.resize(total);
  float* dst = packed.panels.data();
  for (int64_t jc = 0; jc < n; jc += kNC) {
    const int64_t nb = std::min(kNC, n - jc);
    for (int64_t k0 = 0; k0 < k; k0 += kKC) {
      const int64_t kb = std::min(kKC, k - k0);
      pack_b_nt(b, k, k0, kb, jc, nb, packed.nr, dst);
      dst += ceil_div(nb, packed.nr) * kb * packed.nr;
    }
  }
  return packed;
}

void gemm_nt_prepacked(int64_t m, const float* a, const PackedGemmB& b,
                       float* c, const GemmEpilogue& ep) {
  RIPPLE_CHECK(b.nr == g_kernel.nr)
      << "gemm_nt_prepacked: panels packed for nr=" << b.nr
      << " but the dispatched kernel uses nr=" << g_kernel.nr;
  const float* panels = b.panels.data();
  int64_t offset = 0;
  gemm_driver(
      m, b.n, b.k,
      [&](float* dst, int64_t i0, int64_t mb, int64_t k0, int64_t kb) {
        pack_a_nn(a, b.k, i0, mb, k0, kb, dst);
      },
      [&](std::vector<float>&, int64_t /*k0*/, int64_t kb, int64_t /*j0*/,
          int64_t nb, int64_t nr) -> const float* {
        const float* bp = panels + offset;
        offset += ceil_div(nb, nr) * kb * nr;
        return bp;
      },
      c, ep);
}

size_t PackedACache::KeyHash::operator()(const Key& key) const {
  const uint64_t p = reinterpret_cast<uintptr_t>(key.a);
  uint64_t h = p * 0x9e3779b97f4a7c15ull;
  h ^= static_cast<uint64_t>(key.m) * 0xff51afd7ed558ccdull;
  h ^= static_cast<uint64_t>(key.k) * 0xc4ceb9fe1a85ec53ull;
  return static_cast<size_t>(h ^ (h >> 29));
}

const PackedGemmA* PackedACache::find(const float* a, int64_t m,
                                      int64_t k) const {
  const auto it = map_.find(Key{a, m, k});
  return it != map_.end() ? &it->second : nullptr;
}

const PackedGemmA* PackedACache::insert(const float* a, int64_t m, int64_t k,
                                        PackedGemmA packed) {
  RIPPLE_CHECK(!frozen()) << "PackedACache::insert after freeze()";
  return &map_.insert_or_assign(Key{a, m, k}, std::move(packed))
              .first->second;
}

const PackedGemmB* PackedACache::find_b(const float* b, int64_t n,
                                        int64_t k) const {
  const auto it = bmap_.find(Key{b, n, k});
  return it != bmap_.end() ? &it->second : nullptr;
}

const PackedGemmB* PackedACache::insert_b(const float* b, int64_t n, int64_t k,
                                          PackedGemmB packed) {
  RIPPLE_CHECK(!frozen()) << "PackedACache::insert_b after freeze()";
  return &bmap_.insert_or_assign(Key{b, n, k}, std::move(packed))
              .first->second;
}

void PackedACache::freeze() { frozen_.store(true, std::memory_order_release); }

bool PackedACache::frozen() const {
  return frozen_.load(std::memory_order_acquire);
}

void PackedACache::clear() {
  map_.clear();
  bmap_.clear();
  frozen_.store(false, std::memory_order_release);
}

size_t PackedACache::size() const { return map_.size() + bmap_.size(); }

namespace {
thread_local PackedACache* tl_pack_cache = nullptr;
}  // namespace

PackedACache* active_pack_cache() { return tl_pack_cache; }

PackCacheScope::PackCacheScope(PackedACache* cache)
    : previous_(tl_pack_cache) {
  tl_pack_cache = cache;
}

PackCacheScope::~PackCacheScope() { tl_pack_cache = previous_; }

const PackedGemmA& pack_gemm_a_cached(int64_t m, int64_t k, const float* a,
                                      PackedGemmA& local) {
  if (PackedACache* cache = tl_pack_cache; cache != nullptr) {
    if (const PackedGemmA* hit = cache->find(a, m, k)) return *hit;
    if (!cache->frozen())
      return *cache->insert(a, m, k, pack_gemm_a(m, k, a));
  }
  local = pack_gemm_a(m, k, a);
  return local;
}

const PackedGemmB& pack_gemm_b_nt_cached(int64_t n, int64_t k, const float* b,
                                         PackedGemmB& local) {
  if (PackedACache* cache = tl_pack_cache; cache != nullptr) {
    if (const PackedGemmB* hit = cache->find_b(b, n, k);
        hit != nullptr && hit->nr == g_kernel.nr)
      return *hit;
    if (!cache->frozen())
      return *cache->insert_b(b, n, k, pack_gemm_b_nt(n, k, b));
  }
  local = pack_gemm_b_nt(n, k, b);
  return local;
}

void gemm_nn_prepacked(const PackedGemmA& a, int64_t n, const float* b,
                       float* c, const GemmEpilogue& ep) {
  const int64_t m = a.m;
  const int64_t k = a.k;
  if (m <= 0 || n <= 0 || k <= 0) {
    apply_epilogue(m, n, c, ep);
    return;
  }
  const KernelInfo ki = g_kernel;
  const int64_t mpanels = ceil_div(m, kMR);
  thread_local std::vector<float> bpbuf;
  for (int64_t jc = 0; jc < n; jc += kNC) {
    const int64_t nb = std::min(kNC, n - jc);
    int64_t kblock_offset = 0;
    for (int64_t k0 = 0; k0 < k; k0 += kKC) {
      const int64_t kb = std::min(kKC, k - k0);
      bpbuf.resize(static_cast<size_t>(ceil_div(nb, ki.nr) * kb * ki.nr));
      float* bp = bpbuf.data();
      pack_b_nn(b, n, k0, kb, jc, nb, ki.nr, bp);
      const float* apblock = a.panels.data() + kblock_offset;
      // Same 2-D split as gemm_driver (A is already packed, so row panels
      // take the place of M blocks): column-chunk small-M shapes instead
      // of idling the pool.
      const int64_t npanels = ceil_div(nb, ki.nr);
      const int64_t nthreads = ThreadPool::global().size() + 1;
      const int64_t nchunks =
          std::clamp<int64_t>(nthreads / mpanels, 1, npanels);
      parallel_for(
          mpanels * nchunks,
          [&](int64_t w0, int64_t w1) {
            for (int64_t w = w0; w < w1; ++w) {
              const int64_t p = w / nchunks;
              const int64_t chunk = w % nchunks;
              const int64_t q0 = chunk * npanels / nchunks;
              const int64_t q1 = (chunk + 1) * npanels / nchunks;
              if (q0 == q1) continue;
              run_block(ki, kb, apblock + p * kb * kMR,
                        std::min(m - p * kMR, kMR), bp + q0 * kb * ki.nr,
                        std::min(nb - q0 * ki.nr, (q1 - q0) * ki.nr),
                        c + p * kMR * n + jc + q0 * ki.nr, n);
            }
          },
          /*grain=*/1);
      kblock_offset += mpanels * kMR * kb;
    }
  }
  apply_epilogue(m, n, c, ep);
}

void set_gemm_backend(GemmBackend backend) {
  switch (backend) {
    case GemmBackend::kAuto:
      g_kernel = detect_kernel();
      break;
    case GemmBackend::kScalar:
      g_kernel = kScalarKernel;
      break;
    case GemmBackend::kSimd:
      g_kernel = best_simd_kernel();
      break;
  }
}

const char* gemm_backend_name() { return g_kernel.name; }

// ---- reference kernels (pre-optimization implementations) ------------------

namespace {
constexpr int64_t kRefBlockM = 64;
constexpr int64_t kRefBlockK = 256;
}  // namespace

void gemm_ref_nn(int64_t m, int64_t n, int64_t k, const float* a,
                 const float* b, float* c) {
  for (int64_t i0 = 0; i0 < m; i0 += kRefBlockM) {
    const int64_t i1 = std::min(m, i0 + kRefBlockM);
    for (int64_t k0 = 0; k0 < k; k0 += kRefBlockK) {
      const int64_t k1 = std::min(k, k0 + kRefBlockK);
      for (int64_t i = i0; i < i1; ++i) {
        const float* arow = a + i * k;
        float* crow = c + i * n;
        for (int64_t kk = k0; kk < k1; ++kk) {
          const float av = arow[kk];
          if (av == 0.0f) continue;
          const float* brow = b + kk * n;
          for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
        }
      }
    }
  }
}

void gemm_ref_nt(int64_t m, int64_t n, int64_t k, const float* a,
                 const float* b, float* c) {
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (int64_t j = 0; j < n; ++j) {
      const float* brow = b + j * k;
      float acc = 0.0f;
      for (int64_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
      crow[j] += acc;
    }
  }
}

void gemm_ref_tn(int64_t m, int64_t n, int64_t k, const float* a,
                 const float* b, float* c) {
  for (int64_t kk = 0; kk < k; ++kk) {
    const float* arow = a + kk * m;
    const float* brow = b + kk * n;
    for (int64_t i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = c + i * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  RIPPLE_CHECK(a.rank() == 2 && b.rank() == 2)
      << "matmul needs 2-d operands, got " << shape_to_string(a.shape())
      << " and " << shape_to_string(b.shape());
  RIPPLE_CHECK(a.dim(1) == b.dim(0))
      << "matmul inner dims differ: " << shape_to_string(a.shape()) << " · "
      << shape_to_string(b.shape());
  Tensor c({a.dim(0), b.dim(1)});
  gemm_nn(a.dim(0), b.dim(1), a.dim(1), a.data(), b.data(), c.data());
  return c;
}

}  // namespace ripple
