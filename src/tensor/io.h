// Tensor serialization and CSV output for benchmark harnesses.
#pragma once

#include <fstream>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace ripple {

/// Writes a tensor in a simple binary container ("RPLT" magic, rank, dims,
/// raw float32 payload). Throws std::runtime_error on I/O failure.
void save_tensor(const Tensor& t, const std::string& path);

/// Reads a tensor written by save_tensor.
Tensor load_tensor(const std::string& path);

/// Append-style CSV writer used by the bench binaries: one header, then
/// value rows. Numeric cells are formatted with enough digits to round-trip.
class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row.
  CsvWriter(const std::string& path, const std::vector<std::string>& columns);

  /// Writes one row; the cell count must match the header.
  void row(const std::vector<std::string>& cells);
  /// Convenience: formats doubles.
  void row(const std::vector<double>& cells);

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::ofstream out_;
  size_t columns_ = 0;
};

/// Directory where bench CSVs are written (env RIPPLE_CSV_DIR, default ".").
std::string csv_output_dir();

}  // namespace ripple
