#include "tensor/random.h"

#include "tensor/check.h"
#include "tensor/env.h"

namespace ripple {

uint64_t splitmix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

Rng::Rng(uint64_t seed) : seed_(seed), engine_(seed) {}

Rng Rng::fork(uint64_t stream_id) const {
  // Mix the base seed with the stream id so fork(0) != the parent stream.
  return Rng(splitmix64(seed_ ^ splitmix64(stream_id + 1)));
}

float Rng::uniform(float lo, float hi) {
  RIPPLE_CHECK(lo <= hi) << "uniform bounds inverted: " << lo << " > " << hi;
  std::uniform_real_distribution<float> d(lo, hi);
  return d(engine_);
}

float Rng::normal(float mean, float stddev) {
  RIPPLE_CHECK(stddev >= 0.0f) << "negative stddev " << stddev;
  if (stddev == 0.0f) return mean;
  std::normal_distribution<float> d(mean, stddev);
  return d(engine_);
}

bool Rng::bernoulli(float p) {
  if (p <= 0.0f) return false;
  if (p >= 1.0f) return true;
  std::bernoulli_distribution d(p);
  return d(engine_);
}

int64_t Rng::randint(int64_t lo, int64_t hi) {
  RIPPLE_CHECK(lo <= hi) << "randint bounds inverted: " << lo << " > " << hi;
  std::uniform_int_distribution<int64_t> d(lo, hi);
  return d(engine_);
}

uint64_t Rng::next_u64() { return engine_(); }

void Rng::reseed(uint64_t seed) {
  seed_ = seed;
  engine_.seed(seed);
}

Rng& global_rng() {
  static Rng rng(static_cast<uint64_t>(env_int("RIPPLE_SEED", 42)));
  return rng;
}

}  // namespace ripple
