#include "tensor/io.h"

#include <cstdint>
#include <sstream>

#include "tensor/env.h"

namespace ripple {
namespace {
constexpr char kMagic[4] = {'R', 'P', 'L', 'T'};
}

void save_tensor(const Tensor& t, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("save_tensor: cannot open " + path);
  out.write(kMagic, 4);
  const int32_t rank = t.rank();
  out.write(reinterpret_cast<const char*>(&rank), sizeof(rank));
  for (int64_t d : t.shape())
    out.write(reinterpret_cast<const char*>(&d), sizeof(d));
  out.write(reinterpret_cast<const char*>(t.data()),
            static_cast<std::streamsize>(t.numel() * sizeof(float)));
  if (!out) throw std::runtime_error("save_tensor: write failed for " + path);
}

Tensor load_tensor(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_tensor: cannot open " + path);
  char magic[4];
  in.read(magic, 4);
  if (!in || std::string(magic, 4) != std::string(kMagic, 4))
    throw std::runtime_error("load_tensor: bad magic in " + path);
  int32_t rank = 0;
  in.read(reinterpret_cast<char*>(&rank), sizeof(rank));
  if (!in || rank < 0 || rank > 16)
    throw std::runtime_error("load_tensor: bad rank in " + path);
  Shape shape(static_cast<size_t>(rank));
  for (auto& d : shape) in.read(reinterpret_cast<char*>(&d), sizeof(d));
  if (!in) throw std::runtime_error("load_tensor: truncated header " + path);
  Tensor t(shape);
  in.read(reinterpret_cast<char*>(t.data()),
          static_cast<std::streamsize>(t.numel() * sizeof(float)));
  if (!in) throw std::runtime_error("load_tensor: truncated payload " + path);
  return t;
}

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& columns)
    : path_(path), out_(path), columns_(columns.size()) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  for (size_t i = 0; i < columns.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << columns[i];
  }
  out_ << '\n';
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  RIPPLE_CHECK(cells.size() == columns_)
      << "CSV row has " << cells.size() << " cells, header has " << columns_;
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << cells[i];
  }
  out_ << '\n';
  out_.flush();
}

void CsvWriter::row(const std::vector<double>& cells) {
  std::vector<std::string> s;
  s.reserve(cells.size());
  for (double v : cells) {
    std::ostringstream os;
    os.precision(10);
    os << v;
    s.push_back(os.str());
  }
  row(s);
}

std::string csv_output_dir() { return env_string("RIPPLE_CSV_DIR", "."); }

}  // namespace ripple
