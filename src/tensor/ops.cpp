#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace ripple::ops {
namespace {

void check_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  RIPPLE_CHECK(a.same_shape(b))
      << op << " shape mismatch: " << shape_to_string(a.shape()) << " vs "
      << shape_to_string(b.shape());
}

template <typename F>
Tensor binary(const Tensor& a, const Tensor& b, F f, const char* op) {
  check_same_shape(a, b, op);
  Tensor out = Tensor::empty(a.shape());
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  for (int64_t i = 0; i < a.numel(); ++i) po[i] = f(pa[i], pb[i]);
  return out;
}

template <typename F>
Tensor unary(const Tensor& a, F f) {
  Tensor out = Tensor::empty(a.shape());
  const float* pa = a.data();
  float* po = out.data();
  for (int64_t i = 0; i < a.numel(); ++i) po[i] = f(pa[i]);
  return out;
}

}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  return binary(a, b, [](float x, float y) { return x + y; }, "add");
}
Tensor sub(const Tensor& a, const Tensor& b) {
  return binary(a, b, [](float x, float y) { return x - y; }, "sub");
}
Tensor mul(const Tensor& a, const Tensor& b) {
  return binary(a, b, [](float x, float y) { return x * y; }, "mul");
}
Tensor div(const Tensor& a, const Tensor& b) {
  return binary(a, b, [](float x, float y) { return x / y; }, "div");
}

void add_inplace(Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "add_inplace");
  float* pa = a.data();
  const float* pb = b.data();
  for (int64_t i = 0; i < a.numel(); ++i) pa[i] += pb[i];
}

void scale_inplace(Tensor& a, float s) {
  float* pa = a.data();
  for (int64_t i = 0; i < a.numel(); ++i) pa[i] *= s;
}

Tensor add_scalar(const Tensor& a, float s) {
  return unary(a, [s](float x) { return x + s; });
}
Tensor mul_scalar(const Tensor& a, float s) {
  return unary(a, [s](float x) { return x * s; });
}

Tensor map(const Tensor& a, const std::function<float(float)>& fn) {
  return unary(a, [&fn](float x) { return fn(x); });
}

Tensor abs(const Tensor& a) {
  return unary(a, [](float x) { return std::fabs(x); });
}

Tensor sign(const Tensor& a) {
  return unary(a, [](float x) { return x < 0.0f ? -1.0f : 1.0f; });
}

Tensor clamp(const Tensor& a, float lo, float hi) {
  RIPPLE_CHECK(lo <= hi) << "clamp bounds inverted";
  return unary(a, [lo, hi](float x) { return std::clamp(x, lo, hi); });
}

Tensor exp(const Tensor& a) {
  return unary(a, [](float x) { return std::exp(x); });
}
Tensor log(const Tensor& a) {
  return unary(a, [](float x) { return std::log(x); });
}
Tensor sqrt(const Tensor& a) {
  return unary(a, [](float x) { return std::sqrt(x); });
}

float sum(const Tensor& a) {
  // Pairwise-ish accumulation in double for numerical robustness.
  double acc = 0.0;
  const float* p = a.data();
  for (int64_t i = 0; i < a.numel(); ++i) acc += p[i];
  return static_cast<float>(acc);
}

float mean(const Tensor& a) {
  RIPPLE_CHECK(a.numel() > 0) << "mean of empty tensor";
  return sum(a) / static_cast<float>(a.numel());
}

float min(const Tensor& a) {
  RIPPLE_CHECK(a.numel() > 0) << "min of empty tensor";
  return *std::min_element(a.data(), a.data() + a.numel());
}

float max(const Tensor& a) {
  RIPPLE_CHECK(a.numel() > 0) << "max of empty tensor";
  return *std::max_element(a.data(), a.data() + a.numel());
}

float variance(const Tensor& a) {
  RIPPLE_CHECK(a.numel() > 0) << "variance of empty tensor";
  const double m = mean(a);
  double acc = 0.0;
  const float* p = a.data();
  for (int64_t i = 0; i < a.numel(); ++i) {
    const double d = p[i] - m;
    acc += d * d;
  }
  return static_cast<float>(acc / static_cast<double>(a.numel()));
}

Tensor transpose2d(const Tensor& a) {
  RIPPLE_CHECK(a.rank() == 2) << "transpose2d needs rank 2, got "
                              << shape_to_string(a.shape());
  const int64_t m = a.dim(0);
  const int64_t n = a.dim(1);
  Tensor out({n, m});
  const float* pa = a.data();
  float* po = out.data();
  for (int64_t i = 0; i < m; ++i)
    for (int64_t j = 0; j < n; ++j) po[j * m + i] = pa[i * n + j];
  return out;
}

Tensor concat_channels(const Tensor& a, const Tensor& b) {
  RIPPLE_CHECK(a.rank() == b.rank() && a.rank() >= 2)
      << "concat_channels rank mismatch";
  RIPPLE_CHECK(a.dim(0) == b.dim(0)) << "concat_channels batch mismatch";
  int64_t inner_a = 1;
  int64_t inner_b = 1;
  for (int d = 2; d < a.rank(); ++d) {
    RIPPLE_CHECK(a.dim(d) == b.dim(d))
        << "concat_channels spatial mismatch at dim " << d;
    inner_a *= a.dim(d);
    inner_b *= b.dim(d);
  }
  const int64_t n = a.dim(0);
  const int64_t ca = a.dim(1);
  const int64_t cb = b.dim(1);
  Shape out_shape = a.shape();
  out_shape[1] = ca + cb;
  Tensor out(out_shape);
  const int64_t slab_a = ca * inner_a;
  const int64_t slab_b = cb * inner_b;
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  for (int64_t i = 0; i < n; ++i) {
    std::copy(pa + i * slab_a, pa + (i + 1) * slab_a,
              po + i * (slab_a + slab_b));
    std::copy(pb + i * slab_b, pb + (i + 1) * slab_b,
              po + i * (slab_a + slab_b) + slab_a);
  }
  return out;
}

std::pair<Tensor, Tensor> split_channels(const Tensor& x, int64_t c0) {
  RIPPLE_CHECK(x.rank() >= 2) << "split_channels needs rank >= 2";
  const int64_t c = x.dim(1);
  RIPPLE_CHECK(c0 > 0 && c0 < c)
      << "split point " << c0 << " out of range for " << c << " channels";
  int64_t inner = 1;
  for (int d = 2; d < x.rank(); ++d) inner *= x.dim(d);
  Shape sa = x.shape();
  sa[1] = c0;
  Shape sb = x.shape();
  sb[1] = c - c0;
  Tensor a(sa);
  Tensor b(sb);
  const int64_t n = x.dim(0);
  const float* px = x.data();
  float* pa = a.data();
  float* pb = b.data();
  const int64_t slab = c * inner;
  const int64_t slab_a = c0 * inner;
  const int64_t slab_b = (c - c0) * inner;
  for (int64_t i = 0; i < n; ++i) {
    std::copy(px + i * slab, px + i * slab + slab_a, pa + i * slab_a);
    std::copy(px + i * slab + slab_a, px + (i + 1) * slab, pb + i * slab_b);
  }
  return {a, b};
}

Tensor softmax_rows(const Tensor& logits) {
  RIPPLE_CHECK(logits.rank() == 2) << "softmax_rows needs [N,C]";
  const int64_t n = logits.dim(0);
  const int64_t c = logits.dim(1);
  Tensor out(logits.shape());
  const float* pl = logits.data();
  float* po = out.data();
  for (int64_t i = 0; i < n; ++i) {
    const float* row = pl + i * c;
    float* orow = po + i * c;
    const float mx = *std::max_element(row, row + c);
    double denom = 0.0;
    for (int64_t j = 0; j < c; ++j) {
      orow[j] = std::exp(row[j] - mx);
      denom += orow[j];
    }
    for (int64_t j = 0; j < c; ++j)
      orow[j] = static_cast<float>(orow[j] / denom);
  }
  return out;
}

Tensor log_softmax_rows(const Tensor& logits) {
  RIPPLE_CHECK(logits.rank() == 2) << "log_softmax_rows needs [N,C]";
  const int64_t n = logits.dim(0);
  const int64_t c = logits.dim(1);
  Tensor out(logits.shape());
  const float* pl = logits.data();
  float* po = out.data();
  for (int64_t i = 0; i < n; ++i) {
    const float* row = pl + i * c;
    float* orow = po + i * c;
    const float mx = *std::max_element(row, row + c);
    double denom = 0.0;
    for (int64_t j = 0; j < c; ++j) denom += std::exp(row[j] - mx);
    const float log_denom = static_cast<float>(std::log(denom)) + mx;
    for (int64_t j = 0; j < c; ++j) orow[j] = row[j] - log_denom;
  }
  return out;
}

std::vector<int64_t> argmax_rows(const Tensor& x) {
  RIPPLE_CHECK(x.rank() == 2) << "argmax_rows needs [N,C]";
  const int64_t n = x.dim(0);
  const int64_t c = x.dim(1);
  std::vector<int64_t> idx(static_cast<size_t>(n));
  const float* p = x.data();
  for (int64_t i = 0; i < n; ++i) {
    const float* row = p + i * c;
    idx[static_cast<size_t>(i)] = std::max_element(row, row + c) - row;
  }
  return idx;
}

std::vector<double> Histogram::density() const {
  const int64_t total =
      std::accumulate(counts.begin(), counts.end(), int64_t{0});
  const double width =
      (hi - lo) / static_cast<double>(std::max<size_t>(1, counts.size()));
  std::vector<double> d(counts.size(), 0.0);
  if (total == 0) return d;
  for (size_t i = 0; i < counts.size(); ++i)
    d[i] = static_cast<double>(counts[i]) /
           (static_cast<double>(total) * width);
  return d;
}

float Histogram::bin_center(size_t i) const {
  const float width = (hi - lo) / static_cast<float>(counts.size());
  return lo + (static_cast<float>(i) + 0.5f) * width;
}

Histogram histogram(const Tensor& a, int bins, float lo, float hi) {
  RIPPLE_CHECK(bins > 0) << "histogram needs bins > 0";
  RIPPLE_CHECK(lo < hi) << "histogram bounds inverted";
  Histogram h;
  h.lo = lo;
  h.hi = hi;
  h.counts.assign(static_cast<size_t>(bins), 0);
  const float scale = static_cast<float>(bins) / (hi - lo);
  const float* p = a.data();
  for (int64_t i = 0; i < a.numel(); ++i) {
    int b = static_cast<int>((p[i] - lo) * scale);
    b = std::clamp(b, 0, bins - 1);
    ++h.counts[static_cast<size_t>(b)];
  }
  return h;
}

}  // namespace ripple::ops
