#include "tensor/threadpool.h"

#include <algorithm>

#include "tensor/check.h"
#include "tensor/env.h"

namespace ripple {
namespace {

// Set while a thread executes chunks of a parallel region; nested
// parallel_run calls from such a thread run inline.
thread_local bool tl_in_parallel = false;

struct InParallelScope {
  // Save/restore (not set/clear): nested inline parallel_for calls create
  // nested scopes on the region-owning thread, and the flag must survive
  // until the outermost scope exits (a cleared flag would let a later
  // nested call try_lock the run_mutex_ its own thread already holds).
  bool previous = tl_in_parallel;
  InParallelScope() { tl_in_parallel = true; }
  ~InParallelScope() { tl_in_parallel = previous; }
};

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  RIPPLE_CHECK(num_threads >= 1) << "pool needs >= 1 thread";
  // With one thread, jobs and loops run inline; no workers are spawned.
  if (num_threads == 1) return;
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_job_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::enqueue(std::function<void()> job) {
  if (workers_.empty()) {
    job();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    jobs_.push(std::move(job));
    ++in_flight_;
  }
  cv_job_.notify_one();
}

void ThreadPool::wait_all() {
  if (workers_.empty()) return;
  std::unique_lock<std::mutex> lock(mutex_);
  cv_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::run_task_chunks() {
  InParallelScope scope;
  const int64_t n = task_n_;
  const int64_t chunk = task_chunk_;
  const LoopRef body = task_body_;
  for (;;) {
    const int64_t begin = task_next_.fetch_add(chunk, std::memory_order_relaxed);
    if (begin >= n) break;
    const int64_t end = std::min(n, begin + chunk);
    try {
      body(begin, end);
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(task_error_mutex_);
        if (!task_error_) task_error_ = std::current_exception();
      }
      // Abandon the remaining chunks; participants drain out.
      task_next_.store(n, std::memory_order_relaxed);
    }
  }
}

void ThreadPool::worker_loop() {
  uint64_t seen_epoch = 0;
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_job_.wait(lock, [&] {
        return stop_ || !jobs_.empty() ||
               (task_active_ && task_epoch_ != seen_epoch);
      });
      if (stop_ && jobs_.empty()) return;
      if (jobs_.empty()) {
        // Join the active parallel region (at most once per epoch).
        seen_epoch = task_epoch_;
        ++task_running_;
        lock.unlock();
        run_task_chunks();
        lock.lock();
        --task_running_;
        if (task_running_ == 0) cv_done_.notify_all();
        continue;
      }
      job = std::move(jobs_.front());
      jobs_.pop();
    }
    job();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) cv_done_.notify_all();
    }
  }
}

void ThreadPool::parallel_run(int64_t n, int64_t grain, LoopRef body) {
  if (n <= 0) return;
  grain = std::max<int64_t>(1, grain);
  if (workers_.empty() || n <= grain || tl_in_parallel) {
    InParallelScope scope;
    body(0, n);
    return;
  }
  std::unique_lock<std::mutex> region(run_mutex_, std::try_to_lock);
  if (!region.owns_lock()) {
    // Another thread's parallel region is active; run inline rather than
    // blocking (keeps concurrent callers deadlock-free).
    InParallelScope scope;
    body(0, n);
    return;
  }
  // ~4 chunks per participant give dynamic balancing without excessive
  // atomic traffic.
  const int64_t participants = size() + 1;
  const int64_t chunk =
      std::max(grain, (n + participants * 4 - 1) / (participants * 4));
  {
    std::lock_guard<std::mutex> lock(mutex_);
    task_body_ = body;
    task_n_ = n;
    task_chunk_ = chunk;
    task_next_.store(0, std::memory_order_relaxed);
    task_error_ = nullptr;
    task_active_ = true;
    ++task_epoch_;
  }
  cv_job_.notify_all();
  run_task_chunks();
  {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_done_.wait(lock, [this] {
      return task_next_.load(std::memory_order_relaxed) >= task_n_ &&
             task_running_ == 0;
    });
    task_active_ = false;
    task_body_ = LoopRef{};
  }
  if (task_error_) std::rethrow_exception(task_error_);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool([] {
    const int hw = static_cast<int>(std::thread::hardware_concurrency());
    return env_int("RIPPLE_THREADS", std::max(1, hw));
  }());
  return pool;
}

}  // namespace ripple
