#include "tensor/threadpool.h"

#include <algorithm>

#include "tensor/check.h"
#include "tensor/env.h"

namespace ripple {

ThreadPool::ThreadPool(int num_threads) {
  RIPPLE_CHECK(num_threads >= 1) << "pool needs >= 1 thread";
  // With one thread, jobs run inline in enqueue(); no workers are spawned.
  if (num_threads == 1) return;
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_job_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::enqueue(std::function<void()> job) {
  if (workers_.empty()) {
    job();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    jobs_.push(std::move(job));
    ++in_flight_;
  }
  cv_job_.notify_one();
}

void ThreadPool::wait_all() {
  if (workers_.empty()) return;
  std::unique_lock<std::mutex> lock(mutex_);
  cv_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_job_.wait(lock, [this] { return stop_ || !jobs_.empty(); });
      if (stop_ && jobs_.empty()) return;
      job = std::move(jobs_.front());
      jobs_.pop();
    }
    job();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) cv_done_.notify_all();
    }
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool([] {
    const int hw = static_cast<int>(std::thread::hardware_concurrency());
    return env_int("RIPPLE_THREADS", std::max(1, hw));
  }());
  return pool;
}

void parallel_for(int64_t n, const std::function<void(int64_t, int64_t)>& body,
                  int64_t grain) {
  if (n <= 0) return;
  ThreadPool& pool = ThreadPool::global();
  const int workers = std::max(1, pool.size());
  if (workers == 1 || n <= grain) {
    body(0, n);
    return;
  }
  const int64_t chunks = std::min<int64_t>(workers, (n + grain - 1) / grain);
  const int64_t step = (n + chunks - 1) / chunks;
  for (int64_t begin = 0; begin < n; begin += step) {
    const int64_t end = std::min(n, begin + step);
    pool.enqueue([&body, begin, end] { body(begin, end); });
  }
  pool.wait_all();
}

}  // namespace ripple
