// Raw (non-differentiable) tensor operations.
//
// These are the building blocks used by the autograd layer, the fault
// injectors and the evaluation metrics. Everything here is pure and
// shape-checked; autograd wrappers live in src/autograd/ops.h.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "tensor/tensor.h"

namespace ripple::ops {

// ---- elementwise (same shape) ----------------------------------------
Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);
Tensor div(const Tensor& a, const Tensor& b);

/// a += b (in place, same shape).
void add_inplace(Tensor& a, const Tensor& b);
/// a *= s (in place).
void scale_inplace(Tensor& a, float s);

// ---- scalar ------------------------------------------------------------
Tensor add_scalar(const Tensor& a, float s);
Tensor mul_scalar(const Tensor& a, float s);

/// Elementwise map with an arbitrary function (slow path, tests/metrics).
Tensor map(const Tensor& a, const std::function<float(float)>& fn);

// ---- unary -------------------------------------------------------------
Tensor abs(const Tensor& a);
Tensor sign(const Tensor& a);  // sign(0) = +1 (hardware convention)
Tensor clamp(const Tensor& a, float lo, float hi);
Tensor exp(const Tensor& a);
Tensor log(const Tensor& a);
Tensor sqrt(const Tensor& a);

// ---- reductions ----------------------------------------------------------
float sum(const Tensor& a);
float mean(const Tensor& a);
float min(const Tensor& a);
float max(const Tensor& a);
/// Population variance (divide by N).
float variance(const Tensor& a);

// ---- shape / layout ------------------------------------------------------
/// [M,N] -> [N,M].
Tensor transpose2d(const Tensor& a);
/// Concatenate [N,C1,...] and [N,C2,...] along dim 1 (channels).
Tensor concat_channels(const Tensor& a, const Tensor& b);
/// Split the inverse of concat_channels: first c0 channels and the rest.
std::pair<Tensor, Tensor> split_channels(const Tensor& x, int64_t c0);

// ---- rows (2-d helpers) ----------------------------------------------------
/// Row-wise softmax of [N,C].
Tensor softmax_rows(const Tensor& logits);
/// Row-wise log-softmax of [N,C] (numerically stable).
Tensor log_softmax_rows(const Tensor& logits);
/// Index of the max element in each row of [N,C].
std::vector<int64_t> argmax_rows(const Tensor& x);

// ---- analysis ----------------------------------------------------------
struct Histogram {
  float lo = 0.0f;
  float hi = 1.0f;
  std::vector<int64_t> counts;  // one bin per entry
  /// Density normalized so that sum(density * bin_width) == 1.
  std::vector<double> density() const;
  float bin_center(size_t i) const;
};

/// Histogram of all elements over [lo, hi]; out-of-range values clamp into
/// the edge bins.
Histogram histogram(const Tensor& a, int bins, float lo, float hi);

}  // namespace ripple::ops
