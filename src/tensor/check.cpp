#include "tensor/check.h"

namespace ripple::detail {

void throw_check_failure(const char* cond, const char* file, int line,
                         const std::string& msg) {
  std::ostringstream os;
  os << "RIPPLE_CHECK failed: (" << cond << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

}  // namespace ripple::detail
