// im2col / col2im lowering for convolutions.
//
// Convolutions are computed as GEMM over patch matrices: for one sample,
// im2col produces a [C*kh*kw, out_h*out_w] matrix; the conv forward is then
// W[Cout, C*kh*kw] · cols. col2im scatters patch gradients back to the
// input-gradient image (accumulating overlaps).
#pragma once

#include <cstdint>

#include "tensor/tensor.h"

namespace ripple {

/// Output spatial size for one dimension.
int64_t conv_out_size(int64_t in, int64_t kernel, int64_t stride, int64_t pad);

/// 2-d: image [C,H,W] -> cols [C*kh*kw, oh*ow].
void im2col_2d(const float* image, int64_t c, int64_t h, int64_t w, int64_t kh,
               int64_t kw, int64_t stride, int64_t pad, float* cols);

/// Strided 2-d variant: writes each patch row at stride `ld` (>= oh*ow), so
/// several samples' patch matrices can sit side by side as column blocks of
/// one [C*kh*kw, N*oh*ow] matrix feeding a single batched GEMM.
void im2col_2d_ld(const float* image, int64_t c, int64_t h, int64_t w,
                  int64_t kh, int64_t kw, int64_t stride, int64_t pad,
                  float* cols, int64_t ld);

/// 2-d inverse: cols [C*kh*kw, oh*ow] accumulated into image grad [C,H,W]
/// (caller zeroes the image first).
void col2im_2d(const float* cols, int64_t c, int64_t h, int64_t w, int64_t kh,
               int64_t kw, int64_t stride, int64_t pad, float* image);

/// 1-d: signal [C,L] -> cols [C*k, ol].
void im2col_1d(const float* signal, int64_t c, int64_t l, int64_t k,
               int64_t stride, int64_t pad, float* cols);

/// Strided 1-d variant (see im2col_2d_ld).
void im2col_1d_ld(const float* signal, int64_t c, int64_t l, int64_t k,
                  int64_t stride, int64_t pad, float* cols, int64_t ld);

/// 1-d inverse (accumulating).
void col2im_1d(const float* cols, int64_t c, int64_t l, int64_t k,
               int64_t stride, int64_t pad, float* signal);

}  // namespace ripple
