// Persistent-worker thread pool with a low-overhead parallel_for.
//
// parallel_for runs through a persistent parallel region: the calling
// thread publishes one task descriptor, wakes the workers once, and every
// participant (workers + caller) claims chunked index ranges from a single
// atomic counter. Compared to the previous design (one heap-allocated
// std::function enqueued per chunk through a mutex-guarded queue), a
// fork-join costs one condition-variable broadcast plus a handful of atomic
// fetch-adds, so fine-grained loops (GEMM row panels, per-sample im2col)
// stop paying per-chunk queueing overhead.
//
// Nested parallel_for calls run inline in the calling worker (no deadlock,
// no oversubscription); concurrent parallel_for calls from different
// threads serialize by letting the loser run its range inline. On
// single-core machines (or with RIPPLE_THREADS=1) parallel_for degrades to
// an inline serial loop with zero synchronization overhead.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace ripple {

/// Fixed-size pool of persistent worker threads.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueue a standalone job; wait_all() blocks until every enqueued job
  /// finished. (Legacy API — prefer parallel_run for loops.)
  void enqueue(std::function<void()> job);
  void wait_all();

  /// Non-owning loop body: a plain function pointer plus the address of the
  /// caller's callable. parallel_run used to take std::function, which heap-
  /// allocates at every call site whose lambda captures more than two
  /// pointers — measurable on the zero-alloc compiled serving path. The
  /// callable must outlive the parallel_run call (parallel_for guarantees
  /// this by taking the body by const reference).
  struct LoopRef {
    void (*fn)(const void* ctx, int64_t begin, int64_t end) = nullptr;
    const void* ctx = nullptr;
    void operator()(int64_t begin, int64_t end) const { fn(ctx, begin, end); }
  };

  /// Runs body over [0, n) split into chunks of at least `grain` indices,
  /// distributed to workers via an atomic claim counter. The calling thread
  /// participates. Blocks until the whole range is processed; the first
  /// exception thrown by any chunk is rethrown here (remaining chunks are
  /// abandoned). Runs inline when the pool has no workers, n <= grain, the
  /// caller is already inside a parallel region, or another thread holds
  /// the region.
  void parallel_run(int64_t n, int64_t grain, LoopRef body);

  /// Process-wide pool sized from RIPPLE_THREADS (default:
  /// hardware_concurrency).
  static ThreadPool& global();

 private:
  void worker_loop();
  /// Claims and runs chunks of the active task until the range is
  /// exhausted. Marks the calling thread as inside a parallel region.
  void run_task_chunks();

  std::vector<std::thread> workers_;

  // Legacy job queue (enqueue/wait_all).
  std::queue<std::function<void()>> jobs_;
  int in_flight_ = 0;

  // Active parallel-region descriptor. Written by parallel_run under
  // mutex_; next index claimed lock-free.
  LoopRef task_body_{};
  std::atomic<int64_t> task_next_{0};
  int64_t task_n_ = 0;
  int64_t task_chunk_ = 1;
  uint64_t task_epoch_ = 0;
  int task_running_ = 0;  // workers currently executing chunks
  bool task_active_ = false;
  std::exception_ptr task_error_;
  std::mutex task_error_mutex_;

  std::mutex mutex_;
  std::condition_variable cv_job_;
  std::condition_variable cv_done_;
  bool stop_ = false;

  // Owned by the thread whose parallel_run is active; contenders that fail
  // try_lock run their range inline instead of blocking.
  std::mutex run_mutex_;
};

/// Splits [0, n) into contiguous chunks and runs body(begin, end) on the
/// global pool. Serial when the pool has one thread or n is small.
/// Accepts any callable; no heap allocation (the body is passed by
/// reference through a LoopRef trampoline, never type-erased into
/// std::function).
template <typename F>
void parallel_for(int64_t n, const F& body, int64_t grain = 1024) {
  ThreadPool::LoopRef ref{
      [](const void* ctx, int64_t begin, int64_t end) {
        (*static_cast<const F*>(ctx))(begin, end);
      },
      &body};
  ThreadPool::global().parallel_run(n, grain, ref);
}

}  // namespace ripple
