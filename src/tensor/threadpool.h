// Minimal work-sharing thread pool with a parallel_for helper.
//
// On single-core machines (or with RIPPLE_THREADS=1) parallel_for degrades
// to an inline serial loop with zero synchronization overhead.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace ripple {

/// Fixed-size pool of worker threads executing enqueued jobs.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueue a job; wait_all() blocks until every enqueued job finished.
  void enqueue(std::function<void()> job);
  void wait_all();

  /// Process-wide pool sized from RIPPLE_THREADS (default:
  /// hardware_concurrency).
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> jobs_;
  std::mutex mutex_;
  std::condition_variable cv_job_;
  std::condition_variable cv_done_;
  int in_flight_ = 0;
  bool stop_ = false;
};

/// Splits [0, n) into contiguous chunks and runs body(begin, end) on the
/// global pool. Serial when the pool has one thread or n is small.
void parallel_for(int64_t n, const std::function<void(int64_t, int64_t)>& body,
                  int64_t grain = 1024);

}  // namespace ripple
