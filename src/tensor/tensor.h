// Dense N-dimensional float tensor.
//
// ripple::Tensor is a *handle* type (like torch::Tensor): copying a Tensor
// shares the underlying storage; use clone() for a deep copy. All tensors
// are contiguous row-major; shape-changing ops either reinterpret the same
// storage (reshaped) or produce fresh tensors (transpose, pad, ...).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "tensor/check.h"

namespace ripple {

class Rng;

using Shape = std::vector<int64_t>;

namespace detail {

/// std::allocator variant whose no-argument construct() default-initializes
/// instead of value-initializing: vector<float, …>(n) skips the zero-fill.
/// Tensor storage uses it so Tensor::empty can allocate without touching
/// every element (the zeroing constructors pass an explicit 0.0f).
template <class T>
struct DefaultInitAllocator : std::allocator<T> {
  template <class U>
  struct rebind {
    using other = DefaultInitAllocator<U>;
  };
  template <class U>
  void construct(U* p) noexcept(noexcept(::new (static_cast<void*>(p)) U)) {
    ::new (static_cast<void*>(p)) U;
  }
  template <class U, class... Args>
  void construct(U* p, Args&&... args) {
    ::new (static_cast<void*>(p)) U(std::forward<Args>(args)...);
  }
};

using FloatStorage = std::vector<float, DefaultInitAllocator<float>>;

}  // namespace detail

/// Number of elements implied by a shape (product of dims; empty shape = 1,
/// interpreted as a scalar).
int64_t shape_numel(const Shape& shape);

/// Human-readable "[2, 3, 4]" form for error messages.
std::string shape_to_string(const Shape& shape);

/// Dense, contiguous, row-major float tensor with shared-storage handle
/// semantics.
class Tensor {
 public:
  /// Empty 0-element tensor (shape []). numel()==1 only for explicit scalar
  /// construction; a default tensor has no storage and numel()==0.
  Tensor();

  /// Uninitialized tensor of the given shape (values are zero).
  explicit Tensor(Shape shape);

  /// Tensor with the given shape adopting `values` (size must match).
  Tensor(Shape shape, std::vector<float> values);

  /// 0-d scalar tensor.
  static Tensor scalar(float v);
  /// Uninitialized tensor: contents are indeterminate. Only for buffers
  /// the caller fully overwrites before reading (hot-path allocation that
  /// skips the zero-fill).
  static Tensor empty(Shape shape);
  static Tensor zeros(Shape shape);
  static Tensor ones(Shape shape);
  static Tensor full(Shape shape, float v);
  /// [0, 1, ..., n-1] as a 1-d tensor.
  static Tensor arange(int64_t n);
  /// i.i.d. N(mean, stddev^2).
  static Tensor randn(Shape shape, Rng& rng, float mean = 0.0f,
                      float stddev = 1.0f);
  /// i.i.d. U(lo, hi).
  static Tensor uniform(Shape shape, Rng& rng, float lo = 0.0f,
                        float hi = 1.0f);
  /// i.i.d. Bernoulli(p_one) in {0, 1}.
  static Tensor bernoulli(Shape shape, Rng& rng, float p_one);

  const Shape& shape() const { return shape_; }
  int64_t numel() const { return numel_; }
  int rank() const { return static_cast<int>(shape_.size()); }
  bool defined() const { return storage_ != nullptr; }

  /// Dimension i; negative i counts from the back (dim(-1) = last).
  int64_t dim(int i) const;

  float* data();
  const float* data() const;
  std::span<float> span();
  std::span<const float> span() const;

  /// Value of a 0-d / 1-element tensor.
  float item() const;

  /// Element access by multi-index (bounds-checked; for tests and small
  /// tensors — hot loops should use data()).
  float& at(std::initializer_list<int64_t> idx);
  float at(std::initializer_list<int64_t> idx) const;

  /// Same storage, new shape (numel must match).
  Tensor reshaped(Shape new_shape) const;
  /// Same storage viewed as [numel()].
  Tensor flattened() const;

  /// Deep copy.
  Tensor clone() const;

  /// True if shapes are identical.
  bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }

  /// Fill all elements with v.
  void fill(float v);
  /// Copy values from src (shapes must match exactly).
  void copy_from(const Tensor& src);

  /// True if both handles share the same storage.
  bool shares_storage_with(const Tensor& other) const {
    return storage_ != nullptr && storage_ == other.storage_;
  }

 private:
  Shape shape_;
  int64_t numel_ = 0;
  std::shared_ptr<detail::FloatStorage> storage_;
};

}  // namespace ripple
