#include "tensor/tensor.h"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "tensor/random.h"

namespace ripple {

int64_t shape_numel(const Shape& shape) {
  int64_t n = 1;
  for (int64_t d : shape) {
    RIPPLE_CHECK(d >= 0) << "negative dimension in shape "
                         << shape_to_string(shape);
    n *= d;
  }
  return n;
}

std::string shape_to_string(const Shape& shape) {
  std::ostringstream os;
  os << '[';
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) os << ", ";
    os << shape[i];
  }
  os << ']';
  return os.str();
}

Tensor::Tensor() = default;

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)),
      numel_(shape_numel(shape_)),
      storage_(std::make_shared<detail::FloatStorage>(numel_, 0.0f)) {}

Tensor::Tensor(Shape shape, std::vector<float> values)
    : shape_(std::move(shape)), numel_(shape_numel(shape_)) {
  RIPPLE_CHECK(static_cast<int64_t>(values.size()) == numel_)
      << "value count " << values.size() << " does not match shape "
      << shape_to_string(shape_);
  storage_ =
      std::make_shared<detail::FloatStorage>(values.begin(), values.end());
}

Tensor Tensor::scalar(float v) { return Tensor({}, {v}); }

Tensor Tensor::empty(Shape shape) {
  Tensor t;
  t.shape_ = std::move(shape);
  t.numel_ = shape_numel(t.shape_);
  // Default-init allocator: no zero-fill.
  t.storage_ = std::make_shared<detail::FloatStorage>(
      static_cast<size_t>(t.numel_));
  return t;
}

Tensor Tensor::zeros(Shape shape) { return Tensor(std::move(shape)); }

Tensor Tensor::ones(Shape shape) { return full(std::move(shape), 1.0f); }

Tensor Tensor::full(Shape shape, float v) {
  Tensor t(std::move(shape));
  t.fill(v);
  return t;
}

Tensor Tensor::arange(int64_t n) {
  RIPPLE_CHECK(n >= 0) << "arange size must be non-negative, got " << n;
  Tensor t({n});
  float* p = t.data();
  for (int64_t i = 0; i < n; ++i) p[i] = static_cast<float>(i);
  return t;
}

Tensor Tensor::randn(Shape shape, Rng& rng, float mean, float stddev) {
  Tensor t(std::move(shape));
  float* p = t.data();
  for (int64_t i = 0; i < t.numel(); ++i) p[i] = rng.normal(mean, stddev);
  return t;
}

Tensor Tensor::uniform(Shape shape, Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  float* p = t.data();
  for (int64_t i = 0; i < t.numel(); ++i) p[i] = rng.uniform(lo, hi);
  return t;
}

Tensor Tensor::bernoulli(Shape shape, Rng& rng, float p_one) {
  Tensor t(std::move(shape));
  float* p = t.data();
  for (int64_t i = 0; i < t.numel(); ++i)
    p[i] = rng.bernoulli(p_one) ? 1.0f : 0.0f;
  return t;
}

int64_t Tensor::dim(int i) const {
  const int r = rank();
  if (i < 0) i += r;
  RIPPLE_CHECK(i >= 0 && i < r)
      << "dim index " << i << " out of range for shape "
      << shape_to_string(shape_);
  return shape_[static_cast<size_t>(i)];
}

float* Tensor::data() {
  RIPPLE_CHECK(storage_ != nullptr) << "data() on undefined tensor";
  return storage_->data();
}

const float* Tensor::data() const {
  RIPPLE_CHECK(storage_ != nullptr) << "data() on undefined tensor";
  return storage_->data();
}

std::span<float> Tensor::span() {
  return {data(), static_cast<size_t>(numel_)};
}

std::span<const float> Tensor::span() const {
  return {data(), static_cast<size_t>(numel_)};
}

float Tensor::item() const {
  RIPPLE_CHECK(numel_ == 1) << "item() requires a 1-element tensor, shape is "
                            << shape_to_string(shape_);
  return (*storage_)[0];
}

float& Tensor::at(std::initializer_list<int64_t> idx) {
  RIPPLE_CHECK(static_cast<int>(idx.size()) == rank())
      << "index rank " << idx.size() << " vs tensor rank " << rank();
  int64_t off = 0;
  int d = 0;
  for (int64_t i : idx) {
    RIPPLE_CHECK(i >= 0 && i < shape_[static_cast<size_t>(d)])
        << "index " << i << " out of range at dim " << d << " for shape "
        << shape_to_string(shape_);
    off = off * shape_[static_cast<size_t>(d)] + i;
    ++d;
  }
  return (*storage_)[static_cast<size_t>(off)];
}

float Tensor::at(std::initializer_list<int64_t> idx) const {
  return const_cast<Tensor*>(this)->at(idx);
}

Tensor Tensor::reshaped(Shape new_shape) const {
  RIPPLE_CHECK(storage_ != nullptr) << "reshaped() on undefined tensor";
  const int64_t n = shape_numel(new_shape);
  RIPPLE_CHECK(n == numel_) << "reshape " << shape_to_string(shape_) << " -> "
                            << shape_to_string(new_shape)
                            << " changes element count";
  Tensor t;
  t.shape_ = std::move(new_shape);
  t.numel_ = n;
  t.storage_ = storage_;
  return t;
}

Tensor Tensor::flattened() const { return reshaped({numel_}); }

Tensor Tensor::clone() const {
  if (!defined()) return Tensor();
  Tensor t;
  t.shape_ = shape_;
  t.numel_ = numel_;
  t.storage_ = std::make_shared<detail::FloatStorage>(*storage_);
  return t;
}

void Tensor::fill(float v) {
  RIPPLE_CHECK(storage_ != nullptr) << "fill() on undefined tensor";
  std::fill(storage_->begin(), storage_->end(), v);
}

void Tensor::copy_from(const Tensor& src) {
  RIPPLE_CHECK(same_shape(src))
      << "copy_from shape mismatch: " << shape_to_string(shape_) << " vs "
      << shape_to_string(src.shape_);
  std::copy(src.data(), src.data() + numel_, data());
}

}  // namespace ripple
