#include "tensor/env.h"

#include <cstdlib>

#include "tensor/check.h"

namespace ripple {

int env_int(const char* name, int fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const long v = std::strtol(raw, &end, 10);
  RIPPLE_CHECK(end != raw && *end == '\0')
      << "env var " << name << "='" << raw << "' is not an integer";
  return static_cast<int>(v);
}

double env_double(const char* name, double fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const double v = std::strtod(raw, &end);
  RIPPLE_CHECK(end != raw && *end == '\0')
      << "env var " << name << "='" << raw << "' is not a number";
  return v;
}

std::string env_string(const char* name, const std::string& fallback) {
  const char* raw = std::getenv(name);
  return (raw == nullptr || *raw == '\0') ? fallback : std::string(raw);
}

bool fast_mode() { return env_int("RIPPLE_FAST", 0) != 0; }

}  // namespace ripple
