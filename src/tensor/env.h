// Environment-variable configuration knobs.
//
// Benches and examples read workload sizes from RIPPLE_* environment
// variables so the same binaries can run both in a fast CI mode and in a
// closer-to-paper-fidelity mode.
#pragma once

#include <string>

namespace ripple {

/// Integer env var with default; throws CheckError on unparsable values.
int env_int(const char* name, int fallback);

/// Double env var with default.
double env_double(const char* name, double fallback);

/// String env var with default.
std::string env_string(const char* name, const std::string& fallback);

/// True when RIPPLE_FAST is set to a non-zero value: benches shrink their
/// workloads (fewer Monte-Carlo runs, fewer epochs, fewer samples).
bool fast_mode();

}  // namespace ripple
