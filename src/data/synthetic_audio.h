// Synthetic keyword-spotting waveforms, the Google-Speech-Commands
// substitute (see DESIGN.md).
//
// Each keyword class is a chord of two harmonics with a class-specific
// fundamental plus an attack/decay amplitude envelope; per-sample pitch
// jitter, random phase and additive noise make the task non-trivial while
// remaining learnable by the M5 1-D CNN.
#pragma once

#include "data/dataset.h"

namespace ripple::data {

struct AudioConfig {
  int64_t classes = 8;
  int64_t length = 512;      // samples per clip (mono, [N,1,L])
  float noise_std = 0.1f;
  float pitch_jitter = 0.03f;  // relative fundamental jitter
};

/// Generates `count` labeled clips (balanced classes, shuffled order).
ClassificationData make_audio(int64_t count, const AudioConfig& config,
                              Rng& rng);

}  // namespace ripple::data
