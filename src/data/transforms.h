// Input transforms for the OOD experiments (§IV-E) and general
// augmentation.
#pragma once

#include "data/dataset.h"

namespace ripple::data {

/// Rotates [N,C,H,W] images around their center by `degrees`
/// (bilinear sampling, zero padding outside) — the paper's first OOD shift
/// (12 stages × 7°).
Tensor rotate_images(const Tensor& images, float degrees);

/// Adds U(−level, +level) noise to every element — the paper's second OOD
/// shift (escalating uniform noise).
Tensor add_uniform_noise(const Tensor& x, float level, Rng& rng);

/// Adds N(0, std) noise to every element.
Tensor add_gaussian_noise(const Tensor& x, float std, Rng& rng);

}  // namespace ripple::data
