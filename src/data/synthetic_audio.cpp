#include "data/synthetic_audio.h"

#include <cmath>
#include <numbers>

#include "tensor/check.h"

namespace ripple::data {

ClassificationData make_audio(int64_t count, const AudioConfig& config,
                              Rng& rng) {
  RIPPLE_CHECK(count > 0) << "make_audio needs count > 0";
  RIPPLE_CHECK(config.classes >= 2 && config.length >= 64)
      << "invalid audio config";
  ClassificationData data;
  data.x = Tensor({count, 1, config.length});
  data.y.resize(static_cast<size_t>(count));

  const auto l = static_cast<float>(config.length);
  float* px = data.x.data();
  constexpr float kTwoPi = 2.0f * static_cast<float>(std::numbers::pi);

  for (int64_t i = 0; i < count; ++i) {
    const int64_t cls = i % config.classes;
    data.y[static_cast<size_t>(i)] = cls;

    // Class chord: fundamental + one partial whose ratio also varies by
    // class, so neither cue alone identifies the keyword.
    const float f0 = (6.0f + 4.0f * static_cast<float>(cls)) *
                     (1.0f + rng.uniform(-config.pitch_jitter,
                                         config.pitch_jitter));
    const float ratio = 1.5f + 0.25f * static_cast<float>(cls % 4);
    const float phase0 = rng.uniform(0.0f, kTwoPi);
    const float phase1 = rng.uniform(0.0f, kTwoPi);
    // Attack/decay envelope with a class-dependent attack position.
    const float attack =
        (0.15f + 0.08f * static_cast<float>(cls % 3)) + rng.uniform(-0.03f, 0.03f);

    float* clip = px + i * config.length;
    for (int64_t t = 0; t < config.length; ++t) {
      const float tn = static_cast<float>(t) / l;
      const float env =
          tn < attack ? tn / attack
                      : std::exp(-3.0f * (tn - attack) / (1.0f - attack));
      const float s = std::sin(kTwoPi * f0 * tn + phase0) +
                      0.6f * std::sin(kTwoPi * f0 * ratio * tn + phase1);
      clip[t] = env * s + rng.normal(0.0f, config.noise_std);
    }
  }

  const std::vector<int64_t> perm = shuffled_indices(count, rng);
  data.x = take_rows(data.x, perm);
  std::vector<int64_t> shuffled_y(static_cast<size_t>(count));
  for (size_t i = 0; i < perm.size(); ++i)
    shuffled_y[i] = data.y[static_cast<size_t>(perm[i])];
  data.y = std::move(shuffled_y);
  return data;
}

}  // namespace ripple::data
