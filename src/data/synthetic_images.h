// Synthetic 10-class RGB image benchmark ("PatternNet-10"), the CIFAR-10
// substitute (see DESIGN.md).
//
// Each class is a parametric texture: an oriented sinusoidal grating whose
// angle, spatial frequency and dominant color channel identify the class,
// with per-sample jitter (phase, angle, contrast) and additive Gaussian
// pixel noise. The task is linearly non-trivial but learnable by a small
// binarized CNN to high accuracy — what the robustness sweeps need is a
// *trained* classifier whose accuracy degrades measurably under faults.
#pragma once

#include "data/dataset.h"

namespace ripple::data {

struct ImageConfig {
  int64_t classes = 10;
  int64_t channels = 3;
  int64_t height = 16;
  int64_t width = 16;
  float pixel_noise = 0.15f;
  float angle_jitter_deg = 6.0f;
};

/// Generates `count` labeled images (balanced classes, shuffled order).
ClassificationData make_images(int64_t count, const ImageConfig& config,
                               Rng& rng);

}  // namespace ripple::data
