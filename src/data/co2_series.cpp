#include "data/co2_series.h"

#include <cmath>
#include <numbers>

#include "tensor/check.h"

namespace ripple::data {

std::vector<float> make_co2_series(const Co2Config& config, Rng& rng) {
  RIPPLE_CHECK(config.months > config.window + 2)
      << "series too short for windowing";
  std::vector<float> series(static_cast<size_t>(config.months));
  constexpr float kTwoPi = 2.0f * static_cast<float>(std::numbers::pi);
  const float phase = rng.uniform(0.0f, kTwoPi);
  float residual = 0.0f;
  for (int64_t t = 0; t < config.months; ++t) {
    const auto tf = static_cast<float>(t);
    residual = config.ar_rho * residual +
               rng.normal(0.0f, config.ar_std);
    series[static_cast<size_t>(t)] =
        config.c0 + config.linear * tf + config.quadratic * tf * tf +
        config.seasonal1 * std::sin(kTwoPi * tf / 12.0f + phase) +
        config.seasonal2 * std::sin(2.0f * kTwoPi * tf / 12.0f) + residual;
  }
  return series;
}

namespace {

SeriesData windows_from(const std::vector<float>& norm, int64_t begin,
                        int64_t end, int64_t window, float mean, float std) {
  const int64_t count = end - begin;
  SeriesData d;
  d.mean = mean;
  d.std = std;
  d.windows = Tensor({count, window, 1});
  d.targets = Tensor({count, 1});
  float* pw = d.windows.data();
  float* pt = d.targets.data();
  for (int64_t i = 0; i < count; ++i) {
    const int64_t t0 = begin + i;
    for (int64_t k = 0; k < window; ++k)
      pw[i * window + k] = norm[static_cast<size_t>(t0 + k)];
    pt[i] = norm[static_cast<size_t>(t0 + window)];
  }
  return d;
}

}  // namespace

Co2Split make_co2_windows(const Co2Config& config, float train_fraction,
                          Rng& rng) {
  RIPPLE_CHECK(train_fraction > 0.0f && train_fraction < 1.0f)
      << "train_fraction must be in (0,1)";
  const std::vector<float> raw = make_co2_series(config, rng);

  // Normalize with the *training* statistics only (no test leakage).
  const int64_t total_windows = config.months - config.window;
  const auto train_count =
      static_cast<int64_t>(train_fraction * static_cast<float>(total_windows));
  RIPPLE_CHECK(train_count > 8 && train_count < total_windows)
      << "degenerate train/test split";
  const int64_t train_months = train_count + config.window;
  double sum = 0.0;
  for (int64_t t = 0; t < train_months; ++t) sum += raw[static_cast<size_t>(t)];
  const double mean = sum / static_cast<double>(train_months);
  double ss = 0.0;
  for (int64_t t = 0; t < train_months; ++t) {
    const double d = raw[static_cast<size_t>(t)] - mean;
    ss += d * d;
  }
  const double std = std::sqrt(ss / static_cast<double>(train_months));
  std::vector<float> norm(raw.size());
  for (size_t i = 0; i < raw.size(); ++i)
    norm[i] = static_cast<float>((raw[i] - mean) / std);

  Co2Split split;
  split.train = windows_from(norm, 0, train_count, config.window,
                             static_cast<float>(mean),
                             static_cast<float>(std));
  split.test = windows_from(norm, train_count, total_windows, config.window,
                            static_cast<float>(mean),
                            static_cast<float>(std));
  return split;
}

}  // namespace ripple::data
