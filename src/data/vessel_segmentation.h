// Synthetic retinal-vessel segmentation images, the DRIVE substitute (see
// DESIGN.md).
//
// Grayscale fundus-like images: a bright disc with radial illumination
// falloff, on which dark curvilinear vessel trees are drawn by branching
// random walks of width 1-2 px. The paired mask marks vessel pixels. The
// structure (thin elongated foreground, ~10% positive pixels, low
// contrast) matches what makes DRIVE hard for small U-Nets.
#pragma once

#include "data/dataset.h"

namespace ripple::data {

struct VesselConfig {
  int64_t height = 32;
  int64_t width = 32;
  int min_vessels = 2;
  int max_vessels = 4;
  float branch_probability = 0.04f;
  float vessel_contrast = 0.55f;  // how much darker vessels are
  float noise_std = 0.06f;
};

/// Generates `count` image/mask pairs: images [N,1,H,W] in [-1,1],
/// masks [N,1,H,W] in {0,1}.
SegmentationData make_vessels(int64_t count, const VesselConfig& config,
                              Rng& rng);

}  // namespace ripple::data
