// Synthetic atmospheric-CO2 monthly series (Keeling-curve substitute) and
// autoregressive windowing for the LSTM forecasting task.
//
// The real Mauna Loa record is a quadratic growth trend plus a strongly
// periodic seasonal cycle with small autocorrelated residuals; the
// generator reproduces exactly that structure:
//   c(t) = c0 + a·t + b·t² + A1·sin(2πt/12 + φ) + A2·sin(4πt/12) + AR(1)
#pragma once

#include "data/dataset.h"

namespace ripple::data {

struct Co2Config {
  int64_t months = 600;       // series length (50 years)
  int64_t window = 24;        // autoregressive input length
  float c0 = 315.0f;          // ppm at t=0 (1958-like)
  float linear = 0.07f;       // ppm / month
  float quadratic = 3.0e-5f;  // ppm / month²
  float seasonal1 = 3.0f;     // annual amplitude, ppm
  float seasonal2 = 0.8f;     // semi-annual amplitude, ppm
  float ar_rho = 0.6f;        // residual autocorrelation
  float ar_std = 0.25f;       // residual innovation std, ppm
};

/// Raw monthly values, length config.months.
std::vector<float> make_co2_series(const Co2Config& config, Rng& rng);

/// z-normalized sliding windows over the series: windows [N, window, 1]
/// predict the next month [N, 1]. `train_fraction` of the windows (the
/// chronologically first ones) go to train, the rest to test — no leakage.
struct Co2Split {
  SeriesData train;
  SeriesData test;
};
Co2Split make_co2_windows(const Co2Config& config, float train_fraction,
                          Rng& rng);

}  // namespace ripple::data
