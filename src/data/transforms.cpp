#include "data/transforms.h"

#include <cmath>
#include <numbers>

#include "tensor/check.h"

namespace ripple::data {

Tensor rotate_images(const Tensor& images, float degrees) {
  RIPPLE_CHECK(images.rank() == 4) << "rotate_images needs [N,C,H,W]";
  const int64_t n = images.dim(0);
  const int64_t c = images.dim(1);
  const int64_t h = images.dim(2);
  const int64_t w = images.dim(3);
  const float rad =
      degrees * static_cast<float>(std::numbers::pi) / 180.0f;
  const float ca = std::cos(rad);
  const float sa = std::sin(rad);
  const float cx = static_cast<float>(w - 1) / 2.0f;
  const float cy = static_cast<float>(h - 1) / 2.0f;

  Tensor out(images.shape());
  const float* pin = images.data();
  float* pout = out.data();
  const int64_t plane = h * w;
  for (int64_t img = 0; img < n * c; ++img) {
    const float* src = pin + img * plane;
    float* dst = pout + img * plane;
    for (int64_t y = 0; y < h; ++y)
      for (int64_t x = 0; x < w; ++x) {
        // Inverse-map the output pixel into the source image.
        const float dx = static_cast<float>(x) - cx;
        const float dy = static_cast<float>(y) - cy;
        const float sx = ca * dx + sa * dy + cx;
        const float sy = -sa * dx + ca * dy + cy;
        float v = 0.0f;
        const auto x0 = static_cast<int64_t>(std::floor(sx));
        const auto y0 = static_cast<int64_t>(std::floor(sy));
        if (x0 >= -1 && x0 < w && y0 >= -1 && y0 < h) {
          const float fx = sx - static_cast<float>(x0);
          const float fy = sy - static_cast<float>(y0);
          auto sample = [&](int64_t yy, int64_t xx) -> float {
            if (yy < 0 || yy >= h || xx < 0 || xx >= w) return 0.0f;
            return src[yy * w + xx];
          };
          v = (1.0f - fy) * ((1.0f - fx) * sample(y0, x0) +
                             fx * sample(y0, x0 + 1)) +
              fy * ((1.0f - fx) * sample(y0 + 1, x0) +
                    fx * sample(y0 + 1, x0 + 1));
        }
        dst[y * w + x] = v;
      }
  }
  return out;
}

Tensor add_uniform_noise(const Tensor& x, float level, Rng& rng) {
  RIPPLE_CHECK(level >= 0.0f) << "noise level must be >= 0";
  Tensor out = x.clone();
  float* p = out.data();
  for (int64_t i = 0; i < out.numel(); ++i)
    p[i] += rng.uniform(-level, level);
  return out;
}

Tensor add_gaussian_noise(const Tensor& x, float std, Rng& rng) {
  RIPPLE_CHECK(std >= 0.0f) << "noise std must be >= 0";
  Tensor out = x.clone();
  float* p = out.data();
  for (int64_t i = 0; i < out.numel(); ++i) p[i] += rng.normal(0.0f, std);
  return out;
}

}  // namespace ripple::data
