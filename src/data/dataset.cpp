#include "data/dataset.h"

#include <algorithm>
#include <numeric>

#include "tensor/check.h"

namespace ripple::data {

Tensor take_rows(const Tensor& x, const std::vector<int64_t>& indices) {
  RIPPLE_CHECK(x.rank() >= 1) << "take_rows needs rank >= 1";
  const int64_t n = x.dim(0);
  int64_t inner = 1;
  for (int d = 1; d < x.rank(); ++d) inner *= x.dim(d);
  Shape out_shape = x.shape();
  out_shape[0] = static_cast<int64_t>(indices.size());
  Tensor out(out_shape);
  const float* px = x.data();
  float* po = out.data();
  for (size_t i = 0; i < indices.size(); ++i) {
    const int64_t idx = indices[i];
    RIPPLE_CHECK(idx >= 0 && idx < n) << "row index " << idx << " out of range";
    std::copy(px + idx * inner, px + (idx + 1) * inner,
              po + static_cast<int64_t>(i) * inner);
  }
  return out;
}

Tensor slice_rows(const Tensor& x, int64_t begin, int64_t count) {
  RIPPLE_CHECK(x.rank() >= 1) << "slice_rows needs rank >= 1";
  RIPPLE_CHECK(begin >= 0 && count >= 0 && begin + count <= x.dim(0))
      << "slice_rows [" << begin << ", " << begin + count
      << ") out of range for " << x.dim(0) << " rows";
  int64_t inner = 1;
  for (int d = 1; d < x.rank(); ++d) inner *= x.dim(d);
  Shape out_shape = x.shape();
  out_shape[0] = count;
  Tensor out(out_shape);
  std::copy(x.data() + begin * inner, x.data() + (begin + count) * inner,
            out.data());
  return out;
}

std::vector<int64_t> shuffled_indices(int64_t n, Rng& rng) {
  std::vector<int64_t> idx(static_cast<size_t>(n));
  std::iota(idx.begin(), idx.end(), 0);
  std::shuffle(idx.begin(), idx.end(), rng.engine());
  return idx;
}

std::vector<std::pair<int64_t, int64_t>> batch_ranges(int64_t n,
                                                      int64_t batch_size) {
  RIPPLE_CHECK(batch_size >= 1) << "batch size must be >= 1";
  std::vector<std::pair<int64_t, int64_t>> out;
  for (int64_t b = 0; b < n; b += batch_size)
    out.emplace_back(b, std::min(n, b + batch_size));
  return out;
}

}  // namespace ripple::data
