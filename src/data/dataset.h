// Dataset containers and batching utilities.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/random.h"
#include "tensor/tensor.h"

namespace ripple::data {

/// Labeled classification set: x is [N, ...], y holds N class indices.
struct ClassificationData {
  Tensor x;
  std::vector<int64_t> y;
  int64_t size() const { return x.defined() ? x.dim(0) : 0; }
};

/// Dense segmentation set: masks share the images' [N,1,H,W] layout.
struct SegmentationData {
  Tensor images;
  Tensor masks;
  int64_t size() const { return images.defined() ? images.dim(0) : 0; }
};

/// Autoregressive forecasting set: windows [N,T,1] predict targets [N,1].
/// mean/std record the normalization applied to the raw series so RMSE can
/// be reported in original units.
struct SeriesData {
  Tensor windows;
  Tensor targets;
  float mean = 0.0f;
  float std = 1.0f;
  int64_t size() const { return windows.defined() ? windows.dim(0) : 0; }
};

/// Rows `indices` of x (gather along dim 0).
Tensor take_rows(const Tensor& x, const std::vector<int64_t>& indices);

/// Contiguous slice [begin, begin+count) along dim 0.
Tensor slice_rows(const Tensor& x, int64_t begin, int64_t count);

/// Random permutation of [0, n).
std::vector<int64_t> shuffled_indices(int64_t n, Rng& rng);

/// Splits [0, n) into consecutive batches of at most `batch_size`.
std::vector<std::pair<int64_t, int64_t>> batch_ranges(int64_t n,
                                                      int64_t batch_size);

}  // namespace ripple::data
