#include "data/synthetic_images.h"

#include <cmath>
#include <numbers>

#include "tensor/check.h"

namespace ripple::data {
namespace {

struct ClassRecipe {
  float angle_rad;
  float frequency;   // cycles across the image diagonal
  int dominant_channel;
  float secondary;   // amplitude of the off-channel copies
};

ClassRecipe recipe_for(int64_t cls, int64_t classes) {
  // Spread orientations over 180° and cycle frequency / color so that no
  // single cue separates all classes.
  ClassRecipe r;
  r.angle_rad = static_cast<float>(std::numbers::pi) *
                static_cast<float>(cls) / static_cast<float>(classes);
  r.frequency = 2.0f + static_cast<float>(cls % 3);
  r.dominant_channel = static_cast<int>(cls % 3);
  r.secondary = 0.25f + 0.05f * static_cast<float>(cls % 2);
  return r;
}

}  // namespace

ClassificationData make_images(int64_t count, const ImageConfig& config,
                               Rng& rng) {
  RIPPLE_CHECK(count > 0) << "make_images needs count > 0";
  RIPPLE_CHECK(config.classes >= 2 && config.channels >= 1)
      << "invalid image config";
  ClassificationData data;
  data.x = Tensor(
      {count, config.channels, config.height, config.width});
  data.y.resize(static_cast<size_t>(count));

  const auto h = static_cast<float>(config.height);
  const auto w = static_cast<float>(config.width);
  float* px = data.x.data();
  const int64_t plane = config.height * config.width;

  for (int64_t i = 0; i < count; ++i) {
    const int64_t cls = i % config.classes;  // balanced
    data.y[static_cast<size_t>(i)] = cls;
    const ClassRecipe r = recipe_for(cls, config.classes);

    const float phase =
        rng.uniform(0.0f, 2.0f * static_cast<float>(std::numbers::pi));
    const float jitter = rng.uniform(-config.angle_jitter_deg,
                                     config.angle_jitter_deg) *
                         static_cast<float>(std::numbers::pi) / 180.0f;
    const float angle = r.angle_rad + jitter;
    const float contrast = rng.uniform(0.8f, 1.2f);
    const float ca = std::cos(angle);
    const float sa = std::sin(angle);

    float* img = px + i * config.channels * plane;
    for (int64_t y = 0; y < config.height; ++y) {
      for (int64_t x = 0; x < config.width; ++x) {
        const float xn = (static_cast<float>(x) / w - 0.5f) * 2.0f;
        const float yn = (static_cast<float>(y) / h - 0.5f) * 2.0f;
        const float proj = xn * ca + yn * sa;
        const float v =
            contrast *
            std::sin(static_cast<float>(std::numbers::pi) * r.frequency *
                         proj +
                     phase);
        for (int64_t c = 0; c < config.channels; ++c) {
          const float amp =
              (c == r.dominant_channel) ? 1.0f : r.secondary;
          img[c * plane + y * config.width + x] =
              amp * v + rng.normal(0.0f, config.pixel_noise);
        }
      }
    }
  }

  // Shuffle so mini-batches are class-mixed.
  const std::vector<int64_t> perm = shuffled_indices(count, rng);
  data.x = take_rows(data.x, perm);
  std::vector<int64_t> shuffled_y(static_cast<size_t>(count));
  for (size_t i = 0; i < perm.size(); ++i)
    shuffled_y[i] = data.y[static_cast<size_t>(perm[i])];
  data.y = std::move(shuffled_y);
  return data;
}

}  // namespace ripple::data
