#include "data/vessel_segmentation.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "tensor/check.h"

namespace ripple::data {
namespace {

struct Walker {
  float x;
  float y;
  float angle;
  float width;
};

void draw_disc(float* mask, int64_t h, int64_t w, float cx, float cy,
               float radius) {
  const int64_t y0 = std::max<int64_t>(0, static_cast<int64_t>(cy - radius - 1));
  const int64_t y1 = std::min(h - 1, static_cast<int64_t>(cy + radius + 1));
  const int64_t x0 = std::max<int64_t>(0, static_cast<int64_t>(cx - radius - 1));
  const int64_t x1 = std::min(w - 1, static_cast<int64_t>(cx + radius + 1));
  for (int64_t y = y0; y <= y1; ++y)
    for (int64_t x = x0; x <= x1; ++x) {
      const float dx = static_cast<float>(x) - cx;
      const float dy = static_cast<float>(y) - cy;
      if (dx * dx + dy * dy <= radius * radius) mask[y * w + x] = 1.0f;
    }
}

}  // namespace

SegmentationData make_vessels(int64_t count, const VesselConfig& config,
                              Rng& rng) {
  RIPPLE_CHECK(count > 0) << "make_vessels needs count > 0";
  RIPPLE_CHECK(config.height >= 16 && config.width >= 16)
      << "vessel images must be at least 16x16";
  SegmentationData data;
  data.images = Tensor({count, 1, config.height, config.width});
  data.masks = Tensor({count, 1, config.height, config.width});

  const int64_t h = config.height;
  const int64_t w = config.width;
  const int64_t plane = h * w;
  float* pimg = data.images.data();
  float* pmask = data.masks.data();
  constexpr float kPi = static_cast<float>(std::numbers::pi);

  for (int64_t i = 0; i < count; ++i) {
    float* img = pimg + i * plane;
    float* mask = pmask + i * plane;

    // Fundus background: radial illumination + gentle gradient.
    const float cx = static_cast<float>(w) / 2.0f + rng.uniform(-2.0f, 2.0f);
    const float cy = static_cast<float>(h) / 2.0f + rng.uniform(-2.0f, 2.0f);
    const float sigma = 0.55f * static_cast<float>(std::min(h, w));
    const float gx = rng.uniform(-0.1f, 0.1f);
    for (int64_t y = 0; y < h; ++y)
      for (int64_t x = 0; x < w; ++x) {
        const float dx = (static_cast<float>(x) - cx) / sigma;
        const float dy = (static_cast<float>(y) - cy) / sigma;
        img[y * w + x] = 0.6f * std::exp(-(dx * dx + dy * dy)) - 0.2f +
                         gx * static_cast<float>(x) / static_cast<float>(w);
      }

    // Vessel trees: branching random walks from the border inward.
    const int n_vessels =
        static_cast<int>(rng.randint(config.min_vessels, config.max_vessels));
    std::vector<Walker> walkers;
    for (int v = 0; v < n_vessels; ++v) {
      Walker wk;
      // Start on a random border, heading inward.
      switch (rng.randint(0, 3)) {
        case 0:
          wk = {rng.uniform(0.0f, static_cast<float>(w - 1)), 0.0f,
                kPi / 2.0f, 0.0f};
          break;
        case 1:
          wk = {rng.uniform(0.0f, static_cast<float>(w - 1)),
                static_cast<float>(h - 1), -kPi / 2.0f, 0.0f};
          break;
        case 2:
          wk = {0.0f, rng.uniform(0.0f, static_cast<float>(h - 1)), 0.0f,
                0.0f};
          break;
        default:
          wk = {static_cast<float>(w - 1),
                rng.uniform(0.0f, static_cast<float>(h - 1)), kPi, 0.0f};
          break;
      }
      wk.angle += rng.uniform(-0.4f, 0.4f);
      wk.width = rng.uniform(0.6f, 1.3f);
      walkers.push_back(wk);
    }
    int64_t steps = 0;
    const int64_t max_steps = 4 * (h + w);
    while (!walkers.empty() && steps++ < max_steps) {
      std::vector<Walker> next;
      for (Walker wk : walkers) {
        wk.x += std::cos(wk.angle);
        wk.y += std::sin(wk.angle);
        wk.angle += rng.uniform(-0.35f, 0.35f);
        if (wk.x < 0 || wk.x >= static_cast<float>(w) || wk.y < 0 ||
            wk.y >= static_cast<float>(h))
          continue;
        draw_disc(mask, h, w, wk.x, wk.y, wk.width);
        if (rng.bernoulli(config.branch_probability) && next.size() < 8) {
          Walker branch = wk;
          branch.angle += rng.bernoulli(0.5f) ? 0.7f : -0.7f;
          branch.width = std::max(0.5f, wk.width * 0.8f);
          next.push_back(branch);
        }
        next.push_back(wk);
      }
      walkers = std::move(next);
    }

    // Vessels darken the image; add acquisition noise last.
    for (int64_t k = 0; k < plane; ++k) {
      if (mask[k] > 0.5f) img[k] -= config.vessel_contrast;
      img[k] += rng.normal(0.0f, config.noise_std);
      img[k] = std::clamp(img[k], -1.0f, 1.0f);
    }
  }
  return data;
}

}  // namespace ripple::data
