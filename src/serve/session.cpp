#include "serve/session.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "core/inverted_norm.h"
#include "core/mc_stream.h"
#include "core/uncertainty.h"
#include "data/dataset.h"
#include "deploy/exec_backend.h"
#include "deploy/trace.h"
#include "fault/mc_batch.h"
#include "models/variants.h"
#include "nn/dropout.h"
#include "nn/noise.h"
#include "serve/trace.h"
#include "tensor/ops.h"

namespace ripple::serve {

namespace {

Tensor entropy_tensor(const Tensor& mean_probs) {
  const std::vector<double> h = core::per_sample_entropy(mean_probs);
  Tensor out = Tensor::empty({static_cast<int64_t>(h.size())});
  for (size_t i = 0; i < h.size(); ++i)
    out.data()[i] = static_cast<float>(h[i]);
  return out;
}

/// True when t already matches ref's shape with leading dim `rows`; the
/// steady-state predict_into path must not construct a Shape (that would
/// allocate), so shapes are compared dim-by-dim.
bool matches_rows(const Tensor& t, const Tensor& ref, int64_t rows) {
  if (!t.defined() || t.rank() != ref.rank() || t.dim(0) != rows) return false;
  for (int d = 1; d < ref.rank(); ++d)
    if (t.dim(d) != ref.dim(d)) return false;
  return true;
}

/// (Re)allocates t as [rows, ref.dims(1..)] only on shape mismatch.
void ensure_like(Tensor& t, const Tensor& ref, int64_t rows) {
  if (matches_rows(t, ref, rows)) return;
  Shape s = ref.shape();
  s[0] = rows;
  t = Tensor::empty(std::move(s));
}

}  // namespace

/// One leased execution context: the plan's buffer arena plus aggregation
/// staging, reused across requests so the steady state never allocates.
struct PlanPooled {
  std::unique_ptr<deploy::PlanContext> ctx;
  Tensor scratch;  // aggregation staging (softmax / sigmoid probs)
  const deploy::ExecutionPlan* plan = nullptr;
};

struct PlanCacheEntry {
  static constexpr int kBuilding = 0;
  static constexpr int kReady = 1;
  static constexpr int kFailed = 2;

  Shape dims;
  int64_t chunk_offset = 0;
  /// Serializes compilation; predict threads that fail the try_lock
  /// serve from the graph instead of queueing behind the build.
  std::mutex build_mutex;
  std::atomic<int> state{kBuilding};
  /// Noise-config fingerprint the plan was compiled under; plans bake
  /// stochastic draws as constants, so a mismatch forces a rebuild.
  uint64_t fingerprint = 0;
  /// Guards plan, pool and fallback_reason.
  std::mutex pool_mutex;
  std::shared_ptr<const deploy::ExecutionPlan> plan;
  std::vector<std::unique_ptr<PlanPooled>> pool;
  std::string fallback_reason;
};

/// Compiled plans keyed by (input dims, chunk offset). Entries are
/// shared_ptrs so an in-flight execute outlives
/// invalidate_packed_weights() clearing the cache; a pooled context
/// records the plan it belongs to and is discarded on release if the
/// entry was rebuilt meanwhile.
struct InferenceSession::PlanCache {
  static constexpr size_t kMaxPlans = 8;
  using EntryPtr = std::shared_ptr<PlanCacheEntry>;

  std::shared_mutex mutex;
  std::vector<EntryPtr> entries;

  EntryPtr find(const Shape& dims, int64_t chunk_offset) {
    std::shared_lock<std::shared_mutex> lock(mutex);
    for (const EntryPtr& e : entries)
      if (e->chunk_offset == chunk_offset && e->dims == dims) return e;
    return nullptr;
  }

  /// nullptr when the cache is full of other keys — those shapes serve
  /// from the graph path permanently rather than thrash compilations.
  EntryPtr find_or_create(const Shape& dims, int64_t chunk_offset) {
    if (EntryPtr e = find(dims, chunk_offset)) return e;
    std::unique_lock<std::shared_mutex> lock(mutex);
    for (const EntryPtr& e : entries)
      if (e->chunk_offset == chunk_offset && e->dims == dims) return e;
    if (entries.size() >= kMaxPlans) return nullptr;
    EntryPtr e = std::make_shared<PlanCacheEntry>();
    e->dims = dims;
    e->chunk_offset = chunk_offset;
    entries.push_back(e);
    return e;
  }

  void clear() {
    std::unique_lock<std::shared_mutex> lock(mutex);
    entries.clear();
  }
};

const char* task_kind_name(TaskKind kind) {
  switch (kind) {
    case TaskKind::kClassification:
      return "classification";
    case TaskKind::kRegression:
      return "regression";
    case TaskKind::kSegmentation:
      return "segmentation";
  }
  return "unknown";
}

InferenceSession::InferenceSession(std::unique_ptr<models::TaskModel> model,
                                   SessionOptions options,
                                   std::unique_ptr<deploy::ExecutionBackend>
                                       backend,
                                   deploy::Backend backend_kind)
    : InferenceSession(*model, options) {
  owned_model_ = std::move(model);
  backend_ = std::move(backend);
  backend_kind_ = backend_kind;
}

InferenceSession::InferenceSession(models::TaskModel& model,
                                   SessionOptions options)
    : model_(model), options_(options) {
  RIPPLE_CHECK(options_.mc_samples >= 1)
      << "InferenceSession needs mc_samples >= 1";
  RIPPLE_CHECK(options_.max_batch >= 1)
      << "InferenceSession needs max_batch >= 1";
  samples_ = options_.clamp_samples
                 ? models::mc_samples_for(model_.variant(), options_.mc_samples)
                 : options_.mc_samples;
  policy_ = options_.policy == ExecutionPolicy::kAuto
                ? ExecutionPolicy::kBatched
                : options_.policy;
  chunk_rows_ = std::max<int64_t>(1, options_.max_batch / samples_);

  // Freeze the model's serving state: eval statistics, MC sampling on, and
  // one mask-stream slot per stochastic layer (inverted norms first — their
  // slot must equal their inverted_norm_layers() index so the session
  // reproduces the streams the legacy helpers seeded).
  model_.set_training(false);
  model_.set_mc_mode(true);
  inverted_ = model_.inverted_norm_layers();
  dropouts_ = model_.dropout_layers();
  spatial_ = model_.spatial_dropout_layers();
  int slot = 0;
  for (auto* l : inverted_) l->set_stream_slot(slot++);
  for (auto* l : dropouts_) l->set_stream_slot(slot++);
  for (auto* l : spatial_) l->set_stream_slot(slot++);
  // The activation-noise hook gets the last slot: noisy passes then draw
  // from the per-request stream context instead of the shared generator,
  // so they serve concurrently and deterministically like everything else.
  if (model_.noise() != nullptr) model_.noise()->stream_slot = slot++;
  stream_slots_ = static_cast<size_t>(slot);
  plans_ = std::make_unique<PlanCache>();
}

InferenceSession::~InferenceSession() {
  for (auto* l : inverted_) l->set_stream_slot(-1);
  for (auto* l : dropouts_) l->set_stream_slot(-1);
  for (auto* l : spatial_) l->set_stream_slot(-1);
  if (model_.noise() != nullptr) model_.noise()->stream_slot = -1;
  model_.set_mc_mode(false);
}

Tensor InferenceSession::forward_cached(const Tensor& x) const {
  // Route this pass's dense compute (linear / lowered conv) through the
  // session's execution backend, if one is installed (kCrossbar). The
  // backend shares the pack cache's record→freeze lifecycle below.
  deploy::ExecBackendScope backend_scope(backend_.get());
  // Weight packs are only cacheable once the model is deployed: before
  // deploy(), weight transforms (binarization / fake quantization) emit a
  // freshly allocated tensor per forward, so a pointer key could alias a
  // dead allocation. Deployed models hand stable parameter storage to the
  // GEMM, which is exactly what the cache keys on.
  if (!model_.deployed()) return model_.predict(x);
  {
    // Fast path: frozen cache, shared lock — concurrent with every other
    // predict, excluded only against invalidate/warm-up which hold the
    // lock exclusively (so clear() can never race an in-flight lookup).
    std::shared_lock<std::shared_mutex> lock(cache_mutex_);
    if (pack_cache_.frozen()) {
      PackCacheScope cache_scope(&pack_cache_);
      return model_.predict(x);
    }
  }
  // Warm-up: one pass records every conv weight packing, then the cache
  // freezes and later calls take the shared path above. Threads that lost
  // the warm-up race find the cache frozen once they get the lock and drop
  // back to the concurrent path instead of serializing their forwards.
  std::unique_lock<std::shared_mutex> lock(cache_mutex_);
  if (pack_cache_.frozen()) {
    lock.unlock();
    std::shared_lock<std::shared_mutex> shared(cache_mutex_);
    PackCacheScope cache_scope(&pack_cache_);
    return model_.predict(x);
  }
  PackCacheScope cache_scope(&pack_cache_);
  Tensor y = model_.predict(x);
  pack_cache_.freeze();
  if (backend_ != nullptr) backend_->freeze();
  return y;
}

double InferenceSession::modeled_analog_us_per_row() const {
  return backend_ != nullptr ? backend_->modeled_analog_us_per_row() : 0.0;
}

void InferenceSession::invalidate_packed_weights() const {
  // Plans bake weight-derived constants (folded steps, fused epilogues),
  // so in-place weight mutation invalidates them with the packed panels.
  // In-flight executes keep their entry alive via shared_ptr and finish on
  // the old weights — the same torn-read caveat as the graph path.
  plans_->clear();
  std::unique_lock<std::shared_mutex> lock(cache_mutex_);
  pack_cache_.clear();
  // The backend's per-layer state (programmed crossbars) is keyed the same
  // way and goes just as stale on in-place mutation: re-record it too.
  if (backend_ != nullptr) backend_->invalidate();
}

Tensor InferenceSession::run_chunk(const Tensor& xc,
                                   int64_t chunk_offset) const {
  const int64_t t = samples_;
  if (policy_ == ExecutionPolicy::kSerial && t > 1) {
    core::McStreamContext ctx(options_.seed, /*replicas=*/1,
                              /*replica_offset=*/0, stream_slots_);
    ctx.set_chunk_offset(chunk_offset);
    Tensor stacked;
    int64_t block = 0;
    for (int64_t r = 0; r < t; ++r) {
      ctx.rewind(r);
      core::McStreamScope scope(ctx);
      Tensor y = forward_cached(xc);
      if (!stacked.defined()) {
        Shape shape = y.shape();
        shape[0] *= t;
        stacked = Tensor::empty(shape);
        block = y.numel();
      }
      std::memcpy(stacked.data() + r * block, y.data(),
                  sizeof(float) * static_cast<size_t>(block));
    }
    return stacked;
  }
  // Per-chunk execute spans attach to the request being traced on this
  // thread (serve/trace.h): detail 1 = served from a compiled plan, 0 =
  // graph path. Tracing off costs one thread-local read per chunk.
  trace::TraceData* req = trace::active_request();
  if (options_.compile && model_.deployed()) {
    Tensor out;
    if (req != nullptr) {
      const auto exec_start = std::chrono::steady_clock::now();
      if (run_chunk_planned(xc, chunk_offset, &out)) {
        trace::Tracer::instance().record_span(
            req, trace::Stage::kExecute, exec_start,
            std::chrono::steady_clock::now(), /*detail=*/1);
        return out;
      }
    } else if (run_chunk_planned(xc, chunk_offset, &out)) {
      return out;
    }
  }
  if (req != nullptr) {
    const auto exec_start = std::chrono::steady_clock::now();
    Tensor y = run_chunk_graph(xc, chunk_offset);
    trace::Tracer::instance().record_span(req, trace::Stage::kExecute,
                                          exec_start,
                                          std::chrono::steady_clock::now(),
                                          /*detail=*/0);
    return y;
  }
  return run_chunk_graph(xc, chunk_offset);
}

Tensor InferenceSession::run_chunk_graph(const Tensor& xc,
                                         int64_t chunk_offset) const {
  const int64_t t = samples_;
  core::McStreamContext ctx(options_.seed, t, /*replica_offset=*/0,
                            stream_slots_);
  ctx.set_chunk_offset(chunk_offset);
  core::McStreamScope scope(ctx);
  if (deploy::TraceRecorder* tr = deploy::active_trace()) {
    // Tracing records the eager stacked-input graph; the plan compiler
    // performs its own stem-rows reduction (mark_replication).
    Tensor stacked =
        t > 1 ? fault::replicate_batch(xc, static_cast<int>(t)) : xc;
    tr->set_input(stacked);
    return forward_cached(stacked);
  }
  if (t > 1) {
    // Lazy stem replication: enter the model at the unreplicated n rows —
    // the deterministic stem computes each distinct row once instead of T
    // times; the first stochastic consumer expands to T·n rows
    // (core/lazy_stem.h). Bit-identical to eager replication because stem
    // tensors are replica-uniform by construction.
    ctx.set_lazy_stem_rows(xc.dim(0));
    Tensor y = forward_cached(xc);
    if (y.dim(0) == xc.dim(0)) {
      // Fully deterministic pass: no consumer replicated, so the T
      // replicas are the stem output verbatim.
      return fault::replicate_batch(y, static_cast<int>(t));
    }
    return y;
  }
  return forward_cached(xc);
}

uint64_t InferenceSession::noise_fingerprint() const {
  const nn::ActivationNoiseConfig* cfg = model_.noise().get();
  if (cfg == nullptr || !cfg->enabled) return 1;
  const auto mix = [](uint64_t h, uint64_t v) {
    return (h ^ (v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2)));
  };
  const auto bits = [](float f) {
    uint32_t u = 0;
    std::memcpy(&u, &f, sizeof(u));
    return static_cast<uint64_t>(u);
  };
  uint64_t h = 2;
  h = mix(h, bits(cfg->additive_std));
  h = mix(h, bits(cfg->multiplicative_std));
  h = mix(h, bits(cfg->uniform_range));
  h = mix(h, static_cast<uint64_t>(cfg->stream_slot));
  h = mix(h, cfg->stream_salt);
  return h;
}

namespace {

/// Acquires a pooled context for `plan`, making a fresh one when the pool
/// is dry (transient: only while concurrency exceeds the pool size).
std::unique_ptr<PlanPooled> acquire_pooled(
    PlanCacheEntry& e,
    const std::shared_ptr<const deploy::ExecutionPlan>& plan) {
  std::unique_ptr<PlanPooled> pooled;
  {
    std::lock_guard<std::mutex> lg(e.pool_mutex);
    if (!e.pool.empty()) {
      pooled = std::move(e.pool.back());
      e.pool.pop_back();
    }
  }
  if (pooled == nullptr) {
    pooled = std::make_unique<PlanPooled>();
    pooled->ctx = plan->make_context();
    pooled->plan = plan.get();
  }
  return pooled;
}

void release_pooled(PlanCacheEntry& e, std::unique_ptr<PlanPooled> pooled) {
  std::lock_guard<std::mutex> lg(e.pool_mutex);
  // Discard contexts from a plan the entry has since been rebuilt away
  // from; their arenas are sized for the old plan.
  if (pooled->plan == e.plan.get()) e.pool.push_back(std::move(pooled));
}

}  // namespace

bool InferenceSession::run_chunk_planned(const Tensor& xc,
                                         int64_t chunk_offset,
                                         Tensor* out) const {
  PlanCache::EntryPtr e = plans_->find_or_create(xc.shape(), chunk_offset);
  if (e == nullptr) return false;
  const uint64_t fp = noise_fingerprint();

  const auto execute = [&]() -> bool {
    std::shared_ptr<const deploy::ExecutionPlan> plan;
    {
      std::lock_guard<std::mutex> lg(e->pool_mutex);
      plan = e->plan;
    }
    if (plan == nullptr) return false;
    auto pooled = acquire_pooled(*e, plan);
    bool ok = false;
    {
      deploy::ExecBackendScope backend_scope(backend_.get());
      std::shared_lock<std::shared_mutex> lock(cache_mutex_);
      // Invalidated mid-flight: the graph path re-warms the cache first.
      if (pack_cache_.frozen()) {
        PackCacheScope cache_scope(&pack_cache_);
        *out = plan->execute(xc, *pooled->ctx).clone();
        ok = true;
      }
    }
    release_pooled(*e, std::move(pooled));
    return ok;
  };

  int st = e->state.load(std::memory_order_acquire);
  if (st == PlanCacheEntry::kReady && e->fingerprint == fp) return execute();
  if (st == PlanCacheEntry::kFailed && e->fingerprint == fp) return false;

  // Unbuilt, or compiled under a different noise config: (re)compile.
  // Only one thread builds; the rest serve this request from the graph.
  std::unique_lock<std::mutex> build(e->build_mutex, std::try_to_lock);
  if (!build.owns_lock()) return false;
  st = e->state.load(std::memory_order_acquire);
  if (!(st != PlanCacheEntry::kBuilding && e->fingerprint == fp))
    compile_entry(*e, xc, chunk_offset, fp);
  build.unlock();
  if (e->state.load(std::memory_order_acquire) == PlanCacheEntry::kReady &&
      e->fingerprint == fp)
    return execute();
  return false;
}

void InferenceSession::compile_entry(PlanCacheEntry& e, const Tensor& xc,
                                     int64_t chunk_offset,
                                     uint64_t fingerprint) const {
  const auto fail = [&](std::string why) {
    std::lock_guard<std::mutex> lg(e.pool_mutex);
    e.plan.reset();
    e.pool.clear();
    e.fallback_reason = std::move(why);
    e.fingerprint = fingerprint;
    e.state.store(PlanCacheEntry::kFailed, std::memory_order_release);
  };

  // Trace one graph forward inside the exact serving environment. The
  // recorder retains every tensor, so operand identity is unambiguous.
  deploy::TraceRecorder rec;
  Tensor traced;
  {
    deploy::TraceScope scope(rec);
    traced = run_chunk_graph(xc, chunk_offset);
  }
  if (rec.aborted()) return fail("trace aborted: " + rec.abort_reason());
  if (!rec.input().defined()) return fail("trace captured no input");

  std::string err;
  std::shared_ptr<const deploy::ExecutionPlan> plan = deploy::compile_trace(
      std::move(rec.steps()), rec.input(), samples_, &err);
  if (plan == nullptr) return fail(err);

  // Verify bit-exactness against the graph oracle before installing: on
  // the traced input, and on a perturbed input through a fresh graph run
  // (catches any input-dependent value wrongly baked as a constant).
  std::unique_ptr<deploy::PlanContext> ctx = plan->make_context();
  const auto run_plan = [&](const Tensor& x) -> Tensor {
    deploy::ExecBackendScope backend_scope(backend_.get());
    std::shared_lock<std::shared_mutex> lock(cache_mutex_);
    if (!pack_cache_.frozen()) return Tensor();
    PackCacheScope cache_scope(&pack_cache_);
    return plan->execute(x, *ctx).clone();
  };
  const auto bit_equal = [](const Tensor& a, const Tensor& b) {
    return a.defined() && b.defined() && a.numel() == b.numel() &&
           std::memcmp(a.data(), b.data(),
                       sizeof(float) * static_cast<size_t>(a.numel())) == 0;
  };
  if (!bit_equal(run_plan(xc), traced))
    return fail("verification failed: plan diverges from graph on traced "
                "input");
  Tensor xp = xc.clone();
  float* pp = xp.data();
  for (int64_t i = 0; i < xp.numel(); ++i)
    pp[i] += 0.0078125f * static_cast<float>(1 + (i % 5));
  if (!bit_equal(run_plan(xp), run_chunk_graph(xp, chunk_offset)))
    return fail("verification failed: plan diverges from graph on perturbed "
                "input");

  std::lock_guard<std::mutex> lg(e.pool_mutex);
  e.plan = std::move(plan);
  e.pool.clear();
  auto pooled = std::make_unique<PlanPooled>();
  pooled->ctx = std::move(ctx);
  pooled->plan = e.plan.get();
  e.pool.push_back(std::move(pooled));
  e.fallback_reason.clear();
  e.fingerprint = fingerprint;
  e.state.store(PlanCacheEntry::kReady, std::memory_order_release);
}

Tensor InferenceSession::mc_outputs(const Tensor& x) const {
  RIPPLE_CHECK(x.rank() >= 1 && x.dim(0) >= 1)
      << "predict needs a batched input, got shape "
      << shape_to_string(x.shape());
  const int64_t n = x.dim(0);
  const int64_t t = samples_;
  requests_.fetch_add(1, std::memory_order_relaxed);
  rows_.fetch_add(static_cast<uint64_t>(n), std::memory_order_relaxed);
  if (n <= chunk_rows_) return run_chunk(x, /*chunk_offset=*/0);

  // Split oversized requests into chunks and reassemble replica-major.
  // For the proposed variant this is indistinguishable from one giant pass
  // (its affine masks derive from (seed, slot, invocation) and are
  // row-independent); row-dependent MC-Dropout masks fold the chunk offset
  // into their sub-streams instead, so chunks draw fresh — never repeated —
  // masks and the result is a different but equally valid MC draw.
  Tensor out;
  int64_t row_numel = 0;
  for (int64_t c0 = 0; c0 < n; c0 += chunk_rows_) {
    const int64_t cn = std::min(chunk_rows_, n - c0);
    Tensor yc = run_chunk(data::slice_rows(x, c0, cn), /*chunk_offset=*/c0);
    if (!out.defined()) {
      Shape shape = yc.shape();
      shape[0] = t * n;
      out = Tensor::empty(shape);
      row_numel = yc.numel() / (t * cn);
    }
    for (int64_t r = 0; r < t; ++r)
      std::memcpy(out.data() + (r * n + c0) * row_numel,
                  yc.data() + r * cn * row_numel,
                  sizeof(float) * static_cast<size_t>(cn * row_numel));
  }
  return out;
}

Classification InferenceSession::aggregate_classification(
    const Tensor& stacked, int64_t /*n*/) const {
  RIPPLE_CHECK(stacked.rank() == 2)
      << "classification expects [N,C] logits, model returned "
      << shape_to_string(stacked.shape());
  Tensor probs = ops::softmax_rows(stacked);
  fault::ReplicaMoments moments =
      fault::replica_moments(probs, static_cast<int>(samples_));
  Classification out;
  out.samples = samples_;
  out.mean_probs = std::move(moments.mean);
  out.variance = std::move(moments.variance);
  out.entropy = entropy_tensor(out.mean_probs);
  out.predictions = ops::argmax_rows(out.mean_probs);
  return out;
}

Regression InferenceSession::aggregate_regression(const Tensor& stacked) const {
  fault::ReplicaMoments moments =
      fault::replica_moments(stacked, static_cast<int>(samples_));
  Regression out;
  out.samples = samples_;
  out.mean = std::move(moments.mean);
  out.stddev = ops::map(moments.variance,
                        [](float v) { return v > 0.0f ? std::sqrt(v) : 0.0f; });
  return out;
}

Segmentation InferenceSession::aggregate_segmentation(
    const Tensor& stacked) const {
  Tensor probs = ops::map(
      stacked, [](float v) { return 1.0f / (1.0f + std::exp(-v)); });
  Segmentation out;
  out.samples = samples_;
  out.mean_probs = fault::replica_mean(probs, static_cast<int>(samples_));
  return out;
}

void InferenceSession::aggregate_classification_into(const Tensor& stacked,
                                                     Tensor& scratch,
                                                     Classification& out)
    const {
  RIPPLE_CHECK(stacked.rank() == 2)
      << "classification expects [N,C] logits, model returned "
      << shape_to_string(stacked.shape());
  const int64_t tn = stacked.dim(0);
  const int64_t c = stacked.dim(1);
  const int64_t t = samples_;
  const int64_t n = tn / t;
  // Softmax into the staging buffer — same loop as ops::softmax_rows.
  ensure_like(scratch, stacked, tn);
  {
    const float* pl = stacked.data();
    float* po = scratch.data();
    for (int64_t i = 0; i < tn; ++i) {
      const float* row = pl + i * c;
      float* orow = po + i * c;
      const float mx = *std::max_element(row, row + c);
      double denom = 0.0;
      for (int64_t j = 0; j < c; ++j) {
        orow[j] = std::exp(row[j] - mx);
        denom += orow[j];
      }
      for (int64_t j = 0; j < c; ++j)
        orow[j] = static_cast<float>(orow[j] / denom);
    }
  }
  // Across-replica moments — same accumulation as fault::replica_moments.
  ensure_like(out.mean_probs, stacked, n);
  ensure_like(out.variance, stacked, n);
  const int64_t block = out.mean_probs.numel();
  float* pm = out.mean_probs.data();
  float* pv = out.variance.data();
  std::memset(pm, 0, sizeof(float) * static_cast<size_t>(block));
  std::memset(pv, 0, sizeof(float) * static_cast<size_t>(block));
  const float* ps = scratch.data();
  for (int64_t r = 0; r < t; ++r) {
    const float* src = ps + r * block;
    for (int64_t i = 0; i < block; ++i) {
      pm[i] += src[i];
      pv[i] += src[i] * src[i];
    }
  }
  const float inv = 1.0f / static_cast<float>(t);
  for (int64_t i = 0; i < block; ++i) {
    pm[i] *= inv;
    const float var = pv[i] * inv - pm[i] * pm[i];
    pv[i] = var > 0.0f ? var : 0.0f;
  }
  if (!out.entropy.defined() || out.entropy.rank() != 1 ||
      out.entropy.dim(0) != n)
    out.entropy = Tensor::empty({n});
  core::per_sample_entropy_into(out.mean_probs, out.entropy.data());
  out.predictions.resize(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    const float* row = pm + i * c;
    out.predictions[static_cast<size_t>(i)] =
        std::max_element(row, row + c) - row;
  }
  out.samples = static_cast<int>(t);
}

void InferenceSession::aggregate_regression_into(const Tensor& stacked,
                                                 Regression& out) const {
  const int64_t t = samples_;
  const int64_t rows = stacked.dim(0) / t;
  ensure_like(out.mean, stacked, rows);
  ensure_like(out.stddev, stacked, rows);
  const int64_t block = out.mean.numel();
  float* pm = out.mean.data();
  float* pv = out.stddev.data();
  std::memset(pm, 0, sizeof(float) * static_cast<size_t>(block));
  std::memset(pv, 0, sizeof(float) * static_cast<size_t>(block));
  const float* ps = stacked.data();
  for (int64_t r = 0; r < t; ++r) {
    const float* src = ps + r * block;
    for (int64_t i = 0; i < block; ++i) {
      pm[i] += src[i];
      pv[i] += src[i] * src[i];
    }
  }
  const float inv = 1.0f / static_cast<float>(t);
  for (int64_t i = 0; i < block; ++i) {
    pm[i] *= inv;
    const float var = pv[i] * inv - pm[i] * pm[i];
    pv[i] = var > 0.0f ? std::sqrt(var) : 0.0f;
  }
  out.samples = static_cast<int>(t);
}

void InferenceSession::aggregate_segmentation_into(const Tensor& stacked,
                                                   Tensor& scratch,
                                                   Segmentation& out) const {
  const int64_t t = samples_;
  ensure_like(scratch, stacked, stacked.dim(0));
  {
    const float* pl = stacked.data();
    float* po = scratch.data();
    const int64_t total = stacked.numel();
    for (int64_t i = 0; i < total; ++i)
      po[i] = 1.0f / (1.0f + std::exp(-pl[i]));
  }
  ensure_like(out.mean_probs, stacked, stacked.dim(0) / t);
  const int64_t block = out.mean_probs.numel();
  float* pm = out.mean_probs.data();
  std::memset(pm, 0, sizeof(float) * static_cast<size_t>(block));
  const float* ps = scratch.data();
  for (int64_t r = 0; r < t; ++r) {
    const float* src = ps + r * block;
    for (int64_t i = 0; i < block; ++i) pm[i] += src[i];
  }
  const float inv = 1.0f / static_cast<float>(t);
  for (int64_t i = 0; i < block; ++i) pm[i] *= inv;
  out.samples = static_cast<int>(t);
}

void InferenceSession::predict_into(const Tensor& x, Prediction& out) const {
  RIPPLE_CHECK(x.rank() >= 1 && x.dim(0) >= 1)
      << "predict needs a batched input, got shape "
      << shape_to_string(x.shape());
  const int64_t n = x.dim(0);
  if (options_.compile && model_.deployed() && n <= chunk_rows_ &&
      !(policy_ == ExecutionPolicy::kSerial && samples_ > 1)) {
    PlanCache::EntryPtr e = plans_->find(x.shape(), /*chunk_offset=*/0);
    if (e != nullptr &&
        e->state.load(std::memory_order_acquire) == PlanCacheEntry::kReady &&
        e->fingerprint == noise_fingerprint()) {
      std::shared_ptr<const deploy::ExecutionPlan> plan;
      {
        std::lock_guard<std::mutex> lg(e->pool_mutex);
        plan = e->plan;
      }
      if (plan != nullptr) {
        // Traced requests get a per-request execute span (detail 1 = plan
        // path); untraced steady state pays one thread-local read.
        trace::TraceData* req = trace::active_request();
        std::chrono::steady_clock::time_point exec_start;
        if (req != nullptr) exec_start = std::chrono::steady_clock::now();
        auto pooled = acquire_pooled(*e, plan);
        bool served = false;
        {
          deploy::ExecBackendScope backend_scope(backend_.get());
          std::shared_lock<std::shared_mutex> lock(cache_mutex_);
          if (pack_cache_.frozen()) {
            PackCacheScope cache_scope(&pack_cache_);
            const Tensor& stacked = plan->execute(x, *pooled->ctx);
            switch (options_.task) {
              case TaskKind::kClassification: {
                auto* c = std::get_if<Classification>(&out);
                if (c == nullptr) {
                  out = Classification{};
                  c = &std::get<Classification>(out);
                }
                aggregate_classification_into(stacked, pooled->scratch, *c);
                break;
              }
              case TaskKind::kRegression: {
                auto* r = std::get_if<Regression>(&out);
                if (r == nullptr) {
                  out = Regression{};
                  r = &std::get<Regression>(out);
                }
                aggregate_regression_into(stacked, *r);
                break;
              }
              case TaskKind::kSegmentation: {
                auto* s = std::get_if<Segmentation>(&out);
                if (s == nullptr) {
                  out = Segmentation{};
                  s = &std::get<Segmentation>(out);
                }
                aggregate_segmentation_into(stacked, pooled->scratch, *s);
                break;
              }
            }
            served = true;
          }
        }
        release_pooled(*e, std::move(pooled));
        if (served) {
          if (req != nullptr) {
            trace::Tracer::instance().record_span(
                req, trace::Stage::kExecute, exec_start,
                std::chrono::steady_clock::now(), /*detail=*/1);
          }
          requests_.fetch_add(1, std::memory_order_relaxed);
          rows_.fetch_add(static_cast<uint64_t>(n),
                          std::memory_order_relaxed);
          return;
        }
      }
    }
  }
  // No verified plan for this shape yet: the allocating path (which also
  // compiles one for next time).
  out = predict(x);
}

PlanInfo InferenceSession::plan_info(const Shape& input_shape,
                                     int64_t chunk_offset) const {
  PlanInfo info;
  PlanCache::EntryPtr e = plans_->find(input_shape, chunk_offset);
  if (e == nullptr) {
    if (!options_.compile)
      info.fallback_reason = "compilation disabled (SessionOptions::compile)";
    return info;
  }
  std::lock_guard<std::mutex> lg(e->pool_mutex);
  if (e->state.load(std::memory_order_acquire) == PlanCacheEntry::kReady &&
      e->plan != nullptr) {
    info.compiled = true;
    info.stats = e->plan->stats();
    info.op_profile = e->plan->op_profile();
  } else {
    info.fallback_reason = e->fallback_reason.empty()
                               ? "plan not compiled yet"
                               : e->fallback_reason;
  }
  return info;
}

std::vector<deploy::PlanOpProfile> InferenceSession::plan_op_profiles() const {
  // Aggregate by op tag across every ready plan: a session may hold one
  // plan per (shape, chunk offset) and the metrics view wants the total
  // time attributed to each fused op kind, not per-step rows.
  std::vector<deploy::PlanOpProfile> agg;
  std::shared_lock<std::shared_mutex> lock(plans_->mutex);
  for (const PlanCache::EntryPtr& e : plans_->entries) {
    std::lock_guard<std::mutex> lg(e->pool_mutex);
    if (e->state.load(std::memory_order_acquire) != PlanCacheEntry::kReady ||
        e->plan == nullptr) {
      continue;
    }
    for (const deploy::PlanOpProfile& op : e->plan->op_profile()) {
      if (op.calls == 0) continue;
      auto it = std::find_if(agg.begin(), agg.end(),
                             [&](const deploy::PlanOpProfile& a) {
                               return a.tag == op.tag;
                             });
      if (it == agg.end()) {
        deploy::PlanOpProfile row = op;
        row.step = -1;  // aggregated across steps and plans
        agg.push_back(row);
      } else {
        it->calls += op.calls;
        it->total_ns += op.total_ns;
      }
    }
  }
  return agg;
}

PlanInfo InferenceSession::precompile(const Shape& input_shape) const {
  RIPPLE_CHECK(!input_shape.empty() && input_shape[0] >= 1)
      << "precompile needs a batched input shape";
  PlanInfo info;
  if (!options_.compile) {
    info.fallback_reason = "compilation disabled (SessionOptions::compile)";
    return info;
  }
  if (policy_ == ExecutionPolicy::kSerial && samples_ > 1) {
    info.fallback_reason = "serial execution policy serves from the graph";
    return info;
  }
  if (!model_.deployed()) {
    info.fallback_reason = "model not deployed (unstable weight storage)";
    return info;
  }
  RIPPLE_CHECK(input_shape[0] <= chunk_rows_)
      << "precompile batch " << input_shape[0] << " exceeds the chunk size "
      << chunk_rows_ << "; requests that large are split into chunks";
  // Deterministic non-degenerate ramp input: compilation verifies the plan
  // on this input and a perturbation of it before installing.
  Tensor x = Tensor::empty(input_shape);
  float* p = x.data();
  for (int64_t i = 0; i < x.numel(); ++i)
    p[i] = 0.0625f * static_cast<float>((i % 23) - 11);
  (void)run_chunk(x, /*chunk_offset=*/0);
  return plan_info(input_shape, /*chunk_offset=*/0);
}

Classification InferenceSession::classify(const Tensor& x) const {
  RIPPLE_CHECK(options_.task == TaskKind::kClassification)
      << "classify() on a " << task_kind_name(options_.task) << " session";
  return aggregate_classification(mc_outputs(x), x.dim(0));
}

Regression InferenceSession::regress(const Tensor& x) const {
  RIPPLE_CHECK(options_.task == TaskKind::kRegression)
      << "regress() on a " << task_kind_name(options_.task) << " session";
  return aggregate_regression(mc_outputs(x));
}

Segmentation InferenceSession::segment(const Tensor& x) const {
  RIPPLE_CHECK(options_.task == TaskKind::kSegmentation)
      << "segment() on a " << task_kind_name(options_.task) << " session";
  return aggregate_segmentation(mc_outputs(x));
}

Prediction InferenceSession::predict(const Tensor& x) const {
  switch (options_.task) {
    case TaskKind::kClassification:
      return classify(x);
    case TaskKind::kRegression:
      return regress(x);
    case TaskKind::kSegmentation:
      return segment(x);
  }
  RIPPLE_CHECK(false) << "unknown task kind";
  return Prediction{};
}

namespace {

/// Per-request views of one aggregated result (rows [begin, begin+count)).
Prediction slice_prediction(const Prediction& agg, int64_t begin,
                            int64_t count) {
  if (const auto* c = std::get_if<Classification>(&agg)) {
    Classification out;
    out.samples = c->samples;
    out.mean_probs = data::slice_rows(c->mean_probs, begin, count);
    out.variance = data::slice_rows(c->variance, begin, count);
    out.entropy = data::slice_rows(c->entropy, begin, count);
    out.predictions.assign(c->predictions.begin() + begin,
                           c->predictions.begin() + begin + count);
    return out;
  }
  if (const auto* r = std::get_if<Regression>(&agg)) {
    Regression out;
    out.samples = r->samples;
    out.mean = data::slice_rows(r->mean, begin, count);
    out.stddev = data::slice_rows(r->stddev, begin, count);
    return out;
  }
  const auto& s = std::get<Segmentation>(agg);
  Segmentation out;
  out.samples = s.samples;
  out.mean_probs = data::slice_rows(s.mean_probs, begin, count);
  return out;
}

}  // namespace

std::vector<Prediction> InferenceSession::predict_many(
    const std::vector<Tensor>& requests) const {
  std::vector<Prediction> out;
  if (requests.empty()) return out;
  if (requests.size() == 1) {
    out.push_back(predict(requests.front()));
    return out;
  }

  // Coalesce: all requests must share the per-row shape.
  const Shape& ref = requests.front().shape();
  int64_t total = 0;
  for (const Tensor& r : requests) {
    RIPPLE_CHECK(r.rank() == requests.front().rank() && r.dim(0) >= 1)
        << "predict_many: request shape " << shape_to_string(r.shape())
        << " incompatible with " << shape_to_string(ref);
    for (int d = 1; d < r.rank(); ++d)
      RIPPLE_CHECK(r.dim(d) == ref[static_cast<size_t>(d)])
          << "predict_many: request shape " << shape_to_string(r.shape())
          << " incompatible with " << shape_to_string(ref);
    total += r.dim(0);
  }
  Shape shape = ref;
  shape[0] = total;
  Tensor all = Tensor::empty(shape);
  int64_t row = 1;
  for (size_t d = 1; d < ref.size(); ++d) row *= ref[d];
  int64_t at = 0;
  for (const Tensor& r : requests) {
    std::memcpy(all.data() + at * row, r.data(),
                sizeof(float) * static_cast<size_t>(r.numel()));
    at += r.dim(0);
  }

  // One aggregated pass (mc_outputs counts it as one request; credit the
  // coalesced ones), then split back per request.
  requests_.fetch_add(requests.size() - 1, std::memory_order_relaxed);
  const Prediction agg = predict(all);
  int64_t begin = 0;
  out.reserve(requests.size());
  for (const Tensor& r : requests) {
    out.push_back(slice_prediction(agg, begin, r.dim(0)));
    begin += r.dim(0);
  }
  return out;
}

}  // namespace ripple::serve
