#include "serve/session.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "core/inverted_norm.h"
#include "core/mc_stream.h"
#include "core/uncertainty.h"
#include "data/dataset.h"
#include "deploy/exec_backend.h"
#include "fault/mc_batch.h"
#include "models/variants.h"
#include "nn/dropout.h"
#include "tensor/ops.h"

namespace ripple::serve {

namespace {

Tensor entropy_tensor(const Tensor& mean_probs) {
  const std::vector<double> h = core::per_sample_entropy(mean_probs);
  Tensor out = Tensor::empty({static_cast<int64_t>(h.size())});
  for (size_t i = 0; i < h.size(); ++i)
    out.data()[i] = static_cast<float>(h[i]);
  return out;
}

}  // namespace

const char* task_kind_name(TaskKind kind) {
  switch (kind) {
    case TaskKind::kClassification:
      return "classification";
    case TaskKind::kRegression:
      return "regression";
    case TaskKind::kSegmentation:
      return "segmentation";
  }
  return "unknown";
}

InferenceSession::InferenceSession(std::unique_ptr<models::TaskModel> model,
                                   SessionOptions options,
                                   std::unique_ptr<deploy::ExecutionBackend>
                                       backend,
                                   deploy::Backend backend_kind)
    : InferenceSession(*model, options) {
  owned_model_ = std::move(model);
  backend_ = std::move(backend);
  backend_kind_ = backend_kind;
}

InferenceSession::InferenceSession(models::TaskModel& model,
                                   SessionOptions options)
    : model_(model), options_(options) {
  RIPPLE_CHECK(options_.mc_samples >= 1)
      << "InferenceSession needs mc_samples >= 1";
  RIPPLE_CHECK(options_.max_batch >= 1)
      << "InferenceSession needs max_batch >= 1";
  samples_ = options_.clamp_samples
                 ? models::mc_samples_for(model_.variant(), options_.mc_samples)
                 : options_.mc_samples;
  policy_ = options_.policy == ExecutionPolicy::kAuto
                ? ExecutionPolicy::kBatched
                : options_.policy;
  chunk_rows_ = std::max<int64_t>(1, options_.max_batch / samples_);

  // Freeze the model's serving state: eval statistics, MC sampling on, and
  // one mask-stream slot per stochastic layer (inverted norms first — their
  // slot must equal their inverted_norm_layers() index so the session
  // reproduces the streams the legacy helpers seeded).
  model_.set_training(false);
  model_.set_mc_mode(true);
  inverted_ = model_.inverted_norm_layers();
  dropouts_ = model_.dropout_layers();
  spatial_ = model_.spatial_dropout_layers();
  int slot = 0;
  for (auto* l : inverted_) l->set_stream_slot(slot++);
  for (auto* l : dropouts_) l->set_stream_slot(slot++);
  for (auto* l : spatial_) l->set_stream_slot(slot++);
  // The activation-noise hook gets the last slot: noisy passes then draw
  // from the per-request stream context instead of the shared generator,
  // so they serve concurrently and deterministically like everything else.
  if (model_.noise() != nullptr) model_.noise()->stream_slot = slot++;
  stream_slots_ = static_cast<size_t>(slot);
}

InferenceSession::~InferenceSession() {
  for (auto* l : inverted_) l->set_stream_slot(-1);
  for (auto* l : dropouts_) l->set_stream_slot(-1);
  for (auto* l : spatial_) l->set_stream_slot(-1);
  if (model_.noise() != nullptr) model_.noise()->stream_slot = -1;
  model_.set_mc_mode(false);
}

Tensor InferenceSession::forward_cached(const Tensor& x) const {
  // Route this pass's dense compute (linear / lowered conv) through the
  // session's execution backend, if one is installed (kCrossbar). The
  // backend shares the pack cache's record→freeze lifecycle below.
  deploy::ExecBackendScope backend_scope(backend_.get());
  // Weight packs are only cacheable once the model is deployed: before
  // deploy(), weight transforms (binarization / fake quantization) emit a
  // freshly allocated tensor per forward, so a pointer key could alias a
  // dead allocation. Deployed models hand stable parameter storage to the
  // GEMM, which is exactly what the cache keys on.
  if (!model_.deployed()) return model_.predict(x);
  {
    // Fast path: frozen cache, shared lock — concurrent with every other
    // predict, excluded only against invalidate/warm-up which hold the
    // lock exclusively (so clear() can never race an in-flight lookup).
    std::shared_lock<std::shared_mutex> lock(cache_mutex_);
    if (pack_cache_.frozen()) {
      PackCacheScope cache_scope(&pack_cache_);
      return model_.predict(x);
    }
  }
  // Warm-up: one pass records every conv weight packing, then the cache
  // freezes and later calls take the shared path above. Threads that lost
  // the warm-up race find the cache frozen once they get the lock and drop
  // back to the concurrent path instead of serializing their forwards.
  std::unique_lock<std::shared_mutex> lock(cache_mutex_);
  if (pack_cache_.frozen()) {
    lock.unlock();
    std::shared_lock<std::shared_mutex> shared(cache_mutex_);
    PackCacheScope cache_scope(&pack_cache_);
    return model_.predict(x);
  }
  PackCacheScope cache_scope(&pack_cache_);
  Tensor y = model_.predict(x);
  pack_cache_.freeze();
  if (backend_ != nullptr) backend_->freeze();
  return y;
}

double InferenceSession::modeled_analog_us_per_row() const {
  return backend_ != nullptr ? backend_->modeled_analog_us_per_row() : 0.0;
}

void InferenceSession::invalidate_packed_weights() const {
  std::unique_lock<std::shared_mutex> lock(cache_mutex_);
  pack_cache_.clear();
  // The backend's per-layer state (programmed crossbars) is keyed the same
  // way and goes just as stale on in-place mutation: re-record it too.
  if (backend_ != nullptr) backend_->invalidate();
}

Tensor InferenceSession::run_chunk(const Tensor& xc,
                                   int64_t chunk_offset) const {
  const int64_t t = samples_;
  if (policy_ == ExecutionPolicy::kSerial && t > 1) {
    core::McStreamContext ctx(options_.seed, /*replicas=*/1,
                              /*replica_offset=*/0, stream_slots_);
    ctx.set_chunk_offset(chunk_offset);
    Tensor stacked;
    int64_t block = 0;
    for (int64_t r = 0; r < t; ++r) {
      ctx.rewind(r);
      core::McStreamScope scope(ctx);
      Tensor y = forward_cached(xc);
      if (!stacked.defined()) {
        Shape shape = y.shape();
        shape[0] *= t;
        stacked = Tensor::empty(shape);
        block = y.numel();
      }
      std::memcpy(stacked.data() + r * block, y.data(),
                  sizeof(float) * static_cast<size_t>(block));
    }
    return stacked;
  }
  core::McStreamContext ctx(options_.seed, t, /*replica_offset=*/0,
                            stream_slots_);
  ctx.set_chunk_offset(chunk_offset);
  core::McStreamScope scope(ctx);
  return forward_cached(t > 1 ? fault::replicate_batch(xc, static_cast<int>(t))
                              : xc);
}

Tensor InferenceSession::mc_outputs(const Tensor& x) const {
  RIPPLE_CHECK(x.rank() >= 1 && x.dim(0) >= 1)
      << "predict needs a batched input, got shape "
      << shape_to_string(x.shape());
  const int64_t n = x.dim(0);
  const int64_t t = samples_;
  requests_.fetch_add(1, std::memory_order_relaxed);
  rows_.fetch_add(static_cast<uint64_t>(n), std::memory_order_relaxed);
  if (n <= chunk_rows_) return run_chunk(x, /*chunk_offset=*/0);

  // Split oversized requests into chunks and reassemble replica-major.
  // For the proposed variant this is indistinguishable from one giant pass
  // (its affine masks derive from (seed, slot, invocation) and are
  // row-independent); row-dependent MC-Dropout masks fold the chunk offset
  // into their sub-streams instead, so chunks draw fresh — never repeated —
  // masks and the result is a different but equally valid MC draw.
  Tensor out;
  int64_t row_numel = 0;
  for (int64_t c0 = 0; c0 < n; c0 += chunk_rows_) {
    const int64_t cn = std::min(chunk_rows_, n - c0);
    Tensor yc = run_chunk(data::slice_rows(x, c0, cn), /*chunk_offset=*/c0);
    if (!out.defined()) {
      Shape shape = yc.shape();
      shape[0] = t * n;
      out = Tensor::empty(shape);
      row_numel = yc.numel() / (t * cn);
    }
    for (int64_t r = 0; r < t; ++r)
      std::memcpy(out.data() + (r * n + c0) * row_numel,
                  yc.data() + r * cn * row_numel,
                  sizeof(float) * static_cast<size_t>(cn * row_numel));
  }
  return out;
}

Classification InferenceSession::aggregate_classification(
    const Tensor& stacked, int64_t /*n*/) const {
  RIPPLE_CHECK(stacked.rank() == 2)
      << "classification expects [N,C] logits, model returned "
      << shape_to_string(stacked.shape());
  Tensor probs = ops::softmax_rows(stacked);
  fault::ReplicaMoments moments =
      fault::replica_moments(probs, static_cast<int>(samples_));
  Classification out;
  out.samples = samples_;
  out.mean_probs = std::move(moments.mean);
  out.variance = std::move(moments.variance);
  out.entropy = entropy_tensor(out.mean_probs);
  out.predictions = ops::argmax_rows(out.mean_probs);
  return out;
}

Regression InferenceSession::aggregate_regression(const Tensor& stacked) const {
  fault::ReplicaMoments moments =
      fault::replica_moments(stacked, static_cast<int>(samples_));
  Regression out;
  out.samples = samples_;
  out.mean = std::move(moments.mean);
  out.stddev = ops::map(moments.variance,
                        [](float v) { return v > 0.0f ? std::sqrt(v) : 0.0f; });
  return out;
}

Segmentation InferenceSession::aggregate_segmentation(
    const Tensor& stacked) const {
  Tensor probs = ops::map(
      stacked, [](float v) { return 1.0f / (1.0f + std::exp(-v)); });
  Segmentation out;
  out.samples = samples_;
  out.mean_probs = fault::replica_mean(probs, static_cast<int>(samples_));
  return out;
}

Classification InferenceSession::classify(const Tensor& x) const {
  RIPPLE_CHECK(options_.task == TaskKind::kClassification)
      << "classify() on a " << task_kind_name(options_.task) << " session";
  return aggregate_classification(mc_outputs(x), x.dim(0));
}

Regression InferenceSession::regress(const Tensor& x) const {
  RIPPLE_CHECK(options_.task == TaskKind::kRegression)
      << "regress() on a " << task_kind_name(options_.task) << " session";
  return aggregate_regression(mc_outputs(x));
}

Segmentation InferenceSession::segment(const Tensor& x) const {
  RIPPLE_CHECK(options_.task == TaskKind::kSegmentation)
      << "segment() on a " << task_kind_name(options_.task) << " session";
  return aggregate_segmentation(mc_outputs(x));
}

Prediction InferenceSession::predict(const Tensor& x) const {
  switch (options_.task) {
    case TaskKind::kClassification:
      return classify(x);
    case TaskKind::kRegression:
      return regress(x);
    case TaskKind::kSegmentation:
      return segment(x);
  }
  RIPPLE_CHECK(false) << "unknown task kind";
  return Prediction{};
}

namespace {

/// Per-request views of one aggregated result (rows [begin, begin+count)).
Prediction slice_prediction(const Prediction& agg, int64_t begin,
                            int64_t count) {
  if (const auto* c = std::get_if<Classification>(&agg)) {
    Classification out;
    out.samples = c->samples;
    out.mean_probs = data::slice_rows(c->mean_probs, begin, count);
    out.variance = data::slice_rows(c->variance, begin, count);
    out.entropy = data::slice_rows(c->entropy, begin, count);
    out.predictions.assign(c->predictions.begin() + begin,
                           c->predictions.begin() + begin + count);
    return out;
  }
  if (const auto* r = std::get_if<Regression>(&agg)) {
    Regression out;
    out.samples = r->samples;
    out.mean = data::slice_rows(r->mean, begin, count);
    out.stddev = data::slice_rows(r->stddev, begin, count);
    return out;
  }
  const auto& s = std::get<Segmentation>(agg);
  Segmentation out;
  out.samples = s.samples;
  out.mean_probs = data::slice_rows(s.mean_probs, begin, count);
  return out;
}

}  // namespace

std::vector<Prediction> InferenceSession::predict_many(
    const std::vector<Tensor>& requests) const {
  std::vector<Prediction> out;
  if (requests.empty()) return out;
  if (requests.size() == 1) {
    out.push_back(predict(requests.front()));
    return out;
  }

  // Coalesce: all requests must share the per-row shape.
  const Shape& ref = requests.front().shape();
  int64_t total = 0;
  for (const Tensor& r : requests) {
    RIPPLE_CHECK(r.rank() == requests.front().rank() && r.dim(0) >= 1)
        << "predict_many: request shape " << shape_to_string(r.shape())
        << " incompatible with " << shape_to_string(ref);
    for (int d = 1; d < r.rank(); ++d)
      RIPPLE_CHECK(r.dim(d) == ref[static_cast<size_t>(d)])
          << "predict_many: request shape " << shape_to_string(r.shape())
          << " incompatible with " << shape_to_string(ref);
    total += r.dim(0);
  }
  Shape shape = ref;
  shape[0] = total;
  Tensor all = Tensor::empty(shape);
  int64_t row = 1;
  for (size_t d = 1; d < ref.size(); ++d) row *= ref[d];
  int64_t at = 0;
  for (const Tensor& r : requests) {
    std::memcpy(all.data() + at * row, r.data(),
                sizeof(float) * static_cast<size_t>(r.numel()));
    at += r.dim(0);
  }

  // One aggregated pass (mc_outputs counts it as one request; credit the
  // coalesced ones), then split back per request.
  requests_.fetch_add(requests.size() - 1, std::memory_order_relaxed);
  const Prediction agg = predict(all);
  int64_t begin = 0;
  out.reserve(requests.size());
  for (const Tensor& r : requests) {
    out.push_back(slice_prediction(agg, begin, r.dim(0)));
    begin += r.dim(0);
  }
  return out;
}

}  // namespace ripple::serve
