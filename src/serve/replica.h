// serve::Replica — one worker of the self-healing replica fleet.
//
// A Replica owns one InferenceSession (opened from the shared deployment
// artifact under its *own* seed/fault configuration — each replica is a
// differently-faulted chip instance, which is exactly what the paper's
// Monte-Carlo chip-evaluation loop wants spread across a fleet) plus the
// AsyncBatcher that coalesces the traffic routed to it. On top of serving,
// it carries the observable state the ClusterController's routing and
// self-healing read:
//
//   • load — controller-dispatched in-flight attempts plus the batcher's
//     queue depth, the signal power-of-two-choices routing compares;
//   • latency — per-replica EWMA and the batcher's log2 histogram
//     (p50/p95/p99 via serve/metrics.h);
//   • health — Healthy → Degraded → Quarantined, driven by runs of
//     consecutive failed attempts (HealthPolicy thresholds). Degraded
//     replicas still serve (deprioritized: routed only when no healthy
//     replica has capacity) and one success restores them; Quarantined
//     replicas receive no traffic and recover only through controller
//     probes — or through restart().
//
// restart() is the kill-and-respawn path: the batcher drains, the session
// is destroyed, and a fresh session is opened from the artifact under the
// same per-replica configuration. In-flight futures from before the
// restart still complete (drain semantics); the installed forward hook is
// re-installed on the new batcher so chaos harnesses keep their grip on a
// respawned replica.
//
// Thread safety: submit()/metrics()/the on_* feedback hooks may be called
// from any thread; restart() excludes submits for its duration (callers
// block briefly, then land on the fresh batcher).
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>

#include "deploy/deploy.h"
#include "serve/batcher.h"
#include "serve/metrics.h"
#include "serve/session.h"
#include "serve/status.h"

namespace ripple::serve {

enum class HealthState { kHealthy, kDegraded, kQuarantined };

const char* health_state_name(HealthState state);

/// Health transition thresholds, all in *consecutive* events — runs are
/// deterministic to test against and react faster than windowed rates at
/// serving volumes where a rate estimate would still be warming up.
struct HealthPolicy {
  /// Consecutive failed attempts before a Healthy replica turns Degraded.
  int degraded_after = 1;
  /// Consecutive failed attempts before the replica is Quarantined.
  int quarantine_after = 3;
  /// Consecutive successful probes a Quarantined replica needs to return
  /// to Healthy.
  int probe_successes = 2;
  /// EWMA smoothing factor of the per-replica latency estimate.
  double latency_alpha = 0.2;
};

/// Snapshot of one replica — what heartbeats publish and RoutingDecisions
/// are made from.
struct NodeMetrics {
  int id = 0;
  HealthState state = HealthState::kHealthy;
  int64_t inflight = 0;     // controller attempts dispatched, unresolved
  int64_t queue_depth = 0;  // batcher queue behind them
  double ewma_latency_us = 0.0;
  double p50_latency_us = 0.0;
  double p95_latency_us = 0.0;
  double p99_latency_us = 0.0;
  /// TileCost-modeled ADC/conversion time percentiles of served requests
  /// (BatcherCounters::analog_latency) — 0 on digital backends. What the
  /// analog chip would have spent, beside what the simulation did spend.
  double analog_p50_us = 0.0;
  double analog_p95_us = 0.0;
  double analog_p99_us = 0.0;
  uint64_t succeeded = 0;  // attempts resolved with a result
  uint64_t failures = 0;   // attempts resolved with an exception
  uint64_t timeouts = 0;   // attempts abandoned at their deadline
  int consecutive_failures = 0;
  uint64_t restarts = 0;
  /// Streaming predictive-uncertainty EWMAs of this replica's served
  /// requests (UncertaintyMonitor): the paper's fault signal per chip
  /// instance. A drifting replica moves uncertainty_drift away from 0
  /// while its healthy peers stay flat — visible from one scrape.
  uint64_t uncertainty_count = 0;
  double entropy_fast = 0.0;
  double entropy_baseline = 0.0;
  double variance_fast = 0.0;
  double variance_baseline = 0.0;
  double uncertainty_drift = 0.0;
};

class Replica {
 public:
  /// Takes ownership of an open session; `artifact_path` + `options` are
  /// kept for restart() to respawn an identically-configured session.
  Replica(int id, std::unique_ptr<InferenceSession> session,
          std::string artifact_path, deploy::DeployOptions options,
          HealthPolicy policy);
  ~Replica();
  Replica(const Replica&) = delete;
  Replica& operator=(const Replica&) = delete;

  int id() const { return id_; }

  /// Routes one request into this replica's batcher under a hard deadline
  /// (serve/batcher.h). Throws ServeError{kClosed} after close().
  std::future<Prediction> submit(Tensor input,
                                 std::chrono::microseconds timeout);
  /// Same, forwarding an upstream trace context into the batcher
  /// (serve/trace.h) — cluster-owned contexts pick up this replica's
  /// queue-wait/execute/resolve spans without the batcher finishing them.
  std::future<Prediction> submit(Tensor input,
                                 std::chrono::microseconds timeout,
                                 trace::TraceContextPtr tctx);

  /// Worker-side chaos/instrumentation seam, forwarded to the batcher and
  /// re-installed across restart() (AsyncBatcher::set_forward_hook).
  void set_forward_hook(std::function<void(int64_t rows)> hook);

  /// Routing load signal: in-flight attempts + batcher queue depth.
  int64_t load() const;
  /// Saturation check against the controller's per-replica bound.
  bool saturated(int64_t max_inflight) const {
    return load() >= max_inflight;
  }

  HealthState state() const;
  NodeMetrics metrics() const;
  uint64_t restarts() const;
  /// Consecutive failed probes since the last success — the controller's
  /// auto-restart trigger.
  int consecutive_probe_failures() const;

  // ---- controller feedback --------------------------------------------------
  /// Brackets one dispatched attempt (inflight accounting).
  void begin_attempt();
  void end_attempt();
  /// Attempt resolved with a result: clears the failure run, feeds the
  /// latency EWMA, and lifts a Degraded replica back to Healthy.
  void on_success(double latency_us);
  /// Attempt failed (`timed_out` = abandoned at its deadline rather than
  /// resolved with an exception): extends the failure run and drives the
  /// Healthy → Degraded → Quarantined transitions.
  void on_failure(bool timed_out);
  void on_probe_success();
  void on_probe_failure();

  /// Kill → respawn: drains the batcher, destroys the session, reopens a
  /// fresh one from the artifact under the same options. A Quarantined
  /// replica stays quarantined (recovery is the probes' verdict, not the
  /// restart's); otherwise the replica comes back Healthy.
  void restart();

  /// Drains and joins the batcher; submits afterwards are rejected.
  void close();

  /// The live session (oracle comparisons in tests). Do not cache across
  /// restart().
  const InferenceSession& session() const;

 private:
  const int id_;
  const std::string artifact_path_;
  const deploy::DeployOptions options_;
  const HealthPolicy policy_;

  /// restart() excludes submits/metrics while it swaps session + batcher.
  mutable std::shared_mutex session_mutex_;
  std::unique_ptr<InferenceSession> session_;
  std::unique_ptr<AsyncBatcher> batcher_;

  mutable std::mutex state_mutex_;  // health state + EWMA + runs
  HealthState state_ = HealthState::kHealthy;
  int consecutive_failures_ = 0;
  int probe_successes_ = 0;
  int probe_failures_ = 0;
  double ewma_latency_us_ = 0.0;

  std::atomic<int64_t> inflight_{0};
  std::atomic<uint64_t> succeeded_{0};
  std::atomic<uint64_t> failures_{0};
  std::atomic<uint64_t> timeouts_{0};
  std::atomic<uint64_t> restarts_{0};

  std::mutex hook_mutex_;
  std::function<void(int64_t)> hook_;
};

}  // namespace ripple::serve
