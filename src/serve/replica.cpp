#include "serve/replica.h"

#include <algorithm>
#include <utility>

#include "tensor/check.h"

namespace ripple::serve {

const char* health_state_name(HealthState state) {
  switch (state) {
    case HealthState::kHealthy:
      return "healthy";
    case HealthState::kDegraded:
      return "degraded";
    case HealthState::kQuarantined:
      return "quarantined";
  }
  return "?";
}

Replica::Replica(int id, std::unique_ptr<InferenceSession> session,
                 std::string artifact_path, deploy::DeployOptions options,
                 HealthPolicy policy)
    : id_(id),
      artifact_path_(std::move(artifact_path)),
      options_(std::move(options)),
      policy_(policy) {
  RIPPLE_CHECK(session != nullptr) << "Replica: null session";
  session_ = std::move(session);
  batcher_ = std::make_unique<AsyncBatcher>(*session_);
}

Replica::~Replica() { close(); }

std::future<Prediction> Replica::submit(Tensor input,
                                        std::chrono::microseconds timeout) {
  return submit(std::move(input), timeout, nullptr);
}

std::future<Prediction> Replica::submit(Tensor input,
                                        std::chrono::microseconds timeout,
                                        trace::TraceContextPtr tctx) {
  std::shared_lock lock(session_mutex_);
  if (!batcher_) {
    throw ServeError(Status::kClosed, "Replica::submit after close()");
  }
  return batcher_->submit(std::move(input), timeout, std::move(tctx));
}

void Replica::set_forward_hook(std::function<void(int64_t)> hook) {
  // Lock order everywhere: session_mutex_ before hook_mutex_ (restart()
  // reinstalls the hook while holding session_mutex_ exclusively).
  std::shared_lock lock(session_mutex_);
  std::lock_guard hook_lock(hook_mutex_);
  hook_ = std::move(hook);
  if (batcher_) batcher_->set_forward_hook(hook_);
}

int64_t Replica::load() const {
  int64_t depth = 0;
  {
    std::shared_lock lock(session_mutex_);
    if (batcher_) depth = batcher_->counters().queue_depth();
  }
  return inflight_.load(std::memory_order_relaxed) + depth;
}

HealthState Replica::state() const {
  std::lock_guard lock(state_mutex_);
  return state_;
}

NodeMetrics Replica::metrics() const {
  NodeMetrics m;
  m.id = id_;
  m.inflight = inflight_.load(std::memory_order_relaxed);
  m.succeeded = succeeded_.load(std::memory_order_relaxed);
  m.failures = failures_.load(std::memory_order_relaxed);
  m.timeouts = timeouts_.load(std::memory_order_relaxed);
  m.restarts = restarts_.load(std::memory_order_relaxed);
  {
    std::shared_lock lock(session_mutex_);
    if (batcher_) {
      m.queue_depth = batcher_->counters().queue_depth();
      const LatencyHistogram& h = batcher_->counters().latency();
      m.p50_latency_us = h.p50();
      m.p95_latency_us = h.p95();
      m.p99_latency_us = h.p99();
      const LatencyHistogram& a = batcher_->counters().analog_latency();
      m.analog_p50_us = a.p50();
      m.analog_p95_us = a.p95();
      m.analog_p99_us = a.p99();
      const UncertaintyMonitor::Snapshot u =
          batcher_->counters().uncertainty().snapshot();
      m.uncertainty_count = u.count;
      m.entropy_fast = u.entropy_fast;
      m.entropy_baseline = u.entropy_baseline;
      m.variance_fast = u.variance_fast;
      m.variance_baseline = u.variance_baseline;
      m.uncertainty_drift = u.drift;
    }
  }
  {
    std::lock_guard lock(state_mutex_);
    m.state = state_;
    m.ewma_latency_us = ewma_latency_us_;
    m.consecutive_failures = consecutive_failures_;
  }
  return m;
}

uint64_t Replica::restarts() const {
  return restarts_.load(std::memory_order_relaxed);
}

int Replica::consecutive_probe_failures() const {
  std::lock_guard lock(state_mutex_);
  return probe_failures_;
}

void Replica::begin_attempt() {
  inflight_.fetch_add(1, std::memory_order_relaxed);
}

void Replica::end_attempt() {
  inflight_.fetch_sub(1, std::memory_order_relaxed);
}

void Replica::on_success(double latency_us) {
  succeeded_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard lock(state_mutex_);
  consecutive_failures_ = 0;
  ewma_latency_us_ = ewma_latency_us_ <= 0.0
                         ? latency_us
                         : (1.0 - policy_.latency_alpha) * ewma_latency_us_ +
                               policy_.latency_alpha * latency_us;
  if (state_ == HealthState::kDegraded) state_ = HealthState::kHealthy;
}

void Replica::on_failure(bool timed_out) {
  (timed_out ? timeouts_ : failures_).fetch_add(1, std::memory_order_relaxed);
  std::lock_guard lock(state_mutex_);
  ++consecutive_failures_;
  if (consecutive_failures_ >= policy_.quarantine_after) {
    state_ = HealthState::kQuarantined;
  } else if (consecutive_failures_ >= policy_.degraded_after &&
             state_ == HealthState::kHealthy) {
    state_ = HealthState::kDegraded;
  }
}

void Replica::on_probe_success() {
  std::lock_guard lock(state_mutex_);
  probe_failures_ = 0;
  if (state_ != HealthState::kQuarantined) return;
  if (++probe_successes_ >= policy_.probe_successes) {
    state_ = HealthState::kHealthy;
    consecutive_failures_ = 0;
    probe_successes_ = 0;
  }
}

void Replica::on_probe_failure() {
  std::lock_guard lock(state_mutex_);
  probe_successes_ = 0;
  ++probe_failures_;
}

void Replica::restart() {
  std::unique_lock lock(session_mutex_);
  if (batcher_) batcher_->close();  // drain: pre-restart futures resolve
  batcher_.reset();
  session_.reset();
  session_ = InferenceSession::open(artifact_path_, options_);
  batcher_ = std::make_unique<AsyncBatcher>(*session_);
  {
    std::lock_guard hook_lock(hook_mutex_);
    if (hook_) batcher_->set_forward_hook(hook_);
  }
  restarts_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard state_lock(state_mutex_);
  consecutive_failures_ = 0;
  probe_successes_ = 0;
  probe_failures_ = 0;
  if (state_ == HealthState::kDegraded) state_ = HealthState::kHealthy;
}

void Replica::close() {
  std::unique_lock lock(session_mutex_);
  if (batcher_) batcher_->close();
  batcher_.reset();
}

const InferenceSession& Replica::session() const {
  std::shared_lock lock(session_mutex_);
  RIPPLE_CHECK(session_ != nullptr) << "Replica::session after close()";
  return *session_;
}

}  // namespace ripple::serve
