#include "serve/status.h"

namespace ripple::serve {

const char* status_name(Status status) {
  switch (status) {
    case Status::kOk:
      return "ok";
    case Status::kTimeout:
      return "timeout";
    case Status::kOverloaded:
      return "overloaded";
    case Status::kReplicaDown:
      return "replica-down";
    case Status::kClosed:
      return "closed";
    case Status::kUnknownModel:
      return "unknown-model";
    case Status::kQuotaExceeded:
      return "quota-exceeded";
  }
  return "unknown";
}

}  // namespace ripple::serve
