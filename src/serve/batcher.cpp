#include "serve/batcher.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace ripple::serve {

namespace {

/// Requests coalesce only when every non-batch dimension agrees (the
/// predict_many contract). Degenerate inputs (undefined / rank 0) form
/// singleton groups so their failure stays theirs.
bool same_row_shape(const Tensor& a, const Tensor& b) {
  if (!a.defined() || !b.defined()) return false;
  if (a.rank() != b.rank() || a.rank() < 1) return false;
  for (int d = 1; d < a.rank(); ++d)
    if (a.dim(d) != b.dim(d)) return false;
  return true;
}

/// Rows a request contributes to a dispatched batch; degenerate inputs
/// (undefined / rank 0) count 1 so they still move through the queue.
int64_t rows_of(const Tensor& t) {
  return t.defined() && t.rank() >= 1 ? t.dim(0) : 1;
}

}  // namespace

AsyncBatcher::AsyncBatcher(const InferenceSession& session)
    : session_(session),
      max_batch_(session.options().batch_max_requests),
      max_rows_(std::max<int64_t>(0, session.options().batch_max_rows)),
      max_delay_(std::max<int64_t>(0, session.options().batch_max_delay_us)),
      adaptive_delay_(session.options().batch_adaptive_delay),
      worker_count_(static_cast<size_t>(
          std::max(1, session.options().batcher_threads))) {
  RIPPLE_CHECK(max_batch_ >= 1)
      << "AsyncBatcher needs batch_max_requests >= 1";
  counters_.on_effective_delay(max_delay_.count());
  workers_.reserve(worker_count_);
  for (size_t i = 0; i < worker_count_; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

AsyncBatcher::~AsyncBatcher() { close(); }

std::chrono::microseconds AsyncBatcher::effective_delay(
    std::chrono::steady_clock::time_point now) {
  if (!adaptive_delay_) return max_delay_;
  std::chrono::microseconds delay = max_delay_;
  if (have_last_submit_) {
    constexpr double kAlpha = 0.2;  // EWMA smoothing of inter-arrival time
    // An idle gap longer than the configured cap carries no rate
    // information (any batch would have dispatched long before): clamp it
    // so one quiet period cannot pin the estimate high for dozens of
    // subsequent arrivals.
    const double dt_us = std::min(
        std::chrono::duration<double, std::micro>(now - last_submit_).count(),
        static_cast<double>(max_delay_.count()));
    ewma_interarrival_us_ = ewma_interarrival_us_ <= 0.0
                                ? dt_us
                                : (1.0 - kAlpha) * ewma_interarrival_us_ +
                                      kAlpha * dt_us;
    // Waiting longer than the estimated batch fill time buys nothing: at
    // the observed rate the count trigger fires first; past a burst the
    // stragglers stop waiting for peers that are not coming.
    const double fill_us =
        ewma_interarrival_us_ * static_cast<double>(max_batch_ - 1);
    delay = std::min(
        max_delay_,
        std::chrono::microseconds(std::llround(std::max(0.0, fill_us))));
  }
  last_submit_ = now;
  have_last_submit_ = true;
  counters_.on_effective_delay(delay.count());
  return delay;
}

std::future<Prediction> AsyncBatcher::submit(Tensor input) {
  return enqueue(std::move(input),
                 std::chrono::steady_clock::time_point::max());
}

std::future<Prediction> AsyncBatcher::submit(
    Tensor input, std::chrono::microseconds timeout) {
  return enqueue(std::move(input),
                 std::chrono::steady_clock::now() + timeout);
}

std::future<Prediction> AsyncBatcher::submit(Tensor input,
                                             std::chrono::microseconds timeout,
                                             trace::TraceContextPtr tctx) {
  return enqueue(std::move(input), std::chrono::steady_clock::now() + timeout,
                 std::move(tctx));
}

std::future<Prediction> AsyncBatcher::submit(Tensor input,
                                             trace::TraceContextPtr tctx) {
  return enqueue(std::move(input), std::chrono::steady_clock::time_point::max(),
                 std::move(tctx));
}

std::future<Prediction> AsyncBatcher::enqueue(
    Tensor input, std::chrono::steady_clock::time_point hard_deadline,
    trace::TraceContextPtr tctx) {
  // Self-create a batcher-owned context for untraced requests so direct
  // batcher users get timelines too. With tracing off this is the one
  // branch the submit path pays.
  if (!tctx && trace::Tracer::instance().enabled()) {
    tctx = trace::Tracer::instance().begin_trace(
        "", trace::FinishLayer::kBatcher);
  }
  std::promise<Prediction> promise;
  std::future<Prediction> future = promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) {
      counters_.on_reject();
      throw ServeError(Status::kClosed, "AsyncBatcher::submit after close()");
    }
    const auto now = std::chrono::steady_clock::now();
    queued_rows_ += rows_of(input);
    // The dispatch trigger never waits past the hard deadline: an expired
    // request must surface as a prompt typed failure, not sit out the
    // coalescing delay first.
    queue_.push_back(Pending{std::move(input), std::move(promise),
                             std::min(now + effective_delay(now),
                                      hard_deadline),
                             now, hard_deadline, std::move(tctx)});
    counters_.on_submit();
  }
  cv_.notify_one();
  return future;
}

void AsyncBatcher::set_forward_hook(std::function<void(int64_t)> hook) {
  std::lock_guard<std::mutex> lock(hook_mutex_);
  forward_hook_ = std::move(hook);
}

std::vector<std::future<Prediction>> AsyncBatcher::submit_many(
    std::vector<Tensor> inputs) {
  std::vector<std::future<Prediction>> futures;
  futures.reserve(inputs.size());
  for (Tensor& x : inputs) futures.push_back(submit(std::move(x)));
  return futures;
}

void AsyncBatcher::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
  // Hold join_mutex_ across the join: a concurrent close() then blocks
  // here until the first closer finished draining, so *every* close()
  // returns only once the queue is empty and the workers have exited
  // (the destructor relies on this postcondition).
  std::lock_guard<std::mutex> lock(join_mutex_);
  std::vector<std::thread> workers;
  workers.swap(workers_);
  for (std::thread& w : workers) w.join();
}

bool AsyncBatcher::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

std::vector<AsyncBatcher::Pending> AsyncBatcher::take_batch() {
  std::vector<Pending> batch;
  int64_t batch_rows = rows_of(queue_.front().input);
  batch.push_back(std::move(queue_.front()));
  queue_.pop_front();
  // By value: push_back below reallocates `batch`, so a reference into it
  // would dangle (Tensor is a cheap shared handle).
  const Tensor ref = batch.front().input;
  for (auto it = queue_.begin();
       it != queue_.end() && static_cast<int64_t>(batch.size()) < max_batch_;) {
    const int64_t follower_rows = rows_of(it->input);
    // Rows-based sizing: don't let a follower push the batch past the
    // rows bound (the oldest request itself always dispatches, even when
    // oversized). Skipped followers stay queued, FIFO, for the next batch.
    if (max_rows_ > 0 && batch_rows + follower_rows > max_rows_) {
      ++it;
      continue;
    }
    if (same_row_shape(it->input, ref)) {
      batch_rows += follower_rows;
      batch.push_back(std::move(*it));
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
  queued_rows_ -= batch_rows;
  counters_.on_dispatch(batch.size(), static_cast<size_t>(batch_rows));
  return batch;
}

std::vector<AsyncBatcher::Pending> AsyncBatcher::sweep_expired(
    std::chrono::steady_clock::time_point now) {
  std::vector<Pending> expired;
  for (auto it = queue_.begin(); it != queue_.end();) {
    if (it->hard_deadline <= now) {
      queued_rows_ -= rows_of(it->input);
      expired.push_back(std::move(*it));
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
  // The deadline-rejection path must decrement queue_depth just like
  // dispatch does — conservation law: submitted == completed and
  // queue_depth == 0 once drained, however each request left the queue.
  if (!expired.empty()) counters_.on_expire(expired.size());
  return expired;
}

void AsyncBatcher::fail_expired(std::vector<Pending>& expired) {
  if (expired.empty()) return;
  for (Pending& p : expired) {
    // Counters first, promise last: a client that just observed the
    // future must find this request already accounted for.
    counters_.on_timeout();
    const auto now = std::chrono::steady_clock::now();
    counters_.latency().record(
        std::chrono::duration_cast<std::chrono::microseconds>(now - p.enqueue)
            .count());
    counters_.on_complete(1);
    if (p.trace) {
      trace::Tracer::instance().record_span(
          p.trace, trace::Stage::kQueueWait, p.enqueue, now);
    }
    p.promise.set_exception(std::make_exception_ptr(ServeError(
        Status::kTimeout, "request deadline expired in queue")));
    trace::Tracer::instance().finish_if(p.trace, trace::FinishLayer::kBatcher);
  }
}

void AsyncBatcher::run_batch(std::vector<Pending>& batch) {
  std::function<void(int64_t)> hook;
  {
    std::lock_guard<std::mutex> lock(hook_mutex_);
    hook = forward_hook_;
  }
  const auto record = [this](const Pending& p) {
    counters_.latency().record(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - p.enqueue)
            .count());
  };
  // Modeled hardware time per served request: TileCost conversions ×
  // ADC cycle × the request's rows. Read after the forward (the backend
  // is frozen by then, so the compiled set is complete); 0 for digital
  // backends keeps the histogram empty.
  const auto record_analog = [this](const Pending& p) {
    const double us_per_row = session_.modeled_analog_us_per_row();
    if (us_per_row > 0.0)
      counters_.analog_latency().record(static_cast<int64_t>(
          std::llround(us_per_row * static_cast<double>(rows_of(p.input)))));
  };

  // Deadline enforcement happens at dispatch: a request whose hard
  // deadline already passed gets the typed timeout now and never reaches
  // the session — late traffic must not burn a forward pass on answers
  // nobody is waiting for. Per request, counters land before the promise
  // resolves, so metrics are consistent from the client's point of view.
  const auto dispatch_time = std::chrono::steady_clock::now();
  trace::Tracer& tracer = trace::Tracer::instance();
  std::vector<Pending> live;
  live.reserve(batch.size());
  for (Pending& p : batch) {
    if (p.hard_deadline <= dispatch_time) {
      counters_.on_timeout();
      record(p);
      counters_.on_complete(1);
      if (p.trace) {
        tracer.record_span(p.trace, trace::Stage::kQueueWait, p.enqueue,
                           dispatch_time);
      }
      p.promise.set_exception(std::make_exception_ptr(ServeError(
          Status::kTimeout, "request deadline expired before dispatch")));
      tracer.finish_if(p.trace, trace::FinishLayer::kBatcher);
    } else {
      live.push_back(std::move(p));
    }
  }

  if (!live.empty()) {
    std::vector<Tensor> inputs;
    inputs.reserve(live.size());
    int64_t live_rows = 0;
    bool traced = false;
    for (const Pending& p : live) {
      inputs.push_back(p.input);
      live_rows += rows_of(p.input);
      traced = traced || p.trace != nullptr;
    }
    bool coalesced_ok = false;
    try {
      if (hook) hook(live_rows);
      const auto forward_start = std::chrono::steady_clock::now();
      trace::TraceData* lead = nullptr;
      if (traced) {
        // The coalesced forward is one shared piece of work — queue-wait
        // and assembly spans land per request, and the first traced member
        // owns the batch's session-level execute sub-spans.
        for (const Pending& p : live) {
          if (!p.trace) continue;
          if (lead == nullptr) lead = p.trace.get();
          tracer.record_span(p.trace, trace::Stage::kQueueWait, p.enqueue,
                             dispatch_time);
          tracer.record_span(p.trace, trace::Stage::kBatchAssembly,
                             dispatch_time, forward_start);
        }
      }
      std::vector<Prediction> results;
      {
        trace::ActiveRequestScope scope(lead);
        results = session_.predict_many(inputs);
      }
      const auto exec_end = std::chrono::steady_clock::now();
      coalesced_ok = true;
      for (size_t i = 0; i < live.size(); ++i) {
        record(live[i]);
        record_analog(live[i]);
        observe_uncertainty(counters_.uncertainty(), results[i]);
        counters_.on_complete(1);
        if (live[i].trace) {
          tracer.record_span(live[i].trace, trace::Stage::kExecute,
                             forward_start, exec_end,
                             static_cast<uint32_t>(live.size()));
        }
        live[i].promise.set_value(std::move(results[i]));
        if (live[i].trace) {
          tracer.record_span(live[i].trace, trace::Stage::kResolve, exec_end,
                             std::chrono::steady_clock::now());
          tracer.finish_if(live[i].trace, trace::FinishLayer::kBatcher);
        }
      }
    } catch (...) {
      if (coalesced_ok) throw;  // a promise was already consumed; don't retry
      // The coalesced forward failed; retry request-by-request so the
      // exception lands only in the offending request's future and the
      // rest of the batch still completes. The hook runs per retried
      // forward too — an injected crash fails every request it serves.
      for (Pending& p : live) {
        try {
          if (hook) hook(rows_of(p.input));
          const auto retry_start = std::chrono::steady_clock::now();
          Prediction result;
          {
            trace::ActiveRequestScope scope(p.trace.get());
            result = session_.predict(p.input);
          }
          const auto retry_end = std::chrono::steady_clock::now();
          record(p);
          record_analog(p);
          observe_uncertainty(counters_.uncertainty(), result);
          counters_.on_complete(1);
          if (p.trace) {
            tracer.record_span(p.trace, trace::Stage::kExecute, retry_start,
                               retry_end, 1);
          }
          p.promise.set_value(std::move(result));
          if (p.trace) {
            tracer.record_span(p.trace, trace::Stage::kResolve, retry_end,
                               std::chrono::steady_clock::now());
            tracer.finish_if(p.trace, trace::FinishLayer::kBatcher);
          }
        } catch (...) {
          record(p);
          counters_.on_complete(1);
          p.promise.set_exception(std::current_exception());
          tracer.finish_if(p.trace, trace::FinishLayer::kBatcher);
        }
      }
    }
  }
}

void AsyncBatcher::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    cv_.wait(lock, [this] { return closed_ || !queue_.empty(); });
    if (closed_ && queue_.empty()) return;
    // Coalescing wait: hold the batch open until max_batch requests (or,
    // with rows-based sizing, batch_max_rows rows) are queued or the
    // oldest request's deadline passes. Closing skips straight to
    // dispatch (drain semantics). The front can change under us (another
    // worker dispatched), so every wakeup re-reads it.
    while (!closed_ && !queue_.empty() &&
           static_cast<int64_t>(queue_.size()) < max_batch_ &&
           (max_rows_ == 0 || queued_rows_ < max_rows_)) {
      // Copy the deadline out: wait_until holds it by reference across the
      // unlocked wait, and another worker may dispatch (and free) the
      // front entry meanwhile. The whole queue is scanned for the earliest
      // dispatch deadline: adaptive delays and per-request hard deadlines
      // both break the front-is-oldest-deadline invariant — a later
      // arrival may carry a shorter deadline than the front.
      std::chrono::steady_clock::time_point deadline =
          queue_.front().deadline;
      for (const Pending& p : queue_)
        deadline = std::min(deadline, p.deadline);
      if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) break;
    }
    if (queue_.empty()) continue;
    // Expired requests are rejected from wherever they sit in the queue —
    // including behind a shape they never could have coalesced with —
    // before batch assembly, so a deadline rejection is prompt and the
    // queue-depth gauge drops on this path exactly as it does on dispatch.
    std::vector<Pending> expired =
        sweep_expired(std::chrono::steady_clock::now());
    std::vector<Pending> batch;
    if (!queue_.empty()) batch = take_batch();
    lock.unlock();
    fail_expired(expired);
    if (!batch.empty()) run_batch(batch);
    lock.lock();
  }
}

}  // namespace ripple::serve
