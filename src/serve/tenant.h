// Tenant identity for the multi-tenant model server.
//
// serve::ModelServer serves many clients from one process; what keeps them
// honest neighbours is decided here:
//
//   * seed isolation — every serving unit a tenant gets opens under the
//     model's base seed *plus the tenant's salt*, so two tenants hitting
//     the same model draw disjoint MC mask/noise streams: one tenant's
//     uncertainty samples are deterministic (same tenant, same request →
//     same draw) and private (no other tenant can replay them by guessing
//     request order). The salt derives from the tenant id by default, so
//     isolation needs no coordination.
//   * rate quotas — a classic token bucket (burst capacity, sustained
//     refill) admission-checked on the submit path. A rejected request
//     costs one atomic bump and a typed Status::kQuotaExceeded failure;
//     it never reaches a queue.
//
// The per-tenant latency view lives with the serving units themselves
// (each (model, entry, tenant) unit owns a BatcherCounters, and
// ModelServer::tenant_metrics merges them), so this file stays free of the
// serving machinery.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>

namespace ripple::serve {

/// Token-bucket parameters. rate_per_sec == 0 disables the quota (the
/// bucket admits everything, lock-free).
struct QuotaPolicy {
  double rate_per_sec = 0.0;
  /// Bucket capacity (burst size); 0 → max(1, rate_per_sec).
  double burst = 0.0;
};

/// Thread-safe token bucket. try_acquire() refills by elapsed time ×
/// rate, then spends one token if available. Starts full (a quiet tenant
/// can burst immediately).
class TokenBucket {
 public:
  explicit TokenBucket(QuotaPolicy policy);

  bool try_acquire(std::chrono::steady_clock::time_point now);
  double available(std::chrono::steady_clock::time_point now) const;
  bool unlimited() const { return policy_.rate_per_sec <= 0.0; }

 private:
  void refill(std::chrono::steady_clock::time_point now) const;

  QuotaPolicy policy_;
  double capacity_ = 0.0;
  mutable std::mutex mutex_;
  mutable double tokens_ = 0.0;
  mutable bool started_ = false;
  mutable std::chrono::steady_clock::time_point last_{};
};

/// seed_salt sentinel: derive the salt from the tenant id (stable across
/// processes and registration order).
inline constexpr uint64_t kDeriveSaltFromId = ~uint64_t{0};

struct TenantConfig {
  std::string id;
  /// Added to every session (and crossbar programming) seed this tenant's
  /// units open with. kDeriveSaltFromId (default) hashes the id; an
  /// explicit 0 serves the artifact's own seeds unmodified — the oracle
  /// configuration tests compare against.
  uint64_t seed_salt = kDeriveSaltFromId;
  QuotaPolicy quota;
};

/// Stable seed salt for a tenant id (FNV-1a finished with a splitmix64
/// mix, never 0 for a non-empty id).
uint64_t tenant_salt_of(const std::string& id);

/// One registered tenant: resolved salt, token bucket, admission counters.
class Tenant {
 public:
  explicit Tenant(TenantConfig config);
  Tenant(const Tenant&) = delete;
  Tenant& operator=(const Tenant&) = delete;

  const std::string& id() const { return config_.id; }
  const TenantConfig& config() const { return config_; }
  uint64_t seed_salt() const { return salt_; }

  /// Quota admission. A false return has already been counted.
  bool admit(std::chrono::steady_clock::time_point now);
  /// Counts a request that passed admission and reached a serving unit.
  void on_submit() { submitted_.fetch_add(1, std::memory_order_relaxed); }

  uint64_t submitted() const {
    return submitted_.load(std::memory_order_relaxed);
  }
  uint64_t quota_rejected() const {
    return quota_rejected_.load(std::memory_order_relaxed);
  }

 private:
  TenantConfig config_;
  uint64_t salt_ = 0;
  TokenBucket bucket_;
  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> quota_rejected_{0};
};

}  // namespace ripple::serve
