// ripple::serve — the deployment-facing inference API.
//
// The research harness exposes Monte-Carlo uncertainty through *mutable
// model state*: callers flip set_mc_mode / set_mc_replicas, seed per-layer
// mask streams by hand, and pick among free functions with inconsistent
// signatures. That surface cannot serve concurrent traffic — two threads
// would race on the layer flags and RNG counters.
//
// InferenceSession freezes all of that at construction time:
//   • the model is switched to eval + MC-sampling mode once and never
//     toggled again;
//   • every stochastic component (InvertedNorm affine dropout, MC-Dropout
//     element/spatial dropout, the model's ActivationNoiseConfig) is bound
//     to a mask-stream *slot*; per-pass stream state lives in a
//     thread-local McStreamContext owned by each predict() call, so
//     requests never share RNG state — noisy serving included;
//   • conv weight panels are GEMM-packed once (first predict warms a
//     PackedACache, then lookups are lock-free) instead of per call.
//
// After construction, predict() is safe to call from any number of threads
// concurrently, and — because the per-layer streams derive only from the
// session seed — a given input always produces the same result, regardless
// of thread interleaving or request order.
//
// Lifecycle:  construct model → train → deploy() → InferenceSession →
// predict() / predict_many().  One session owns its model's serving state:
// do not drive the model through the legacy set_mc_* surface, or through a
// second session, while a session is alive. If fault injection mutates the
// deployed weights in place, call invalidate_packed_weights() so the packed
// panels are rebuilt (see fault/evaluation.h for a harness that does this).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <variant>
#include <vector>

#include "deploy/backend_kind.h"
#include "deploy/plan.h"
#include "models/task_model.h"
#include "tensor/gemm.h"
#include "tensor/tensor.h"

namespace ripple::core {
class InvertedNorm;
}

namespace ripple::deploy {
class ExecutionBackend;
struct DeployOptions;
struct LoadedArtifact;
}  // namespace ripple::deploy

namespace ripple::serve {

/// Output semantics of the served model — selects what predict() computes
/// from the T stacked stochastic outputs.
enum class TaskKind { kClassification, kRegression, kSegmentation };

const char* task_kind_name(TaskKind kind);

/// How the T Monte-Carlo samples are executed.
///   kBatched — fold the T samples into the batch dimension: one forward
///              pass, per-replica masks (fast path, see fault/mc_batch.h).
///   kSerial  — T separate passes under the same mask streams; the
///              reference path (agrees with kBatched to float rounding).
///   kAuto    — currently kBatched; the knob exists so deployments can pin
///              the reference path without an API change.
enum class ExecutionPolicy { kBatched, kSerial, kAuto };

struct SessionOptions {
  TaskKind task = TaskKind::kClassification;
  /// Stochastic samples T per uncertainty estimate. Deterministic variants
  /// (Conventional) are clamped to 1 unless clamp_samples is false.
  int mc_samples = 8;
  /// Base seed of the deterministic per-layer mask streams. Fixed per
  /// session: the same input always yields the same prediction.
  uint64_t seed = 0x5eedf00dull;
  ExecutionPolicy policy = ExecutionPolicy::kAuto;
  /// Upper bound on stacked rows (T·n) per forward pass; larger requests
  /// are split into input chunks of max(1, max_batch / T) rows. Both
  /// policies chunk identically so they sample identical masks. Chunking
  /// is exact for the proposed variant (its affine masks are per-replica,
  /// not per-row); element/spatial MC-Dropout masks are row-dependent, so
  /// for those variants a chunked request is a different — equally valid,
  /// still deterministic — Monte-Carlo draw than the unchunked one.
  int64_t max_batch = 256;
  /// Clamp mc_samples to 1 for deterministic variants (mc_samples_for).
  /// The deprecated mc_forward_* shims disable this to preserve their
  /// stack-t-replicas-regardless contract.
  bool clamp_samples = true;
  /// Compile fused, zero-allocation execution plans per (input shape,
  /// chunk offset) and serve from them once each plan is verified
  /// bit-exact against the graph path on that shape (deploy/plan.h).
  /// The graph path remains the fallback for unverified shapes, the
  /// serial policy, and undeployed models. Disable to pin every request
  /// to the graph oracle.
  bool compile = true;

  // ---- AsyncBatcher knobs (serve/batcher.h) --------------------------------
  /// Dispatch a coalesced batch as soon as this many requests are queued…
  int batch_max_requests = 16;
  /// …or once the oldest queued request has waited this long (the request's
  /// deadline). 0 dispatches immediately (no coalescing beyond what is
  /// already queued when a worker wakes).
  int64_t batch_max_delay_us = 1000;
  /// Adapt the coalescing delay to the observed request rate: an EWMA of
  /// the submit inter-arrival time estimates how long filling a batch
  /// will take, and each request's deadline uses
  /// min(batch_max_delay_us, estimate · (batch_max_requests − 1)) — so
  /// when a burst ends, the straggler batch stops waiting the full
  /// configured delay for requests that are not coming.
  /// batch_max_delay_us stays the hard upper bound.
  bool batch_adaptive_delay = false;
  /// Rows-based sizing for mixed-size traffic: a batch also dispatches
  /// once the queued same-shape rows reach this bound, and coalescing
  /// stops adding requests that would push the dispatched rows past it
  /// (a single oversized request still dispatches alone). 0 = requests
  /// only.
  int64_t batch_max_rows = 0;
  /// Worker threads draining the batcher queue.
  int batcher_threads = 1;
};

/// Classifier result: MC-averaged probabilities with spread.
struct Classification {
  Tensor mean_probs;                 // [N, C] mean softmax probabilities
  Tensor variance;                   // [N, C] across-sample variance
  Tensor entropy;                    // [N] predictive entropy of mean_probs
  std::vector<int64_t> predictions;  // argmax of mean_probs
  int samples = 0;
};

/// Regressor result: MC mean with predictive spread.
struct Regression {
  Tensor mean;    // MC mean prediction
  Tensor stddev;  // across-sample standard deviation (population)
  int samples = 0;
};

/// Dense binary segmentation result: MC-averaged pixel probabilities.
struct Segmentation {
  Tensor mean_probs;  // sigmoid probabilities, logits' shape
  int samples = 0;
};

using Prediction = std::variant<Classification, Regression, Segmentation>;

/// One compiled plan + context pool for an (input shape, chunk offset)
/// key; defined in session.cpp.
struct PlanCacheEntry;

/// Outcome of plan compilation for one (input shape, chunk offset) key.
struct PlanInfo {
  bool compiled = false;
  /// Why the session serves this shape from the graph path instead (empty
  /// when compiled, or when no compile was attempted yet).
  std::string fallback_reason;
  deploy::PlanStats stats;  // valid when compiled
  /// Per-step profile of the compiled plan (deploy::set_plan_profiling);
  /// empty when not compiled or profiling has never been enabled.
  std::vector<deploy::PlanOpProfile> op_profile;
};

class InferenceSession {
 public:
  /// Binds the session to `model` (which must outlive it) and freezes the
  /// serving state. The model should be deployed; the session switches it
  /// to eval + MC mode and assigns mask-stream slots to every stochastic
  /// layer. One session per model at a time.
  InferenceSession(models::TaskModel& model, SessionOptions options);

  /// Owning form used by artifact deployment (InferenceSession::open): the
  /// session owns the loaded model and, when `backend` is non-null, routes
  /// every forward's dense compute through it (deploy/exec_backend.h).
  InferenceSession(std::unique_ptr<models::TaskModel> model,
                   SessionOptions options,
                   std::unique_ptr<deploy::ExecutionBackend> backend,
                   deploy::Backend backend_kind);
  ~InferenceSession();
  InferenceSession(const InferenceSession&) = delete;
  InferenceSession& operator=(const InferenceSession&) = delete;

  /// Opens a deployment artifact (deploy/artifact.h) on the execution
  /// substrate selected by `options.backend` — no in-process training, no
  /// re-calibration. Defined in deploy/open.cpp; include deploy/deploy.h
  /// to construct DeployOptions. The overload without options serves the
  /// artifact's embedded defaults on the fp32 backend.
  static std::unique_ptr<InferenceSession> open(
      const std::string& path, const deploy::DeployOptions& options);
  static std::unique_ptr<InferenceSession> open(const std::string& path);

  /// Opens a session from an already-loaded artifact, consuming it — the
  /// replica-fleet path: deploy::load_artifact once, deploy::replicate per
  /// additional replica, then open each copy under its own seed/fault
  /// configuration without touching the disk again (serve/cluster.h).
  static std::unique_ptr<InferenceSession> open(
      deploy::LoadedArtifact artifact, const deploy::DeployOptions& options);

  /// One uncertainty-aware prediction for a batch x [N, ...]; the held
  /// alternative matches options().task. Thread-safe and deterministic:
  /// same input ⇒ same result, from any thread.
  Prediction predict(const Tensor& x) const;

  /// Zero-allocation prediction into caller-owned result storage: when a
  /// verified plan covers x's shape, the forward runs on the plan's arena
  /// and the aggregation reuses `out`'s tensors (steady state performs no
  /// heap allocation). Falls back to `out = predict(x)` — compiling a plan
  /// for next time — when no plan is ready. Results are bit-identical to
  /// predict() either way.
  void predict_into(const Tensor& x, Prediction& out) const;

  /// Traces, compiles and verifies a plan for `input_shape` (batch dim
  /// included) ahead of traffic, using a deterministic ramp input; returns
  /// what a matching request will serve on. Also warms the pack cache.
  PlanInfo precompile(const Shape& input_shape) const;

  /// Compilation state for a shape previously seen (by precompile or a
  /// served request); compiled == false with an empty reason when the
  /// shape has never been compiled.
  PlanInfo plan_info(const Shape& input_shape, int64_t chunk_offset = 0) const;

  /// Per-fused-op execution profile aggregated by op tag over every
  /// compiled plan this session holds (step = -1 in each row). Empty until
  /// deploy::set_plan_profiling(true) has let executes accumulate time.
  /// The metrics endpoint exports these as ripple_plan_op_* families.
  std::vector<deploy::PlanOpProfile> plan_op_profiles() const;

  /// Micro-batching front door: coalesces the requests into chunks of the
  /// session's batch size, runs them through the folded MC forward, and
  /// splits the aggregated results back per request.
  std::vector<Prediction> predict_many(const std::vector<Tensor>& requests) const;

  /// Typed entry points; RIPPLE_CHECK the session's task kind.
  Classification classify(const Tensor& x) const;
  Regression regress(const Tensor& x) const;
  Segmentation segment(const Tensor& x) const;

  /// The stacked raw model outputs [T·N, ...], replica-major — the
  /// uncertainty estimate before aggregation. Building block of the
  /// deprecated mc_forward_* shims and of cross-policy tests.
  Tensor mc_outputs(const Tensor& x) const;

  /// Rebuilds the frozen packed-weight cache. Required after anything
  /// mutates the deployed weights in place (fault injection): the cache is
  /// keyed by data pointer, which such mutation preserves. Safe to call
  /// while other threads predict (they hold the cache's shared lock), but
  /// remember the *weights* themselves are not guarded — mutate + serve
  /// concurrently and the predictions are torn regardless of the cache.
  void invalidate_packed_weights() const;

  models::TaskModel& model() const { return model_; }
  const SessionOptions& options() const { return options_; }
  /// Execution substrate this session serves on (kFp32 unless opened from
  /// an artifact with a different choice).
  deploy::Backend backend() const { return backend_kind_; }
  /// The installed execution backend, or nullptr (fp32/quantsim digital).
  deploy::ExecutionBackend* exec_backend() const { return backend_.get(); }
  /// Modeled analog serving time (µs) per input row — the backend's
  /// TileCost ADC conversion model, 0 for digital substrates and until the
  /// backend freezes. serve::AsyncBatcher records this per request into
  /// BatcherCounters::analog_latency.
  double modeled_analog_us_per_row() const;
  /// Effective stochastic samples T (after deterministic clamping).
  int samples() const { return samples_; }
  /// Resolved execution policy (kAuto → kBatched).
  ExecutionPolicy policy() const { return policy_; }
  /// Input rows per forward chunk: max(1, max_batch / T).
  int64_t chunk_rows() const { return chunk_rows_; }

  /// Served-request counters (predict_many counts each request).
  uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }
  uint64_t rows_served() const {
    return rows_.load(std::memory_order_relaxed);
  }

 private:
  /// Runs one already-chunk-sized forward [n ≤ chunk_rows_] and returns
  /// the stacked [T·n, ...] outputs under this session's mask streams.
  /// `chunk_offset` is the chunk's starting row within its request (0 for
  /// unchunked) — row-dependent dropout masks mix it in so chunks never
  /// repeat masks.
  Tensor run_chunk(const Tensor& xc, int64_t chunk_offset) const;
  /// The graph oracle: replicate + forward under this chunk's stream
  /// context. Publishes the stacked input to an active TraceRecorder.
  Tensor run_chunk_graph(const Tensor& xc, int64_t chunk_offset) const;
  /// Serves the chunk from a compiled plan when one is ready (compiling
  /// it first if this thread wins the build race); false ⇒ graph path.
  bool run_chunk_planned(const Tensor& xc, int64_t chunk_offset,
                         Tensor* out) const;
  /// Traces + compiles + verifies a plan into `e`; on any failure the
  /// entry is marked failed and the shape serves from the graph.
  void compile_entry(PlanCacheEntry& e, const Tensor& xc,
                     int64_t chunk_offset, uint64_t fingerprint) const;
  /// Forward under the pack cache; first call records + freezes it.
  Tensor forward_cached(const Tensor& stacked_or_chunk) const;

  Classification aggregate_classification(const Tensor& stacked,
                                          int64_t n) const;
  Regression aggregate_regression(const Tensor& stacked) const;
  Segmentation aggregate_segmentation(const Tensor& stacked) const;

  /// Allocation-free aggregation mirrors (same arithmetic, caller-owned
  /// outputs); `scratch` stages the softmax / sigmoid probabilities.
  void aggregate_classification_into(const Tensor& stacked, Tensor& scratch,
                                     Classification& out) const;
  void aggregate_regression_into(const Tensor& stacked,
                                 Regression& out) const;
  void aggregate_segmentation_into(const Tensor& stacked, Tensor& scratch,
                                   Segmentation& out) const;

  /// Fingerprint of the model's activation-noise configuration; plans bake
  /// noise draws as constants, so a config change invalidates them.
  uint64_t noise_fingerprint() const;

  /// Owned when the session was opened from an artifact; model_ then
  /// references *owned_model_. Declared first so model_ can bind to it.
  std::unique_ptr<models::TaskModel> owned_model_;
  std::unique_ptr<deploy::ExecutionBackend> backend_;
  deploy::Backend backend_kind_ = deploy::Backend::kFp32;
  models::TaskModel& model_;
  SessionOptions options_;
  int samples_ = 1;
  ExecutionPolicy policy_ = ExecutionPolicy::kBatched;
  int64_t chunk_rows_ = 1;
  size_t stream_slots_ = 0;
  std::vector<core::InvertedNorm*> inverted_;
  std::vector<nn::Dropout*> dropouts_;
  std::vector<nn::SpatialDropout*> spatial_;

  /// Per-(shape, chunk offset) compiled plans + pooled execution contexts;
  /// defined in session.cpp (pimpl keeps the compiler machinery out of
  /// this header's dependents).
  struct PlanCache;
  std::unique_ptr<PlanCache> plans_;

  mutable PackedACache pack_cache_;
  /// Shared by every frozen-path predict, exclusive for the one-time
  /// warm-up recording and for invalidate_packed_weights(), so clearing
  /// the cache cannot race in-flight lookups.
  mutable std::shared_mutex cache_mutex_;
  mutable std::atomic<uint64_t> requests_{0};
  mutable std::atomic<uint64_t> rows_{0};
};

}  // namespace ripple::serve
