// serve::MetricsExporter — Prometheus text-format view of a ModelServer.
//
// Two consumption modes, one renderer:
//
//   render()   builds the full exposition (text format 0.0.4) from the
//              server's counter/histogram snapshots — server totals,
//              per-tenant admission counters, one labelled series per
//              serving unit {model, version, entry, tenant}, and the
//              latency/analog-latency histograms with cumulative `le`
//              buckets derived from LatencyHistogram's log2 bucket edges.
//   start(p)   optional minimal HTTP/1.1 listener on 127.0.0.1:p (POSIX
//              sockets, one blocking accept loop on a background thread,
//              poll()ed so stop() is prompt). Port 0 binds any free port;
//              port() reports the binding. The request path is routed:
//              /healthz answers a liveness probe ("ok"), /buildinfo a
//              JSON build fingerprint (git describe, SIMD GEMM dispatch
//              level, compiled-in backends, tracing state), and anything
//              else — /metrics included — the current render().
//
// render() also exports the serve::trace families (per-stage latency
// histograms, capture/drop counters), the per-fused-op plan profile
// (deploy::set_plan_profiling) and the streaming uncertainty monitor
// (entropy/variance EWMAs + drift gauges) — see docs/OBSERVABILITY.md.
//
// The exporter holds a reference to the server and reads only through its
// public snapshot API, so it adds no locking requirements of its own.
#pragma once

#include <atomic>
#include <string>
#include <thread>

#include <cstddef>

namespace ripple::serve {

class ModelServer;

/// Writes all `size` bytes to the socket `fd`, retrying short writes and
/// EINTR. Sends with MSG_NOSIGNAL so a scraper that closed its end mid-
/// response yields EPIPE instead of delivering SIGPIPE (which would kill
/// the process — the exporter must never let a client own its fate).
/// Returns false once the peer is gone or the socket errors terminally.
bool write_all(int fd, const void* data, size_t size);

class MetricsExporter {
 public:
  explicit MetricsExporter(const ModelServer& server);
  ~MetricsExporter();
  MetricsExporter(const MetricsExporter&) = delete;
  MetricsExporter& operator=(const MetricsExporter&) = delete;

  /// Full Prometheus text-format exposition of the server's current
  /// metrics. Safe to call at any time, with or without the listener.
  std::string render() const;

  /// The /buildinfo JSON body: git describe of the build, the runtime-
  /// dispatched GEMM kernel (scalar/avx2/avx512), the compiled-in
  /// execution backends, and whether request tracing is enabled.
  std::string buildinfo() const;

  /// Binds 127.0.0.1:port (0 = any free port) and serves render() to
  /// every connection until stop(). Throws std::runtime_error when the
  /// port can't be bound. No-op if already started.
  void start(int port);
  /// Stops the listener and joins its thread. Idempotent.
  void stop();
  /// Bound port, or -1 before start() and after stop().
  int port() const { return port_; }

 private:
  void listener_loop();

  const ModelServer& server_;
  std::atomic<bool> stop_{false};
  int listen_fd_ = -1;
  int port_ = -1;
  std::thread thread_;
};

}  // namespace ripple::serve
