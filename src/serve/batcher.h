// ripple::serve — deadline-driven cross-thread request batching.
//
// InferenceSession::predict_many coalesces requests only when a single
// caller assembles the vector; independent client threads each pay a full
// Monte-Carlo forward, wasting the batched-replica speedups. AsyncBatcher
// closes that gap: clients submit() individual requests and get a
// std::future; worker threads drain a shared queue and dispatch coalesced
// batches through the session under a (max_batch, max_delay) policy —
//
//   • a batch goes out as soon as `batch_max_requests` requests are
//     queued, or
//   • when the oldest queued request's deadline (enqueue time +
//     `batch_max_delay_us`) expires, whichever comes first;
//   • close() drains: everything already queued is dispatched immediately
//     (deadlines ignored), then the workers join. submit() after close()
//     throws — requests are never silently dropped.
//
// Batches run through the session's predict_many path. For the proposed
// variant served without activation noise — the paper's deployment
// configuration — the mask streams are row-independent, coalescing is
// pure batch assembly, and per-request results are bit-exact against the
// single-thread predict oracle (tests/batcher_test.cpp asserts this for
// all four task kinds). Row-dependent draws (element/spatial MC-Dropout
// masks, stream-bound activation noise) instead depend on where a
// request's rows land in the coalesced batch, so those configurations
// get a different — equally valid, per-batch deterministic — Monte-Carlo
// draw than a solo predict(): the same caveat a caller-assembled
// predict_many already carries (see SessionOptions::max_batch).
//
// Mixed-shape traffic is grouped: a dispatch takes the oldest request plus
// every queued request with the same per-row shape (FIFO within the
// group); other shapes stay queued for the next dispatch. If a coalesced
// forward throws, the batch is retried request-by-request so the
// exception reaches only the offending request's future — batchmates
// still complete.
//
// With `batch_adaptive_delay` on, the coalescing delay *adapts* to the
// observed traffic: an EWMA of the submit inter-arrival time estimates how
// long filling batch_max_requests will take, and each request's deadline
// uses min(batch_max_delay_us, estimate · (batch_max_requests − 1)) — so
// the straggler batch after a burst stops waiting the full configured
// delay for requests that are not coming. batch_max_delay_us remains the
// hard upper bound; BatcherCounters::effective_delay_us gauges the delay
// most recently applied.
//
// Mixed-*size* traffic sizes batches in rows, not just requests: with
// `batch_max_rows` set, a batch also dispatches once the queued rows reach
// the bound, and coalescing stops before a request would push the
// dispatched rows past it (a single oversized request still goes out
// alone — it is the session's max_batch chunking's job to split it).
// With the knob at 0 (default) only batch_max_requests sizes batches.
//
// Per-request *hard* deadlines are separate from the coalescing delay:
// submit(x, timeout) stamps the request with an absolute deadline, and a
// request whose deadline has already expired when a worker dispatches it
// is failed with ServeError{Status::kTimeout} instead of being served late
// (BatcherCounters::timeouts counts these; an expired request also wakes
// the worker no later than its deadline, so the typed failure is prompt).
// A request that starts executing in time but finishes late is still
// served — dispatch is the cancellation point, not the forward.
//
// Failures on the submit path are typed (serve/status.h): submit() after
// close() throws ServeError{Status::kClosed}. Exceptions thrown by the
// session itself (precondition violations — bad shapes, wrong task kind)
// keep their own type and are delivered through the offending request's
// future, as before.
//
// Thread safety: submit/submit_many/close may be called from any thread.
// The batcher only *reads* the session (predict_many is const and
// thread-safe), so serving through a batcher and calling session.predict
// directly from other threads at the same time is fine.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/metrics.h"
#include "serve/session.h"
#include "serve/status.h"
#include "serve/trace.h"

namespace ripple::serve {

/// Asynchronous batching front door over one InferenceSession. The
/// session (which must outlive the batcher) supplies the policy knobs via
/// SessionOptions: batch_max_requests, batch_max_delay_us,
/// batcher_threads.
class AsyncBatcher {
 public:
  explicit AsyncBatcher(const InferenceSession& session);
  /// Destruction closes: drains the queue, then joins the workers.
  ~AsyncBatcher();
  AsyncBatcher(const AsyncBatcher&) = delete;
  AsyncBatcher& operator=(const AsyncBatcher&) = delete;

  /// Enqueues one request batch x [N, ...] and returns the future of its
  /// prediction (the same typed result session.predict(x) yields).
  /// Throws ServeError{Status::kClosed} after close().
  std::future<Prediction> submit(Tensor input);

  /// Same, with a hard per-request deadline `timeout` from now: if the
  /// deadline has expired by the time a worker dispatches the request, its
  /// future fails with ServeError{Status::kTimeout} instead of being
  /// served late. timeout <= 0 means already expired.
  std::future<Prediction> submit(Tensor input,
                                 std::chrono::microseconds timeout);

  /// Same, carrying an upstream trace context (serve/trace.h): the batcher
  /// appends queue-wait/batch-assembly/execute/resolve spans to it, and
  /// finishes it after resolving the promise when the context is
  /// batcher-owned. Null `tctx` with tracing enabled self-creates one, so
  /// direct batcher users get timelines without a ModelServer in front.
  std::future<Prediction> submit(Tensor input,
                                 std::chrono::microseconds timeout,
                                 trace::TraceContextPtr tctx);
  /// Traced submit without a hard deadline.
  std::future<Prediction> submit(Tensor input, trace::TraceContextPtr tctx);

  /// Enqueues several requests at once (they may still be split across
  /// dispatched batches); one future per request, in order.
  std::vector<std::future<Prediction>> submit_many(std::vector<Tensor> inputs);

  /// Instrumentation/chaos seam: `hook(rows)` runs inside a worker thread
  /// immediately before each coalesced forward (and before each forward of
  /// the per-request retry path). An exception it throws is delivered
  /// exactly like a session exception — to the offending request's future
  /// after the per-request retry. The cluster chaos harness injects
  /// replica crashes (hook throws) and stalls (hook sleeps) here. Pass an
  /// empty function to clear. Takes effect from the next dispatched batch.
  void set_forward_hook(std::function<void(int64_t rows)> hook);

  /// Idempotent graceful shutdown: already-queued requests are dispatched
  /// (deadlines ignored), workers join, later submits are rejected.
  void close();
  bool closed() const;

  const InferenceSession& session() const { return session_; }
  const BatcherCounters& counters() const { return counters_; }
  int64_t max_batch() const { return max_batch_; }
  /// Rows bound per dispatched batch (0 = unbounded, requests-only sizing).
  int64_t max_rows() const { return max_rows_; }
  int64_t max_delay_us() const { return max_delay_.count(); }
  /// Whether the coalescing delay tracks the observed arrival rate.
  bool adaptive_delay() const { return adaptive_delay_; }
  int workers() const { return static_cast<int>(worker_count_); }

 private:
  struct Pending {
    Tensor input;
    std::promise<Prediction> promise;
    /// Dispatch trigger: enqueue + coalescing delay, clamped to the hard
    /// deadline so expired requests surface (and fail) promptly.
    std::chrono::steady_clock::time_point deadline;
    std::chrono::steady_clock::time_point enqueue;
    /// Absolute per-request deadline (time_point::max() = none).
    std::chrono::steady_clock::time_point hard_deadline;
    /// Trace context (null when tracing is off or the request is untraced).
    trace::TraceContextPtr trace;
  };

  /// Common submit path; hard_deadline = time_point::max() for none.
  std::future<Prediction> enqueue(
      Tensor input, std::chrono::steady_clock::time_point hard_deadline,
      trace::TraceContextPtr tctx = nullptr);

  void worker_loop();
  /// Pops the dispatch group (oldest request + same-per-row-shape
  /// followers, ≤ max_batch_). Caller holds mutex_.
  std::vector<Pending> take_batch();
  /// Removes every hard-expired request from the queue — any position,
  /// any shape — updating queued_rows_ and the queue-depth counter
  /// (BatcherCounters::on_expire): a request rejected on deadline leaves
  /// the queue accounting exactly like a dispatched one. Caller holds
  /// mutex_; the returned requests' futures are failed by fail_expired()
  /// after unlocking.
  std::vector<Pending> sweep_expired(
      std::chrono::steady_clock::time_point now);
  /// Fails swept requests with the typed timeout and counts them
  /// (timeouts + completed). No locks held.
  void fail_expired(std::vector<Pending>& expired);
  /// Runs one dispatched group and fulfills its promises. No locks held.
  void run_batch(std::vector<Pending>& batch);

  /// Coalescing delay for a request submitted now (EWMA-adapted when
  /// enabled, else the configured max). Caller holds mutex_.
  std::chrono::microseconds effective_delay(
      std::chrono::steady_clock::time_point now);

  const InferenceSession& session_;
  const int64_t max_batch_;
  const int64_t max_rows_;
  const std::chrono::microseconds max_delay_;
  const bool adaptive_delay_;
  const size_t worker_count_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  int64_t queued_rows_ = 0;  // rows across queue_, guarded by mutex_
  // Arrival-rate tracking (batch_adaptive_delay), guarded by mutex_.
  std::chrono::steady_clock::time_point last_submit_{};
  bool have_last_submit_ = false;
  double ewma_interarrival_us_ = 0.0;
  bool closed_ = false;
  std::vector<std::thread> workers_;
  std::mutex join_mutex_;  // serializes concurrent close() calls

  std::mutex hook_mutex_;
  std::function<void(int64_t)> forward_hook_;

  BatcherCounters counters_;
};

}  // namespace ripple::serve
