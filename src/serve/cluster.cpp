#include "serve/cluster.h"

#include <algorithm>
#include <exception>
#include <string>
#include <utility>

#include "tensor/check.h"

namespace ripple::serve {

namespace {

using Clock = std::chrono::steady_clock;
constexpr Clock::time_point kNoDeadline = Clock::time_point::max();

int64_t us_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration_cast<std::chrono::microseconds>(to - from)
      .count();
}

}  // namespace

ClusterController::ClusterController(const std::string& artifact_path,
                                     ClusterOptions options)
    : options_(std::move(options)), artifact_path_(artifact_path) {
  RIPPLE_CHECK(options_.replicas >= 1) << "ClusterController: replicas >= 1";
  RIPPLE_CHECK(options_.dispatch_threads >= 1)
      << "ClusterController: dispatch_threads >= 1";
  RIPPLE_CHECK(options_.dispatch_chunk >= 1)
      << "ClusterController: dispatch_chunk >= 1";
  RIPPLE_CHECK(options_.max_attempts >= 1)
      << "ClusterController: max_attempts >= 1";

  // One disk read serves the whole fleet: replicate the loaded artifact
  // per replica, moving the original into the last one.
  deploy::LoadedArtifact master =
      deploy::load_artifact(artifact_path_, options_.deploy.manifest_entry);
  const SessionOptions base = options_.deploy.session.has_value()
                                  ? *options_.deploy.session
                                  : master.session_defaults;
  fleet_.reserve(static_cast<size_t>(options_.replicas));
  for (int i = 0; i < options_.replicas; ++i) {
    deploy::DeployOptions per = options_.deploy;
    SessionOptions session_options = base;
    if (options_.per_replica_seeds) {
      session_options.seed = base.seed + static_cast<uint64_t>(i);
      per.crossbar.seed += static_cast<uint64_t>(i);
    }
    per.session = session_options;
    auto session = i + 1 < options_.replicas
                       ? InferenceSession::open(deploy::replicate(master), per)
                       : InferenceSession::open(std::move(master), per);
    fleet_.push_back(std::make_unique<Replica>(
        i, std::move(session), artifact_path_, std::move(per),
        options_.health));
  }

  dispatchers_.reserve(static_cast<size_t>(options_.dispatch_threads));
  for (int t = 0; t < options_.dispatch_threads; ++t) {
    dispatchers_.emplace_back([this] { dispatcher_loop(); });
  }
  heartbeat_ = std::thread([this] { heartbeat_loop(); });
}

ClusterController::~ClusterController() { close(); }

std::future<Prediction> ClusterController::submit(Tensor input) {
  return submit(std::move(input),
                std::chrono::microseconds(options_.default_timeout_us));
}

std::future<Prediction> ClusterController::submit(
    Tensor input, std::chrono::microseconds timeout) {
  return submit(std::move(input), timeout, nullptr);
}

std::future<Prediction> ClusterController::submit(
    Tensor input, std::chrono::microseconds timeout,
    trace::TraceContextPtr tctx) {
  // Self-create a cluster-owned context for untraced requests so direct
  // cluster users get timelines too. With tracing off this is the one
  // branch the submit path pays.
  if (!tctx && trace::Tracer::instance().enabled()) {
    tctx = trace::Tracer::instance().begin_trace(
        "", trace::FinishLayer::kCluster);
  }
  std::promise<Prediction> promise;
  std::future<Prediction> future = promise.get_future();
  const auto now = Clock::now();
  const auto deadline = timeout.count() > 0 ? now + timeout : kNoDeadline;

  std::lock_guard lock(mutex_);
  if (closed_) {
    throw ServeError(Status::kClosed, "ClusterController::submit after close()");
  }
  counters_.on_submit();

  // Admission control: reject *now* rather than time out later. A fleet
  // with no routable replica at all is not overload — those requests are
  // accepted and given their deadline to outlive the outage.
  const bool queue_full =
      static_cast<int64_t>(queue_.size()) >= options_.queue_limit;
  const RoutingDecision d = queue_full ? RoutingDecision{} : route();
  if (queue_full || d.verdict == Status::kOverloaded) {
    counters_.on_shed();
    promise.set_exception(std::make_exception_ptr(ServeError(
        Status::kOverloaded, queue_full ? "controller queue full"
                                        : "all routable replicas saturated")));
    trace::Tracer::instance().finish_if(tctx, trace::FinishLayer::kCluster);
    return future;
  }

  queue_.push_back(Task{std::move(input), std::move(promise), now, deadline,
                        std::move(tctx)});
  cv_.notify_one();
  return future;
}

RoutingDecision ClusterController::route(int exclude) const {
  // Thread-local scratch: route() runs once per attempt on every
  // dispatcher, so the pool buffers must not cost a heap allocation each.
  thread_local std::vector<int> healthy;
  thread_local std::vector<int> degraded;
  thread_local std::vector<int> excluded;  // vetoed — pool of last resort
  healthy.clear();
  degraded.clear();
  excluded.clear();
  bool any_routable = false;
  for (int i = 0; i < static_cast<int>(fleet_.size()); ++i) {
    const HealthState s = fleet_[i]->state();
    if (s == HealthState::kQuarantined) continue;
    any_routable = true;
    if (fleet_[i]->saturated(options_.max_inflight_per_replica)) continue;
    (i == exclude ? excluded
     : s == HealthState::kHealthy ? healthy
                                  : degraded)
        .push_back(i);
  }
  const std::vector<int>& pool = !healthy.empty()    ? healthy
                                 : !degraded.empty() ? degraded
                                                     : excluded;

  RoutingDecision d;
  if (pool.empty()) {
    d.verdict = any_routable ? Status::kOverloaded : Status::kReplicaDown;
    return d;
  }
  if (pool.size() == 1) {
    d.replica = pool[0];
    return d;
  }
  // Two scrambled candidate draws (splitmix64 finalizer over a shared
  // tick), lower load wins — power of two choices.
  const uint64_t tick = route_counter_.fetch_add(1, std::memory_order_relaxed);
  const auto pick = [&](uint64_t salt) {
    uint64_t z = tick * 2 + salt + 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return static_cast<size_t>((z ^ (z >> 31)) % pool.size());
  };
  const size_t a = pick(0);
  size_t b = pick(1);
  if (b == a) b = (a + 1) % pool.size();
  int winner = pool[a];
  int loser = pool[b];
  if (fleet_[loser]->load() < fleet_[winner]->load()) std::swap(winner, loser);
  d.replica = winner;
  d.runner_up = loser;
  return d;
}

void ClusterController::dispatcher_loop() {
  std::vector<Task> chunk;
  std::vector<FirstAttempt> first;
  for (;;) {
    chunk.clear();
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [&] { return closed_ || !queue_.empty(); });
      if (queue_.empty()) return;  // closed and drained
      const auto take =
          std::min(queue_.size(),
                   static_cast<size_t>(options_.dispatch_chunk));
      for (size_t i = 0; i < take; ++i) {
        chunk.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    if (chunk.size() == 1) {
      serve_task(chunk[0]);
      continue;
    }
    // Prime every first attempt before awaiting any result: the chunk
    // coalesces into the replicas' batches together, and by the time the
    // collect pass reaches task i its future is usually already resolved.
    first.clear();
    first.resize(chunk.size());
    for (size_t i = 0; i < chunk.size(); ++i) {
      prime_attempt(chunk[i], first[i]);
    }
    for (size_t i = 0; i < chunk.size(); ++i) {
      serve_task(chunk[i], &first[i]);
    }
  }
}

Clock::time_point ClusterController::attempt_deadline_for(
    const Task& task, Clock::time_point now, int attempt) const {
  auto attempt_deadline = task.deadline;
  if (options_.attempt_timeout_us > 0) {
    attempt_deadline =
        now + std::chrono::microseconds(options_.attempt_timeout_us);
    if (task.deadline != kNoDeadline) {
      attempt_deadline = std::min(attempt_deadline, task.deadline);
    }
  } else if (task.deadline != kNoDeadline) {
    attempt_deadline =
        now + (task.deadline - now) / (options_.max_attempts - attempt);
  }
  return attempt_deadline;
}

void ClusterController::prime_attempt(Task& task, FirstAttempt& fa) {
  const auto now = Clock::now();
  fa.start = now;
  if (task.trace) {
    // Cluster-level queue wait (detail 1 distinguishes it from a batcher's
    // queue-wait span on the same timeline).
    trace::Tracer::instance().record_span(
        task.trace, trace::Stage::kQueueWait, task.enqueue, now, 1);
  }
  if (task.deadline != kNoDeadline && now >= task.deadline) {
    fa.expired = true;
    return;
  }
  fa.decision = route();
  if (fa.decision.replica < 0) return;
  fa.attempt_deadline = attempt_deadline_for(task, now, /*attempt=*/0);
  const auto budget =
      fa.attempt_deadline == kNoDeadline
          ? std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::hours(24 * 365))
          : std::chrono::microseconds(us_between(now, fa.attempt_deadline));
  Replica& replica = *fleet_[fa.decision.replica];
  replica.begin_attempt();
  try {
    fa.outcome = replica.submit(task.input, budget, task.trace);
    fa.dispatched = true;
    if (task.trace) {
      trace::Tracer::instance().record_span(
          task.trace, trace::Stage::kDispatch, now, Clock::now(),
          static_cast<uint32_t>(fa.decision.replica));
    }
  } catch (...) {
    // Replica closed between route() and submit() — the collect pass
    // treats it as a failed attempt and re-routes.
  }
}

void ClusterController::serve_task(Task& task, FirstAttempt* first) {
  if (first == nullptr && task.trace) {
    trace::Tracer::instance().record_span(
        task.trace, trace::Stage::kQueueWait, task.enqueue, Clock::now(), 1);
  }
  const auto resolve_latency = [&] {
    counters_.latency().record(us_between(task.enqueue, Clock::now()));
  };
  const auto fail = [&](Status status, const std::string& what) {
    if (status == Status::kTimeout) {
      counters_.on_timeout();
    } else {
      counters_.on_failure();
    }
    resolve_latency();
    task.promise.set_exception(
        std::make_exception_ptr(ServeError(status, what)));
    trace::Tracer::instance().finish_if(task.trace,
                                        trace::FinishLayer::kCluster);
  };
  const auto backoff_sleep = [&](int64_t backoff_us) {
    auto wait = std::chrono::microseconds(backoff_us);
    if (task.deadline != kNoDeadline) {
      const auto now = Clock::now();
      if (now >= task.deadline) return;
      wait = std::min(
          wait, std::chrono::duration_cast<std::chrono::microseconds>(
                    task.deadline - now));
    }
    if (wait.count() > 0) std::this_thread::sleep_for(wait);
  };

  int attempt = 0;
  int64_t backoff = options_.retry_backoff_us;
  bool last_attempt_timed_out = false;
  int last_failed_replica = -1;
  for (;;) {
    auto now = Clock::now();
    RoutingDecision d;
    std::future<Prediction> outcome;
    bool dispatched = false;
    auto attempt_deadline = kNoDeadline;

    if (first != nullptr) {
      // Attempt 0 was primed (routed + submitted) by the chunked
      // dispatcher; consume it instead of routing a fresh one.
      FirstAttempt fa = std::move(*first);
      first = nullptr;
      if (fa.expired) {
        fail(Status::kTimeout, "deadline expired after 0 attempt(s)");
        return;
      }
      now = fa.start;
      d = fa.decision;
      outcome = std::move(fa.outcome);
      dispatched = fa.dispatched;
      attempt_deadline = fa.attempt_deadline;
    } else {
      if (task.deadline != kNoDeadline && now >= task.deadline) {
        fail(Status::kTimeout, "deadline expired after " +
                                   std::to_string(attempt) + " attempt(s)");
        return;
      }
      d = route(last_failed_replica);
      if (d.replica >= 0) {
        // Per-attempt deadline: a stalled replica costs one attempt, not
        // the whole deadline.
        attempt_deadline = attempt_deadline_for(task, now, attempt);
        const auto budget =
            attempt_deadline == kNoDeadline
                ? std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::hours(24 * 365))
                : std::chrono::microseconds(
                      us_between(now, attempt_deadline));
        fleet_[d.replica]->begin_attempt();
        try {
          outcome = fleet_[d.replica]->submit(task.input, budget, task.trace);
          dispatched = true;
          if (task.trace) {
            trace::Tracer::instance().record_span(
                task.trace, trace::Stage::kDispatch, now, Clock::now(),
                static_cast<uint32_t>(d.replica));
          }
        } catch (...) {
          // Replica closed between route() and submit() — treat as a
          // failed attempt and re-route.
        }
      }
    }

    if (d.replica < 0) {
      // Nothing routable this instant; back off and let the fleet heal
      // (or the deadline fire) instead of burning the attempt budget.
      ++attempt;
      if (attempt >= options_.max_attempts) {
        // kOverloaded: routable replicas existed but stayed saturated the
        // whole attempt budget; kReplicaDown: the fleet was quarantined.
        fail(d.verdict == Status::kOk ? Status::kReplicaDown : d.verdict,
             "no routable replica after " + std::to_string(attempt) +
                 " attempt(s)");
        return;
      }
      counters_.on_retry();
      backoff_sleep(backoff);
      backoff = std::min(backoff * 2, options_.max_backoff_us);
      continue;
    }
    Replica& replica = *fleet_[d.replica];
    bool ready = false;
    if (dispatched) {
      if (attempt_deadline == kNoDeadline) {
        outcome.wait();
        ready = true;
      } else {
        ready = outcome.wait_until(attempt_deadline) ==
                std::future_status::ready;
      }
    }

    if (ready) {
      try {
        Prediction prediction = outcome.get();
        replica.end_attempt();
        replica.on_success(static_cast<double>(us_between(now, Clock::now())));
        // Refresh the probe canary opportunistically: skipping a refresh
        // under contention is harmless (any recent good input works), and
        // a per-success contended lock is not.
        if (probe_mutex_.try_lock()) {
          last_good_input_ = task.input;
          have_last_good_ = true;
          probe_mutex_.unlock();
        }
        counters_.on_success();
        resolve_latency();
        const auto resolve_start = Clock::now();
        task.promise.set_value(std::move(prediction));
        if (task.trace) {
          trace::Tracer::instance().record_span(task.trace,
                                                trace::Stage::kResolve,
                                                resolve_start, Clock::now());
          trace::Tracer::instance().finish_if(task.trace,
                                              trace::FinishLayer::kCluster);
        }
        return;
      } catch (...) {
        replica.end_attempt();
        replica.on_failure(/*timed_out=*/false);
        last_attempt_timed_out = false;
        last_failed_replica = d.replica;
      }
    } else {
      // Attempt abandoned at its deadline (or never dispatched — replica
      // closed under us): the future is discarded (a late result resolves
      // dead shared state, harmlessly) and the request re-routes.
      replica.end_attempt();
      replica.on_failure(/*timed_out=*/dispatched);
      last_attempt_timed_out = dispatched;
      last_failed_replica = d.replica;
    }

    ++attempt;
    if (attempt >= options_.max_attempts) {
      if (last_attempt_timed_out ||
          (task.deadline != kNoDeadline && Clock::now() >= task.deadline)) {
        fail(Status::kTimeout, "all " + std::to_string(attempt) +
                                   " attempt(s) timed out");
      } else {
        fail(Status::kReplicaDown,
             "all " + std::to_string(attempt) + " attempt(s) failed");
      }
      return;
    }
    counters_.on_retry();
    backoff_sleep(backoff);
    backoff = std::min(backoff * 2, options_.max_backoff_us);
  }
}

void ClusterController::heartbeat_loop() {
  const auto interval =
      std::chrono::microseconds(options_.heartbeat_interval_us);
  std::unique_lock lock(mutex_);
  while (!closed_) {
    hb_cv_.wait_for(lock, interval, [&] { return closed_; });
    if (closed_) return;
    lock.unlock();
    probe_quarantined();
    lock.lock();
  }
}

Tensor ClusterController::probe_input() {
  if (options_.probe_input.defined()) return options_.probe_input;
  std::lock_guard lock(probe_mutex_);
  return have_last_good_ ? last_good_input_ : Tensor{};
}

void ClusterController::probe_quarantined() {
  const Tensor canary = probe_input();
  if (!canary.defined()) return;  // nothing served successfully yet
  const auto budget = std::chrono::microseconds(options_.probe_timeout_us);
  for (auto& entry : fleet_) {
    Replica& replica = *entry;
    if (replica.state() != HealthState::kQuarantined) continue;
    counters_.on_probe();
    bool ok = false;
    try {
      auto outcome = replica.submit(canary, budget);
      if (outcome.wait_for(budget) == std::future_status::ready) {
        outcome.get();
        ok = true;
      }
    } catch (...) {
    }
    if (ok) {
      replica.on_probe_success();
    } else {
      replica.on_probe_failure();
      counters_.on_probe_failure();
      if (options_.auto_restart &&
          replica.consecutive_probe_failures() >=
              options_.restart_after_probe_failures) {
        replica.restart();
        counters_.on_restart();
      }
    }
  }
}

void ClusterController::restart_replica(int i) {
  RIPPLE_CHECK(i >= 0 && i < replicas())
      << "ClusterController::restart_replica: bad index " << i;
  fleet_[static_cast<size_t>(i)]->restart();
}

Replica& ClusterController::replica(int i) {
  RIPPLE_CHECK(i >= 0 && i < replicas())
      << "ClusterController::replica: bad index " << i;
  return *fleet_[static_cast<size_t>(i)];
}

std::vector<NodeMetrics> ClusterController::metrics() const {
  std::vector<NodeMetrics> all;
  all.reserve(fleet_.size());
  for (const auto& r : fleet_) all.push_back(r->metrics());
  return all;
}

int64_t ClusterController::queue_depth() const {
  std::lock_guard lock(mutex_);
  return static_cast<int64_t>(queue_.size());
}

void ClusterController::close() {
  {
    std::lock_guard lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
  hb_cv_.notify_all();
  std::lock_guard join_lock(join_mutex_);
  for (auto& t : dispatchers_) {
    if (t.joinable()) t.join();
  }
  dispatchers_.clear();
  if (heartbeat_.joinable()) heartbeat_.join();
  for (auto& r : fleet_) r->close();
}

bool ClusterController::closed() const {
  std::lock_guard lock(mutex_);
  return closed_;
}

}  // namespace ripple::serve
