#include "serve/server.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>

#include "serve/prom.h"
#include "tensor/check.h"

namespace ripple::serve {

namespace {

std::future<Prediction> failed_future(Status status,
                                      const std::string& what) {
  std::promise<Prediction> promise;
  promise.set_exception(std::make_exception_ptr(ServeError(status, what)));
  return promise.get_future();
}

void merge_snapshot(LatencyHistogram::Snapshot& into,
                    const LatencyHistogram::Snapshot& from) {
  for (size_t b = 0; b < LatencyHistogram::kBuckets; ++b)
    into.buckets[b] += from.buckets[b];
  into.total_us += from.total_us;
  into.count += from.count;
}

}  // namespace

// ---- TenantUnit -------------------------------------------------------------

std::future<Prediction> ModelServer::TenantUnit::submit(
    const Tensor& input, std::chrono::steady_clock::time_point deadline,
    const trace::TraceContextPtr& tctx) {
  constexpr auto kNoDeadline = std::chrono::steady_clock::time_point::max();
  if (cluster) {
    if (deadline == kNoDeadline) {
      // Same default the 1-arg overload applies (0 = no deadline there too).
      return cluster->submit(input, std::chrono::microseconds(
                                        cluster->options().default_timeout_us),
                             tctx);
    }
    // ClusterController treats timeout <= 0 as "no deadline"; an already
    // expired request must instead time out promptly — clamp to 1µs.
    const auto remaining =
        std::chrono::duration_cast<std::chrono::microseconds>(
            deadline - std::chrono::steady_clock::now());
    return cluster->submit(
        input, std::max(std::chrono::microseconds(1), remaining), tctx);
  }
  if (deadline == kNoDeadline) return batcher->submit(input, tctx);
  const auto remaining = std::chrono::duration_cast<std::chrono::microseconds>(
      deadline - std::chrono::steady_clock::now());
  return batcher->submit(
      input, std::max(std::chrono::microseconds(0), remaining), tctx);
}

void ModelServer::TenantUnit::close() {
  if (batcher) batcher->close();
  if (cluster) cluster->close();
}

// ---- lifecycle --------------------------------------------------------------

ModelServer::ModelServer(ServerOptions options)
    : options_(std::move(options)) {
  RIPPLE_CHECK(options_.replicas >= 1) << "ModelServer: replicas >= 1";
  if (options_.metrics_port >= 0) {
    exporter_ = std::make_unique<MetricsExporter>(*this);
    exporter_->start(options_.metrics_port);
  }
}

ModelServer::~ModelServer() { close(); }

std::shared_ptr<ModelServer::ModelVersion> ModelServer::build_version(
    const std::string& name, const std::string& version,
    const std::string& artifact_path,
    const deploy::DeployOptions& deploy) const {
  auto mv = std::make_shared<ModelVersion>();
  mv->name = name;
  mv->version = version;
  mv->artifact_path = artifact_path;
  mv->deploy = deploy;
  const deploy::ManifestInfo info = deploy::inspect_artifact(artifact_path);
  if (info.version >= 3) {
    for (const deploy::ManifestEntryInfo& e : info.entries) {
      auto entry = std::make_unique<EntryState>();
      entry->name = e.name;
      entry->weight = e.weight;
      entry->master = deploy::load_artifact(artifact_path, e.name);
      mv->entries.push_back(std::move(entry));
    }
  } else {
    // Single-model v1/v2 file: one anonymous entry.
    auto entry = std::make_unique<EntryState>();
    entry->master = deploy::load_artifact(artifact_path);
    mv->entries.push_back(std::move(entry));
  }
  // Weighted-round-robin pick table: weights quantized at 1% resolution,
  // then gcd-reduced so the routing period is as short as the ratio
  // allows — 3:1 routes exactly 3 then 1 every 4 requests, not 300 then
  // 100 every 400.
  std::vector<uint64_t> scaled;
  uint64_t g = 0;
  for (const auto& entry : mv->entries) {
    scaled.push_back(std::max<uint64_t>(
        1, static_cast<uint64_t>(std::llround(entry->weight * 100.0))));
    g = std::gcd(g, scaled.back());
  }
  uint64_t cum = 0;
  for (const uint64_t w : scaled) {
    cum += w / g;
    mv->pick_upper.push_back(cum);
  }
  return mv;
}

void ModelServer::load_model(const std::string& name,
                             const std::string& version,
                             const std::string& artifact_path) {
  load_model(name, version, artifact_path, options_.deploy);
}

void ModelServer::load_model(const std::string& name,
                             const std::string& version,
                             const std::string& artifact_path,
                             const deploy::DeployOptions& deploy) {
  RIPPLE_CHECK(!name.empty() && !version.empty())
      << "load_model: name and version must be set";
  // Heavy I/O (manifest inspection + per-entry loads) happens before the
  // exclusive lock; the registry flip itself is cheap.
  std::shared_ptr<ModelVersion> mv =
      build_version(name, version, artifact_path, deploy);
  {
    std::unique_lock lock(registry_mutex_);
    if (closed_) throw ServeError(Status::kClosed, "load_model after close()");
    ModelState& state = registry_[name];
    if (!state.versions.emplace(version, mv).second)
      throw std::runtime_error("ModelServer: model '" + name + "' version '" +
                               version + "' already loaded");
    if (state.active.empty()) state.active = version;
  }
  counters_.on_load();
}

void ModelServer::set_active(const std::string& name,
                             const std::string& version) {
  std::unique_lock lock(registry_mutex_);
  auto it = registry_.find(name);
  if (it == registry_.end() || !it->second.versions.count(version))
    throw ServeError(Status::kUnknownModel,
                     "set_active: no model '" + name + "' version '" +
                         version + "'");
  it->second.active = version;
}

void ModelServer::unload_model(const std::string& name,
                               const std::string& version) {
  std::shared_ptr<ModelVersion> retired;
  {
    std::unique_lock lock(registry_mutex_);
    auto it = registry_.find(name);
    if (it == registry_.end()) return;
    auto vit = it->second.versions.find(version);
    if (vit == it->second.versions.end()) return;
    retired = std::move(vit->second);
    it->second.versions.erase(vit);
    if (it->second.active == version) {
      // Newest remaining version (map order) inherits the alias.
      it->second.active = it->second.versions.empty()
                              ? std::string()
                              : it->second.versions.rbegin()->first;
    }
    if (it->second.versions.empty()) registry_.erase(it);
  }
  retire(retired);
  counters_.on_unload();
}

void ModelServer::hot_swap(const std::string& name,
                           const std::string& version,
                           const std::string& artifact_path) {
  hot_swap(name, version, artifact_path, options_.deploy);
}

void ModelServer::hot_swap(const std::string& name,
                           const std::string& version,
                           const std::string& artifact_path,
                           const deploy::DeployOptions& deploy) {
  std::shared_ptr<ModelVersion> incoming =
      build_version(name, version, artifact_path, deploy);
  std::shared_ptr<ModelVersion> outgoing;
  {
    std::unique_lock lock(registry_mutex_);
    if (closed_) throw ServeError(Status::kClosed, "hot_swap after close()");
    ModelState& state = registry_[name];
    if (!state.versions.emplace(version, incoming).second)
      throw std::runtime_error("ModelServer: model '" + name + "' version '" +
                               version + "' already loaded");
    const std::string old_active = state.active;
    state.active = version;
    if (!old_active.empty() && old_active != version) {
      auto vit = state.versions.find(old_active);
      if (vit != state.versions.end()) {
        outgoing = std::move(vit->second);
        state.versions.erase(vit);
      }
    }
  }
  counters_.on_load();
  counters_.on_swap();
  // New traffic already routes to `version`; now drain the old fleet so
  // every future it accepted resolves, then let it go.
  retire(outgoing);
}

void ModelServer::retire(const std::shared_ptr<ModelVersion>& mv) {
  if (!mv) return;
  for (const auto& entry : mv->entries) {
    std::vector<std::shared_ptr<TenantUnit>> units;
    {
      std::lock_guard<std::mutex> lock(entry->units_mutex);
      entry->retired = true;  // late submits re-resolve on the registry
      units.reserve(entry->units.size());
      for (auto& [tenant, unit] : entry->units)
        units.push_back(std::move(unit));
      entry->units.clear();
    }
    for (auto& unit : units) {
      unit->close();  // drain: every queued future resolves
      if (unit->batcher) {
        const BatcherCounters& c = unit->batcher->counters();
        counters_.on_drained(c.submitted(), c.completed(), c.timeouts());
      } else if (unit->cluster) {
        const ClusterCounters& c = unit->cluster->counters();
        counters_.on_drained(c.submitted(),
                             c.succeeded() + c.failed() + c.timeouts() +
                                 c.shed(),
                             c.timeouts());
      }
    }
  }
}

void ModelServer::close() {
  std::vector<std::shared_ptr<ModelVersion>> versions;
  {
    std::unique_lock lock(registry_mutex_);
    if (closed_) return;
    closed_ = true;
    for (auto& [name, state] : registry_)
      for (auto& [version, mv] : state.versions)
        versions.push_back(std::move(mv));
    registry_.clear();
  }
  for (const auto& mv : versions) retire(mv);
  if (exporter_) exporter_->stop();
}

bool ModelServer::closed() const {
  std::shared_lock lock(registry_mutex_);
  return closed_;
}

// ---- tenants ----------------------------------------------------------------

void ModelServer::register_tenant(TenantConfig config) {
  RIPPLE_CHECK(!config.id.empty()) << "register_tenant: id must be set";
  const std::string id = config.id;  // keyed before config is moved from
  // Reconfiguration swaps the map's reference; requests mid-submit keep
  // their own shared_ptr to the old Tenant, so it outlives them.
  std::unique_lock lock(tenants_mutex_);
  tenants_[id] = std::make_shared<Tenant>(std::move(config));
}

std::shared_ptr<Tenant> ModelServer::resolve_tenant(const std::string& id) {
  {
    std::shared_lock lock(tenants_mutex_);
    auto it = tenants_.find(id);
    if (it != tenants_.end()) return it->second;
  }
  if (!options_.auto_register_tenants || id.empty()) return nullptr;
  std::unique_lock lock(tenants_mutex_);
  auto& slot = tenants_[id];
  if (!slot) {
    TenantConfig config;
    config.id = id;
    config.quota = options_.default_quota;
    slot = std::make_shared<Tenant>(std::move(config));
  }
  return slot;
}

// ---- serving ----------------------------------------------------------------

std::shared_ptr<ModelServer::ModelVersion> ModelServer::resolve(
    const ModelRef& ref, std::string* error) const {
  std::shared_lock lock(registry_mutex_);
  if (closed_) throw ServeError(Status::kClosed, "submit after close()");
  auto it = registry_.find(ref.name);
  if (it == registry_.end()) {
    *error = "no model named '" + ref.name + "'";
    return nullptr;
  }
  const std::string& version =
      ref.version.empty() ? it->second.active : ref.version;
  auto vit = it->second.versions.find(version);
  if (vit == it->second.versions.end()) {
    *error = "model '" + ref.name + "' has no version '" + version + "'";
    return nullptr;
  }
  return vit->second;
}

ModelServer::EntryState* ModelServer::pick_entry(
    ModelVersion& mv, const std::string& entry) const {
  if (!entry.empty()) {
    for (const auto& e : mv.entries)
      if (e->name == entry) return e.get();
    return nullptr;
  }
  if (mv.entries.size() == 1) return mv.entries.front().get();
  // Deterministic weighted round-robin over the manifest weights: request
  // k lands in the entry whose cumulative-weight bucket contains
  // k mod total — exact proportions, no RNG on the hot path.
  const uint64_t total = mv.pick_upper.back();
  const uint64_t slot =
      mv.route_counter.fetch_add(1, std::memory_order_relaxed) % total;
  for (size_t i = 0; i < mv.entries.size(); ++i)
    if (slot < mv.pick_upper[i]) return mv.entries[i].get();
  return mv.entries.back().get();
}

std::shared_ptr<ModelServer::TenantUnit> ModelServer::unit_for(
    ModelVersion& mv, EntryState& entry, Tenant& tenant) {
  std::lock_guard<std::mutex> lock(entry.units_mutex);
  if (entry.retired)
    throw ServeError(Status::kClosed,
                     "version retired while routing (hot swap)");
  auto& slot = entry.units[tenant.id()];
  if (slot) return slot;

  // First request of this tenant for this (version, entry): open its unit
  // under the tenant's seed salt — an isolated, deterministic MC stream.
  SessionOptions session = mv.deploy.session.has_value()
                               ? *mv.deploy.session
                               : entry.master.session_defaults;
  session.seed += tenant.seed_salt();
  auto unit = std::make_shared<TenantUnit>();
  unit->tenant = tenant.id();
  if (options_.replicas > 1) {
    ClusterOptions co = options_.cluster;
    co.replicas = options_.replicas;
    co.deploy = mv.deploy;
    co.deploy.session = session;
    co.deploy.manifest_entry = entry.name;
    co.deploy.crossbar.seed += tenant.seed_salt();
    unit->cluster =
        std::make_unique<ClusterController>(mv.artifact_path, co);
  } else {
    deploy::DeployOptions d = mv.deploy;
    d.session = session;
    d.crossbar.seed += tenant.seed_salt();
    unit->session =
        InferenceSession::open(deploy::replicate(entry.master), d);
    unit->batcher = std::make_unique<AsyncBatcher>(*unit->session);
  }
  slot = std::move(unit);
  return slot;
}

std::future<Prediction> ModelServer::submit(Request request) {
  return submit_routed(std::move(request), nullptr);
}

std::future<Prediction> ModelServer::submit_routed(Request request,
                                                   Routed* routed) {
  const auto now = std::chrono::steady_clock::now();
  std::shared_ptr<Tenant> tenant = resolve_tenant(request.tenant);
  if (tenant == nullptr) {
    counters_.on_quota_rejected();
    return failed_future(Status::kQuotaExceeded,
                         "tenant '" + request.tenant +
                             "' is not registered (auto-registration off)");
  }
  if (!tenant->admit(now)) {
    counters_.on_quota_rejected();
    return failed_future(Status::kQuotaExceeded,
                         "tenant '" + request.tenant +
                             "' exceeded its rate quota");
  }
  auto deadline = request.deadline;
  if (deadline == std::chrono::steady_clock::time_point::max() &&
      options_.default_timeout_us > 0) {
    deadline = now + std::chrono::microseconds(options_.default_timeout_us);
  }

  // Front-door trace context: owned (finished) by whichever layer resolves
  // the request's promise — the unit's cluster, or its batcher. With
  // tracing off this is one branch.
  trace::TraceContextPtr tctx;
  trace::Tracer& tracer = trace::Tracer::instance();
  if (tracer.enabled()) {
    tctx = tracer.begin_trace(request.tenant,
                              options_.replicas > 1
                                  ? trace::FinishLayer::kCluster
                                  : trace::FinishLayer::kBatcher);
  }
  // Admission failures after this point resolve the future right here, so
  // the server both records the span and finishes the context.
  const auto admission_failed = [&](Status status, const std::string& what) {
    if (tctx) {
      tracer.record_span(tctx, trace::Stage::kAdmission, now,
                         std::chrono::steady_clock::now());
      tracer.finish(tctx);
    }
    return failed_future(status, what);
  };

  // A submit can race a hot swap: the version resolved under the shared
  // lock may be retired (its units closed) before the unit accepts the
  // request. The retired path surfaces as kClosed — re-resolve on the
  // fresh registry, which now aliases the new active version. Bounded:
  // each retry means a whole swap completed in the window.
  for (int attempt = 0; attempt < 3; ++attempt) {
    std::string error;
    std::shared_ptr<ModelVersion> mv = resolve(request.model, &error);
    if (!mv) {
      counters_.on_unknown_model();
      return admission_failed(Status::kUnknownModel, error);
    }
    EntryState* entry = pick_entry(*mv, request.model.entry);
    if (entry == nullptr) {
      counters_.on_unknown_model();
      return admission_failed(Status::kUnknownModel,
                              "model '" + mv->name + "' version '" +
                                  mv->version + "' has no entry '" +
                                  request.model.entry + "'");
    }
    try {
      // The shared_ptr keeps the unit alive even if a concurrent retire()
      // drops the entry's reference right now; a retired unit's submit
      // observes its closed batcher/cluster and lands in the catch below.
      std::shared_ptr<TenantUnit> unit = unit_for(*mv, *entry, *tenant);
      std::future<Prediction> future =
          unit->submit(request.input, deadline, tctx);
      tenant->on_submit();
      counters_.on_submit();
      if (tctx) {
        // Admission covers tenant/model/entry resolution through unit
        // accept; the unit recorded queue-wait onward into the same
        // context.
        tracer.record_span(tctx, trace::Stage::kAdmission, now,
                           std::chrono::steady_clock::now());
      }
      if (routed != nullptr) {
        routed->version = mv->version;
        routed->entry = entry->name;
      }
      return future;
    } catch (const ServeError& e) {
      if (e.status() != Status::kClosed) throw;
      // Raced a swap; loop re-resolves against the new registry state.
    }
  }
  // The server is still open — per the submit() contract this failure
  // arrives through the future, not a throw (kClosed throws are reserved
  // for close()).
  return admission_failed(
      Status::kOverloaded,
      "ModelServer::submit raced concurrent hot swaps repeatedly");
}

Response ModelServer::serve(Request request) {
  Response response;
  response.request_id = request.id;
  response.model_name = request.model.name;
  const auto start = std::chrono::steady_clock::now();
  const auto fill_latency = [&] {
    response.latency_us =
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start)
            .count();
  };
  try {
    // The request goes through unpinned — a version-less request that
    // races a hot swap re-resolves onto the new active version inside
    // submit_routed, which reports back what actually served it so the
    // response metadata and the routing always agree.
    Routed routed;
    std::future<Prediction> future =
        submit_routed(std::move(request), &routed);
    response.model_version = routed.version;
    response.model_entry = routed.entry;
    response.prediction = future.get();
    response.status = Status::kOk;
  } catch (const ServeError& e) {
    response.status = e.status();
    response.error = e.what();
  }
  fill_latency();
  return response;
}

// ---- observability ----------------------------------------------------------

std::vector<UnitMetricsRow> ModelServer::unit_metrics() const {
  std::vector<UnitMetricsRow> rows;
  std::shared_lock lock(registry_mutex_);
  for (const auto& [name, state] : registry_) {
    for (const auto& [version, mv] : state.versions) {
      for (const auto& entry : mv->entries) {
        std::lock_guard<std::mutex> units_lock(entry->units_mutex);
        for (const auto& [tenant, unit] : entry->units) {
          UnitMetricsRow row;
          row.model = name;
          row.version = version;
          row.entry = entry->name;
          row.tenant = tenant;
          if (unit->batcher) {
            const BatcherCounters& c = unit->batcher->counters();
            row.submitted = c.submitted();
            row.completed = c.completed();
            row.timeouts = c.timeouts();
            row.batches = c.batches();
            row.queue_depth = c.queue_depth();
            row.latency = c.latency().snapshot();
            row.analog = c.analog_latency().snapshot();
            row.uncertainty = c.uncertainty().snapshot();
            if (unit->session) {
              row.plan_ops = unit->session->plan_op_profiles();
            }
          } else if (unit->cluster) {
            const ClusterCounters& c = unit->cluster->counters();
            row.cluster = true;
            row.submitted = c.submitted();
            row.completed =
                c.succeeded() + c.failed() + c.timeouts() + c.shed();
            row.timeouts = c.timeouts();
            row.queue_depth = unit->cluster->queue_depth();
            row.latency = c.latency().snapshot();
            row.cluster_succeeded = c.succeeded();
            row.cluster_failed = c.failed();
            row.cluster_shed = c.shed();
            row.cluster_retries = c.retries();
            row.cluster_restarts = c.restarts();
            // Per-replica drift, and the most-drifted replica's snapshot
            // as the unit-level uncertainty view (the chip instance an
            // operator should look at first).
            const std::vector<NodeMetrics> nodes = unit->cluster->metrics();
            row.replica_drift.reserve(nodes.size());
            double worst = -1.0;
            for (const NodeMetrics& n : nodes) {
              row.replica_drift.push_back(n.uncertainty_drift);
              if (std::abs(n.uncertainty_drift) > worst) {
                worst = std::abs(n.uncertainty_drift);
                row.uncertainty.count = n.uncertainty_count;
                row.uncertainty.entropy_fast = n.entropy_fast;
                row.uncertainty.entropy_baseline = n.entropy_baseline;
                row.uncertainty.variance_fast = n.variance_fast;
                row.uncertainty.variance_baseline = n.variance_baseline;
                row.uncertainty.drift = n.uncertainty_drift;
              }
            }
          }
          rows.push_back(std::move(row));
        }
      }
    }
  }
  return rows;
}

std::vector<TenantMetricsRow> ModelServer::tenant_metrics() const {
  // Unit rows first (registry lock), then the tenant rollup (tenant
  // lock) — never both locks at once.
  const std::vector<UnitMetricsRow> units = unit_metrics();
  std::vector<TenantMetricsRow> rows;
  std::shared_lock lock(tenants_mutex_);
  rows.reserve(tenants_.size());
  for (const auto& [id, tenant] : tenants_) {
    TenantMetricsRow row;
    row.tenant = id;
    row.submitted = tenant->submitted();
    row.quota_rejected = tenant->quota_rejected();
    for (const UnitMetricsRow& u : units)
      if (u.tenant == id) merge_snapshot(row.latency, u.latency);
    rows.push_back(std::move(row));
  }
  return rows;
}

int ModelServer::metrics_port() const {
  return exporter_ ? exporter_->port() : -1;
}

std::vector<ModelInfo> ModelServer::models() const {
  std::vector<ModelInfo> infos;
  std::shared_lock lock(registry_mutex_);
  for (const auto& [name, state] : registry_) {
    for (const auto& [version, mv] : state.versions) {
      ModelInfo info;
      info.name = name;
      info.version = version;
      info.active = version == state.active;
      for (const auto& entry : mv->entries)
        info.entries.push_back({entry->name, entry->weight});
      infos.push_back(std::move(info));
    }
  }
  return infos;
}

}  // namespace ripple::serve
