#include "serve/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace ripple::serve {

namespace {

/// Monotonic max update without a CAS loop footgun.
void update_max(std::atomic<uint64_t>& slot, uint64_t value) {
  uint64_t seen = slot.load(std::memory_order_relaxed);
  while (seen < value &&
         !slot.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

size_t LatencyHistogram::bucket_for(int64_t us) {
  if (us <= 0) return 0;
  size_t bucket = 0;
  // bucket b covers [2^(b-1), 2^b): 1µs → bucket 1, 1000µs → bucket 10.
  while (us > 0 && bucket + 1 < kBuckets) {
    us >>= 1;
    ++bucket;
  }
  return bucket;
}

int64_t LatencyHistogram::bucket_lower_us(size_t bucket) {
  return bucket == 0 ? 0 : int64_t{1} << (bucket - 1);
}

int64_t LatencyHistogram::bucket_upper_us(size_t bucket) {
  return int64_t{1} << bucket;
}

void LatencyHistogram::record(int64_t us) {
  buckets_[bucket_for(us)].fetch_add(1, relaxed);
  total_us_.fetch_add(static_cast<uint64_t>(std::max<int64_t>(0, us)),
                      relaxed);
}

uint64_t LatencyHistogram::count() const {
  uint64_t n = 0;
  for (const auto& b : buckets_) n += b.load(relaxed);
  return n;
}

double LatencyHistogram::mean_us() const {
  const uint64_t n = count();
  if (n == 0) return 0.0;
  return static_cast<double>(total_us_.load(relaxed)) /
         static_cast<double>(n);
}

double LatencyHistogram::percentile(double pct) const {
  RIPPLE_CHECK(pct >= 0.0 && pct <= 100.0)
      << "percentile " << pct << " out of [0, 100]";
  uint64_t counts[kBuckets];
  uint64_t n = 0;
  for (size_t b = 0; b < kBuckets; ++b) {
    counts[b] = buckets_[b].load(relaxed);
    n += counts[b];
  }
  if (n == 0) return 0.0;
  // Rank of the requested percentile (1-based, nearest-rank), then linear
  // interpolation between the crossing bucket's bounds.
  const double rank = pct / 100.0 * static_cast<double>(n);
  uint64_t seen = 0;
  for (size_t b = 0; b < kBuckets; ++b) {
    if (counts[b] == 0) continue;
    if (static_cast<double>(seen + counts[b]) >= rank) {
      const double into =
          std::max(0.0, rank - static_cast<double>(seen)) /
          static_cast<double>(counts[b]);
      const double lower = static_cast<double>(bucket_lower_us(b));
      const double upper = static_cast<double>(bucket_upper_us(b));
      return lower + into * (upper - lower);
    }
    seen += counts[b];
  }
  return static_cast<double>(bucket_upper_us(kBuckets - 1));
}

uint64_t LatencyHistogram::bucket(size_t b) const {
  RIPPLE_CHECK(b < kBuckets) << "latency bucket " << b << " out of range";
  return buckets_[b].load(relaxed);
}

void LatencyHistogram::merge_from(const LatencyHistogram& other) {
  for (size_t b = 0; b < kBuckets; ++b)
    buckets_[b].fetch_add(other.buckets_[b].load(relaxed), relaxed);
  total_us_.fetch_add(other.total_us_.load(relaxed), relaxed);
}

void LatencyHistogram::reset() {
  for (auto& b : buckets_) b.store(0, relaxed);
  total_us_.store(0, relaxed);
}

LatencyHistogram::Snapshot LatencyHistogram::snapshot() const {
  Snapshot s;
  for (size_t b = 0; b < kBuckets; ++b) {
    s.buckets[b] = buckets_[b].load(relaxed);
    s.count += s.buckets[b];
  }
  s.total_us = total_us_.load(relaxed);
  return s;
}

void UncertaintyMonitor::ewma_update(std::atomic<uint64_t>& slot, double value,
                                     double alpha, bool first) {
  uint64_t seen = slot.load(relaxed);
  while (true) {
    const double current = std::bit_cast<double>(seen);
    const double next =
        first ? value : current + alpha * (value - current);
    if (slot.compare_exchange_weak(seen, std::bit_cast<uint64_t>(next),
                                   relaxed)) {
      return;
    }
  }
}

void UncertaintyMonitor::record(double entropy, double variance) {
  if (!std::isfinite(entropy)) entropy = 0.0;
  if (!std::isfinite(variance)) variance = 0.0;
  // Seed every EWMA with the first observation so the baseline doesn't
  // spend ~1/alpha requests climbing from zero.
  const bool first = count_.fetch_add(1, relaxed) == 0;
  ewma_update(entropy_fast_, entropy, kFastAlpha, first);
  ewma_update(entropy_baseline_, entropy, kBaselineAlpha, first);
  ewma_update(variance_fast_, variance, kFastAlpha, first);
  ewma_update(variance_baseline_, variance, kBaselineAlpha, first);
}

UncertaintyMonitor::Snapshot UncertaintyMonitor::snapshot() const {
  Snapshot s;
  s.count = count_.load(relaxed);
  s.entropy_fast = std::bit_cast<double>(entropy_fast_.load(relaxed));
  s.entropy_baseline = std::bit_cast<double>(entropy_baseline_.load(relaxed));
  s.variance_fast = std::bit_cast<double>(variance_fast_.load(relaxed));
  s.variance_baseline =
      std::bit_cast<double>(variance_baseline_.load(relaxed));
  if (std::abs(s.entropy_baseline) > 1e-9) {
    s.drift = s.entropy_fast / s.entropy_baseline - 1.0;
  }
  return s;
}

void UncertaintyMonitor::reset() {
  count_.store(0, relaxed);
  entropy_fast_.store(0, relaxed);
  entropy_baseline_.store(0, relaxed);
  variance_fast_.store(0, relaxed);
  variance_baseline_.store(0, relaxed);
}

namespace {

double tensor_mean(const Tensor& t) {
  if (t.numel() == 0) return 0.0;
  double sum = 0.0;
  const float* p = t.data();
  for (int64_t i = 0; i < t.numel(); ++i) sum += p[i];
  return sum / static_cast<double>(t.numel());
}

}  // namespace

void observe_uncertainty(UncertaintyMonitor& monitor, const Prediction& pred) {
  double entropy = 0.0;
  double variance = 0.0;
  if (const auto* cls = std::get_if<Classification>(&pred)) {
    entropy = tensor_mean(cls->entropy);
    variance = tensor_mean(cls->variance);
  } else if (const auto* reg = std::get_if<Regression>(&pred)) {
    // A point forecast has no categorical entropy; MC spread is the signal.
    const float* p = reg->stddev.data();
    double sum = 0.0;
    for (int64_t i = 0; i < reg->stddev.numel(); ++i)
      sum += static_cast<double>(p[i]) * static_cast<double>(p[i]);
    if (reg->stddev.numel() > 0)
      variance = sum / static_cast<double>(reg->stddev.numel());
  } else if (const auto* seg = std::get_if<Segmentation>(&pred)) {
    const float* p = seg->mean_probs.data();
    double hsum = 0.0;
    double vsum = 0.0;
    for (int64_t i = 0; i < seg->mean_probs.numel(); ++i) {
      const double q = std::clamp(static_cast<double>(p[i]), 1e-12, 1.0 - 1e-12);
      hsum += -(q * std::log(q) + (1.0 - q) * std::log(1.0 - q));
      vsum += q * (1.0 - q);
    }
    if (seg->mean_probs.numel() > 0) {
      entropy = hsum / static_cast<double>(seg->mean_probs.numel());
      variance = vsum / static_cast<double>(seg->mean_probs.numel());
    }
  }
  monitor.record(entropy, variance);
}

size_t BatcherCounters::bucket_for(size_t requests) {
  if (requests <= 1) return 0;
  size_t bucket = 1;
  size_t upper = 2;  // inclusive upper bound of `bucket`
  while (requests > upper && bucket + 1 < kHistogramBuckets) {
    upper *= 2;
    ++bucket;
  }
  return bucket;
}

void BatcherCounters::on_submit() {
  submitted_.fetch_add(1, relaxed);
  const int64_t depth = queue_depth_.fetch_add(1, relaxed) + 1;
  update_max(max_queue_depth_, static_cast<uint64_t>(depth));
}

void BatcherCounters::on_reject() { rejected_.fetch_add(1, relaxed); }

void BatcherCounters::on_dispatch(size_t batch_requests, size_t batch_rows) {
  batches_.fetch_add(1, relaxed);
  dispatched_.fetch_add(batch_requests, relaxed);
  dispatched_rows_.fetch_add(batch_rows, relaxed);
  queue_depth_.fetch_sub(static_cast<int64_t>(batch_requests), relaxed);
  update_max(max_batch_, batch_requests);
  update_max(max_rows_, batch_rows);
  histogram_[bucket_for(batch_requests)].fetch_add(1, relaxed);
}

void BatcherCounters::on_complete(size_t batch_requests) {
  completed_.fetch_add(batch_requests, relaxed);
}

void BatcherCounters::on_timeout() { timeouts_.fetch_add(1, relaxed); }

void BatcherCounters::on_expire(size_t requests) {
  queue_depth_.fetch_sub(static_cast<int64_t>(requests), relaxed);
}

void BatcherCounters::on_effective_delay(int64_t us) {
  effective_delay_us_.store(us, relaxed);
}

double BatcherCounters::mean_batch_requests() const {
  const uint64_t batches = batches_.load(relaxed);
  if (batches == 0) return 0.0;
  return static_cast<double>(dispatched_.load(relaxed)) /
         static_cast<double>(batches);
}

double BatcherCounters::mean_batch_rows() const {
  const uint64_t batches = batches_.load(relaxed);
  if (batches == 0) return 0.0;
  return static_cast<double>(dispatched_rows_.load(relaxed)) /
         static_cast<double>(batches);
}

uint64_t BatcherCounters::histogram_bucket(size_t bucket) const {
  RIPPLE_CHECK(bucket < kHistogramBuckets)
      << "histogram bucket " << bucket << " out of range";
  return histogram_[bucket].load(relaxed);
}

// Each metric walks the test set in batches of the session's chunk size
// and reduces as it goes, so peak memory is one chunk's stacked outputs —
// not the whole set's — matching the legacy per-batch evaluation loops.

double accuracy(const InferenceSession& session,
                const data::ClassificationData& test) {
  int64_t correct = 0;
  for (auto [begin, end] :
       data::batch_ranges(test.size(), session.chunk_rows())) {
    Tensor xb = data::slice_rows(test.x, begin, end - begin);
    const Classification mc = session.classify(xb);
    for (int64_t i = begin; i < end; ++i)
      if (mc.predictions[static_cast<size_t>(i - begin)] ==
          test.y[static_cast<size_t>(i)])
        ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(test.size());
}

double rmse(const InferenceSession& session, const data::SeriesData& test) {
  double sq_sum = 0.0;
  int64_t count = 0;
  for (auto [begin, end] :
       data::batch_ranges(test.size(), session.chunk_rows())) {
    Tensor xb = data::slice_rows(test.windows, begin, end - begin);
    Tensor yb = data::slice_rows(test.targets, begin, end - begin);
    const Regression mc = session.regress(xb);
    const float* pp = mc.mean.data();
    const float* pt = yb.data();
    for (int64_t i = 0; i < yb.numel(); ++i) {
      const double d = pp[i] - pt[i];
      sq_sum += d * d;
      ++count;
    }
  }
  return std::sqrt(sq_sum / static_cast<double>(count));
}

double miou(const InferenceSession& session,
            const data::SegmentationData& test) {
  // Aggregate intersection/union over the whole set, not per batch.
  int64_t inter_fg = 0;
  int64_t union_fg = 0;
  int64_t inter_bg = 0;
  int64_t union_bg = 0;
  for (auto [begin, end] :
       data::batch_ranges(test.size(), session.chunk_rows())) {
    Tensor xb = data::slice_rows(test.images, begin, end - begin);
    Tensor yb = data::slice_rows(test.masks, begin, end - begin);
    const Segmentation mc = session.segment(xb);
    const float* pp = mc.mean_probs.data();
    const float* pt = yb.data();
    for (int64_t i = 0; i < mc.mean_probs.numel(); ++i) {
      const bool p = pp[i] >= 0.5f;
      const bool t = pt[i] >= 0.5f;
      if (p && t) ++inter_fg;
      if (p || t) ++union_fg;
      if (!p && !t) ++inter_bg;
      if (!p || !t) ++union_bg;
    }
  }
  const double iou_fg =
      union_fg > 0 ? static_cast<double>(inter_fg) / union_fg : 1.0;
  const double iou_bg =
      union_bg > 0 ? static_cast<double>(inter_bg) / union_bg : 1.0;
  return 0.5 * (iou_fg + iou_bg);
}

}  // namespace ripple::serve
