#include "serve/metrics.h"

#include <cmath>

namespace ripple::serve {

// Each metric walks the test set in batches of the session's chunk size
// and reduces as it goes, so peak memory is one chunk's stacked outputs —
// not the whole set's — matching the legacy per-batch evaluation loops.

double accuracy(const InferenceSession& session,
                const data::ClassificationData& test) {
  int64_t correct = 0;
  for (auto [begin, end] :
       data::batch_ranges(test.size(), session.chunk_rows())) {
    Tensor xb = data::slice_rows(test.x, begin, end - begin);
    const Classification mc = session.classify(xb);
    for (int64_t i = begin; i < end; ++i)
      if (mc.predictions[static_cast<size_t>(i - begin)] ==
          test.y[static_cast<size_t>(i)])
        ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(test.size());
}

double rmse(const InferenceSession& session, const data::SeriesData& test) {
  double sq_sum = 0.0;
  int64_t count = 0;
  for (auto [begin, end] :
       data::batch_ranges(test.size(), session.chunk_rows())) {
    Tensor xb = data::slice_rows(test.windows, begin, end - begin);
    Tensor yb = data::slice_rows(test.targets, begin, end - begin);
    const Regression mc = session.regress(xb);
    const float* pp = mc.mean.data();
    const float* pt = yb.data();
    for (int64_t i = 0; i < yb.numel(); ++i) {
      const double d = pp[i] - pt[i];
      sq_sum += d * d;
      ++count;
    }
  }
  return std::sqrt(sq_sum / static_cast<double>(count));
}

double miou(const InferenceSession& session,
            const data::SegmentationData& test) {
  // Aggregate intersection/union over the whole set, not per batch.
  int64_t inter_fg = 0;
  int64_t union_fg = 0;
  int64_t inter_bg = 0;
  int64_t union_bg = 0;
  for (auto [begin, end] :
       data::batch_ranges(test.size(), session.chunk_rows())) {
    Tensor xb = data::slice_rows(test.images, begin, end - begin);
    Tensor yb = data::slice_rows(test.masks, begin, end - begin);
    const Segmentation mc = session.segment(xb);
    const float* pp = mc.mean_probs.data();
    const float* pt = yb.data();
    for (int64_t i = 0; i < mc.mean_probs.numel(); ++i) {
      const bool p = pp[i] >= 0.5f;
      const bool t = pt[i] >= 0.5f;
      if (p && t) ++inter_fg;
      if (p || t) ++union_fg;
      if (!p && !t) ++inter_bg;
      if (!p || !t) ++union_bg;
    }
  }
  const double iou_fg =
      union_fg > 0 ? static_cast<double>(inter_fg) / union_fg : 1.0;
  const double iou_bg =
      union_bg > 0 ? static_cast<double>(inter_bg) / union_bg : 1.0;
  return 0.5 * (iou_fg + iou_bg);
}

}  // namespace ripple::serve
