#include "serve/prom.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "deploy/backend_kind.h"
#include "deploy/plan.h"
#include "serve/server.h"
#include "serve/trace.h"
#include "tensor/gemm.h"

// Stamped by CMake from `git describe`; builds outside a checkout fall
// back to "unknown" rather than fail.
#ifndef RIPPLE_GIT_DESCRIBE
#define RIPPLE_GIT_DESCRIBE "unknown"
#endif

namespace ripple::serve {

namespace {

// Prometheus label values escape backslash, double-quote, and newline.
std::string escape_label(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string unit_labels(const UnitMetricsRow& row) {
  std::ostringstream out;
  out << "model=\"" << escape_label(row.model) << "\",version=\""
      << escape_label(row.version) << "\",entry=\""
      << escape_label(row.entry) << "\",tenant=\""
      << escape_label(row.tenant) << "\"";
  return out.str();
}

// One histogram exposition: cumulative le-buckets over the log2 edges,
// +Inf, then _sum (µs) and _count.
void render_histogram(std::ostringstream& out, const std::string& name,
                      const std::string& labels,
                      const LatencyHistogram::Snapshot& snapshot) {
  uint64_t cumulative = 0;
  // The last bucket is open-ended; its edge is the +Inf line below.
  for (size_t b = 0; b + 1 < LatencyHistogram::kBuckets; ++b) {
    cumulative += snapshot.buckets[b];
    out << name << "_bucket{" << labels << (labels.empty() ? "" : ",")
        << "le=\"" << LatencyHistogram::bucket_upper_us(b) << "\"} "
        << cumulative << "\n";
  }
  cumulative += snapshot.buckets[LatencyHistogram::kBuckets - 1];
  out << name << "_bucket{" << labels << (labels.empty() ? "" : ",")
      << "le=\"+Inf\"} " << cumulative << "\n";
  out << name << "_sum{" << labels << "} " << snapshot.total_us << "\n";
  out << name << "_count{" << labels << "} " << snapshot.count << "\n";
}

}  // namespace

bool write_all(int fd, const void* data, size_t size) {
  const char* p = static_cast<const char*>(data);
  size_t off = 0;
  while (off < size) {
    const ssize_t n = ::send(fd, p + off, size - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;  // interrupted, not dead: retry
      return false;                  // EPIPE/ECONNRESET/...: peer is gone
    }
    if (n == 0) return false;
    off += static_cast<size_t>(n);
  }
  return true;
}

MetricsExporter::MetricsExporter(const ModelServer& server)
    : server_(server) {}

MetricsExporter::~MetricsExporter() { stop(); }

std::string MetricsExporter::render() const {
  std::ostringstream out;
  const ServerCounters& c = server_.counters();

  out << "# HELP ripple_server_requests_total Requests by admission "
         "outcome.\n"
      << "# TYPE ripple_server_requests_total counter\n"
      << "ripple_server_requests_total{result=\"accepted\"} "
      << c.submitted() << "\n"
      << "ripple_server_requests_total{result=\"quota_rejected\"} "
      << c.quota_rejected() << "\n"
      << "ripple_server_requests_total{result=\"unknown_model\"} "
      << c.unknown_model() << "\n";

  out << "# HELP ripple_server_registry_ops_total Registry lifecycle "
         "operations.\n"
      << "# TYPE ripple_server_registry_ops_total counter\n"
      << "ripple_server_registry_ops_total{op=\"load\"} " << c.loads()
      << "\n"
      << "ripple_server_registry_ops_total{op=\"unload\"} " << c.unloads()
      << "\n"
      << "ripple_server_registry_ops_total{op=\"swap\"} " << c.swaps()
      << "\n";

  out << "# HELP ripple_server_drained_requests_total Conservation ledger "
         "of retired serving units (submitted == completed once drained).\n"
      << "# TYPE ripple_server_drained_requests_total counter\n"
      << "ripple_server_drained_requests_total{outcome=\"submitted\"} "
      << c.drained_submitted() << "\n"
      << "ripple_server_drained_requests_total{outcome=\"completed\"} "
      << c.drained_completed() << "\n"
      << "ripple_server_drained_requests_total{outcome=\"timeout\"} "
      << c.drained_timeouts() << "\n";

  const std::vector<TenantMetricsRow> tenants = server_.tenant_metrics();
  out << "# HELP ripple_tenant_requests_total Admitted requests per "
         "tenant.\n"
      << "# TYPE ripple_tenant_requests_total counter\n";
  for (const TenantMetricsRow& t : tenants)
    out << "ripple_tenant_requests_total{tenant=\""
        << escape_label(t.tenant) << "\"} " << t.submitted << "\n";
  out << "# HELP ripple_tenant_quota_rejected_total Quota rejections per "
         "tenant.\n"
      << "# TYPE ripple_tenant_quota_rejected_total counter\n";
  for (const TenantMetricsRow& t : tenants)
    out << "ripple_tenant_quota_rejected_total{tenant=\""
        << escape_label(t.tenant) << "\"} " << t.quota_rejected << "\n";

  const std::vector<UnitMetricsRow> units = server_.unit_metrics();
  out << "# HELP ripple_unit_requests_total Requests per serving unit by "
         "stage.\n"
      << "# TYPE ripple_unit_requests_total counter\n";
  for (const UnitMetricsRow& u : units) {
    const std::string labels = unit_labels(u);
    out << "ripple_unit_requests_total{" << labels
        << ",stage=\"submitted\"} " << u.submitted << "\n"
        << "ripple_unit_requests_total{" << labels
        << ",stage=\"completed\"} " << u.completed << "\n"
        << "ripple_unit_requests_total{" << labels << ",stage=\"timeout\"} "
        << u.timeouts << "\n";
  }
  out << "# HELP ripple_unit_batches_total Dispatched batches per serving "
         "unit.\n"
      << "# TYPE ripple_unit_batches_total counter\n";
  for (const UnitMetricsRow& u : units)
    out << "ripple_unit_batches_total{" << unit_labels(u) << "} "
        << u.batches << "\n";
  out << "# HELP ripple_unit_queue_depth Queued-but-undispatched requests "
         "per serving unit.\n"
      << "# TYPE ripple_unit_queue_depth gauge\n";
  for (const UnitMetricsRow& u : units)
    out << "ripple_unit_queue_depth{" << unit_labels(u) << "} "
        << u.queue_depth << "\n";

  out << "# HELP ripple_unit_latency_microseconds Submit-to-completion "
         "latency per serving unit.\n"
      << "# TYPE ripple_unit_latency_microseconds histogram\n";
  for (const UnitMetricsRow& u : units)
    render_histogram(out, "ripple_unit_latency_microseconds",
                     unit_labels(u), u.latency);
  out << "# HELP ripple_unit_analog_latency_microseconds Modeled analog "
         "(ADC conversion) time per request on crossbar backends.\n"
      << "# TYPE ripple_unit_analog_latency_microseconds histogram\n";
  for (const UnitMetricsRow& u : units) {
    if (u.analog.count == 0) continue;
    render_histogram(out, "ripple_unit_analog_latency_microseconds",
                     unit_labels(u), u.analog);
  }

  out << "# HELP ripple_unit_cluster_requests_total Fleet outcomes for "
         "cluster-mode serving units.\n"
      << "# TYPE ripple_unit_cluster_requests_total counter\n";
  for (const UnitMetricsRow& u : units) {
    if (!u.cluster) continue;
    const std::string labels = unit_labels(u);
    out << "ripple_unit_cluster_requests_total{" << labels
        << ",outcome=\"succeeded\"} " << u.cluster_succeeded << "\n"
        << "ripple_unit_cluster_requests_total{" << labels
        << ",outcome=\"failed\"} " << u.cluster_failed << "\n"
        << "ripple_unit_cluster_requests_total{" << labels
        << ",outcome=\"shed\"} " << u.cluster_shed << "\n"
        << "ripple_unit_cluster_requests_total{" << labels
        << ",outcome=\"retried\"} " << u.cluster_retries << "\n";
  }
  out << "# HELP ripple_unit_cluster_restarts_total Replica restarts for "
         "cluster-mode serving units.\n"
      << "# TYPE ripple_unit_cluster_restarts_total counter\n";
  for (const UnitMetricsRow& u : units) {
    if (!u.cluster) continue;
    out << "ripple_unit_cluster_restarts_total{" << unit_labels(u) << "} "
        << u.cluster_restarts << "\n";
  }

  // ---- request tracing (serve/trace.h) -----------------------------------
  const trace::Tracer& tracer = trace::Tracer::instance();
  out << "# HELP ripple_stage_latency_microseconds Span duration per "
         "pipeline stage, over every request finished while tracing was "
         "enabled (sampling gates ring capture, not these).\n"
      << "# TYPE ripple_stage_latency_microseconds histogram\n";
  for (size_t s = 0; s < trace::kStageCount; ++s) {
    const auto stage = static_cast<trace::Stage>(s);
    const LatencyHistogram::Snapshot snap =
        tracer.stage_latency(stage).snapshot();
    if (snap.count == 0) continue;
    render_histogram(out, "ripple_stage_latency_microseconds",
                     std::string("stage=\"") + trace::stage_name(stage) +
                         "\"",
                     snap);
  }
  out << "# HELP ripple_trace_requests_total Trace contexts begun and "
         "timelines captured to the export rings.\n"
      << "# TYPE ripple_trace_requests_total counter\n"
      << "ripple_trace_requests_total{event=\"started\"} "
      << tracer.started() << "\n"
      << "ripple_trace_requests_total{event=\"captured\"} "
      << tracer.captured() << "\n";
  out << "# HELP ripple_trace_dropped_events_total Ring events overwritten "
         "before export plus spans past the per-request cap (drops never "
         "block a request).\n"
      << "# TYPE ripple_trace_dropped_events_total counter\n"
      << "ripple_trace_dropped_events_total " << tracer.dropped_events()
      << "\n";

  // ---- compiled-plan op profile (deploy::set_plan_profiling) -------------
  out << "# HELP ripple_plan_op_nanoseconds_total Accumulated compiled-plan "
         "step time by fused op; group splits GEMM-backed steps (fused "
         "epilogues included) from standalone epilogues.\n"
      << "# TYPE ripple_plan_op_nanoseconds_total counter\n";
  for (const UnitMetricsRow& u : units) {
    const std::string labels = unit_labels(u);
    for (const deploy::PlanOpProfile& op : u.plan_ops)
      out << "ripple_plan_op_nanoseconds_total{" << labels << ",op=\""
          << op.name << "\",group=\"" << deploy::op_tag_group(op.tag)
          << "\"} " << op.total_ns << "\n";
  }
  out << "# HELP ripple_plan_op_calls_total Compiled-plan step executions "
         "by fused op.\n"
      << "# TYPE ripple_plan_op_calls_total counter\n";
  for (const UnitMetricsRow& u : units) {
    const std::string labels = unit_labels(u);
    for (const deploy::PlanOpProfile& op : u.plan_ops)
      out << "ripple_plan_op_calls_total{" << labels << ",op=\"" << op.name
          << "\",group=\"" << deploy::op_tag_group(op.tag) << "\"} "
          << op.calls << "\n";
  }

  // ---- streaming uncertainty monitor -------------------------------------
  out << "# HELP ripple_unit_uncertainty_observations_total Predictions the "
         "uncertainty monitor has folded into its EWMAs.\n"
      << "# TYPE ripple_unit_uncertainty_observations_total counter\n";
  for (const UnitMetricsRow& u : units)
    out << "ripple_unit_uncertainty_observations_total{" << unit_labels(u)
        << "} " << u.uncertainty.count << "\n";
  out << "# HELP ripple_unit_uncertainty Streaming EWMAs of predictive "
         "uncertainty per serving unit: signal is entropy or MC variance, "
         "window is the fast tracker or the slow baseline.\n"
      << "# TYPE ripple_unit_uncertainty gauge\n";
  for (const UnitMetricsRow& u : units) {
    if (u.uncertainty.count == 0) continue;
    const std::string labels = unit_labels(u);
    out << "ripple_unit_uncertainty{" << labels
        << ",signal=\"entropy\",window=\"fast\"} "
        << u.uncertainty.entropy_fast << "\n"
        << "ripple_unit_uncertainty{" << labels
        << ",signal=\"entropy\",window=\"baseline\"} "
        << u.uncertainty.entropy_baseline << "\n"
        << "ripple_unit_uncertainty{" << labels
        << ",signal=\"variance\",window=\"fast\"} "
        << u.uncertainty.variance_fast << "\n"
        << "ripple_unit_uncertainty{" << labels
        << ",signal=\"variance\",window=\"baseline\"} "
        << u.uncertainty.variance_baseline << "\n";
  }
  out << "# HELP ripple_unit_uncertainty_drift Relative drift of the fast "
         "entropy EWMA against its slow baseline (0 = stable; a faulty "
         "unit pushes this away from zero).\n"
      << "# TYPE ripple_unit_uncertainty_drift gauge\n";
  for (const UnitMetricsRow& u : units)
    out << "ripple_unit_uncertainty_drift{" << unit_labels(u) << "} "
        << u.uncertainty.drift << "\n";
  out << "# HELP ripple_replica_uncertainty_drift Entropy drift per replica "
         "of cluster-mode units — a single fault-injected replica stands "
         "out here while unit-level aggregates stay muted.\n"
      << "# TYPE ripple_replica_uncertainty_drift gauge\n";
  for (const UnitMetricsRow& u : units) {
    if (!u.cluster) continue;
    const std::string labels = unit_labels(u);
    for (size_t r = 0; r < u.replica_drift.size(); ++r)
      out << "ripple_replica_uncertainty_drift{" << labels << ",replica=\""
          << r << "\"} " << u.replica_drift[r] << "\n";
  }
  return out.str();
}

std::string MetricsExporter::buildinfo() const {
  std::ostringstream out;
  out << "{\"git\":\"" << escape_label(RIPPLE_GIT_DESCRIBE)
      << "\",\"gemm_kernel\":\"" << gemm_backend_name()
      << "\",\"backends\":[\""
      << deploy::backend_name(deploy::Backend::kFp32) << "\",\""
      << deploy::backend_name(deploy::Backend::kQuantSim) << "\",\""
      << deploy::backend_name(deploy::Backend::kQuantInt8) << "\",\""
      << deploy::backend_name(deploy::Backend::kCrossbar)
      << "\"],\"tracing\":"
      << (trace::Tracer::instance().enabled() ? "true" : "false")
      << ",\"plan_profiling\":"
      << (deploy::plan_profiling_enabled() ? "true" : "false") << "}\n";
  return out.str();
}

void MetricsExporter::start(int port) {
  if (thread_.joinable()) return;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("MetricsExporter: socket() failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(fd, 16) < 0) {
    ::close(fd);
    throw std::runtime_error(
        "MetricsExporter: cannot bind 127.0.0.1:" + std::to_string(port));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0)
    port_ = static_cast<int>(ntohs(bound.sin_port));
  listen_fd_ = fd;
  stop_.store(false);
  thread_ = std::thread([this] { listener_loop(); });
}

void MetricsExporter::listener_loop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 200);
    if (ready <= 0) continue;
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;
    // One read is enough for a scrape's GET line + headers; only the
    // request path matters for routing (an unparsable request degrades
    // to the metrics exposition rather than an error).
    char buf[1024];
    const ssize_t n = ::read(conn, buf, sizeof(buf) - 1);
    std::string path = "/metrics";
    if (n > 0) {
      buf[n] = '\0';
      if (const char* sp = std::strchr(buf, ' ')) {
        if (const char* end = std::strchr(sp + 1, ' '))
          path.assign(sp + 1, end);
      }
    }
    std::string body;
    const char* content_type = "text/plain; version=0.0.4";
    if (path == "/healthz") {
      // Liveness, not readiness: answering at all is the signal.
      body = "ok\n";
      content_type = "text/plain";
    } else if (path == "/buildinfo") {
      body = buildinfo();
      content_type = "application/json";
    } else {
      body = render();
    }
    std::ostringstream response;
    response << "HTTP/1.1 200 OK\r\n"
             << "Content-Type: " << content_type << "\r\n"
             << "Content-Length: " << body.size() << "\r\n"
             << "Connection: close\r\n\r\n"
             << body;
    const std::string wire = response.str();
    // A scraper that disconnects mid-response must not take the server
    // with it: bare ::write would raise SIGPIPE (fatal by default) and
    // treated EINTR as the peer closing. write_all sends MSG_NOSIGNAL
    // and retries interrupts; a truly gone peer just drops this scrape.
    (void)write_all(conn, wire.data(), wire.size());
    ::close(conn);
  }
}

void MetricsExporter::stop() {
  if (!thread_.joinable()) return;
  stop_.store(true);
  ::shutdown(listen_fd_, SHUT_RDWR);
  thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  port_ = -1;
}

}  // namespace ripple::serve
