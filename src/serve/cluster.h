// serve::ClusterController — self-healing replica fleet behind one
// submit() front door.
//
// A single InferenceSession + AsyncBatcher is a single point of failure:
// one wedged forward (an analog tile gone bad, a stalled backend) takes
// the whole serving path with it. The controller runs N Replicas — each a
// session opened from the *same* .rpla artifact under its own seed/fault
// configuration, plus its own batcher — and turns their independent
// failure domains into fleet-level robustness:
//
//   • submit(x[, timeout]) → std::future<Prediction>, resolved **exactly
//     once** no matter what the fleet does underneath: with a result on
//     success, with ServeError{kTimeout | kReplicaDown | kOverloaded}
//     otherwise. Each accepted request is owned end-to-end by one
//     dispatcher thread — the only writer of its promise — so crashes,
//     stalls, retries and late results can never double-resolve or drop
//     a caller's future (late results from an abandoned attempt are
//     simply discarded with the attempt's future).
//
//   • Routing is load-aware power-of-two-choices: two candidates are
//     drawn from the routable pool (Healthy preferred; Degraded only
//     when no Healthy replica has capacity; Quarantined never) and the
//     one with the lower load() — in-flight attempts + batcher queue
//     depth — wins. RoutingDecision exposes the choice for tests.
//
//   • Failed attempts retry with exponential backoff on a *re-routed*
//     replica, up to max_attempts within the request's deadline. The
//     failure feedback drives the replica health machine (replica.h), so
//     a crashing replica quarantines itself out of the pool after a few
//     requests instead of eating every retry.
//
//   • Admission control sheds load instead of collapsing: when the
//     controller queue is full, or every routable replica is saturated
//     (load ≥ max_inflight_per_replica), submit() returns an
//     already-failed future with ServeError{kOverloaded} — the caller
//     hears "back off" in microseconds rather than a timeout later. If
//     *no* replica is routable (whole fleet quarantined) requests are
//     still accepted: the fleet may heal within their deadline; that is
//     the graceful-degradation path, not the overload path.
//
//   • A heartbeat thread snapshots NodeMetrics and probes Quarantined
//     replicas with a canary input (ClusterOptions::probe_input, or the
//     last successfully served input). probe_successes consecutive green
//     probes return the replica to Healthy; restart_after_probe_failures
//     consecutive red ones trigger a hot restart — kill the session,
//     respawn it from the artifact (auto_restart).
//
// close() (and the destructor) drains: queued requests are still served,
// then dispatchers join, then the replicas close. Every future ever
// returned by submit() is resolved — requests are never silently dropped.
//
// Verified by tests/cluster_test.cpp: a chaos harness injects crashes,
// stalls and latency ramps through the replicas' forward hooks and
// asserts the exactly-once contract and fleet re-convergence under TSAN.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "deploy/deploy.h"
#include "serve/replica.h"
#include "serve/trace.h"

namespace ripple::serve {

struct ClusterOptions {
  /// Fleet size (≥ 1).
  int replicas = 2;
  /// How each replica opens the artifact (backend, session overrides,
  /// crossbar fault knobs). With per_replica_seeds, replica i serves under
  /// session seed base+i and crossbar seed base+i — the fleet is a
  /// Monte-Carlo ensemble of differently-faulted chip instances, matching
  /// the paper's chip-to-chip variation model.
  deploy::DeployOptions deploy;
  bool per_replica_seeds = true;

  /// Dispatcher threads; each owns one accepted request end-to-end, so
  /// dispatch_threads × dispatch_chunk bounds cluster-level concurrency
  /// (queued requests wait for a free dispatcher).
  int dispatch_threads = 4;
  /// Tasks a dispatcher pops per wakeup. The chunk's first attempts are
  /// all routed and submitted before any result is awaited, so chunk
  /// members coalesce into the same replica batches and the dispatcher
  /// pays one queue wakeup (and usually one future wait) per chunk
  /// instead of per request. 1 = classic one-task-per-wakeup dispatch.
  /// Retries still happen one task at a time during the collect pass.
  int dispatch_chunk = 8;

  /// Per-request deadline when submit() is called without one (0 = none).
  int64_t default_timeout_us = 2'000'000;
  /// Per-attempt budget before the attempt is abandoned and re-routed
  /// (stall detection). 0 = split the remaining deadline evenly across the
  /// remaining attempts.
  int64_t attempt_timeout_us = 0;
  /// Attempts per request (first try + retries), each on a fresh route.
  int max_attempts = 3;
  /// Exponential backoff between attempts: first wait, doubling, capped.
  int64_t retry_backoff_us = 200;
  int64_t max_backoff_us = 20'000;

  /// Admission control: a routable replica with load() at this bound is
  /// saturated; all routable replicas saturated ⇒ shed (kOverloaded).
  int64_t max_inflight_per_replica = 64;
  /// Controller queue bound (accepted, waiting for a dispatcher).
  int64_t queue_limit = 1024;

  HealthPolicy health;
  int64_t heartbeat_interval_us = 2000;
  /// Probe budget; a probe slower than this counts as a failed probe.
  int64_t probe_timeout_us = 500'000;
  /// Canary input for quarantine probes. Unset (empty tensor): the last
  /// input the cluster served successfully is reused.
  Tensor probe_input;
  /// Hot-restart a quarantined replica after this many consecutive failed
  /// probes (auto_restart). The respawned replica still re-earns Healthy
  /// through probes.
  bool auto_restart = true;
  int restart_after_probe_failures = 2;
};

/// One routing verdict. replica == -1 ⇒ nothing routable right now;
/// `verdict` then says why: kOverloaded (routable replicas exist but all
/// are saturated) or kReplicaDown (every replica quarantined).
struct RoutingDecision {
  int replica = -1;
  int runner_up = -1;  // the losing power-of-two candidate (-1 if none)
  Status verdict = Status::kOk;
};

/// Fleet-level counters (relaxed atomics, readable from any thread).
/// Conservation law the chaos tests assert: submitted() ==
/// succeeded() + failed() + timeouts() + shed() once the cluster is
/// closed — every request resolves, exactly once.
class ClusterCounters {
 public:
  void on_submit() { submitted_.fetch_add(1, relaxed); }
  void on_shed() { shed_.fetch_add(1, relaxed); }
  void on_success() { succeeded_.fetch_add(1, relaxed); }
  void on_failure() { failed_.fetch_add(1, relaxed); }
  void on_timeout() { timeouts_.fetch_add(1, relaxed); }
  void on_retry() { retries_.fetch_add(1, relaxed); }
  void on_probe() { probes_.fetch_add(1, relaxed); }
  void on_probe_failure() { probe_failures_.fetch_add(1, relaxed); }
  void on_restart() { restarts_.fetch_add(1, relaxed); }

  uint64_t submitted() const { return submitted_.load(relaxed); }
  /// Rejected at admission with kOverloaded (their futures still resolve).
  uint64_t shed() const { return shed_.load(relaxed); }
  uint64_t succeeded() const { return succeeded_.load(relaxed); }
  /// Resolved with kReplicaDown (attempts exhausted on failures).
  uint64_t failed() const { return failed_.load(relaxed); }
  /// Resolved with kTimeout (deadline expired or attempts timed out).
  uint64_t timeouts() const { return timeouts_.load(relaxed); }
  /// Re-routed attempts beyond each request's first.
  uint64_t retries() const { return retries_.load(relaxed); }
  uint64_t probes() const { return probes_.load(relaxed); }
  uint64_t probe_failures() const { return probe_failures_.load(relaxed); }
  /// Hot restarts triggered by the heartbeat (manual ones excluded).
  uint64_t restarts() const { return restarts_.load(relaxed); }

  /// End-to-end submit-to-resolution latency of every accepted request
  /// (successes and typed failures alike; shed requests excluded).
  const LatencyHistogram& latency() const { return latency_; }
  LatencyHistogram& latency() { return latency_; }

 private:
  static constexpr std::memory_order relaxed = std::memory_order_relaxed;

  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> succeeded_{0};
  std::atomic<uint64_t> failed_{0};
  std::atomic<uint64_t> timeouts_{0};
  std::atomic<uint64_t> retries_{0};
  std::atomic<uint64_t> probes_{0};
  std::atomic<uint64_t> probe_failures_{0};
  std::atomic<uint64_t> restarts_{0};
  LatencyHistogram latency_;
};

class ClusterController {
 public:
  /// Loads the artifact once, replicates it per replica
  /// (deploy::replicate), opens each under its per-replica configuration,
  /// and starts the dispatcher pool + heartbeat.
  ClusterController(const std::string& artifact_path, ClusterOptions options);
  ~ClusterController();
  ClusterController(const ClusterController&) = delete;
  ClusterController& operator=(const ClusterController&) = delete;

  /// Submits one request under options().default_timeout_us. The returned
  /// future resolves exactly once — see the header comment for the typed
  /// failure contract. Throws ServeError{kClosed} after close().
  std::future<Prediction> submit(Tensor input);
  /// Same, with an explicit overall deadline (timeout <= 0: no deadline).
  std::future<Prediction> submit(Tensor input,
                                 std::chrono::microseconds timeout);

  /// Same, carrying an upstream trace context (serve/trace.h): the cluster
  /// appends queue-wait/dispatch/resolve spans (the winning replica's
  /// batcher adds its own), and finishes cluster-owned contexts after the
  /// task promise resolves. Null `tctx` with tracing enabled self-creates
  /// one, so direct cluster users get timelines without a ModelServer.
  std::future<Prediction> submit(Tensor input,
                                 std::chrono::microseconds timeout,
                                 trace::TraceContextPtr tctx);

  /// One load-aware power-of-two-choices routing verdict over the current
  /// fleet state. Public for tests; dispatchers call it per attempt.
  /// `exclude` drops one replica from the candidate pool — retries pass
  /// the replica that just failed them, so a re-route is a *different*
  /// replica whenever any other is routable (the excluded one is used
  /// again only as the pool of last resort).
  RoutingDecision route(int exclude = -1) const;

  /// Manual hot restart of replica i (kill → respawn from the artifact).
  void restart_replica(int i);

  /// Drains queued requests, joins dispatchers + heartbeat, closes the
  /// replicas. Idempotent; the destructor calls it.
  void close();
  bool closed() const;

  int replicas() const { return static_cast<int>(fleet_.size()); }
  Replica& replica(int i);
  /// Fleet snapshot, one NodeMetrics per replica.
  std::vector<NodeMetrics> metrics() const;
  const ClusterCounters& counters() const { return counters_; }
  const ClusterOptions& options() const { return options_; }
  /// Requests accepted but not yet picked up by a dispatcher.
  int64_t queue_depth() const;

 private:
  struct Task {
    Tensor input;
    std::promise<Prediction> promise;
    std::chrono::steady_clock::time_point enqueue;
    /// Absolute deadline (time_point::max() = none).
    std::chrono::steady_clock::time_point deadline;
    /// Trace context (null when tracing is off or the request is untraced).
    trace::TraceContextPtr trace;
  };

  /// A first attempt primed (routed + submitted, not yet awaited) by the
  /// chunked dispatcher; serve_task() consumes it as attempt 0 instead of
  /// routing one itself.
  struct FirstAttempt {
    std::future<Prediction> outcome;
    RoutingDecision decision;  // decision.replica == -1 ⇒ nothing routable
    bool dispatched = false;
    bool expired = false;  // deadline had already passed at prime time
    std::chrono::steady_clock::time_point start;
    std::chrono::steady_clock::time_point attempt_deadline;
  };

  void dispatcher_loop();
  void heartbeat_loop();
  /// The retry/backoff state machine for one accepted request. Resolves
  /// task.promise exactly once. When `first` is non-null its primed
  /// attempt is consumed before any re-routing happens.
  void serve_task(Task& task, FirstAttempt* first = nullptr);
  /// Route + submit attempt 0 of `task` without blocking on the result.
  void prime_attempt(Task& task, FirstAttempt& fa);
  /// Attempt deadline: the configured per-attempt budget, or an even
  /// split of the remaining deadline across the remaining attempts.
  std::chrono::steady_clock::time_point attempt_deadline_for(
      const Task& task, std::chrono::steady_clock::time_point now,
      int attempt) const;
  void probe_quarantined();
  /// A probe input, or an empty tensor when none is available yet.
  Tensor probe_input();

  const ClusterOptions options_;
  const std::string artifact_path_;
  std::vector<std::unique_ptr<Replica>> fleet_;

  mutable std::mutex mutex_;  // queue_ + closed_
  std::condition_variable cv_;
  std::deque<Task> queue_;
  bool closed_ = false;

  std::vector<std::thread> dispatchers_;
  std::thread heartbeat_;
  /// Separate from cv_ so per-submit notifications don't wake the
  /// heartbeat into premature probe rounds (waits on mutex_ too).
  std::condition_variable hb_cv_;
  std::mutex join_mutex_;  // serializes concurrent close() calls

  /// Rotates the power-of-two candidate draw across route() calls.
  mutable std::atomic<uint64_t> route_counter_{0};

  std::mutex probe_mutex_;
  Tensor last_good_input_;  // falls back as the probe canary
  bool have_last_good_ = false;

  ClusterCounters counters_;
};

}  // namespace ripple::serve
