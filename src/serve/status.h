// Typed serving failures.
//
// The serving stack used to signal every failure as whatever exception the
// layer underneath happened to throw, which forces callers into string
// matching to tell "the fleet is saturated, back off" apart from "your
// request was malformed". Status is the closed taxonomy of the failures the
// serving layers themselves produce; ServeError carries one through a
// std::future or a throw. Session precondition violations (bad shapes,
// wrong task kind) keep their CheckError type — those are caller bugs, not
// serving-infrastructure outcomes, and they stay distinguishable.
//
//   kTimeout     — the request's deadline expired before a result was
//                  produced (batcher dispatch found it already expired, or
//                  the cluster exhausted the deadline across retries).
//   kOverloaded  — admission control shed the request: every routable
//                  replica is saturated (or the controller queue is at its
//                  bound). Retrying immediately will not help; backing off
//                  will.
//   kReplicaDown — the serving replica(s) failed the request and the retry
//                  budget is spent; the fleet could not produce a result.
//   kClosed      — submit() after close(); the request was never queued.
//   kUnknownModel — the request named a model (or model version / manifest
//                  entry) the registry does not hold.
//   kQuotaExceeded — the tenant's token-bucket rate quota rejected the
//                  request at admission; it was never queued.
#pragma once

#include <stdexcept>
#include <string>

namespace ripple::serve {

enum class Status {
  kOk = 0,
  kTimeout,
  kOverloaded,
  kReplicaDown,
  kClosed,
  kUnknownModel,
  kQuotaExceeded,
};

const char* status_name(Status status);

/// The typed failure the serving layers deliver through futures (and throw
/// from submit paths). `status()` is the machine-readable verdict; what()
/// adds human context (which replica, how many attempts, …).
class ServeError : public std::runtime_error {
 public:
  ServeError(Status status, const std::string& what)
      : std::runtime_error(std::string(status_name(status)) + ": " + what),
        status_(status) {}

  Status status() const { return status_; }

 private:
  Status status_;
};

}  // namespace ripple::serve
