#include "serve/trace.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <utility>

namespace ripple::serve::trace {

namespace {

using Clock = std::chrono::steady_clock;

int64_t us_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration_cast<std::chrono::microseconds>(to - from)
      .count();
}

uint64_t fnv1a(const std::string& s) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

size_t round_pow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

// Prometheus/JSON string escape (backslash, quote, control chars).
std::string escape_json(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

thread_local TraceData* t_active_request = nullptr;

}  // namespace

const char* stage_name(Stage stage) {
  switch (stage) {
    case Stage::kRequest:
      return "request";
    case Stage::kAdmission:
      return "admission";
    case Stage::kQueueWait:
      return "queue_wait";
    case Stage::kBatchAssembly:
      return "batch_assembly";
    case Stage::kDispatch:
      return "dispatch";
    case Stage::kExecute:
      return "execute";
    case Stage::kResolve:
      return "resolve";
  }
  return "unknown";
}

// ---- per-thread rings -------------------------------------------------------

/// One slot of a per-thread ring. The ring has exactly one writer (its
/// owning thread); readers validate the seqlock around their relaxed field
/// reads, so a slot overwritten mid-read is discarded, never torn.
struct RingSlot {
  std::atomic<uint64_t> seq{0};  // odd while the writer is inside
  std::atomic<uint64_t> trace_id{0};
  std::atomic<int64_t> ts_us{0};
  std::atomic<int64_t> dur_us{0};
  std::atomic<uint32_t> stage{0};
  std::atomic<uint32_t> detail{0};
  std::atomic<uint32_t> tenant_ref{0};
};

struct Tracer::ThreadRing {
  ThreadRing(size_t capacity, uint32_t id)
      : slots(capacity), mask(capacity - 1), tid(id) {}

  void push(uint64_t trace_id, const Span& span, uint32_t tenant_ref) {
    const uint64_t h = head.load(std::memory_order_relaxed);
    RingSlot& s = slots[h & mask];
    if (h > mask) dropped.fetch_add(1, std::memory_order_relaxed);
    s.seq.store(2 * h + 1, std::memory_order_release);
    s.trace_id.store(trace_id, std::memory_order_relaxed);
    s.ts_us.store(span.ts_us, std::memory_order_relaxed);
    s.dur_us.store(span.dur_us, std::memory_order_relaxed);
    s.stage.store(static_cast<uint32_t>(span.stage),
                  std::memory_order_relaxed);
    s.detail.store(span.detail, std::memory_order_relaxed);
    s.tenant_ref.store(tenant_ref, std::memory_order_relaxed);
    s.seq.store(2 * h + 2, std::memory_order_release);
    head.store(h + 1, std::memory_order_release);
  }

  std::vector<RingSlot> slots;
  const uint64_t mask;
  const uint32_t tid;
  std::atomic<uint64_t> head{0};
  std::atomic<uint64_t> dropped{0};  // overwritten before export
};

// ---- Tracer -----------------------------------------------------------------

Tracer::Tracer() : epoch_(Clock::now()) {
  tenant_names_.push_back("");  // ref 0 = anonymous
}

Tracer& Tracer::instance() {
  static Tracer* tracer = new Tracer();  // leaked: outlives all threads
  return *tracer;
}

void Tracer::configure(const TracerOptions& options) {
  std::lock_guard lock(options_mutex_);
  options_ = options;
  options_.ring_capacity = round_pow2(std::max<size_t>(8, options.ring_capacity));
}

TracerOptions Tracer::options() const {
  std::lock_guard lock(options_mutex_);
  return options_;
}

uint32_t Tracer::tenant_ref_for(const std::string& tenant) {
  if (tenant.empty()) return 0;
  std::lock_guard lock(tenants_mutex_);
  for (size_t i = 0; i < tenant_names_.size(); ++i) {
    if (tenant_names_[i] == tenant) return static_cast<uint32_t>(i);
  }
  tenant_names_.push_back(tenant);
  return static_cast<uint32_t>(tenant_names_.size() - 1);
}

std::string Tracer::tenant_name(uint32_t ref) const {
  std::lock_guard lock(tenants_mutex_);
  return ref < tenant_names_.size() ? tenant_names_[ref] : std::string();
}

TraceContextPtr Tracer::begin_trace(const std::string& tenant,
                                    FinishLayer layer) {
  if (!enabled()) return nullptr;
  const TracerOptions opts = options();
  auto ctx = std::make_shared<TraceData>();
  ctx->id = next_id_.fetch_add(1, std::memory_order_relaxed);
  ctx->tenant_ref = tenant_ref_for(tenant);
  ctx->finish_layer = layer;
  ctx->start = Clock::now();
  if (opts.sample_every > 0) {
    // Per-tenant head sampling: each tenant's request sequence starts at
    // its head (request 0 sampled), then every Nth. Deterministic after
    // reset() — the sampling-determinism test relies on this.
    auto& seq = sample_seq_[fnv1a(tenant) & (kSampleSlots - 1)];
    ctx->sampled =
        seq.fetch_add(1, std::memory_order_relaxed) % opts.sample_every == 0;
  }
  started_.fetch_add(1, std::memory_order_relaxed);
  return ctx;
}

void Tracer::record_span(TraceData* ctx, Stage stage, Clock::time_point begin,
                         Clock::time_point end, uint32_t detail) {
  if (ctx == nullptr) return;
  const uint32_t i = ctx->next.fetch_add(1, std::memory_order_relaxed);
  if (i >= TraceData::kMaxSpans) {
    ctx->overflow.fetch_add(1, std::memory_order_relaxed);
    span_overflow_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Span& s = ctx->spans[i];
  s.stage = stage;
  s.ts_us = us_between(epoch_, begin);
  s.dur_us = std::max<int64_t>(0, us_between(begin, end));
  s.detail = detail;
  ctx->ready[i].store(true, std::memory_order_release);
}

void Tracer::finish_if(const TraceContextPtr& ctx, FinishLayer layer) {
  if (ctx && ctx->finish_layer == layer) finish(ctx);
}

void Tracer::finish(const TraceContextPtr& ctx) {
  if (!ctx) return;
  if (ctx->finished.exchange(true, std::memory_order_acq_rel)) return;
  const auto now = Clock::now();
  const int64_t total_us = std::max<int64_t>(0, us_between(ctx->start, now));
  Span total;
  total.stage = Stage::kRequest;
  total.ts_us = us_between(epoch_, ctx->start);
  total.dur_us = total_us;

  const uint32_t n =
      std::min(ctx->next.load(std::memory_order_acquire), TraceData::kMaxSpans);
  // Per-stage histograms feed from every finished request — sampling only
  // decides ring capture, so the Prometheus stage view covers all traffic.
  stage_latency_[static_cast<size_t>(Stage::kRequest)].record(total_us);
  for (uint32_t i = 0; i < n; ++i) {
    if (!ctx->ready[i].load(std::memory_order_acquire)) continue;
    stage_latency_[static_cast<size_t>(ctx->spans[i].stage)].record(
        ctx->spans[i].dur_us);
  }

  const TracerOptions opts = options();
  const bool capture =
      ctx->sampled ||
      (opts.slow_threshold_us > 0 && total_us >= opts.slow_threshold_us);
  if (!capture) return;
  captured_.fetch_add(1, std::memory_order_relaxed);
  ThreadRing& ring = local_ring();
  ring.push(ctx->id, total, ctx->tenant_ref);
  for (uint32_t i = 0; i < n; ++i) {
    if (!ctx->ready[i].load(std::memory_order_acquire)) continue;
    ring.push(ctx->id, ctx->spans[i], ctx->tenant_ref);
  }
}

Tracer::ThreadRing& Tracer::local_ring() {
  thread_local ThreadRing* ring = nullptr;
  if (ring == nullptr) {
    const size_t capacity = options().ring_capacity;
    std::lock_guard lock(rings_mutex_);
    rings_.push_back(std::make_unique<ThreadRing>(
        capacity, static_cast<uint32_t>(rings_.size() + 1)));
    ring = rings_.back().get();
  }
  return *ring;
}

uint64_t Tracer::dropped_events() const {
  uint64_t dropped = span_overflow_.load(std::memory_order_relaxed);
  std::lock_guard lock(rings_mutex_);
  for (const auto& r : rings_)
    dropped += r->dropped.load(std::memory_order_relaxed);
  return dropped;
}

std::vector<Event> Tracer::snapshot_events() const {
  std::vector<Event> events;
  std::lock_guard lock(rings_mutex_);
  for (const auto& r : rings_) {
    const uint64_t head = r->head.load(std::memory_order_acquire);
    const uint64_t capacity = r->mask + 1;
    const uint64_t first = head > capacity ? head - capacity : 0;
    for (uint64_t h = first; h < head; ++h) {
      const RingSlot& s = r->slots[h & r->mask];
      const uint64_t s1 = s.seq.load(std::memory_order_acquire);
      if (s1 != 2 * h + 2) continue;  // overwritten or mid-write: skip
      Event e;
      e.trace_id = s.trace_id.load(std::memory_order_relaxed);
      e.ts_us = s.ts_us.load(std::memory_order_relaxed);
      e.dur_us = s.dur_us.load(std::memory_order_relaxed);
      e.stage = static_cast<Stage>(s.stage.load(std::memory_order_relaxed));
      e.detail = s.detail.load(std::memory_order_relaxed);
      const uint32_t tref = s.tenant_ref.load(std::memory_order_relaxed);
      if (s.seq.load(std::memory_order_acquire) != s1) continue;
      e.tid = r->tid;
      e.tenant = tenant_name(tref);
      events.push_back(std::move(e));
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const Event& a, const Event& b) {
                     return a.ts_us < b.ts_us;
                   });
  return events;
}

std::string Tracer::chrome_trace_json() const {
  const std::vector<Event> events = snapshot_events();
  std::ostringstream out;
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const Event& e : events) {
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"" << stage_name(e.stage) << "\",\"cat\":\"serve\","
        << "\"ph\":\"X\",\"ts\":" << e.ts_us << ",\"dur\":" << e.dur_us
        << ",\"pid\":1,\"tid\":" << e.tid << ",\"args\":{\"trace\":\""
        << e.trace_id << "\",\"tenant\":\"" << escape_json(e.tenant)
        << "\",\"detail\":" << e.detail << "}}";
  }
  out << "],\"displayTimeUnit\":\"ms\"}";
  return out.str();
}

bool Tracer::write_chrome_trace(const std::string& path) const {
  const std::string json = chrome_trace_json();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool ok = std::fclose(f) == 0 && written == json.size();
  return ok;
}

void Tracer::reset() {
  next_id_.store(1, std::memory_order_relaxed);
  started_.store(0, std::memory_order_relaxed);
  captured_.store(0, std::memory_order_relaxed);
  span_overflow_.store(0, std::memory_order_relaxed);
  for (auto& s : sample_seq_) s.store(0, std::memory_order_relaxed);
  for (auto& h : stage_latency_) h.reset();
  std::lock_guard lock(rings_mutex_);
  for (auto& r : rings_) {
    r->head.store(0, std::memory_order_release);
    r->dropped.store(0, std::memory_order_relaxed);
    // Invalidate every slot so a pre-reset generation can't masquerade as
    // the new one (seq values are derived from the post-reset head).
    for (auto& s : r->slots) s.seq.store(1, std::memory_order_release);
  }
}

// ---- active-request scope ---------------------------------------------------

TraceData* active_request() { return t_active_request; }

ActiveRequestScope::ActiveRequestScope(TraceData* ctx)
    : prev_(t_active_request) {
  t_active_request = ctx;
}

ActiveRequestScope::~ActiveRequestScope() { t_active_request = prev_; }

}  // namespace ripple::serve::trace
