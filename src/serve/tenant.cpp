#include "serve/tenant.h"

#include <algorithm>
#include <utility>

namespace ripple::serve {

TokenBucket::TokenBucket(QuotaPolicy policy) : policy_(policy) {
  capacity_ = policy_.burst > 0.0
                  ? policy_.burst
                  : std::max(1.0, policy_.rate_per_sec);
  tokens_ = capacity_;
}

void TokenBucket::refill(std::chrono::steady_clock::time_point now) const {
  if (!started_) {
    started_ = true;
    last_ = now;
    return;
  }
  const double dt =
      std::chrono::duration<double>(now - last_).count();
  if (dt <= 0.0) return;
  last_ = now;
  tokens_ = std::min(capacity_, tokens_ + dt * policy_.rate_per_sec);
}

bool TokenBucket::try_acquire(std::chrono::steady_clock::time_point now) {
  if (unlimited()) return true;
  std::lock_guard<std::mutex> lock(mutex_);
  refill(now);
  if (tokens_ < 1.0) return false;
  tokens_ -= 1.0;
  return true;
}

double TokenBucket::available(
    std::chrono::steady_clock::time_point now) const {
  if (unlimited()) return capacity_;
  std::lock_guard<std::mutex> lock(mutex_);
  refill(now);
  return tokens_;
}

uint64_t tenant_salt_of(const std::string& id) {
  // FNV-1a over the id bytes …
  uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : id) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  // … finished with a splitmix64 avalanche so close ids land far apart.
  h += 0x9e3779b97f4a7c15ull;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
  h ^= h >> 31;
  return h != 0 ? h : 1;  // 0 is the "serve the artifact seed" salt
}

Tenant::Tenant(TenantConfig config)
    : config_(std::move(config)),
      salt_(config_.seed_salt == kDeriveSaltFromId
                ? tenant_salt_of(config_.id)
                : config_.seed_salt),
      bucket_(config_.quota) {}

bool Tenant::admit(std::chrono::steady_clock::time_point now) {
  if (bucket_.try_acquire(now)) return true;
  quota_rejected_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

}  // namespace ripple::serve
