// serve::trace — end-to-end request tracing for the serving stack.
//
// A TraceContext is created at the front door (ModelServer::submit, or the
// batcher/cluster submit paths when driven directly) and propagated down
// through ClusterController → Replica → AsyncBatcher → InferenceSession.
// Each layer appends timed Spans — admission, queue wait, batch assembly,
// dispatch, plan/graph execution, promise resolution — into the context's
// fixed-size span array. When the owning layer resolves the request's
// promise it *finishes* the context: every span lands in the per-stage
// latency histograms, and — for sampled requests (head sampling, 1-in-N
// per tenant) or requests slower than the configured slow threshold — the
// whole timeline is flushed into a pre-allocated lock-free per-thread ring
// buffer, exportable as Chrome trace-event JSON (chrome://tracing,
// Perfetto) or scraped as Prometheus histograms via serve::MetricsExporter.
//
// Cost contract: with tracing disabled (the default) every hook is one
// relaxed atomic load + branch — no context is ever allocated, and the
// steady-state zero-allocation serving path stays allocation-free
// (tests/alloc_test.cpp gates this). Enabled, the per-request cost is one
// shared_ptr allocation plus a handful of clock reads; ring writes are
// wait-free (single writer per thread, seqlock-guarded slots) and *drop*
// (overwrite oldest, counted) rather than block when a ring wraps.
//
// Slow-path capture: head sampling alone would miss exactly the requests
// an operator wants to see. Spans are therefore buffered in the context
// for every request while tracing is enabled, and the capture decision is
// made at finish time: sampled OR total latency ≥ slow_threshold_us.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "serve/metrics.h"

namespace ripple::serve::trace {

/// Pipeline stage a span measures. kRequest is the synthetic umbrella span
/// (context creation → finish) emitted once per captured trace.
enum class Stage : uint8_t {
  kRequest,        // whole request, front door to promise resolution
  kAdmission,      // server: tenant/model/entry resolution + unit submit
  kQueueWait,      // batcher or cluster queue: enqueue → dispatch
  kBatchAssembly,  // batcher: dispatch → coalesced forward start
  kDispatch,       // cluster: route + replica submit (detail = replica id)
  kExecute,        // session forward (detail: 1 = compiled plan, 0 = graph)
  kResolve,        // forward end → promise resolved
};
constexpr size_t kStageCount = 7;
const char* stage_name(Stage stage);

/// Which layer owns the context's promise and therefore calls finish().
/// The server assigns this by unit type; self-created contexts use the
/// creating layer. Layers below the owner only append spans.
enum class FinishLayer : uint8_t { kBatcher, kCluster };

struct Span {
  Stage stage = Stage::kRequest;
  int64_t ts_us = 0;   // start, µs since the tracer epoch
  int64_t dur_us = 0;  // duration, µs
  uint32_t detail = 0;
};

/// Per-request span buffer, shared by every layer a request traverses.
/// Appends are lock-free (slot index via fetch_add, per-slot ready flag
/// publishes the plain fields); spans past kMaxSpans are counted, not
/// stored. A span appended concurrently with finish() may miss that
/// trace's flush — benign, the request is already resolved by then.
struct TraceData {
  static constexpr uint32_t kMaxSpans = 24;

  uint64_t id = 0;
  uint32_t tenant_ref = 0;  // index into the tracer's tenant-name table
  bool sampled = false;     // head-sampling verdict, fixed at creation
  FinishLayer finish_layer = FinishLayer::kBatcher;
  std::chrono::steady_clock::time_point start;

  std::atomic<uint32_t> next{0};
  std::atomic<uint32_t> overflow{0};
  std::atomic<bool> finished{false};
  std::array<Span, kMaxSpans> spans{};
  std::array<std::atomic<bool>, kMaxSpans> ready{};
};

using TraceContextPtr = std::shared_ptr<TraceData>;

/// Plain-value copy of one captured ring event (snapshot/export form).
struct Event {
  uint64_t trace_id = 0;
  int64_t ts_us = 0;
  int64_t dur_us = 0;
  Stage stage = Stage::kRequest;
  uint32_t detail = 0;
  uint32_t tid = 0;  // ring id of the flushing thread
  std::string tenant;
};

struct TracerOptions {
  /// Head sampling: capture every Nth request per tenant (the first
  /// request of each tenant is always the sequence's head). 0 disables
  /// sampling entirely (slow-threshold capture still applies).
  uint32_t sample_every = 64;
  /// Requests whose total latency reaches this are captured even when
  /// unsampled. 0 disables the slow path.
  int64_t slow_threshold_us = 0;
  /// Events per per-thread ring, rounded up to a power of two. Applies to
  /// rings created after configure(); existing rings keep their size.
  size_t ring_capacity = 4096;
};

/// Process-wide trace collector. A singleton (instance()) so contexts can
/// outlive any particular server object: a context flushed by a worker
/// thread after its ModelServer began tearing down still has somewhere
/// safe to land.
class Tracer {
 public:
  static Tracer& instance();

  /// The one branch every hook pays when tracing is off.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  /// Reconfigure sampling/capture knobs. Safe at any time; applies to
  /// contexts begun afterwards.
  void configure(const TracerOptions& options);
  TracerOptions options() const;

  /// New per-request context: samples by tenant, stamps the start time.
  /// Returns nullptr when tracing is disabled.
  TraceContextPtr begin_trace(const std::string& tenant, FinishLayer layer);

  /// Finish regardless of owner (admission failures, tests). Idempotent.
  void finish(const TraceContextPtr& ctx);
  /// Finish only when `layer` owns the context — what the batcher and
  /// cluster call after resolving a promise, so a replica's batcher never
  /// steals a cluster-owned context's flush.
  void finish_if(const TraceContextPtr& ctx, FinishLayer layer);

  // ---- export ---------------------------------------------------------------

  /// Consistent copies of every stable ring event, oldest first per ring.
  std::vector<Event> snapshot_events() const;
  /// Chrome trace-event JSON ({"traceEvents": [...]}) of snapshot_events().
  std::string chrome_trace_json() const;
  /// Writes chrome_trace_json() to `path`; false on I/O failure.
  bool write_chrome_trace(const std::string& path) const;

  /// Contexts begun / timelines flushed to rings since the last reset.
  uint64_t started() const { return started_.load(std::memory_order_relaxed); }
  uint64_t captured() const {
    return captured_.load(std::memory_order_relaxed);
  }
  /// Ring events lost to wraparound (overwritten before export) plus spans
  /// past TraceData::kMaxSpans. Drops never block a writer.
  uint64_t dropped_events() const;

  /// Per-stage duration histogram over *every* request finished while
  /// tracing was enabled (sampling only gates ring capture, not these).
  const LatencyHistogram& stage_latency(Stage stage) const {
    return stage_latency_[static_cast<size_t>(stage)];
  }

  /// Zeros rings, counters, per-stage histograms and the per-tenant
  /// sampling sequences (so sampling is deterministic from here). Keeps
  /// enabled/options. Not safe concurrently with in-flight traffic.
  void reset();

  // ---- hook plumbing (called by serving layers) ----------------------------

  /// Appends one span; no-op on null. Start/end are wall points from the
  /// caller's own clock reads.
  void record_span(TraceData* ctx, Stage stage,
                   std::chrono::steady_clock::time_point begin,
                   std::chrono::steady_clock::time_point end,
                   uint32_t detail = 0);
  void record_span(const TraceContextPtr& ctx, Stage stage,
                   std::chrono::steady_clock::time_point begin,
                   std::chrono::steady_clock::time_point end,
                   uint32_t detail = 0) {
    record_span(ctx.get(), stage, begin, end, detail);
  }

 private:
  Tracer();
  struct ThreadRing;
  ThreadRing& local_ring();
  uint32_t tenant_ref_for(const std::string& tenant);
  std::string tenant_name(uint32_t ref) const;

  std::atomic<bool> enabled_{false};
  mutable std::mutex options_mutex_;
  TracerOptions options_;

  std::chrono::steady_clock::time_point epoch_;
  std::atomic<uint64_t> next_id_{1};
  std::atomic<uint64_t> started_{0};
  std::atomic<uint64_t> captured_{0};
  std::atomic<uint64_t> span_overflow_{0};

  /// Per-tenant head-sampling sequences, indexed by tenant-name hash.
  static constexpr size_t kSampleSlots = 64;
  std::array<std::atomic<uint64_t>, kSampleSlots> sample_seq_{};

  std::array<LatencyHistogram, kStageCount> stage_latency_;

  mutable std::mutex rings_mutex_;
  std::vector<std::unique_ptr<ThreadRing>> rings_;

  mutable std::mutex tenants_mutex_;
  std::vector<std::string> tenant_names_;
};

/// The request context the current thread's forward pass should attribute
/// execute spans to, or nullptr. Set by AsyncBatcher around a coalesced
/// forward (the batch's first traced member owns the batch's execute
/// spans); read by InferenceSession's chunk runners.
TraceData* active_request();

/// RAII installer for active_request() (nesting restores the previous).
class ActiveRequestScope {
 public:
  explicit ActiveRequestScope(TraceData* ctx);
  ~ActiveRequestScope();
  ActiveRequestScope(const ActiveRequestScope&) = delete;
  ActiveRequestScope& operator=(const ActiveRequestScope&) = delete;

 private:
  TraceData* prev_;
};

}  // namespace ripple::serve::trace
