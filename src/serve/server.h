// serve::ModelServer — the multi-tenant front door of the serving stack.
//
// Everything below this layer serves *one* model for *anonymous* callers:
// a session predicts, a batcher coalesces, a cluster keeps replicas of one
// artifact healthy. The ModelServer owns what a deployment actually is —
// many models, many versions of each, many clients — behind one typed
// Request/Response surface:
//
//   registry   .rpla artifacts keyed by (name, version), loaded/unloaded/
//              hot-swapped at runtime. A v3 manifest file registers all of
//              its named entries at once; requests route between entries
//              by manifest weight (A/B pairs, shared-file ensembles), or
//              pin one by name.
//   hot swap   load_model(new version) + set_active — or hot_swap(), which
//              does both and retires the old active — without dropping
//              in-flight requests: lookups run under a shared registry
//              lock, retirement drains each serving unit (AsyncBatcher/
//              ClusterController close semantics) so queued futures
//              resolve, and a submit that raced the swap re-resolves onto
//              the new active version. Exactly-once across the swap.
//   tenants    per-tenant serving units (session+batcher, or a replica
//              cluster when ServerOptions::replicas > 1), opened lazily
//              with the tenant's seed salt — isolated, deterministic MC
//              streams per tenant — plus token-bucket quotas and
//              per-tenant latency views (serve/tenant.h).
//   failures   the serve::Status taxonomy, now with kUnknownModel and
//              kQuotaExceeded. submit() only throws for kClosed (server
//              shut down); every per-request failure arrives through the
//              future, exactly once.
//   metrics    per-unit BatcherCounters/ClusterCounters flattened into
//              UnitMetricsRow/TenantMetricsRow snapshots — the feed of
//              serve::MetricsExporter (serve/prom.h), optionally exposed
//              over HTTP behind ServerOptions::metrics_port.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

#include "deploy/deploy.h"
#include "serve/batcher.h"
#include "serve/cluster.h"
#include "serve/tenant.h"

namespace ripple::serve {

class MetricsExporter;

/// Which model a request wants. version "" = the name's active version;
/// entry "" = weighted routing across the version's manifest entries.
struct ModelRef {
  std::string name;
  std::string version;
  std::string entry;
};

struct ServerOptions {
  /// Default deploy configuration for load_model() calls without their
  /// own (backend, session overrides, crossbar knobs).
  deploy::DeployOptions deploy;
  /// Replicas per serving unit. 1 = a session+batcher per (model, entry,
  /// tenant); >1 = a ClusterController fleet per unit (health, retries,
  /// admission control), configured from `cluster`.
  int replicas = 1;
  /// Template for cluster-mode units (replicas/deploy are overridden).
  ClusterOptions cluster;
  /// Quota granted to tenants that were never register_tenant()ed.
  QuotaPolicy default_quota;
  /// Auto-register unknown tenants (default_quota, id-derived seed salt).
  /// Off: requests from unregistered tenants fail with kQuotaExceeded.
  bool auto_register_tenants = true;
  /// Deadline applied when a request carries none (0 = none).
  int64_t default_timeout_us = 2'000'000;
  /// Prometheus HTTP listener port: -1 = off (default), 0 = any free
  /// port (MetricsExporter::port() reports the binding), >0 = fixed.
  /// render() works regardless.
  int metrics_port = -1;
};

struct Request {
  std::string id;      // echoed in the Response
  std::string tenant;  // quota + seed-isolation identity
  ModelRef model;
  Tensor input;
  /// Absolute deadline; time_point::max() (default) applies the server's
  /// default_timeout_us.
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
  /// Opaque caller metadata, carried through untouched.
  std::vector<std::pair<std::string, std::string>> headers;
};

struct Response {
  std::string request_id;
  Status status = Status::kOk;
  std::string error;  // what() of the typed failure when status != kOk
  /// What actually served the request (version/entry resolved).
  std::string model_name;
  std::string model_version;
  std::string model_entry;
  Prediction prediction;  // meaningful iff status == kOk
  int64_t latency_us = 0;
};

/// Registry listing (models()).
struct ModelInfo {
  std::string name;
  std::string version;
  bool active = false;
  std::vector<deploy::ManifestEntryInfo> entries;
};

/// Per-serving-unit metrics snapshot, one row per (model, version, entry,
/// tenant) unit — the Prometheus exporter's feed. Cluster-mode rows also
/// carry the fleet counters.
struct UnitMetricsRow {
  std::string model;
  std::string version;
  std::string entry;
  std::string tenant;
  uint64_t submitted = 0;
  uint64_t completed = 0;
  uint64_t timeouts = 0;
  uint64_t batches = 0;
  int64_t queue_depth = 0;
  LatencyHistogram::Snapshot latency;
  LatencyHistogram::Snapshot analog;
  bool cluster = false;
  uint64_t cluster_succeeded = 0;
  uint64_t cluster_failed = 0;
  uint64_t cluster_shed = 0;
  uint64_t cluster_retries = 0;
  uint64_t cluster_restarts = 0;
  /// Streaming predictive-uncertainty EWMAs (UncertaintyMonitor): batcher
  /// rows read their unit's monitor; cluster rows surface the snapshot of
  /// the replica whose drift gauge is furthest from 0 — the fleet's most
  /// suspicious chip instance.
  UncertaintyMonitor::Snapshot uncertainty;
  /// Cluster rows: per-replica entropy-drift gauges, indexed by replica id.
  std::vector<double> replica_drift;
  /// Batcher rows with a compiled plan: per-fused-op profile aggregated
  /// over the session's cached plans (deploy::set_plan_profiling gates the
  /// counters; empty otherwise). Cluster rows skip this — replica sessions
  /// are behind their own locks and surface drift instead.
  std::vector<deploy::PlanOpProfile> plan_ops;
};

/// Per-tenant rollup: admission counters + the tenant's latency histogram
/// merged across every unit it touched.
struct TenantMetricsRow {
  std::string tenant;
  uint64_t submitted = 0;
  uint64_t quota_rejected = 0;
  LatencyHistogram::Snapshot latency;
};

/// Server-level counters. Conservation law across hot swaps:
/// drained_submitted() == drained_completed() once a retired version is
/// fully drained — no future a retired unit accepted is ever dropped.
class ServerCounters {
 public:
  void on_submit() { submitted_.fetch_add(1, relaxed); }
  void on_quota_rejected() { quota_rejected_.fetch_add(1, relaxed); }
  void on_unknown_model() { unknown_model_.fetch_add(1, relaxed); }
  void on_load() { loads_.fetch_add(1, relaxed); }
  void on_unload() { unloads_.fetch_add(1, relaxed); }
  void on_swap() { swaps_.fetch_add(1, relaxed); }
  void on_drained(uint64_t submitted, uint64_t completed,
                  uint64_t timeouts) {
    drained_submitted_.fetch_add(submitted, relaxed);
    drained_completed_.fetch_add(completed, relaxed);
    drained_timeouts_.fetch_add(timeouts, relaxed);
  }

  uint64_t submitted() const { return submitted_.load(relaxed); }
  uint64_t quota_rejected() const { return quota_rejected_.load(relaxed); }
  uint64_t unknown_model() const { return unknown_model_.load(relaxed); }
  uint64_t loads() const { return loads_.load(relaxed); }
  uint64_t unloads() const { return unloads_.load(relaxed); }
  uint64_t swaps() const { return swaps_.load(relaxed); }
  /// Requests accepted by units that have since been retired/closed.
  uint64_t drained_submitted() const {
    return drained_submitted_.load(relaxed);
  }
  uint64_t drained_completed() const {
    return drained_completed_.load(relaxed);
  }
  uint64_t drained_timeouts() const {
    return drained_timeouts_.load(relaxed);
  }

 private:
  static constexpr std::memory_order relaxed = std::memory_order_relaxed;

  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> quota_rejected_{0};
  std::atomic<uint64_t> unknown_model_{0};
  std::atomic<uint64_t> loads_{0};
  std::atomic<uint64_t> unloads_{0};
  std::atomic<uint64_t> swaps_{0};
  std::atomic<uint64_t> drained_submitted_{0};
  std::atomic<uint64_t> drained_completed_{0};
  std::atomic<uint64_t> drained_timeouts_{0};
};

class ModelServer {
 public:
  explicit ModelServer(ServerOptions options = {});
  ~ModelServer();
  ModelServer(const ModelServer&) = delete;
  ModelServer& operator=(const ModelServer&) = delete;

  // ---- registry lifecycle --------------------------------------------------

  /// Loads a .rpla file and registers every manifest entry of it under
  /// (name, version). The first version loaded under a name becomes its
  /// active version. Throws on duplicate (name, version), unreadable or
  /// corrupt artifacts, and after close().
  void load_model(const std::string& name, const std::string& version,
                  const std::string& artifact_path);
  void load_model(const std::string& name, const std::string& version,
                  const std::string& artifact_path,
                  const deploy::DeployOptions& deploy);

  /// Makes (name, version) the target of version-less requests. New
  /// requests route to it immediately; requests already queued on other
  /// versions complete there.
  void set_active(const std::string& name, const std::string& version);

  /// Drains and removes one version (its in-flight futures resolve
  /// first). Removing the active version re-points active at the newest
  /// remaining version, or unregisters the name entirely.
  void unload_model(const std::string& name, const std::string& version);

  /// load_model + set_active + unload of the previously active version,
  /// in that order — the one-call rolling upgrade. In-flight requests on
  /// the old version drain to completion; requests that race the swap
  /// re-resolve onto the new version (exactly-once either way).
  void hot_swap(const std::string& name, const std::string& version,
                const std::string& artifact_path);
  void hot_swap(const std::string& name, const std::string& version,
                const std::string& artifact_path,
                const deploy::DeployOptions& deploy);

  std::vector<ModelInfo> models() const;

  // ---- tenants -------------------------------------------------------------

  /// Registers (or reconfigures) a tenant. Reconfiguring replaces the
  /// quota bucket and seed salt for *new* serving units; existing units
  /// keep serving their original streams.
  void register_tenant(TenantConfig config);

  // ---- serving -------------------------------------------------------------

  /// Routes the request to its tenant's serving unit for the resolved
  /// (model, version, entry). The future resolves exactly once — with a
  /// Prediction or a ServeError (kTimeout/kOverloaded/kReplicaDown from
  /// the unit; kUnknownModel/kQuotaExceeded from the server, already
  /// failed on return). Throws ServeError{kClosed} only after close().
  std::future<Prediction> submit(Request request);

  /// Blocking convenience: submit + wait, failures folded into the typed
  /// Response instead of thrown.
  Response serve(Request request);

  // ---- observability -------------------------------------------------------

  const ServerCounters& counters() const { return counters_; }
  std::vector<UnitMetricsRow> unit_metrics() const;
  std::vector<TenantMetricsRow> tenant_metrics() const;
  /// Bound port of the metrics listener (-1 when off).
  int metrics_port() const;
  const ServerOptions& options() const { return options_; }

  /// Drains every serving unit and stops the metrics listener.
  /// Idempotent; the destructor calls it.
  void close();
  bool closed() const;

 private:
  /// One tenant's serving stack for one (model version, entry): a
  /// session+batcher, or a replica cluster when options_.replicas > 1.
  struct TenantUnit {
    std::string tenant;
    std::unique_ptr<InferenceSession> session;
    std::unique_ptr<AsyncBatcher> batcher;
    std::unique_ptr<ClusterController> cluster;

    std::future<Prediction> submit(
        const Tensor& input, std::chrono::steady_clock::time_point deadline,
        const trace::TraceContextPtr& tctx = nullptr);
    void close();
  };

  /// One manifest entry of a registered version: the replication master
  /// plus the lazily-created per-tenant units behind their own lock.
  /// Units are shared_ptr so a submit that copied one out under
  /// units_mutex keeps it alive even if retire() drains and drops the
  /// map's reference concurrently — the racing submit then observes the
  /// closed unit (kClosed) instead of a freed one.
  struct EntryState {
    std::string name;  // "" for single-model v1/v2 artifacts
    double weight = 1.0;
    deploy::LoadedArtifact master;
    mutable std::mutex units_mutex;
    bool retired = false;  // set at drain; submits re-resolve elsewhere
    std::map<std::string, std::shared_ptr<TenantUnit>> units;  // by tenant
  };

  struct ModelVersion {
    std::string name;
    std::string version;
    std::string artifact_path;
    deploy::DeployOptions deploy;
    std::vector<std::unique_ptr<EntryState>> entries;
    /// Weighted-round-robin state: pick_upper[i] is the cumulative integer
    /// weight through entry i; a counter mod pick_upper.back() selects.
    std::vector<uint64_t> pick_upper;
    std::atomic<uint64_t> route_counter{0};
  };

  struct ModelState {
    std::string active;
    std::map<std::string, std::shared_ptr<ModelVersion>> versions;
  };

  std::shared_ptr<ModelVersion> build_version(
      const std::string& name, const std::string& version,
      const std::string& artifact_path,
      const deploy::DeployOptions& deploy) const;
  /// Registry lookup under the shared lock. Null + status on miss.
  std::shared_ptr<ModelVersion> resolve(const ModelRef& ref,
                                        std::string* error) const;
  /// Entry selection: pinned by name, or weighted round-robin.
  EntryState* pick_entry(ModelVersion& mv, const std::string& entry) const;
  /// The tenant's unit for one entry, created on first use. Returns an
  /// owning reference (alive across a concurrent retire()). Throws
  /// ServeError{kClosed} when the entry is already retired.
  std::shared_ptr<TenantUnit> unit_for(ModelVersion& mv, EntryState& entry,
                                       Tenant& tenant);
  std::shared_ptr<Tenant> resolve_tenant(const std::string& id);
  /// What actually served a request (filled on the success path).
  struct Routed {
    std::string version;
    std::string entry;
  };
  /// submit() with resolution feedback for serve()'s response metadata.
  std::future<Prediction> submit_routed(Request request, Routed* routed);
  /// Drains every unit of a version and folds its counters into
  /// counters_ (the drained_* conservation ledger).
  void retire(const std::shared_ptr<ModelVersion>& mv);

  ServerOptions options_;
  ServerCounters counters_;

  mutable std::shared_mutex registry_mutex_;
  bool closed_ = false;
  std::map<std::string, ModelState> registry_;
  /// Retired versions kept until fully drained (retire() holds the only
  /// other reference while closing units).
  /// Tenants are shared_ptr for the same reason as TenantUnits: submit()
  /// copies one out under tenants_mutex_ and keeps using it lock-free
  /// (admit/on_submit/seed_salt); register_tenant() reconfiguration swaps
  /// in a new object without freeing the one in-flight requests hold.
  mutable std::shared_mutex tenants_mutex_;
  std::map<std::string, std::shared_ptr<Tenant>> tenants_;

  std::unique_ptr<MetricsExporter> exporter_;
};

}  // namespace ripple::serve
