// Dataset-level evaluation through a serving session — the session-based
// replacements for the deprecated models/evaluate.h free functions.
//
// Each helper streams the test set through session.predict in chunks of
// the session's batch size and aggregates the task metric; the session
// owns the MC sampling (T, seed, policy), so the same session reports the
// same number every time.
#pragma once

#include "data/dataset.h"
#include "serve/session.h"

namespace ripple::serve {

/// Classification accuracy of the MC-mean prediction over `test`.
double accuracy(const InferenceSession& session,
                const data::ClassificationData& test);

/// Forecast RMSE (normalized units) of the MC-mean prediction.
double rmse(const InferenceSession& session, const data::SeriesData& test);

/// Binary segmentation mIoU of the thresholded MC-mean probabilities,
/// aggregated over the whole set (not per batch).
double miou(const InferenceSession& session,
            const data::SegmentationData& test);

}  // namespace ripple::serve
