// Serving observability: dataset-level evaluation through a session (the
// session-based replacements for the deprecated models/evaluate.h free
// functions) and the lock-free counters of the async batching front door.
//
// Each dataset helper streams the test set through session.predict in
// chunks of the session's batch size and aggregates the task metric; the
// session owns the MC sampling (T, seed, policy), so the same session
// reports the same number every time.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>

#include "data/dataset.h"
#include "serve/session.h"

namespace ripple::serve {

/// Lock-free fixed-bucket log2 latency histogram. record() costs two
/// relaxed atomic adds; percentiles are extracted on read by walking the
/// cumulative counts and interpolating linearly inside the crossing
/// bucket, so p50/p95/p99 are exact to within one power-of-two bucket.
/// Bucket b counts samples in [2^(b-1), 2^b) microseconds (bucket 0: <1µs,
/// the last bucket is open-ended). Recorded per batcher (and so per
/// cluster replica) and cluster-wide; this is also where the analog
/// backend's serving cost becomes observable — a kCrossbar session with a
/// wider adc_share spends more serial ADC conversion cycles per forward,
/// which lands directly in the replica's p95, not just in the plan's
/// TileCost conversion counts.
class LatencyHistogram {
 public:
  static constexpr size_t kBuckets = 32;

  /// Bucket index of a latency sample (µs).
  static size_t bucket_for(int64_t us);
  /// Inclusive-exclusive [lower, upper) bounds of a bucket, in µs.
  static int64_t bucket_lower_us(size_t bucket);
  static int64_t bucket_upper_us(size_t bucket);

  void record(int64_t us);

  uint64_t count() const;
  /// Sum of recorded latencies (µs) — mean_us() = total/count.
  double mean_us() const;
  /// Latency (µs) at percentile `pct` in [0, 100]; 0 before any sample.
  double percentile(double pct) const;
  double p50() const { return percentile(50.0); }
  double p95() const { return percentile(95.0); }
  double p99() const { return percentile(99.0); }
  uint64_t bucket(size_t b) const;

  /// Accumulates another histogram's counts into this one (cluster-wide
  /// views merge the per-replica histograms). Concurrent records on either
  /// side stay consistent bucket-wise (relaxed snapshot).
  void merge_from(const LatencyHistogram& other);

  /// Zeros every bucket and the running sum. Not atomic as a whole: a
  /// record() racing a reset() lands entirely in the old or the new
  /// generation per field, so a subsequent snapshot may briefly show a
  /// count/total mismatch of at most the in-flight samples. Intended for
  /// test setup and operator-initiated counter resets, not for use
  /// concurrent with a consistency-sensitive reader.
  void reset();

  /// Plain-value copy of the bucket counts — what the Prometheus exporter
  /// renders (cumulative le-buckets) without holding atomics across
  /// formatting.
  ///
  /// Consistency contract: buckets are read one by one with relaxed loads
  /// and `count` is *derived* from their sum, so a snapshot is always
  /// internally consistent (count == Σ buckets — cumulative le-buckets
  /// never decrease and `+Inf` equals `_count`, which Prometheus requires).
  /// Concurrent record()/merge_from() calls never lose or double-count a
  /// sample, but a snapshot taken mid-record may include a sample's bucket
  /// increment without its total_us (or vice versa), skewing mean_us by at
  /// most the in-flight samples. Snapshots are monotone: a later snapshot's
  /// per-bucket counts are ≥ an earlier one's (absent reset()).
  struct Snapshot {
    std::array<uint64_t, kBuckets> buckets{};
    uint64_t total_us = 0;
    uint64_t count = 0;
  };
  Snapshot snapshot() const;

 private:
  static constexpr std::memory_order relaxed = std::memory_order_relaxed;

  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> total_us_{0};
};

/// Streaming monitor of a serving unit's predictive-uncertainty signals —
/// the paper's operational premise made scrapeable: stochastic-affine MC
/// uncertainty reveals hardware faults, so entropy/variance drift on a
/// replica is visible from Prometheus before any accuracy data exists.
///
/// Two EWMAs per signal: a *fast* window (alpha 0.2, tracks the last ~5
/// requests) and a slow *baseline* (alpha 0.02, the last ~50). The drift
/// gauge is the fast entropy's relative departure from baseline
/// (fast/baseline − 1): a healthy unit hovers near 0; a fault-injected or
/// degrading chip instance pushes entropy up and the gauge follows within
/// a handful of requests. All updates are lock-free CAS on bit-cast
/// atomic doubles — record() is called on the batcher's hot completion
/// path for every successful request, tracing on or off.
class UncertaintyMonitor {
 public:
  void record(double entropy, double variance);

  struct Snapshot {
    uint64_t count = 0;
    double entropy_fast = 0.0;
    double entropy_baseline = 0.0;
    double variance_fast = 0.0;
    double variance_baseline = 0.0;
    /// entropy_fast / entropy_baseline − 1, or 0 while the baseline is
    /// still too small (< 1e-9) to divide by.
    double drift = 0.0;
  };
  Snapshot snapshot() const;

  void reset();

 private:
  static constexpr std::memory_order relaxed = std::memory_order_relaxed;
  static constexpr double kFastAlpha = 0.2;
  static constexpr double kBaselineAlpha = 0.02;

  static void ewma_update(std::atomic<uint64_t>& slot, double value,
                          double alpha, bool first);

  std::atomic<uint64_t> count_{0};
  // EWMAs stored as bit-cast doubles so record() stays lock-free.
  std::atomic<uint64_t> entropy_fast_{0};
  std::atomic<uint64_t> entropy_baseline_{0};
  std::atomic<uint64_t> variance_fast_{0};
  std::atomic<uint64_t> variance_baseline_{0};
};

/// Reduces a Prediction to its scalar uncertainty signals and records them:
/// classification → mean per-sample entropy + mean class variance;
/// regression → variance = mean stddev² (entropy 0, undefined for a point
/// forecast); segmentation → mean binary entropy of the pixel
/// probabilities + mean p(1−p). Pure loops over already-computed tensors —
/// no allocation, safe on the zero-alloc serving path.
void observe_uncertainty(UncertaintyMonitor& monitor, const Prediction& pred);

/// Counters of one serve::AsyncBatcher — queue depth, dispatch counts, and
/// a power-of-two batch-size histogram. Everything is atomic: the submit
/// path and the workers update them, and any thread may read at any time
/// (values are monotonic except queue_depth). Exposed by
/// AsyncBatcher::counters() for dashboards and the coalescing tests.
class BatcherCounters {
 public:
  /// Histogram buckets by dispatched batch size (requests): 1, 2, 3–4,
  /// 5–8, 9–16, 17–32, 33–64, 65+.
  static constexpr size_t kHistogramBuckets = 8;

  /// Bucket index for a dispatched batch of `requests`.
  static size_t bucket_for(size_t requests);

  void on_submit();
  void on_reject();
  void on_dispatch(size_t batch_requests, size_t batch_rows);
  void on_complete(size_t batch_requests);
  void on_timeout();
  /// Deadline sweep: `requests` expired in the queue and are being failed
  /// without ever joining a batch. Decrements queue_depth — the other half
  /// of the conservation law (on_dispatch covers batched requests) — and
  /// nothing else; the caller still reports on_timeout/on_complete per
  /// request once the futures are failed.
  void on_expire(size_t requests);
  void on_effective_delay(int64_t us);

  uint64_t submitted() const { return submitted_.load(relaxed); }
  uint64_t rejected() const { return rejected_.load(relaxed); }
  /// Requests whose future has been fulfilled (value or exception).
  uint64_t completed() const { return completed_.load(relaxed); }
  uint64_t batches() const { return batches_.load(relaxed); }
  /// Requests queued but not yet dispatched into a batch.
  int64_t queue_depth() const { return queue_depth_.load(relaxed); }
  uint64_t max_queue_depth() const { return max_queue_depth_.load(relaxed); }
  /// Largest batch dispatched so far — the coalescing tests assert this
  /// never exceeds the configured max.
  uint64_t max_batch_requests() const { return max_batch_.load(relaxed); }
  /// Largest dispatched batch in *rows* — the rows-based sizing tests
  /// assert this never exceeds batch_max_rows (oversized singletons
  /// excepted).
  uint64_t max_batch_rows() const { return max_rows_.load(relaxed); }
  /// Mean dispatched batch size (0 before the first dispatch).
  double mean_batch_requests() const;
  double mean_batch_rows() const;
  uint64_t histogram_bucket(size_t bucket) const;
  /// Requests failed with Status::kTimeout because their deadline had
  /// already expired when a worker dispatched them (serve/batcher.h).
  /// Timeouts count in completed() too — the future was fulfilled.
  uint64_t timeouts() const { return timeouts_.load(relaxed); }
  /// Gauge: the coalescing delay most recently applied to a submitted
  /// request — the configured batch_max_delay_us, or the EWMA-tracked
  /// effective delay when batch_adaptive_delay is on (serve/batcher.h).
  int64_t effective_delay_us() const { return effective_delay_us_.load(relaxed); }

  /// Submit-to-completion latency of every fulfilled request (values and
  /// typed failures alike).
  const LatencyHistogram& latency() const { return latency_; }
  LatencyHistogram& latency() { return latency_; }

  /// Modeled analog serving time (µs) per successful request on a crossbar
  /// backend: the TileCost conversion count of the session's frozen tiling
  /// plan × the configured ADC cycle time × the request's rows. Empty for
  /// digital backends. Kept separate from latency() — wall-clock measures
  /// the simulation, this measures the modeled hardware.
  const LatencyHistogram& analog_latency() const { return analog_latency_; }
  LatencyHistogram& analog_latency() { return analog_latency_; }

  /// Streaming entropy/variance EWMAs of every successful prediction this
  /// batcher resolved — the per-unit drift signal the metrics endpoint
  /// exports (see UncertaintyMonitor).
  const UncertaintyMonitor& uncertainty() const { return uncertainty_; }
  UncertaintyMonitor& uncertainty() { return uncertainty_; }

 private:
  static constexpr std::memory_order relaxed = std::memory_order_relaxed;

  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> dispatched_{0};
  std::atomic<int64_t> queue_depth_{0};
  std::atomic<uint64_t> max_queue_depth_{0};
  std::atomic<uint64_t> max_batch_{0};
  std::atomic<uint64_t> max_rows_{0};
  std::atomic<uint64_t> dispatched_rows_{0};
  std::atomic<int64_t> effective_delay_us_{0};
  std::atomic<uint64_t> timeouts_{0};
  std::array<std::atomic<uint64_t>, kHistogramBuckets> histogram_{};
  LatencyHistogram latency_;
  LatencyHistogram analog_latency_;
  UncertaintyMonitor uncertainty_;
};

/// Classification accuracy of the MC-mean prediction over `test`.
double accuracy(const InferenceSession& session,
                const data::ClassificationData& test);

/// Forecast RMSE (normalized units) of the MC-mean prediction.
double rmse(const InferenceSession& session, const data::SeriesData& test);

/// Binary segmentation mIoU of the thresholded MC-mean probabilities,
/// aggregated over the whole set (not per batch).
double miou(const InferenceSession& session,
            const data::SegmentationData& test);

}  // namespace ripple::serve
