#include "fault/mc_batch.h"

#include <cstring>

#include "core/mc_stream.h"
#include "tensor/check.h"
#include "tensor/random.h"

namespace ripple::fault {

Tensor replicate_batch(const Tensor& x, int t) {
  RIPPLE_CHECK(t >= 1) << "replicate_batch needs t >= 1";
  RIPPLE_CHECK(x.rank() >= 1) << "replicate_batch needs a batched tensor";
  Shape shape = x.shape();
  shape[0] *= t;
  Tensor out(shape);
  const size_t block = sizeof(float) * static_cast<size_t>(x.numel());
  for (int r = 0; r < t; ++r)
    std::memcpy(out.data() + static_cast<int64_t>(r) * x.numel(), x.data(),
                block);
  return out;
}

namespace {

Shape replica_shape(const Tensor& stacked, int t) {
  RIPPLE_CHECK(t >= 1) << "replica reduction needs t >= 1";
  RIPPLE_CHECK(stacked.rank() >= 1 && stacked.dim(0) % t == 0)
      << "stacked dim 0 (" << (stacked.rank() >= 1 ? stacked.dim(0) : 0)
      << ") not divisible into " << t << " replicas";
  Shape shape = stacked.shape();
  shape[0] /= t;
  return shape;
}

}  // namespace

Tensor replica_mean(const Tensor& stacked, int t) {
  Tensor mean = Tensor::zeros(replica_shape(stacked, t));
  const int64_t block = mean.numel();
  const float* ps = stacked.data();
  float* pm = mean.data();
  for (int r = 0; r < t; ++r) {
    const float* src = ps + static_cast<int64_t>(r) * block;
    for (int64_t i = 0; i < block; ++i) pm[i] += src[i];
  }
  const float inv = 1.0f / static_cast<float>(t);
  for (int64_t i = 0; i < block; ++i) pm[i] *= inv;
  return mean;
}

ReplicaMoments replica_moments(const Tensor& stacked, int t) {
  ReplicaMoments out;
  out.mean = Tensor::zeros(replica_shape(stacked, t));
  out.variance = Tensor::zeros(out.mean.shape());
  const int64_t block = out.mean.numel();
  const float* ps = stacked.data();
  float* pm = out.mean.data();
  float* pv = out.variance.data();
  for (int r = 0; r < t; ++r) {
    const float* src = ps + static_cast<int64_t>(r) * block;
    for (int64_t i = 0; i < block; ++i) {
      pm[i] += src[i];
      pv[i] += src[i] * src[i];
    }
  }
  const float inv = 1.0f / static_cast<float>(t);
  for (int64_t i = 0; i < block; ++i) {
    pm[i] *= inv;
    const float var = pv[i] * inv - pm[i] * pm[i];
    pv[i] = var > 0.0f ? var : 0.0f;
  }
  return out;
}

uint64_t layer_stream_seed(uint64_t base_seed, size_t layer_index) {
  // Single source of truth for the derivation: the serving path
  // (core/mc_stream.h) must sample the same streams.
  return core::mc_layer_seed(base_seed, layer_index);
}

}  // namespace ripple::fault
