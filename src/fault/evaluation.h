// Fault-injection evaluation over the serving API.
//
// The §IV-A2 "chip instances" loop, rebased from the deprecated
// evaluate.h free functions onto serve::InferenceSession: each Monte-Carlo
// run perturbs the session's model in place, rebuilds the session's frozen
// packed-weight cache (in-place mutation keeps the data pointers the cache
// is keyed by), scores the session, and restores. Because the session owns
// the mask streams, every chip instance is scored under the *same*
// Bayesian samples — common random numbers across runs, so the spread
// measures the faults, not the sampling.
#pragma once

#include <functional>

#include "fault/injector.h"
#include "fault/monte_carlo.h"
#include "serve/session.h"

namespace ripple::fault {

/// Applies `spec` to `runs` deterministic chip instances (sub-streams of
/// `base_seed`) of the session's model and aggregates score(session).
/// The model is restored after every run. Single-threaded: the weights
/// mutate between scores.
MonteCarloStats evaluate_under_faults(
    serve::InferenceSession& session, const FaultSpec& spec, int runs,
    uint64_t base_seed,
    const std::function<double(serve::InferenceSession&)>& score);

}  // namespace ripple::fault
