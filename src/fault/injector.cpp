#include "fault/injector.h"

#include <cmath>

#include "quant/bitcodec.h"
#include "tensor/ops.h"

namespace ripple::fault {

FaultInjector::FaultInjector(std::vector<FaultTarget> targets,
                             nn::ActivationNoisePtr noise)
    : targets_(std::move(targets)), noise_(std::move(noise)) {
  pristine_.reserve(targets_.size());
  for (const FaultTarget& t : targets_) {
    RIPPLE_CHECK(t.param != nullptr) << "null fault target";
    pristine_.push_back(t.param->var.value().clone());
  }
}

FaultInjector::~FaultInjector() {
  if (applied_) restore();
}

void FaultInjector::apply(const FaultSpec& spec, Rng& rng) {
  RIPPLE_CHECK(!applied_) << "apply() twice without restore()";
  applied_ = true;
  last_flipped_bits_ = 0;

  const bool weight_noise = !spec.noise_on_activations;
  for (size_t i = 0; i < targets_.size(); ++i) {
    const FaultTarget& t = targets_[i];
    Tensor w = pristine_[i].clone();

    if (spec.bitflip_p > 0.0f && t.quantizer != nullptr) {
      std::vector<int32_t> codes = t.quantizer->encode(w);
      last_flipped_bits_ += quant::flip_random_bits(
          codes, t.quantizer->bits(), spec.bitflip_p, rng);
      w = t.quantizer->decode(codes, w.shape());
    }

    if (spec.drift_t_over_tau > 0.0f) {
      // Conductance retention loss: magnitude decays over storage time
      // with per-device spread (the τ distribution of the cells).
      float* pw = w.data();
      for (int64_t k = 0; k < w.numel(); ++k)
        pw[k] *= std::exp(-spec.drift_t_over_tau * rng.uniform(0.5f, 1.5f));
    }

    if (spec.stuck_at_frac > 0.0f) {
      const float wmax = ops::max(ops::abs(pristine_[i]));
      float* pw = w.data();
      for (int64_t k = 0; k < w.numel(); ++k)
        if (rng.bernoulli(spec.stuck_at_frac))
          pw[k] = rng.bernoulli(0.5f) ? wmax : -wmax;
    }

    if (weight_noise) {
      // Strengths are relative to the pristine per-tensor weight std so the
      // same σ axis is meaningful for every layer.
      const float wstd = std::sqrt(ops::variance(pristine_[i]));
      float* pw = w.data();
      if (spec.multiplicative_std > 0.0f)
        for (int64_t k = 0; k < w.numel(); ++k)
          pw[k] *= 1.0f + rng.normal(0.0f, spec.multiplicative_std);
      if (spec.additive_std > 0.0f && wstd > 0.0f)
        for (int64_t k = 0; k < w.numel(); ++k)
          pw[k] += rng.normal(0.0f, spec.additive_std * wstd);
      if (spec.uniform_range > 0.0f && wstd > 0.0f)
        for (int64_t k = 0; k < w.numel(); ++k)
          pw[k] += rng.uniform(-spec.uniform_range * wstd,
                               spec.uniform_range * wstd);
    }

    t.param->var.value().copy_from(w);
  }

  if (spec.noise_on_activations) {
    RIPPLE_CHECK(noise_ != nullptr)
        << "spec routes noise to activations but the model has no "
           "ActivationNoiseConfig hook";
    noise_->enabled = true;
    noise_->additive_std = spec.additive_std;
    noise_->multiplicative_std = spec.multiplicative_std;
    noise_->uniform_range = spec.uniform_range;
    noise_->rng = &rng;
    // When a serving session has bound the config to a stream slot, draws
    // derive from the session's streams instead of `rng`; salt them with
    // this chip instance so runs stay independent draws.
    noise_->stream_salt = rng.next_u64();
  }
}

void FaultInjector::restore() {
  RIPPLE_CHECK(applied_) << "restore() without apply()";
  for (size_t i = 0; i < targets_.size(); ++i)
    targets_[i].param->var.value().copy_from(pristine_[i]);
  if (noise_ != nullptr) {
    noise_->enabled = false;
    noise_->additive_std = 0.0f;
    noise_->multiplicative_std = 0.0f;
    noise_->uniform_range = 0.0f;
    noise_->rng = nullptr;
    noise_->stream_salt = 0;
  }
  applied_ = false;
}

}  // namespace ripple::fault
