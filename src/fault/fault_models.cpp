#include "fault/fault_models.h"

#include <sstream>

namespace ripple::fault {

std::string FaultSpec::describe() const {
  std::ostringstream os;
  bool first = true;
  auto add = [&](const std::string& part) {
    if (!first) os << ", ";
    os << part;
    first = false;
  };
  if (bitflip_p > 0.0f) {
    std::ostringstream p;
    p << "bitflip p=" << bitflip_p;
    add(p.str());
  }
  if (additive_std > 0.0f) {
    std::ostringstream p;
    p << "additive sigma=" << additive_std;
    add(p.str());
  }
  if (multiplicative_std > 0.0f) {
    std::ostringstream p;
    p << "multiplicative sigma=" << multiplicative_std;
    add(p.str());
  }
  if (uniform_range > 0.0f) {
    std::ostringstream p;
    p << "uniform range=" << uniform_range;
    add(p.str());
  }
  if (stuck_at_frac > 0.0f) {
    std::ostringstream p;
    p << "stuck-at frac=" << stuck_at_frac;
    add(p.str());
  }
  if (drift_t_over_tau > 0.0f) {
    std::ostringstream p;
    p << "drift t/tau=" << drift_t_over_tau;
    add(p.str());
  }
  if (first) add("clean");
  if (noise_on_activations) add("(noise on activations)");
  return os.str();
}

FaultSpec FaultSpec::bitflips(float p) {
  FaultSpec s;
  s.bitflip_p = p;
  return s;
}

FaultSpec FaultSpec::additive(float sigma, bool on_activations) {
  FaultSpec s;
  s.additive_std = sigma;
  s.noise_on_activations = on_activations;
  return s;
}

FaultSpec FaultSpec::multiplicative(float sigma, bool on_activations) {
  FaultSpec s;
  s.multiplicative_std = sigma;
  s.noise_on_activations = on_activations;
  return s;
}

FaultSpec FaultSpec::uniform(float range, bool on_activations) {
  FaultSpec s;
  s.uniform_range = range;
  s.noise_on_activations = on_activations;
  return s;
}

FaultSpec FaultSpec::stuck_at(float fraction) {
  FaultSpec s;
  s.stuck_at_frac = fraction;
  return s;
}

FaultSpec FaultSpec::drift(float t_over_tau) {
  FaultSpec s;
  s.drift_t_over_tau = t_over_tau;
  return s;
}

}  // namespace ripple::fault
