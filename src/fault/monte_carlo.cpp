#include "fault/monte_carlo.h"

#include <algorithm>
#include <cmath>

#include "tensor/check.h"
#include "tensor/env.h"

namespace ripple::fault {

MonteCarloStats run_monte_carlo(
    int runs, uint64_t base_seed,
    const std::function<double(int, Rng&)>& trial) {
  RIPPLE_CHECK(runs >= 1) << "monte carlo needs >= 1 run";
  MonteCarloStats stats;
  stats.runs = runs;
  stats.values.reserve(static_cast<size_t>(runs));
  Rng base(base_seed);
  for (int r = 0; r < runs; ++r) {
    Rng run_rng = base.fork(static_cast<uint64_t>(r));
    stats.values.push_back(trial(r, run_rng));
  }
  double sum = 0.0;
  for (double v : stats.values) sum += v;
  stats.mean = sum / runs;
  double ss = 0.0;
  for (double v : stats.values) ss += (v - stats.mean) * (v - stats.mean);
  stats.stddev = runs > 1 ? std::sqrt(ss / (runs - 1)) : 0.0;
  stats.min = *std::min_element(stats.values.begin(), stats.values.end());
  stats.max = *std::max_element(stats.values.begin(), stats.values.end());
  return stats;
}

int default_mc_runs(int fallback) {
  return env_int("RIPPLE_MC_RUNS", fast_mode() ? 3 : fallback);
}

}  // namespace ripple::fault
