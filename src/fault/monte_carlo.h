// Monte-Carlo fault-simulation harness (§IV-A2: "100 chip instances").
//
// Each run forks a deterministic RNG sub-stream, so results are
// reproducible and independent of evaluation order.
#pragma once

#include <functional>
#include <vector>

#include "tensor/random.h"

namespace ripple::fault {

struct MonteCarloStats {
  double mean = 0.0;
  double stddev = 0.0;  // sample standard deviation (n−1)
  double min = 0.0;
  double max = 0.0;
  int runs = 0;
  std::vector<double> values;
};

/// Executes `trial(run_index, rng)` for `runs` chip instances and
/// aggregates the returned metric.
MonteCarloStats run_monte_carlo(
    int runs, uint64_t base_seed,
    const std::function<double(int, Rng&)>& trial);

/// Number of Monte-Carlo runs for the bench harnesses: RIPPLE_MC_RUNS env
/// override, `fallback` otherwise (paper value: 100).
int default_mc_runs(int fallback);

}  // namespace ripple::fault
