// Fault injection into deployed model parameters.
//
// Workflow (one "chip instance" per Monte-Carlo run):
//   1. After training, the model is *deployed*: weight quantizers are
//      calibrated and the latent float weights are replaced by their
//      quantized hardware values (models do this in deploy()).
//   2. FaultInjector snapshots the pristine deployed weights.
//   3. apply(spec, rng) perturbs the weights in place — bit flips go
//      through the quantizer's encode/flip/decode path, analog noise is
//      added to the deployed values directly (no re-quantization: variation
//      happens *after* programming). Activation-routed noise is forwarded
//      to the model's ActivationNoiseConfig.
//   4. evaluate, then restore() for the next instance.
#pragma once

#include <vector>

#include "autograd/module.h"
#include "fault/fault_models.h"
#include "nn/noise.h"
#include "quant/quantizer.h"
#include "tensor/random.h"

namespace ripple::fault {

/// One injectable parameter: the quantizer is null for full-precision
/// parameters (those receive analog noise but no bit flips).
struct FaultTarget {
  autograd::Parameter* param = nullptr;
  quant::Quantizer* quantizer = nullptr;
};

class FaultInjector {
 public:
  /// `noise` may be null when the model has no activation-noise hook.
  FaultInjector(std::vector<FaultTarget> targets,
                nn::ActivationNoisePtr noise = nullptr);
  ~FaultInjector();

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Perturbs all targets according to spec. Must be followed by restore()
  /// before the next apply().
  void apply(const FaultSpec& spec, Rng& rng);

  /// Restores pristine weights and disables activation noise.
  void restore();

  bool applied() const { return applied_; }
  size_t target_count() const { return targets_.size(); }

  /// Total bits flipped by the last apply() (diagnostics).
  int64_t last_flipped_bits() const { return last_flipped_bits_; }

 private:
  std::vector<FaultTarget> targets_;
  std::vector<Tensor> pristine_;
  nn::ActivationNoisePtr noise_;
  bool applied_ = false;
  int64_t last_flipped_bits_ = 0;
};

}  // namespace ripple::fault
