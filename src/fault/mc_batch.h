// Batched Monte-Carlo forward-pass utilities (tensor level).
//
// The Bayesian MC estimate needs T stochastic forward passes per input.
// Run serially, every pass pays the full per-pass overhead: weight
// transforms, GEMM weight packing, graph-node and output allocations,
// per-layer dispatch. The batched path folds the T samples into the batch
// dimension instead: the input batch [N, ...] is replicated once to
// [T·N, ...] (replica-major: rows [r·N, (r+1)·N) belong to replica r), ONE
// forward pass runs, and only the stochastic layers (InvertedNorm affine
// dropout) diverge per replica via per-replica masks. im2col, GEMM packing
// and conv weights are amortized across all T samples.
//
// Determinism contract: each InvertedNorm layer draws its masks from an
// independent per-layer stream seeded with layer_stream_seed(base, i). A
// layer then consumes mask pairs in replica order r = 0..T-1 — exactly the
// order T serial passes would consume them — so the batched and serial
// paths sample identical masks for the same base seed and agree to float
// rounding (the grouped conv GEMM tiles the two batch widths differently,
// so last-ulp differences are possible; tests assert 1e-4 agreement). See
// models/evaluate.h for the model-level drivers.
#pragma once

#include <cstdint>

#include "tensor/tensor.h"

namespace ripple::fault {

/// Tiles x [N, ...] t times along dim 0 -> [t·N, ...], replica-major.
Tensor replicate_batch(const Tensor& x, int t);

/// Mean over the t replica blocks of a stacked [t·N, ...] tensor -> [N, ...].
Tensor replica_mean(const Tensor& stacked, int t);

/// Per-element mean and across-replica variance (population, E[y²]−E[y]²,
/// clamped at 0 against rounding) of a stacked [t·N, ...] tensor.
struct ReplicaMoments {
  Tensor mean;      // [N, ...]
  Tensor variance;  // [N, ...]
};
ReplicaMoments replica_moments(const Tensor& stacked, int t);

/// Deterministic per-layer mask-stream seed for batched/serial MC parity.
uint64_t layer_stream_seed(uint64_t base_seed, size_t layer_index);

}  // namespace ripple::fault
