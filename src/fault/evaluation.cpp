#include "fault/evaluation.h"

namespace ripple::fault {

namespace {

/// RAII: un-faults the model and re-packs the session's weights even when
/// the score callback throws, so a failed run never leaves a corrupted
/// model behind a frozen cache.
class InjectionScope {
 public:
  InjectionScope(FaultInjector& injector, serve::InferenceSession& session,
                 const FaultSpec& spec, Rng& rng)
      : injector_(injector), session_(session) {
    injector_.apply(spec, rng);
    session_.invalidate_packed_weights();
  }
  ~InjectionScope() {
    injector_.restore();
    session_.invalidate_packed_weights();
  }

 private:
  FaultInjector& injector_;
  serve::InferenceSession& session_;
};

}  // namespace

MonteCarloStats evaluate_under_faults(
    serve::InferenceSession& session, const FaultSpec& spec, int runs,
    uint64_t base_seed,
    const std::function<double(serve::InferenceSession&)>& score) {
  models::TaskModel& model = session.model();
  FaultInjector injector(model.fault_targets(), model.noise());
  return run_monte_carlo(runs, base_seed, [&](int, Rng& rng) {
    InjectionScope scope(injector, session, spec, rng);
    return score(session);
  });
}

}  // namespace ripple::fault
