// Algorithmic NVM non-ideality models (§IV-A2).
//
// The paper abstracts circuit-level effects into four weight/activation
// perturbations, following [16] (Kim et al.):
//   * bit flips         — programming errors / retention faults on the
//                         stored weight codes
//   * additive  noise   — conductance variation, w' = w + N(0, σ·σ_w)
//   * multiplicative    — conductance variation, w' = w·(1 + N(0, σ))
//   * uniform noise     — bounded perturbation, w' = w + U(−r, r)·σ_w
// Additive/uniform strengths are *relative to the per-tensor weight std*
// so one σ axis is comparable across layers and models. For binary
// networks, variation is injected into the normalized pre-sign activations
// instead (see nn::ActivationNoiseConfig); bit flips always target the
// stored codes.
#pragma once

#include <string>

namespace ripple::fault {

struct FaultSpec {
  /// Per-bit flip probability on encoded quantized weights.
  float bitflip_p = 0.0f;
  /// Additive Gaussian on weights, stddev = additive_std · std(w).
  float additive_std = 0.0f;
  /// Multiplicative Gaussian on weights: w · (1 + N(0, σ)).
  float multiplicative_std = 0.0f;
  /// Additive uniform on weights, range = uniform_range · std(w).
  float uniform_range = 0.0f;
  /// Fraction of weights stuck at an extreme code (|w|max or −|w|max).
  float stuck_at_frac = 0.0f;
  /// Retention drift: conductances decay toward zero over time,
  /// w' = w · exp(−(t/τ)·u) with per-device u ~ U(0.5, 1.5). The field is
  /// the normalized storage time t/τ (0 = fresh chip).
  float drift_t_over_tau = 0.0f;

  /// For binary-weight models, route additive/multiplicative/uniform noise
  /// into the normalized pre-sign activations rather than the weights
  /// (§IV-A2). Bit flips still hit the weight codes.
  bool noise_on_activations = false;

  bool is_clean() const {
    return bitflip_p == 0.0f && additive_std == 0.0f &&
           multiplicative_std == 0.0f && uniform_range == 0.0f &&
           stuck_at_frac == 0.0f && drift_t_over_tau == 0.0f;
  }

  std::string describe() const;

  static FaultSpec bitflips(float p);
  static FaultSpec additive(float sigma, bool on_activations = false);
  static FaultSpec multiplicative(float sigma, bool on_activations = false);
  static FaultSpec uniform(float range, bool on_activations = false);
  static FaultSpec stuck_at(float fraction);
  static FaultSpec drift(float t_over_tau);
};

}  // namespace ripple::fault
