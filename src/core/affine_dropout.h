// Affine Dropout (§III-B): stochastic drop-to-identity of the inverted
// normalization's affine parameters.
//
// Two independent Bernoulli masks are sampled with drop probability p; the
// scale γ is dropped *to one* (it multiplies the weighted sum, so zero
// would annihilate the signal) and the shift β is dropped *to zero*:
//   γ' = γ·m_γ + (1 − m_γ)        β' = β·m_β
// Element-wise sampling draws one mask entry per channel; vector-wise
// sampling draws a single Bernoulli per parameter vector — the variant the
// paper deploys because it needs only one RNG per layer in the IMC
// implementation.
#pragma once

#include "autograd/variable.h"
#include "tensor/random.h"

namespace ripple::core {

enum class DropGranularity { kElementWise, kVectorWise };

const char* drop_granularity_name(DropGranularity g);

/// Samples an affine-dropout mask of length `channels`: entries are 1
/// (keep) or 0 (drop). Vector-wise masks are constant across channels.
Tensor sample_affine_mask(int64_t channels, float p, DropGranularity g,
                          Rng& rng);

/// γ' = γ·m + (1 − m) with m a graph constant.
autograd::Variable drop_gamma_to_one(const autograd::Variable& gamma,
                                     const Tensor& mask);

/// β' = β·m with m a graph constant.
autograd::Variable drop_beta_to_zero(const autograd::Variable& beta,
                                     const Tensor& mask);

// Replicated variants for the batched Monte-Carlo forward: mask is [R, C]
// (one independently sampled mask per folded replica) and the result is the
// [R, C] matrix of per-replica effective affine vectors.
/// out[r,c] = γ[c]·m[r,c] + (1 − m[r,c]).
autograd::Variable drop_gamma_to_one_replicated(const autograd::Variable& gamma,
                                                const Tensor& mask);
/// out[r,c] = β[c]·m[r,c].
autograd::Variable drop_beta_to_zero_replicated(const autograd::Variable& beta,
                                                const Tensor& mask);

}  // namespace ripple::core
