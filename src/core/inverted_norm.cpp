#include "core/inverted_norm.h"

#include "autograd/ops.h"

namespace ripple::core {

InvertedNorm::InvertedNorm(int64_t channels, Options options, Rng* rng)
    : channels_(channels), options_(options), rng_(rng) {
  RIPPLE_CHECK(channels > 0) << "InvertedNorm channels must be positive";
  RIPPLE_CHECK(options_.groups >= 1 && channels % options_.groups == 0)
      << "InvertedNorm: " << channels << " channels not divisible into "
      << options_.groups << " groups";
  RIPPLE_CHECK(options_.dropout_p >= 0.0f && options_.dropout_p < 1.0f)
      << "InvertedNorm dropout_p must be in [0,1)";
  Rng& gen = rng_ != nullptr ? *rng_ : global_rng();
  // Random init (§III-C): identical initial values would receive identical
  // gradients; randomness also adds train-time stochasticity to the
  // weighted sum.
  gamma_ = &register_parameter("gamma", options_.init.make_gamma(channels, gen),
                               autograd::ParamKind::kAffineWeight);
  beta_ = &register_parameter("beta", options_.init.make_beta(channels, gen),
                              autograd::ParamKind::kAffineBias);
}

autograd::Variable InvertedNorm::forward(const autograd::Variable& x) {
  namespace ag = ripple::autograd;
  RIPPLE_CHECK(x.dim(1) == channels_)
      << "InvertedNorm expects " << channels_ << " channels, got " << x.dim(1);

  ag::Variable gamma_eff = gamma_->var;
  ag::Variable beta_eff = beta_->var;
  if (stochastic() && options_.dropout_p > 0.0f) {
    Rng& gen = rng_ != nullptr ? *rng_ : global_rng();
    // Independent masks for weight and bias (§III-B, Fig. 3).
    const Tensor gamma_mask = sample_affine_mask(
        channels_, options_.dropout_p, options_.granularity, gen);
    const Tensor beta_mask = sample_affine_mask(
        channels_, options_.dropout_p, options_.granularity, gen);
    gamma_eff = drop_gamma_to_one(gamma_eff, gamma_mask);
    beta_eff = drop_beta_to_zero(beta_eff, beta_mask);
  }

  if (options_.affine_first) {
    // Paper order: affine transformation, then normalization (Fig. 2b).
    ag::Variable z =
        ag::add_channel(ag::mul_channel(x, gamma_eff), beta_eff);
    return ag::group_normalize(z, options_.groups, options_.eps);
  }
  // Ablation order: normalize, then stochastic affine (conventional flow).
  ag::Variable z = ag::group_normalize(x, options_.groups, options_.eps);
  return ag::add_channel(ag::mul_channel(z, gamma_eff), beta_eff);
}

}  // namespace ripple::core
