#include "core/inverted_norm.h"

#include <algorithm>

#include "autograd/ops.h"
#include "core/lazy_stem.h"
#include "core/mc_stream.h"

namespace ripple::core {

InvertedNorm::InvertedNorm(int64_t channels, Options options, Rng* rng)
    : channels_(channels), options_(options), rng_(rng) {
  RIPPLE_CHECK(channels > 0) << "InvertedNorm channels must be positive";
  RIPPLE_CHECK(options_.groups >= 1 && channels % options_.groups == 0)
      << "InvertedNorm: " << channels << " channels not divisible into "
      << options_.groups << " groups";
  RIPPLE_CHECK(options_.dropout_p >= 0.0f && options_.dropout_p < 1.0f)
      << "InvertedNorm dropout_p must be in [0,1)";
  Rng& gen = rng_ != nullptr ? *rng_ : global_rng();
  // Random init (§III-C): identical initial values would receive identical
  // gradients; randomness also adds train-time stochasticity to the
  // weighted sum.
  gamma_ = &register_parameter("gamma", options_.init.make_gamma(channels, gen),
                               autograd::ParamKind::kAffineWeight);
  beta_ = &register_parameter("beta", options_.init.make_beta(channels, gen),
                              autograd::ParamKind::kAffineBias);
}

void InvertedNorm::set_mc_replicas(int64_t t) {
  RIPPLE_CHECK(t >= 1) << "InvertedNorm replicas must be >= 1";
  mc_replicas_ = t;
}

void InvertedNorm::set_mask_stream(uint64_t seed) {
  has_mask_stream_ = true;
  mask_stream_seed_ = seed;
  mask_invocation_ = 0;
  mask_replica_offset_ = 0;
}

void InvertedNorm::set_mask_replica_offset(int64_t r) {
  RIPPLE_CHECK(r >= 0) << "mask replica offset must be >= 0";
  mask_replica_offset_ = r;
  mask_invocation_ = 0;
}

void InvertedNorm::clear_mask_stream() { has_mask_stream_ = false; }

autograd::Variable InvertedNorm::forward(const autograd::Variable& x) {
  namespace ag = ripple::autograd;
  RIPPLE_CHECK(x.dim(1) == channels_)
      << "InvertedNorm expects " << channels_ << " channels, got " << x.dim(1);

  ag::Variable gamma_eff = gamma_->var;
  ag::Variable beta_eff = beta_->var;
  ag::Variable xin = x;
  bool replicated = false;
  if (stochastic() && options_.dropout_p > 0.0f) {
    // Stream state comes from the caller's thread-local context when this
    // layer is bound to a slot (the serving path — no member mutation, safe
    // under concurrent passes); otherwise from the deprecated member-based
    // stream or the constructor-time Rng.
    McStreamContext* ctx = active_mc_stream();
    const bool use_ctx = ctx != nullptr && stream_slot_ >= 0;
    const int64_t replicas = use_ctx ? ctx->replicas() : mc_replicas_;
    Rng invocation_stream(0);
    Rng* genp = rng_ != nullptr ? rng_ : &global_rng();
    if (use_ctx) {
      invocation_stream.reseed(
          ctx->next_invocation_seed(static_cast<size_t>(stream_slot_)));
      genp = &invocation_stream;
      if (replicas == 1) {
        // Serial reference pass for replica r: burn the first r mask pairs
        // so the pair drawn below is the one the batched pass hands to r.
        for (int64_t s = 0; s < ctx->replica_offset(); ++s) {
          (void)sample_affine_mask(channels_, options_.dropout_p,
                                   options_.granularity, *genp);
          (void)sample_affine_mask(channels_, options_.dropout_p,
                                   options_.granularity, *genp);
        }
      }
    } else if (has_mask_stream_) {
      // Per-invocation sub-stream (recurrent models invoke the layer once
      // per timestep; each invocation owns a replica-ordered stream).
      invocation_stream.reseed(
          mc_invocation_seed(mask_stream_seed_, mask_invocation_));
      ++mask_invocation_;
      genp = &invocation_stream;
      if (mc_replicas_ == 1) {
        for (int64_t s = 0; s < mask_replica_offset_; ++s) {
          (void)sample_affine_mask(channels_, options_.dropout_p,
                                   options_.granularity, *genp);
          (void)sample_affine_mask(channels_, options_.dropout_p,
                                   options_.granularity, *genp);
        }
      }
    }
    Rng& gen = *genp;
    if (replicas > 1) {
      // Batched MC: one independent mask pair per folded replica, consumed
      // in replica order — the order serial passes would draw them.
      const int64_t t = replicas;
      // Lazy-stem pass: the replica-dependent affine below is the point
      // where the stem diverges — expand to the full t·n batch first.
      if (lazy_stem_pending(xin.dim(0))) xin = replicate_stem(xin);
      RIPPLE_CHECK(xin.dim(0) % t == 0)
          << "InvertedNorm: batch " << xin.dim(0) << " not divisible into "
          << t << " MC replicas";
      Tensor gamma_mask({t, channels_});
      Tensor beta_mask({t, channels_});
      for (int64_t r = 0; r < t; ++r) {
        const Tensor gm = sample_affine_mask(channels_, options_.dropout_p,
                                             options_.granularity, gen);
        const Tensor bm = sample_affine_mask(channels_, options_.dropout_p,
                                             options_.granularity, gen);
        std::copy(gm.data(), gm.data() + channels_,
                  gamma_mask.data() + r * channels_);
        std::copy(bm.data(), bm.data() + channels_,
                  beta_mask.data() + r * channels_);
      }
      gamma_eff = drop_gamma_to_one_replicated(gamma_eff, gamma_mask);
      beta_eff = drop_beta_to_zero_replicated(beta_eff, beta_mask);
      replicated = true;
    } else {
      // Independent masks for weight and bias (§III-B, Fig. 3).
      const Tensor gamma_mask = sample_affine_mask(
          channels_, options_.dropout_p, options_.granularity, gen);
      const Tensor beta_mask = sample_affine_mask(
          channels_, options_.dropout_p, options_.granularity, gen);
      gamma_eff = drop_gamma_to_one(gamma_eff, gamma_mask);
      beta_eff = drop_beta_to_zero(beta_eff, beta_mask);
    }
  }

  const auto apply_affine = [&](const ag::Variable& v) {
    if (replicated)
      return ag::add_channel_replicated(ag::mul_channel_replicated(v, gamma_eff),
                                        beta_eff);
    return ag::add_channel(ag::mul_channel(v, gamma_eff), beta_eff);
  };

  if (options_.affine_first) {
    // Paper order: affine transformation, then normalization (Fig. 2b).
    return ag::group_normalize(apply_affine(xin), options_.groups,
                               options_.eps);
  }
  // Ablation order: normalize, then stochastic affine (conventional flow).
  ag::Variable z = ag::group_normalize(xin, options_.groups, options_.eps);
  return apply_affine(z);
}

}  // namespace ripple::core
