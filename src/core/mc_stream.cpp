#include "core/mc_stream.h"

#include "tensor/check.h"
#include "tensor/random.h"

namespace ripple::core {

namespace {

// Mixing constants. K1/K2 predate this file (fault::layer_stream_seed and
// InvertedNorm's invocation derivation) and must not change, or the serving
// path stops reproducing the masks the legacy helpers sampled.
constexpr uint64_t kLayerMix = 0x9e3779b97f4a7c15ull;       // K1
constexpr uint64_t kInvocationMix = 0x517cc1b727220a95ull;  // K2
constexpr uint64_t kReplicaMix = 0x2545f4914f6cdd1dull;     // K3
constexpr uint64_t kChunkMix = 0xd6e8feb86659fd93ull;       // K4
constexpr uint64_t kSaltMix = 0x94d049bb133111ebull;        // K5

thread_local McStreamContext* tl_active_stream = nullptr;

}  // namespace

uint64_t mc_layer_seed(uint64_t base_seed, size_t slot) {
  return splitmix64(base_seed ^
                    (kLayerMix * (static_cast<uint64_t>(slot) + 1)));
}

uint64_t mc_invocation_seed(uint64_t layer_seed, int64_t invocation) {
  return splitmix64(layer_seed ^
                    (kInvocationMix * (static_cast<uint64_t>(invocation) + 1)));
}

uint64_t mc_replica_seed(uint64_t invocation_seed, int64_t replica) {
  return splitmix64(invocation_seed ^
                    (kReplicaMix * (static_cast<uint64_t>(replica) + 1)));
}

uint64_t mc_chunk_seed(uint64_t replica_seed, int64_t chunk_offset) {
  if (chunk_offset == 0) return replica_seed;
  return splitmix64(replica_seed ^
                    (kChunkMix * static_cast<uint64_t>(chunk_offset)));
}

uint64_t mc_salted_seed(uint64_t seed, uint64_t salt) {
  if (salt == 0) return seed;
  return splitmix64(seed ^ (kSaltMix * salt));
}

McStreamContext::McStreamContext(uint64_t base_seed, int64_t replicas,
                                 int64_t replica_offset, size_t slots)
    : replicas_(replicas), replica_offset_(replica_offset) {
  RIPPLE_CHECK(replicas >= 1) << "MC stream context needs replicas >= 1";
  RIPPLE_CHECK(replica_offset >= 0) << "MC replica offset must be >= 0";
  layer_seeds_.reserve(slots);
  for (size_t s = 0; s < slots; ++s)
    layer_seeds_.push_back(mc_layer_seed(base_seed, s));
  invocations_.assign(slots, 0);
}

uint64_t McStreamContext::next_invocation_seed(size_t slot) {
  RIPPLE_CHECK(slot < layer_seeds_.size())
      << "stream slot " << slot << " out of range (" << layer_seeds_.size()
      << " bound)";
  return mc_invocation_seed(layer_seeds_[slot], invocations_[slot]++);
}

void McStreamContext::rewind(int64_t replica_offset) {
  RIPPLE_CHECK(replica_offset >= 0) << "MC replica offset must be >= 0";
  replica_offset_ = replica_offset;
  invocations_.assign(invocations_.size(), 0);
}

McStreamContext* active_mc_stream() { return tl_active_stream; }

McStreamScope::McStreamScope(McStreamContext& ctx)
    : previous_(tl_active_stream) {
  tl_active_stream = &ctx;
}

McStreamScope::~McStreamScope() { tl_active_stream = previous_; }

}  // namespace ripple::core
