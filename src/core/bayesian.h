// Bayesian Monte-Carlo inference (§III-D).
//
// A model trained with (affine) dropout approximates a Gaussian process
// (Gal & Ghahramani, 2016); sampling T stochastic forward passes — each
// with fresh dropout masks — yields a predictive distribution. The mean of
// the per-pass class probabilities is the prediction; the spread carries
// the model uncertainty.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "tensor/tensor.h"

namespace ripple::core {

/// One stochastic forward pass: takes the input batch, returns logits
/// (classification) or point predictions (regression). The callee is
/// responsible for running in MC mode (dropout active, eval statistics).
using StochasticForward = std::function<Tensor(const Tensor&)>;

struct McClassification {
  Tensor mean_probs;           // [N, C] MC-averaged softmax probabilities
  Tensor variance;             // [N, C] across-sample variance of probs
  std::vector<int64_t> predictions;  // argmax of mean_probs
  int samples = 0;
};

/// Runs `samples` stochastic passes of a classifier and aggregates.
McClassification mc_classify(const StochasticForward& forward_logits,
                             const Tensor& x, int samples);

struct McRegression {
  Tensor mean;    // MC mean prediction
  Tensor stddev;  // across-sample standard deviation
  int samples = 0;
};

/// Runs `samples` stochastic passes of a regressor and aggregates.
McRegression mc_regress(const StochasticForward& forward, const Tensor& x,
                        int samples);

/// Dense (per-pixel) binary classification: averages sigmoid probabilities
/// over MC samples. Returns mean probabilities with the logits' shape.
Tensor mc_segment(const StochasticForward& forward_logits, const Tensor& x,
                  int samples);

}  // namespace ripple::core
