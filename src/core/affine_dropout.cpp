#include "core/affine_dropout.h"

#include "autograd/ops.h"
#include "tensor/ops.h"

namespace ripple::core {

const char* drop_granularity_name(DropGranularity g) {
  return g == DropGranularity::kElementWise ? "element-wise" : "vector-wise";
}

Tensor sample_affine_mask(int64_t channels, float p, DropGranularity g,
                          Rng& rng) {
  RIPPLE_CHECK(channels > 0) << "mask needs positive channel count";
  RIPPLE_CHECK(p >= 0.0f && p < 1.0f) << "drop probability must be in [0,1)";
  if (g == DropGranularity::kVectorWise) {
    // One Bernoulli for the whole vector: a single RNG per layer suffices
    // in the IMC realization.
    const float keep = rng.bernoulli(p) ? 0.0f : 1.0f;
    return Tensor::full({channels}, keep);
  }
  Tensor mask({channels});
  float* pm = mask.data();
  for (int64_t i = 0; i < channels; ++i)
    pm[i] = rng.bernoulli(p) ? 0.0f : 1.0f;
  return mask;
}

autograd::Variable drop_gamma_to_one(const autograd::Variable& gamma,
                                     const Tensor& mask) {
  RIPPLE_CHECK(mask.same_shape(gamma.value()))
      << "gamma mask shape mismatch: " << shape_to_string(mask.shape())
      << " vs " << shape_to_string(gamma.value().shape());
  // γ·m + (1 − m): dropped entries become exactly 1.
  Tensor one_minus = ops::map(mask, [](float m) { return 1.0f - m; });
  autograd::Variable masked =
      autograd::mul(gamma, autograd::Variable(mask));
  return autograd::add(masked, autograd::Variable(std::move(one_minus)));
}

autograd::Variable drop_beta_to_zero(const autograd::Variable& beta,
                                     const Tensor& mask) {
  RIPPLE_CHECK(mask.same_shape(beta.value()))
      << "beta mask shape mismatch: " << shape_to_string(mask.shape())
      << " vs " << shape_to_string(beta.value().shape());
  return autograd::mul(beta, autograd::Variable(mask));
}

namespace {

void check_replicated_mask(const autograd::Variable& param,
                           const Tensor& mask, const char* name) {
  RIPPLE_CHECK(param.value().rank() == 1)
      << name << ": parameter must be a [C] vector, got "
      << shape_to_string(param.shape());
  RIPPLE_CHECK(mask.rank() == 2 && mask.dim(1) == param.dim(0))
      << name << ": mask shape " << shape_to_string(mask.shape())
      << " incompatible with " << param.dim(0) << " channels";
}

}  // namespace

autograd::Variable drop_gamma_to_one_replicated(const autograd::Variable& gamma,
                                                const Tensor& mask) {
  check_replicated_mask(gamma, mask, "drop_gamma_to_one_replicated");
  const int64_t r = mask.dim(0);
  const int64_t c = mask.dim(1);
  Tensor out({r, c});
  const float* pg = gamma.value().data();
  const float* pm = mask.data();
  float* po = out.data();
  for (int64_t i = 0; i < r * c; ++i) {
    const float m = pm[i];
    po[i] = pg[i % c] * m + (1.0f - m);
  }
  Tensor mk = mask;
  return autograd::make_op_node(
      std::move(out), {gamma.node()},
      [mk, r, c](autograd::Node& n) {
        if (!n.parents[0]->requires_grad) return;
        Tensor dg = Tensor::zeros({c});
        float* pdg = dg.data();
        const float* pdy = n.grad.data();
        const float* pm = mk.data();
        for (int64_t i = 0; i < r * c; ++i) pdg[i % c] += pdy[i] * pm[i];
        n.parents[0]->accumulate_grad(dg);
      },
      "drop_gamma_replicated");
}

autograd::Variable drop_beta_to_zero_replicated(const autograd::Variable& beta,
                                                const Tensor& mask) {
  check_replicated_mask(beta, mask, "drop_beta_to_zero_replicated");
  const int64_t r = mask.dim(0);
  const int64_t c = mask.dim(1);
  Tensor out({r, c});
  const float* pb = beta.value().data();
  const float* pm = mask.data();
  float* po = out.data();
  for (int64_t i = 0; i < r * c; ++i) po[i] = pb[i % c] * pm[i];
  Tensor mk = mask;
  return autograd::make_op_node(
      std::move(out), {beta.node()},
      [mk, r, c](autograd::Node& n) {
        if (!n.parents[0]->requires_grad) return;
        Tensor db = Tensor::zeros({c});
        float* pdb = db.data();
        const float* pdy = n.grad.data();
        const float* pm = mk.data();
        for (int64_t i = 0; i < r * c; ++i) pdb[i % c] += pdy[i] * pm[i];
        n.parents[0]->accumulate_grad(db);
      },
      "drop_beta_replicated");
}

}  // namespace ripple::core
