#include "core/affine_dropout.h"

#include "autograd/ops.h"
#include "tensor/ops.h"

namespace ripple::core {

const char* drop_granularity_name(DropGranularity g) {
  return g == DropGranularity::kElementWise ? "element-wise" : "vector-wise";
}

Tensor sample_affine_mask(int64_t channels, float p, DropGranularity g,
                          Rng& rng) {
  RIPPLE_CHECK(channels > 0) << "mask needs positive channel count";
  RIPPLE_CHECK(p >= 0.0f && p < 1.0f) << "drop probability must be in [0,1)";
  if (g == DropGranularity::kVectorWise) {
    // One Bernoulli for the whole vector: a single RNG per layer suffices
    // in the IMC realization.
    const float keep = rng.bernoulli(p) ? 0.0f : 1.0f;
    return Tensor::full({channels}, keep);
  }
  Tensor mask({channels});
  float* pm = mask.data();
  for (int64_t i = 0; i < channels; ++i)
    pm[i] = rng.bernoulli(p) ? 0.0f : 1.0f;
  return mask;
}

autograd::Variable drop_gamma_to_one(const autograd::Variable& gamma,
                                     const Tensor& mask) {
  RIPPLE_CHECK(mask.same_shape(gamma.value()))
      << "gamma mask shape mismatch: " << shape_to_string(mask.shape())
      << " vs " << shape_to_string(gamma.value().shape());
  // γ·m + (1 − m): dropped entries become exactly 1.
  Tensor one_minus = ops::map(mask, [](float m) { return 1.0f - m; });
  autograd::Variable masked =
      autograd::mul(gamma, autograd::Variable(mask));
  return autograd::add(masked, autograd::Variable(std::move(one_minus)));
}

autograd::Variable drop_beta_to_zero(const autograd::Variable& beta,
                                     const Tensor& mask) {
  RIPPLE_CHECK(mask.same_shape(beta.value()))
      << "beta mask shape mismatch: " << shape_to_string(mask.shape())
      << " vs " << shape_to_string(beta.value().shape());
  return autograd::mul(beta, autograd::Variable(mask));
}

}  // namespace ripple::core
