#include "core/bayesian.h"

#include <cmath>

#include "tensor/check.h"
#include "tensor/ops.h"

namespace ripple::core {

McClassification mc_classify(const StochasticForward& forward_logits,
                             const Tensor& x, int samples) {
  RIPPLE_CHECK(samples >= 1) << "mc_classify needs >= 1 sample";
  Tensor sum_probs;
  Tensor sum_sq;
  for (int s = 0; s < samples; ++s) {
    Tensor logits = forward_logits(x);
    RIPPLE_CHECK(logits.rank() == 2) << "classifier must return [N,C] logits";
    Tensor probs = ops::softmax_rows(logits);
    if (!sum_probs.defined()) {
      sum_probs = Tensor::zeros(probs.shape());
      sum_sq = Tensor::zeros(probs.shape());
    }
    ops::add_inplace(sum_probs, probs);
    ops::add_inplace(sum_sq, ops::mul(probs, probs));
  }
  McClassification out;
  out.samples = samples;
  const float inv = 1.0f / static_cast<float>(samples);
  out.mean_probs = ops::mul_scalar(sum_probs, inv);
  // var = E[p²] − E[p]² (clamped at 0 against rounding).
  Tensor mean_sq = ops::mul(out.mean_probs, out.mean_probs);
  Tensor e_sq = ops::mul_scalar(sum_sq, inv);
  out.variance = ops::map(ops::sub(e_sq, mean_sq),
                          [](float v) { return v > 0.0f ? v : 0.0f; });
  out.predictions = ops::argmax_rows(out.mean_probs);
  return out;
}

McRegression mc_regress(const StochasticForward& forward, const Tensor& x,
                        int samples) {
  RIPPLE_CHECK(samples >= 1) << "mc_regress needs >= 1 sample";
  Tensor sum;
  Tensor sum_sq;
  for (int s = 0; s < samples; ++s) {
    Tensor pred = forward(x);
    if (!sum.defined()) {
      sum = Tensor::zeros(pred.shape());
      sum_sq = Tensor::zeros(pred.shape());
    }
    ops::add_inplace(sum, pred);
    ops::add_inplace(sum_sq, ops::mul(pred, pred));
  }
  McRegression out;
  out.samples = samples;
  const float inv = 1.0f / static_cast<float>(samples);
  out.mean = ops::mul_scalar(sum, inv);
  Tensor mean_sq = ops::mul(out.mean, out.mean);
  Tensor e_sq = ops::mul_scalar(sum_sq, inv);
  out.stddev = ops::map(ops::sub(e_sq, mean_sq), [](float v) {
    return v > 0.0f ? std::sqrt(v) : 0.0f;
  });
  return out;
}

Tensor mc_segment(const StochasticForward& forward_logits, const Tensor& x,
                  int samples) {
  RIPPLE_CHECK(samples >= 1) << "mc_segment needs >= 1 sample";
  Tensor sum;
  for (int s = 0; s < samples; ++s) {
    Tensor logits = forward_logits(x);
    Tensor probs = ops::map(
        logits, [](float v) { return 1.0f / (1.0f + std::exp(-v)); });
    if (!sum.defined()) sum = Tensor::zeros(probs.shape());
    ops::add_inplace(sum, probs);
  }
  return ops::mul_scalar(sum, 1.0f / static_cast<float>(samples));
}

}  // namespace ripple::core
