#include "core/uncertainty.h"

#include <algorithm>
#include <cmath>

#include "tensor/check.h"

namespace ripple::core {
namespace {

constexpr double kProbFloor = 1e-12;

}  // namespace

double nll(const Tensor& probs, const std::vector<int64_t>& targets) {
  const std::vector<double> scores = per_sample_nll(probs, targets);
  double total = 0.0;
  for (double s : scores) total += s;
  return total / static_cast<double>(scores.size());
}

std::vector<double> per_sample_nll(const Tensor& probs,
                                   const std::vector<int64_t>& targets) {
  RIPPLE_CHECK(probs.rank() == 2) << "per_sample_nll expects [N,C]";
  const int64_t n = probs.dim(0);
  const int64_t c = probs.dim(1);
  RIPPLE_CHECK(static_cast<int64_t>(targets.size()) == n)
      << "target count mismatch";
  std::vector<double> out(static_cast<size_t>(n));
  const float* p = probs.data();
  for (int64_t i = 0; i < n; ++i) {
    const int64_t t = targets[static_cast<size_t>(i)];
    RIPPLE_CHECK(t >= 0 && t < c) << "target out of range";
    out[static_cast<size_t>(i)] =
        -std::log(std::max(kProbFloor, static_cast<double>(p[i * c + t])));
  }
  return out;
}

std::vector<double> per_sample_confidence_nll(const Tensor& probs) {
  RIPPLE_CHECK(probs.rank() == 2) << "per_sample_confidence_nll expects [N,C]";
  const int64_t n = probs.dim(0);
  const int64_t c = probs.dim(1);
  std::vector<double> out(static_cast<size_t>(n));
  const float* p = probs.data();
  for (int64_t i = 0; i < n; ++i) {
    const float* row = p + i * c;
    const float mx = *std::max_element(row, row + c);
    out[static_cast<size_t>(i)] =
        -std::log(std::max(kProbFloor, static_cast<double>(mx)));
  }
  return out;
}

std::vector<double> per_sample_entropy(const Tensor& probs) {
  RIPPLE_CHECK(probs.rank() == 2) << "per_sample_entropy expects [N,C]";
  const int64_t n = probs.dim(0);
  const int64_t c = probs.dim(1);
  std::vector<double> out(static_cast<size_t>(n), 0.0);
  const float* p = probs.data();
  for (int64_t i = 0; i < n; ++i) {
    double h = 0.0;
    for (int64_t j = 0; j < c; ++j) {
      const double v = std::max(kProbFloor, static_cast<double>(p[i * c + j]));
      h -= v * std::log(v);
    }
    out[static_cast<size_t>(i)] = h;
  }
  return out;
}

void per_sample_entropy_into(const Tensor& probs, float* out) {
  RIPPLE_CHECK(probs.rank() == 2) << "per_sample_entropy expects [N,C]";
  const int64_t n = probs.dim(0);
  const int64_t c = probs.dim(1);
  const float* p = probs.data();
  for (int64_t i = 0; i < n; ++i) {
    double h = 0.0;
    for (int64_t j = 0; j < c; ++j) {
      const double v = std::max(kProbFloor, static_cast<double>(p[i * c + j]));
      h -= v * std::log(v);
    }
    out[i] = static_cast<float>(h);
  }
}

double auroc(const std::vector<double>& id_scores,
             const std::vector<double>& ood_scores) {
  RIPPLE_CHECK(!id_scores.empty() && !ood_scores.empty())
      << "auroc needs non-empty score sets";
  // Mann-Whitney U statistic: P(ood > id) + 0.5·P(ood == id).
  double wins = 0.0;
  for (double o : ood_scores)
    for (double i : id_scores) {
      if (o > i)
        wins += 1.0;
      else if (o == i)
        wins += 0.5;
    }
  return wins /
         (static_cast<double>(id_scores.size()) * ood_scores.size());
}

double expected_calibration_error(const Tensor& probs,
                                  const std::vector<int64_t>& targets,
                                  int bins) {
  RIPPLE_CHECK(probs.rank() == 2) << "ece expects [N,C]";
  RIPPLE_CHECK(bins >= 1) << "ece needs >= 1 bin";
  const int64_t n = probs.dim(0);
  const int64_t c = probs.dim(1);
  RIPPLE_CHECK(static_cast<int64_t>(targets.size()) == n)
      << "target count mismatch";
  std::vector<double> bin_conf(static_cast<size_t>(bins), 0.0);
  std::vector<double> bin_acc(static_cast<size_t>(bins), 0.0);
  std::vector<int64_t> bin_count(static_cast<size_t>(bins), 0);
  const float* p = probs.data();
  for (int64_t i = 0; i < n; ++i) {
    const float* row = p + i * c;
    int64_t pred = 0;
    for (int64_t j = 1; j < c; ++j)
      if (row[j] > row[pred]) pred = j;
    const double conf = row[pred];
    int b = static_cast<int>(conf * bins);
    b = std::clamp(b, 0, bins - 1);
    bin_conf[static_cast<size_t>(b)] += conf;
    bin_acc[static_cast<size_t>(b)] +=
        pred == targets[static_cast<size_t>(i)] ? 1.0 : 0.0;
    ++bin_count[static_cast<size_t>(b)];
  }
  double ece = 0.0;
  for (int b = 0; b < bins; ++b) {
    const int64_t count = bin_count[static_cast<size_t>(b)];
    if (count == 0) continue;
    const double conf = bin_conf[static_cast<size_t>(b)] / count;
    const double acc = bin_acc[static_cast<size_t>(b)] / count;
    ece += std::fabs(conf - acc) * static_cast<double>(count) /
           static_cast<double>(n);
  }
  return ece;
}

OodDetection detect_ood(const std::vector<double>& id_scores,
                        const std::vector<double>& ood_scores) {
  RIPPLE_CHECK(!id_scores.empty() && !ood_scores.empty())
      << "detect_ood needs non-empty score sets";
  OodDetection d;
  double sum = 0.0;
  for (double s : id_scores) sum += s;
  d.threshold = sum / static_cast<double>(id_scores.size());
  int64_t detected = 0;
  for (double s : ood_scores)
    if (s > d.threshold) ++detected;
  d.detection_rate = static_cast<double>(detected) /
                     static_cast<double>(ood_scores.size());
  int64_t fp = 0;
  for (double s : id_scores)
    if (s > d.threshold) ++fp;
  d.false_positive_rate =
      static_cast<double>(fp) / static_cast<double>(id_scores.size());
  d.auroc = auroc(id_scores, ood_scores);
  return d;
}

}  // namespace ripple::core
