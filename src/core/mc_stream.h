// Per-forward-pass Monte-Carlo mask-stream context.
//
// The legacy MC surface seeds mask streams by *mutating the layers*
// (InvertedNorm::set_mask_stream / set_mask_replica_offset), which makes a
// model unusable from more than one thread: two concurrent passes would
// race on the per-layer invocation counters. The serving path inverts the
// ownership: all stream state for one forward pass lives in an
// McStreamContext owned by the caller and installed thread-locally for the
// duration of the pass (McStreamScope). Stochastic layers that were bound
// to a stream slot consult the active context instead of their members, so
// any number of threads can run passes through one model concurrently —
// each with its own counters — and a fixed (seed, slot) always reproduces
// the same masks.
//
// Seed derivation is shared with (and identical to) the legacy path so the
// serving API samples exactly the masks the deprecated evaluate.h helpers
// sampled for the same base seed:
//   layer stream   s_l = splitmix64(base ^ (K1 · (slot+1)))
//   invocation     s_i = splitmix64(s_l  ^ (K2 · (invocation+1)))
//   replica        s_r = splitmix64(s_i  ^ (K3 · (replica+1)))
// InvertedNorm consumes s_i directly (replica order = draw order, §III-B);
// element-wise dropout derives one s_r sub-stream per folded replica so the
// batched and serial paths sample bit-identical masks.
//
// Determinism contract (what plan compilation relies on): every stochastic
// draw in a serving forward is a pure function of
//   (session seed, stream slot, invocation index, replica, chunk offset)
// — no wall clock, no global RNG, no cross-request state. Two passes under
// the same context parameters therefore produce bit-identical masks, noise
// tensors and quantizer draws, which is what lets deploy/plan.h bake the
// draws of one traced forward into plan *constants* and replay them
// exactly for every later request on that (shape, chunk offset) key. Any
// new source of serving randomness MUST derive from this contract (take a
// slot, consult the active context); sampling outside it would make traced
// forwards unrepeatable and silently disable plan compilation's
// verification gate.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ripple::core {

/// Per-layer stream seed: independent stream per (base seed, slot).
uint64_t mc_layer_seed(uint64_t base_seed, size_t slot);

/// Per-invocation sub-stream (recurrent models invoke a layer once per
/// timestep; each invocation owns an independent replica-ordered stream).
uint64_t mc_invocation_seed(uint64_t layer_seed, int64_t invocation);

/// Per-replica sub-stream of one invocation, for layers whose mask size
/// depends on the batch shape (element-wise dropout): deriving instead of
/// burning draws keeps serial replay O(1).
uint64_t mc_replica_seed(uint64_t invocation_seed, int64_t replica);

/// Folds a chunk's starting row into a replica sub-stream so row-dependent
/// masks (element/spatial dropout) never repeat when one request is split
/// into chunks. Identity at chunk_offset == 0, so unchunked passes — and
/// the first chunk — keep the original derivation.
uint64_t mc_chunk_seed(uint64_t replica_seed, int64_t chunk_offset);

/// Mixes an experiment-level salt into a stream seed. Identity at salt == 0.
/// The fault injector stamps a fresh salt per chip instance so stream-bound
/// activation noise still varies run-to-run while staying deterministic —
/// and therefore concurrency-safe — within one run.
uint64_t mc_salted_seed(uint64_t seed, uint64_t salt);

/// Stream state for ONE forward pass. Not shared between passes: construct
/// (or rewind) a fresh context per pass so invocation counters start at 0.
class McStreamContext {
 public:
  /// `slots` is the number of bound stochastic layers; `replicas` > 1 folds
  /// that many MC samples into the batch dim (replica-major); a serial pass
  /// for replica r uses replicas = 1 and replica_offset = r.
  McStreamContext(uint64_t base_seed, int64_t replicas, int64_t replica_offset,
                  size_t slots);

  /// Seed of the current invocation of `slot`; bumps the slot's counter.
  uint64_t next_invocation_seed(size_t slot);

  /// Resets every invocation counter and retargets the pass at replica
  /// `replica_offset` — reuse one context across the passes of a serial
  /// loop without reallocating.
  void rewind(int64_t replica_offset);

  int64_t replicas() const { return replicas_; }
  int64_t replica_offset() const { return replica_offset_; }

  /// Starting row of the chunk this pass serves (0 = whole request).
  /// Row-independent masks (InvertedNorm affine pairs) ignore it — that is
  /// what makes chunked and unchunked passes agree for the proposed
  /// variant; row-dependent dropout mixes it in via mc_chunk_seed.
  void set_chunk_offset(int64_t rows) { chunk_offset_ = rows; }
  int64_t chunk_offset() const { return chunk_offset_; }

  /// Lazy stem replication (graph-served batched passes): when nonzero,
  /// the pass entered the model with the *unreplicated* n-row chunk even
  /// though replicas() > 1. Deterministic-stem tensors then carry n rows —
  /// every row set is replica-uniform by construction — until the first
  /// replica-dependent consumer expands them to replicas()·n rows
  /// (core/lazy_stem.h). Invariant: every batch-shaped tensor in such a
  /// pass has either n or replicas()·n rows. 0 = off (eager replication).
  void set_lazy_stem_rows(int64_t rows) { lazy_stem_rows_ = rows; }
  int64_t lazy_stem_rows() const { return lazy_stem_rows_; }

 private:
  int64_t replicas_;
  int64_t replica_offset_;
  int64_t chunk_offset_ = 0;
  int64_t lazy_stem_rows_ = 0;
  std::vector<uint64_t> layer_seeds_;  // derived once per context
  std::vector<int64_t> invocations_;
};

/// The context installed on this thread, or nullptr outside any pass.
McStreamContext* active_mc_stream();

/// RAII: installs `ctx` as this thread's active context.
class McStreamScope {
 public:
  explicit McStreamScope(McStreamContext& ctx);
  ~McStreamScope();
  McStreamScope(const McStreamScope&) = delete;
  McStreamScope& operator=(const McStreamScope&) = delete;

 private:
  McStreamContext* previous_;
};

}  // namespace ripple::core
