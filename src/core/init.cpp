#include "core/init.h"

#include "tensor/check.h"

namespace ripple::core {

Tensor AffineInit::make_gamma(int64_t channels, Rng& rng) const {
  RIPPLE_CHECK(channels > 0) << "make_gamma needs positive channel count";
  switch (kind) {
    case Kind::kNormal:
      return Tensor::randn({channels}, rng, 1.0f, sigma_gamma);
    case Kind::kUniform:
      return Tensor::uniform({channels}, rng, 0.0f, k_gamma);
    case Kind::kConstant:
      return Tensor::ones({channels});
  }
  throw CheckError("unreachable AffineInit kind");
}

Tensor AffineInit::make_beta(int64_t channels, Rng& rng) const {
  RIPPLE_CHECK(channels > 0) << "make_beta needs positive channel count";
  switch (kind) {
    case Kind::kNormal:
      return Tensor::randn({channels}, rng, 0.0f, sigma_beta);
    case Kind::kUniform:
      return Tensor::uniform({channels}, rng, -k_beta, k_beta);
    case Kind::kConstant:
      return Tensor::zeros({channels});
  }
  throw CheckError("unreachable AffineInit kind");
}

AffineInit AffineInit::normal(float sigma_gamma, float sigma_beta) {
  AffineInit init;
  init.kind = Kind::kNormal;
  init.sigma_gamma = sigma_gamma;
  init.sigma_beta = sigma_beta;
  return init;
}

AffineInit AffineInit::uniform(float k_gamma, float k_beta) {
  AffineInit init;
  init.kind = Kind::kUniform;
  init.k_gamma = k_gamma;
  init.k_beta = k_beta;
  return init;
}

AffineInit AffineInit::constant() {
  AffineInit init;
  init.kind = Kind::kConstant;
  return init;
}

}  // namespace ripple::core
