#include "core/lazy_stem.h"

#include "core/mc_stream.h"
#include "fault/mc_batch.h"
#include "tensor/check.h"

namespace ripple::core {

bool lazy_stem_pending(int64_t rows) {
  const McStreamContext* ctx = active_mc_stream();
  return ctx != nullptr && ctx->lazy_stem_rows() > 0 &&
         rows == ctx->lazy_stem_rows();
}

Tensor replicate_stem(const Tensor& x) {
  const McStreamContext* ctx = active_mc_stream();
  RIPPLE_CHECK(ctx != nullptr && ctx->lazy_stem_rows() == x.dim(0))
      << "replicate_stem outside a lazy-stem pass";
  return fault::replicate_batch(x, static_cast<int>(ctx->replicas()));
}

autograd::Variable replicate_stem(const autograd::Variable& x) {
  return autograd::Variable(replicate_stem(x.value()));
}

}  // namespace ripple::core
