// Initialization strategies for the inverted-normalization affine
// parameters (§III-C).
//
// Unlike conventional norms (γ=1, β=0), the paper initializes the affine
// parameters *randomly* — otherwise identical initial values would receive
// identical gradients, and the extra randomness in the weighted sum is
// itself a robustness mechanism:
//   normal:   γ ~ N(1, σ_γ²),  β ~ N(0, σ_β²)     (paper default, σ = 0.3)
//   uniform:  γ ~ U(0, k_γ),   β ~ U(−k_β, k_β)
#pragma once

#include "tensor/random.h"
#include "tensor/tensor.h"

namespace ripple::core {

struct AffineInit {
  enum class Kind { kNormal, kUniform, kConstant };

  Kind kind = Kind::kNormal;
  // Normal init (paper default).
  float sigma_gamma = 0.3f;
  float sigma_beta = 0.3f;
  // Uniform init alternative.
  float k_gamma = 2.0f;
  float k_beta = 0.5f;

  /// Scale vector γ of length `channels`.
  Tensor make_gamma(int64_t channels, Rng& rng) const;
  /// Shift vector β of length `channels`.
  Tensor make_beta(int64_t channels, Rng& rng) const;

  static AffineInit normal(float sigma_gamma, float sigma_beta);
  static AffineInit uniform(float k_gamma, float k_beta);
  /// Conventional γ=1 / β=0 (ablation baseline).
  static AffineInit constant();
};

}  // namespace ripple::core
