// Uncertainty quantification and out-of-distribution detection (§IV-E).
//
// The paper uses the negative log-likelihood (NLL) as the uncertainty
// score: low on in-distribution (ID) test data, rising as inputs drift
// out-of-distribution (OOD). An input whose score exceeds a threshold —
// the mean score on the ID test set — is flagged as OOD.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace ripple::core {

/// Mean NLL of true labels under predicted probabilities:
/// −(1/N)·Σ log p[i, y_i]. Probabilities are clamped to avoid log(0).
double nll(const Tensor& probs, const std::vector<int64_t>& targets);

/// Per-sample NLL of the true label.
std::vector<double> per_sample_nll(const Tensor& probs,
                                   const std::vector<int64_t>& targets);

/// Label-free uncertainty score usable at runtime: −log max_c p[i,c]
/// (the NLL of the predicted class).
std::vector<double> per_sample_confidence_nll(const Tensor& probs);

/// Predictive entropy per sample: −Σ_c p log p.
std::vector<double> per_sample_entropy(const Tensor& probs);

/// Allocation-free form: writes the N entropies (accumulated in double,
/// stored as float — same rounding as casting per_sample_entropy's result)
/// into caller-owned `out`, which must hold probs.dim(0) floats.
void per_sample_entropy_into(const Tensor& probs, float* out);

struct OodDetection {
  double threshold = 0.0;       // decision threshold (mean ID score)
  double detection_rate = 0.0;  // fraction of OOD samples flagged
  double false_positive_rate = 0.0;  // fraction of ID samples flagged
  double auroc = 0.5;           // threshold-free separability
};

/// Thresholds at the mean ID score (the paper's rule) and reports the OOD
/// detection rate, ID false-positive rate and AUROC.
OodDetection detect_ood(const std::vector<double>& id_scores,
                        const std::vector<double>& ood_scores);

/// Area under the ROC curve for separating OOD (positive) from ID
/// (negative) by score (higher = more OOD).
double auroc(const std::vector<double>& id_scores,
             const std::vector<double>& ood_scores);

/// Expected calibration error with equal-width confidence bins: a
/// well-calibrated Bayesian classifier's confidence matches its accuracy
/// in every bin. Lower is better; 0 is perfect.
double expected_calibration_error(const Tensor& probs,
                                  const std::vector<int64_t>& targets,
                                  int bins = 10);

}  // namespace ripple::core
