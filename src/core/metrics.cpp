#include "core/metrics.h"

#include <cmath>

#include "tensor/check.h"
#include "tensor/ops.h"

namespace ripple::core {

double accuracy(const Tensor& scores, const std::vector<int64_t>& targets) {
  const std::vector<int64_t> pred = ops::argmax_rows(scores);
  RIPPLE_CHECK(pred.size() == targets.size()) << "target count mismatch";
  RIPPLE_CHECK(!pred.empty()) << "accuracy of empty batch";
  int64_t correct = 0;
  for (size_t i = 0; i < pred.size(); ++i)
    if (pred[i] == targets[i]) ++correct;
  return static_cast<double>(correct) / static_cast<double>(pred.size());
}

double miou_binary(const Tensor& probs, const Tensor& target,
                   float threshold) {
  RIPPLE_CHECK(probs.same_shape(target)) << "miou shape mismatch";
  RIPPLE_CHECK(probs.numel() > 0) << "miou of empty tensors";
  int64_t inter_fg = 0;
  int64_t union_fg = 0;
  int64_t inter_bg = 0;
  int64_t union_bg = 0;
  const float* pp = probs.data();
  const float* pt = target.data();
  for (int64_t i = 0; i < probs.numel(); ++i) {
    const bool p = pp[i] >= threshold;
    const bool t = pt[i] >= 0.5f;
    if (p && t) ++inter_fg;
    if (p || t) ++union_fg;
    if (!p && !t) ++inter_bg;
    if (!p || !t) ++union_bg;
  }
  const double iou_fg =
      union_fg > 0 ? static_cast<double>(inter_fg) / union_fg : 1.0;
  const double iou_bg =
      union_bg > 0 ? static_cast<double>(inter_bg) / union_bg : 1.0;
  return 0.5 * (iou_fg + iou_bg);
}

double rmse(const Tensor& pred, const Tensor& target) {
  RIPPLE_CHECK(pred.same_shape(target)) << "rmse shape mismatch";
  RIPPLE_CHECK(pred.numel() > 0) << "rmse of empty tensors";
  double acc = 0.0;
  const float* pp = pred.data();
  const float* pt = target.data();
  for (int64_t i = 0; i < pred.numel(); ++i) {
    const double d = pp[i] - pt[i];
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(pred.numel()));
}

}  // namespace ripple::core
