// Lazy stem replication for graph-served batched-MC passes.
//
// A batched MC pass folds T replicas into the batch dimension, but every
// layer ahead of the first stochastic consumer is deterministic — the T
// copies it would process are bitwise identical. Compiled plans already
// exploit that (deploy/plan.cpp mark_replication runs the stem at 1/T
// rows); these helpers bring the same saving to the graph path: the
// serving session enters the model with the *unreplicated* chunk and
// marks the pass (McStreamContext::set_lazy_stem_rows), and the points
// where replicas actually diverge — the stochastic layers' context
// branches and row-count merges in the element-wise autograd ops — expand
// stem tensors on first contact.
//
// Bit-exactness argument: a stem tensor is replica-uniform by
// construction (computed only by deterministic row-independent ops from a
// replica-uniform input), so expanding it with T contiguous copies
// produces exactly the tensor the eager pass would have carried. Masks and
// noise are untouched — they draw from the same (seed, slot, invocation,
// replica) streams either way.
#pragma once

#include "autograd/variable.h"
#include "tensor/tensor.h"

namespace ripple::core {

/// True when `rows` is the unreplicated stem row count of the active
/// batched pass — i.e. the caller holds a replica-uniform stem tensor that
/// must be expanded to replicas()·rows before any replica-dependent use.
bool lazy_stem_pending(int64_t rows);

/// Expands a replica-uniform stem tensor to the stacked replicas()·rows
/// batch (T contiguous copies, replica-major — the eager layout).
/// Precondition: lazy_stem_pending(x.dim(0)).
Tensor replicate_stem(const Tensor& x);

/// Variable overload for merge points inside autograd ops. The expansion
/// is a serving-path transform of a deterministic value, recorded as a
/// leaf (no parents): batched MC passes never run backward.
autograd::Variable replicate_stem(const autograd::Variable& x);

}  // namespace ripple::core
