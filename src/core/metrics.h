// Task metrics used across the paper's evaluation: classification accuracy,
// mean intersection-over-union for binary segmentation, and RMSE for
// forecasting.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace ripple::core {

/// Fraction of rows of [N,C] scores whose argmax equals the target.
double accuracy(const Tensor& scores, const std::vector<int64_t>& targets);

/// Binary mIoU: averages the foreground IoU and background IoU computed
/// over the whole batch. `probs` and `target` share shape; `probs` is
/// thresholded at `threshold`, `target` must be {0,1}.
double miou_binary(const Tensor& probs, const Tensor& target,
                   float threshold = 0.5f);

/// Root-mean-square error between two same-shape tensors.
double rmse(const Tensor& pred, const Tensor& target);

}  // namespace ripple::core
