// Inverted normalization layer with stochastic affine transformation — the
// paper's primary contribution (§III).
//
// Computation order is *reversed* relative to conventional normalization:
//
//   conventional:  y = norm(x);      out = y·γ + β
//   inverted:      z = x·γ' + β';    out = norm(z)
//
// where (γ', β') are the affine parameters after Affine Dropout
// (drop-to-identity, see core/affine_dropout.h) and norm(·) standardizes
// per (instance, group) — groups=1 matches the paper's LayerNorm-style
// setting used for ResNet/M5/LSTM; the U-Net uses GroupNorm-style groups.
//
// Because the statistics are computed per instance (not per batch), the
// layer has identical train/test behaviour and re-standardizes the weighted
// sum even when NVM non-idealities shift its distribution — the second
// robustness mechanism claimed by the paper (§III, Fig. 1).
#pragma once

#include "core/affine_dropout.h"
#include "core/init.h"
#include "nn/layer.h"
#include "nn/noise.h"

namespace ripple::core {

class InvertedNorm : public nn::Layer {
 public:
  struct Options {
    /// Normalization groups: 1 = per-instance (LayerNorm-like).
    /// The paper's U-Net groups channels so that each group holds
    /// C_out/8 channels, i.e. groups = 8.
    int64_t groups = 1;
    /// Affine-dropout probability (paper uses 0.3 for all models).
    float dropout_p = 0.3f;
    DropGranularity granularity = DropGranularity::kVectorWise;
    AffineInit init;
    float eps = 1e-5f;
    /// true = paper's inverted order (affine before normalization);
    /// false = conventional order with stochastic affine (ablation).
    bool affine_first = true;
  };

  InvertedNorm(int64_t channels, Options options, Rng* rng = nullptr);

  autograd::Variable forward(const autograd::Variable& x) override;

  /// When true, affine dropout stays active in eval mode (each forward
  /// samples fresh masks — the Bayesian MC-sampling mechanism).
  void set_mc_mode(bool on) { mc_mode_ = on; }
  bool mc_mode() const { return mc_mode_; }

  /// Batched Monte-Carlo forward: with t > 1, forward() treats the batch as
  /// t replica blocks (replica-major, dim 0 divisible by t) and samples an
  /// independent affine mask pair per replica, so one pass yields t
  /// stochastic samples. t == 1 restores the ordinary path.
  void set_mc_replicas(int64_t t);
  int64_t mc_replicas() const { return mc_replicas_; }

  /// Binds this layer to slot `slot` of any active McStreamContext
  /// (core/mc_stream.h): while a context is installed on the calling
  /// thread, mask sampling, replica count and replica offset all come from
  /// the context instead of the members below, so concurrent passes never
  /// share mutable state. -1 (default) unbinds. Set once by the serving
  /// session, not per pass.
  void set_stream_slot(int slot) { stream_slot_ = slot; }
  int stream_slot() const { return stream_slot_; }

  /// Routes mask sampling through a deterministic per-layer stream: each
  /// forward invocation i derives an independent sub-stream from (seed, i)
  /// and draws the replicas' mask pairs from it in replica order. The
  /// batched pass draws all t pairs of invocation i at once; a serial pass
  /// for replica r skips r pairs first (set_mask_replica_offset). Either
  /// way replica r sees the same masks — even for recurrent models that
  /// invoke the layer once per timestep — so batched and serial MC agree
  /// to float rounding for the same seed (fault::layer_stream_seed).
  /// Deprecated in favour of binding a stream slot and installing an
  /// McStreamContext; kept for single-threaded callers and tests.
  void set_mask_stream(uint64_t seed);
  /// Serial reference path: subsequent invocations draw the mask pair of
  /// replica r. Resets the invocation counter (call before each pass).
  void set_mask_replica_offset(int64_t r);
  /// Returns mask sampling to the shared constructor-time Rng.
  void clear_mask_stream();

  autograd::Parameter& gamma() { return *gamma_; }
  autograd::Parameter& beta() { return *beta_; }
  const Options& options() const { return options_; }
  int64_t channels() const { return channels_; }

 private:
  bool stochastic() const { return training() || mc_mode_; }

  int64_t channels_;
  Options options_;
  bool mc_mode_ = false;
  int64_t mc_replicas_ = 1;
  int stream_slot_ = -1;
  bool has_mask_stream_ = false;
  uint64_t mask_stream_seed_ = 0;
  int64_t mask_invocation_ = 0;
  int64_t mask_replica_offset_ = 0;
  Rng* rng_;
  autograd::Parameter* gamma_ = nullptr;
  autograd::Parameter* beta_ = nullptr;
};

}  // namespace ripple::core
