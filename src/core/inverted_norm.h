// Inverted normalization layer with stochastic affine transformation — the
// paper's primary contribution (§III).
//
// Computation order is *reversed* relative to conventional normalization:
//
//   conventional:  y = norm(x);      out = y·γ + β
//   inverted:      z = x·γ' + β';    out = norm(z)
//
// where (γ', β') are the affine parameters after Affine Dropout
// (drop-to-identity, see core/affine_dropout.h) and norm(·) standardizes
// per (instance, group) — groups=1 matches the paper's LayerNorm-style
// setting used for ResNet/M5/LSTM; the U-Net uses GroupNorm-style groups.
//
// Because the statistics are computed per instance (not per batch), the
// layer has identical train/test behaviour and re-standardizes the weighted
// sum even when NVM non-idealities shift its distribution — the second
// robustness mechanism claimed by the paper (§III, Fig. 1).
#pragma once

#include "core/affine_dropout.h"
#include "core/init.h"
#include "nn/layer.h"
#include "nn/noise.h"

namespace ripple::core {

class InvertedNorm : public nn::Layer {
 public:
  struct Options {
    /// Normalization groups: 1 = per-instance (LayerNorm-like).
    /// The paper's U-Net groups channels so that each group holds
    /// C_out/8 channels, i.e. groups = 8.
    int64_t groups = 1;
    /// Affine-dropout probability (paper uses 0.3 for all models).
    float dropout_p = 0.3f;
    DropGranularity granularity = DropGranularity::kVectorWise;
    AffineInit init;
    float eps = 1e-5f;
    /// true = paper's inverted order (affine before normalization);
    /// false = conventional order with stochastic affine (ablation).
    bool affine_first = true;
  };

  InvertedNorm(int64_t channels, Options options, Rng* rng = nullptr);

  autograd::Variable forward(const autograd::Variable& x) override;

  /// When true, affine dropout stays active in eval mode (each forward
  /// samples fresh masks — the Bayesian MC-sampling mechanism).
  void set_mc_mode(bool on) { mc_mode_ = on; }
  bool mc_mode() const { return mc_mode_; }

  autograd::Parameter& gamma() { return *gamma_; }
  autograd::Parameter& beta() { return *beta_; }
  const Options& options() const { return options_; }
  int64_t channels() const { return channels_; }

 private:
  bool stochastic() const { return training() || mc_mode_; }

  int64_t channels_;
  Options options_;
  bool mc_mode_ = false;
  Rng* rng_;
  autograd::Parameter* gamma_ = nullptr;
  autograd::Parameter* beta_ = nullptr;
};

}  // namespace ripple::core
