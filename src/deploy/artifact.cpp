#include "deploy/artifact.h"

#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "models/lstm_forecaster.h"
#include "models/m5.h"
#include "models/resnet.h"
#include "models/unet.h"
#include "tensor/check.h"

namespace ripple::deploy {
namespace {

constexpr char kMagic[4] = {'R', 'P', 'L', 'A'};
// Sanity bounds for length fields so corrupt files fail fast instead of
// attempting gigabyte allocations.
constexpr uint32_t kMaxString = 1u << 20;
constexpr uint32_t kMaxCount = 1u << 20;
constexpr int64_t kMaxTensorNumel = int64_t{1} << 31;

[[noreturn]] void fail(const std::string& path, const std::string& what) {
  throw std::runtime_error("artifact " + path + ": " + what);
}

template <typename T>
void write_pod(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::istream& in, const std::string& path) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!in) fail(path, "truncated file");
  return v;
}

void write_string(std::ostream& out, const std::string& s) {
  write_pod(out, static_cast<uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string read_string(std::istream& in, const std::string& path) {
  const uint32_t len = read_pod<uint32_t>(in, path);
  if (len > kMaxString) fail(path, "corrupt string length");
  std::string s(len, '\0');
  in.read(s.data(), len);
  if (!in) fail(path, "truncated file");
  return s;
}

void write_tensor(std::ostream& out, const Tensor& t) {
  write_pod(out, static_cast<int32_t>(t.rank()));
  for (int64_t d : t.shape()) write_pod(out, d);
  out.write(reinterpret_cast<const char*>(t.data()),
            static_cast<std::streamsize>(t.numel() * sizeof(float)));
}

Tensor read_tensor(std::istream& in, const std::string& path) {
  const int32_t rank = read_pod<int32_t>(in, path);
  if (rank < 0 || rank > 8) fail(path, "corrupt tensor rank");
  Shape shape;
  int64_t numel = 1;
  for (int32_t i = 0; i < rank; ++i) {
    const int64_t d = read_pod<int64_t>(in, path);
    if (d < 0 || d > kMaxTensorNumel) fail(path, "corrupt tensor dim");
    shape.push_back(d);
    numel *= d;
  }
  if (numel > kMaxTensorNumel) fail(path, "corrupt tensor size");
  Tensor t = Tensor::empty(shape);
  in.read(reinterpret_cast<char*>(t.data()),
          static_cast<std::streamsize>(t.numel() * sizeof(float)));
  if (!in) fail(path, "truncated tensor payload");
  return t;
}

void write_variant(std::ostream& out, const models::VariantConfig& v) {
  write_pod(out, static_cast<int32_t>(v.variant));
  write_pod(out, v.dropout_p);
  write_pod(out, static_cast<int32_t>(v.init.kind));
  write_pod(out, v.init.sigma_gamma);
  write_pod(out, v.init.sigma_beta);
  write_pod(out, v.init.k_gamma);
  write_pod(out, v.init.k_beta);
  write_pod(out, static_cast<int32_t>(v.granularity));
  write_pod(out, static_cast<uint8_t>(v.affine_first ? 1 : 0));
}

models::VariantConfig read_variant(std::istream& in,
                                   const std::string& path) {
  models::VariantConfig v;
  v.variant = static_cast<models::Variant>(read_pod<int32_t>(in, path));
  v.dropout_p = read_pod<float>(in, path);
  v.init.kind = static_cast<core::AffineInit::Kind>(read_pod<int32_t>(in, path));
  v.init.sigma_gamma = read_pod<float>(in, path);
  v.init.sigma_beta = read_pod<float>(in, path);
  v.init.k_gamma = read_pod<float>(in, path);
  v.init.k_beta = read_pod<float>(in, path);
  v.granularity = static_cast<core::DropGranularity>(read_pod<int32_t>(in, path));
  v.affine_first = read_pod<uint8_t>(in, path) != 0;
  return v;
}

void write_session_options(std::ostream& out, const serve::SessionOptions& o,
                           uint32_t version) {
  write_pod(out, static_cast<int32_t>(o.task));
  write_pod(out, static_cast<int32_t>(o.mc_samples));
  write_pod(out, o.seed);
  write_pod(out, static_cast<int32_t>(o.policy));
  write_pod(out, o.max_batch);
  write_pod(out, static_cast<uint8_t>(o.clamp_samples ? 1 : 0));
  write_pod(out, static_cast<int32_t>(o.batch_max_requests));
  write_pod(out, o.batch_max_delay_us);
  write_pod(out, o.batch_max_rows);
  write_pod(out, static_cast<int32_t>(o.batcher_threads));
  if (version >= 2)
    write_pod(out, static_cast<uint8_t>(o.batch_adaptive_delay ? 1 : 0));
}

serve::SessionOptions read_session_options(std::istream& in,
                                           const std::string& path,
                                           uint32_t version) {
  serve::SessionOptions o;
  o.task = static_cast<serve::TaskKind>(read_pod<int32_t>(in, path));
  o.mc_samples = read_pod<int32_t>(in, path);
  o.seed = read_pod<uint64_t>(in, path);
  o.policy = static_cast<serve::ExecutionPolicy>(read_pod<int32_t>(in, path));
  o.max_batch = read_pod<int64_t>(in, path);
  o.clamp_samples = read_pod<uint8_t>(in, path) != 0;
  o.batch_max_requests = read_pod<int32_t>(in, path);
  o.batch_max_delay_us = read_pod<int64_t>(in, path);
  o.batch_max_rows = read_pod<int64_t>(in, path);
  o.batcher_threads = read_pod<int32_t>(in, path);
  // Version 1 predates the adaptive-delay knob; keep its default (off).
  if (version >= 2) o.batch_adaptive_delay = read_pod<uint8_t>(in, path) != 0;
  return o;
}

// ---- bit-packed quantizer codes (format version >= 2) ----------------------
// Every code occupies exactly its quantizer's low `bits` bits, packed
// little-endian into uint32 words — a binary weight costs 1 bit on disk
// instead of version 1's 32.

size_t packed_code_words(size_t ncodes, int bits) {
  return (ncodes * static_cast<size_t>(bits) + 31) / 32;
}

std::vector<uint32_t> pack_codes(const std::vector<int32_t>& codes,
                                 int bits) {
  std::vector<uint32_t> words(packed_code_words(codes.size(), bits), 0u);
  const uint32_t mask =
      bits >= 32 ? 0xffffffffu : (1u << bits) - 1u;
  size_t bitpos = 0;
  for (const int32_t code : codes) {
    const uint32_t u = static_cast<uint32_t>(code) & mask;
    const size_t word = bitpos >> 5;
    const size_t off = bitpos & 31;
    words[word] |= u << off;
    if (off + static_cast<size_t>(bits) > 32)
      words[word + 1] |= u >> (32 - off);
    bitpos += static_cast<size_t>(bits);
  }
  return words;
}

std::vector<int32_t> unpack_codes(const std::vector<uint32_t>& words,
                                  size_t ncodes, int bits) {
  std::vector<int32_t> codes(ncodes, 0);
  const uint32_t mask =
      bits >= 32 ? 0xffffffffu : (1u << bits) - 1u;
  size_t bitpos = 0;
  for (size_t i = 0; i < ncodes; ++i) {
    const size_t word = bitpos >> 5;
    const size_t off = bitpos & 31;
    uint32_t u = words[word] >> off;
    if (off + static_cast<size_t>(bits) > 32)
      u |= words[word + 1] << (32 - off);
    codes[i] = static_cast<int32_t>(u & mask);
    bitpos += static_cast<size_t>(bits);
  }
  return codes;
}

// ---- zlib-free code compression (format version >= 3) ----------------------
// The packed words of a quant record are optionally run-length encoded —
// directly (long runs appear when a weight region saturates to one code)
// or after a wrapping word delta (catches arithmetic striding). The writer
// keeps whichever of {raw, rle, delta+rle} is smallest, so compression
// never costs bytes; a one-byte tag per record selects the decoder.

enum CodeEncoding : uint8_t {
  kCodesRaw = 0,
  kCodesRle = 1,
  kCodesDeltaRle = 2,
};

// (count, word) pairs, in uint32 units.
std::vector<uint32_t> rle_encode(const std::vector<uint32_t>& words) {
  std::vector<uint32_t> runs;
  size_t i = 0;
  while (i < words.size()) {
    size_t j = i + 1;
    while (j < words.size() && words[j] == words[i]) ++j;
    runs.push_back(static_cast<uint32_t>(j - i));
    runs.push_back(words[i]);
    i = j;
  }
  return runs;
}

std::vector<uint32_t> rle_decode(const std::vector<uint32_t>& runs,
                                 size_t nwords, const std::string& path) {
  std::vector<uint32_t> words;
  words.reserve(nwords);
  for (size_t i = 0; i + 1 < runs.size(); i += 2) {
    const size_t count = runs[i];
    if (count == 0 || words.size() + count > nwords)
      fail(path, "corrupt run-length stream");
    words.insert(words.end(), count, runs[i + 1]);
  }
  if (words.size() != nwords) fail(path, "corrupt run-length stream");
  return words;
}

void write_packed_codes(std::ostream& out, const std::vector<uint32_t>& packed,
                        uint32_t version) {
  if (version < 3) {
    out.write(reinterpret_cast<const char*>(packed.data()),
              static_cast<std::streamsize>(packed.size() * sizeof(uint32_t)));
    return;
  }
  std::vector<uint32_t> delta(packed);
  for (size_t i = delta.size(); i-- > 1;) delta[i] -= delta[i - 1];
  const std::vector<uint32_t> rle = rle_encode(packed);
  const std::vector<uint32_t> drle = rle_encode(delta);
  uint8_t tag = kCodesRaw;
  const std::vector<uint32_t>* payload = &packed;
  size_t best = packed.size();  // encoded streams pay one extra length word
  if (rle.size() + 1 < best) {
    best = rle.size() + 1;
    tag = kCodesRle;
    payload = &rle;
  }
  if (drle.size() + 1 < best) {
    tag = kCodesDeltaRle;
    payload = &drle;
  }
  write_pod(out, tag);
  if (tag != kCodesRaw)
    write_pod(out, static_cast<uint32_t>(payload->size()));
  out.write(reinterpret_cast<const char*>(payload->data()),
            static_cast<std::streamsize>(payload->size() * sizeof(uint32_t)));
}

std::vector<uint32_t> read_packed_codes(std::istream& in,
                                        const std::string& path,
                                        size_t nwords, uint32_t version) {
  uint8_t tag = kCodesRaw;
  if (version >= 3) tag = read_pod<uint8_t>(in, path);
  if (tag == kCodesRaw) {
    std::vector<uint32_t> packed(nwords, 0u);
    in.read(reinterpret_cast<char*>(packed.data()),
            static_cast<std::streamsize>(packed.size() * sizeof(uint32_t)));
    if (!in) fail(path, "truncated quantizer codes");
    return packed;
  }
  if (tag != kCodesRle && tag != kCodesDeltaRle)
    fail(path, "unknown code encoding tag");
  const uint32_t units = read_pod<uint32_t>(in, path);
  // A chosen encoding is never larger than raw (plus its length word).
  if (units % 2 != 0 || units > nwords + 1)
    fail(path, "corrupt code compression length");
  std::vector<uint32_t> runs(units, 0u);
  in.read(reinterpret_cast<char*>(runs.data()),
          static_cast<std::streamsize>(runs.size() * sizeof(uint32_t)));
  if (!in) fail(path, "truncated quantizer codes");
  std::vector<uint32_t> words = rle_decode(runs, nwords, path);
  if (tag == kCodesDeltaRle)
    for (size_t i = 1; i < words.size(); ++i) words[i] += words[i - 1];
  return words;
}

int64_t dim_of(const ModelSpec& spec, const char* key) {
  for (const auto& [k, v] : spec.dims)
    if (k == key) return v;
  throw std::runtime_error("artifact spec for '" + spec.arch +
                           "' is missing topology field '" + key + "'");
}

/// Loads named tensors into the live target list (zoo::load_state
/// semantics: same registration order, names and shapes must agree).
template <typename GetName, typename GetTensor, typename Item>
void read_tensors_into(std::istream& in, const std::string& path,
                       const char* what, std::vector<Item>& items,
                       GetName get_name, GetTensor get_tensor) {
  const uint32_t count = read_pod<uint32_t>(in, path);
  if (count != items.size())
    fail(path, std::string(what) + " count mismatch: file has " +
                   std::to_string(count) + ", model has " +
                   std::to_string(items.size()));
  for (auto& item : items) {
    const std::string name = read_string(in, path);
    if (name != get_name(item))
      fail(path, std::string("expected ") + what + " '" + get_name(item) +
                     "', found '" + name + "'");
    Tensor loaded = read_tensor(in, path);
    Tensor& dst = get_tensor(item);
    if (loaded.shape() != dst.shape())
      fail(path, std::string(what) + " '" + name + "' shape mismatch");
    dst.copy_from(loaded);
  }
}

}  // namespace

ModelSpec spec_of(const models::TaskModel& model) {
  ModelSpec spec;
  spec.arch = model.name();
  spec.variant = model.config();
  if (const auto* m = dynamic_cast<const models::BinaryResNet*>(&model)) {
    const auto& t = m->topology();
    spec.dims = {{"in_channels", t.in_channels},
                 {"classes", t.classes},
                 {"width", t.width}};
  } else if (const auto* m = dynamic_cast<const models::M5*>(&model)) {
    const auto& t = m->topology();
    spec.dims = {{"classes", t.classes},
                 {"width", t.width},
                 {"input_length", t.input_length},
                 {"weight_bits", t.weight_bits},
                 {"activation_bits", t.activation_bits}};
  } else if (const auto* m =
                 dynamic_cast<const models::LstmForecaster*>(&model)) {
    const auto& t = m->topology();
    spec.dims = {{"hidden", t.hidden},
                 {"window", t.window},
                 {"weight_bits", t.weight_bits}};
  } else if (const auto* m = dynamic_cast<const models::UNet*>(&model)) {
    const auto& t = m->topology();
    spec.dims = {{"base_channels", t.base_channels},
                 {"activation_bits", t.activation_bits}};
  } else {
    throw std::runtime_error(std::string("spec_of: unknown architecture '") +
                             model.name() + "'");
  }
  return spec;
}

std::unique_ptr<models::TaskModel> build_model(const ModelSpec& spec) {
  if (spec.arch == "resnet") {
    models::BinaryResNet::Topology t;
    t.in_channels = dim_of(spec, "in_channels");
    t.classes = dim_of(spec, "classes");
    t.width = dim_of(spec, "width");
    return std::make_unique<models::BinaryResNet>(t, spec.variant);
  }
  if (spec.arch == "m5") {
    models::M5::Topology t;
    t.classes = dim_of(spec, "classes");
    t.width = dim_of(spec, "width");
    t.input_length = dim_of(spec, "input_length");
    t.weight_bits = static_cast<int>(dim_of(spec, "weight_bits"));
    t.activation_bits = static_cast<int>(dim_of(spec, "activation_bits"));
    return std::make_unique<models::M5>(t, spec.variant);
  }
  if (spec.arch == "lstm") {
    models::LstmForecaster::Topology t;
    t.hidden = dim_of(spec, "hidden");
    t.window = dim_of(spec, "window");
    t.weight_bits = static_cast<int>(dim_of(spec, "weight_bits"));
    return std::make_unique<models::LstmForecaster>(t, spec.variant);
  }
  if (spec.arch == "unet") {
    models::UNet::Topology t;
    t.base_channels = dim_of(spec, "base_channels");
    t.activation_bits = static_cast<int>(dim_of(spec, "activation_bits"));
    return std::make_unique<models::UNet>(t, spec.variant);
  }
  throw std::runtime_error("build_model: unknown architecture '" + spec.arch +
                           "'");
}

serve::SessionOptions default_session_options(
    const models::TaskModel& model) {
  serve::SessionOptions o;
  const std::string arch = model.name();
  if (arch == "lstm") {
    o.task = serve::TaskKind::kRegression;
  } else if (arch == "unet") {
    o.task = serve::TaskKind::kSegmentation;
  } else {
    o.task = serve::TaskKind::kClassification;
  }
  return o;
}

namespace {

/// Everything after the file header (or the manifest entry header): one
/// complete spec + session defaults + tensors + frozen-quantizer block.
void write_body(std::ostream& out, models::TaskModel& model,
                const serve::SessionOptions& session_defaults,
                uint32_t version) {
  const ModelSpec spec = spec_of(model);
  write_string(out, spec.arch);
  write_pod(out, static_cast<uint32_t>(spec.dims.size()));
  for (const auto& [key, value] : spec.dims) {
    write_string(out, key);
    write_pod(out, value);
  }
  write_variant(out, spec.variant);
  write_session_options(out, session_defaults, version);

  const auto params = model.parameters();
  write_pod(out, static_cast<uint32_t>(params.size()));
  for (auto* p : params) {
    write_string(out, p->name);
    write_tensor(out, p->var.value());
  }
  const auto buffers = model.buffers();
  write_pod(out, static_cast<uint32_t>(buffers.size()));
  for (const auto& b : buffers) {
    write_string(out, b.name);
    write_tensor(out, *b.tensor);
  }

  const auto targets = model.fault_targets();
  write_pod(out, static_cast<uint32_t>(targets.size()));
  for (const auto& t : targets) {
    const bool quantized = t.quantizer != nullptr;
    write_pod(out, static_cast<uint8_t>(quantized ? 1 : 0));
    if (!quantized) continue;
    write_pod(out, t.quantizer->calibration());
    write_pod(out, static_cast<int32_t>(t.quantizer->bits()));
    const std::vector<int32_t> codes =
        t.quantizer->encode(t.param->var.value());
    write_pod(out, static_cast<uint32_t>(codes.size()));
    if (version >= 2) {
      write_packed_codes(out, pack_codes(codes, t.quantizer->bits()), version);
    } else {
      out.write(reinterpret_cast<const char*>(codes.data()),
                static_cast<std::streamsize>(codes.size() * sizeof(int32_t)));
    }
  }
}

/// Manifest entry framing: name, routing weight, body byte length, body.
/// The length prefix is what lets readers skip to a named entry without
/// parsing its tensors.
void write_entry(std::ostream& out, const std::string& name, double weight,
                 models::TaskModel& model,
                 const serve::SessionOptions& session_defaults,
                 uint32_t version) {
  write_string(out, name);
  write_pod(out, weight);
  std::ostringstream body;
  write_body(body, model, session_defaults, version);
  const std::string bytes = body.str();
  write_pod(out, static_cast<uint64_t>(bytes.size()));
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

}  // namespace

void save_artifact(models::TaskModel& model, const std::string& path,
                   const serve::SessionOptions& session_defaults,
                   uint32_t version) {
  RIPPLE_CHECK(model.deployed())
      << "save_artifact: model must be deployed (frozen quantizer scales)";
  RIPPLE_CHECK(version >= kMinArtifactVersion && version <= kArtifactVersion)
      << "save_artifact: cannot write format version " << version;
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("artifact " + path + ": cannot open");
  out.write(kMagic, 4);
  write_pod(out, version);
  if (version >= 3) {
    write_pod(out, uint32_t{1});
    write_entry(out, model.name(), 1.0, model, session_defaults, version);
  } else {
    write_body(out, model, session_defaults, version);
  }
  if (!out) throw std::runtime_error("artifact " + path + ": write failed");
}

void save_manifest(const std::vector<ManifestModel>& entries,
                   const std::string& path) {
  RIPPLE_CHECK(!entries.empty()) << "save_manifest: no entries";
  std::set<std::string> names;
  for (const ManifestModel& e : entries) {
    RIPPLE_CHECK(!e.name.empty()) << "save_manifest: entry name must be set";
    RIPPLE_CHECK(names.insert(e.name).second)
        << "save_manifest: duplicate entry name '" << e.name << "'";
    RIPPLE_CHECK(e.weight > 0.0)
        << "save_manifest: entry '" << e.name << "' weight must be positive";
    RIPPLE_CHECK(e.model != nullptr && e.model->deployed())
        << "save_manifest: entry '" << e.name << "' needs a deployed model";
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("artifact " + path + ": cannot open");
  out.write(kMagic, 4);
  write_pod(out, kArtifactVersion);
  write_pod(out, static_cast<uint32_t>(entries.size()));
  for (const ManifestModel& e : entries)
    write_entry(out, e.name, e.weight, *e.model, e.session_defaults,
                kArtifactVersion);
  if (!out) throw std::runtime_error("artifact " + path + ": write failed");
}

namespace {

/// Shared header + state reader; fills everything but the model.
struct RawArtifact {
  uint32_t version = kArtifactVersion;
  ModelSpec spec;
  serve::SessionOptions session_defaults;
};

uint32_t read_version(std::istream& in, const std::string& path) {
  char magic[4];
  in.read(magic, 4);
  if (!in || std::memcmp(magic, kMagic, 4) != 0)
    fail(path, "not a ripple deployment artifact (bad magic)");
  const uint32_t version = read_pod<uint32_t>(in, path);
  if (version < kMinArtifactVersion || version > kArtifactVersion)
    fail(path, "format version " + std::to_string(version) +
                   " unsupported (this build reads versions " +
                   std::to_string(kMinArtifactVersion) + ".." +
                   std::to_string(kArtifactVersion) + ")");
  return version;
}

struct EntryHeader {
  std::string name;
  double weight = 1.0;
  uint64_t body_bytes = 0;
};

EntryHeader read_entry_header(std::istream& in, const std::string& path,
                              uint64_t remaining_bytes) {
  EntryHeader h;
  h.name = read_string(in, path);
  h.weight = read_pod<double>(in, path);
  h.body_bytes = read_pod<uint64_t>(in, path);
  if (h.name.empty()) fail(path, "corrupt manifest: unnamed entry");
  if (!(h.weight > 0.0)) fail(path, "corrupt manifest: non-positive weight");
  if (h.body_bytes > remaining_bytes)
    fail(path, "truncated manifest: entry '" + h.name + "' body overruns file");
  return h;
}

/// Positions `in` at the start of the selected entry's body (manifest
/// format, version >= 3). Empty `entry` selects the first one. Bodies are
/// skipped by their recorded byte length, validated against the file size
/// so a truncated manifest fails here instead of misparsing.
EntryHeader seek_entry(std::istream& in, const std::string& path,
                       uint64_t file_bytes, const std::string& entry) {
  const uint32_t count = read_pod<uint32_t>(in, path);
  if (count == 0 || count > kMaxCount)
    fail(path, "corrupt manifest entry count");
  for (uint32_t i = 0; i < count; ++i) {
    const uint64_t pos = static_cast<uint64_t>(in.tellg());
    EntryHeader h = read_entry_header(in, path, file_bytes - pos);
    if (entry.empty() || h.name == entry) return h;
    in.seekg(static_cast<std::streamoff>(h.body_bytes), std::ios::cur);
    if (!in) fail(path, "truncated manifest entry");
  }
  fail(path, "manifest has no entry named '" + entry + "'");
}

uint64_t file_bytes_of(const std::string& path) {
  std::error_code ec;
  const uintmax_t n = std::filesystem::file_size(path, ec);
  if (ec) fail(path, "cannot stat file");
  return static_cast<uint64_t>(n);
}

RawArtifact read_body_header(std::istream& in, const std::string& path,
                             uint32_t version) {
  RawArtifact raw;
  raw.version = version;
  raw.spec.arch = read_string(in, path);
  const uint32_t ndims = read_pod<uint32_t>(in, path);
  if (ndims > kMaxCount) fail(path, "corrupt topology count");
  for (uint32_t i = 0; i < ndims; ++i) {
    std::string key = read_string(in, path);
    const int64_t value = read_pod<int64_t>(in, path);
    raw.spec.dims.emplace_back(std::move(key), value);
  }
  raw.spec.variant = read_variant(in, path);
  raw.session_defaults = read_session_options(in, path, version);
  return raw;
}

/// Everything after the header: tensors into `model`, then the frozen
/// quantizer records, finishing with restore_deployed().
std::vector<QuantRecord> read_state_into(std::istream& in,
                                         const std::string& path,
                                         uint32_t version,
                                         models::TaskModel& model) {
  auto params = model.parameters();
  read_tensors_into(
      in, path, "parameter", params,
      [](autograd::Parameter* p) -> const std::string& { return p->name; },
      [](autograd::Parameter* p) -> Tensor& { return p->var.value(); });
  auto buffers = model.buffers();
  read_tensors_into(
      in, path, "buffer", buffers,
      [](const autograd::Module::BufferRef& b) -> const std::string& {
        return b.name;
      },
      [](const autograd::Module::BufferRef& b) -> Tensor& {
        return *b.tensor;
      });

  const auto targets = model.fault_targets();
  const uint32_t n_quant = read_pod<uint32_t>(in, path);
  if (n_quant != targets.size())
    fail(path, "fault-target count mismatch: file has " +
                   std::to_string(n_quant) + ", model has " +
                   std::to_string(targets.size()));
  std::vector<QuantRecord> quant(n_quant);
  std::vector<float> calibrations(n_quant, 0.0f);
  for (uint32_t i = 0; i < n_quant; ++i) {
    QuantRecord& q = quant[i];
    q.quantized = read_pod<uint8_t>(in, path) != 0;
    const bool live_quantized = targets[i].quantizer != nullptr;
    if (q.quantized != live_quantized)
      fail(path, "fault-target " + std::to_string(i) +
                     " quantization mismatch with the live model");
    if (!q.quantized) continue;
    q.calibration = read_pod<float>(in, path);
    q.bits = read_pod<int32_t>(in, path);
    if (q.bits != targets[i].quantizer->bits())
      fail(path, "fault-target " + std::to_string(i) + " bit-width mismatch");
    const uint32_t ncodes = read_pod<uint32_t>(in, path);
    if (ncodes != static_cast<uint32_t>(targets[i].param->var.value().numel()))
      fail(path, "fault-target " + std::to_string(i) + " code count mismatch");
    if (version >= 2) {
      const std::vector<uint32_t> packed = read_packed_codes(
          in, path, packed_code_words(ncodes, static_cast<int>(q.bits)),
          version);
      q.codes = unpack_codes(packed, ncodes, static_cast<int>(q.bits));
    } else {
      q.codes.resize(ncodes);
      in.read(reinterpret_cast<char*>(q.codes.data()),
              static_cast<std::streamsize>(ncodes * sizeof(int32_t)));
      if (!in) fail(path, "truncated quantizer codes");
    }
    calibrations[i] = q.calibration;
  }
  model.restore_deployed(calibrations);
  model.set_training(false);
  return quant;
}

// ---- inspect skimming ------------------------------------------------------
// inspect_artifact walks entry bodies without materializing tensors:
// tensor payloads are skipped by their recorded shapes, then the
// frozen-quantizer block is parsed for its per-record framing only.

void skip_bytes(std::istream& in, const std::string& path, uint64_t n) {
  in.seekg(static_cast<std::streamoff>(n), std::ios::cur);
  if (!in) fail(path, "truncated file");
}

void skip_tensor(std::istream& in, const std::string& path) {
  const int32_t rank = read_pod<int32_t>(in, path);
  if (rank < 0 || rank > 8) fail(path, "corrupt tensor rank");
  int64_t numel = 1;
  for (int32_t i = 0; i < rank; ++i) {
    const int64_t d = read_pod<int64_t>(in, path);
    if (d < 0 || d > kMaxTensorNumel) fail(path, "corrupt tensor dim");
    numel *= d;
  }
  if (numel > kMaxTensorNumel) fail(path, "corrupt tensor size");
  skip_bytes(in, path, static_cast<uint64_t>(numel) * sizeof(float));
}

/// Positioned after the body header: skips the parameter and buffer
/// tensors, then reads each quant record's bits/count/encoding framing,
/// seeking over the code payloads themselves.
std::vector<QuantTensorInfo> skim_quant_state(std::istream& in,
                                              const std::string& path,
                                              uint32_t version) {
  for (int pass = 0; pass < 2; ++pass) {  // parameters, then buffers
    const uint32_t n = read_pod<uint32_t>(in, path);
    if (n > kMaxCount) fail(path, "corrupt tensor count");
    for (uint32_t i = 0; i < n; ++i) {
      read_string(in, path);  // tensor name
      skip_tensor(in, path);
    }
  }
  const uint32_t n_quant = read_pod<uint32_t>(in, path);
  if (n_quant > kMaxCount) fail(path, "corrupt fault-target count");
  std::vector<QuantTensorInfo> out;
  for (uint32_t i = 0; i < n_quant; ++i) {
    if (read_pod<uint8_t>(in, path) == 0) continue;
    QuantTensorInfo q;
    read_pod<float>(in, path);  // calibration
    q.bits = read_pod<int32_t>(in, path);
    if (q.bits < 1 || q.bits > 32) fail(path, "corrupt quantizer bit width");
    q.codes = read_pod<uint32_t>(in, path);
    if (version < 2) {
      q.encoding = "int32";
      q.packed_bytes = q.codes * sizeof(int32_t);
      q.stored_bytes = q.packed_bytes;
      skip_bytes(in, path, q.stored_bytes);
      out.push_back(std::move(q));
      continue;
    }
    const uint64_t nwords =
        packed_code_words(static_cast<size_t>(q.codes), q.bits);
    q.packed_bytes = nwords * sizeof(uint32_t);
    if (version < 3) {
      q.encoding = "raw";
      q.stored_bytes = q.packed_bytes;
      skip_bytes(in, path, q.packed_bytes);
      out.push_back(std::move(q));
      continue;
    }
    const uint8_t tag = read_pod<uint8_t>(in, path);
    if (tag == kCodesRaw) {
      q.encoding = "raw";
      q.stored_bytes = sizeof(uint8_t) + q.packed_bytes;
      skip_bytes(in, path, q.packed_bytes);
    } else if (tag == kCodesRle || tag == kCodesDeltaRle) {
      q.encoding = tag == kCodesRle ? "rle" : "delta+rle";
      const uint32_t units = read_pod<uint32_t>(in, path);
      if (units % 2 != 0 || units > nwords + 1)
        fail(path, "corrupt code compression length");
      q.stored_bytes = sizeof(uint8_t) + sizeof(uint32_t) +
                       static_cast<uint64_t>(units) * sizeof(uint32_t);
      skip_bytes(in, path, static_cast<uint64_t>(units) * sizeof(uint32_t));
    } else {
      fail(path, "unknown code encoding tag");
    }
    out.push_back(std::move(q));
  }
  return out;
}

}  // namespace

LoadedArtifact load_artifact(const std::string& path,
                             const std::string& entry) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail(path, "no such file");
  const uint32_t version = read_version(in, path);
  LoadedArtifact art;
  if (version >= 3) {
    const EntryHeader h = seek_entry(in, path, file_bytes_of(path), entry);
    art.entry_name = h.name;
    art.route_weight = h.weight;
  } else if (!entry.empty()) {
    fail(path, "format version " + std::to_string(version) +
                   " has no named entries (requested '" + entry + "')");
  }
  RawArtifact raw = read_body_header(in, path, version);
  art.spec = std::move(raw.spec);
  art.session_defaults = raw.session_defaults;
  art.model = build_model(art.spec);
  art.quant = read_state_into(in, path, version, *art.model);
  return art;
}

ManifestInfo inspect_artifact(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail(path, "no such file");
  ManifestInfo info;
  info.version = read_version(in, path);
  if (info.version < 3) {
    RawArtifact raw = read_body_header(in, path, info.version);
    info.entries.push_back({raw.spec.arch, 1.0,
                            skim_quant_state(in, path, info.version)});
    return info;
  }
  const uint64_t file_bytes = file_bytes_of(path);
  const uint32_t count = read_pod<uint32_t>(in, path);
  if (count == 0 || count > kMaxCount)
    fail(path, "corrupt manifest entry count");
  for (uint32_t i = 0; i < count; ++i) {
    const uint64_t pos = static_cast<uint64_t>(in.tellg());
    EntryHeader h = read_entry_header(in, path, file_bytes - pos);
    const uint64_t body_start = static_cast<uint64_t>(in.tellg());
    read_body_header(in, path, info.version);
    info.entries.push_back({std::move(h.name), h.weight,
                            skim_quant_state(in, path, info.version)});
    // The quant block ends the body; position past the entry by its
    // recorded length so a skim miscount can't desync later entries.
    in.seekg(static_cast<std::streamoff>(body_start + h.body_bytes));
    if (!in) fail(path, "truncated manifest entry");
  }
  return info;
}

bool load_artifact_into(models::TaskModel& model, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  const uint32_t version = read_version(in, path);
  if (version >= 3) seek_entry(in, path, file_bytes_of(path), {});
  RawArtifact raw = read_body_header(in, path, version);
  const ModelSpec live = spec_of(model);
  if (raw.spec.arch != live.arch || raw.spec.dims != live.dims ||
      raw.spec.variant.variant != live.variant.variant)
    fail(path, "descriptor does not match the live model (stale cache?)");
  read_state_into(in, path, version, model);
  return true;
}

LoadedArtifact replicate(const LoadedArtifact& art) {
  RIPPLE_CHECK(art.model != nullptr) << "replicate: artifact holds no model";
  LoadedArtifact copy;
  copy.spec = art.spec;
  copy.session_defaults = art.session_defaults;
  copy.quant = art.quant;
  copy.entry_name = art.entry_name;
  copy.route_weight = art.route_weight;
  copy.model = build_model(copy.spec);

  const auto src_params = art.model->parameters();
  auto dst_params = copy.model->parameters();
  RIPPLE_CHECK(src_params.size() == dst_params.size())
      << "replicate: parameter count mismatch";
  for (size_t i = 0; i < src_params.size(); ++i)
    dst_params[i]->var.value().copy_from(src_params[i]->var.value());
  const auto src_buffers = art.model->buffers();
  auto dst_buffers = copy.model->buffers();
  RIPPLE_CHECK(src_buffers.size() == dst_buffers.size())
      << "replicate: buffer count mismatch";
  for (size_t i = 0; i < src_buffers.size(); ++i)
    dst_buffers[i].tensor->copy_from(*src_buffers[i].tensor);

  std::vector<float> calibrations;
  calibrations.reserve(copy.quant.size());
  for (const QuantRecord& q : copy.quant)
    calibrations.push_back(q.quantized ? q.calibration : 0.0f);
  copy.model->restore_deployed(calibrations);
  copy.model->set_training(false);
  return copy;
}

void decode_quantized_weights(models::TaskModel& model,
                              const std::vector<QuantRecord>& quant) {
  const auto targets = model.fault_targets();
  RIPPLE_CHECK(quant.size() == targets.size())
      << "decode_quantized_weights: record/target count mismatch";
  for (size_t i = 0; i < targets.size(); ++i) {
    if (!quant[i].quantized) continue;
    Tensor& w = targets[i].param->var.value();
    w.copy_from(targets[i].quantizer->decode(quant[i].codes, w.shape()));
  }
}

}  // namespace ripple::deploy
