// Trace -> ExecutionPlan compiler and the plan executor. See plan.h for the
// pass pipeline overview. Bit-exactness notes: every fused kernel below
// reproduces the graph ops' per-element rounding sequence (one rounding per
// elementary op, no reassociation); the build targets baseline x86-64 where
// the compiler cannot contract mul+add into FMA, and the session verifies
// every compiled plan against the graph oracle by memcmp before installing
// it, so any toolchain that did change rounding would only cost the
// compiled path, never correctness.
#include "deploy/plan.h"

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "deploy/exec_backend.h"
#include "tensor/check.h"
#include "tensor/vmath.h"

namespace ripple::deploy {

namespace {

// ---------------------------------------------------------------------------
// Fused-step kernels.

// Uniform [n, ...] -> stacked [t·n, ...]: T contiguous copies of the block.
void replicate_into(const Tensor& x, Tensor& out) {
  const int64_t block = x.numel();
  const int64_t reps = out.numel() / block;
  const float* src = x.data();
  float* dst = out.data();
  for (int64_t r = 0; r < reps; ++r) {
    std::memcpy(dst + r * block, src, sizeof(float) * static_cast<size_t>(block));
  }
}

// Per-replica channel affine: out = x·γ[rep] + β[rep], γ/β [R, C]. When x
// has fewer rows than out (R = T, x uniform) the replication is fused: row i
// of out reads sample row i % (rows/R). Safe in place (x == out) in the
// non-expanding case, which is how GEMM epilogues use it. The mul sweep and
// the add sweep are separate loops so the rounding matches the two graph ops
// (mul_channel[_replicated] then add_channel[_replicated]) exactly.
void affine_into(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                 Tensor& out) {
  const int64_t rows = out.dim(0);
  const int64_t r = gamma.dim(0);
  const int64_t c = gamma.dim(1);
  const int64_t inner = out.numel() / (rows * c);
  const int64_t rows_per_rep = rows / r;
  const int64_t rowsz = c * inner;
  const bool expand = x.dim(0) != rows;
  const float* px = x.data();
  const float* pg = gamma.data();
  const float* pb = beta.data();
  float* po = out.data();
  for (int64_t i = 0; i < rows; ++i) {
    const int64_t rep = i / rows_per_rep;
    const float* src = px + (expand ? i % rows_per_rep : i) * rowsz;
    float* dst = po + i * rowsz;
    const float* gr = pg + rep * c;
    const float* br = pb + rep * c;
    if (inner == 1) {
      // 2-D case: the channel axis is contiguous, so the two rounding
      // sweeps (mul, then add — same sequence as below) auto-vectorize.
      for (int64_t ch = 0; ch < c; ++ch) dst[ch] = src[ch] * gr[ch];
      for (int64_t ch = 0; ch < c; ++ch) dst[ch] += br[ch];
      continue;
    }
    for (int64_t ch = 0; ch < c; ++ch) {
      const float g = gr[ch];
      float* d = dst + ch * inner;
      const float* s = src + ch * inner;
      for (int64_t k = 0; k < inner; ++k) d[k] = s[k] * g;
    }
    for (int64_t ch = 0; ch < c; ++ch) {
      const float b = br[ch];
      float* d = dst + ch * inner;
      for (int64_t k = 0; k < inner; ++k) d[k] += b;
    }
  }
}

// Eval batch-norm + channel affine: ((x − μ[c])·s[c])·γ[c] + β[c], each
// elementary op rounded separately, matching batch_normalize -> mul_channel
// -> add_channel.
void bn_affine_into(const Tensor& x, const Tensor& mean, const Tensor& scale,
                    const Tensor& gamma, const Tensor& beta, Tensor& out) {
  const int64_t rows = out.dim(0);
  const int64_t c = out.dim(1);
  const int64_t inner = out.numel() / (rows * c);
  const float* px = x.data();
  const float* pm = mean.data();
  const float* ps = scale.data();
  const float* pg = gamma.data();
  const float* pb = beta.data();
  float* po = out.data();
  for (int64_t i = 0; i < rows; ++i) {
    for (int64_t ch = 0; ch < c; ++ch) {
      const int64_t base = (i * c + ch) * inner;
      const float m = pm[ch];
      const float s = ps[ch];
      const float g = pg[ch];
      const float b = pb[ch];
      for (int64_t k = 0; k < inner; ++k) {
        const float v = (px[base + k] - m) * s;
        const float w = v * g;
        po[base + k] = w + b;
      }
    }
  }
}

// Fused LSTM gate block over the two gate-GEMM halves g1 = x·Wihᵀ + b_ih and
// g2 = h·Whhᵀ + b_hh (both [n, 4h], gate order i|f|g|o):
//   v = g1 + g2;  i,f,o = σ(v);  g = tanh(v)
//   c' = (f·c) + (i·g);  h' = o·tanh(c')
// Replaces 13 graph steps (add, 4 slices, 4 activations, 3 muls, add) with
// identical per-element arithmetic.
void lstm_gates_into(const Tensor& g1, const Tensor& g2, const Tensor& c_prev,
                     int64_t hidden, Tensor& h_out, Tensor& c_out) {
  const int64_t rows = h_out.dim(0);
  const int64_t h4 = 4 * hidden;
  const float* p1 = g1.data();
  const float* p2 = g2.data();
  const float* pc = c_prev.data();
  float* ph = h_out.data();
  float* pn = c_out.data();
  // Gate activations go through the vectorized σ/tanh kernels
  // (tensor/vmath.h) — the same per-element sequences the graph's
  // sigmoid/tanh ops perform, so the fused step still matches the graph
  // oracle bit-for-bit. Scratch: activated gates [4h] + tanh(c') [h];
  // thread_local keeps the steady state allocation-free once warm.
  thread_local std::vector<float> gate_buf;
  gate_buf.resize(static_cast<size_t>(h4 + hidden));
  float* gv = gate_buf.data();
  float* tc = gv + h4;
  for (int64_t i = 0; i < rows; ++i) {
    const float* a = p1 + i * h4;
    const float* b = p2 + i * h4;
    const float* cp = pc + i * hidden;
    float* hr = ph + i * hidden;
    float* cr = pn + i * hidden;
    for (int64_t j = 0; j < h4; ++j) gv[j] = a[j] + b[j];
    vsigmoid(gv, gv, hidden);                            // i
    vsigmoid(gv + hidden, gv + hidden, hidden);          // f
    vtanh(gv + 2 * hidden, gv + 2 * hidden, hidden);     // g
    vsigmoid(gv + 3 * hidden, gv + 3 * hidden, hidden);  // o
    for (int64_t j = 0; j < hidden; ++j) {
      const float fc = gv[hidden + j] * cp[j];
      const float ig = gv[j] * gv[2 * hidden + j];
      cr[j] = fc + ig;
    }
    vtanh(cr, tc, hidden);
    for (int64_t j = 0; j < hidden; ++j) hr[j] = gv[3 * hidden + j] * tc[j];
  }
}

// True when the tensor is T identical contiguous blocks (bitwise).
bool block_uniform(const Tensor& c, int64_t reps) {
  if (reps <= 1) return true;
  if (c.numel() <= 0 || c.numel() % reps != 0) return false;
  const int64_t block = c.numel() / reps;
  const float* p = c.data();
  for (int64_t r = 1; r < reps; ++r) {
    if (std::memcmp(p, p + r * block, sizeof(float) * static_cast<size_t>(block)) != 0) {
      return false;
    }
  }
  return true;
}

// Operand i of `tag` is indexed by the step's row (dim 0) — i.e. a constant
// there with one row per stacked-batch row must be block-uniform for the
// step to run at uniform rows, and gets sliced to its first block when it
// does. Channel parameters (γ, β, ...) broadcast across rows and are exempt.
bool row_indexed_operand(OpTag tag, int i) {
  if (i == 0) return true;
  switch (tag) {
    case OpTag::kAdd:
    case OpTag::kSub:
    case OpTag::kMul:
    case OpTag::kApplyMask:
    case OpTag::kConcat:
      return i == 1;
    case OpTag::kLstmGates:
      return i <= 2;
    default:
      return false;
  }
}

bool structured_tag(OpTag tag) {
  return tag == OpTag::kLinear || tag == OpTag::kConv2d ||
         tag == OpTag::kConv1d;
}

// ---------------------------------------------------------------------------
// Builder IR.

struct WBuf {
  Shape shape;  // traced (stacked) shape
  bool replicated = true;
};

struct WStep {
  OpTag tag = OpTag::kNone;
  std::vector<int> args;
  int out = -1;
  int out2 = -1;
  StepFn fn;
  Tensor w, b, g2, b2;
  int64_t i0 = 0, i1 = 0;
  Tensor ep_gamma, ep_beta;
  Tensor traced_out;
  bool replicated = true;
  bool dead = false;
};

struct PlanBuilder {
  int64_t t = 1;
  std::vector<WBuf> bufs;
  std::vector<Tensor> consts;
  std::unordered_map<const float*, std::vector<int>> buf_ids;
  std::unordered_map<const float*, std::vector<int>> const_ids;
  std::vector<WStep> ws;
  PlanStats stats;
  std::string err;

  // Emission outputs.
  std::vector<PlanStep> psteps;
  std::vector<Shape> fshape;        // per buffer, post lazy-stem reduction
  std::vector<int> slot_of;         // per buffer, -1 = never materialized
  std::vector<int64_t> slot_numel;  // per arena slot
  int out_buf = -1;
  int64_t max_cols = 0, max_stage = 0;

  bool fail(std::string m) {
    if (err.empty()) err = std::move(m);
    return false;
  }

  // -1: unknown pointer; -2: pointer known under a different shape (alias
  // hazard — compilation refuses rather than guessing).
  int find_buffer(const Tensor& x) const {
    auto it = buf_ids.find(x.data());
    if (it == buf_ids.end()) return -1;
    for (auto rit = it->second.rbegin(); rit != it->second.rend(); ++rit) {
      if (bufs[*rit].shape == x.shape()) return *rit;
    }
    return -2;
  }

  int intern_constant(const Tensor& x) {
    auto& ids = const_ids[x.data()];
    for (auto rit = ids.rbegin(); rit != ids.rend(); ++rit) {
      if (consts[*rit].same_shape(x)) return *rit;
    }
    consts.push_back(x);  // retain handle; keeps storage + pointer identity
    ids.push_back(static_cast<int>(consts.size()) - 1);
    return static_cast<int>(consts.size()) - 1;
  }

  bool build_steps(std::vector<TraceStep>& steps, const Tensor& input) {
    if (steps.empty()) return fail("empty trace");
    if (!input.defined() || input.numel() == 0) {
      return fail("trace input not set");
    }
    if (t > 1 && (input.rank() == 0 || input.dim(0) % t != 0)) {
      return fail("traced input rows not divisible by replica count");
    }
    bufs.push_back({input.shape(), t == 1});
    buf_ids[input.data()].push_back(0);
    for (TraceStep& tsx : steps) {
      if (!tsx.output.defined() || tsx.output.numel() == 0) {
        return fail("traced step has no output");
      }
      WStep w;
      w.tag = tsx.tag;
      w.fn = std::move(tsx.fn);
      w.w = tsx.w;
      w.b = tsx.b;
      w.i0 = tsx.i0;
      w.i1 = tsx.i1;
      w.traced_out = tsx.output;
      if (w.fn == nullptr && !structured_tag(w.tag)) {
        return fail("traced step without executor closure");
      }
      bool all_const = true;
      for (const Tensor& in : tsx.inputs) {
        if (!in.defined() || in.numel() == 0) {
          return fail("traced step has an undefined input");
        }
        const int bid = find_buffer(in);
        if (bid == -2) return fail("operand aliases a buffer under another shape");
        if (bid >= 0) {
          w.args.push_back(bid);
          all_const = false;
        } else {
          w.args.push_back(-1 - intern_constant(in));
        }
      }
      if (w.args.size() > 3) return fail("traced step with more than 3 operands");
      if (all_const) {
        // The traced forward already computed this value from constants
        // alone; bake its output verbatim (exact by construction).
        consts.push_back(tsx.output);
        const_ids[tsx.output.data()].push_back(static_cast<int>(consts.size()) - 1);
        ++stats.folded_constants;
        continue;
      }
      w.out = static_cast<int>(bufs.size());
      bufs.push_back({tsx.output.shape(), true});
      buf_ids[tsx.output.data()].push_back(w.out);
      ws.push_back(std::move(w));
    }
    if (ws.empty()) return fail("trace folded away entirely");
    return true;
  }

  // Buffers start uniform (one block of T identical ones); a step's output
  // becomes replicated when the op itself is per-replica (replica affines),
  // when its shape cannot split into T row blocks, when any input buffer is
  // already replicated, or when a row-indexed constant operand (mask, noise
  // factor) differs across replicas. Monotone in trace order.
  void mark_replication() {
    if (t <= 1) return;
    for (WStep& w : ws) {
      bool rep = w.tag == OpTag::kMulChannelRep ||
                 w.tag == OpTag::kAddChannelRep || w.tag == OpTag::kReshape;
      const Tensor& to = w.traced_out;
      if (to.rank() == 0 || to.dim(0) <= 0 || to.dim(0) % t != 0) rep = true;
      if (!rep) {
        for (size_t i = 0; i < w.args.size() && !rep; ++i) {
          const int a = w.args[i];
          if (a >= 0) {
            rep = bufs[a].replicated;
          } else if (row_indexed_operand(w.tag, static_cast<int>(i))) {
            const Tensor& c = consts[-1 - a];
            if (c.rank() >= 1 && c.dim(0) == to.dim(0) &&
                !block_uniform(c, t)) {
              rep = true;
            }
          }
        }
      }
      w.replicated = rep;
      bufs[w.out].replicated = rep;
    }
  }

  std::vector<std::vector<int>> consumers() const {
    std::vector<std::vector<int>> cons(bufs.size());
    for (int s = 0; s < static_cast<int>(ws.size()); ++s) {
      if (ws[s].dead) continue;
      for (const int a : ws[s].args) {
        if (a >= 0) cons[a].push_back(s);
      }
    }
    return cons;
  }

  int final_buffer() const {
    for (auto rit = ws.rbegin(); rit != ws.rend(); ++rit) {
      if (!rit->dead) return rit->out;
    }
    return -1;
  }

  void fuse_lstm();
  void fuse_bn_affine();
  void fuse_affine_pairs();
  void fold_epilogues();
  bool emit();
};

// Matches the 13-step LSTM cell tail anchored at the gates add (gs = g1+g2):
// 4 sole-consumed col slices -> σ,σ,tanh,σ -> f·c_prev, i·g -> add (c') ->
// tanh -> o·tanh(c') and replaces it with one kLstmGates step producing h'
// (out) and c' (out2). c' stays materialized because the next timestep reads
// it. The two gate GEMMs stay separate steps (fusing them would change
// accumulation order).
void PlanBuilder::fuse_lstm() {
  bool changed = true;
  while (changed) {
    changed = false;
    const auto cons = consumers();
    const int fin = final_buffer();
    for (int ai = 0; ai < static_cast<int>(ws.size()) && !changed; ++ai) {
      WStep& a_step = ws[ai];
      if (a_step.dead || a_step.tag != OpTag::kAdd || a_step.args.size() != 2) {
        continue;
      }
      const int gates = a_step.out;
      if (gates == fin || cons[gates].size() != 4) continue;
      const Shape& gs = bufs[gates].shape;
      if (gs.size() != 2 || gs[1] <= 0 || gs[1] % 4 != 0) continue;
      const int64_t h = gs[1] / 4;
      int slice[4] = {-1, -1, -1, -1};
      bool ok = true;
      for (const int s : cons[gates]) {
        const WStep& sl = ws[s];
        if (sl.tag != OpTag::kSliceCols || sl.args.size() != 1 ||
            sl.i0 % h != 0 || sl.i0 / h > 3 || sl.i1 != sl.i0 + h ||
            slice[sl.i0 / h] != -1) {
          ok = false;
          break;
        }
        slice[sl.i0 / h] = s;
      }
      if (!ok) continue;
      auto sole = [&](int buf) {
        return (buf != fin && cons[buf].size() == 1) ? cons[buf][0] : -1;
      };
      static constexpr OpTag kWant[4] = {OpTag::kSigmoid, OpTag::kSigmoid,
                                         OpTag::kTanh, OpTag::kSigmoid};
      int act[4];
      for (int k = 0; k < 4 && ok; ++k) {
        act[k] = sole(ws[slice[k]].out);
        ok = act[k] >= 0 && ws[act[k]].tag == kWant[k];
      }
      if (!ok) continue;
      const int ib = ws[act[0]].out, fb = ws[act[1]].out;
      const int gb = ws[act[2]].out, ob = ws[act[3]].out;
      const int fmul = sole(fb);
      if (fmul < 0 || ws[fmul].tag != OpTag::kMul ||
          ws[fmul].args.size() != 2) {
        continue;
      }
      const int cprev = ws[fmul].args[0] == fb ? ws[fmul].args[1] : ws[fmul].args[0];
      const int imul = sole(ib);
      if (imul < 0 || ws[imul].tag != OpTag::kMul ||
          ws[imul].args.size() != 2) {
        continue;
      }
      const int iother =
          ws[imul].args[0] == ib ? ws[imul].args[1] : ws[imul].args[0];
      if (iother != gb || sole(gb) != imul) continue;
      const int cadd = sole(ws[fmul].out);
      if (cadd < 0 || cadd != sole(ws[imul].out) ||
          ws[cadd].tag != OpTag::kAdd) {
        continue;
      }
      const int cnext = ws[cadd].out;
      int th = -1;
      ok = true;
      for (const int s : cons[cnext]) {
        if (ws[s].tag == OpTag::kTanh) {
          if (th != -1) {
            ok = false;
            break;
          }
          th = s;
        }
      }
      if (!ok || th < 0 || ws[th].args.size() != 1 || ws[th].args[0] != cnext) {
        continue;
      }
      const int hm = sole(ws[th].out);
      if (hm < 0 || ws[hm].tag != OpTag::kMul || ws[hm].args.size() != 2) {
        continue;
      }
      const int hother =
          ws[hm].args[0] == ws[th].out ? ws[hm].args[1] : ws[hm].args[0];
      if (hother != ob || sole(ob) != hm) continue;
      int matched[] = {ai,     slice[0], slice[1], slice[2], slice[3],
                       act[0], act[1],   act[2],   act[3],   fmul,
                       imul,   cadd,     th,       hm};
      bool distinct = true;
      for (size_t x = 0; x < std::size(matched) && distinct; ++x) {
        for (size_t y = x + 1; y < std::size(matched); ++y) {
          if (matched[x] == matched[y]) {
            distinct = false;
            break;
          }
        }
      }
      if (!distinct) continue;
      WStep fs;
      fs.tag = OpTag::kLstmGates;
      fs.args = {a_step.args[0], a_step.args[1], cprev};
      fs.out = ws[hm].out;
      fs.out2 = cnext;
      fs.i0 = h;
      fs.traced_out = ws[hm].traced_out;
      fs.replicated = ws[hm].replicated;
      for (const int s : matched) ws[s].dead = true;
      ws[hm] = std::move(fs);
      ws[hm].dead = false;
      stats.fused_away += 12;  // 13 steps in, 1 out
      changed = true;
    }
  }
}

// batch_normalize(eval) -> mul_channel(γ const) -> add_channel(β const),
// each link sole-consumed, collapses to one kBnAffine step.
void PlanBuilder::fuse_bn_affine() {
  bool changed = true;
  while (changed) {
    changed = false;
    const auto cons = consumers();
    const int fin = final_buffer();
    for (int bi = 0; bi < static_cast<int>(ws.size()); ++bi) {
      if (ws[bi].dead || ws[bi].tag != OpTag::kBatchNormEval ||
          ws[bi].args.size() != 1) {
        continue;
      }
      if (ws[bi].out == fin || cons[ws[bi].out].size() != 1) continue;
      const int mi = cons[ws[bi].out][0];
      if (ws[mi].tag != OpTag::kMulChannel || ws[mi].args.size() != 2 ||
          ws[mi].args[0] != ws[bi].out || ws[mi].args[1] >= 0) {
        continue;
      }
      if (ws[mi].out == fin || cons[ws[mi].out].size() != 1) continue;
      const int di = cons[ws[mi].out][0];
      if (ws[di].tag != OpTag::kAddChannel || ws[di].args.size() != 2 ||
          ws[di].args[0] != ws[mi].out || ws[di].args[1] >= 0) {
        continue;
      }
      WStep fs;
      fs.tag = OpTag::kBnAffine;
      fs.args = {ws[bi].args[0]};
      fs.w = ws[bi].w;   // running mean
      fs.b = ws[bi].b;   // precomputed 1/sqrt(var + eps)
      fs.g2 = consts[-1 - ws[mi].args[1]];
      fs.b2 = consts[-1 - ws[di].args[1]];
      fs.out = ws[di].out;
      fs.traced_out = ws[di].traced_out;
      fs.replicated = ws[di].replicated;
      ws[bi].dead = true;
      ws[mi].dead = true;
      ws[di] = std::move(fs);
      stats.fused_away += 2;
      changed = true;
      break;
    }
  }
}

// mul_channel[_replicated](γ const) -> add_channel[_replicated](β const),
// sole-consumed, collapses to one kAffine step with γ/β as [R, C] (R = 1
// for the plain pair). The replicated pair is the InvertedNorm stochastic
// affine; when its input buffer is uniform the kAffine doubles as the lazy
// replication point (expanding executor).
void PlanBuilder::fuse_affine_pairs() {
  bool changed = true;
  while (changed) {
    changed = false;
    const auto cons = consumers();
    const int fin = final_buffer();
    for (int mi = 0; mi < static_cast<int>(ws.size()); ++mi) {
      if (ws[mi].dead) continue;
      const bool repv = ws[mi].tag == OpTag::kMulChannelRep;
      if (!repv && ws[mi].tag != OpTag::kMulChannel) continue;
      if (ws[mi].args.size() != 2 || ws[mi].args[1] >= 0) continue;
      if (ws[mi].out == fin || cons[ws[mi].out].size() != 1) continue;
      const int di = cons[ws[mi].out][0];
      const OpTag want_add =
          repv ? OpTag::kAddChannelRep : OpTag::kAddChannel;
      if (ws[di].tag != want_add || ws[di].args.size() != 2 ||
          ws[di].args[0] != ws[mi].out || ws[di].args[1] >= 0) {
        continue;
      }
      Tensor g = consts[-1 - ws[mi].args[1]];
      Tensor b = consts[-1 - ws[di].args[1]];
      if (!repv) {
        g = g.reshaped({1, g.numel()});
        b = b.reshaped({1, b.numel()});
      }
      if (g.rank() != 2 || !g.same_shape(b)) continue;
      WStep fs;
      fs.tag = OpTag::kAffine;
      fs.args = {ws[mi].args[0]};
      fs.w = g;
      fs.b = b;
      fs.out = ws[di].out;
      fs.traced_out = ws[di].traced_out;
      fs.replicated = ws[di].replicated;
      ws[mi].dead = true;
      ws[di] = std::move(fs);
      stats.fused_away += 1;
      changed = true;
      break;
    }
  }
}

// A non-expanding kAffine sole-consuming a linear/conv output folds into the
// producer as an in-place epilogue over its output buffer. Expanding affines
// (uniform in, replicated out) must stay standalone — the producer runs at
// uniform rows.
void PlanBuilder::fold_epilogues() {
  bool changed = true;
  while (changed) {
    changed = false;
    const auto cons = consumers();
    const int fin = final_buffer();
    for (int pi = 0; pi < static_cast<int>(ws.size()); ++pi) {
      if (ws[pi].dead || !structured_tag(ws[pi].tag) ||
          ws[pi].ep_gamma.defined()) {
        continue;
      }
      if (ws[pi].out == fin || cons[ws[pi].out].size() != 1) continue;
      const int fi = cons[ws[pi].out][0];
      if (ws[fi].tag != OpTag::kAffine || ws[fi].args.size() != 1 ||
          ws[fi].args[0] != ws[pi].out) {
        continue;
      }
      if (bufs[ws[fi].out].replicated != bufs[ws[pi].out].replicated) continue;
      ws[pi].ep_gamma = ws[fi].w;
      ws[pi].ep_beta = ws[fi].b;
      ws[pi].out = ws[fi].out;
      ws[pi].traced_out = ws[fi].traced_out;
      ws[fi].dead = true;
      ++stats.epilogue_affines;
      ++stats.fused_away;
      changed = true;
      break;
    }
  }
}

bool PlanBuilder::emit() {
  std::unordered_map<int, int> repmap;    // buffer -> its replicated copy
  std::unordered_map<int, int> slicemap;  // constant -> first-block slice
  auto emit_replicate = [&](int src) {
    const auto it = repmap.find(src);
    if (it != repmap.end()) return it->second;
    const int nb = static_cast<int>(bufs.size());
    bufs.push_back({bufs[src].shape, true});
    PlanStep r;
    r.tag = OpTag::kReplicate;
    r.args = {src};
    r.out = nb;
    psteps.push_back(std::move(r));
    ++stats.replicate_steps;
    repmap.emplace(src, nb);
    return nb;
  };
  auto slice_const = [&](int cid) {
    const auto it = slicemap.find(cid);
    if (it != slicemap.end()) return it->second;
    const Tensor c = consts[cid];
    Shape s = c.shape();
    s[0] /= t;
    Tensor sc = Tensor::empty(std::move(s));
    std::memcpy(sc.data(), c.data(), sizeof(float) * static_cast<size_t>(sc.numel()));
    consts.push_back(std::move(sc));
    const int id = static_cast<int>(consts.size()) - 1;
    slicemap.emplace(cid, id);
    return id;
  };

  for (WStep& w : ws) {
    if (w.dead) continue;
    PlanStep p;
    p.tag = w.tag;
    p.args = w.args;
    p.out = w.out;
    p.out2 = w.out2;
    p.fn = std::move(w.fn);
    p.w = w.w;
    p.b = w.b;
    p.g2 = w.g2;
    p.b2 = w.b2;
    p.i0 = w.i0;
    p.i1 = w.i1;
    p.ep_gamma = w.ep_gamma;
    p.ep_beta = w.ep_beta;
    if (t > 1) {
      for (size_t i = 0; i < p.args.size(); ++i) {
        const int a = p.args[i];
        if (a >= 0) {
          if (w.replicated && !bufs[a].replicated) {
            // kAffine reads its data operand at uniform rows directly
            // (expanding executor); everything else gets an explicit copy.
            if (!(w.tag == OpTag::kAffine && i == 0)) {
              p.args[i] = emit_replicate(a);
            }
          } else if (!w.replicated && bufs[a].replicated) {
            return fail("internal: uniform step reads a replicated buffer");
          }
        } else if (!w.replicated &&
                   row_indexed_operand(w.tag, static_cast<int>(i))) {
          const int cid = -1 - a;
          const Tensor& c = consts[cid];
          const Tensor& to = w.traced_out;
          if (c.rank() >= 1 && to.rank() >= 1 && c.dim(0) == to.dim(0) &&
              c.dim(0) % t == 0 && c.numel() % t == 0) {
            p.args[i] = -1 - slice_const(cid);
          }
        }
      }
      if (!w.replicated) ++stats.uniform_steps;
    }
    psteps.push_back(std::move(p));
  }
  if (psteps.empty()) return fail("no executable steps");
  out_buf = psteps.back().out;
  if (t > 1 && !bufs[out_buf].replicated) out_buf = emit_replicate(out_buf);

  // Final (post lazy-stem) buffer shapes.
  fshape.resize(bufs.size());
  for (size_t i = 0; i < bufs.size(); ++i) {
    Shape s = bufs[i].shape;
    if (t > 1 && !bufs[i].replicated) {
      if (s.empty() || s[0] % t != 0) {
        return fail("internal: uniform buffer rows not divisible by replicas");
      }
      s[0] /= t;
    }
    fshape[i] = std::move(s);
  }

  // Liveness-driven arena slot assignment: a buffer's slot returns to a
  // per-numel free list after its last consuming step; outputs allocate
  // before operands release, so a step never writes the buffer it reads
  // (except the intentional in-place epilogue).
  const int nb = static_cast<int>(bufs.size());
  std::vector<int> last_use(nb, -1);
  for (int s = 0; s < static_cast<int>(psteps.size()); ++s) {
    for (const int a : psteps[s].args) {
      if (a >= 0) last_use[a] = s;
    }
  }
  if (last_use[0] < 0) return fail("traced input is never consumed");
  last_use[out_buf] = std::numeric_limits<int>::max();
  slot_of.assign(nb, -1);
  std::vector<char> freed(nb, 0);
  std::unordered_map<int64_t, std::vector<int>> free_slots;
  auto alloc = [&](int buf) {
    if (buf < 0 || slot_of[buf] >= 0) return;
    const int64_t ne = shape_numel(fshape[buf]);
    auto& fl = free_slots[ne];
    if (!fl.empty()) {
      slot_of[buf] = fl.back();
      fl.pop_back();
    } else {
      slot_of[buf] = static_cast<int>(slot_numel.size());
      slot_numel.push_back(ne);
    }
  };
  auto release = [&](int buf, int s) {
    if (buf < 0 || freed[buf] || slot_of[buf] < 0) return;
    if (last_use[buf] <= s) {
      freed[buf] = 1;
      free_slots[shape_numel(fshape[buf])].push_back(slot_of[buf]);
    }
  };
  alloc(0);
  for (int s = 0; s < static_cast<int>(psteps.size()); ++s) {
    alloc(psteps[s].out);
    alloc(psteps[s].out2);
    for (const int a : psteps[s].args) {
      if (a >= 0) release(a, s);
    }
    release(psteps[s].out, s);
    release(psteps[s].out2, s);
  }

  // Conv im2col workspace maxima over the final shapes.
  for (const PlanStep& p : psteps) {
    if (p.tag != OpTag::kConv2d && p.tag != OpTag::kConv1d) continue;
    if (p.args.empty() || p.args[0] < 0) {
      return fail("internal: conv step without buffer input");
    }
    const Shape& xs = fshape[p.args[0]];
    const Shape& os = fshape[p.out];
    const int64_t n = xs[0];
    const int64_t cout = p.w.dim(0);
    const int64_t ck = p.w.numel() / cout;
    const int64_t oa = shape_numel(os) / (os[0] * cout);
    const int64_t group = autograd::conv_group_size(n, ck, oa);
    max_cols = std::max(max_cols, ck * group * oa);
    max_stage = std::max(max_stage, cout * group * oa);
  }
  return true;
}

std::atomic<bool> g_plan_profiling{false};

}  // namespace

const char* op_tag_name(OpTag tag) {
  switch (tag) {
    case OpTag::kNone: return "none";
    case OpTag::kAdd: return "add";
    case OpTag::kSub: return "sub";
    case OpTag::kMul: return "mul";
    case OpTag::kMulScalar: return "mul_scalar";
    case OpTag::kAddScalar: return "add_scalar";
    case OpTag::kRelu: return "relu";
    case OpTag::kSigmoid: return "sigmoid";
    case OpTag::kTanh: return "tanh";
    case OpTag::kSign: return "sign";
    case OpTag::kPact: return "pact";
    case OpTag::kFakeQuant: return "fake_quant";
    case OpTag::kReshape: return "reshape";
    case OpTag::kConcat: return "concat";
    case OpTag::kSliceCols: return "slice_cols";
    case OpTag::kSelectTime: return "select_time";
    case OpTag::kMulChannel: return "mul_channel";
    case OpTag::kAddChannel: return "add_channel";
    case OpTag::kMulChannelRep: return "mul_channel_rep";
    case OpTag::kAddChannelRep: return "add_channel_rep";
    case OpTag::kApplyMask: return "apply_mask";
    case OpTag::kGroupNorm: return "group_norm";
    case OpTag::kBatchNormEval: return "batch_norm_eval";
    case OpTag::kMaxPool2d: return "max_pool2d";
    case OpTag::kMaxPool1d: return "max_pool1d";
    case OpTag::kAvgPool2d: return "avg_pool2d";
    case OpTag::kGap2d: return "gap2d";
    case OpTag::kGap1d: return "gap1d";
    case OpTag::kUpsample2x: return "upsample2x";
    case OpTag::kLinear: return "linear";
    case OpTag::kConv2d: return "conv2d";
    case OpTag::kConv1d: return "conv1d";
    case OpTag::kReplicate: return "replicate";
    case OpTag::kAffine: return "affine";
    case OpTag::kBnAffine: return "bn_affine";
    case OpTag::kLstmGates: return "lstm_gates";
  }
  return "unknown";
}

const char* op_tag_group(OpTag tag) {
  switch (tag) {
    case OpTag::kLinear:
    case OpTag::kConv2d:
    case OpTag::kConv1d:
    case OpTag::kLstmGates:
      return "gemm";
    case OpTag::kAffine:
    case OpTag::kBnAffine:
      return "epilogue";
    default:
      return "other";
  }
}

void set_plan_profiling(bool on) {
  g_plan_profiling.store(on, std::memory_order_relaxed);
}

bool plan_profiling_enabled() {
  return g_plan_profiling.load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------

const Tensor& PlanContext::output() const {
  RIPPLE_CHECK(plan_ != nullptr) << "PlanContext not built by a plan";
  return values_[plan_->output_buffer_];
}

std::unique_ptr<PlanContext> ExecutionPlan::make_context() const {
  auto ctx = std::make_unique<PlanContext>();
  ctx->plan_ = this;
  ctx->slots_.reserve(slot_numel_.size());
  for (const int64_t ne : slot_numel_) {
    ctx->slots_.push_back(Tensor::empty({ne}));
  }
  ctx->values_.resize(buffers_.size());
  for (size_t i = 0; i < buffers_.size(); ++i) {
    if (buffers_[i].slot >= 0) {
      ctx->values_[i] = ctx->slots_[buffers_[i].slot].reshaped(buffers_[i].shape);
    }
  }
  if (conv_ws_cols_ > 0) {
    ctx->conv_ws_.cols = Tensor::empty({conv_ws_cols_});
    ctx->conv_ws_.stage = Tensor::empty({conv_ws_stage_});
  }
  return ctx;
}

const Tensor& ExecutionPlan::execute(const Tensor& x, PlanContext& ctx) const {
  RIPPLE_CHECK(ctx.plan_ == this) << "PlanContext belongs to another plan";
  Tensor& xin = ctx.values_[input_buffer_];
  RIPPLE_CHECK(x.numel() == xin.numel())
      << "plan input " << shape_to_string(x.shape()) << " vs compiled "
      << shape_to_string(input_shape_);
  std::memcpy(xin.data(), x.data(),
              sizeof(float) * static_cast<size_t>(x.numel()));
  const Tensor* ins[4] = {nullptr, nullptr, nullptr, nullptr};
  const bool prof = profile_ != nullptr && plan_profiling_enabled();
  for (size_t si = 0; si < steps_.size(); ++si) {
    const PlanStep& st = steps_[si];
    std::chrono::steady_clock::time_point step_start;
    if (prof) step_start = std::chrono::steady_clock::now();
    const int n = static_cast<int>(st.args.size());
    for (int i = 0; i < n; ++i) {
      const int a = st.args[i];
      ins[i] = a >= 0 ? &ctx.values_[a] : &constants_[-1 - a];
    }
    Tensor& out = ctx.values_[st.out];
    switch (st.tag) {
      case OpTag::kLinear: {
        const float* bias = st.b.defined() ? st.b.data() : nullptr;
        if (st.ep_gamma.defined()) {
          // Offer the backend the whole fused step (GEMM + per-replica
          // affine) — the int8 substrate folds γ/β into its requantize
          // epilogue. A claim must be bit-exact vs the unfused sequence;
          // the session's plan-verification gate enforces that before any
          // plan serves traffic.
          if (ExecutionBackend* be = active_exec_backend(); be != nullptr) {
            ExecutionBackend::LinearEpilogue lep;
            lep.bias = bias;
            lep.gamma = &st.ep_gamma;
            lep.beta = &st.ep_beta;
            if (be->linear_ex(*ins[0], st.w, lep, out)) break;
          }
          autograd::linear_forward_into(*ins[0], st.w, bias, out);
          affine_into(out, st.ep_gamma, st.ep_beta, out);
          break;
        }
        autograd::linear_forward_into(*ins[0], st.w, bias, out);
        break;
      }
      case OpTag::kConv2d:
        autograd::conv2d_forward_into(*ins[0], st.w,
                                      st.b.defined() ? st.b.data() : nullptr,
                                      st.i0, st.i1, ctx.conv_ws_, out);
        if (st.ep_gamma.defined()) {
          affine_into(out, st.ep_gamma, st.ep_beta, out);
        }
        break;
      case OpTag::kConv1d:
        autograd::conv1d_forward_into(*ins[0], st.w,
                                      st.b.defined() ? st.b.data() : nullptr,
                                      st.i0, st.i1, ctx.conv_ws_, out);
        if (st.ep_gamma.defined()) {
          affine_into(out, st.ep_gamma, st.ep_beta, out);
        }
        break;
      case OpTag::kAffine:
        affine_into(*ins[0], st.w, st.b, out);
        break;
      case OpTag::kBnAffine:
        bn_affine_into(*ins[0], st.w, st.b, st.g2, st.b2, out);
        break;
      case OpTag::kLstmGates:
        lstm_gates_into(*ins[0], *ins[1], *ins[2], st.i0, out,
                        ctx.values_[st.out2]);
        break;
      case OpTag::kReplicate:
        replicate_into(*ins[0], out);
        break;
      default:
        st.fn(ins, n, out);
        break;
    }
    if (prof) {
      const auto step_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                               std::chrono::steady_clock::now() - step_start)
                               .count();
      profile_[si].ns.fetch_add(static_cast<uint64_t>(step_ns),
                                std::memory_order_relaxed);
      profile_[si].calls.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return ctx.values_[output_buffer_];
}

std::vector<PlanOpProfile> ExecutionPlan::op_profile() const {
  std::vector<PlanOpProfile> out(steps_.size());
  for (size_t i = 0; i < steps_.size(); ++i) {
    out[i].step = static_cast<int>(i);
    out[i].tag = steps_[i].tag;
    out[i].name = op_tag_name(steps_[i].tag);
    if (profile_ != nullptr) {
      out[i].calls = profile_[i].calls.load(std::memory_order_relaxed);
      out[i].total_ns = profile_[i].ns.load(std::memory_order_relaxed);
    }
  }
  return out;
}

void ExecutionPlan::reset_profile() const {
  if (profile_ == nullptr) return;
  for (size_t i = 0; i < steps_.size(); ++i) {
    profile_[i].ns.store(0, std::memory_order_relaxed);
    profile_[i].calls.store(0, std::memory_order_relaxed);
  }
}

std::unique_ptr<ExecutionPlan> compile_trace(std::vector<TraceStep> steps,
                                             const Tensor& stacked_input,
                                             int64_t replicas,
                                             std::string* error) {
  PlanBuilder b;
  b.t = replicas < 1 ? 1 : replicas;
  b.stats.traced_ops = static_cast<int>(steps.size());
  bool ok = b.build_steps(steps, stacked_input);
  if (ok) {
    b.mark_replication();
    b.fuse_lstm();
    b.fuse_bn_affine();
    b.fuse_affine_pairs();
    b.fold_epilogues();
    ok = b.emit();
  }
  if (!ok) {
    if (error != nullptr) {
      *error = b.err.empty() ? "plan compilation failed" : b.err;
    }
    return nullptr;
  }
  auto plan = std::unique_ptr<ExecutionPlan>(new ExecutionPlan());
  plan->constants_ = std::move(b.consts);
  plan->buffers_.resize(b.bufs.size());
  for (size_t i = 0; i < b.bufs.size(); ++i) {
    plan->buffers_[i].shape = std::move(b.fshape[i]);
    plan->buffers_[i].slot = b.slot_of[i];
  }
  plan->slot_numel_ = std::move(b.slot_numel);
  plan->steps_ = std::move(b.psteps);
  plan->profile_.reset(new ExecutionPlan::StepProfile[plan->steps_.size()]());
  plan->input_buffer_ = 0;
  plan->output_buffer_ = b.out_buf;
  plan->replicas_ = b.t;
  plan->conv_ws_cols_ = b.max_cols;
  plan->conv_ws_stage_ = b.max_stage;
  plan->input_shape_ = plan->buffers_[0].shape;
  plan->output_shape_ = plan->buffers_[b.out_buf].shape;
  b.stats.steps = static_cast<int>(plan->steps_.size());
  b.stats.constants = static_cast<int>(plan->constants_.size());
  b.stats.buffers = static_cast<int>(plan->buffers_.size());
  b.stats.arena_slots = static_cast<int>(plan->slot_numel_.size());
  int64_t bytes = 0;
  for (const int64_t ne : plan->slot_numel_) bytes += ne;
  b.stats.arena_bytes = bytes * static_cast<int64_t>(sizeof(float));
  plan->stats_ = b.stats;
  return plan;
}

}  // namespace ripple::deploy
