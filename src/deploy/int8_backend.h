// Int8Backend — the kQuantInt8 execution substrate.
//
// Where kQuantSim *decodes* the artifact's frozen integer codes back to
// fp32 and serves them through the float GEMM, Int8Backend keeps them as
// int8 (quant/int8/int8_tensor.h) and executes linear layers and im2col
// convolutions through the u8×s8 dot-product kernels
// (quant/int8/int8_gemm.h): activations are dynamically quantized to 7-bit
// u8 — per row for linears, per im2col column for convs — multiplied with
// exact int32 accumulation, and requantized to fp32 in an epilogue that
// folds bias and (on the compiled-plan path) the per-replica stochastic
// affine.
//
// Construction takes the artifact's QuantRecords zipped with the model's
// fault targets: every quantized target with bits ≤ 8 is packed directly
// from its codes — no fp32 round-trip — and keyed by the parameter's data
// pointer (deployed models clear weight transforms, so that exact pointer
// reaches linear()/conv_cols()). Unquantized targets, widths over 8 bits,
// and unknown pointers decline to the digital fp32 kernels — which serve
// the same values kQuantSim would, since deployed weights equal their
// decoded codes bit-for-bit.
//
// Lifecycle (the ExecutionBackend contract): the frozen per-tensor
// scale/width metadata is immutable for the backend's lifetime, while
// invalidate() — fault injection mutated weights in place — drops only the
// packed codes; the next single-threaded warm-up re-encodes each mutated
// weight against its frozen calibration (exact for every bit-flipped
// code), and freeze() seals the map for lock-free concurrent serving.
#pragma once

#include <atomic>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "deploy/artifact.h"
#include "deploy/exec_backend.h"
#include "fault/injector.h"
#include "quant/int8/int8_tensor.h"

namespace ripple::deploy {

class Int8Backend : public ExecutionBackend {
 public:
  /// `quant` and `targets` are parallel arrays in fault_targets() order
  /// (the artifact contract).
  Int8Backend(const std::vector<QuantRecord>& quant,
              const std::vector<fault::FaultTarget>& targets);

  const char* name() const override { return "quant-int8"; }

  bool linear(const Tensor& x, const Tensor& w, const float* bias,
              Tensor& out) override;
  bool linear_ex(const Tensor& x, const Tensor& w, const LinearEpilogue& ep,
                 Tensor& out) override;
  bool conv_cols(int64_t cout, int64_t l, int64_t ck, const float* w,
                 const float* cols, float* stage,
                 const float* row_bias) override;

  void freeze() override { frozen_.store(true, std::memory_order_release); }
  void invalidate() override;

  /// Introspection (tests): number of weights currently packed as int8 /
  /// total int8-servable targets.
  int64_t packed_tensors() const {
    return static_cast<int64_t>(packed_.size());
  }
  int64_t servable_tensors() const {
    return static_cast<int64_t>(meta_.size());
  }
  /// Acquire-load paired with freeze()'s release store: a true return
  /// makes every packed_ insertion visible and the map read-only.
  bool frozen() const { return frozen_.load(std::memory_order_acquire); }

  /// Dense ops actually claimed by the integer kernels since construction
  /// (not declined to the fp32 path) — lets tests and probes verify the
  /// substrate is serving, not silently falling back.
  int64_t linear_claims() const {
    return linear_claims_.load(std::memory_order_relaxed);
  }
  int64_t conv_claims() const {
    return conv_claims_.load(std::memory_order_relaxed);
  }

 private:
  /// Frozen identity of one servable weight — survives invalidate().
  struct Meta {
    float calibration = 0.0f;
    int32_t bits = 0;
    int64_t rows = 0;
    int64_t k = 0;
    bool conv = false;
  };

  /// Packed form of `w`, rebuilding from the (possibly mutated) fp32
  /// values if invalidate() dropped it. Null when `w` is not servable, has
  /// mismatched dims, or is unseen after freeze().
  const quant::int8::Int8Tensor* packed_for(const float* w, int64_t rows,
                                            int64_t k, bool conv);

  std::unordered_map<const float*, Meta> meta_;
  std::unordered_map<const float*, quant::int8::Int8Tensor> packed_;
  std::atomic<bool> frozen_{false};
  std::atomic<int64_t> linear_claims_{0};
  std::atomic<int64_t> conv_claims_{0};
};

}  // namespace ripple::deploy
