// The single-file deployment artifact (.rpla).
//
// The training pipeline ends in a *deployed* model: quantizer scales
// frozen, latent weights replaced by their hardware values. Everything a
// server needs to reconstruct that state — and nothing it doesn't — goes
// into one file:
//
//   "RPLA" magic + format version
//   architecture/variant descriptor   (ModelSpec: arch, topology dims,
//                                      VariantConfig)
//   default SessionOptions            (task kind, T, seed, batching knobs)
//   named parameter & buffer tensors  (deployed fp32 values)
//   frozen quantizer state            (per fault target: calibration
//                                      scalar, bit width, integer codes)
//
// load_artifact() rebuilds the network object from the descriptor, loads
// the tensors, and restores the deployed state — no in-process training,
// no re-calibration. The integer codes let the kQuantSim backend serve the
// hardware representation (decode through the bit codec) and give fault
// injectors the exact deployed codes to flip. serve::InferenceSession::open
// (deploy/deploy.h) is the one-call path from file to serving session.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "models/task_model.h"
#include "serve/session.h"

namespace ripple::deploy {

/// Version 2 bit-packs the quantizer integer codes (version 1 spent an
/// int32 per code — 32× the bits a binary weight needs) and carries the
/// batch_adaptive_delay serving knob. Version 3 turns the file into a
/// *multi-model manifest* — named entries, each a complete
/// spec+tensors+calibration block with a routing weight, so one file ships
/// an ensemble or an A/B pair (serve::ModelServer routes between entries
/// by weight) — and adds optional zlib-free delta/RLE compression of the
/// bit-packed code words. Readers accept every version back to
/// kMinArtifactVersion.
inline constexpr uint32_t kArtifactVersion = 3;
inline constexpr uint32_t kMinArtifactVersion = 1;
inline constexpr const char* kArtifactExtension = ".rpla";

/// Architecture + variant descriptor: everything needed to rebuild the
/// network object the artifact's tensors load into.
struct ModelSpec {
  std::string arch;  // TaskModel::name(): "resnet" | "m5" | "lstm" | "unet"
  /// Topology fields by name (e.g. {"width", 12}), in a fixed per-arch
  /// order.
  std::vector<std::pair<std::string, int64_t>> dims;
  models::VariantConfig variant;
};

/// Extracts the descriptor of a live model.
ModelSpec spec_of(const models::TaskModel& model);

/// Constructs an untrained model matching `spec`. Throws on unknown arch
/// or missing topology fields.
std::unique_ptr<models::TaskModel> build_model(const ModelSpec& spec);

/// Serving defaults appropriate for a model's task (classification for
/// the classifiers, regression for the forecaster, segmentation for the
/// U-Net) — what save_artifact embeds when the caller has no opinion.
serve::SessionOptions default_session_options(const models::TaskModel& model);

/// Frozen deployment state of one fault target (fault_targets() order).
struct QuantRecord {
  bool quantized = false;
  float calibration = 0.0f;  // α (binary) / scale (k-bit)
  int32_t bits = 0;
  std::vector<int32_t> codes;  // deployed integer codes of the weight
};

struct LoadedArtifact {
  ModelSpec spec;
  std::unique_ptr<models::TaskModel> model;  // deployed, eval mode
  serve::SessionOptions session_defaults;
  std::vector<QuantRecord> quant;  // fault_targets() order
  /// Manifest identity (format version >= 3). Empty name / weight 1.0 for
  /// single-model v1/v2 files.
  std::string entry_name;
  double route_weight = 1.0;
};

/// Serializes a deployed model into one .rpla file. `session_defaults`
/// rides along as the artifact's serving configuration; pass
/// default_session_options(model) when in doubt. Throws std::runtime_error
/// on I/O failure; RIPPLE_CHECKs that the model is deployed. `version`
/// selects the on-disk format (kMinArtifactVersion..kArtifactVersion) —
/// the escape hatch for producing files older readers accept, and the
/// backward-compat tests' fixture writer.
void save_artifact(models::TaskModel& model, const std::string& path,
                   const serve::SessionOptions& session_defaults,
                   uint32_t version = kArtifactVersion);

/// Reads a .rpla file back into a freshly built, deployed, eval-mode
/// model. Throws std::runtime_error on missing files, corrupt or truncated
/// content, and format-version mismatch. For v3 manifests `entry` selects
/// the named entry (empty = the first entry); requesting a named entry
/// from a v1/v2 file — or a name the manifest lacks — throws.
LoadedArtifact load_artifact(const std::string& path,
                             const std::string& entry = {});

/// One model of a multi-model manifest, by reference: save_manifest()
/// serializes each named entry as a complete spec+tensors+calibration
/// block with a routing weight (serve::ModelServer picks entries in
/// proportion to weight — an A/B pair or a shared-file ensemble).
struct ManifestModel {
  std::string name;
  double weight = 1.0;
  models::TaskModel* model = nullptr;  // deployed; not owned
  serve::SessionOptions session_defaults;
};

/// Writes a format-v3 multi-model manifest. Names must be non-empty and
/// unique, weights positive, every model deployed.
void save_manifest(const std::vector<ManifestModel>& entries,
                   const std::string& path);

/// Per-quantized-tensor summary skimmed from an entry's frozen-quantizer
/// block: the quantizer bit width, code count, and how the codes are
/// stored on disk — what lets an operator tell an int8-servable artifact
/// (integer codes present) apart from a float-only one, and see which
/// records the v3 writer actually compressed.
struct QuantTensorInfo {
  int32_t bits = 0;    // quantizer width (1 = binary)
  uint64_t codes = 0;  // weights in the tensor
  /// On-disk encoding: "int32" (v1), "raw" (bit-packed words), "rle" or
  /// "delta+rle" (v3 compressed streams).
  std::string encoding;
  uint64_t packed_bytes = 0;  // bit-packed payload before compression
  uint64_t stored_bytes = 0;  // bytes on disk, including tag/length framing
};

/// Cheap manifest listing: entry names, routing weights, and each entry's
/// quantizer summary, without materializing any tensor data (tensor
/// payloads are skipped by their recorded sizes). v1/v2 files report one
/// entry named after the architecture with weight 1.0.
struct ManifestEntryInfo {
  std::string name;
  double weight = 1.0;
  std::vector<QuantTensorInfo> quant;  // quantized fault targets, in order
};
struct ManifestInfo {
  uint32_t version = 0;
  std::vector<ManifestEntryInfo> entries;
};
ManifestInfo inspect_artifact(const std::string& path);

/// Restores an artifact into an existing undeployed model (whose spec must
/// match the file's). Returns false when the file does not exist; throws
/// on mismatch or corruption. The train-or-load cache path (models/zoo.h).
bool load_artifact_into(models::TaskModel& model, const std::string& path);

/// Deep-copies a loaded artifact: builds a second deployed, eval-mode
/// model from the same descriptor and copies the tensors and frozen
/// quantizer state across. The copy shares no mutable state with `art` —
/// this is the multi-session path: one disk read serves a whole replica
/// fleet (serve/cluster.h), each copy opened with its own seed/fault
/// configuration.
LoadedArtifact replicate(const LoadedArtifact& art);

/// kQuantSim materialization: overwrite every quantized fault-target
/// weight with quantizer->decode(codes) — the model then serves the
/// integer hardware representation routed through the existing bit codec
/// instead of the stored floats.
void decode_quantized_weights(models::TaskModel& model,
                              const std::vector<QuantRecord>& quant);

}  // namespace ripple::deploy
