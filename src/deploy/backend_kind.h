// Deployment execution substrates (ripple::deploy).
//
// One trained artifact (deploy/artifact.h) can be served on any of three
// substrates; the choice is a deploy-time switch, not a different model:
//   kFp32     — the digital fast path (packed SIMD GEMM), weights exactly
//               as deployed.
//   kQuantSim — weights reconstructed from the artifact's *integer codes*
//               through the quantizer bit codec; serves the int8/PACT/1-bit
//               hardware representation instead of the stored floats.
//   kCrossbar — dense (and optionally conv) layers execute on the analog
//               in-memory-compute crossbar simulator (imc/crossbar.h):
//               DAC → programmed conductance pairs → ADC, with the
//               crossbar's own non-idealities as fault-injection hooks.
#pragma once

namespace ripple::deploy {

enum class Backend { kFp32, kQuantSim, kCrossbar };

const char* backend_name(Backend b);

}  // namespace ripple::deploy
