// Deployment execution substrates (ripple::deploy).
//
// One trained artifact (deploy/artifact.h) can be served on any of three
// substrates; the choice is a deploy-time switch, not a different model:
//   kFp32     — the digital fast path (packed SIMD GEMM), weights exactly
//               as deployed.
//   kQuantSim — weights reconstructed from the artifact's *integer codes*
//               through the quantizer bit codec; serves the int8/PACT/1-bit
//               hardware representation instead of the stored floats.
//   kQuantInt8 — the codes stay integer end-to-end: weights pack into int8
//               panels straight from the artifact and dense/conv layers
//               execute through u8×s8 GEMM micro-kernels (AVX2 maddubs /
//               AVX-512 VNNI vpdpbusd, scalar under RIPPLE_SIMD=0) with
//               dynamic activation quantization and fp32 requantize
//               epilogues (deploy/int8_backend.h). Unquantized or >8-bit
//               layers fall back to the digital fp32 path per layer.
//   kCrossbar — dense (and optionally conv) layers execute on the analog
//               in-memory-compute crossbar simulator (imc/crossbar.h):
//               DAC → programmed conductance pairs → ADC, with the
//               crossbar's own non-idealities as fault-injection hooks.
#pragma once

namespace ripple::deploy {

enum class Backend { kFp32, kQuantSim, kCrossbar, kQuantInt8 };

const char* backend_name(Backend b);

}  // namespace ripple::deploy
