#include "deploy/crossbar_backend.h"

#include <algorithm>
#include <cstring>

#include "tensor/check.h"
#include "tensor/random.h"

namespace ripple::deploy {

size_t CrossbarBackend::KeyHash::operator()(const Key& key) const {
  uint64_t h = reinterpret_cast<uintptr_t>(key.w);
  h = splitmix64(h ^ static_cast<uint64_t>(key.m) * 0x9e3779b97f4a7c15ull);
  h = splitmix64(h ^ static_cast<uint64_t>(key.k));
  return static_cast<size_t>(h);
}

CrossbarBackend::CrossbarBackend(CrossbarBackendOptions options)
    : options_(options) {}

const imc::TiledArray* CrossbarBackend::array_for(const float* w, int64_t out,
                                                  int64_t in) const {
  auto it = map_.find(Key{w, out, in});
  return it == map_.end() ? nullptr : it->second.get();
}

int64_t CrossbarBackend::physical_tiles() const {
  int64_t tiles = 0;
  for (const auto& [key, array] : map_) tiles += array->plan().tile_count();
  return tiles;
}

imc::TileCost CrossbarBackend::total_cost() const {
  imc::TileCost total;
  for (const auto& [key, array] : map_) {
    const imc::TileCost c = array->cost();
    total.tiles += c.tiles;
    total.cell_pairs += c.cell_pairs;
    total.adcs += c.adcs;
    total.conversions_per_mvm =
        std::max(total.conversions_per_mvm, c.conversions_per_mvm);
    total.row_blocks = std::max(total.row_blocks, c.row_blocks);
  }
  return total;
}

double CrossbarBackend::modeled_analog_us_per_row() const {
  // frozen() is an acquire load paired with freeze()'s release store, so a
  // true here makes every map_ insertion visible and the map read-only.
  if (!frozen() || options_.adc_cycle_ns <= 0.0) return 0.0;
  int64_t conversions = 0;
  for (const auto& [key, array] : map_)
    conversions += array->cost().conversions_per_mvm;
  return static_cast<double>(conversions) * options_.adc_cycle_ns * 1e-3;
}

const imc::TiledArray* CrossbarBackend::array(const float* w, int64_t m,
                                              int64_t k) {
  const Key key{w, m, k};
  auto it = map_.find(key);
  if (it != map_.end()) return it->second.get();
  // Unseen weight after freeze(): decline so the caller's digital path
  // serves it deterministically. (Reaching this means weights were swapped
  // without invalidate() — the same contract PackedACache documents.)
  if (frozen()) return nullptr;

  imc::TiledArrayConfig cfg;
  cfg.device = options_.device;
  cfg.geometry = options_.geometry;
  cfg.slice_bits = options_.slice_bits;
  cfg.adc_share = options_.adc_share;
  auto ta = std::make_unique<imc::TiledArray>(m, k, cfg);
  // One deterministic sub-stream per array, in programming order (the
  // warm-up forward's layer order, which is fixed for a given model);
  // TiledArray derives the per-tile streams from it.
  Rng rng = Rng(options_.seed).fork(next_stream_++);
  Tensor w2 = Tensor::empty({m, k});
  std::memcpy(w2.data(), w, sizeof(float) * static_cast<size_t>(m * k));
  ta->program(w2, rng);
  if (options_.conductance_sigma_mult > 0.0 ||
      options_.conductance_sigma_add > 0.0) {
    ta->apply_conductance_variation(options_.conductance_sigma_mult,
                                    options_.conductance_sigma_add, rng);
  }
  if (options_.stuck_fraction > 0.0)
    ta->apply_stuck_cells(options_.stuck_fraction, rng);
  const imc::TiledArray* out = ta.get();
  map_.emplace(key, std::move(ta));
  return out;
}

bool CrossbarBackend::linear(const Tensor& x, const Tensor& w,
                             const float* bias, Tensor& out) {
  const int64_t n = x.dim(0);
  const int64_t fin = x.dim(1);
  const int64_t fout = w.dim(0);
  const imc::TiledArray* ta = array(w.data(), fout, fin);
  if (ta == nullptr) return false;
  Tensor y = ta->matvec(x);  // [N, Fout], analog signal chain
  float* po = out.data();
  const float* py = y.data();
  if (bias == nullptr) {
    std::memcpy(po, py, sizeof(float) * static_cast<size_t>(n * fout));
  } else {
    // Digital bias addition, post-ADC (imc/crossbar_linear.h semantics).
    for (int64_t i = 0; i < n; ++i)
      for (int64_t j = 0; j < fout; ++j)
        po[i * fout + j] = py[i * fout + j] + bias[j];
  }
  return true;
}

bool CrossbarBackend::conv_cols(int64_t cout, int64_t l, int64_t ck,
                                const float* w, const float* cols,
                                float* stage, const float* row_bias) {
  if (!options_.map_convs) return false;
  const imc::TiledArray* ta = array(w, cout, ck);
  if (ta == nullptr) return false;
  // The crossbar computes batched x·Wᵀ; the conv block wants
  // W·cols = (colsᵀ·Wᵀ)ᵀ, so transpose the patch matrix through the array.
  Tensor xt = Tensor::empty({l, ck});
  float* pxt = xt.data();
  for (int64_t r = 0; r < ck; ++r)
    for (int64_t c = 0; c < l; ++c) pxt[c * ck + r] = cols[r * l + c];
  Tensor y = ta->matvec(xt);  // [L, Cout]
  const float* py = y.data();
  for (int64_t c = 0; c < cout; ++c) {
    const float b = row_bias != nullptr ? row_bias[c] : 0.0f;
    for (int64_t j = 0; j < l; ++j) stage[c * l + j] = py[j * cout + c] + b;
  }
  return true;
}

void CrossbarBackend::freeze() {
  frozen_.store(true, std::memory_order_release);
}

void CrossbarBackend::invalidate() {
  frozen_.store(false, std::memory_order_release);
  map_.clear();
  // Restart the sub-stream sequence: a re-programmed chip draws the same
  // programming noise per layer (common random numbers across instances).
  next_stream_ = 0;
}

}  // namespace ripple::deploy
