// serve::InferenceSession::open — file → serving session, one call.
// Lives in deploy/ so the serve layer itself stays independent of the
// artifact reader and the concrete backends.
#include "deploy/deploy.h"

namespace ripple::serve {

std::unique_ptr<InferenceSession> InferenceSession::open(
    const std::string& path, const deploy::DeployOptions& options) {
  return open(deploy::load_artifact(path, options.manifest_entry), options);
}

std::unique_ptr<InferenceSession> InferenceSession::open(
    deploy::LoadedArtifact art, const deploy::DeployOptions& options) {
  const SessionOptions session_options =
      options.session.has_value() ? *options.session : art.session_defaults;

  std::unique_ptr<deploy::ExecutionBackend> backend;
  switch (options.backend) {
    case deploy::Backend::kFp32:
      break;  // stored fp32 values through the digital fast path
    case deploy::Backend::kQuantSim:
      // Serve the hardware representation: weights come from the frozen
      // integer codes through the quantizer bit codec.
      deploy::decode_quantized_weights(*art.model, art.quant);
      break;
    case deploy::Backend::kCrossbar:
      backend = std::make_unique<deploy::CrossbarBackend>(options.crossbar);
      break;
    case deploy::Backend::kQuantInt8:
      // Pack the frozen integer codes into int8 panels directly — no fp32
      // round-trip. Targets must be read before art.model moves below.
      backend = std::make_unique<deploy::Int8Backend>(
          art.quant, art.model->fault_targets());
      break;
  }
  return std::make_unique<InferenceSession>(std::move(art.model),
                                            session_options,
                                            std::move(backend),
                                            options.backend);
}

std::unique_ptr<InferenceSession> InferenceSession::open(
    const std::string& path) {
  return open(path, deploy::DeployOptions{});
}

}  // namespace ripple::serve

namespace ripple::deploy {

serve::PlanInfo compile(const serve::InferenceSession& session,
                        const Shape& input_shape) {
  return session.precompile(input_shape);
}

}  // namespace ripple::deploy
