// Forward-trace recording for `deploy::compile`.
//
// A TraceRecorder is installed thread-locally (TraceScope) around one graph
// forward run inside the exact serving environment (stream context, pack
// cache, execution backend). Every autograd op appends one TraceStep on its
// way out: the op tag, the input/output tensor *handles* (retained, so
// data-pointer identity stays unambiguous for the whole trace), structured
// attributes for the GEMM-backed ops, and — for everything else — a
// shape-driven executor closure that reproduces the op's forward arithmetic
// exactly. deploy::compile_trace (plan.h) turns the step list into a static
// ExecutionPlan.
//
// Hooks are a single thread-local null check when no recorder is active;
// the serving fast path never pays for them.
#pragma once

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "tensor/tensor.h"

namespace ripple::deploy {

enum class OpTag {
  kNone,
  // Elementwise / shape ops carried by executor closures.
  kAdd,
  kSub,
  kMul,
  kMulScalar,
  kAddScalar,
  kRelu,
  kSigmoid,
  kTanh,
  kSign,
  kPact,
  kFakeQuant,
  kReshape,
  kConcat,
  kSliceCols,
  kSelectTime,
  kMulChannel,
  kAddChannel,
  kMulChannelRep,
  kAddChannelRep,
  kApplyMask,
  kGroupNorm,
  kBatchNormEval,
  kMaxPool2d,
  kMaxPool1d,
  kAvgPool2d,
  kGap2d,
  kGap1d,
  kUpsample2x,
  // Structured GEMM-backed ops (weights carried as tensor attributes).
  kLinear,
  kConv2d,
  kConv1d,
  // Fusion-synthesized tags (never recorded, only emitted by the compiler).
  kReplicate,   // uniform [n,...] -> stacked [t·n,...] block copy
  kAffine,      // per-replica channel affine: out = x·γ[r] + β[r]
  kBnAffine,    // ((x − μ)·s)·γ + β, all per-channel constants
  kLstmGates,   // fused LSTM gate block over two gate GEMM halves
};

/// Executor signature shared by trace closures and plan steps. `ins` are
/// borrowed tensors in operand order; `out` is pre-shaped and fully
/// overwritten. Closures read every dimension from the tensors themselves
/// (never capture batch sizes), so the same closure runs at reduced
/// uniform-row shapes after the lazy-replication transform.
using StepFn =
    std::function<void(const Tensor* const* ins, int n_ins, Tensor& out)>;

struct TraceStep {
  OpTag tag = OpTag::kNone;
  std::vector<Tensor> inputs;  // retained handles (pointer identity)
  Tensor output;
  StepFn fn;          // closure executor (empty for structured ops)
  Tensor w, b;        // kLinear/kConv*: weight + optional bias;
                      // kBatchNormEval: running mean + precomputed scale
  int64_t i0 = 0;     // conv stride / slice begin / pool kernel
  int64_t i1 = 0;     // conv pad / slice end / pool stride
};

class TraceRecorder {
 public:
  void record(TraceStep step) {
    if (!aborted_) steps_.push_back(std::move(step));
  }
  /// Mark the trace unusable (op with no stable compiled form, e.g. a
  /// training-mode batch norm). compile falls back to the graph path.
  void abort(std::string reason) {
    if (!aborted_) {
      aborted_ = true;
      reason_ = std::move(reason);
    }
  }
  /// The stacked forward input (set by the session before the model runs);
  /// the compiler maps it to the plan's input buffer.
  void set_input(const Tensor& stacked) { input_ = stacked; }

  bool aborted() const { return aborted_; }
  const std::string& abort_reason() const { return reason_; }
  const Tensor& input() const { return input_; }
  std::vector<TraceStep>& steps() { return steps_; }

 private:
  std::vector<TraceStep> steps_;
  Tensor input_;
  bool aborted_ = false;
  std::string reason_;
};

/// The recorder the current thread's forward pass feeds, or nullptr.
TraceRecorder* active_trace();

/// RAII installer; nesting is not supported (inner scope aborts the outer
/// recorder — compile never nests in practice).
class TraceScope {
 public:
  explicit TraceScope(TraceRecorder& recorder);
  ~TraceScope();
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  TraceRecorder* prev_;
};

}  // namespace ripple::deploy
