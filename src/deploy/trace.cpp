#include "deploy/trace.h"

namespace ripple::deploy {

namespace {
thread_local TraceRecorder* g_active_trace = nullptr;
}  // namespace

TraceRecorder* active_trace() { return g_active_trace; }

TraceScope::TraceScope(TraceRecorder& recorder) : prev_(g_active_trace) {
  if (prev_ != nullptr) prev_->abort("nested trace scope");
  g_active_trace = &recorder;
}

TraceScope::~TraceScope() { g_active_trace = prev_; }

}  // namespace ripple::deploy
