// ExecutionBackend that runs dense layers on the analog IMC crossbar.
//
// Every distinct weight matrix a forward pass routes through linear()/
// conv_cols() is *compiled* onto a grid of fixed-geometry physical crossbar
// tiles (imc/tiling.h) and executed by an imc::TiledArray: row-blocked over
// the input fan-in with fixed-point partial-sum accumulation, column-blocked
// over the outputs (bit-sliced when slice_bits is set), and digitized
// through time-multiplexed ADCs shared by adc_share columns. With an
// unbounded TileGeometry the plan degenerates to the legacy one macro per
// weight matrix, bit for bit. Arrays are programmed once, during the owning
// session's single-threaded warm-up pass, and the map then freezes — the
// crossbar analogue of the frozen PackedACache, so kCrossbar sessions stop
// re-programming (re-"packing") weights per call.
//
// Determinism: layer i (in first-forward programming order, which is fixed
// for a given model) programs with the sub-stream Rng(seed).fork(i); each
// *tile* of that layer derives its own sub-stream from it (TiledArray), and
// the configured post-programming non-idealities (conductance variation,
// stuck cells — the backend's fault-injection hooks) draw per tile the same
// way. invalidate() resets the sub-stream counter with the map, so a
// re-programmed chip (fault injection mutated the weights in place) sees
// the same programming noise on the new weights — common random numbers
// across chip instances, matching fault/evaluation.h's contract.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "deploy/exec_backend.h"
#include "imc/tiled_array.h"

namespace ripple::deploy {

struct CrossbarBackendOptions {
  /// Device parameters shared by every physical tile; the geometry
  /// (rows/cols) is overridden per tile by the plan.
  imc::CrossbarConfig device;
  /// Physical tile geometry every weight matrix is compiled onto.
  /// imc::TileGeometry::unbounded() reproduces the legacy monolithic
  /// one-macro-per-matrix mapping bit-exactly.
  imc::TileGeometry geometry{64, 64};
  /// 0 = analog cells; 2..16 = bit-sliced columns of that width
  /// (imc/tiled_array.h).
  int slice_bits = 0;
  /// Physical columns per time-multiplexed ADC (1 = dedicated, legacy
  /// transfer).
  int adc_share = 1;
  /// Modeled time per ADC conversion (ns) for the latency model — the
  /// serial bottleneck of an MVM is conversions_per_mvm × adc_cycle_ns on
  /// each array. 100ns ≈ a 10MS/s SAR ADC. Feeds
  /// modeled_analog_us_per_row(); 0 disables the model.
  double adc_cycle_ns = 100.0;
  /// Base seed of the per-layer programming streams.
  uint64_t seed = 0x5eedcba5ull;
  /// Post-programming conductance variation applied to every array
  /// (imc::TiledArray::apply_conductance_variation, per-tile streams).
  double conductance_sigma_mult = 0.0;
  double conductance_sigma_add = 0.0;
  /// Fraction of cells stuck at g_on/g_off
  /// (imc::TiledArray::apply_stuck_cells).
  double stuck_fraction = 0.0;
  /// Also map the im2col-lowered convolutions onto crossbars. Off by
  /// default: the deployment the paper studies keeps convs digital and
  /// maps the dense layers; turning this on runs every conv patch column
  /// through the analog signal chain (slow, but exercises the full path).
  bool map_convs = false;
};

class CrossbarBackend final : public ExecutionBackend {
 public:
  explicit CrossbarBackend(CrossbarBackendOptions options);

  const char* name() const override { return "crossbar"; }

  bool linear(const Tensor& x, const Tensor& w, const float* bias,
              Tensor& out) override;
  bool conv_cols(int64_t cout, int64_t l, int64_t ck, const float* w,
                 const float* cols, float* stage,
                 const float* row_bias) override;

  void freeze() override;
  void invalidate() override;

  /// Σ_layers conversions_per_mvm × adc_cycle_ns, in µs: every compiled
  /// array runs once per input row, so the modeled analog serving time of
  /// a row is the sum — not the max — of per-array conversion times.
  /// Returns 0 until frozen (the compiled set, and hence the sum, is only
  /// complete after warm-up).
  double modeled_analog_us_per_row() const override;

  const CrossbarBackendOptions& options() const { return options_; }
  bool frozen() const { return frozen_.load(std::memory_order_acquire); }
  /// Compiled weight matrices so far — tests assert this stays flat across
  /// serving calls (no per-call re-programming).
  size_t arrays() const { return map_.size(); }
  /// Physical tiles across every compiled array.
  int64_t physical_tiles() const;
  /// Summed hardware budget (tiles, cells, ADCs; conversions_per_mvm and
  /// row_blocks report the worst array) of everything compiled so far.
  imc::TileCost total_cost() const;
  /// The array serving weight matrix (`w`, out×in) or nullptr.
  const imc::TiledArray* array_for(const float* w, int64_t out,
                                   int64_t in) const;

 private:
  struct Key {
    const float* w;
    int64_t m;
    int64_t k;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    size_t operator()(const Key& key) const;
  };

  /// Looks up (frozen) or compiles+programs (recording) the array for
  /// w[m,k]. Returns nullptr when frozen and unseen (caller falls back
  /// digital).
  const imc::TiledArray* array(const float* w, int64_t m, int64_t k);

  CrossbarBackendOptions options_;
  std::atomic<bool> frozen_{false};
  uint64_t next_stream_ = 0;
  std::unordered_map<Key, std::unique_ptr<imc::TiledArray>, KeyHash> map_;
};

}  // namespace ripple::deploy
