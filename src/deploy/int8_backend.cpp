#include "deploy/int8_backend.h"

#include <algorithm>
#include <vector>

#include "quant/int8/int8_gemm.h"

namespace ripple::deploy {

using quant::int8::Int8Epilogue;
using quant::int8::Int8Tensor;
using quant::int8::RowsAre;

namespace {

// Below this inner depth the integer path loses to fp32: the dot products
// are too short to amortize dynamic quantization and the requantize
// epilogue (a k = 1 input projection runs ~3× slower through int8 than
// through the prepacked fp32 kernels; break-even is near k = 24, so 8
// only rejects clearly losing shapes while keeping narrow test models on
// the integer path). Declining leaves those layers on the digital path —
// claim decisions are pure shape functions, so plan verification and the
// quantsim agreement contract are unaffected.
constexpr int64_t kMinDepth = 8;

}  // namespace

Int8Backend::Int8Backend(const std::vector<QuantRecord>& quant,
                         const std::vector<fault::FaultTarget>& targets) {
  const size_t n = std::min(quant.size(), targets.size());
  for (size_t i = 0; i < n; ++i) {
    const QuantRecord& rec = quant[i];
    const fault::FaultTarget& tgt = targets[i];
    if (!rec.quantized || rec.bits < 1 || rec.bits > 8 ||
        tgt.param == nullptr)
      continue;
    const Tensor& v = tgt.param->var.value();
    if (v.rank() < 2) continue;
    const int64_t rows = v.dim(0);
    const int64_t k = v.numel() / rows;
    if (rows <= 0 || k <= 0 ||
        static_cast<int64_t>(rec.codes.size()) != rows * k)
      continue;
    const bool conv = v.rank() >= 3;
    const float* key = v.data();
    meta_.emplace(key, Meta{rec.calibration, rec.bits, rows, k, conv});
    packed_.emplace(key, Int8Tensor::from_codes(rec.codes, rec.bits,
                                                rec.calibration, rows, k,
                                                conv));
  }
}

void Int8Backend::invalidate() {
  packed_.clear();
  frozen_ = false;
}

const Int8Tensor* Int8Backend::packed_for(const float* w, int64_t rows,
                                          int64_t k, bool conv) {
  const auto mit = meta_.find(w);
  if (mit == meta_.end()) return nullptr;
  const Meta& meta = mit->second;
  if (meta.rows != rows || meta.k != k || meta.conv != conv) return nullptr;
  const auto pit = packed_.find(w);
  if (pit != packed_.end()) return &pit->second;
  // Unseen after freeze(): weights were swapped without invalidate() —
  // decline so the digital path serves them (the PackedACache contract).
  if (frozen()) return nullptr;
  // Warm-up rebuild after invalidate(): re-encode the mutated deployed
  // values against the frozen calibration. Single-threaded (the session
  // holds its cache lock exclusively during warm-up).
  const auto ins = packed_.emplace(
      w, Int8Tensor::from_fp32(w, rows, k, meta.calibration, meta.bits, conv));
  return &ins.first->second;
}

bool Int8Backend::linear(const Tensor& x, const Tensor& w, const float* bias,
                         Tensor& out) {
  LinearEpilogue ep;
  ep.bias = bias;
  return linear_ex(x, w, ep, out);
}

bool Int8Backend::linear_ex(const Tensor& x, const Tensor& w,
                            const LinearEpilogue& lep, Tensor& out) {
  if (x.rank() != 2 || w.rank() != 2) return false;
  const int64_t m = x.dim(0);
  const int64_t fin = x.dim(1);
  const int64_t fout = w.dim(0);
  if (m <= 0 || fin < kMinDepth || fout <= 0) return false;
  const Int8Tensor* t = packed_for(w.data(), fout, fin, /*conv=*/false);
  if (t == nullptr) return false;

  int64_t replicas = 1;
  const float* gamma = nullptr;
  const float* beta = nullptr;
  if (lep.gamma != nullptr) {
    if (lep.beta == nullptr || !lep.gamma->defined() ||
        !lep.beta->defined() || lep.gamma->rank() != 2 ||
        lep.gamma->dim(1) != fout ||
        lep.beta->numel() != lep.gamma->numel())
      return false;
    replicas = lep.gamma->dim(0);
    if (replicas <= 0 || m % replicas != 0) return false;
    gamma = lep.gamma->data();
    beta = lep.beta->data();
  }

  // Dynamic per-row activation quantization. Thread-locals keep the
  // serving steady state allocation-free once warm.
  thread_local std::vector<uint8_t> act;
  thread_local std::vector<float> act_scale;
  thread_local std::vector<int32_t> act_zp;
  act.resize(static_cast<size_t>(m * quant::int8::padded_k(fin)));
  act_scale.resize(static_cast<size_t>(m));
  act_zp.resize(static_cast<size_t>(m));
  quant::int8::quantize_rows_u8(x.data(), m, fin, act.data(),
                                act_scale.data(), act_zp.data());

  Int8Epilogue ep;
  ep.row_scale = act_scale.data();
  ep.row_zp = act_zp.data();
  ep.weight_scale = t->scale;
  ep.wsum = t->wsum.data();
  ep.col_bias = lep.bias;
  ep.relu = lep.relu;
  ep.gamma = gamma;
  ep.beta = beta;
  ep.replicas = replicas;
  quant::int8::int8_gemm(RowsAre::kU8, act.data(), m, fin, t->data.data(),
                         fout, ep, out.data(), fout);
  linear_claims_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool Int8Backend::conv_cols(int64_t cout, int64_t l, int64_t ck,
                            const float* w, const float* cols, float* stage,
                            const float* row_bias) {
  if (cout <= 0 || l <= 0 || ck < kMinDepth) return false;
  const Int8Tensor* t = packed_for(w, cout, ck, /*conv=*/true);
  if (t == nullptr) return false;

  // Quantize the im2col matrix per *column* (one output position's
  // receptive field), fused with packing into panel form. Per-column
  // affines are invariant to batch grouping and replica count, so
  // reduced-row plan traces and full-row graph passes agree bit-for-bit.
  thread_local quant::int8::PanelVecU8 panels;
  thread_local std::vector<float> col_scale;
  thread_local std::vector<int32_t> col_zp;
  panels.resize(static_cast<size_t>(quant::int8::packed_bytes(l, ck)));
  col_scale.resize(static_cast<size_t>(l));
  col_zp.resize(static_cast<size_t>(l));
  quant::int8::quantize_pack_cols_u8(cols, ck, l, panels.data(),
                                     col_scale.data(), col_zp.data());

  Int8Epilogue ep;
  ep.col_scale = col_scale.data();
  ep.col_zp = col_zp.data();
  ep.weight_scale = t->scale;
  ep.wsum = t->wsum.data();
  ep.row_bias = row_bias;
  quant::int8::int8_gemm(RowsAre::kS8, t->data.data(), cout, ck,
                         panels.data(), l, ep, stage, l);
  conv_claims_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

}  // namespace ripple::deploy
