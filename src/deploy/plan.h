// Static execution plans compiled from a recorded forward trace.
//
// `compile_trace` turns one traced graph forward (deploy/trace.h) into an
// ExecutionPlan: a topologically ordered step list over a pre-sized buffer
// arena. The compiler
//   * captures every tensor the trace consumed but no traced op produced as
//     a plan constant — under the session's deterministic mask/noise
//     streams the stochastic draws are pure functions of
//     (seed, slot, invocation, replica, chunk offset), so baking them is
//     exact, not approximate;
//   * folds steps whose inputs are all constants (e.g. the first-timestep
//     LSTM recurrent GEMM over the zero initial state);
//   * marks each buffer uniform vs replicated and runs the deterministic
//     stem at 1/T rows, replicating lazily at the first stochastic
//     consumer (the batched-MC lazy-stem transform);
//   * pattern-fuses the InvertedNorm stochastic affine (standalone
//     replica-affine steps, or in-place epilogues on an adjacent
//     linear/conv producer), eval batch-norm + affine chains, and the LSTM
//     gate block;
//   * assigns buffers to arena slots by liveness so one request reuses a
//     small fixed set of allocations.
//
// Executing a plan performs zero heap allocations on the steady-state path:
// the PlanContext owns every buffer and conv workspace, and all kernels are
// the same `*_forward_into` routines the graph ops call (bit-exactness by
// construction, verified by the session against the graph oracle before a
// plan is installed).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "autograd/lowered.h"
#include "deploy/trace.h"
#include "tensor/tensor.h"

namespace ripple::deploy {

struct PlanStats {
  int traced_ops = 0;        // steps the recorder captured
  int steps = 0;             // steps after folding + fusion
  int fused_away = 0;        // traced ops absorbed into fused steps
  int folded_constants = 0;  // steps evaluated at compile time
  int uniform_steps = 0;     // steps running at 1/T rows (lazy stem)
  int replicate_steps = 0;   // explicit uniform->stacked copies
  int epilogue_affines = 0;  // affines folded into a GEMM producer step
  int constants = 0;
  int buffers = 0;
  int arena_slots = 0;
  int64_t arena_bytes = 0;
};

/// Human-readable name of an OpTag ("linear", "lstm_gates", ...). Stable —
/// these are Prometheus label values.
const char* op_tag_name(OpTag tag);

/// Coarse cost bucket of an OpTag for the metrics endpoint's GEMM-vs-
/// epilogue split: "gemm" (linear/conv/lstm_gates, fused epilogues
/// included), "epilogue" (standalone affine/bn_affine), or "other".
const char* op_tag_group(OpTag tag);

/// Process-wide switch for per-step plan profiling. Off (the default), a
/// plan's execute loop pays one relaxed load + branch per call; on, each
/// step is clocked and its nanoseconds accumulate into the plan's profile
/// counters (two relaxed adds per step — plans stay shareable across
/// threads and the steady-state path stays allocation-free either way).
void set_plan_profiling(bool on);
bool plan_profiling_enabled();

/// Accumulated cost of one plan step (or one op tag when aggregated across
/// a session's cached plans, in which case `step` is -1). GEMM-backed tags
/// (linear/conv*) include their fused epilogue; standalone affine/bn_affine
/// steps are the unfused epilogue cost — together they split compiled
/// execution into GEMM vs epilogue time for the metrics endpoint.
struct PlanOpProfile {
  int step = -1;
  OpTag tag = OpTag::kNone;
  const char* name = "";
  uint64_t calls = 0;
  uint64_t total_ns = 0;
};

struct PlanStep {
  OpTag tag = OpTag::kNone;
  // Operand ids: >= 0 indexes the buffer arena, < 0 a plan constant
  // (constant index = -1 - id).
  std::vector<int> args;
  int out = -1;
  int out2 = -1;           // kLstmGates: next cell state
  StepFn fn;               // executor closure (elementwise / shape ops)
  Tensor w, b;             // kLinear/kConv*: weight, bias; kAffine: γ, β
                           // ([R,C], R ∈ {1, T}); kBnAffine: μ, scale
  Tensor g2, b2;           // kBnAffine: γ, β
  int64_t i0 = 0, i1 = 0;  // conv stride/pad; kLstmGates: hidden size
  // Per-replica affine epilogue folded into this GEMM step, applied in
  // place over `out` (InvertedNorm affine_first adjacent to a conv/linear).
  Tensor ep_gamma, ep_beta;
};

class ExecutionPlan;

/// Per-execution buffer set: arena slot storage, the per-buffer tensor
/// views into it, and the conv im2col workspace. One context serves one
/// in-flight request; sessions pool them.
class PlanContext {
 public:
  const Tensor& output() const;

 private:
  friend class ExecutionPlan;
  std::vector<Tensor> slots_;
  std::vector<Tensor> values_;  // per logical buffer, aliasing a slot
  autograd::ConvWorkspace conv_ws_;
  const ExecutionPlan* plan_ = nullptr;
};

class ExecutionPlan {
 public:
  /// Runs the plan on the *unreplicated* chunk input (shape input_shape())
  /// and returns the stacked [T·n, ...] output, owned by `ctx` until the
  /// next execute. Caller must hold the same pack-cache / exec-backend
  /// scopes the graph path uses. No heap allocation.
  const Tensor& execute(const Tensor& x, PlanContext& ctx) const;

  /// Builds a context with every arena slot and workspace pre-sized.
  std::unique_ptr<PlanContext> make_context() const;

  const Shape& input_shape() const { return input_shape_; }
  const Shape& output_shape() const { return output_shape_; }
  const PlanStats& stats() const { return stats_; }
  int64_t replicas() const { return replicas_; }

  /// Per-step profile counters (one entry per plan step, in execution
  /// order). All zeros unless executes ran with plan profiling enabled.
  std::vector<PlanOpProfile> op_profile() const;
  /// Zeros the profile counters (safe concurrently with execute).
  void reset_profile() const;

 private:
  friend std::unique_ptr<ExecutionPlan> compile_trace(
      std::vector<TraceStep> steps, const Tensor& stacked_input,
      int64_t replicas, std::string* error);
  friend class PlanContext;

  struct BufferInfo {
    Shape shape;
    int slot = -1;
  };

  /// Per-step profiling accumulators, sized like steps_. Mutable + atomic:
  /// execute() is const and concurrent across pooled contexts.
  struct StepProfile {
    std::atomic<uint64_t> ns{0};
    std::atomic<uint64_t> calls{0};
  };

  std::vector<Tensor> constants_;
  std::vector<BufferInfo> buffers_;
  std::vector<int64_t> slot_numel_;
  std::vector<PlanStep> steps_;
  mutable std::unique_ptr<StepProfile[]> profile_;
  int input_buffer_ = -1;
  int output_buffer_ = -1;
  int64_t replicas_ = 1;
  int64_t conv_ws_cols_ = 0;   // max cols numel over conv steps
  int64_t conv_ws_stage_ = 0;  // max stage numel over conv steps
  Shape input_shape_;
  Shape output_shape_;
  PlanStats stats_;
};

/// Compiles a recorded trace into a plan. `stacked_input` is the traced
/// forward's (replicated) input tensor; `replicas` the MC fold factor T.
/// Returns nullptr with `*error` set when the trace has no stable compiled
/// form (aborted trace, unsupported structure). Call under the same
/// pack-cache / exec-backend scopes as serving so constant folding
/// dispatches identically.
std::unique_ptr<ExecutionPlan> compile_trace(std::vector<TraceStep> steps,
                                             const Tensor& stacked_input,
                                             int64_t replicas,
                                             std::string* error);

}  // namespace ripple::deploy
