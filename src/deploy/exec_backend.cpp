#include "deploy/exec_backend.h"

namespace ripple::deploy {

const char* backend_name(Backend b) {
  switch (b) {
    case Backend::kFp32:
      return "fp32";
    case Backend::kQuantSim:
      return "quantsim";
    case Backend::kCrossbar:
      return "crossbar";
    case Backend::kQuantInt8:
      return "quant-int8";
  }
  return "unknown";
}

namespace {
thread_local ExecutionBackend* t_active_backend = nullptr;
}  // namespace

ExecutionBackend* active_exec_backend() { return t_active_backend; }

ExecBackendScope::ExecBackendScope(ExecutionBackend* backend)
    : previous_(t_active_backend) {
  t_active_backend = backend;
}

ExecBackendScope::~ExecBackendScope() { t_active_backend = previous_; }

}  // namespace ripple::deploy
