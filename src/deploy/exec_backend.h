// Pluggable execution backend behind the serving session's forwards.
//
// serve::InferenceSession routes the dense compute of every forward pass —
// linear layers (autograd::linear) and the im2col-lowered convolutions
// (autograd::conv1d/conv2d) — through a thread-locally installed
// ExecutionBackend. A backend may claim an op (return true, having written
// the output) or decline it (return false → the digital fp32 kernels run).
// The default substrates kFp32/kQuantSim never install a backend: their
// difference is in how the weights are materialized at artifact-open time,
// not in how the GEMM executes. kCrossbar installs CrossbarBackend
// (deploy/crossbar_backend.h).
//
// Lifecycle mirrors tensor/gemm.h's PackedACache: the session's one-time
// warm-up pass (held under an exclusive lock, single-threaded) lets the
// backend record per-layer state (e.g. program a crossbar per weight
// matrix); freeze() then makes lookups read-only so any number of serving
// threads may run concurrently. invalidate() — called from
// InferenceSession::invalidate_packed_weights() after in-place weight
// mutation (fault injection) — drops the recorded state so the next
// warm-up rebuilds it from the mutated weights.
#pragma once

#include "deploy/backend_kind.h"
#include "tensor/tensor.h"

namespace ripple::deploy {

class ExecutionBackend {
 public:
  virtual ~ExecutionBackend() = default;

  virtual const char* name() const = 0;

  /// y[N,Fout] = x[N,Fin] · wᵀ + bias. `bias` may be null. `out` is
  /// preallocated [N,Fout]; return true after filling it, false to decline
  /// (the caller then runs the digital GEMM).
  virtual bool linear(const Tensor& x, const Tensor& w, const float* bias,
                      Tensor& out) {
    (void)x;
    (void)w;
    (void)bias;
    (void)out;
    return false;
  }

  /// Fused epilogue of a linear layer: optional ReLU, then the per-replica
  /// channel affine (γ/β are [replicas, Fout]; row i belongs to replica
  /// i / (N / replicas)). The compiled-plan executor offers backends the
  /// whole fused step (deploy/plan.cpp folds a following kAffine into its
  /// producer); claiming it must reproduce the unfused sequence
  /// bit-exactly — one rounded multiply then one rounded add per element —
  /// or the plan's verification gate rejects the plan.
  struct LinearEpilogue {
    const float* bias = nullptr;
    const Tensor* gamma = nullptr;
    const Tensor* beta = nullptr;
    bool relu = false;
  };

  /// linear() plus a fused epilogue. The default declines anything the
  /// plain hook can't express and otherwise forwards to linear(), so
  /// existing backends keep their exact behavior.
  virtual bool linear_ex(const Tensor& x, const Tensor& w,
                         const LinearEpilogue& ep, Tensor& out) {
    if (ep.gamma != nullptr || ep.relu) return false;
    return linear(x, w, ep.bias, out);
  }

  /// The im2col-lowered convolution block:
  ///   stage[Cout, L] = W[Cout, CK] · cols[CK, L]  (+ row_bias[c] per row).
  /// `w` is the conv weight's flat [Cout, CK] data, `stage` is zeroed by
  /// the caller. Return semantics as linear().
  virtual bool conv_cols(int64_t cout, int64_t l, int64_t ck, const float* w,
                         const float* cols, float* stage,
                         const float* row_bias) {
    (void)cout;
    (void)l;
    (void)ck;
    (void)w;
    (void)cols;
    (void)stage;
    (void)row_bias;
    return false;
  }

  /// Modeled hardware serving time in microseconds for one input row
  /// through everything this backend has compiled — 0 for digital
  /// backends, the TileCost-derived ADC conversion time for the crossbar.
  /// Only meaningful once frozen (the compiled set is complete); callers
  /// record it into BatcherCounters::analog_latency so analog latency
  /// percentiles surface in fleet metrics without timing the simulation.
  virtual double modeled_analog_us_per_row() const { return 0.0; }

  /// Ends the single-threaded recording phase; lookups must be lock-free
  /// and read-only afterwards.
  virtual void freeze() {}
  /// Drops recorded per-layer state (weights mutated in place); recording
  /// re-opens on the next warm-up.
  virtual void invalidate() {}
};

/// The backend installed on this thread (nullptr outside any scope).
ExecutionBackend* active_exec_backend();

/// RAII: installs `backend` (may be null = no routing) for the current
/// thread, restoring the previous one on destruction.
class ExecBackendScope {
 public:
  explicit ExecBackendScope(ExecutionBackend* backend);
  ~ExecBackendScope();
  ExecBackendScope(const ExecBackendScope&) = delete;
  ExecBackendScope& operator=(const ExecBackendScope&) = delete;

 private:
  ExecutionBackend* previous_;
};

}  // namespace ripple::deploy
