// ripple::deploy — one artifact, pluggable execution substrates.
//
// The umbrella header for the deployment surface:
//
//   train → model.deploy() → save_artifact(model, "model.rpla", opts)
//                                     │
//        serve::InferenceSession::open("model.rpla", {.backend = …})
//                                     │
//        ┌─────────────┬─────────────┬──┴──────────┬──────────────┐
//     kFp32        kQuantSim      kQuantInt8     kCrossbar
//   digital GEMM  weights decoded  codes served   dense layers on the
//   on the stored from the integer as int8 via    analog IMC crossbar
//   fp32 values   codes (bit codec) u8×s8 kernels (DAC→G-pairs→ADC)
//
// One artifact serves all four substrates; the serve, batcher, fault-
// evaluation and bench layers all speak the same InferenceSession API
// regardless of the backend behind it.
#pragma once

#include <optional>

#include "deploy/artifact.h"
#include "deploy/backend_kind.h"
#include "deploy/crossbar_backend.h"
#include "deploy/exec_backend.h"
#include "deploy/int8_backend.h"
#include "serve/session.h"

namespace ripple::deploy {

struct DeployOptions {
  Backend backend = Backend::kFp32;
  /// Overrides the artifact's embedded serving defaults when set.
  std::optional<serve::SessionOptions> session;
  /// v3 manifests: which named entry to open (empty = first entry).
  /// Threads through InferenceSession::open and the replica fleet, so a
  /// ClusterController — and every restart of its replicas — serves one
  /// consistent entry of a multi-model file.
  std::string manifest_entry;
  /// kCrossbar substrate: device parameters, physical tile geometry /
  /// bit slicing / ADC sharing (imc/tiling.h), programming seed, and the
  /// backend's fault-injection hooks (conductance variation, stuck cells
  /// — injected per tile).
  CrossbarBackendOptions crossbar;
};

/// Ahead-of-traffic plan compilation (deploy/plan.h): traces one graph
/// forward for `input_shape` (batch dim included), compiles it into a
/// fused zero-allocation ExecutionPlan, verifies the plan bit-exact
/// against the graph oracle, and installs it in the session's plan cache
/// — the first matching request then serves from the plan instead of
/// paying the compile. Thin wrapper over session.precompile(): returns
/// the same PlanInfo (stats when compiled, the fallback reason when the
/// session will keep serving that shape from the graph).
serve::PlanInfo compile(const serve::InferenceSession& session,
                        const Shape& input_shape);

}  // namespace ripple::deploy
