#include "imc/mapping.h"

#include <algorithm>
#include <cmath>

#include "tensor/check.h"

namespace ripple::imc {

ConductancePair map_weight(double w, double g_on, double g_off) {
  RIPPLE_CHECK(g_on > g_off && g_off >= 0.0) << "need g_on > g_off >= 0";
  const double wc = std::clamp(w, -1.0, 1.0);
  ConductancePair p;
  if (wc >= 0.0) {
    p.g_pos = g_off + wc * (g_on - g_off);
    p.g_neg = g_off;
  } else {
    p.g_pos = g_off;
    p.g_neg = g_off + (-wc) * (g_on - g_off);
  }
  return p;
}

double unmap_pair(const ConductancePair& p, double g_on, double g_off) {
  RIPPLE_CHECK(g_on > g_off) << "need g_on > g_off";
  return (p.g_pos - p.g_neg) / (g_on - g_off);
}

std::vector<std::vector<int>> bit_slices(const std::vector<int32_t>& codes,
                                         int bits) {
  RIPPLE_CHECK(bits >= 1 && bits <= 31) << "bits out of range";
  std::vector<std::vector<int>> slices(
      static_cast<size_t>(bits), std::vector<int>(codes.size(), 0));
  for (size_t i = 0; i < codes.size(); ++i) {
    const auto u = static_cast<uint32_t>(codes[i]);
    for (int b = 0; b < bits; ++b)
      slices[static_cast<size_t>(b)][i] =
          static_cast<int>((u >> b) & 1u);
  }
  return slices;
}

std::vector<int32_t> combine_slices(
    const std::vector<std::vector<int>>& slices) {
  RIPPLE_CHECK(!slices.empty()) << "no slices";
  const int bits = static_cast<int>(slices.size());
  const size_t n = slices[0].size();
  for (const auto& s : slices)
    RIPPLE_CHECK(s.size() == n) << "ragged slice planes";
  std::vector<int32_t> codes(n, 0);
  for (size_t i = 0; i < n; ++i) {
    int32_t v = 0;
    for (int b = 0; b < bits - 1; ++b)
      v += slices[static_cast<size_t>(b)][i] << b;
    // Two's complement: MSB plane carries negative weight.
    v -= slices[static_cast<size_t>(bits - 1)][i] << (bits - 1);
    codes[i] = v;
  }
  return codes;
}

}  // namespace ripple::imc
