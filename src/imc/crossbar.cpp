#include "imc/crossbar.h"

#include <algorithm>
#include <cmath>

#include "tensor/check.h"
#include "tensor/ops.h"

namespace ripple::imc {

ConductancePair program_cell(double wn, const CrossbarConfig& cfg, Rng& rng) {
  ConductancePair p = map_weight(wn, cfg.g_on, cfg.g_off);
  if (cfg.sigma_programming > 0.0) {
    // Write-verify leaves a residual relative error on each cell.
    p.g_pos *=
        std::exp(rng.normal(0.0f, static_cast<float>(cfg.sigma_programming)));
    p.g_neg *=
        std::exp(rng.normal(0.0f, static_cast<float>(cfg.sigma_programming)));
  }
  return p;
}

void vary_cell(ConductancePair& p, double sigma_mult, double sigma_add,
               double g_span, Rng& rng) {
  if (sigma_mult > 0.0) {
    p.g_pos *= std::exp(rng.normal(0.0f, static_cast<float>(sigma_mult)));
    p.g_neg *= std::exp(rng.normal(0.0f, static_cast<float>(sigma_mult)));
  }
  if (sigma_add > 0.0) {
    p.g_pos += rng.normal(0.0f, static_cast<float>(sigma_add * g_span));
    p.g_neg += rng.normal(0.0f, static_cast<float>(sigma_add * g_span));
  }
  p.g_pos = std::max(0.0, p.g_pos);
  p.g_neg = std::max(0.0, p.g_neg);
}

void stick_cell(ConductancePair& p, double fraction, double g_on,
                double g_off, Rng& rng) {
  if (rng.bernoulli(static_cast<float>(fraction)))
    p.g_pos = rng.bernoulli(0.5f) ? g_on : g_off;
  if (rng.bernoulli(static_cast<float>(fraction)))
    p.g_neg = rng.bernoulli(0.5f) ? g_on : g_off;
}

Crossbar::Crossbar(CrossbarConfig config) : config_(config) {
  RIPPLE_CHECK(config_.rows > 0 && config_.cols > 0)
      << "crossbar dims must be positive";
  RIPPLE_CHECK(config_.g_on > config_.g_off && config_.g_off >= 0.0)
      << "need g_on > g_off >= 0";
  RIPPLE_CHECK(config_.dac_bits >= 1 && config_.dac_bits <= 16)
      << "dac_bits out of range";
  RIPPLE_CHECK(config_.adc_bits >= 1 && config_.adc_bits <= 16)
      << "adc_bits out of range";
  RIPPLE_CHECK(config_.adc_fullscale_fraction > 0.0 &&
               config_.adc_fullscale_fraction <= 1.0)
      << "adc_fullscale_fraction must be in (0,1]";
}

double dac_quantize_value(double v, double fullscale, int dac_bits) {
  if (fullscale <= 0.0) return 0.0;
  const double levels = static_cast<double>((1 << dac_bits) - 1);
  const double clamped = std::clamp(v / fullscale, -1.0, 1.0);
  return std::round(clamped * levels) / levels * fullscale;
}

int64_t adc_code(double i, double i_fs, int adc_bits) {
  const double levels = static_cast<double>((1 << adc_bits) - 1);
  const double clamped = std::clamp(i / i_fs, -1.0, 1.0);
  return std::llround(clamped * levels);
}

void Crossbar::program(const Tensor& weights, Rng& rng) {
  RIPPLE_CHECK(weights.rank() == 2 && weights.dim(0) == config_.cols &&
               weights.dim(1) == config_.rows)
      << "program expects [cols=" << config_.cols << ", rows=" << config_.rows
      << "], got " << shape_to_string(weights.shape());
  ideal_weights_ = weights.clone();
  const float mx = ops::max(ops::abs(weights));
  scale_ = mx > 0.0f ? static_cast<double>(mx) : 1.0;

  programmed_.assign(static_cast<size_t>(config_.rows * config_.cols), {});
  const float* pw = weights.data();
  for (int64_t c = 0; c < config_.cols; ++c) {
    for (int64_t r = 0; r < config_.rows; ++r) {
      const double wn = static_cast<double>(pw[c * config_.rows + r]) / scale_;
      programmed_[static_cast<size_t>(r * config_.cols + c)] =
          program_cell(wn, config_, rng);
    }
  }
  current_ = programmed_;
}

double Crossbar::dac_quantize(double v, double fullscale) const {
  return dac_quantize_value(v, fullscale, config_.dac_bits);
}

double Crossbar::adc_quantize(double i) const {
  const double i_fs = config_.adc_fullscale_fraction * config_.v_read *
                      (config_.g_on - config_.g_off) *
                      static_cast<double>(config_.rows);
  const double levels = static_cast<double>((1 << config_.adc_bits) - 1);
  return static_cast<double>(adc_code(i, i_fs, config_.adc_bits)) / levels *
         i_fs;
}

Tensor Crossbar::matvec(const Tensor& x) const {
  RIPPLE_CHECK(programmed()) << "matvec before program()";
  const bool batched = x.rank() == 2;
  RIPPLE_CHECK((batched && x.dim(1) == config_.rows) ||
               (x.rank() == 1 && x.dim(0) == config_.rows))
      << "matvec input shape " << shape_to_string(x.shape())
      << " incompatible with " << config_.rows << " rows";
  const int64_t n = batched ? x.dim(0) : 1;
  Tensor out = batched ? Tensor({n, config_.cols}) : Tensor({config_.cols});
  const float* px = x.data();
  float* po = out.data();

  const double g_span = config_.g_on - config_.g_off;
  for (int64_t b = 0; b < n; ++b) {
    const float* xin = px + b * config_.rows;
    // Input DAC: voltages scaled to the batch-row max.
    double xmax = 0.0;
    for (int64_t r = 0; r < config_.rows; ++r)
      xmax = std::max(xmax, std::fabs(static_cast<double>(xin[r])));
    std::vector<double> v(static_cast<size_t>(config_.rows), 0.0);
    for (int64_t r = 0; r < config_.rows; ++r) {
      const double vq =
          dac_quantize(static_cast<double>(xin[r]), xmax);
      v[static_cast<size_t>(r)] = xmax > 0.0
                                      ? vq / xmax * config_.v_read
                                      : 0.0;
    }
    // Column currents and ADC.
    for (int64_t c = 0; c < config_.cols; ++c) {
      double i_col = 0.0;
      for (int64_t r = 0; r < config_.rows; ++r) {
        const ConductancePair& p =
            current_[static_cast<size_t>(r * config_.cols + c)];
        i_col += v[static_cast<size_t>(r)] * (p.g_pos - p.g_neg);
      }
      const double i_dig = adc_quantize(i_col);
      // Back to weight·x units: invert the voltage and conductance scales.
      const double y = xmax > 0.0
                           ? i_dig / (config_.v_read * g_span) * scale_ * xmax
                           : 0.0;
      po[b * config_.cols + c] = static_cast<float>(y);
    }
  }
  return out;
}

Tensor Crossbar::matvec_ideal(const Tensor& x) const {
  RIPPLE_CHECK(programmed()) << "matvec_ideal before program()";
  const bool batched = x.rank() == 2;
  const int64_t n = batched ? x.dim(0) : 1;
  Tensor out = batched ? Tensor({n, config_.cols}) : Tensor({config_.cols});
  const float* px = x.data();
  const float* pw = ideal_weights_.data();
  float* po = out.data();
  for (int64_t b = 0; b < n; ++b)
    for (int64_t c = 0; c < config_.cols; ++c) {
      double acc = 0.0;
      for (int64_t r = 0; r < config_.rows; ++r)
        acc += static_cast<double>(pw[c * config_.rows + r]) *
               px[b * config_.rows + r];
      po[b * config_.cols + c] = static_cast<float>(acc);
    }
  return out;
}

void Crossbar::apply_conductance_variation(double sigma_mult,
                                           double sigma_add, Rng& rng) {
  RIPPLE_CHECK(programmed()) << "variation before program()";
  const double g_span = config_.g_on - config_.g_off;
  for (ConductancePair& p : current_)
    vary_cell(p, sigma_mult, sigma_add, g_span, rng);
}

void Crossbar::apply_stuck_cells(double fraction, Rng& rng) {
  RIPPLE_CHECK(programmed()) << "stuck cells before program()";
  RIPPLE_CHECK(fraction >= 0.0 && fraction <= 1.0)
      << "stuck fraction out of range";
  for (ConductancePair& p : current_)
    stick_cell(p, fraction, config_.g_on, config_.g_off, rng);
}

void Crossbar::restore() {
  RIPPLE_CHECK(programmed()) << "restore before program()";
  current_ = programmed_;
}

double Crossbar::fidelity_rmse(const Tensor& probe) const {
  Tensor analog = matvec(probe);
  Tensor ideal = matvec_ideal(probe);
  double acc = 0.0;
  const float* pa = analog.data();
  const float* pi = ideal.data();
  for (int64_t i = 0; i < analog.numel(); ++i) {
    const double d = pa[i] - pi[i];
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(analog.numel()));
}

}  // namespace ripple::imc
