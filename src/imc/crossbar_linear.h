// Inference-only linear layer executed on the analog crossbar simulator.
//
// Bridges the NN stack and the circuit-level model: program() maps a
// trained weight matrix onto differential conductance pairs; forward()
// runs the batched VMM through DAC → crossbar → ADC. Gradients do not
// flow (deployment artifact, not a training layer) — use it to measure
// end-to-end accuracy of a network whose head (or any matmul) runs on
// simulated hardware, under the crossbar's own non-idealities.
#pragma once

#include <memory>

#include "imc/crossbar.h"
#include "nn/layer.h"

namespace ripple::imc {

class CrossbarLinear : public nn::Layer {
 public:
  /// Geometry comes from the config; weights are programmed afterwards.
  explicit CrossbarLinear(CrossbarConfig config);

  /// Programs trained weights [out, in] (+ optional bias kept digital).
  void program(const Tensor& weight, const Tensor& bias, Rng& rng);

  bool programmed() const { return crossbar_.programmed(); }

  /// x [N, in] → [N, out] through the analog signal chain.
  autograd::Variable forward(const autograd::Variable& x) override;

  Crossbar& crossbar() { return crossbar_; }

 private:
  Crossbar crossbar_;
  Tensor bias_;  // digital bias addition (post-ADC), may be undefined
};

}  // namespace ripple::imc
