// Weight-to-conductance mapping for crossbar deployment.
//
// A signed weight is realized as a *differential pair* of conductances
// (G⁺, G⁻); the column current difference encodes the signed product.
// Multi-bit weights are *bit-sliced*: each bit position occupies its own
// column pair and the digitized partial sums are combined with binary
// weighting ( the MSB slice carries weight −2^(b−1) in two's complement).
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace ripple::imc {

struct ConductancePair {
  double g_pos = 0.0;  // siemens
  double g_neg = 0.0;
};

/// Maps a weight in [-1, 1] to a differential pair using linear
/// interpolation between g_off and g_on.
ConductancePair map_weight(double w, double g_on, double g_off);

/// Inverse of map_weight: signed value recovered from a pair.
double unmap_pair(const ConductancePair& p, double g_on, double g_off);

/// Two's-complement bit-slicing of integer codes. Returns `bits` planes,
/// each holding one bit (0/1) per code, LSB first.
std::vector<std::vector<int>> bit_slices(const std::vector<int32_t>& codes,
                                         int bits);

/// Recombines bit planes into signed integers (MSB plane weighted
/// −2^(bits−1)).
std::vector<int32_t> combine_slices(
    const std::vector<std::vector<int>>& slices);

}  // namespace ripple::imc
