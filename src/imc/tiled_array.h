// Tiled crossbar executor: runs a TilePlan on physical arrays.
//
// TiledArray is the hardware-shaped counterpart of the monolithic
// imc::Crossbar: the weight matrix is compiled onto fixed-geometry tiles
// (imc/tiling.h), every tile is programmed independently from its own
// deterministic sub-stream (so fault injection is per-tile, like real
// per-array write circuitry), tile MVMs run in parallel on the global
// threadpool, and the digitized per-tile partial sums are accumulated in
// fixed point — integer ADC codes on a shared full-scale — before the
// binary bit-slice recombine and the single conversion back to weight·x
// units.
//
// Signal chain per MVM:
//   input row → one DAC pass over the full fan-in (shared word-line
//   drivers; per-row max ranging, identical to Crossbar) → each tile
//   integrates its row-block's currents per physical column → ADC:
//   `adc_share` columns share one time-multiplexed converter; a shared ADC
//   spends one extra cycle auto-ranging a power-of-two front-end gain to
//   its group's peak current (finer LSB for sparse groups), a dedicated
//   ADC (adc_share = 1) converts in one cycle at the static full scale —
//   the monolithic Crossbar's transfer, bit for bit → int64 accumulation
//   of codes across row blocks → bit-plane recombine (MSB negative, the
//   mapping.h convention) → scale to float.
//
// Degenerate plans — a single tile holding analog (slice_bits = 0) cells
// behind dedicated ADCs (adc_share = 1) —
// delegate to an embedded monolithic Crossbar and consume the caller's Rng
// exactly like the legacy path, so an unbounded TileGeometry reproduces
// the pre-tiling backend bit for bit (asserted in tests/tiling_test.cpp).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "imc/crossbar.h"
#include "imc/tiling.h"
#include "tensor/random.h"
#include "tensor/tensor.h"

namespace ripple::imc {

struct TiledArrayConfig {
  /// Per-tile device parameters; rows/cols are overridden by the plan.
  CrossbarConfig device;
  /// Physical tile dimensions (unbounded ⇒ the legacy monolithic mapping).
  TileGeometry geometry{64, 64};
  /// 0 = analog conductance pairs (one physical column per output);
  /// 2..16 = weights quantized to this width and bit-sliced across that
  /// many physical columns per output (mapping.h two's-complement planes).
  int slice_bits = 0;
  /// Physical columns per (time-multiplexed) ADC. 1 = dedicated ADCs with
  /// the monolithic transfer; >1 adds the shared auto-ranging conversion.
  int adc_share = 1;
};

class TiledArray {
 public:
  /// Compiles the plan for an out_features × in_features weight matrix.
  TiledArray(int64_t out_features, int64_t in_features,
             TiledArrayConfig config);

  const TiledArrayConfig& config() const { return config_; }
  const TilePlan& plan() const { return plan_; }
  /// Hardware budget of this mapping under the configured ADC sharing.
  TileCost cost() const { return plan_cost(plan_, config_.adc_share); }

  bool programmed() const;

  /// Programs a [out, in] weight matrix across the tile grid. Weights are
  /// normalized by the matrix-wide max-abs (analog) or quantized with a
  /// matrix-wide symmetric scale (bit-sliced) so partial sums recombine on
  /// one scale. Multi-tile plans derive one sub-stream per tile from a
  /// single draw off `rng` (tile faults stay local and deterministic);
  /// the degenerate single-tile analog plan consumes `rng` exactly like
  /// Crossbar::program.
  void program(const Tensor& weights, Rng& rng);

  /// Post-programming non-idealities, per-tile streams like program().
  /// `only_tile` restricts the injection to one tile of the grid (-1 =
  /// every tile) — the hook behind per-tile fault-heterogeneity studies.
  void apply_conductance_variation(double sigma_mult, double sigma_add,
                                   Rng& rng, int64_t only_tile = -1);
  void apply_stuck_cells(double fraction, Rng& rng, int64_t only_tile = -1);

  /// Restores the conductances programmed last (all tiles).
  void restore();

  /// Analog VMM of a [rows] vector or [N, rows] batch; returns [cols] or
  /// [N, cols] in the programmed weights' units. Tile MVMs of a batch run
  /// in parallel on the global threadpool; results are deterministic
  /// regardless of thread count.
  Tensor matvec(const Tensor& x) const;

  /// Reference digital computation with the ideal (pre-noise,
  /// pre-quantization) weights — bit-identical to the monolithic
  /// Crossbar::matvec_ideal for any tiling.
  Tensor matvec_ideal(const Tensor& x) const;

  /// RMS error between analog and ideal matvec over a probe batch.
  double fidelity_rmse(const Tensor& probe) const;

 private:
  struct Tile {
    TileSpec spec;
    std::vector<ConductancePair> programmed_;  // rows*phys_cols, row-major
    std::vector<ConductancePair> current_;
  };

  /// Column conversion codes of one tile for one driven input row `v`
  /// (full-fan-in voltages), in fixed-point units of
  /// i_fs/(levels·2^kMaxRangeShift).
  void run_tile(const Tile& tile, const double* v, int64_t* out_codes) const;

  TiledArrayConfig config_;
  TilePlan plan_;
  /// Degenerate single-tile analog plan: the legacy signal chain, bit for
  /// bit (null when the general tiled path applies).
  std::unique_ptr<Crossbar> monolithic_;

  Tensor ideal_weights_;  // [cols, rows], original units
  double scale_ = 1.0;    // max-abs (analog) or quantization step (sliced)
  double i_fs_ = 0.0;     // shared ADC full scale (full-tile fan-in)
  std::vector<Tile> tiles_;
};

}  // namespace ripple::imc
