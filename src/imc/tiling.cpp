#include "imc/tiling.h"

#include <algorithm>

#include "tensor/check.h"

namespace ripple::imc {

namespace {

int64_t ceil_div(int64_t a, int64_t b) { return (a + b - 1) / b; }

}  // namespace

TilePlan plan_tiles(int64_t rows, int64_t cols, int bits,
                    TileGeometry geometry) {
  RIPPLE_CHECK(rows > 0 && cols > 0)
      << "plan_tiles needs positive matrix dims, got " << rows << "x" << cols;
  RIPPLE_CHECK(bits == 0 || (bits >= 2 && bits <= 16))
      << "plan_tiles bits must be 0 (analog) or in [2,16], got " << bits;
  const int64_t cols_per_group = bits == 0 ? 1 : bits;
  if (geometry.cols_bounded()) {
    RIPPLE_CHECK(geometry.cols >= cols_per_group)
        << "tile geometry cols=" << geometry.cols
        << " cannot fit one " << cols_per_group
        << "-column bit-sliced output group";
  }

  TilePlan plan;
  plan.rows = rows;
  plan.cols = cols;
  plan.bits = bits;
  plan.geometry = geometry;

  const int64_t tile_rows =
      geometry.rows_bounded() ? std::min(geometry.rows, rows) : rows;
  plan.cols_per_tile = geometry.cols_bounded()
                           ? std::min(geometry.cols / cols_per_group, cols)
                           : cols;
  plan.grid_rows = ceil_div(rows, tile_rows);
  plan.grid_cols = ceil_div(cols, plan.cols_per_tile);

  plan.tiles.reserve(static_cast<size_t>(plan.grid_rows * plan.grid_cols));
  for (int64_t gr = 0; gr < plan.grid_rows; ++gr) {
    for (int64_t gc = 0; gc < plan.grid_cols; ++gc) {
      TileSpec t;
      t.grid_r = gr;
      t.grid_c = gc;
      t.row_begin = gr * tile_rows;
      t.rows = std::min(tile_rows, rows - t.row_begin);
      t.col_begin = gc * plan.cols_per_tile;
      t.cols = std::min(plan.cols_per_tile, cols - t.col_begin);
      t.phys_cols = t.cols * cols_per_group;
      plan.tiles.push_back(t);
    }
  }
  return plan;
}

TileCost plan_cost(const TilePlan& plan, int adc_share) {
  RIPPLE_CHECK(adc_share >= 1) << "adc_share must be >= 1, got " << adc_share;
  TileCost cost;
  cost.tiles = plan.tile_count();
  cost.row_blocks = plan.grid_rows;
  for (const TileSpec& t : plan.tiles) {
    cost.cell_pairs += t.rows * t.phys_cols;
    cost.adcs += ceil_div(t.phys_cols, adc_share);
  }
  // Tiles convert concurrently; each shared ADC serializes over its columns
  // and spends one extra cycle auto-ranging its group gain.
  cost.conversions_per_mvm = adc_share == 1 ? 1 : adc_share + 1;
  return cost;
}

}  // namespace ripple::imc
