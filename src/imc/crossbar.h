// Analog crossbar vector-matrix-multiply engine.
//
// Models the full IMC signal chain of §II-D: DAC-quantized input voltages
// drive the word lines, programmed differential conductance pairs perform
// the multiply, bit-line currents accumulate the sum (O(1) in time), and an
// ADC digitizes the result. Programming noise, post-programming
// conductance variation and stuck cells can be injected to study accuracy
// degradation — the hardware ground truth the paper's algorithmic fault
// models abstract.
#pragma once

#include <cstdint>
#include <vector>

#include "imc/mapping.h"
#include "tensor/random.h"
#include "tensor/tensor.h"

namespace ripple::imc {

struct CrossbarConfig {
  int64_t rows = 64;   // inputs (word lines)
  int64_t cols = 64;   // outputs (bit lines)
  double g_on = 1.0 / 4.0e3;    // siemens (R_P = 4 kΩ)
  double g_off = 1.0 / 12.0e3;  // siemens (R_AP = 12 kΩ)
  int dac_bits = 8;
  int adc_bits = 8;
  double v_read = 0.2;  // volts, full-scale input
  /// Relative conductance error applied when programming (write noise).
  double sigma_programming = 0.0;
  /// ADC full scale as a fraction of the absolute worst-case column
  /// current; real designs exploit sparsity and use < 1.
  double adc_fullscale_fraction = 0.25;
};

/// Cell-level primitives of the signal chain, shared by the monolithic
/// Crossbar and the tiled executor (imc/tiled_array.h) so a cell programmed
/// by either draws the exact same noise sequence from its stream.
/// Maps a normalized weight and applies residual write noise
/// (cfg.sigma_programming).
ConductancePair program_cell(double wn, const CrossbarConfig& cfg, Rng& rng);
/// Multiplicative lognormal-ish + additive conductance variation; clamps
/// conductances at 0.
void vary_cell(ConductancePair& p, double sigma_mult, double sigma_add,
               double g_span, Rng& rng);
/// Sticks either side of the pair at g_on/g_off with probability
/// `fraction` (50/50 polarity).
void stick_cell(ConductancePair& p, double fraction, double g_on,
                double g_off, Rng& rng);

/// DAC transfer: quantizes `v` against `fullscale` with `dac_bits` levels.
double dac_quantize_value(double v, double fullscale, int dac_bits);
/// ADC transfer, code domain: the signed integer conversion code of
/// current `i` against full scale `i_fs` (clamped, `adc_bits` levels).
int64_t adc_code(double i, double i_fs, int adc_bits);

class Crossbar {
 public:
  explicit Crossbar(CrossbarConfig config);

  const CrossbarConfig& config() const { return config_; }

  /// Programs a [cols, rows] weight matrix (out × in). Weights are
  /// max-abs-normalized into [-1,1]; the scale is retained so matvec
  /// returns results in the original units. Programming noise
  /// (sigma_programming) is applied with `rng`.
  void program(const Tensor& weights, Rng& rng);

  bool programmed() const { return !current_.empty(); }

  /// Analog VMM of a [rows] vector or [N, rows] batch; returns [cols] or
  /// [N, cols] in the programmed weights' units.
  Tensor matvec(const Tensor& x) const;

  /// Reference digital computation with the *ideal* (pre-noise) weights.
  Tensor matvec_ideal(const Tensor& x) const;

  /// Post-programming non-idealities (drift / thermal variation):
  /// multiplicative lognormal-ish factor exp(N(0,σ_mult)) and additive
  /// N(0, σ_add·(g_on−g_off)) on every conductance.
  void apply_conductance_variation(double sigma_mult, double sigma_add,
                                   Rng& rng);

  /// A fraction of cells become stuck at g_on or g_off (50/50).
  void apply_stuck_cells(double fraction, Rng& rng);

  /// Restores the conductances programmed last.
  void restore();

  /// RMS error between analog and ideal matvec over a probe batch.
  double fidelity_rmse(const Tensor& probe) const;

 private:
  double dac_quantize(double v, double fullscale) const;
  double adc_quantize(double i) const;

  CrossbarConfig config_;
  Tensor ideal_weights_;  // [cols, rows], original units
  double scale_ = 1.0;
  std::vector<ConductancePair> programmed_;  // rows*cols, row-major
  std::vector<ConductancePair> current_;
};

}  // namespace ripple::imc
