// Compact model of an STT-MRAM cell (the NVM technology motivating the
// paper, §II-D / Fig. 4).
//
// Two behaviours matter for reliability studies:
//  (1) Stochastic switching — write pulses flip the free layer only with a
//      probability that depends on pulse voltage and width. Modeled with
//      the Néel–Arrhenius law in the thermally-activated regime:
//         P_sw(V, t) = 1 − exp(−t / τ(V)),  τ(V) = τ0·exp(Δ·(1 − V/Vc))
//  (2) Resistance variation — R_P / R_AP are lognormally distributed from
//      process variation, and the TMR (and with it the read window)
//      shrinks as temperature rises.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/random.h"

namespace ripple::imc {

struct SttMramParams {
  double r_p = 4.0e3;         // parallel (low) resistance, ohm, at t_ref
  double tmr0 = 1.0;          // TMR at t_ref: R_AP = R_P · (1 + TMR)
  double sigma_rel = 0.05;    // lognormal sigma of resistance variation
  double t_ref = 300.0;       // reference temperature, K
  double tmr_temp_coeff = 2.0e-3;  // TMR loss per K above t_ref
  double delta = 40.0;        // thermal stability factor Δ = E_b / k_B T
  double v_c = 0.6;           // critical switching voltage, V
  double tau0_ns = 1.0;       // attempt time, ns
};

class SttMramDevice {
 public:
  explicit SttMramDevice(SttMramParams params = {});

  const SttMramParams& params() const { return params_; }

  /// Mean parallel / antiparallel resistance at temperature `t_kelvin`.
  double mean_r_p(double t_kelvin) const;
  double mean_r_ap(double t_kelvin) const;
  /// TMR at temperature (clamped at a 5% floor; the junction never fully
  /// loses its read window in the modeled range).
  double tmr(double t_kelvin) const;

  /// One lognormal sample of R_P / R_AP at temperature.
  double sample_r_p(double t_kelvin, Rng& rng) const;
  double sample_r_ap(double t_kelvin, Rng& rng) const;

  /// Néel–Arrhenius switching probability for a pulse of `v` volts and
  /// `pulse_ns` nanoseconds.
  double switching_probability(double v, double pulse_ns) const;

  /// Simulates a write: returns true if the cell switched.
  bool attempt_switch(double v, double pulse_ns, Rng& rng) const;

  /// Write-error rate = 1 − P_sw (probability the cell retains its state).
  double write_error_rate(double v, double pulse_ns) const;

 private:
  SttMramParams params_;
};

/// Monte-Carlo histogram of sampled resistances (Fig. 4b reproduction).
struct ResistanceSamples {
  std::vector<double> r_p;
  std::vector<double> r_ap;
};
ResistanceSamples sample_resistances(const SttMramDevice& device,
                                     double t_kelvin, int count, Rng& rng);

}  // namespace ripple::imc
