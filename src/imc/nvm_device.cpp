#include "imc/nvm_device.h"

#include <algorithm>
#include <cmath>

#include "tensor/check.h"

namespace ripple::imc {

SttMramDevice::SttMramDevice(SttMramParams params) : params_(params) {
  RIPPLE_CHECK(params_.r_p > 0.0) << "R_P must be positive";
  RIPPLE_CHECK(params_.tmr0 > 0.0) << "TMR must be positive";
  RIPPLE_CHECK(params_.sigma_rel >= 0.0) << "sigma_rel must be >= 0";
  RIPPLE_CHECK(params_.v_c > 0.0) << "critical voltage must be positive";
  RIPPLE_CHECK(params_.tau0_ns > 0.0) << "attempt time must be positive";
}

double SttMramDevice::tmr(double t_kelvin) const {
  const double loss = params_.tmr_temp_coeff * (t_kelvin - params_.t_ref);
  return std::max(0.05, params_.tmr0 - loss);
}

double SttMramDevice::mean_r_p(double t_kelvin) const {
  // R_P is dominated by the tunnel barrier and drifts only weakly with
  // temperature; a mild linear coefficient captures the measured trend.
  return params_.r_p * (1.0 - 1.0e-4 * (t_kelvin - params_.t_ref));
}

double SttMramDevice::mean_r_ap(double t_kelvin) const {
  return mean_r_p(t_kelvin) * (1.0 + tmr(t_kelvin));
}

namespace {

double lognormal_sample(double mean, double sigma_rel, Rng& rng) {
  if (sigma_rel <= 0.0) return mean;
  // Parameterize so the sample's expected value equals `mean`.
  const double s2 = std::log(1.0 + sigma_rel * sigma_rel);
  const double mu = std::log(mean) - 0.5 * s2;
  const double z = rng.normal(0.0f, 1.0f);
  return std::exp(mu + std::sqrt(s2) * z);
}

}  // namespace

double SttMramDevice::sample_r_p(double t_kelvin, Rng& rng) const {
  return lognormal_sample(mean_r_p(t_kelvin), params_.sigma_rel, rng);
}

double SttMramDevice::sample_r_ap(double t_kelvin, Rng& rng) const {
  // The AP state carries more variation (spin-dependent transport), a
  // well-documented asymmetry; 1.5× the P-state sigma.
  return lognormal_sample(mean_r_ap(t_kelvin), 1.5 * params_.sigma_rel, rng);
}

double SttMramDevice::switching_probability(double v, double pulse_ns) const {
  RIPPLE_CHECK(pulse_ns > 0.0) << "pulse width must be positive";
  if (v <= 0.0) return 0.0;
  // Thermally-activated regime; exponent is clamped to keep exp() finite
  // for overdrive voltages (V >> Vc), where P_sw saturates at 1.
  const double exponent =
      std::clamp(params_.delta * (1.0 - v / params_.v_c), -700.0, 700.0);
  const double tau = params_.tau0_ns * std::exp(exponent);
  return 1.0 - std::exp(-pulse_ns / tau);
}

bool SttMramDevice::attempt_switch(double v, double pulse_ns, Rng& rng) const {
  return rng.bernoulli(
      static_cast<float>(switching_probability(v, pulse_ns)));
}

double SttMramDevice::write_error_rate(double v, double pulse_ns) const {
  return 1.0 - switching_probability(v, pulse_ns);
}

ResistanceSamples sample_resistances(const SttMramDevice& device,
                                     double t_kelvin, int count, Rng& rng) {
  RIPPLE_CHECK(count > 0) << "sample count must be positive";
  ResistanceSamples s;
  s.r_p.reserve(static_cast<size_t>(count));
  s.r_ap.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    s.r_p.push_back(device.sample_r_p(t_kelvin, rng));
    s.r_ap.push_back(device.sample_r_ap(t_kelvin, rng));
  }
  return s;
}

}  // namespace ripple::imc
