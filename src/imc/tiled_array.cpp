#include "imc/tiled_array.h"

#include <algorithm>
#include <cmath>

#include "tensor/check.h"
#include "tensor/ops.h"
#include "tensor/threadpool.h"

namespace ripple::imc {

namespace {

/// Fixed-point headroom of the shared-ADC auto-ranging gain: codes are
/// accumulated in units of i_fs/(levels·2^kMaxRangeShift), so a group gain
/// of up to 2^8 stays exact in the int64 partial sums.
constexpr int kMaxRangeShift = 8;

/// Batch rows digitized per scratch-buffer block (bounds the int64 code
/// scratch at block·Σ phys_cols regardless of the caller's batch size).
constexpr int64_t kRowBlock = 64;

}  // namespace

TiledArray::TiledArray(int64_t out_features, int64_t in_features,
                       TiledArrayConfig config)
    : config_(config),
      plan_(plan_tiles(in_features, out_features, config.slice_bits,
                       config.geometry)) {
  const CrossbarConfig& d = config_.device;
  RIPPLE_CHECK(d.g_on > d.g_off && d.g_off >= 0.0) << "need g_on > g_off >= 0";
  RIPPLE_CHECK(d.dac_bits >= 1 && d.dac_bits <= 16) << "dac_bits out of range";
  RIPPLE_CHECK(d.adc_bits >= 1 && d.adc_bits <= 16) << "adc_bits out of range";
  RIPPLE_CHECK(d.adc_fullscale_fraction > 0.0 &&
               d.adc_fullscale_fraction <= 1.0)
      << "adc_fullscale_fraction must be in (0,1]";
  RIPPLE_CHECK(config_.adc_share >= 1)
      << "adc_share must be >= 1, got " << config_.adc_share;

  if (plan_.single_tile() && config_.slice_bits == 0 &&
      config_.adc_share == 1) {
    // Degenerate plan: one analog tile with dedicated ADCs is exactly the
    // legacy monolithic macro — delegate so the signal chain (and its Rng
    // consumption) stays bit-identical to the pre-tiling path. Shared ADCs
    // (adc_share > 1) add the auto-ranging transfer, so they always take
    // the general path.
    CrossbarConfig cfg = config_.device;
    cfg.rows = plan_.rows;
    cfg.cols = plan_.cols;
    monolithic_ = std::make_unique<Crossbar>(cfg);
    return;
  }
  // Every tile is a physically identical array, so all ADCs share the
  // full-tile worst-case input range (edge tiles just leave cells unused)
  // — which is what keeps per-tile conversion codes commensurate for the
  // fixed-point partial-sum accumulation.
  i_fs_ = d.adc_fullscale_fraction * d.v_read * (d.g_on - d.g_off) *
          static_cast<double>(plan_.tile(0, 0).rows);
  tiles_.resize(plan_.tiles.size());
  for (size_t t = 0; t < plan_.tiles.size(); ++t) tiles_[t].spec = plan_.tiles[t];
}

bool TiledArray::programmed() const {
  if (monolithic_ != nullptr) return monolithic_->programmed();
  return !tiles_.empty() && !tiles_.front().current_.empty();
}

void TiledArray::program(const Tensor& weights, Rng& rng) {
  RIPPLE_CHECK(weights.rank() == 2 && weights.dim(0) == plan_.cols &&
               weights.dim(1) == plan_.rows)
      << "program expects [cols=" << plan_.cols << ", rows=" << plan_.rows
      << "], got " << shape_to_string(weights.shape());
  if (monolithic_ != nullptr) {
    // The delegate keeps its own ideal-weights clone; don't hold a second.
    monolithic_->program(weights, rng);
    return;
  }
  ideal_weights_ = weights.clone();

  const float mx = ops::max(ops::abs(weights));
  const int bits = config_.slice_bits;
  const int64_t rows = plan_.rows;
  const float* pw = weights.data();
  std::vector<int32_t> codes;
  if (bits == 0) {
    scale_ = mx > 0.0f ? static_cast<double>(mx) : 1.0;
  } else {
    // Matrix-wide symmetric quantization (IntQuantizer semantics): one
    // scale shared by every tile so bit-plane partial sums recombine.
    const auto qmax = static_cast<double>((1 << (bits - 1)) - 1);
    scale_ = mx > 0.0f ? static_cast<double>(mx) / qmax : 1.0;
    const uint32_t mask = (1u << bits) - 1u;
    codes.resize(static_cast<size_t>(weights.numel()));
    for (int64_t i = 0; i < weights.numel(); ++i) {
      const double q =
          std::clamp(std::round(static_cast<double>(pw[i]) / scale_), -qmax,
                     qmax);
      codes[static_cast<size_t>(i)] = static_cast<int32_t>(
          static_cast<uint32_t>(static_cast<int32_t>(q)) & mask);
    }
  }

  // One draw seeds the whole grid; tile t programs from sub-stream fork(t),
  // so its cells' noise is independent of every other tile's and of how
  // many tiles the geometry produced.
  const uint64_t salt = rng.next_u64();
  const int64_t planes = bits == 0 ? 1 : bits;
  for (size_t t = 0; t < tiles_.size(); ++t) {
    Tile& tile = tiles_[t];
    const TileSpec& s = tile.spec;
    Rng tr = Rng(salt).fork(static_cast<uint64_t>(t));
    tile.programmed_.assign(
        static_cast<size_t>(s.rows * s.phys_cols), {});
    for (int64_t pc = 0; pc < s.phys_cols; ++pc) {
      const int64_t c = s.col_begin + pc / planes;
      const int b = static_cast<int>(pc % planes);
      for (int64_t r = 0; r < s.rows; ++r) {
        const int64_t flat = c * rows + s.row_begin + r;
        const double wn =
            bits == 0
                ? static_cast<double>(pw[flat]) / scale_
                : static_cast<double>((codes[static_cast<size_t>(flat)] >> b) &
                                      1);
        tile.programmed_[static_cast<size_t>(r * s.phys_cols + pc)] =
            program_cell(wn, config_.device, tr);
      }
    }
    tile.current_ = tile.programmed_;
  }
}

void TiledArray::apply_conductance_variation(double sigma_mult,
                                             double sigma_add, Rng& rng,
                                             int64_t only_tile) {
  RIPPLE_CHECK(programmed()) << "variation before program()";
  if (monolithic_ != nullptr) {
    monolithic_->apply_conductance_variation(sigma_mult, sigma_add, rng);
    return;
  }
  const double g_span = config_.device.g_on - config_.device.g_off;
  const uint64_t salt = rng.next_u64();
  for (size_t t = 0; t < tiles_.size(); ++t) {
    if (only_tile >= 0 && static_cast<int64_t>(t) != only_tile) continue;
    Rng tr = Rng(salt).fork(static_cast<uint64_t>(t));
    for (ConductancePair& p : tiles_[t].current_)
      vary_cell(p, sigma_mult, sigma_add, g_span, tr);
  }
}

void TiledArray::apply_stuck_cells(double fraction, Rng& rng,
                                   int64_t only_tile) {
  RIPPLE_CHECK(programmed()) << "stuck cells before program()";
  RIPPLE_CHECK(fraction >= 0.0 && fraction <= 1.0)
      << "stuck fraction out of range";
  if (monolithic_ != nullptr) {
    monolithic_->apply_stuck_cells(fraction, rng);
    return;
  }
  const uint64_t salt = rng.next_u64();
  for (size_t t = 0; t < tiles_.size(); ++t) {
    if (only_tile >= 0 && static_cast<int64_t>(t) != only_tile) continue;
    Rng tr = Rng(salt).fork(static_cast<uint64_t>(t));
    for (ConductancePair& p : tiles_[t].current_)
      stick_cell(p, fraction, config_.device.g_on, config_.device.g_off, tr);
  }
}

void TiledArray::restore() {
  RIPPLE_CHECK(programmed()) << "restore before program()";
  if (monolithic_ != nullptr) {
    monolithic_->restore();
    return;
  }
  for (Tile& tile : tiles_) tile.current_ = tile.programmed_;
}

void TiledArray::run_tile(const Tile& tile, const double* v,
                          int64_t* out_codes) const {
  const TileSpec& s = tile.spec;
  std::vector<double> cur(static_cast<size_t>(s.phys_cols), 0.0);
  for (int64_t pc = 0; pc < s.phys_cols; ++pc) {
    double i_col = 0.0;
    for (int64_t r = 0; r < s.rows; ++r) {
      const ConductancePair& p =
          tile.current_[static_cast<size_t>(r * s.phys_cols + pc)];
      i_col += v[s.row_begin + r] * (p.g_pos - p.g_neg);
    }
    cur[static_cast<size_t>(pc)] = i_col;
  }
  const int share = config_.adc_share;
  for (int64_t g0 = 0; g0 < s.phys_cols; g0 += share) {
    const int64_t gn = std::min<int64_t>(share, s.phys_cols - g0);
    int k = 0;
    if (share > 1) {
      // Shared ADC: one auto-ranging pass picks the largest power-of-two
      // front-end gain that still covers the group's peak current.
      double peak = 0.0;
      for (int64_t j = 0; j < gn; ++j)
        peak = std::max(peak, std::fabs(cur[static_cast<size_t>(g0 + j)]));
      while (k < kMaxRangeShift &&
             peak <= i_fs_ / static_cast<double>(int64_t{1} << (k + 1)))
        ++k;
    }
    const double fs_g = i_fs_ / static_cast<double>(int64_t{1} << k);
    for (int64_t j = 0; j < gn; ++j)
      out_codes[g0 + j] = adc_code(cur[static_cast<size_t>(g0 + j)], fs_g,
                                   config_.device.adc_bits)
                          << (kMaxRangeShift - k);
  }
}

Tensor TiledArray::matvec(const Tensor& x) const {
  RIPPLE_CHECK(programmed()) << "matvec before program()";
  if (monolithic_ != nullptr) return monolithic_->matvec(x);
  const bool batched = x.rank() == 2;
  RIPPLE_CHECK((batched && x.dim(1) == plan_.rows) ||
               (x.rank() == 1 && x.dim(0) == plan_.rows))
      << "matvec input shape " << shape_to_string(x.shape())
      << " incompatible with " << plan_.rows << " rows";
  const int64_t n = batched ? x.dim(0) : 1;
  Tensor out = batched ? Tensor({n, plan_.cols}) : Tensor({plan_.cols});
  const float* px = x.data();
  float* po = out.data();

  const CrossbarConfig& d = config_.device;
  const double g_span = d.g_on - d.g_off;
  const double levels = static_cast<double>((1 << d.adc_bits) - 1);
  const int64_t rows = plan_.rows;
  const int64_t planes = plan_.bits == 0 ? 1 : plan_.bits;
  const int64_t tile_count = plan_.tile_count();
  // Per-tile slots in the code scratch, one block of batch rows at a time.
  std::vector<int64_t> code_offset(static_cast<size_t>(tile_count) + 1, 0);
  for (int64_t t = 0; t < tile_count; ++t)
    code_offset[static_cast<size_t>(t + 1)] =
        code_offset[static_cast<size_t>(t)] + tiles_[static_cast<size_t>(t)]
                                                  .spec.phys_cols;
  const int64_t code_stride = code_offset[static_cast<size_t>(tile_count)];

  for (int64_t b0 = 0; b0 < n; b0 += kRowBlock) {
    const int64_t bn = std::min(kRowBlock, n - b0);
    std::vector<double> xmax(static_cast<size_t>(bn), 0.0);
    std::vector<double> volts(static_cast<size_t>(bn * rows), 0.0);
    // One DAC pass per input row over the full fan-in — the word-line
    // drivers are shared by every tile of a grid row, exactly like the
    // monolithic chain.
    parallel_for(bn, [&](int64_t lo, int64_t hi) {
      for (int64_t b = lo; b < hi; ++b) {
        const float* xin = px + (b0 + b) * rows;
        double mx = 0.0;
        for (int64_t r = 0; r < rows; ++r)
          mx = std::max(mx, std::fabs(static_cast<double>(xin[r])));
        xmax[static_cast<size_t>(b)] = mx;
        double* v = volts.data() + b * rows;
        for (int64_t r = 0; r < rows; ++r) {
          const double vq = dac_quantize_value(static_cast<double>(xin[r]),
                                               mx, d.dac_bits);
          v[r] = mx > 0.0 ? vq / mx * d.v_read : 0.0;
        }
      }
    }, /*grain=*/1);

    // Tile MVMs in parallel: every (input row, tile) pair digitizes its
    // partial column codes independently.
    std::vector<int64_t> codes(static_cast<size_t>(bn * code_stride), 0);
    parallel_for(bn * tile_count, [&](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) {
        const int64_t b = i / tile_count;
        const int64_t t = i % tile_count;
        run_tile(tiles_[static_cast<size_t>(t)], volts.data() + b * rows,
                 codes.data() + b * code_stride +
                     code_offset[static_cast<size_t>(t)]);
      }
    }, /*grain=*/1);

    // Fixed-point accumulation of the digitized partial sums across the
    // row blocks, then the binary bit-slice recombine (mapping.h
    // convention: MSB plane negative), then one conversion to float units.
    parallel_for(bn, [&](int64_t lo, int64_t hi) {
      std::vector<int64_t> acc(static_cast<size_t>(plan_.cols * planes));
      for (int64_t b = lo; b < hi; ++b) {
        std::fill(acc.begin(), acc.end(), 0);
        for (int64_t t = 0; t < tile_count; ++t) {
          const TileSpec& s = tiles_[static_cast<size_t>(t)].spec;
          const int64_t* tc = codes.data() + b * code_stride +
                              code_offset[static_cast<size_t>(t)];
          int64_t* slot = acc.data() + s.col_begin * planes;
          for (int64_t pc = 0; pc < s.phys_cols; ++pc) slot[pc] += tc[pc];
        }
        const double mx = xmax[static_cast<size_t>(b)];
        float* orow = po + (b0 + b) * plan_.cols;
        for (int64_t c = 0; c < plan_.cols; ++c) {
          int64_t s_fp = 0;
          if (planes == 1) {
            s_fp = acc[static_cast<size_t>(c)];
          } else {
            for (int64_t bit = 0; bit < planes; ++bit) {
              const int64_t term = acc[static_cast<size_t>(c * planes + bit)]
                                   << bit;
              s_fp += bit == planes - 1 ? -term : term;
            }
          }
          const double i_dig =
              static_cast<double>(s_fp) /
              static_cast<double>(int64_t{1} << kMaxRangeShift) / levels *
              i_fs_;
          orow[c] = static_cast<float>(
              mx > 0.0 ? i_dig / (d.v_read * g_span) * scale_ * mx : 0.0);
        }
      }
    }, /*grain=*/1);
  }
  return out;
}

Tensor TiledArray::matvec_ideal(const Tensor& x) const {
  RIPPLE_CHECK(programmed()) << "matvec_ideal before program()";
  if (monolithic_ != nullptr) return monolithic_->matvec_ideal(x);
  const bool batched = x.rank() == 2;
  const int64_t n = batched ? x.dim(0) : 1;
  Tensor out = batched ? Tensor({n, plan_.cols}) : Tensor({plan_.cols});
  const float* px = x.data();
  const float* pw = ideal_weights_.data();
  float* po = out.data();
  for (int64_t b = 0; b < n; ++b)
    for (int64_t c = 0; c < plan_.cols; ++c) {
      double acc = 0.0;
      for (int64_t r = 0; r < plan_.rows; ++r)
        acc += static_cast<double>(pw[c * plan_.rows + r]) *
               px[b * plan_.rows + r];
      po[b * plan_.cols + c] = static_cast<float>(acc);
    }
  return out;
}

double TiledArray::fidelity_rmse(const Tensor& probe) const {
  Tensor analog = matvec(probe);
  Tensor ideal = matvec_ideal(probe);
  double acc = 0.0;
  const float* pa = analog.data();
  const float* pi = ideal.data();
  for (int64_t i = 0; i < analog.numel(); ++i) {
    const double diff = pa[i] - pi[i];
    acc += diff * diff;
  }
  return std::sqrt(acc / static_cast<double>(analog.numel()));
}

}  // namespace ripple::imc
