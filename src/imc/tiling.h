// Crossbar tiling compiler: logical weight matrices onto physical arrays.
//
// Real IMC macros are built from small fixed-geometry crossbar tiles (e.g.
// 64×64 STT-MRAM arrays), not from arbitrarily-sized monoliths: a layer's
// weight matrix is *compiled* onto a grid of tiles — row-blocked over the
// input fan-in (each tile sees a slice of the word lines; digitized partial
// sums are accumulated across the row blocks) and column-blocked over the
// outputs. With bit-sliced weights (mapping.h) every logical output column
// occupies `bits` adjacent physical columns, one per bit plane, recombined
// with binary weighting after the ADC.
//
// plan_tiles() is the pure compiler: geometry in, tile grid out. The
// executor that programs and runs a plan is imc::TiledArray
// (imc/tiled_array.h). plan_cost() derives the hardware budget of a plan —
// tile/cell/ADC counts and the time-multiplex conversion latency of
// ADC-per-N-columns sharing — so serving layers can report what a mapping
// costs, not just what it computes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ripple::imc {

/// Fixed dimensions of one physical crossbar tile. A non-positive value
/// leaves that dimension unbounded — TileGeometry::unbounded() compiles any
/// matrix onto a single logically-sized tile (the legacy monolithic
/// mapping).
struct TileGeometry {
  int64_t rows = 64;  // word lines (input fan-in) per tile
  int64_t cols = 64;  // bit lines (physical output columns) per tile

  static TileGeometry unbounded() { return {0, 0}; }
  bool rows_bounded() const { return rows > 0; }
  bool cols_bounded() const { return cols > 0; }

  bool operator==(const TileGeometry&) const = default;
};

/// One physical tile of a plan: which block of the logical matrix it holds.
struct TileSpec {
  int64_t grid_r = 0;    // row-block index (input fan-in blocking)
  int64_t grid_c = 0;    // column-block index (output blocking)
  int64_t row_begin = 0; // first logical input row held by this tile
  int64_t rows = 0;      // input rows held (≤ geometry.rows)
  int64_t col_begin = 0; // first logical output column held
  int64_t cols = 0;      // logical output columns held
  int64_t phys_cols = 0; // cols × max(1, bits) physical bit lines used
};

/// A compiled mapping of a rows×cols logical weight matrix (rows = input
/// fan-in, cols = output fan-out) onto a grid_rows × grid_cols grid of
/// physical tiles. Tiles are stored grid-row-major:
/// tiles[gr * grid_cols + gc].
struct TilePlan {
  int64_t rows = 0;  // logical input fan-in
  int64_t cols = 0;  // logical output fan-out
  int bits = 0;      // 0 = analog conductance pairs; ≥2 = bit-sliced columns
  TileGeometry geometry;
  int64_t grid_rows = 0;
  int64_t grid_cols = 0;
  int64_t cols_per_tile = 0;  // logical output columns per full tile
  std::vector<TileSpec> tiles;

  int64_t tile_count() const { return static_cast<int64_t>(tiles.size()); }
  bool single_tile() const { return tiles.size() == 1; }
  const TileSpec& tile(int64_t gr, int64_t gc) const {
    return tiles[static_cast<size_t>(gr * grid_cols + gc)];
  }
};

/// Compiles a rows×cols logical matrix of `bits`-bit weights (0 = analog
/// cells, no slicing; otherwise 2..16, one physical column per bit plane)
/// onto `geometry`-sized tiles. Every logical weight lands on exactly one
/// tile; a bounded geometry must fit at least one output column group
/// (geometry.cols ≥ max(1, bits)).
TilePlan plan_tiles(int64_t rows, int64_t cols, int bits, TileGeometry geometry);

/// Hardware budget of a plan under ADC-per-`adc_share`-columns sharing.
struct TileCost {
  int64_t tiles = 0;       // physical arrays
  int64_t cell_pairs = 0;  // programmed differential conductance pairs
  int64_t adcs = 0;        // Σ per-tile ceil(phys_cols / adc_share)
  /// Serial conversion cycles one MVM takes (tiles convert concurrently;
  /// each shared ADC walks its `adc_share` columns, plus one auto-ranging
  /// pass when shared).
  int64_t conversions_per_mvm = 0;
  int64_t row_blocks = 0;  // depth of the digital partial-sum accumulation
};

TileCost plan_cost(const TilePlan& plan, int adc_share);

}  // namespace ripple::imc
