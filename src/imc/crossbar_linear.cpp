#include "imc/crossbar_linear.h"

#include "tensor/check.h"

namespace ripple::imc {

CrossbarLinear::CrossbarLinear(CrossbarConfig config)
    : crossbar_(config) {}

void CrossbarLinear::program(const Tensor& weight, const Tensor& bias,
                             Rng& rng) {
  crossbar_.program(weight, rng);
  if (bias.defined()) {
    RIPPLE_CHECK(bias.rank() == 1 &&
                 bias.dim(0) == crossbar_.config().cols)
        << "CrossbarLinear bias shape mismatch";
    bias_ = bias.clone();
  } else {
    bias_ = Tensor();
  }
}

autograd::Variable CrossbarLinear::forward(const autograd::Variable& x) {
  RIPPLE_CHECK(programmed()) << "CrossbarLinear::forward before program()";
  RIPPLE_CHECK(x.value().rank() == 2 &&
               x.dim(1) == crossbar_.config().rows)
      << "CrossbarLinear expects [N," << crossbar_.config().rows << "], got "
      << shape_to_string(x.shape());
  Tensor y = crossbar_.matvec(x.value());
  if (bias_.defined()) {
    const int64_t n = y.dim(0);
    const int64_t cols = y.dim(1);
    float* py = y.data();
    const float* pb = bias_.data();
    for (int64_t i = 0; i < n; ++i)
      for (int64_t j = 0; j < cols; ++j) py[i * cols + j] += pb[j];
  }
  // Analog hardware output: constant w.r.t. the autograd graph.
  return autograd::Variable(std::move(y));
}

}  // namespace ripple::imc
