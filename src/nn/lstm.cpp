#include "nn/lstm.h"

#include <cmath>

#include "autograd/ops.h"
#include "tensor/random.h"

namespace ripple::nn {

LstmCell::LstmCell(int64_t input_size, int64_t hidden_size)
    : input_size_(input_size), hidden_size_(hidden_size) {
  RIPPLE_CHECK(input_size > 0 && hidden_size > 0)
      << "LstmCell dims must be positive";
  const float bound = 1.0f / std::sqrt(static_cast<float>(hidden_size));
  w_ih_ = &register_parameter(
      "weight_ih",
      Tensor::uniform({4 * hidden_size, input_size}, global_rng(), -bound,
                      bound),
      autograd::ParamKind::kWeight);
  w_hh_ = &register_parameter(
      "weight_hh",
      Tensor::uniform({4 * hidden_size, hidden_size}, global_rng(), -bound,
                      bound),
      autograd::ParamKind::kWeight);
  // Forget-gate bias starts at +1 (standard trick for gradient flow).
  Tensor bih = Tensor::uniform({4 * hidden_size}, global_rng(), -bound, bound);
  for (int64_t i = hidden_size; i < 2 * hidden_size; ++i)
    bih.data()[i] += 1.0f;
  b_ih_ = &register_parameter("bias_ih", std::move(bih),
                              autograd::ParamKind::kBias);
  b_hh_ = &register_parameter(
      "bias_hh", Tensor::uniform({4 * hidden_size}, global_rng(), -bound,
                                 bound),
      autograd::ParamKind::kBias);
}

LstmCell::State LstmCell::initial_state(int64_t n) const {
  return {autograd::Variable(Tensor::zeros({n, hidden_size_})),
          autograd::Variable(Tensor::zeros({n, hidden_size_}))};
}

LstmCell::State LstmCell::forward(const autograd::Variable& x,
                                  const State& prev) {
  namespace ag = ripple::autograd;
  ag::Variable wih = transform_ ? transform_(w_ih_->var) : w_ih_->var;
  ag::Variable whh = transform_ ? transform_(w_hh_->var) : w_hh_->var;
  ag::Variable gates =
      ag::add(ag::linear(x, wih, b_ih_->var),
              ag::linear(prev.h, whh, b_hh_->var));  // [N, 4H]
  const int64_t h = hidden_size_;
  ag::Variable i_gate = ag::sigmoid(ag::slice_cols(gates, 0, h));
  ag::Variable f_gate = ag::sigmoid(ag::slice_cols(gates, h, 2 * h));
  ag::Variable g_gate = ag::tanh_op(ag::slice_cols(gates, 2 * h, 3 * h));
  ag::Variable o_gate = ag::sigmoid(ag::slice_cols(gates, 3 * h, 4 * h));
  ag::Variable c_next =
      ag::add(ag::mul(f_gate, prev.c), ag::mul(i_gate, g_gate));
  ag::Variable h_next = ag::mul(o_gate, ag::tanh_op(c_next));
  return {h_next, c_next};
}

Lstm::Lstm(int64_t input_size, int64_t hidden_size, int64_t num_layers) {
  RIPPLE_CHECK(num_layers >= 1) << "Lstm needs >= 1 layer";
  for (int64_t l = 0; l < num_layers; ++l) {
    cells_.push_back(std::make_unique<LstmCell>(
        l == 0 ? input_size : hidden_size, hidden_size));
    register_module("cell" + std::to_string(l), *cells_.back());
  }
}

std::vector<autograd::Variable> Lstm::forward(const autograd::Variable& seq) {
  namespace ag = ripple::autograd;
  RIPPLE_CHECK(seq.value().rank() == 3) << "Lstm expects [N,T,F], got "
                                        << shape_to_string(seq.shape());
  const int64_t n = seq.dim(0);
  const int64_t steps = seq.dim(1);

  std::vector<ag::Variable> layer_in;
  layer_in.reserve(static_cast<size_t>(steps));
  for (int64_t t = 0; t < steps; ++t)
    layer_in.push_back(ag::select_time(seq, t));

  for (auto& cell : cells_) {
    LstmCell::State state = cell->initial_state(n);
    std::vector<ag::Variable> layer_out;
    layer_out.reserve(layer_in.size());
    for (const ag::Variable& x_t : layer_in) {
      state = cell->forward(x_t, state);
      layer_out.push_back(state.h);
    }
    layer_in = std::move(layer_out);
  }
  return layer_in;
}

autograd::Variable Lstm::forward_last(const autograd::Variable& seq) {
  std::vector<autograd::Variable> hs = forward(seq);
  RIPPLE_CHECK(!hs.empty()) << "empty sequence";
  return hs.back();
}

void Lstm::set_weight_transform(const WeightTransform& t) {
  for (auto& cell : cells_) cell->set_weight_transform(t);
}

}  // namespace ripple::nn
