// LSTM cell and multi-layer LSTM over [N,T,F] sequences.
#pragma once

#include <memory>
#include <vector>

#include "nn/layer.h"

namespace ripple::nn {

/// Single LSTM cell (gate order i, f, g, o). Weights are stored packed as
/// W_ih [4H, In] and W_hh [4H, H] so a weight transform (e.g. 8-bit
/// fake-quant) can be applied to each matrix as a unit.
class LstmCell : public autograd::Module {
 public:
  LstmCell(int64_t input_size, int64_t hidden_size);

  struct State {
    autograd::Variable h;
    autograd::Variable c;
  };

  /// One step: returns the new (h, c).
  State forward(const autograd::Variable& x, const State& prev);

  /// Zero initial state for a batch of n.
  State initial_state(int64_t n) const;

  void set_weight_transform(WeightTransform t) { transform_ = std::move(t); }

  int64_t input_size() const { return input_size_; }
  int64_t hidden_size() const { return hidden_size_; }

  autograd::Parameter& weight_ih() { return *w_ih_; }
  autograd::Parameter& weight_hh() { return *w_hh_; }

 private:
  int64_t input_size_;
  int64_t hidden_size_;
  autograd::Parameter* w_ih_ = nullptr;
  autograd::Parameter* w_hh_ = nullptr;
  autograd::Parameter* b_ih_ = nullptr;
  autograd::Parameter* b_hh_ = nullptr;
  WeightTransform transform_;
};

/// Stack of LSTM layers consuming a [N,T,F] sequence; exposes the hidden
/// sequence of the top layer.
class Lstm : public autograd::Module {
 public:
  Lstm(int64_t input_size, int64_t hidden_size, int64_t num_layers);

  /// Hidden states of the top layer for every timestep (length T).
  std::vector<autograd::Variable> forward(const autograd::Variable& seq);

  /// Convenience: last hidden state of the top layer, shape [N, H].
  autograd::Variable forward_last(const autograd::Variable& seq);

  void set_weight_transform(const WeightTransform& t);

  LstmCell& cell(size_t layer) { return *cells_.at(layer); }
  size_t num_layers() const { return cells_.size(); }

 private:
  std::vector<std::unique_ptr<LstmCell>> cells_;
};

}  // namespace ripple::nn
