// Dropout layers.
//
// Dropout is the Bayesian-approximation mechanism of the baselines the
// paper compares against: element-wise MC-Dropout corresponds to
// SpinDrop [8]; channel-wise spatial dropout corresponds to
// SpatialSpinDrop [7]. Both use inverted scaling (·1/(1−p)) and stay
// *active at inference* when `mc_mode` is on, which is how Bayesian
// MC-sampling is realized.
#pragma once

#include "nn/layer.h"
#include "tensor/random.h"

namespace ripple::nn {

/// Element-wise Bernoulli dropout.
class Dropout : public Layer {
 public:
  explicit Dropout(float p, Rng* rng = nullptr);

  autograd::Variable forward(const autograd::Variable& x) override;

  /// When true, masks are sampled in eval mode too (MC-Dropout inference).
  void set_mc_mode(bool on) { mc_mode_ = on; }
  bool mc_mode() const { return mc_mode_; }
  float p() const { return p_; }

 private:
  bool active() const { return training() || mc_mode_; }

  float p_;
  bool mc_mode_ = false;
  Rng* rng_;
};

/// Spatial (channel-wise) dropout: drops whole feature maps of [N,C,...]
/// tensors — one Bernoulli draw per (sample, channel).
class SpatialDropout : public Layer {
 public:
  explicit SpatialDropout(float p, Rng* rng = nullptr);

  autograd::Variable forward(const autograd::Variable& x) override;

  void set_mc_mode(bool on) { mc_mode_ = on; }
  bool mc_mode() const { return mc_mode_; }
  float p() const { return p_; }

 private:
  bool active() const { return training() || mc_mode_; }

  float p_;
  bool mc_mode_ = false;
  Rng* rng_;
};

}  // namespace ripple::nn
