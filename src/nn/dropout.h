// Dropout layers.
//
// Dropout is the Bayesian-approximation mechanism of the baselines the
// paper compares against: element-wise MC-Dropout corresponds to
// SpinDrop [8]; channel-wise spatial dropout corresponds to
// SpatialSpinDrop [7]. Both use inverted scaling (·1/(1−p)) and stay
// *active at inference* when `mc_mode` is on, which is how Bayesian
// MC-sampling is realized.
//
// Like core::InvertedNorm, both layers can be bound to a slot of a
// thread-local McStreamContext (core/mc_stream.h). While a context is
// active, masks come from deterministic per-layer/per-invocation streams
// with one sub-stream per folded Monte-Carlo replica, so the batched MC
// forward samples bit-identical masks to the serial reference — and
// concurrent passes never share RNG state.
#pragma once

#include "nn/layer.h"
#include "tensor/random.h"

namespace ripple::nn {

/// Element-wise Bernoulli dropout.
class Dropout : public Layer {
 public:
  explicit Dropout(float p, Rng* rng = nullptr);

  autograd::Variable forward(const autograd::Variable& x) override;

  /// When true, masks are sampled in eval mode too (MC-Dropout inference).
  void set_mc_mode(bool on) { mc_mode_ = on; }
  bool mc_mode() const { return mc_mode_; }

  /// Binds this layer to slot `slot` of any active McStreamContext; -1
  /// (default) unbinds. Set once by the serving session, not per pass.
  void set_stream_slot(int slot) { stream_slot_ = slot; }
  int stream_slot() const { return stream_slot_; }

  float p() const { return p_; }

 private:
  bool active() const { return training() || mc_mode_; }

  float p_;
  bool mc_mode_ = false;
  int stream_slot_ = -1;
  Rng* rng_;
};

/// Spatial (channel-wise) dropout: drops whole feature maps of [N,C,...]
/// tensors — one Bernoulli draw per (sample, channel).
class SpatialDropout : public Layer {
 public:
  explicit SpatialDropout(float p, Rng* rng = nullptr);

  autograd::Variable forward(const autograd::Variable& x) override;

  void set_mc_mode(bool on) { mc_mode_ = on; }
  bool mc_mode() const { return mc_mode_; }

  void set_stream_slot(int slot) { stream_slot_ = slot; }
  int stream_slot() const { return stream_slot_; }

  float p() const { return p_; }

 private:
  bool active() const { return training() || mc_mode_; }

  float p_;
  bool mc_mode_ = false;
  int stream_slot_ = -1;
  Rng* rng_;
};

}  // namespace ripple::nn
