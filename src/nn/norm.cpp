#include "nn/norm.h"

#include "autograd/ops.h"

namespace ripple::nn {

BatchNorm::BatchNorm(int64_t channels, float momentum, float eps)
    : channels_(channels), momentum_(momentum), eps_(eps) {
  RIPPLE_CHECK(channels > 0) << "BatchNorm channels must be positive";
  gamma_ = &register_parameter("gamma", Tensor::ones({channels}),
                               autograd::ParamKind::kAffineWeight);
  beta_ = &register_parameter("beta", Tensor::zeros({channels}),
                              autograd::ParamKind::kAffineBias);
  running_mean_ = Tensor::zeros({channels});
  running_var_ = Tensor::ones({channels});
  register_buffer("running_mean", running_mean_);
  register_buffer("running_var", running_var_);
}

autograd::Variable BatchNorm::forward(const autograd::Variable& x) {
  RIPPLE_CHECK(x.dim(1) == channels_)
      << "BatchNorm expects " << channels_ << " channels, got " << x.dim(1);
  autograd::Variable xhat = autograd::batch_normalize(
      x, running_mean_, running_var_, training(), momentum_, eps_);
  return autograd::add_channel(autograd::mul_channel(xhat, gamma_->var),
                               beta_->var);
}

LayerNorm::LayerNorm(int64_t channels, float eps)
    : channels_(channels), eps_(eps) {
  RIPPLE_CHECK(channels > 0) << "LayerNorm channels must be positive";
  gamma_ = &register_parameter("gamma", Tensor::ones({channels}),
                               autograd::ParamKind::kAffineWeight);
  beta_ = &register_parameter("beta", Tensor::zeros({channels}),
                              autograd::ParamKind::kAffineBias);
}

autograd::Variable LayerNorm::forward(const autograd::Variable& x) {
  RIPPLE_CHECK(x.dim(1) == channels_)
      << "LayerNorm expects " << channels_ << " channels, got " << x.dim(1);
  autograd::Variable xhat = autograd::group_normalize(x, /*groups=*/1, eps_);
  return autograd::add_channel(autograd::mul_channel(xhat, gamma_->var),
                               beta_->var);
}

GroupNorm::GroupNorm(int64_t channels, int64_t groups, float eps)
    : channels_(channels), groups_(groups), eps_(eps) {
  RIPPLE_CHECK(channels > 0 && groups > 0 && channels % groups == 0)
      << "GroupNorm: " << channels << " channels not divisible by " << groups
      << " groups";
  gamma_ = &register_parameter("gamma", Tensor::ones({channels}),
                               autograd::ParamKind::kAffineWeight);
  beta_ = &register_parameter("beta", Tensor::zeros({channels}),
                              autograd::ParamKind::kAffineBias);
}

autograd::Variable GroupNorm::forward(const autograd::Variable& x) {
  RIPPLE_CHECK(x.dim(1) == channels_)
      << "GroupNorm expects " << channels_ << " channels, got " << x.dim(1);
  autograd::Variable xhat = autograd::group_normalize(x, groups_, eps_);
  return autograd::add_channel(autograd::mul_channel(xhat, gamma_->var),
                               beta_->var);
}

InstanceNorm::InstanceNorm(int64_t channels, float eps)
    : inner_(channels, /*groups=*/channels, eps) {
  register_module("inner", inner_);
}

autograd::Variable InstanceNorm::forward(const autograd::Variable& x) {
  return inner_.forward(x);
}

}  // namespace ripple::nn
