#include "nn/activation.h"

#include <vector>

#include "autograd/ops.h"
#include "core/lazy_stem.h"
#include "core/mc_stream.h"
#include "tensor/ops.h"

namespace ripple::nn {

autograd::Variable Relu::forward(const autograd::Variable& x) {
  return autograd::relu(x);
}

autograd::Variable Sigmoid::forward(const autograd::Variable& x) {
  return autograd::sigmoid(x);
}

autograd::Variable Tanh::forward(const autograd::Variable& x) {
  return autograd::tanh_op(x);
}

autograd::Variable Identity::forward(const autograd::Variable& x) {
  return x;
}

namespace {

/// Stream-context noise: draws derive from (session seed, slot, invocation,
/// replica) — plus the injector's per-run salt — instead of a shared
/// generator, so concurrent noisy passes never race and a pinned
/// per-request stream reproduces the same noise from any thread. One
/// generator per folded MC replica, shared across the three noise tensors,
/// so a batched [t·N, ...] pass replays the serial per-replica draw order
/// exactly (the dropout layers' contract).
autograd::Variable apply_context_noise(const autograd::Variable& x,
                                       ActivationNoiseConfig& cfg,
                                       core::McStreamContext& ctx) {
  // Noise tensors are replica-dependent: expand a lazy stem input here.
  const autograd::Variable xin =
      core::lazy_stem_pending(x.dim(0)) ? core::replicate_stem(x) : x;
  const uint64_t inv_seed = core::mc_salted_seed(
      ctx.next_invocation_seed(static_cast<size_t>(cfg.stream_slot)),
      cfg.stream_salt);
  const int64_t t = ctx.replicas();
  RIPPLE_CHECK(xin.dim(0) % t == 0)
      << "activation noise: batch " << xin.dim(0) << " not divisible into "
      << t << " MC replicas";
  const int64_t block = xin.value().numel() / t;
  std::vector<Rng> subs;
  subs.reserve(static_cast<size_t>(t));
  for (int64_t r = 0; r < t; ++r)
    subs.emplace_back(core::mc_chunk_seed(
        core::mc_replica_seed(inv_seed, ctx.replica_offset() + r),
        ctx.chunk_offset()));
  const auto draw = [&](auto&& fill) {
    Tensor noise = Tensor::empty(xin.shape());
    for (int64_t r = 0; r < t; ++r)
      fill(noise.data() + r * block, subs[static_cast<size_t>(r)]);
    return noise;
  };
  autograd::Variable y = xin;
  if (cfg.multiplicative_std > 0.0f) {
    Tensor factor = draw([&](float* p, Rng& rng) {
      for (int64_t i = 0; i < block; ++i)
        p[i] = rng.normal(1.0f, cfg.multiplicative_std);
    });
    y = autograd::mul(y, autograd::Variable(std::move(factor)));
  }
  if (cfg.additive_std > 0.0f) {
    Tensor offset = draw([&](float* p, Rng& rng) {
      for (int64_t i = 0; i < block; ++i)
        p[i] = rng.normal(0.0f, cfg.additive_std);
    });
    y = autograd::add(y, autograd::Variable(std::move(offset)));
  }
  if (cfg.uniform_range > 0.0f) {
    Tensor offset = draw([&](float* p, Rng& rng) {
      for (int64_t i = 0; i < block; ++i)
        p[i] = rng.uniform(-cfg.uniform_range, cfg.uniform_range);
    });
    y = autograd::add(y, autograd::Variable(std::move(offset)));
  }
  return y;
}

}  // namespace

autograd::Variable apply_activation_noise(const autograd::Variable& x,
                                          ActivationNoiseConfig& cfg) {
  if (core::McStreamContext* ctx = core::active_mc_stream();
      ctx != nullptr && cfg.stream_slot >= 0)
    return apply_context_noise(x, cfg, *ctx);
  autograd::Variable y = x;
  Rng& rng = cfg.generator();
  if (cfg.multiplicative_std > 0.0f) {
    // y *= (1 + n), n ~ N(0, σ_mul)
    Tensor factor =
        Tensor::randn(y.shape(), rng, 1.0f, cfg.multiplicative_std);
    y = autograd::mul(y, autograd::Variable(std::move(factor)));
  }
  if (cfg.additive_std > 0.0f) {
    Tensor offset = Tensor::randn(y.shape(), rng, 0.0f, cfg.additive_std);
    y = autograd::add(y, autograd::Variable(std::move(offset)));
  }
  if (cfg.uniform_range > 0.0f) {
    Tensor offset = Tensor::uniform(y.shape(), rng, -cfg.uniform_range,
                                    cfg.uniform_range);
    y = autograd::add(y, autograd::Variable(std::move(offset)));
  }
  return y;
}

SignActivation::SignActivation(ActivationNoisePtr noise, float ste_clip)
    : noise_(std::move(noise)), ste_clip_(ste_clip) {}

autograd::Variable SignActivation::forward(const autograd::Variable& x) {
  autograd::Variable y = x;
  if (noise_ != nullptr && noise_->enabled)
    y = apply_activation_noise(y, *noise_);
  return autograd::sign_ste(y, ste_clip_);
}

}  // namespace ripple::nn
