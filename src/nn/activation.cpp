#include "nn/activation.h"

#include "autograd/ops.h"
#include "tensor/ops.h"

namespace ripple::nn {

autograd::Variable Relu::forward(const autograd::Variable& x) {
  return autograd::relu(x);
}

autograd::Variable Sigmoid::forward(const autograd::Variable& x) {
  return autograd::sigmoid(x);
}

autograd::Variable Tanh::forward(const autograd::Variable& x) {
  return autograd::tanh_op(x);
}

autograd::Variable Identity::forward(const autograd::Variable& x) {
  return x;
}

autograd::Variable apply_activation_noise(const autograd::Variable& x,
                                          ActivationNoiseConfig& cfg) {
  autograd::Variable y = x;
  Rng& rng = cfg.generator();
  if (cfg.multiplicative_std > 0.0f) {
    // y *= (1 + n), n ~ N(0, σ_mul)
    Tensor factor =
        Tensor::randn(y.shape(), rng, 1.0f, cfg.multiplicative_std);
    y = autograd::mul(y, autograd::Variable(std::move(factor)));
  }
  if (cfg.additive_std > 0.0f) {
    Tensor offset = Tensor::randn(y.shape(), rng, 0.0f, cfg.additive_std);
    y = autograd::add(y, autograd::Variable(std::move(offset)));
  }
  if (cfg.uniform_range > 0.0f) {
    Tensor offset = Tensor::uniform(y.shape(), rng, -cfg.uniform_range,
                                    cfg.uniform_range);
    y = autograd::add(y, autograd::Variable(std::move(offset)));
  }
  return y;
}

SignActivation::SignActivation(ActivationNoisePtr noise, float ste_clip)
    : noise_(std::move(noise)), ste_clip_(ste_clip) {}

autograd::Variable SignActivation::forward(const autograd::Variable& x) {
  autograd::Variable y = x;
  if (noise_ != nullptr && noise_->enabled)
    y = apply_activation_noise(y, *noise_);
  return autograd::sign_ste(y, ste_clip_);
}

}  // namespace ripple::nn
