#include "nn/dropout.h"

#include "autograd/ops.h"

namespace ripple::nn {

Dropout::Dropout(float p, Rng* rng) : p_(p), rng_(rng) {
  RIPPLE_CHECK(p >= 0.0f && p < 1.0f) << "dropout p must be in [0,1), got "
                                      << p;
}

autograd::Variable Dropout::forward(const autograd::Variable& x) {
  if (!active() || p_ == 0.0f) return x;
  Rng& rng = rng_ != nullptr ? *rng_ : global_rng();
  Tensor mask = Tensor::bernoulli(x.shape(), rng, 1.0f - p_);
  return autograd::apply_mask(x, mask, 1.0f / (1.0f - p_));
}

SpatialDropout::SpatialDropout(float p, Rng* rng) : p_(p), rng_(rng) {
  RIPPLE_CHECK(p >= 0.0f && p < 1.0f)
      << "spatial dropout p must be in [0,1), got " << p;
}

autograd::Variable SpatialDropout::forward(const autograd::Variable& x) {
  if (!active() || p_ == 0.0f) return x;
  RIPPLE_CHECK(x.value().rank() >= 2)
      << "SpatialDropout needs [N,C,...] input";
  Rng& rng = rng_ != nullptr ? *rng_ : global_rng();
  const int64_t n = x.dim(0);
  const int64_t c = x.dim(1);
  int64_t inner = 1;
  for (int d = 2; d < x.value().rank(); ++d) inner *= x.dim(d);
  Tensor mask(x.shape());
  float* pm = mask.data();
  for (int64_t i = 0; i < n * c; ++i) {
    const float keep = rng.bernoulli(1.0f - p_) ? 1.0f : 0.0f;
    for (int64_t k = 0; k < inner; ++k) pm[i * inner + k] = keep;
  }
  return autograd::apply_mask(x, mask, 1.0f / (1.0f - p_));
}

}  // namespace ripple::nn
