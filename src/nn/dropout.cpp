#include "nn/dropout.h"

#include "autograd/ops.h"
#include "core/lazy_stem.h"
#include "core/mc_stream.h"

namespace ripple::nn {

namespace {

/// Fills mask[0..numel) element-wise with Bernoulli(1−p) keep indicators.
void fill_element_mask(float* mask, int64_t numel, float p, Rng& rng) {
  for (int64_t i = 0; i < numel; ++i)
    mask[i] = rng.bernoulli(1.0f - p) ? 1.0f : 0.0f;
}

/// Fills a [rows, inner] block with one Bernoulli(1−p) draw per row,
/// broadcast across the row (spatial dropout: row = (sample, channel)).
void fill_row_mask(float* mask, int64_t rows, int64_t inner, float p,
                   Rng& rng) {
  for (int64_t r = 0; r < rows; ++r) {
    const float keep = rng.bernoulli(1.0f - p) ? 1.0f : 0.0f;
    for (int64_t k = 0; k < inner; ++k) mask[r * inner + k] = keep;
  }
}

/// Draws the context-mode mask: one independent sub-stream per folded MC
/// replica, so replica r's block is bit-identical whether it is part of a
/// batched [t·N, ...] pass (replicas > 1) or its own serial [N, ...] pass
/// (replicas == 1, replica_offset == r). The chunk offset folds in so a
/// request split into chunks never repeats masks across them (these masks
/// are row-dependent, unlike the affine pairs). `fill` writes one replica
/// block from one Rng.
template <typename Fill>
Tensor context_mask(const Shape& shape, int64_t rows,
                    core::McStreamContext& ctx, uint64_t invocation_seed,
                    const Fill& fill) {
  const int64_t t = ctx.replicas();
  RIPPLE_CHECK(rows % t == 0) << "dropout: batch " << rows
                              << " not divisible into " << t
                              << " MC replicas";
  Tensor mask = Tensor::empty(shape);
  const int64_t block = mask.numel() / t;
  for (int64_t r = 0; r < t; ++r) {
    Rng sub(core::mc_chunk_seed(
        core::mc_replica_seed(invocation_seed, ctx.replica_offset() + r),
        ctx.chunk_offset()));
    fill(mask.data() + r * block, block, sub);
  }
  return mask;
}

}  // namespace

Dropout::Dropout(float p, Rng* rng) : p_(p), rng_(rng) {
  RIPPLE_CHECK(p >= 0.0f && p < 1.0f) << "dropout p must be in [0,1), got "
                                      << p;
}

autograd::Variable Dropout::forward(const autograd::Variable& x) {
  if (!active() || p_ == 0.0f) return x;
  const float scale = 1.0f / (1.0f - p_);
  core::McStreamContext* ctx = core::active_mc_stream();
  if (ctx != nullptr && stream_slot_ >= 0) {
    // Element masks are replica-dependent: expand a lazy stem input here.
    const autograd::Variable xin =
        core::lazy_stem_pending(x.dim(0)) ? core::replicate_stem(x) : x;
    const uint64_t inv_seed =
        ctx->next_invocation_seed(static_cast<size_t>(stream_slot_));
    Tensor mask = context_mask(
        xin.shape(), xin.dim(0), *ctx, inv_seed,
        [this](float* m, int64_t numel, Rng& rng) {
          fill_element_mask(m, numel, p_, rng);
        });
    return autograd::apply_mask(xin, mask, scale);
  }
  Rng& rng = rng_ != nullptr ? *rng_ : global_rng();
  Tensor mask = Tensor::bernoulli(x.shape(), rng, 1.0f - p_);
  return autograd::apply_mask(x, mask, scale);
}

SpatialDropout::SpatialDropout(float p, Rng* rng) : p_(p), rng_(rng) {
  RIPPLE_CHECK(p >= 0.0f && p < 1.0f)
      << "spatial dropout p must be in [0,1), got " << p;
}

autograd::Variable SpatialDropout::forward(const autograd::Variable& x) {
  if (!active() || p_ == 0.0f) return x;
  RIPPLE_CHECK(x.value().rank() >= 2)
      << "SpatialDropout needs [N,C,...] input";
  const float scale = 1.0f / (1.0f - p_);
  const int64_t n = x.dim(0);
  const int64_t c = x.dim(1);
  int64_t inner = 1;
  for (int d = 2; d < x.value().rank(); ++d) inner *= x.dim(d);
  core::McStreamContext* ctx = core::active_mc_stream();
  if (ctx != nullptr && stream_slot_ >= 0) {
    // Row masks are replica-dependent: expand a lazy stem input here.
    const autograd::Variable xin =
        core::lazy_stem_pending(n) ? core::replicate_stem(x) : x;
    const uint64_t inv_seed =
        ctx->next_invocation_seed(static_cast<size_t>(stream_slot_));
    Tensor mask = context_mask(
        xin.shape(), xin.dim(0), *ctx, inv_seed,
        [this, inner](float* m, int64_t numel, Rng& rng) {
          fill_row_mask(m, numel / inner, inner, p_, rng);
        });
    return autograd::apply_mask(xin, mask, scale);
  }
  Rng& rng = rng_ != nullptr ? *rng_ : global_rng();
  Tensor mask(x.shape());
  float* pm = mask.data();
  fill_row_mask(pm, n * c, inner, p_, rng);
  return autograd::apply_mask(x, mask, scale);
}

}  // namespace ripple::nn
