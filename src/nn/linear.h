// Fully-connected layer.
#pragma once

#include "nn/layer.h"

namespace ripple::nn {

/// y = x · Wᵀ + b, with an optional weight transform (binarize / quantize)
/// applied to W on every forward.
class Linear : public Layer {
 public:
  /// Kaiming-uniform initialization. `bias=false` omits the bias term.
  Linear(int64_t in_features, int64_t out_features, bool bias = true);

  autograd::Variable forward(const autograd::Variable& x) override;

  void set_weight_transform(WeightTransform t) { transform_ = std::move(t); }

  autograd::Parameter& weight() { return *weight_; }
  autograd::Parameter* bias() { return bias_; }

  int64_t in_features() const { return in_features_; }
  int64_t out_features() const { return out_features_; }

 private:
  int64_t in_features_;
  int64_t out_features_;
  autograd::Parameter* weight_ = nullptr;
  autograd::Parameter* bias_ = nullptr;
  WeightTransform transform_;
};

}  // namespace ripple::nn
