// Conventional normalization layers (normalize first, affine after).
//
// These are the baselines the paper's InvertedNorm (src/core/inverted_norm.h)
// is compared against. All four share the per-channel affine pair (γ, β)
// initialized to ones/zeros, the standard deep-learning convention.
#pragma once

#include "nn/layer.h"

namespace ripple::nn {

/// BatchNorm over (N, spatial) per channel, with running statistics for
/// eval mode. Supports [N,C], [N,C,L] and [N,C,H,W].
class BatchNorm : public Layer {
 public:
  explicit BatchNorm(int64_t channels, float momentum = 0.1f,
                     float eps = 1e-5f);

  autograd::Variable forward(const autograd::Variable& x) override;

  Tensor& running_mean() { return running_mean_; }
  Tensor& running_var() { return running_var_; }
  autograd::Parameter& gamma() { return *gamma_; }
  autograd::Parameter& beta() { return *beta_; }

 private:
  int64_t channels_;
  float momentum_;
  float eps_;
  autograd::Parameter* gamma_ = nullptr;
  autograd::Parameter* beta_ = nullptr;
  Tensor running_mean_;
  Tensor running_var_;
};

/// LayerNorm: per-instance statistics over all non-batch dims (groups=1),
/// then per-channel affine.
class LayerNorm : public Layer {
 public:
  explicit LayerNorm(int64_t channels, float eps = 1e-5f);
  autograd::Variable forward(const autograd::Variable& x) override;

 private:
  int64_t channels_;
  float eps_;
  autograd::Parameter* gamma_ = nullptr;
  autograd::Parameter* beta_ = nullptr;
};

/// GroupNorm: statistics per (instance, channel group).
class GroupNorm : public Layer {
 public:
  GroupNorm(int64_t channels, int64_t groups, float eps = 1e-5f);
  autograd::Variable forward(const autograd::Variable& x) override;

 private:
  int64_t channels_;
  int64_t groups_;
  float eps_;
  autograd::Parameter* gamma_ = nullptr;
  autograd::Parameter* beta_ = nullptr;
};

/// InstanceNorm: statistics per (instance, channel) = GroupNorm with
/// groups == channels.
class InstanceNorm : public Layer {
 public:
  explicit InstanceNorm(int64_t channels, float eps = 1e-5f);
  autograd::Variable forward(const autograd::Variable& x) override;

 private:
  GroupNorm inner_;
};

}  // namespace ripple::nn
