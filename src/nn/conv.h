// 1-d and 2-d convolution layers.
#pragma once

#include "nn/layer.h"

namespace ripple::nn {

/// 2-d convolution over [N,Cin,H,W] with square kernels.
class Conv2d : public Layer {
 public:
  Conv2d(int64_t in_channels, int64_t out_channels, int64_t kernel,
         int64_t stride = 1, int64_t pad = 0, bool bias = true);

  autograd::Variable forward(const autograd::Variable& x) override;

  void set_weight_transform(WeightTransform t) { transform_ = std::move(t); }
  autograd::Parameter& weight() { return *weight_; }
  autograd::Parameter* bias() { return bias_; }

  int64_t in_channels() const { return in_channels_; }
  int64_t out_channels() const { return out_channels_; }
  int64_t kernel() const { return kernel_; }
  int64_t stride() const { return stride_; }
  int64_t pad() const { return pad_; }

 private:
  int64_t in_channels_;
  int64_t out_channels_;
  int64_t kernel_;
  int64_t stride_;
  int64_t pad_;
  autograd::Parameter* weight_ = nullptr;
  autograd::Parameter* bias_ = nullptr;
  WeightTransform transform_;
};

/// 1-d convolution over [N,Cin,L].
class Conv1d : public Layer {
 public:
  Conv1d(int64_t in_channels, int64_t out_channels, int64_t kernel,
         int64_t stride = 1, int64_t pad = 0, bool bias = true);

  autograd::Variable forward(const autograd::Variable& x) override;

  void set_weight_transform(WeightTransform t) { transform_ = std::move(t); }
  autograd::Parameter& weight() { return *weight_; }
  autograd::Parameter* bias() { return bias_; }

 private:
  int64_t in_channels_;
  int64_t out_channels_;
  int64_t kernel_;
  int64_t stride_;
  int64_t pad_;
  autograd::Parameter* weight_ = nullptr;
  autograd::Parameter* bias_ = nullptr;
  WeightTransform transform_;
};

}  // namespace ripple::nn
