// Pooling layers.
#pragma once

#include "nn/layer.h"

namespace ripple::nn {

class MaxPool2d : public Layer {
 public:
  explicit MaxPool2d(int64_t kernel, int64_t stride = -1)
      : kernel_(kernel), stride_(stride < 0 ? kernel : stride) {}
  autograd::Variable forward(const autograd::Variable& x) override;

 private:
  int64_t kernel_;
  int64_t stride_;
};

class MaxPool1d : public Layer {
 public:
  explicit MaxPool1d(int64_t kernel, int64_t stride = -1)
      : kernel_(kernel), stride_(stride < 0 ? kernel : stride) {}
  autograd::Variable forward(const autograd::Variable& x) override;

 private:
  int64_t kernel_;
  int64_t stride_;
};

class AvgPool2d : public Layer {
 public:
  explicit AvgPool2d(int64_t kernel, int64_t stride = -1)
      : kernel_(kernel), stride_(stride < 0 ? kernel : stride) {}
  autograd::Variable forward(const autograd::Variable& x) override;

 private:
  int64_t kernel_;
  int64_t stride_;
};

/// [N,C,H,W] -> [N,C].
class GlobalAvgPool2d : public Layer {
 public:
  autograd::Variable forward(const autograd::Variable& x) override;
};

/// [N,C,L] -> [N,C].
class GlobalAvgPool1d : public Layer {
 public:
  autograd::Variable forward(const autograd::Variable& x) override;
};

}  // namespace ripple::nn
