#include "nn/linear.h"

#include <cmath>

#include "autograd/ops.h"
#include "tensor/random.h"

namespace ripple::nn {

Linear::Linear(int64_t in_features, int64_t out_features, bool bias)
    : in_features_(in_features), out_features_(out_features) {
  RIPPLE_CHECK(in_features > 0 && out_features > 0)
      << "Linear dims must be positive";
  const float bound =
      1.0f / std::sqrt(static_cast<float>(in_features));
  weight_ = &register_parameter(
      "weight",
      Tensor::uniform({out_features, in_features}, global_rng(), -bound,
                      bound),
      autograd::ParamKind::kWeight);
  if (bias) {
    bias_ = &register_parameter(
        "bias", Tensor::uniform({out_features}, global_rng(), -bound, bound),
        autograd::ParamKind::kBias);
  }
}

autograd::Variable Linear::forward(const autograd::Variable& x) {
  autograd::Variable w =
      transform_ ? transform_(weight_->var) : weight_->var;
  return autograd::linear(x, w,
                          bias_ != nullptr ? bias_->var : autograd::Variable());
}

}  // namespace ripple::nn
