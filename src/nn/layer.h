// Layer interface and Sequential container.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "autograd/module.h"
#include "autograd/variable.h"

namespace ripple::nn {

/// A module with a single-tensor forward. Recurrent layers (LSTM) do not
/// implement this interface; they operate on sequences.
class Layer : public autograd::Module {
 public:
  virtual autograd::Variable forward(const autograd::Variable& x) = 0;
};

/// Owns an ordered list of layers and applies them in sequence.
class Sequential : public Layer {
 public:
  Sequential() = default;

  /// Constructs L in place, registers it, and returns a reference.
  template <typename L, typename... Args>
  L& emplace(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L& ref = *layer;
    register_module("layer" + std::to_string(layers_.size()), ref);
    layers_.push_back(std::move(layer));
    return ref;
  }

  autograd::Variable forward(const autograd::Variable& x) override {
    autograd::Variable y = x;
    for (auto& layer : layers_) y = layer->forward(y);
    return y;
  }

  size_t size() const { return layers_.size(); }
  Layer& at(size_t i) { return *layers_.at(i); }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

/// Weight transformation hook applied at every forward (e.g. binarization
/// or fake quantization for QAT). Null means identity.
using WeightTransform =
    std::function<autograd::Variable(const autograd::Variable&)>;

}  // namespace ripple::nn
