#include "nn/pooling.h"

#include "autograd/ops.h"

namespace ripple::nn {

autograd::Variable MaxPool2d::forward(const autograd::Variable& x) {
  return autograd::maxpool2d(x, kernel_, stride_);
}

autograd::Variable MaxPool1d::forward(const autograd::Variable& x) {
  return autograd::maxpool1d(x, kernel_, stride_);
}

autograd::Variable AvgPool2d::forward(const autograd::Variable& x) {
  return autograd::avgpool2d(x, kernel_, stride_);
}

autograd::Variable GlobalAvgPool2d::forward(const autograd::Variable& x) {
  return autograd::global_avg_pool2d(x);
}

autograd::Variable GlobalAvgPool1d::forward(const autograd::Variable& x) {
  return autograd::global_avg_pool1d(x);
}

}  // namespace ripple::nn
