// Activation-level noise injection hook.
//
// The paper injects NVM conductance variation into *normalized activations
// before the Sign function* for binary networks (§IV-A2). Layers that
// support this (SignActivation, InvertedNorm) hold a shared
// ActivationNoiseConfig; the fault-injection harness flips `enabled` and
// sets the strengths, so no layer rewiring is needed per experiment.
#pragma once

#include <memory>

#include "tensor/random.h"

namespace ripple::nn {

struct ActivationNoiseConfig {
  bool enabled = false;
  /// N(0, additive_std) added to the activation.
  float additive_std = 0.0f;
  /// Activation multiplied by (1 + N(0, multiplicative_std)).
  float multiplicative_std = 0.0f;
  /// U(-uniform_range, +uniform_range) added to the activation.
  float uniform_range = 0.0f;
  /// Generator used for draws; falls back to global_rng() when null.
  Rng* rng = nullptr;

  Rng& generator() { return rng != nullptr ? *rng : global_rng(); }
};

using ActivationNoisePtr = std::shared_ptr<ActivationNoiseConfig>;

}  // namespace ripple::nn
