// Activation-level noise injection hook.
//
// The paper injects NVM conductance variation into *normalized activations
// before the Sign function* for binary networks (§IV-A2). Layers that
// support this (SignActivation, InvertedNorm) hold a shared
// ActivationNoiseConfig; the fault-injection harness flips `enabled` and
// sets the strengths, so no layer rewiring is needed per experiment.
//
// Like the stochastic layers, the config can be bound to a slot of a
// thread-local McStreamContext (core/mc_stream.h). While a context is
// active and the slot is bound, draws come from deterministic
// per-invocation streams with one sub-stream per folded Monte-Carlo
// replica — noisy serving is then concurrency-safe and reproducible
// per request, instead of serializing on the shared generator below.
#pragma once

#include <cstdint>
#include <memory>

#include "tensor/random.h"

namespace ripple::nn {

struct ActivationNoiseConfig {
  bool enabled = false;
  /// N(0, additive_std) added to the activation.
  float additive_std = 0.0f;
  /// Activation multiplied by (1 + N(0, multiplicative_std)).
  float multiplicative_std = 0.0f;
  /// U(-uniform_range, +uniform_range) added to the activation.
  float uniform_range = 0.0f;
  /// Generator used for draws when no stream context is active; falls back
  /// to global_rng() when null.
  Rng* rng = nullptr;
  /// Slot in any active McStreamContext; -1 (default) unbound. Set once by
  /// the serving session, like the stochastic layers' stream slots.
  int stream_slot = -1;
  /// Experiment-level salt mixed into the stream derivation (identity at
  /// 0). The fault injector stamps a fresh value per chip instance so
  /// stream-bound noise still varies across Monte-Carlo runs.
  uint64_t stream_salt = 0;

  Rng& generator() { return rng != nullptr ? *rng : global_rng(); }
};

using ActivationNoisePtr = std::shared_ptr<ActivationNoiseConfig>;

}  // namespace ripple::nn
