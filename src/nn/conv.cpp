#include "nn/conv.h"

#include <cmath>

#include "autograd/ops.h"
#include "tensor/random.h"

namespace ripple::nn {
namespace {

float kaiming_bound(int64_t fan_in) {
  return 1.0f / std::sqrt(static_cast<float>(fan_in));
}

}  // namespace

Conv2d::Conv2d(int64_t in_channels, int64_t out_channels, int64_t kernel,
               int64_t stride, int64_t pad, bool bias)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      pad_(pad) {
  RIPPLE_CHECK(in_channels > 0 && out_channels > 0 && kernel > 0)
      << "Conv2d dims must be positive";
  const float bound = kaiming_bound(in_channels * kernel * kernel);
  weight_ = &register_parameter(
      "weight",
      Tensor::uniform({out_channels, in_channels, kernel, kernel},
                      global_rng(), -bound, bound),
      autograd::ParamKind::kWeight);
  if (bias) {
    bias_ = &register_parameter(
        "bias", Tensor::uniform({out_channels}, global_rng(), -bound, bound),
        autograd::ParamKind::kBias);
  }
}

autograd::Variable Conv2d::forward(const autograd::Variable& x) {
  autograd::Variable w = transform_ ? transform_(weight_->var) : weight_->var;
  return autograd::conv2d(
      x, w, bias_ != nullptr ? bias_->var : autograd::Variable(), stride_,
      pad_);
}

Conv1d::Conv1d(int64_t in_channels, int64_t out_channels, int64_t kernel,
               int64_t stride, int64_t pad, bool bias)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      pad_(pad) {
  RIPPLE_CHECK(in_channels > 0 && out_channels > 0 && kernel > 0)
      << "Conv1d dims must be positive";
  const float bound = kaiming_bound(in_channels * kernel);
  weight_ = &register_parameter(
      "weight",
      Tensor::uniform({out_channels, in_channels, kernel}, global_rng(),
                      -bound, bound),
      autograd::ParamKind::kWeight);
  if (bias) {
    bias_ = &register_parameter(
        "bias", Tensor::uniform({out_channels}, global_rng(), -bound, bound),
        autograd::ParamKind::kBias);
  }
}

autograd::Variable Conv1d::forward(const autograd::Variable& x) {
  autograd::Variable w = transform_ ? transform_(weight_->var) : weight_->var;
  return autograd::conv1d(
      x, w, bias_ != nullptr ? bias_->var : autograd::Variable(), stride_,
      pad_);
}

}  // namespace ripple::nn
