// Activation layers.
#pragma once

#include "nn/layer.h"
#include "nn/noise.h"

namespace ripple::nn {

class Relu : public Layer {
 public:
  autograd::Variable forward(const autograd::Variable& x) override;
};

class Sigmoid : public Layer {
 public:
  autograd::Variable forward(const autograd::Variable& x) override;
};

class Tanh : public Layer {
 public:
  autograd::Variable forward(const autograd::Variable& x) override;
};

class Identity : public Layer {
 public:
  autograd::Variable forward(const autograd::Variable& x) override;
};

/// Binary activation sign(x) ∈ {-1,+1} with clipped straight-through
/// gradient. If an ActivationNoiseConfig is attached and enabled, noise is
/// injected into the pre-sign activation — the paper's injection point for
/// conductance variation in binary networks (§IV-A2).
class SignActivation : public Layer {
 public:
  explicit SignActivation(ActivationNoisePtr noise = nullptr,
                          float ste_clip = 1.0f);

  autograd::Variable forward(const autograd::Variable& x) override;

  const ActivationNoisePtr& noise() const { return noise_; }

 private:
  ActivationNoisePtr noise_;
  float ste_clip_;
};

/// Applies the configured noise (additive / multiplicative / uniform) to x
/// as a graph constant; shared by SignActivation and quantized activations.
autograd::Variable apply_activation_noise(const autograd::Variable& x,
                                          ActivationNoiseConfig& cfg);

}  // namespace ripple::nn
