// Elementwise, scalar, per-channel broadcast, activation, shape and
// reduction ops.
//
// Each op appends a TraceStep (deploy/trace.h) when a recorder is active;
// the recorded closures read every dimension from the tensors at execution
// time so they stay valid at the plan's reduced uniform-row shapes.
#include <cmath>
#include <cstring>

#include "autograd/ops.h"
#include "core/lazy_stem.h"
#include "core/mc_stream.h"
#include "deploy/trace.h"
#include "tensor/ops.h"
#include "tensor/vmath.h"

namespace ripple::autograd {
namespace {

/// Lazy-stem row alignment (core/lazy_stem.h): inside a lazy batched pass,
/// a merge may see one operand still at the unreplicated n-row stem while
/// the other was already expanded to replicas·n rows (LSTM gate sums,
/// residual adds, skip concats). Expand the stem side; identical-row pairs
/// pass through untouched, so eager passes pay one integer compare.
std::pair<Variable, Variable> align_stem_rows(const Variable& a,
                                              const Variable& b) {
  if (a.value().rank() < 1 || b.value().rank() < 1) return {a, b};
  const int64_t ra = a.value().dim(0);
  const int64_t rb = b.value().dim(0);
  if (ra == rb) return {a, b};
  if (core::lazy_stem_pending(ra) &&
      rb == core::active_mc_stream()->replicas() * ra)
    return {core::replicate_stem(a), b};
  if (core::lazy_stem_pending(rb) &&
      ra == core::active_mc_stream()->replicas() * rb)
    return {a, core::replicate_stem(b)};
  return {a, b};
}

/// Iterates a [N, C, inner] view of a rank>=2 tensor whose channel axis is
/// dim 1; rank-2 tensors have inner == 1.
struct ChannelView {
  int64_t n;
  int64_t c;
  int64_t inner;
};

ChannelView channel_view(const Tensor& x) {
  RIPPLE_CHECK(x.rank() >= 2) << "channel broadcast needs rank >= 2, got "
                              << shape_to_string(x.shape());
  int64_t inner = 1;
  for (int d = 2; d < x.rank(); ++d) inner *= x.dim(d);
  return {x.dim(0), x.dim(1), inner};
}

// Hook body, only reached after the caller's active_trace() null check (the
// hot path pays a single thread-local read per op).
void trace_step(deploy::OpTag tag, std::vector<Tensor> inputs,
                const Tensor& out, deploy::StepFn fn, int64_t i0 = 0,
                int64_t i1 = 0) {
  deploy::TraceStep ts;
  ts.tag = tag;
  ts.inputs = std::move(inputs);
  ts.output = out;
  ts.fn = std::move(fn);
  ts.i0 = i0;
  ts.i1 = i1;
  deploy::active_trace()->record(std::move(ts));
}

// Exec closure for the elementwise binaries; same per-element expressions as
// ops::add/sub/mul.
template <typename F>
deploy::StepFn binary_fn(F op) {
  return [op](const Tensor* const* ins, int, Tensor& o) {
    const float* pa = ins[0]->data();
    const float* pb = ins[1]->data();
    float* po = o.data();
    const int64_t n = o.numel();
    for (int64_t i = 0; i < n; ++i) po[i] = op(pa[i], pb[i]);
  };
}

template <typename F>
deploy::StepFn unary_fn(F op) {
  return [op](const Tensor* const* ins, int, Tensor& o) {
    const float* pa = ins[0]->data();
    float* po = o.data();
    const int64_t n = o.numel();
    for (int64_t i = 0; i < n; ++i) po[i] = op(pa[i]);
  };
}

}  // namespace

Variable add(const Variable& a0, const Variable& b0) {
  const auto& [a, b] = align_stem_rows(a0, b0);
  Tensor out = ops::add(a.value(), b.value());
  if (deploy::active_trace() != nullptr) {
    trace_step(deploy::OpTag::kAdd, {a.value(), b.value()}, out,
               binary_fn([](float x, float y) { return x + y; }));
  }
  return make_op_node(
      std::move(out), {a.node(), b.node()},
      [](Node& n) {
        for (auto& p : n.parents)
          if (p->requires_grad) p->accumulate_grad(n.grad);
      },
      "add");
}

Variable sub(const Variable& a0, const Variable& b0) {
  const auto& [a, b] = align_stem_rows(a0, b0);
  Tensor out = ops::sub(a.value(), b.value());
  if (deploy::active_trace() != nullptr) {
    trace_step(deploy::OpTag::kSub, {a.value(), b.value()}, out,
               binary_fn([](float x, float y) { return x - y; }));
  }
  return make_op_node(
      std::move(out), {a.node(), b.node()},
      [](Node& n) {
        if (n.parents[0]->requires_grad) n.parents[0]->accumulate_grad(n.grad);
        if (n.parents[1]->requires_grad)
          n.parents[1]->accumulate_grad(ops::mul_scalar(n.grad, -1.0f));
      },
      "sub");
}

Variable mul(const Variable& a0, const Variable& b0) {
  const auto& [a, b] = align_stem_rows(a0, b0);
  Tensor out = ops::mul(a.value(), b.value());
  if (deploy::active_trace() != nullptr) {
    trace_step(deploy::OpTag::kMul, {a.value(), b.value()}, out,
               binary_fn([](float x, float y) { return x * y; }));
  }
  Tensor av = a.value();
  Tensor bv = b.value();
  return make_op_node(
      std::move(out), {a.node(), b.node()},
      [av, bv](Node& n) {
        if (n.parents[0]->requires_grad)
          n.parents[0]->accumulate_grad(ops::mul(n.grad, bv));
        if (n.parents[1]->requires_grad)
          n.parents[1]->accumulate_grad(ops::mul(n.grad, av));
      },
      "mul");
}

Variable neg(const Variable& a) { return mul_scalar(a, -1.0f); }

Variable add_scalar(const Variable& a, float s) {
  Tensor out = ops::add_scalar(a.value(), s);
  if (deploy::active_trace() != nullptr) {
    trace_step(deploy::OpTag::kAddScalar, {a.value()}, out,
               unary_fn([s](float x) { return x + s; }));
  }
  return make_op_node(
      std::move(out), {a.node()},
      [](Node& n) {
        if (n.parents[0]->requires_grad) n.parents[0]->accumulate_grad(n.grad);
      },
      "add_scalar");
}

Variable mul_scalar(const Variable& a, float s) {
  Tensor out = ops::mul_scalar(a.value(), s);
  if (deploy::active_trace() != nullptr) {
    trace_step(deploy::OpTag::kMulScalar, {a.value()}, out,
               unary_fn([s](float x) { return x * s; }));
  }
  return make_op_node(
      std::move(out), {a.node()},
      [s](Node& n) {
        if (n.parents[0]->requires_grad)
          n.parents[0]->accumulate_grad(ops::mul_scalar(n.grad, s));
      },
      "mul_scalar");
}

Variable mul_channel(const Variable& x, const Variable& gamma) {
  const ChannelView v = channel_view(x.value());
  RIPPLE_CHECK(gamma.value().rank() == 1 && gamma.dim(0) == v.c)
      << "mul_channel: gamma shape " << shape_to_string(gamma.shape())
      << " does not match " << v.c << " channels";
  Tensor out = Tensor::empty(x.shape());
  const float* px = x.value().data();
  const float* pg = gamma.value().data();
  float* po = out.data();
  for (int64_t i = 0; i < v.n; ++i)
    for (int64_t ch = 0; ch < v.c; ++ch) {
      const float g = pg[ch];
      const int64_t base = (i * v.c + ch) * v.inner;
      for (int64_t k = 0; k < v.inner; ++k) po[base + k] = px[base + k] * g;
    }
  if (deploy::active_trace() != nullptr) {
    trace_step(deploy::OpTag::kMulChannel, {x.value(), gamma.value()}, out,
               [](const Tensor* const* ins, int, Tensor& o) {
                 const Tensor& x = *ins[0];
                 const int64_t n = x.dim(0);
                 const int64_t c = ins[1]->dim(0);
                 const int64_t inner = x.numel() / (n * c);
                 const float* px = x.data();
                 const float* pg = ins[1]->data();
                 float* po = o.data();
                 for (int64_t i = 0; i < n; ++i)
                   for (int64_t ch = 0; ch < c; ++ch) {
                     const float g = pg[ch];
                     const int64_t base = (i * c + ch) * inner;
                     for (int64_t k = 0; k < inner; ++k)
                       po[base + k] = px[base + k] * g;
                   }
               });
  }
  Tensor xv = x.value();
  Tensor gv = gamma.value();
  return make_op_node(
      std::move(out), {x.node(), gamma.node()},
      [xv, gv, v](Node& n) {
        const float* pdy = n.grad.data();
        if (n.parents[0]->requires_grad) {
          Tensor dx(xv.shape());
          float* pdx = dx.data();
          const float* pg = gv.data();
          for (int64_t i = 0; i < v.n; ++i)
            for (int64_t ch = 0; ch < v.c; ++ch) {
              const float g = pg[ch];
              const int64_t base = (i * v.c + ch) * v.inner;
              for (int64_t k = 0; k < v.inner; ++k)
                pdx[base + k] = pdy[base + k] * g;
            }
          n.parents[0]->accumulate_grad(dx);
        }
        if (n.parents[1]->requires_grad) {
          Tensor dg({v.c});
          float* pdg = dg.data();
          const float* px = xv.data();
          for (int64_t i = 0; i < v.n; ++i)
            for (int64_t ch = 0; ch < v.c; ++ch) {
              const int64_t base = (i * v.c + ch) * v.inner;
              double acc = 0.0;
              for (int64_t k = 0; k < v.inner; ++k)
                acc += static_cast<double>(pdy[base + k]) * px[base + k];
              pdg[ch] += static_cast<float>(acc);
            }
          n.parents[1]->accumulate_grad(dg);
        }
      },
      "mul_channel");
}

Variable add_channel(const Variable& x, const Variable& beta) {
  const ChannelView v = channel_view(x.value());
  RIPPLE_CHECK(beta.value().rank() == 1 && beta.dim(0) == v.c)
      << "add_channel: beta shape " << shape_to_string(beta.shape())
      << " does not match " << v.c << " channels";
  Tensor out = Tensor::empty(x.shape());
  const float* px = x.value().data();
  const float* pb = beta.value().data();
  float* po = out.data();
  for (int64_t i = 0; i < v.n; ++i)
    for (int64_t ch = 0; ch < v.c; ++ch) {
      const float b = pb[ch];
      const int64_t base = (i * v.c + ch) * v.inner;
      for (int64_t k = 0; k < v.inner; ++k) po[base + k] = px[base + k] + b;
    }
  if (deploy::active_trace() != nullptr) {
    trace_step(deploy::OpTag::kAddChannel, {x.value(), beta.value()}, out,
               [](const Tensor* const* ins, int, Tensor& o) {
                 const Tensor& x = *ins[0];
                 const int64_t n = x.dim(0);
                 const int64_t c = ins[1]->dim(0);
                 const int64_t inner = x.numel() / (n * c);
                 const float* px = x.data();
                 const float* pb = ins[1]->data();
                 float* po = o.data();
                 for (int64_t i = 0; i < n; ++i)
                   for (int64_t ch = 0; ch < c; ++ch) {
                     const float b = pb[ch];
                     const int64_t base = (i * c + ch) * inner;
                     for (int64_t k = 0; k < inner; ++k)
                       po[base + k] = px[base + k] + b;
                   }
               });
  }
  return make_op_node(
      std::move(out), {x.node(), beta.node()},
      [v](Node& n) {
        const float* pdy = n.grad.data();
        if (n.parents[0]->requires_grad) n.parents[0]->accumulate_grad(n.grad);
        if (n.parents[1]->requires_grad) {
          Tensor db({v.c});
          float* pdb = db.data();
          for (int64_t i = 0; i < v.n; ++i)
            for (int64_t ch = 0; ch < v.c; ++ch) {
              const int64_t base = (i * v.c + ch) * v.inner;
              double acc = 0.0;
              for (int64_t k = 0; k < v.inner; ++k) acc += pdy[base + k];
              pdb[ch] += static_cast<float>(acc);
            }
          n.parents[1]->accumulate_grad(db);
        }
      },
      "add_channel");
}

Variable mul_channel_replicated(const Variable& x, const Variable& gamma) {
  const ChannelView v = channel_view(x.value());
  RIPPLE_CHECK(gamma.value().rank() == 2 && gamma.dim(1) == v.c)
      << "mul_channel_replicated: gamma shape "
      << shape_to_string(gamma.shape()) << " does not match " << v.c
      << " channels";
  const int64_t r = gamma.dim(0);
  RIPPLE_CHECK(r >= 1 && v.n % r == 0)
      << "mul_channel_replicated: batch " << v.n << " not divisible into "
      << r << " replicas";
  const int64_t rows = v.n / r;  // samples per replica
  Tensor out = Tensor::empty(x.shape());
  const float* px = x.value().data();
  const float* pg = gamma.value().data();
  float* po = out.data();
  for (int64_t i = 0; i < v.n; ++i) {
    const float* grow = pg + (i / rows) * v.c;
    for (int64_t ch = 0; ch < v.c; ++ch) {
      const float g = grow[ch];
      const int64_t base = (i * v.c + ch) * v.inner;
      for (int64_t k = 0; k < v.inner; ++k) po[base + k] = px[base + k] * g;
    }
  }
  if (deploy::active_trace() != nullptr) {
    // The replica axis (gamma rows) is the plan's stochastic signature:
    // the compiler treats this step as the replication point of the lazy
    // stem. Closure recomputes rows-per-replica from the live batch.
    trace_step(deploy::OpTag::kMulChannelRep, {x.value(), gamma.value()}, out,
               [](const Tensor* const* ins, int, Tensor& o) {
                 const Tensor& x = *ins[0];
                 const int64_t r = ins[1]->dim(0);
                 const int64_t c = ins[1]->dim(1);
                 const int64_t n = x.dim(0);
                 const int64_t inner = x.numel() / (n * c);
                 const int64_t rows = n / r;
                 const float* px = x.data();
                 const float* pg = ins[1]->data();
                 float* po = o.data();
                 for (int64_t i = 0; i < n; ++i) {
                   const float* grow = pg + (i / rows) * c;
                   for (int64_t ch = 0; ch < c; ++ch) {
                     const float g = grow[ch];
                     const int64_t base = (i * c + ch) * inner;
                     for (int64_t k = 0; k < inner; ++k)
                       po[base + k] = px[base + k] * g;
                   }
                 }
               });
  }
  Tensor xv = x.value();
  Tensor gv = gamma.value();
  return make_op_node(
      std::move(out), {x.node(), gamma.node()},
      [xv, gv, v, r, rows](Node& n) {
        const float* pdy = n.grad.data();
        if (n.parents[0]->requires_grad) {
          Tensor dx(xv.shape());
          float* pdx = dx.data();
          const float* pg = gv.data();
          for (int64_t i = 0; i < v.n; ++i) {
            const float* grow = pg + (i / rows) * v.c;
            for (int64_t ch = 0; ch < v.c; ++ch) {
              const float g = grow[ch];
              const int64_t base = (i * v.c + ch) * v.inner;
              for (int64_t k = 0; k < v.inner; ++k)
                pdx[base + k] = pdy[base + k] * g;
            }
          }
          n.parents[0]->accumulate_grad(dx);
        }
        if (n.parents[1]->requires_grad) {
          Tensor dg = Tensor::zeros({r, v.c});
          float* pdg = dg.data();
          const float* px = xv.data();
          for (int64_t i = 0; i < v.n; ++i) {
            float* grow = pdg + (i / rows) * v.c;
            for (int64_t ch = 0; ch < v.c; ++ch) {
              const int64_t base = (i * v.c + ch) * v.inner;
              double acc = 0.0;
              for (int64_t k = 0; k < v.inner; ++k)
                acc += static_cast<double>(pdy[base + k]) * px[base + k];
              grow[ch] += static_cast<float>(acc);
            }
          }
          n.parents[1]->accumulate_grad(dg);
        }
      },
      "mul_channel_replicated");
}

Variable add_channel_replicated(const Variable& x, const Variable& beta) {
  const ChannelView v = channel_view(x.value());
  RIPPLE_CHECK(beta.value().rank() == 2 && beta.dim(1) == v.c)
      << "add_channel_replicated: beta shape " << shape_to_string(beta.shape())
      << " does not match " << v.c << " channels";
  const int64_t r = beta.dim(0);
  RIPPLE_CHECK(r >= 1 && v.n % r == 0)
      << "add_channel_replicated: batch " << v.n << " not divisible into "
      << r << " replicas";
  const int64_t rows = v.n / r;
  Tensor out = Tensor::empty(x.shape());
  const float* px = x.value().data();
  const float* pb = beta.value().data();
  float* po = out.data();
  for (int64_t i = 0; i < v.n; ++i) {
    const float* brow = pb + (i / rows) * v.c;
    for (int64_t ch = 0; ch < v.c; ++ch) {
      const float bval = brow[ch];
      const int64_t base = (i * v.c + ch) * v.inner;
      for (int64_t k = 0; k < v.inner; ++k) po[base + k] = px[base + k] + bval;
    }
  }
  if (deploy::active_trace() != nullptr) {
    trace_step(deploy::OpTag::kAddChannelRep, {x.value(), beta.value()}, out,
               [](const Tensor* const* ins, int, Tensor& o) {
                 const Tensor& x = *ins[0];
                 const int64_t r = ins[1]->dim(0);
                 const int64_t c = ins[1]->dim(1);
                 const int64_t n = x.dim(0);
                 const int64_t inner = x.numel() / (n * c);
                 const int64_t rows = n / r;
                 const float* px = x.data();
                 const float* pb = ins[1]->data();
                 float* po = o.data();
                 for (int64_t i = 0; i < n; ++i) {
                   const float* brow = pb + (i / rows) * c;
                   for (int64_t ch = 0; ch < c; ++ch) {
                     const float bval = brow[ch];
                     const int64_t base = (i * c + ch) * inner;
                     for (int64_t k = 0; k < inner; ++k)
                       po[base + k] = px[base + k] + bval;
                   }
                 }
               });
  }
  return make_op_node(
      std::move(out), {x.node(), beta.node()},
      [v, r, rows](Node& n) {
        const float* pdy = n.grad.data();
        if (n.parents[0]->requires_grad) n.parents[0]->accumulate_grad(n.grad);
        if (n.parents[1]->requires_grad) {
          Tensor db = Tensor::zeros({r, v.c});
          float* pdb = db.data();
          for (int64_t i = 0; i < v.n; ++i) {
            float* brow = pdb + (i / rows) * v.c;
            for (int64_t ch = 0; ch < v.c; ++ch) {
              const int64_t base = (i * v.c + ch) * v.inner;
              double acc = 0.0;
              for (int64_t k = 0; k < v.inner; ++k) acc += pdy[base + k];
              brow[ch] += static_cast<float>(acc);
            }
          }
          n.parents[1]->accumulate_grad(db);
        }
      },
      "add_channel_replicated");
}

Variable relu(const Variable& a) {
  Tensor out = ops::map(a.value(), [](float x) { return x > 0.0f ? x : 0.0f; });
  if (deploy::active_trace() != nullptr) {
    trace_step(deploy::OpTag::kRelu, {a.value()}, out,
               unary_fn([](float x) { return x > 0.0f ? x : 0.0f; }));
  }
  Tensor av = a.value();
  return make_op_node(
      std::move(out), {a.node()},
      [av](Node& n) {
        if (!n.parents[0]->requires_grad) return;
        Tensor dx(av.shape());
        const float* px = av.data();
        const float* pdy = n.grad.data();
        float* pdx = dx.data();
        for (int64_t i = 0; i < av.numel(); ++i)
          pdx[i] = px[i] > 0.0f ? pdy[i] : 0.0f;
        n.parents[0]->accumulate_grad(dx);
      },
      "relu");
}

Variable sigmoid(const Variable& a) {
  Tensor out(a.value().shape());
  vsigmoid(a.value().data(), out.data(), out.numel());
  if (deploy::active_trace() != nullptr) {
    trace_step(deploy::OpTag::kSigmoid, {a.value()}, out,
               [](const Tensor* const* ins, int, Tensor& o) {
                 vsigmoid(ins[0]->data(), o.data(), o.numel());
               });
  }
  Tensor ov = out;  // handle shares storage; safe, value is never mutated
  return make_op_node(
      std::move(out), {a.node()},
      [ov](Node& n) {
        if (!n.parents[0]->requires_grad) return;
        Tensor dx(ov.shape());
        const float* py = ov.data();
        const float* pdy = n.grad.data();
        float* pdx = dx.data();
        for (int64_t i = 0; i < ov.numel(); ++i)
          pdx[i] = pdy[i] * py[i] * (1.0f - py[i]);
        n.parents[0]->accumulate_grad(dx);
      },
      "sigmoid");
}

Variable tanh_op(const Variable& a) {
  Tensor out(a.value().shape());
  vtanh(a.value().data(), out.data(), out.numel());
  if (deploy::active_trace() != nullptr) {
    trace_step(deploy::OpTag::kTanh, {a.value()}, out,
               [](const Tensor* const* ins, int, Tensor& o) {
                 vtanh(ins[0]->data(), o.data(), o.numel());
               });
  }
  Tensor ov = out;
  return make_op_node(
      std::move(out), {a.node()},
      [ov](Node& n) {
        if (!n.parents[0]->requires_grad) return;
        Tensor dx(ov.shape());
        const float* py = ov.data();
        const float* pdy = n.grad.data();
        float* pdx = dx.data();
        for (int64_t i = 0; i < ov.numel(); ++i)
          pdx[i] = pdy[i] * (1.0f - py[i] * py[i]);
        n.parents[0]->accumulate_grad(dx);
      },
      "tanh");
}

Variable sign_ste(const Variable& a, float ste_clip) {
  RIPPLE_CHECK(ste_clip > 0.0f) << "sign_ste clip must be positive";
  Tensor out = ops::sign(a.value());
  if (deploy::active_trace() != nullptr) {
    trace_step(deploy::OpTag::kSign, {a.value()}, out,
               unary_fn([](float x) { return x < 0.0f ? -1.0f : 1.0f; }));
  }
  Tensor av = a.value();
  return make_op_node(
      std::move(out), {a.node()},
      [av, ste_clip](Node& n) {
        if (!n.parents[0]->requires_grad) return;
        Tensor dx(av.shape());
        const float* px = av.data();
        const float* pdy = n.grad.data();
        float* pdx = dx.data();
        for (int64_t i = 0; i < av.numel(); ++i)
          pdx[i] = std::fabs(px[i]) <= ste_clip ? pdy[i] : 0.0f;
        n.parents[0]->accumulate_grad(dx);
      },
      "sign_ste");
}

Variable reshape(const Variable& a, Shape new_shape) {
  Shape old_shape = a.shape();
  Tensor out = a.value().reshaped(std::move(new_shape));
  if (deploy::active_trace() != nullptr) {
    // The graph op aliases storage; the plan gives the reshape its own
    // buffer, so the executor copies (the compiler refuses aliased views).
    trace_step(deploy::OpTag::kReshape, {a.value()}, out,
               [](const Tensor* const* ins, int, Tensor& o) {
                 std::memcpy(o.data(), ins[0]->data(),
                             sizeof(float) * static_cast<size_t>(o.numel()));
               });
  }
  return make_op_node(
      std::move(out), {a.node()},
      [old_shape](Node& n) {
        if (!n.parents[0]->requires_grad) return;
        n.parents[0]->accumulate_grad(n.grad.reshaped(old_shape));
      },
      "reshape");
}

Variable concat_channels(const Variable& a0, const Variable& b0) {
  const auto& [a, b] = align_stem_rows(a0, b0);
  Tensor out = ops::concat_channels(a.value(), b.value());
  const int64_t ca = a.dim(1);
  if (deploy::active_trace() != nullptr) {
    trace_step(deploy::OpTag::kConcat, {a.value(), b.value()}, out,
               [](const Tensor* const* ins, int, Tensor& o) {
                 const Tensor& a = *ins[0];
                 const Tensor& b = *ins[1];
                 const int64_t n = a.dim(0);
                 const int64_t slab_a = a.numel() / n;
                 const int64_t slab_b = b.numel() / n;
                 const float* pa = a.data();
                 const float* pb = b.data();
                 float* po = o.data();
                 for (int64_t i = 0; i < n; ++i) {
                   float* row = po + i * (slab_a + slab_b);
                   std::memcpy(row, pa + i * slab_a,
                               sizeof(float) * static_cast<size_t>(slab_a));
                   std::memcpy(row + slab_a, pb + i * slab_b,
                               sizeof(float) * static_cast<size_t>(slab_b));
                 }
               });
  }
  return make_op_node(
      std::move(out), {a.node(), b.node()},
      [ca](Node& n) {
        auto [ga, gb] = ops::split_channels(n.grad, ca);
        if (n.parents[0]->requires_grad) n.parents[0]->accumulate_grad(ga);
        if (n.parents[1]->requires_grad) n.parents[1]->accumulate_grad(gb);
      },
      "concat_channels");
}

Variable slice_cols(const Variable& a, int64_t begin, int64_t end) {
  RIPPLE_CHECK(a.value().rank() == 2) << "slice_cols needs [N,F]";
  const int64_t n = a.dim(0);
  const int64_t f = a.dim(1);
  RIPPLE_CHECK(0 <= begin && begin < end && end <= f)
      << "slice_cols range [" << begin << "," << end << ") invalid for " << f
      << " columns";
  const int64_t w = end - begin;
  Tensor out({n, w});
  const float* pa = a.value().data();
  float* po = out.data();
  for (int64_t i = 0; i < n; ++i)
    std::copy(pa + i * f + begin, pa + i * f + end, po + i * w);
  if (deploy::active_trace() != nullptr) {
    trace_step(deploy::OpTag::kSliceCols, {a.value()}, out,
               [begin, end](const Tensor* const* ins, int, Tensor& o) {
                 const Tensor& x = *ins[0];
                 const int64_t n = x.dim(0);
                 const int64_t f = x.dim(1);
                 const int64_t w = end - begin;
                 const float* pa = x.data();
                 float* po = o.data();
                 for (int64_t i = 0; i < n; ++i)
                   std::copy(pa + i * f + begin, pa + i * f + end, po + i * w);
               },
               begin, end);
  }
  return make_op_node(
      std::move(out), {a.node()},
      [n, f, begin, w](Node& nd) {
        if (!nd.parents[0]->requires_grad) return;
        Tensor dx({n, f});
        const float* pdy = nd.grad.data();
        float* pdx = dx.data();
        for (int64_t i = 0; i < n; ++i)
          std::copy(pdy + i * w, pdy + (i + 1) * w, pdx + i * f + begin);
        nd.parents[0]->accumulate_grad(dx);
      },
      "slice_cols");
}

Variable select_time(const Variable& a, int64_t t) {
  RIPPLE_CHECK(a.value().rank() == 3) << "select_time needs [N,T,F]";
  const int64_t n = a.dim(0);
  const int64_t steps = a.dim(1);
  const int64_t f = a.dim(2);
  RIPPLE_CHECK(t >= 0 && t < steps)
      << "time index " << t << " out of range for " << steps << " steps";
  Tensor out({n, f});
  const float* pa = a.value().data();
  float* po = out.data();
  for (int64_t i = 0; i < n; ++i)
    std::copy(pa + (i * steps + t) * f, pa + (i * steps + t + 1) * f,
              po + i * f);
  if (deploy::active_trace() != nullptr) {
    trace_step(deploy::OpTag::kSelectTime, {a.value()}, out,
               [t](const Tensor* const* ins, int, Tensor& o) {
                 const Tensor& x = *ins[0];
                 const int64_t n = x.dim(0);
                 const int64_t steps = x.dim(1);
                 const int64_t f = x.dim(2);
                 const float* pa = x.data();
                 float* po = o.data();
                 for (int64_t i = 0; i < n; ++i)
                   std::copy(pa + (i * steps + t) * f,
                             pa + (i * steps + t + 1) * f, po + i * f);
               },
               t);
  }
  return make_op_node(
      std::move(out), {a.node()},
      [n, steps, f, t](Node& nd) {
        if (!nd.parents[0]->requires_grad) return;
        Tensor dx({n, steps, f});
        const float* pdy = nd.grad.data();
        float* pdx = dx.data();
        for (int64_t i = 0; i < n; ++i)
          std::copy(pdy + i * f, pdy + (i + 1) * f,
                    pdx + (i * steps + t) * f);
        nd.parents[0]->accumulate_grad(dx);
      },
      "select_time");
}

Variable sum_all(const Variable& a) {
  Tensor out = Tensor::scalar(ops::sum(a.value()));
  Shape in_shape = a.shape();
  return make_op_node(
      std::move(out), {a.node()},
      [in_shape](Node& n) {
        if (!n.parents[0]->requires_grad) return;
        n.parents[0]->accumulate_grad(
            Tensor::full(in_shape, n.grad.item()));
      },
      "sum_all");
}

Variable mean_all(const Variable& a) {
  const auto count = static_cast<float>(a.numel());
  Tensor out = Tensor::scalar(ops::mean(a.value()));
  Shape in_shape = a.shape();
  return make_op_node(
      std::move(out), {a.node()},
      [in_shape, count](Node& n) {
        if (!n.parents[0]->requires_grad) return;
        n.parents[0]->accumulate_grad(
            Tensor::full(in_shape, n.grad.item() / count));
      },
      "mean_all");
}

Variable apply_mask(const Variable& x, const Tensor& mask, float keep_scale) {
  RIPPLE_CHECK(mask.same_shape(x.value()))
      << "apply_mask shape mismatch: " << shape_to_string(mask.shape())
      << " vs " << shape_to_string(x.value().shape());
  Tensor scaled_mask = ops::mul_scalar(mask, keep_scale);
  Tensor out = ops::mul(x.value(), scaled_mask);
  if (deploy::active_trace() != nullptr) {
    // The scaled mask is a deterministic draw of the session's mask stream,
    // so it becomes a plan constant (exact under replayed seeds).
    trace_step(deploy::OpTag::kApplyMask, {x.value(), scaled_mask}, out,
               binary_fn([](float x, float y) { return x * y; }));
  }
  return make_op_node(
      std::move(out), {x.node()},
      [scaled_mask](Node& n) {
        if (!n.parents[0]->requires_grad) return;
        n.parents[0]->accumulate_grad(ops::mul(n.grad, scaled_mask));
      },
      "apply_mask");
}

}  // namespace ripple::autograd
