// Elementwise, scalar, per-channel broadcast, activation, shape and
// reduction ops.
#include <cmath>

#include "autograd/ops.h"
#include "tensor/ops.h"

namespace ripple::autograd {
namespace {

/// Iterates a [N, C, inner] view of a rank>=2 tensor whose channel axis is
/// dim 1; rank-2 tensors have inner == 1.
struct ChannelView {
  int64_t n;
  int64_t c;
  int64_t inner;
};

ChannelView channel_view(const Tensor& x) {
  RIPPLE_CHECK(x.rank() >= 2) << "channel broadcast needs rank >= 2, got "
                              << shape_to_string(x.shape());
  int64_t inner = 1;
  for (int d = 2; d < x.rank(); ++d) inner *= x.dim(d);
  return {x.dim(0), x.dim(1), inner};
}

}  // namespace

Variable add(const Variable& a, const Variable& b) {
  Tensor out = ops::add(a.value(), b.value());
  return make_op_node(
      std::move(out), {a.node(), b.node()},
      [](Node& n) {
        for (auto& p : n.parents)
          if (p->requires_grad) p->accumulate_grad(n.grad);
      },
      "add");
}

Variable sub(const Variable& a, const Variable& b) {
  Tensor out = ops::sub(a.value(), b.value());
  return make_op_node(
      std::move(out), {a.node(), b.node()},
      [](Node& n) {
        if (n.parents[0]->requires_grad) n.parents[0]->accumulate_grad(n.grad);
        if (n.parents[1]->requires_grad)
          n.parents[1]->accumulate_grad(ops::mul_scalar(n.grad, -1.0f));
      },
      "sub");
}

Variable mul(const Variable& a, const Variable& b) {
  Tensor out = ops::mul(a.value(), b.value());
  Tensor av = a.value();
  Tensor bv = b.value();
  return make_op_node(
      std::move(out), {a.node(), b.node()},
      [av, bv](Node& n) {
        if (n.parents[0]->requires_grad)
          n.parents[0]->accumulate_grad(ops::mul(n.grad, bv));
        if (n.parents[1]->requires_grad)
          n.parents[1]->accumulate_grad(ops::mul(n.grad, av));
      },
      "mul");
}

Variable neg(const Variable& a) { return mul_scalar(a, -1.0f); }

Variable add_scalar(const Variable& a, float s) {
  return make_op_node(
      ops::add_scalar(a.value(), s), {a.node()},
      [](Node& n) {
        if (n.parents[0]->requires_grad) n.parents[0]->accumulate_grad(n.grad);
      },
      "add_scalar");
}

Variable mul_scalar(const Variable& a, float s) {
  return make_op_node(
      ops::mul_scalar(a.value(), s), {a.node()},
      [s](Node& n) {
        if (n.parents[0]->requires_grad)
          n.parents[0]->accumulate_grad(ops::mul_scalar(n.grad, s));
      },
      "mul_scalar");
}

Variable mul_channel(const Variable& x, const Variable& gamma) {
  const ChannelView v = channel_view(x.value());
  RIPPLE_CHECK(gamma.value().rank() == 1 && gamma.dim(0) == v.c)
      << "mul_channel: gamma shape " << shape_to_string(gamma.shape())
      << " does not match " << v.c << " channels";
  Tensor out = Tensor::empty(x.shape());
  const float* px = x.value().data();
  const float* pg = gamma.value().data();
  float* po = out.data();
  for (int64_t i = 0; i < v.n; ++i)
    for (int64_t ch = 0; ch < v.c; ++ch) {
      const float g = pg[ch];
      const int64_t base = (i * v.c + ch) * v.inner;
      for (int64_t k = 0; k < v.inner; ++k) po[base + k] = px[base + k] * g;
    }
  Tensor xv = x.value();
  Tensor gv = gamma.value();
  return make_op_node(
      std::move(out), {x.node(), gamma.node()},
      [xv, gv, v](Node& n) {
        const float* pdy = n.grad.data();
        if (n.parents[0]->requires_grad) {
          Tensor dx(xv.shape());
          float* pdx = dx.data();
          const float* pg = gv.data();
          for (int64_t i = 0; i < v.n; ++i)
            for (int64_t ch = 0; ch < v.c; ++ch) {
              const float g = pg[ch];
              const int64_t base = (i * v.c + ch) * v.inner;
              for (int64_t k = 0; k < v.inner; ++k)
                pdx[base + k] = pdy[base + k] * g;
            }
          n.parents[0]->accumulate_grad(dx);
        }
        if (n.parents[1]->requires_grad) {
          Tensor dg({v.c});
          float* pdg = dg.data();
          const float* px = xv.data();
          for (int64_t i = 0; i < v.n; ++i)
            for (int64_t ch = 0; ch < v.c; ++ch) {
              const int64_t base = (i * v.c + ch) * v.inner;
              double acc = 0.0;
              for (int64_t k = 0; k < v.inner; ++k)
                acc += static_cast<double>(pdy[base + k]) * px[base + k];
              pdg[ch] += static_cast<float>(acc);
            }
          n.parents[1]->accumulate_grad(dg);
        }
      },
      "mul_channel");
}

Variable add_channel(const Variable& x, const Variable& beta) {
  const ChannelView v = channel_view(x.value());
  RIPPLE_CHECK(beta.value().rank() == 1 && beta.dim(0) == v.c)
      << "add_channel: beta shape " << shape_to_string(beta.shape())
      << " does not match " << v.c << " channels";
  Tensor out = Tensor::empty(x.shape());
  const float* px = x.value().data();
  const float* pb = beta.value().data();
  float* po = out.data();
  for (int64_t i = 0; i < v.n; ++i)
    for (int64_t ch = 0; ch < v.c; ++ch) {
      const float b = pb[ch];
      const int64_t base = (i * v.c + ch) * v.inner;
      for (int64_t k = 0; k < v.inner; ++k) po[base + k] = px[base + k] + b;
    }
  return make_op_node(
      std::move(out), {x.node(), beta.node()},
      [v](Node& n) {
        const float* pdy = n.grad.data();
        if (n.parents[0]->requires_grad) n.parents[0]->accumulate_grad(n.grad);
        if (n.parents[1]->requires_grad) {
          Tensor db({v.c});
          float* pdb = db.data();
          for (int64_t i = 0; i < v.n; ++i)
            for (int64_t ch = 0; ch < v.c; ++ch) {
              const int64_t base = (i * v.c + ch) * v.inner;
              double acc = 0.0;
              for (int64_t k = 0; k < v.inner; ++k) acc += pdy[base + k];
              pdb[ch] += static_cast<float>(acc);
            }
          n.parents[1]->accumulate_grad(db);
        }
      },
      "add_channel");
}

Variable mul_channel_replicated(const Variable& x, const Variable& gamma) {
  const ChannelView v = channel_view(x.value());
  RIPPLE_CHECK(gamma.value().rank() == 2 && gamma.dim(1) == v.c)
      << "mul_channel_replicated: gamma shape "
      << shape_to_string(gamma.shape()) << " does not match " << v.c
      << " channels";
  const int64_t r = gamma.dim(0);
  RIPPLE_CHECK(r >= 1 && v.n % r == 0)
      << "mul_channel_replicated: batch " << v.n << " not divisible into "
      << r << " replicas";
  const int64_t rows = v.n / r;  // samples per replica
  Tensor out = Tensor::empty(x.shape());
  const float* px = x.value().data();
  const float* pg = gamma.value().data();
  float* po = out.data();
  for (int64_t i = 0; i < v.n; ++i) {
    const float* grow = pg + (i / rows) * v.c;
    for (int64_t ch = 0; ch < v.c; ++ch) {
      const float g = grow[ch];
      const int64_t base = (i * v.c + ch) * v.inner;
      for (int64_t k = 0; k < v.inner; ++k) po[base + k] = px[base + k] * g;
    }
  }
  Tensor xv = x.value();
  Tensor gv = gamma.value();
  return make_op_node(
      std::move(out), {x.node(), gamma.node()},
      [xv, gv, v, r, rows](Node& n) {
        const float* pdy = n.grad.data();
        if (n.parents[0]->requires_grad) {
          Tensor dx(xv.shape());
          float* pdx = dx.data();
          const float* pg = gv.data();
          for (int64_t i = 0; i < v.n; ++i) {
            const float* grow = pg + (i / rows) * v.c;
            for (int64_t ch = 0; ch < v.c; ++ch) {
              const float g = grow[ch];
              const int64_t base = (i * v.c + ch) * v.inner;
              for (int64_t k = 0; k < v.inner; ++k)
                pdx[base + k] = pdy[base + k] * g;
            }
          }
          n.parents[0]->accumulate_grad(dx);
        }
        if (n.parents[1]->requires_grad) {
          Tensor dg = Tensor::zeros({r, v.c});
          float* pdg = dg.data();
          const float* px = xv.data();
          for (int64_t i = 0; i < v.n; ++i) {
            float* grow = pdg + (i / rows) * v.c;
            for (int64_t ch = 0; ch < v.c; ++ch) {
              const int64_t base = (i * v.c + ch) * v.inner;
              double acc = 0.0;
              for (int64_t k = 0; k < v.inner; ++k)
                acc += static_cast<double>(pdy[base + k]) * px[base + k];
              grow[ch] += static_cast<float>(acc);
            }
          }
          n.parents[1]->accumulate_grad(dg);
        }
      },
      "mul_channel_replicated");
}

Variable add_channel_replicated(const Variable& x, const Variable& beta) {
  const ChannelView v = channel_view(x.value());
  RIPPLE_CHECK(beta.value().rank() == 2 && beta.dim(1) == v.c)
      << "add_channel_replicated: beta shape " << shape_to_string(beta.shape())
      << " does not match " << v.c << " channels";
  const int64_t r = beta.dim(0);
  RIPPLE_CHECK(r >= 1 && v.n % r == 0)
      << "add_channel_replicated: batch " << v.n << " not divisible into "
      << r << " replicas";
  const int64_t rows = v.n / r;
  Tensor out = Tensor::empty(x.shape());
  const float* px = x.value().data();
  const float* pb = beta.value().data();
  float* po = out.data();
  for (int64_t i = 0; i < v.n; ++i) {
    const float* brow = pb + (i / rows) * v.c;
    for (int64_t ch = 0; ch < v.c; ++ch) {
      const float bval = brow[ch];
      const int64_t base = (i * v.c + ch) * v.inner;
      for (int64_t k = 0; k < v.inner; ++k) po[base + k] = px[base + k] + bval;
    }
  }
  return make_op_node(
      std::move(out), {x.node(), beta.node()},
      [v, r, rows](Node& n) {
        const float* pdy = n.grad.data();
        if (n.parents[0]->requires_grad) n.parents[0]->accumulate_grad(n.grad);
        if (n.parents[1]->requires_grad) {
          Tensor db = Tensor::zeros({r, v.c});
          float* pdb = db.data();
          for (int64_t i = 0; i < v.n; ++i) {
            float* brow = pdb + (i / rows) * v.c;
            for (int64_t ch = 0; ch < v.c; ++ch) {
              const int64_t base = (i * v.c + ch) * v.inner;
              double acc = 0.0;
              for (int64_t k = 0; k < v.inner; ++k) acc += pdy[base + k];
              brow[ch] += static_cast<float>(acc);
            }
          }
          n.parents[1]->accumulate_grad(db);
        }
      },
      "add_channel_replicated");
}

Variable relu(const Variable& a) {
  Tensor out = ops::map(a.value(), [](float x) { return x > 0.0f ? x : 0.0f; });
  Tensor av = a.value();
  return make_op_node(
      std::move(out), {a.node()},
      [av](Node& n) {
        if (!n.parents[0]->requires_grad) return;
        Tensor dx(av.shape());
        const float* px = av.data();
        const float* pdy = n.grad.data();
        float* pdx = dx.data();
        for (int64_t i = 0; i < av.numel(); ++i)
          pdx[i] = px[i] > 0.0f ? pdy[i] : 0.0f;
        n.parents[0]->accumulate_grad(dx);
      },
      "relu");
}

Variable sigmoid(const Variable& a) {
  Tensor out = ops::map(a.value(),
                        [](float x) { return 1.0f / (1.0f + std::exp(-x)); });
  Tensor ov = out;  // handle shares storage; safe, value is never mutated
  return make_op_node(
      std::move(out), {a.node()},
      [ov](Node& n) {
        if (!n.parents[0]->requires_grad) return;
        Tensor dx(ov.shape());
        const float* py = ov.data();
        const float* pdy = n.grad.data();
        float* pdx = dx.data();
        for (int64_t i = 0; i < ov.numel(); ++i)
          pdx[i] = pdy[i] * py[i] * (1.0f - py[i]);
        n.parents[0]->accumulate_grad(dx);
      },
      "sigmoid");
}

Variable tanh_op(const Variable& a) {
  Tensor out = ops::map(a.value(), [](float x) { return std::tanh(x); });
  Tensor ov = out;
  return make_op_node(
      std::move(out), {a.node()},
      [ov](Node& n) {
        if (!n.parents[0]->requires_grad) return;
        Tensor dx(ov.shape());
        const float* py = ov.data();
        const float* pdy = n.grad.data();
        float* pdx = dx.data();
        for (int64_t i = 0; i < ov.numel(); ++i)
          pdx[i] = pdy[i] * (1.0f - py[i] * py[i]);
        n.parents[0]->accumulate_grad(dx);
      },
      "tanh");
}

Variable sign_ste(const Variable& a, float ste_clip) {
  RIPPLE_CHECK(ste_clip > 0.0f) << "sign_ste clip must be positive";
  Tensor out = ops::sign(a.value());
  Tensor av = a.value();
  return make_op_node(
      std::move(out), {a.node()},
      [av, ste_clip](Node& n) {
        if (!n.parents[0]->requires_grad) return;
        Tensor dx(av.shape());
        const float* px = av.data();
        const float* pdy = n.grad.data();
        float* pdx = dx.data();
        for (int64_t i = 0; i < av.numel(); ++i)
          pdx[i] = std::fabs(px[i]) <= ste_clip ? pdy[i] : 0.0f;
        n.parents[0]->accumulate_grad(dx);
      },
      "sign_ste");
}

Variable reshape(const Variable& a, Shape new_shape) {
  Shape old_shape = a.shape();
  Tensor out = a.value().reshaped(std::move(new_shape));
  return make_op_node(
      std::move(out), {a.node()},
      [old_shape](Node& n) {
        if (!n.parents[0]->requires_grad) return;
        n.parents[0]->accumulate_grad(n.grad.reshaped(old_shape));
      },
      "reshape");
}

Variable concat_channels(const Variable& a, const Variable& b) {
  Tensor out = ops::concat_channels(a.value(), b.value());
  const int64_t ca = a.dim(1);
  return make_op_node(
      std::move(out), {a.node(), b.node()},
      [ca](Node& n) {
        auto [ga, gb] = ops::split_channels(n.grad, ca);
        if (n.parents[0]->requires_grad) n.parents[0]->accumulate_grad(ga);
        if (n.parents[1]->requires_grad) n.parents[1]->accumulate_grad(gb);
      },
      "concat_channels");
}

Variable slice_cols(const Variable& a, int64_t begin, int64_t end) {
  RIPPLE_CHECK(a.value().rank() == 2) << "slice_cols needs [N,F]";
  const int64_t n = a.dim(0);
  const int64_t f = a.dim(1);
  RIPPLE_CHECK(0 <= begin && begin < end && end <= f)
      << "slice_cols range [" << begin << "," << end << ") invalid for " << f
      << " columns";
  const int64_t w = end - begin;
  Tensor out({n, w});
  const float* pa = a.value().data();
  float* po = out.data();
  for (int64_t i = 0; i < n; ++i)
    std::copy(pa + i * f + begin, pa + i * f + end, po + i * w);
  return make_op_node(
      std::move(out), {a.node()},
      [n, f, begin, w](Node& nd) {
        if (!nd.parents[0]->requires_grad) return;
        Tensor dx({n, f});
        const float* pdy = nd.grad.data();
        float* pdx = dx.data();
        for (int64_t i = 0; i < n; ++i)
          std::copy(pdy + i * w, pdy + (i + 1) * w, pdx + i * f + begin);
        nd.parents[0]->accumulate_grad(dx);
      },
      "slice_cols");
}

Variable select_time(const Variable& a, int64_t t) {
  RIPPLE_CHECK(a.value().rank() == 3) << "select_time needs [N,T,F]";
  const int64_t n = a.dim(0);
  const int64_t steps = a.dim(1);
  const int64_t f = a.dim(2);
  RIPPLE_CHECK(t >= 0 && t < steps)
      << "time index " << t << " out of range for " << steps << " steps";
  Tensor out({n, f});
  const float* pa = a.value().data();
  float* po = out.data();
  for (int64_t i = 0; i < n; ++i)
    std::copy(pa + (i * steps + t) * f, pa + (i * steps + t + 1) * f,
              po + i * f);
  return make_op_node(
      std::move(out), {a.node()},
      [n, steps, f, t](Node& nd) {
        if (!nd.parents[0]->requires_grad) return;
        Tensor dx({n, steps, f});
        const float* pdy = nd.grad.data();
        float* pdx = dx.data();
        for (int64_t i = 0; i < n; ++i)
          std::copy(pdy + i * f, pdy + (i + 1) * f,
                    pdx + (i * steps + t) * f);
        nd.parents[0]->accumulate_grad(dx);
      },
      "select_time");
}

Variable sum_all(const Variable& a) {
  Tensor out = Tensor::scalar(ops::sum(a.value()));
  Shape in_shape = a.shape();
  return make_op_node(
      std::move(out), {a.node()},
      [in_shape](Node& n) {
        if (!n.parents[0]->requires_grad) return;
        n.parents[0]->accumulate_grad(
            Tensor::full(in_shape, n.grad.item()));
      },
      "sum_all");
}

Variable mean_all(const Variable& a) {
  const auto count = static_cast<float>(a.numel());
  Tensor out = Tensor::scalar(ops::mean(a.value()));
  Shape in_shape = a.shape();
  return make_op_node(
      std::move(out), {a.node()},
      [in_shape, count](Node& n) {
        if (!n.parents[0]->requires_grad) return;
        n.parents[0]->accumulate_grad(
            Tensor::full(in_shape, n.grad.item() / count));
      },
      "mean_all");
}

Variable apply_mask(const Variable& x, const Tensor& mask, float keep_scale) {
  RIPPLE_CHECK(mask.same_shape(x.value()))
      << "apply_mask shape mismatch: " << shape_to_string(mask.shape())
      << " vs " << shape_to_string(x.value().shape());
  Tensor scaled_mask = ops::mul_scalar(mask, keep_scale);
  Tensor out = ops::mul(x.value(), scaled_mask);
  return make_op_node(
      std::move(out), {x.node()},
      [scaled_mask](Node& n) {
        if (!n.parents[0]->requires_grad) return;
        n.parents[0]->accumulate_grad(ops::mul(n.grad, scaled_mask));
      },
      "apply_mask");
}

}  // namespace ripple::autograd
