// Numerical gradient checking (central finite differences).
//
// Used by the test suite to validate every differentiable op against its
// analytic backward. float32 limits precision, so defaults are loose-ish:
// perturbation 1e-2, tolerance checked by the caller (typically <= 5e-2
// relative on well-conditioned ops).
#pragma once

#include <functional>
#include <vector>

#include "autograd/variable.h"

namespace ripple::autograd {

struct GradCheckResult {
  double max_abs_error = 0.0;
  double max_rel_error = 0.0;
  /// Parameter index / flat element index where the max relative error
  /// occurred (for debugging failing ops).
  size_t worst_input = 0;
  int64_t worst_element = 0;
};

/// fn must build a *fresh* graph from `inputs` and return a scalar loss.
/// Checks d loss / d inputs[i] for every element of every input.
GradCheckResult gradcheck(
    const std::function<Variable(std::vector<Variable>&)>& fn,
    std::vector<Variable>& inputs, float perturbation = 1e-2f);

}  // namespace ripple::autograd
