// Gradient-descent optimizers over registered module parameters.
#pragma once

#include <vector>

#include "autograd/module.h"

namespace ripple::autograd {

/// Common interface: zero_grad() before forward, step() after backward.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Parameter*> params)
      : params_(std::move(params)) {}
  virtual ~Optimizer() = default;
  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  void zero_grad();
  virtual void step() = 0;

  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }

 protected:
  std::vector<Parameter*> params_;
  float lr_ = 1e-3f;
};

/// SGD with classical momentum and decoupled L2 weight decay.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Parameter*> params, float lr, float momentum = 0.0f,
      float weight_decay = 0.0f);
  void step() override;

 private:
  float momentum_;
  float weight_decay_;
  std::vector<Tensor> velocity_;
};

/// Adam (Kingma & Ba) with optional L2 weight decay added to the gradient.
class Adam : public Optimizer {
 public:
  Adam(std::vector<Parameter*> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f, float weight_decay = 0.0f);
  void step() override;

 private:
  float beta1_;
  float beta2_;
  float eps_;
  float weight_decay_;
  int64_t t_ = 0;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

}  // namespace ripple::autograd
