#include "autograd/loss.h"

#include <cmath>

#include "autograd/ops.h"
#include "tensor/ops.h"

namespace ripple::autograd {

Variable cross_entropy_loss(const Variable& logits,
                            const std::vector<int64_t>& targets) {
  const Tensor& lv = logits.value();
  RIPPLE_CHECK(lv.rank() == 2) << "cross_entropy_loss expects logits [N,C]";
  const int64_t n = lv.dim(0);
  const int64_t c = lv.dim(1);
  RIPPLE_CHECK(static_cast<int64_t>(targets.size()) == n)
      << "cross_entropy_loss: " << targets.size() << " targets for " << n
      << " rows";
  for (int64_t t : targets)
    RIPPLE_CHECK(t >= 0 && t < c) << "target class " << t << " out of range";

  Tensor log_probs = ops::log_softmax_rows(lv);
  double total = 0.0;
  const float* plp = log_probs.data();
  for (int64_t i = 0; i < n; ++i)
    total -= plp[i * c + targets[static_cast<size_t>(i)]];
  Tensor out = Tensor::scalar(static_cast<float>(total / n));

  std::vector<int64_t> tgt = targets;
  return make_op_node(
      std::move(out), {logits.node()},
      [log_probs, tgt, n, c](Node& nd) {
        if (!nd.parents[0]->requires_grad) return;
        // d loss / d logits = (softmax - onehot) / N, scaled by upstream.
        const float scale = nd.grad.item() / static_cast<float>(n);
        Tensor dx({n, c});
        const float* plp = log_probs.data();
        float* pdx = dx.data();
        for (int64_t i = 0; i < n; ++i) {
          for (int64_t j = 0; j < c; ++j)
            pdx[i * c + j] = std::exp(plp[i * c + j]) * scale;
          pdx[i * c + tgt[static_cast<size_t>(i)]] -= scale;
        }
        nd.parents[0]->accumulate_grad(dx);
      },
      "cross_entropy_loss");
}

Variable mse_loss(const Variable& pred, const Tensor& target) {
  const Tensor& pv = pred.value();
  RIPPLE_CHECK(pv.same_shape(target))
      << "mse_loss shape mismatch: " << shape_to_string(pv.shape()) << " vs "
      << shape_to_string(target.shape());
  const int64_t n = pv.numel();
  double total = 0.0;
  const float* pp = pv.data();
  const float* pt = target.data();
  for (int64_t i = 0; i < n; ++i) {
    const double d = pp[i] - pt[i];
    total += d * d;
  }
  Tensor out = Tensor::scalar(static_cast<float>(total / n));
  Tensor pred_copy = pv;
  Tensor tgt = target;
  return make_op_node(
      std::move(out), {pred.node()},
      [pred_copy, tgt, n](Node& nd) {
        if (!nd.parents[0]->requires_grad) return;
        const float scale = 2.0f * nd.grad.item() / static_cast<float>(n);
        Tensor dx(pred_copy.shape());
        const float* pp = pred_copy.data();
        const float* pt = tgt.data();
        float* pdx = dx.data();
        for (int64_t i = 0; i < n; ++i) pdx[i] = scale * (pp[i] - pt[i]);
        nd.parents[0]->accumulate_grad(dx);
      },
      "mse_loss");
}

Variable bce_with_logits_loss(const Variable& logits, const Tensor& target) {
  const Tensor& lv = logits.value();
  RIPPLE_CHECK(lv.same_shape(target))
      << "bce_with_logits_loss shape mismatch: " << shape_to_string(lv.shape())
      << " vs " << shape_to_string(target.shape());
  const int64_t n = lv.numel();
  double total = 0.0;
  const float* px = lv.data();
  const float* pt = target.data();
  for (int64_t i = 0; i < n; ++i) {
    // max(x,0) − x·t + log(1 + exp(−|x|))
    const float x = px[i];
    total += std::max(x, 0.0f) - x * pt[i] +
             std::log1p(std::exp(-std::fabs(x)));
  }
  Tensor out = Tensor::scalar(static_cast<float>(total / n));
  Tensor logits_copy = lv;
  Tensor tgt = target;
  return make_op_node(
      std::move(out), {logits.node()},
      [logits_copy, tgt, n](Node& nd) {
        if (!nd.parents[0]->requires_grad) return;
        const float scale = nd.grad.item() / static_cast<float>(n);
        Tensor dx(logits_copy.shape());
        const float* px = logits_copy.data();
        const float* pt = tgt.data();
        float* pdx = dx.data();
        for (int64_t i = 0; i < n; ++i) {
          const float sig = 1.0f / (1.0f + std::exp(-px[i]));
          pdx[i] = scale * (sig - pt[i]);
        }
        nd.parents[0]->accumulate_grad(dx);
      },
      "bce_with_logits_loss");
}

}  // namespace ripple::autograd
