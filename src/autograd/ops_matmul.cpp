// Dense linear-algebra ops: matmul and the fused linear layer op.
#include <cstring>

#include "autograd/lowered.h"
#include "autograd/ops.h"
#include "deploy/exec_backend.h"
#include "deploy/trace.h"
#include "tensor/gemm.h"
#include "tensor/ops.h"

namespace ripple::autograd {

Variable matmul(const Variable& a, const Variable& b) {
  Tensor out = ripple::matmul(a.value(), b.value());
  Tensor av = a.value();
  Tensor bv = b.value();
  return make_op_node(
      std::move(out), {a.node(), b.node()},
      [av, bv](Node& n) {
        const int64_t m = av.dim(0);
        const int64_t k = av.dim(1);
        const int64_t nn = bv.dim(1);
        if (n.parents[0]->requires_grad) {
          // dA = dC · Bᵀ
          Tensor da({m, k});
          gemm_nt(m, k, nn, n.grad.data(), bv.data(), da.data());
          n.parents[0]->accumulate_grad(da);
        }
        if (n.parents[1]->requires_grad) {
          // dB = Aᵀ · dC
          Tensor db({k, nn});
          gemm_tn(k, nn, m, av.data(), n.grad.data(), db.data());
          n.parents[1]->accumulate_grad(db);
        }
      },
      "matmul");
}

void linear_forward_into(const Tensor& x, const Tensor& w, const float* bias,
                         Tensor& out) {
  const int64_t n = x.dim(0);
  const int64_t fin = x.dim(1);
  const int64_t fout = w.dim(0);
  // The GEMM kernels accumulate into C; start from zero like the graph op's
  // zero-filled output tensor always did.
  std::memset(out.data(), 0, sizeof(float) * static_cast<size_t>(out.numel()));
  // out = x · wᵀ + b, bias fused into the GEMM epilogue (per-column: the
  // feature axis of the [N, Fout] output).
  GemmEpilogue ep;
  ep.col_bias = bias;
  deploy::ExecutionBackend* backend = deploy::active_exec_backend();
  if (backend != nullptr && backend->linear(x, w, bias, out)) {
    // A serving session routed this layer to its execution substrate
    // (e.g. the IMC crossbar); `out` holds that substrate's result.
  } else if (active_pack_cache() != nullptr) {
    // Serving path: the session's frozen cache holds the weight panels, so
    // coalesced LSTM/MLP batches stop re-packing B every call. Identical
    // arithmetic to the gemm_nt_ex path (packing is pure data movement).
    PackedGemmB local;
    const PackedGemmB& pw = pack_gemm_b_nt_cached(fout, fin, w.data(), local);
    gemm_nt_prepacked(n, x.data(), pw, out.data(), ep);
  } else {
    gemm_nt_ex(n, fout, fin, x.data(), w.data(), out.data(), ep);
  }
}

Variable linear(const Variable& x, const Variable& w, const Variable& b) {
  RIPPLE_CHECK(x.value().rank() == 2) << "linear input must be [N,Fin], got "
                                      << shape_to_string(x.shape());
  RIPPLE_CHECK(w.value().rank() == 2) << "linear weight must be [Fout,Fin]";
  const int64_t n = x.dim(0);
  const int64_t fin = x.dim(1);
  const int64_t fout = w.dim(0);
  RIPPLE_CHECK(w.dim(1) == fin)
      << "linear: weight " << shape_to_string(w.shape())
      << " incompatible with input " << shape_to_string(x.shape());
  const bool has_bias = b.defined();
  if (has_bias) {
    RIPPLE_CHECK(b.value().rank() == 1 && b.dim(0) == fout)
        << "linear: bias shape " << shape_to_string(b.shape());
  }

  Tensor out = Tensor::empty({n, fout});
  linear_forward_into(x.value(), w.value(),
                      has_bias ? b.value().data() : nullptr, out);

  if (deploy::TraceRecorder* tr = deploy::active_trace()) {
    deploy::TraceStep ts;
    ts.tag = deploy::OpTag::kLinear;
    ts.inputs = {x.value()};
    ts.output = out;
    ts.w = w.value();
    if (has_bias) ts.b = b.value();
    tr->record(std::move(ts));
  }

  Tensor xv = x.value();
  Tensor wv = w.value();
  std::vector<NodePtr> parents = {x.node(), w.node()};
  if (has_bias) parents.push_back(b.node());
  return make_op_node(
      std::move(out), std::move(parents),
      [xv, wv, n, fin, fout, has_bias](Node& nd) {
        const Tensor& dy = nd.grad;  // [N, Fout]
        if (nd.parents[0]->requires_grad) {
          // dX = dY · W
          Tensor dx({n, fin});
          gemm_nn(n, fin, fout, dy.data(), wv.data(), dx.data());
          nd.parents[0]->accumulate_grad(dx);
        }
        if (nd.parents[1]->requires_grad) {
          // dW = dYᵀ · X
          Tensor dw({fout, fin});
          gemm_tn(fout, fin, n, dy.data(), xv.data(), dw.data());
          nd.parents[1]->accumulate_grad(dw);
        }
        if (has_bias && nd.parents[2]->requires_grad) {
          Tensor db({fout});
          float* pdb = db.data();
          const float* pdy = dy.data();
          for (int64_t i = 0; i < n; ++i)
            for (int64_t j = 0; j < fout; ++j) pdb[j] += pdy[i * fout + j];
          nd.parents[2]->accumulate_grad(db);
        }
      },
      "linear");
}

}  // namespace ripple::autograd
