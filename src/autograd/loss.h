// Loss functions. Each returns a scalar Variable with a fused backward
// (numerically stable; no separate softmax node needed).
#pragma once

#include <cstdint>
#include <vector>

#include "autograd/variable.h"

namespace ripple::autograd {

/// Mean softmax cross-entropy of logits [N,C] against integer class labels.
Variable cross_entropy_loss(const Variable& logits,
                            const std::vector<int64_t>& targets);

/// Mean squared error against a constant target of the same shape.
Variable mse_loss(const Variable& pred, const Tensor& target);

/// Mean binary cross-entropy on logits (stable formulation) against a
/// constant {0,1} target of the same shape. Used for dense segmentation.
Variable bce_with_logits_loss(const Variable& logits, const Tensor& target);

}  // namespace ripple::autograd
