// Shared inference-forward kernels.
//
// Each `*_forward_into` writes a layer forward into a caller-owned output
// buffer and is called from two places: the autograd ops (graph execution)
// and the compiled execution plans (deploy/plan.cpp). Keeping exactly one
// definition of the arithmetic — same kernel dispatch, same accumulation
// order, same epilogue — is what makes a compiled plan bit-exact against
// the graph oracle, which `deploy::compile` verifies with memcmp.
//
// All kernels route through the active ExecutionBackend / PackedACache
// scopes exactly like the graph ops, so the three serving backends
// (kFp32 / kQuantSim / kCrossbar) behave identically on both paths.
#pragma once

#include <cstdint>

#include "tensor/tensor.h"

namespace ripple::autograd {

/// out = x · wᵀ (+ bias per output column). x [N,Fin], w [Fout,Fin],
/// out [N,Fout]. Zeroes `out` first (the GEMM accumulates into C).
void linear_forward_into(const Tensor& x, const Tensor& w, const float* bias,
                         Tensor& out);

/// Samples fused into one lowered-conv GEMM, bounded so the shared cols
/// buffer stays cache/memory friendly (~8 MB).
int64_t conv_group_size(int64_t n, int64_t ck, int64_t oa);

/// Reusable im2col + GEMM staging buffers for the lowered convolutions.
/// `ensure` grows (never shrinks) the buffers to the given group geometry;
/// compiled plans size them once at compile time so the steady-state
/// serving path never reallocates.
struct ConvWorkspace {
  Tensor cols;   // [ck, group·oa]
  Tensor stage;  // [cout, group·oa]
  void ensure(int64_t ck, int64_t cout, int64_t group_oa);
};

/// out = conv2d(x, w) (+ per-channel bias). x [N,Cin,H,W],
/// w [Cout,Cin,kh,kw], out [N,Cout,OH,OW] (fully overwritten).
void conv2d_forward_into(const Tensor& x, const Tensor& w, const float* bias,
                         int64_t stride, int64_t pad, ConvWorkspace& ws,
                         Tensor& out);

/// out = conv1d(x, w) (+ per-channel bias). x [N,Cin,L], w [Cout,Cin,k],
/// out [N,Cout,OL] (fully overwritten).
void conv1d_forward_into(const Tensor& x, const Tensor& w, const float* bias,
                         int64_t stride, int64_t pad, ConvWorkspace& ws,
                         Tensor& out);

/// Zero-mean / unit-variance per (sample, group) slab, no affine.
/// `inv_std`: when non-null, receives 1/σ per slab (n·groups entries; the
/// graph backward needs it); plans pass nullptr.
void group_normalize_into(const Tensor& x, int64_t groups, float eps,
                          Tensor& out, float* inv_std);

/// argmax: when non-null, receives the flat input index of each max
/// (graph path feeds its backward); plans pass nullptr.
void maxpool2d_forward_into(const Tensor& x, int64_t kernel, int64_t stride,
                            Tensor& out, int64_t* argmax);
void maxpool1d_forward_into(const Tensor& x, int64_t kernel, int64_t stride,
                            Tensor& out, int64_t* argmax);
void avgpool2d_forward_into(const Tensor& x, int64_t kernel, int64_t stride,
                            Tensor& out);
/// Global average pool over `spatial` trailing elements per (n, c).
void global_avg_pool_into(const Tensor& x, int64_t spatial, Tensor& out);
void upsample_nearest2x_into(const Tensor& x, Tensor& out);

}  // namespace ripple::autograd
