#include "autograd/optimizer.h"

#include <cmath>

namespace ripple::autograd {

void Optimizer::zero_grad() {
  for (Parameter* p : params_) p->var.zero_grad();
}

Sgd::Sgd(std::vector<Parameter*> params, float lr, float momentum,
         float weight_decay)
    : Optimizer(std::move(params)),
      momentum_(momentum),
      weight_decay_(weight_decay) {
  lr_ = lr;
  velocity_.reserve(params_.size());
  for (Parameter* p : params_)
    velocity_.push_back(Tensor::zeros(p->var.shape()));
}

void Sgd::step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    Parameter* p = params_[i];
    if (!p->var.has_grad()) continue;
    float* w = p->var.value().data();
    const float* g = p->var.grad().data();
    float* v = velocity_[i].data();
    const int64_t n = p->var.numel();
    for (int64_t k = 0; k < n; ++k) {
      const float grad = g[k] + weight_decay_ * w[k];
      v[k] = momentum_ * v[k] + grad;
      w[k] -= lr_ * v[k];
    }
  }
}

Adam::Adam(std::vector<Parameter*> params, float lr, float beta1, float beta2,
           float eps, float weight_decay)
    : Optimizer(std::move(params)),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  lr_ = lr;
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (Parameter* p : params_) {
    m_.push_back(Tensor::zeros(p->var.shape()));
    v_.push_back(Tensor::zeros(p->var.shape()));
  }
}

void Adam::step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    Parameter* p = params_[i];
    if (!p->var.has_grad()) continue;
    float* w = p->var.value().data();
    const float* g = p->var.grad().data();
    float* m = m_[i].data();
    float* v = v_[i].data();
    const int64_t n = p->var.numel();
    for (int64_t k = 0; k < n; ++k) {
      const float grad = g[k] + weight_decay_ * w[k];
      m[k] = beta1_ * m[k] + (1.0f - beta1_) * grad;
      v[k] = beta2_ * v[k] + (1.0f - beta2_) * grad * grad;
      const float mhat = m[k] / bc1;
      const float vhat = v[k] / bc2;
      w[k] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

}  // namespace ripple::autograd
