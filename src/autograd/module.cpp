#include "autograd/module.h"

namespace ripple::autograd {

const char* param_kind_name(ParamKind kind) {
  switch (kind) {
    case ParamKind::kWeight:
      return "weight";
    case ParamKind::kBias:
      return "bias";
    case ParamKind::kAffineWeight:
      return "affine_weight";
    case ParamKind::kAffineBias:
      return "affine_bias";
    case ParamKind::kOther:
      return "other";
  }
  return "unknown";
}

std::vector<Parameter*> Module::parameters() {
  std::vector<Parameter*> out;
  for (auto& p : params_) out.push_back(p.get());
  for (auto& [name, child] : children_) {
    for (Parameter* p : child->parameters()) out.push_back(p);
  }
  return out;
}

std::vector<Parameter*> Module::parameters(ParamKind kind) {
  std::vector<Parameter*> out;
  for (Parameter* p : parameters())
    if (p->kind == kind) out.push_back(p);
  return out;
}

std::vector<Module::BufferRef> Module::buffers() {
  std::vector<BufferRef> out;
  for (auto& [name, buf] : buffers_) out.push_back({name, buf});
  for (auto& [name, child] : children_) {
    for (BufferRef b : child->buffers())
      out.push_back({name + "." + b.name, b.tensor});
  }
  return out;
}

void Module::register_buffer(std::string name, Tensor& buffer) {
  buffers_.emplace_back(std::move(name), &buffer);
}

void Module::zero_grad() {
  for (Parameter* p : parameters()) p->var.zero_grad();
}

int64_t Module::parameter_count() {
  int64_t n = 0;
  for (Parameter* p : parameters()) n += p->var.numel();
  return n;
}

void Module::set_training(bool training) {
  training_ = training;
  for (auto& [name, child] : children_) child->set_training(training);
}

Parameter& Module::register_parameter(std::string name, Tensor init,
                                      ParamKind kind) {
  auto p = std::make_unique<Parameter>();
  p->name = std::move(name);
  p->var = Variable(std::move(init), /*requires_grad=*/true);
  p->kind = kind;
  params_.push_back(std::move(p));
  return *params_.back();
}

void Module::register_module(std::string name, Module& child) {
  children_.emplace_back(std::move(name), &child);
}

}  // namespace ripple::autograd
