#include "autograd/gradcheck.h"

#include <cmath>

namespace ripple::autograd {

GradCheckResult gradcheck(
    const std::function<Variable(std::vector<Variable>&)>& fn,
    std::vector<Variable>& inputs, float perturbation) {
  // Analytic gradients.
  for (Variable& v : inputs) v.zero_grad();
  Variable loss = fn(inputs);
  RIPPLE_CHECK(loss.numel() == 1) << "gradcheck needs a scalar loss";
  loss.backward();

  std::vector<Tensor> analytic;
  analytic.reserve(inputs.size());
  for (Variable& v : inputs) {
    RIPPLE_CHECK(v.requires_grad()) << "gradcheck input without requires_grad";
    analytic.push_back(v.has_grad() ? v.grad().clone()
                                    : Tensor::zeros(v.shape()));
  }

  GradCheckResult result;
  NoGradGuard no_grad;
  for (size_t i = 0; i < inputs.size(); ++i) {
    float* data = inputs[i].value().data();
    const int64_t n = inputs[i].numel();
    for (int64_t k = 0; k < n; ++k) {
      const float saved = data[k];
      data[k] = saved + perturbation;
      const double lp = fn(inputs).value().item();
      data[k] = saved - perturbation;
      const double lm = fn(inputs).value().item();
      data[k] = saved;
      const double numeric = (lp - lm) / (2.0 * perturbation);
      const double exact = analytic[i].data()[k];
      const double abs_err = std::fabs(numeric - exact);
      const double denom = std::max(1.0, std::max(std::fabs(numeric),
                                                  std::fabs(exact)));
      const double rel_err = abs_err / denom;
      if (abs_err > result.max_abs_error) result.max_abs_error = abs_err;
      if (rel_err > result.max_rel_error) {
        result.max_rel_error = rel_err;
        result.worst_input = i;
        result.worst_element = k;
      }
    }
  }
  return result;
}

}  // namespace ripple::autograd
