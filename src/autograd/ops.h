// Differentiable operations on Variables.
//
// Each op computes its value eagerly with the raw kernels in src/tensor and
// attaches a backward closure. Broadcasting is deliberately restricted to
// the patterns neural layers need (same-shape elementwise, per-channel
// scale/bias along dim 1, scalars); anything else is a shape error.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "autograd/variable.h"

namespace ripple::autograd {

// ---- elementwise (same shape) -------------------------------------------
Variable add(const Variable& a, const Variable& b);
Variable sub(const Variable& a, const Variable& b);
Variable mul(const Variable& a, const Variable& b);
Variable neg(const Variable& a);

// ---- scalar ---------------------------------------------------------------
Variable add_scalar(const Variable& a, float s);
Variable mul_scalar(const Variable& a, float s);

// ---- per-channel broadcast (dim 1 of rank-2/3/4 tensors; for rank 2 the
// "channel" axis is the feature axis) ---------------------------------------
/// x * gamma[c] — gamma shape must be [x.dim(1)].
Variable mul_channel(const Variable& x, const Variable& gamma);
/// x + beta[c].
Variable add_channel(const Variable& x, const Variable& beta);

// ---- replica-grouped per-channel broadcast (batched Monte-Carlo forward:
// the batch dim folds R stochastic replicas, replica-major; gamma/beta hold
// one affine vector per replica) --------------------------------------------
/// x[R·n, C, ...] * gamma[R, C]: rows [r·n, (r+1)·n) scale by gamma[r].
Variable mul_channel_replicated(const Variable& x, const Variable& gamma);
/// x[R·n, C, ...] + beta[R, C].
Variable add_channel_replicated(const Variable& x, const Variable& beta);

// ---- activations -----------------------------------------------------------
Variable relu(const Variable& a);
Variable sigmoid(const Variable& a);
Variable tanh_op(const Variable& a);
/// sign(x) in {-1,+1} with clipped straight-through estimator:
/// d/dx = 1 for |x| <= ste_clip else 0.
Variable sign_ste(const Variable& a, float ste_clip = 1.0f);

// ---- shape ------------------------------------------------------------------
Variable reshape(const Variable& a, Shape new_shape);
/// Concatenate along dim 1.
Variable concat_channels(const Variable& a, const Variable& b);
/// Columns [begin, end) of a [N, F] tensor.
Variable slice_cols(const Variable& a, int64_t begin, int64_t end);
/// x[:, t, :] of a [N, T, F] tensor.
Variable select_time(const Variable& a, int64_t t);

// ---- reductions ---------------------------------------------------------------
Variable sum_all(const Variable& a);
Variable mean_all(const Variable& a);

// ---- linear algebra ------------------------------------------------------------
/// a[M,K] · b[K,N].
Variable matmul(const Variable& a, const Variable& b);
/// x[N,Fin] · wᵀ + b with w[Fout,Fin], b[Fout] (b may be undefined).
Variable linear(const Variable& x, const Variable& w, const Variable& b);

// ---- convolutions ----------------------------------------------------------------
/// x[N,Cin,H,W], w[Cout,Cin,kh,kw], optional b[Cout].
Variable conv2d(const Variable& x, const Variable& w, const Variable& b,
                int64_t stride, int64_t pad);
/// x[N,Cin,L], w[Cout,Cin,k], optional b[Cout].
Variable conv1d(const Variable& x, const Variable& w, const Variable& b,
                int64_t stride, int64_t pad);

// ---- pooling / resampling -----------------------------------------------------------
Variable maxpool2d(const Variable& x, int64_t kernel, int64_t stride);
Variable maxpool1d(const Variable& x, int64_t kernel, int64_t stride);
Variable avgpool2d(const Variable& x, int64_t kernel, int64_t stride);
/// [N,C,H,W] -> [N,C] (mean over H,W).
Variable global_avg_pool2d(const Variable& x);
/// [N,C,L] -> [N,C] (mean over L).
Variable global_avg_pool1d(const Variable& x);
/// Nearest-neighbour 2× upsampling of [N,C,H,W].
Variable upsample_nearest2x(const Variable& x);

// ---- normalization ----------------------------------------------------------------
/// Zero-mean/unit-variance per (sample, group): x is [N,C,...]; channels are
/// split into `groups` contiguous groups; statistics are computed over each
/// group's channels and all trailing spatial dims. groups=1 is
/// LayerNorm-style (per-instance). No affine — the caller composes one.
Variable group_normalize(const Variable& x, int64_t groups, float eps = 1e-5f);

/// BatchNorm statistics helper: normalizes per channel over (N, spatial).
/// In training mode uses batch statistics and updates running stats in
/// place; in eval mode uses the provided running stats (no graph through
/// them). Affine is composed by the caller.
Variable batch_normalize(const Variable& x, Tensor& running_mean,
                         Tensor& running_var, bool training, float momentum,
                         float eps = 1e-5f);

// ---- dropout -----------------------------------------------------------------------
/// Multiplies by `mask` (a constant w.r.t. the graph) and scales by
/// 1/(1-p) (inverted dropout). The caller samples the mask.
Variable apply_mask(const Variable& x, const Tensor& mask, float keep_scale);

}  // namespace ripple::autograd
