// Reverse-mode automatic differentiation.
//
// A Variable is a handle to a graph Node holding a value tensor, an
// optional gradient, and a backward closure that scatters the node's
// gradient into its parents. Calling backward() on a scalar root performs a
// topological traversal and accumulates gradients into every reachable node
// with requires_grad.
//
// Gradients accumulate across backward calls until zero_grad(), matching
// the usual train-step contract (zero → forward → backward → step).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "tensor/tensor.h"

namespace ripple::autograd {

struct Node;
using NodePtr = std::shared_ptr<Node>;

/// One vertex of the autodiff graph.
struct Node {
  Tensor value;
  Tensor grad;  // undefined until first accumulation
  bool requires_grad = false;
  std::vector<NodePtr> parents;
  /// Reads this->grad and accumulates into parents' grads. Null for leaves.
  std::function<void(Node&)> backward_fn;
  const char* op = "leaf";

  /// Gradient tensor, allocating zeros of value's shape on first use.
  Tensor& ensure_grad();
  /// Accumulate g into this node's gradient.
  void accumulate_grad(const Tensor& g);
};

/// User-facing handle. Copies share the node (and therefore the value).
class Variable {
 public:
  Variable() = default;
  /// Leaf node wrapping `value`.
  explicit Variable(Tensor value, bool requires_grad = false);

  /// Internal: wrap an existing node (used by ops).
  explicit Variable(NodePtr node) : node_(std::move(node)) {}

  bool defined() const { return node_ != nullptr; }

  const Tensor& value() const;
  Tensor& value();

  /// Shape convenience passthroughs.
  const Shape& shape() const { return value().shape(); }
  int64_t dim(int i) const { return value().dim(i); }
  int64_t numel() const { return value().numel(); }

  bool requires_grad() const;
  void set_requires_grad(bool rg);

  /// True once a gradient has been accumulated.
  bool has_grad() const;
  const Tensor& grad() const;
  void zero_grad();

  /// Backpropagate from this node. Without a seed the value must be a
  /// single element (typical loss); the seed is then 1.
  void backward();
  void backward(const Tensor& seed);

  /// Same value tensor, fresh leaf with no history (never requires grad).
  Variable detach() const;

  NodePtr node() const { return node_; }

 private:
  NodePtr node_;
};

/// While a NoGradGuard is alive on this thread, ops build constant nodes
/// with no parents/backward closures (fast inference path).
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool previous_;
};

/// True when gradient recording is enabled on this thread (no guard active).
bool grad_enabled();

/// Helper for op implementations: build a result node. Parents/backward are
/// dropped when grad recording is off or no parent requires grad.
Variable make_op_node(Tensor value, std::vector<NodePtr> parents,
                      std::function<void(Node&)> backward_fn, const char* op);

}  // namespace ripple::autograd
