// Convolution, pooling and resampling ops.
//
// Convolution forwards lower to one batched GEMM per sample group: weights
// are packed once per call (PackedGemmA) — or fetched from the serving
// session's frozen PackedACache when one is installed — and reused across
// the whole batch
// — and therefore across all T folded Monte-Carlo replicas — while im2col
// writes each sample's patch matrix as a column block of a shared
// [C·k², G·OA] matrix. The per-channel bias is fused into the GEMM epilogue
// instead of re-walking the output. The patch matrix is recomputed in the
// backward pass instead of cached, trading a little compute for a much
// smaller autograd graph footprint.
//
// The forward arithmetic lives in the `*_forward_into` kernels (lowered.h)
// shared with the compiled execution plans; the graph ops here call the same
// kernels and append a TraceStep when a recorder is active.
#include <algorithm>
#include <cstring>
#include <limits>

#include "autograd/lowered.h"
#include "autograd/ops.h"
#include "deploy/exec_backend.h"
#include "deploy/trace.h"
#include "tensor/gemm.h"
#include "tensor/im2col.h"
#include "tensor/ops.h"
#include "tensor/threadpool.h"

namespace ripple::autograd {

int64_t conv_group_size(int64_t n, int64_t ck, int64_t oa) {
  const int64_t budget = int64_t{1} << 21;  // floats
  return std::clamp<int64_t>(budget / std::max<int64_t>(1, ck * oa), 1, n);
}

void ConvWorkspace::ensure(int64_t ck, int64_t cout, int64_t group_oa) {
  if (cols.numel() < ck * group_oa) cols = Tensor::empty({ck * group_oa});
  if (stage.numel() < cout * group_oa) stage = Tensor::empty({cout * group_oa});
}

void conv2d_forward_into(const Tensor& x, const Tensor& w, const float* bias,
                         int64_t stride, int64_t pad, ConvWorkspace& ws,
                         Tensor& out) {
  const int64_t n = x.dim(0);
  const int64_t cin = x.dim(1);
  const int64_t h = x.dim(2);
  const int64_t wd = x.dim(3);
  const int64_t cout = w.dim(0);
  const int64_t kh = w.dim(2);
  const int64_t kw = w.dim(3);
  const int64_t oh = out.dim(2);
  const int64_t ow = out.dim(3);
  const int64_t ck = cin * kh * kw;
  const int64_t oa = oh * ow;
  const float* px = x.data();
  float* po = out.data();
  PackedGemmA pw_local;
  const PackedGemmA& pw = pack_gemm_a_cached(cout, ck, w.data(), pw_local);
  GemmEpilogue ep;
  ep.row_bias = bias;
  deploy::ExecutionBackend* backend = deploy::active_exec_backend();
  const int64_t group = conv_group_size(n, ck, oa);
  ws.ensure(ck, cout, group * oa);
  for (int64_t g0 = 0; g0 < n; g0 += group) {
    const int64_t gn = std::min(group, n - g0);
    const int64_t ldc = gn * oa;
    float* pc = ws.cols.data();
    parallel_for(gn, [&](int64_t s0, int64_t s1) {
      for (int64_t s = s0; s < s1; ++s)
        im2col_2d_ld(px + (g0 + s) * cin * h * wd, cin, h, wd, kh, kw,
                     stride, pad, pc + s * oa, ldc);
    }, /*grain=*/1);
    std::memset(ws.stage.data(), 0, sizeof(float) * cout * ldc);
    // A serving session's execution backend may claim the lowered block
    // (crossbar-mapped convs); otherwise the packed digital GEMM runs.
    if (backend == nullptr ||
        !backend->conv_cols(cout, ldc, ck, w.data(), pc, ws.stage.data(),
                            ep.row_bias)) {
      gemm_nn_prepacked(pw, ldc, pc, ws.stage.data(), ep);
    }
    // Scatter the [Cout, G·OA] GEMM block back to [N, Cout, OA] layout.
    const float* ps = ws.stage.data();
    parallel_for(gn, [&](int64_t s0, int64_t s1) {
      for (int64_t s = s0; s < s1; ++s)
        for (int64_t c = 0; c < cout; ++c)
          std::memcpy(po + ((g0 + s) * cout + c) * oa,
                      ps + c * ldc + s * oa, sizeof(float) * oa);
    }, /*grain=*/1);
  }
}

void conv1d_forward_into(const Tensor& x, const Tensor& w, const float* bias,
                         int64_t stride, int64_t pad, ConvWorkspace& ws,
                         Tensor& out) {
  const int64_t n = x.dim(0);
  const int64_t cin = x.dim(1);
  const int64_t l = x.dim(2);
  const int64_t cout = w.dim(0);
  const int64_t k = w.dim(2);
  const int64_t ol = out.dim(2);
  const int64_t ck = cin * k;
  const float* px = x.data();
  float* po = out.data();
  PackedGemmA pw_local;
  const PackedGemmA& pw = pack_gemm_a_cached(cout, ck, w.data(), pw_local);
  GemmEpilogue ep;
  ep.row_bias = bias;
  deploy::ExecutionBackend* backend = deploy::active_exec_backend();
  const int64_t group = conv_group_size(n, ck, ol);
  ws.ensure(ck, cout, group * ol);
  for (int64_t g0 = 0; g0 < n; g0 += group) {
    const int64_t gn = std::min(group, n - g0);
    const int64_t ldc = gn * ol;
    float* pc = ws.cols.data();
    parallel_for(gn, [&](int64_t s0, int64_t s1) {
      for (int64_t s = s0; s < s1; ++s)
        im2col_1d_ld(px + (g0 + s) * cin * l, cin, l, k, stride, pad,
                     pc + s * ol, ldc);
    }, /*grain=*/1);
    std::memset(ws.stage.data(), 0, sizeof(float) * cout * ldc);
    if (backend == nullptr ||
        !backend->conv_cols(cout, ldc, ck, w.data(), pc, ws.stage.data(),
                            ep.row_bias)) {
      gemm_nn_prepacked(pw, ldc, pc, ws.stage.data(), ep);
    }
    const float* ps = ws.stage.data();
    parallel_for(gn, [&](int64_t s0, int64_t s1) {
      for (int64_t s = s0; s < s1; ++s)
        for (int64_t c = 0; c < cout; ++c)
          std::memcpy(po + ((g0 + s) * cout + c) * ol,
                      ps + c * ldc + s * ol, sizeof(float) * ol);
    }, /*grain=*/1);
  }
}

void maxpool2d_forward_into(const Tensor& x, int64_t kernel, int64_t stride,
                            Tensor& out, int64_t* argmax) {
  const int64_t n = x.dim(0);
  const int64_t c = x.dim(1);
  const int64_t h = x.dim(2);
  const int64_t w = x.dim(3);
  const int64_t oh = out.dim(2);
  const int64_t ow = out.dim(3);
  const float* px = x.data();
  float* po = out.data();
  int64_t oi = 0;
  for (int64_t i = 0; i < n * c; ++i) {
    const float* plane = px + i * h * w;
    for (int64_t oy = 0; oy < oh; ++oy)
      for (int64_t ox = 0; ox < ow; ++ox, ++oi) {
        float best = -std::numeric_limits<float>::infinity();
        int64_t best_idx = 0;
        for (int64_t dy = 0; dy < kernel; ++dy)
          for (int64_t dx = 0; dx < kernel; ++dx) {
            const int64_t iy = oy * stride + dy;
            const int64_t ix = ox * stride + dx;
            if (iy >= h || ix >= w) continue;
            const float v = plane[iy * w + ix];
            if (v > best) {
              best = v;
              best_idx = i * h * w + iy * w + ix;
            }
          }
        po[oi] = best;
        if (argmax != nullptr) argmax[oi] = best_idx;
      }
  }
}

void maxpool1d_forward_into(const Tensor& x, int64_t kernel, int64_t stride,
                            Tensor& out, int64_t* argmax) {
  const int64_t n = x.dim(0);
  const int64_t c = x.dim(1);
  const int64_t l = x.dim(2);
  const int64_t ol = out.dim(2);
  const float* px = x.data();
  float* po = out.data();
  int64_t oi = 0;
  for (int64_t i = 0; i < n * c; ++i) {
    const float* line = px + i * l;
    for (int64_t ox = 0; ox < ol; ++ox, ++oi) {
      float best = -std::numeric_limits<float>::infinity();
      int64_t best_idx = 0;
      for (int64_t dx = 0; dx < kernel; ++dx) {
        const int64_t ix = ox * stride + dx;
        if (ix >= l) continue;
        if (line[ix] > best) {
          best = line[ix];
          best_idx = i * l + ix;
        }
      }
      po[oi] = best;
      if (argmax != nullptr) argmax[oi] = best_idx;
    }
  }
}

void avgpool2d_forward_into(const Tensor& x, int64_t kernel, int64_t stride,
                            Tensor& out) {
  const int64_t n = x.dim(0);
  const int64_t c = x.dim(1);
  const int64_t h = x.dim(2);
  const int64_t w = x.dim(3);
  const int64_t oh = out.dim(2);
  const int64_t ow = out.dim(3);
  const float inv_area = 1.0f / static_cast<float>(kernel * kernel);
  const float* px = x.data();
  float* po = out.data();
  int64_t oi = 0;
  for (int64_t i = 0; i < n * c; ++i) {
    const float* plane = px + i * h * w;
    for (int64_t oy = 0; oy < oh; ++oy)
      for (int64_t ox = 0; ox < ow; ++ox, ++oi) {
        double acc = 0.0;
        for (int64_t dy = 0; dy < kernel; ++dy)
          for (int64_t dx = 0; dx < kernel; ++dx) {
            const int64_t iy = oy * stride + dy;
            const int64_t ix = ox * stride + dx;
            if (iy < h && ix < w) acc += plane[iy * w + ix];
          }
        po[oi] = static_cast<float>(acc) * inv_area;
      }
  }
}

void global_avg_pool_into(const Tensor& x, int64_t spatial, Tensor& out) {
  const int64_t rows = x.dim(0) * x.dim(1);
  const float inv = 1.0f / static_cast<float>(spatial);
  const float* px = x.data();
  float* po = out.data();
  for (int64_t i = 0; i < rows; ++i) {
    double acc = 0.0;
    for (int64_t k = 0; k < spatial; ++k) acc += px[i * spatial + k];
    po[i] = static_cast<float>(acc) * inv;
  }
}

void upsample_nearest2x_into(const Tensor& x, Tensor& out) {
  const int64_t n = x.dim(0);
  const int64_t c = x.dim(1);
  const int64_t h = x.dim(2);
  const int64_t w = x.dim(3);
  const float* px = x.data();
  float* po = out.data();
  for (int64_t i = 0; i < n * c; ++i) {
    const float* plane = px + i * h * w;
    float* oplane = po + i * h * w * 4;
    for (int64_t y = 0; y < 2 * h; ++y)
      for (int64_t x2 = 0; x2 < 2 * w; ++x2)
        oplane[y * 2 * w + x2] = plane[(y / 2) * w + (x2 / 2)];
  }
}

namespace {

// Appends a structured conv TraceStep when a recorder is active.
void trace_conv(deploy::OpTag tag, const Tensor& x, const Tensor& out,
                const Tensor& w, const Tensor& b, bool has_bias,
                int64_t stride, int64_t pad) {
  deploy::TraceRecorder* tr = deploy::active_trace();
  if (tr == nullptr) return;
  deploy::TraceStep ts;
  ts.tag = tag;
  ts.inputs = {x};
  ts.output = out;
  ts.w = w;
  if (has_bias) ts.b = b;
  ts.i0 = stride;
  ts.i1 = pad;
  tr->record(std::move(ts));
}

// Appends a closure-carried TraceStep (pool / resample ops).
void trace_fn(deploy::OpTag tag, const Tensor& x, const Tensor& out,
              deploy::StepFn fn) {
  deploy::TraceRecorder* tr = deploy::active_trace();
  if (tr == nullptr) return;
  deploy::TraceStep ts;
  ts.tag = tag;
  ts.inputs = {x};
  ts.output = out;
  ts.fn = std::move(fn);
  tr->record(std::move(ts));
}

}  // namespace

Variable conv2d(const Variable& x, const Variable& w, const Variable& b,
                int64_t stride, int64_t pad) {
  RIPPLE_CHECK(x.value().rank() == 4) << "conv2d input must be [N,C,H,W]";
  RIPPLE_CHECK(w.value().rank() == 4) << "conv2d weight must be [Cout,Cin,kh,kw]";
  const int64_t n = x.dim(0);
  const int64_t cin = x.dim(1);
  const int64_t h = x.dim(2);
  const int64_t wd = x.dim(3);
  const int64_t cout = w.dim(0);
  const int64_t kh = w.dim(2);
  const int64_t kw = w.dim(3);
  RIPPLE_CHECK(w.dim(1) == cin)
      << "conv2d: weight expects " << w.dim(1) << " input channels, input has "
      << cin;
  const int64_t oh = conv_out_size(h, kh, stride, pad);
  const int64_t ow = conv_out_size(wd, kw, stride, pad);
  const int64_t ck = cin * kh * kw;
  const int64_t oa = oh * ow;
  const bool has_bias = b.defined();
  if (has_bias) {
    RIPPLE_CHECK(b.value().rank() == 1 && b.dim(0) == cout)
        << "conv2d: bias shape " << shape_to_string(b.shape());
  }

  Tensor out = Tensor::empty({n, cout, oh, ow});
  {
    ConvWorkspace ws;
    conv2d_forward_into(x.value(), w.value(),
                        has_bias ? b.value().data() : nullptr, stride, pad, ws,
                        out);
  }
  trace_conv(deploy::OpTag::kConv2d, x.value(), out, w.value(),
             has_bias ? b.value() : Tensor(), has_bias, stride, pad);

  Tensor xv = x.value();
  Tensor wv = w.value();
  std::vector<NodePtr> parents = {x.node(), w.node()};
  if (has_bias) parents.push_back(b.node());
  return make_op_node(
      std::move(out), std::move(parents),
      [xv, wv, n, cin, h, wd, cout, kh, kw, stride, pad, ck, oa,
       has_bias](Node& nd) {
        const float* pdy = nd.grad.data();
        const bool need_dx = nd.parents[0]->requires_grad;
        const bool need_dw = nd.parents[1]->requires_grad;
        Tensor dx = need_dx ? Tensor::zeros(xv.shape()) : Tensor();
        Tensor dw = need_dw ? Tensor::zeros(wv.shape()) : Tensor();
        Tensor cols({ck, oa});
        Tensor dcols({ck, oa});
        for (int64_t i = 0; i < n; ++i) {
          const float* dy_s = pdy + i * cout * oa;
          if (need_dw) {
            im2col_2d(xv.data() + i * cin * h * wd, cin, h, wd, kh, kw,
                      stride, pad, cols.data());
            // dW[Cout,CK] += dy_s[Cout,OA] · colsᵀ[OA,CK]
            gemm_nt(cout, ck, oa, dy_s, cols.data(), dw.data());
          }
          if (need_dx) {
            dcols.fill(0.0f);
            // dcols[CK,OA] = Wᵀ[CK,Cout] · dy_s[Cout,OA]
            gemm_tn(ck, oa, cout, wv.data(), dy_s, dcols.data());
            col2im_2d(dcols.data(), cin, h, wd, kh, kw, stride, pad,
                      dx.data() + i * cin * h * wd);
          }
        }
        if (need_dx) nd.parents[0]->accumulate_grad(dx);
        if (need_dw) nd.parents[1]->accumulate_grad(dw);
        if (has_bias && nd.parents[2]->requires_grad) {
          Tensor db({cout});
          float* pdb = db.data();
          for (int64_t i = 0; i < n; ++i)
            for (int64_t c = 0; c < cout; ++c) {
              const float* row = pdy + (i * cout + c) * oa;
              double acc = 0.0;
              for (int64_t k = 0; k < oa; ++k) acc += row[k];
              pdb[c] += static_cast<float>(acc);
            }
          nd.parents[2]->accumulate_grad(db);
        }
      },
      "conv2d");
}

Variable conv1d(const Variable& x, const Variable& w, const Variable& b,
                int64_t stride, int64_t pad) {
  RIPPLE_CHECK(x.value().rank() == 3) << "conv1d input must be [N,C,L]";
  RIPPLE_CHECK(w.value().rank() == 3) << "conv1d weight must be [Cout,Cin,k]";
  const int64_t n = x.dim(0);
  const int64_t cin = x.dim(1);
  const int64_t l = x.dim(2);
  const int64_t cout = w.dim(0);
  const int64_t k = w.dim(2);
  RIPPLE_CHECK(w.dim(1) == cin) << "conv1d channel mismatch";
  const int64_t ol = conv_out_size(l, k, stride, pad);
  const int64_t ck = cin * k;
  const bool has_bias = b.defined();
  if (has_bias) {
    RIPPLE_CHECK(b.value().rank() == 1 && b.dim(0) == cout)
        << "conv1d: bias shape " << shape_to_string(b.shape());
  }

  Tensor out = Tensor::empty({n, cout, ol});
  {
    ConvWorkspace ws;
    conv1d_forward_into(x.value(), w.value(),
                        has_bias ? b.value().data() : nullptr, stride, pad, ws,
                        out);
  }
  trace_conv(deploy::OpTag::kConv1d, x.value(), out, w.value(),
             has_bias ? b.value() : Tensor(), has_bias, stride, pad);

  Tensor xv = x.value();
  Tensor wv = w.value();
  std::vector<NodePtr> parents = {x.node(), w.node()};
  if (has_bias) parents.push_back(b.node());
  return make_op_node(
      std::move(out), std::move(parents),
      [xv, wv, n, cin, l, cout, k, stride, pad, ck, ol, has_bias](Node& nd) {
        const float* pdy = nd.grad.data();
        const bool need_dx = nd.parents[0]->requires_grad;
        const bool need_dw = nd.parents[1]->requires_grad;
        Tensor dx = need_dx ? Tensor::zeros(xv.shape()) : Tensor();
        Tensor dw = need_dw ? Tensor::zeros(wv.shape()) : Tensor();
        Tensor cols({ck, ol});
        Tensor dcols({ck, ol});
        for (int64_t i = 0; i < n; ++i) {
          const float* dy_s = pdy + i * cout * ol;
          if (need_dw) {
            im2col_1d(xv.data() + i * cin * l, cin, l, k, stride, pad,
                      cols.data());
            gemm_nt(cout, ck, ol, dy_s, cols.data(), dw.data());
          }
          if (need_dx) {
            dcols.fill(0.0f);
            gemm_tn(ck, ol, cout, wv.data(), dy_s, dcols.data());
            col2im_1d(dcols.data(), cin, l, k, stride, pad,
                      dx.data() + i * cin * l);
          }
        }
        if (need_dx) nd.parents[0]->accumulate_grad(dx);
        if (need_dw) nd.parents[1]->accumulate_grad(dw);
        if (has_bias && nd.parents[2]->requires_grad) {
          Tensor db({cout});
          float* pdb = db.data();
          for (int64_t i = 0; i < n; ++i)
            for (int64_t c = 0; c < cout; ++c) {
              const float* row = pdy + (i * cout + c) * ol;
              double acc = 0.0;
              for (int64_t j = 0; j < ol; ++j) acc += row[j];
              pdb[c] += static_cast<float>(acc);
            }
          nd.parents[2]->accumulate_grad(db);
        }
      },
      "conv1d");
}

Variable maxpool2d(const Variable& x, int64_t kernel, int64_t stride) {
  RIPPLE_CHECK(x.value().rank() == 4) << "maxpool2d input must be [N,C,H,W]";
  const int64_t n = x.dim(0);
  const int64_t c = x.dim(1);
  const int64_t h = x.dim(2);
  const int64_t w = x.dim(3);
  const int64_t oh = conv_out_size(h, kernel, stride, /*pad=*/0);
  const int64_t ow = conv_out_size(w, kernel, stride, /*pad=*/0);
  Tensor out = Tensor::empty({n, c, oh, ow});
  auto argmax = std::make_shared<std::vector<int64_t>>(
      static_cast<size_t>(out.numel()));
  maxpool2d_forward_into(x.value(), kernel, stride, out, argmax->data());
  trace_fn(deploy::OpTag::kMaxPool2d, x.value(), out,
           [kernel, stride](const Tensor* const* ins, int, Tensor& o) {
             maxpool2d_forward_into(*ins[0], kernel, stride, o, nullptr);
           });
  Shape in_shape = x.shape();
  return make_op_node(
      std::move(out), {x.node()},
      [argmax, in_shape](Node& nd) {
        if (!nd.parents[0]->requires_grad) return;
        Tensor dx = Tensor::zeros(in_shape);
        float* pdx = dx.data();
        const float* pdy = nd.grad.data();
        for (int64_t i = 0; i < nd.grad.numel(); ++i)
          pdx[(*argmax)[static_cast<size_t>(i)]] += pdy[i];
        nd.parents[0]->accumulate_grad(dx);
      },
      "maxpool2d");
}

Variable maxpool1d(const Variable& x, int64_t kernel, int64_t stride) {
  RIPPLE_CHECK(x.value().rank() == 3) << "maxpool1d input must be [N,C,L]";
  const int64_t n = x.dim(0);
  const int64_t c = x.dim(1);
  const int64_t l = x.dim(2);
  const int64_t ol = conv_out_size(l, kernel, stride, /*pad=*/0);
  Tensor out = Tensor::empty({n, c, ol});
  auto argmax = std::make_shared<std::vector<int64_t>>(
      static_cast<size_t>(out.numel()));
  maxpool1d_forward_into(x.value(), kernel, stride, out, argmax->data());
  trace_fn(deploy::OpTag::kMaxPool1d, x.value(), out,
           [kernel, stride](const Tensor* const* ins, int, Tensor& o) {
             maxpool1d_forward_into(*ins[0], kernel, stride, o, nullptr);
           });
  Shape in_shape = x.shape();
  return make_op_node(
      std::move(out), {x.node()},
      [argmax, in_shape](Node& nd) {
        if (!nd.parents[0]->requires_grad) return;
        Tensor dx = Tensor::zeros(in_shape);
        float* pdx = dx.data();
        const float* pdy = nd.grad.data();
        for (int64_t i = 0; i < nd.grad.numel(); ++i)
          pdx[(*argmax)[static_cast<size_t>(i)]] += pdy[i];
        nd.parents[0]->accumulate_grad(dx);
      },
      "maxpool1d");
}

Variable avgpool2d(const Variable& x, int64_t kernel, int64_t stride) {
  RIPPLE_CHECK(x.value().rank() == 4) << "avgpool2d input must be [N,C,H,W]";
  const int64_t n = x.dim(0);
  const int64_t c = x.dim(1);
  const int64_t h = x.dim(2);
  const int64_t w = x.dim(3);
  const int64_t oh = conv_out_size(h, kernel, stride, /*pad=*/0);
  const int64_t ow = conv_out_size(w, kernel, stride, /*pad=*/0);
  const float inv_area = 1.0f / static_cast<float>(kernel * kernel);
  Tensor out = Tensor::empty({n, c, oh, ow});
  avgpool2d_forward_into(x.value(), kernel, stride, out);
  trace_fn(deploy::OpTag::kAvgPool2d, x.value(), out,
           [kernel, stride](const Tensor* const* ins, int, Tensor& o) {
             avgpool2d_forward_into(*ins[0], kernel, stride, o);
           });
  Shape in_shape = x.shape();
  return make_op_node(
      std::move(out), {x.node()},
      [in_shape, n, c, h, w, oh, ow, kernel, stride, inv_area](Node& nd) {
        if (!nd.parents[0]->requires_grad) return;
        Tensor dx = Tensor::zeros(in_shape);
        float* pdx = dx.data();
        const float* pdy = nd.grad.data();
        int64_t oi = 0;
        for (int64_t i = 0; i < n * c; ++i) {
          float* plane = pdx + i * h * w;
          for (int64_t oy = 0; oy < oh; ++oy)
            for (int64_t ox = 0; ox < ow; ++ox, ++oi) {
              const float g = pdy[oi] * inv_area;
              for (int64_t dy = 0; dy < kernel; ++dy)
                for (int64_t dx2 = 0; dx2 < kernel; ++dx2) {
                  const int64_t iy = oy * stride + dy;
                  const int64_t ix = ox * stride + dx2;
                  if (iy < h && ix < w) plane[iy * w + ix] += g;
                }
            }
        }
        nd.parents[0]->accumulate_grad(dx);
      },
      "avgpool2d");
}

namespace {

Variable global_avg_pool_impl(const Variable& x, int64_t spatial,
                              deploy::OpTag tag, const char* name) {
  const int64_t n = x.dim(0);
  const int64_t c = x.dim(1);
  const float inv = 1.0f / static_cast<float>(spatial);
  Tensor out = Tensor::empty({n, c});
  global_avg_pool_into(x.value(), spatial, out);
  trace_fn(tag, x.value(), out,
           [](const Tensor* const* ins, int, Tensor& o) {
             const Tensor& in = *ins[0];
             global_avg_pool_into(in, in.numel() / (in.dim(0) * in.dim(1)), o);
           });
  Shape in_shape = x.shape();
  return make_op_node(
      std::move(out), {x.node()},
      [in_shape, n, c, spatial, inv](Node& nd) {
        if (!nd.parents[0]->requires_grad) return;
        Tensor dx(in_shape);
        float* pdx = dx.data();
        const float* pdy = nd.grad.data();
        for (int64_t i = 0; i < n * c; ++i) {
          const float g = pdy[i] * inv;
          for (int64_t k = 0; k < spatial; ++k) pdx[i * spatial + k] = g;
        }
        nd.parents[0]->accumulate_grad(dx);
      },
      name);
}

}  // namespace

Variable global_avg_pool2d(const Variable& x) {
  RIPPLE_CHECK(x.value().rank() == 4) << "global_avg_pool2d needs [N,C,H,W]";
  return global_avg_pool_impl(x, x.dim(2) * x.dim(3), deploy::OpTag::kGap2d,
                              "global_avg_pool2d");
}

Variable global_avg_pool1d(const Variable& x) {
  RIPPLE_CHECK(x.value().rank() == 3) << "global_avg_pool1d needs [N,C,L]";
  return global_avg_pool_impl(x, x.dim(2), deploy::OpTag::kGap1d,
                              "global_avg_pool1d");
}

Variable upsample_nearest2x(const Variable& x) {
  RIPPLE_CHECK(x.value().rank() == 4) << "upsample_nearest2x needs [N,C,H,W]";
  const int64_t n = x.dim(0);
  const int64_t c = x.dim(1);
  const int64_t h = x.dim(2);
  const int64_t w = x.dim(3);
  Tensor out = Tensor::empty({n, c, h * 2, w * 2});
  upsample_nearest2x_into(x.value(), out);
  trace_fn(deploy::OpTag::kUpsample2x, x.value(), out,
           [](const Tensor* const* ins, int, Tensor& o) {
             upsample_nearest2x_into(*ins[0], o);
           });
  Shape in_shape = x.shape();
  return make_op_node(
      std::move(out), {x.node()},
      [in_shape, n, c, h, w](Node& nd) {
        if (!nd.parents[0]->requires_grad) return;
        Tensor dx = Tensor::zeros(in_shape);
        float* pdx = dx.data();
        const float* pdy = nd.grad.data();
        for (int64_t i = 0; i < n * c; ++i) {
          float* plane = pdx + i * h * w;
          const float* oplane = pdy + i * h * w * 4;
          for (int64_t y = 0; y < 2 * h; ++y)
            for (int64_t x2 = 0; x2 < 2 * w; ++x2)
              plane[(y / 2) * w + (x2 / 2)] += oplane[y * 2 * w + x2];
        }
        nd.parents[0]->accumulate_grad(dx);
      },
      "upsample_nearest2x");
}

}  // namespace ripple::autograd
