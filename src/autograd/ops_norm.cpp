// Fused normalization ops with hand-derived backward passes.
//
// Both ops produce zero-mean / unit-variance outputs without affine
// parameters; layers compose the affine transformation around them (after
// for conventional norms, *before* for the paper's inverted normalization).
#include <cmath>

#include "autograd/lowered.h"
#include "autograd/ops.h"
#include "deploy/trace.h"
#include "tensor/ops.h"

namespace ripple::autograd {
namespace {

/// dx for standardization y=(x-μ)σ⁻¹ over a slab of m elements:
/// dx = s/m · (m·dy − Σdy − x̂·Σ(dy·x̂))
void standardize_backward_slab(const float* dy, const float* xhat, float s,
                               int64_t m, float* dx) {
  double sum_dy = 0.0;
  double sum_dy_xhat = 0.0;
  for (int64_t i = 0; i < m; ++i) {
    sum_dy += dy[i];
    sum_dy_xhat += static_cast<double>(dy[i]) * xhat[i];
  }
  const float mean_dy = static_cast<float>(sum_dy / static_cast<double>(m));
  const float mean_dy_xhat =
      static_cast<float>(sum_dy_xhat / static_cast<double>(m));
  for (int64_t i = 0; i < m; ++i)
    dx[i] += s * (dy[i] - mean_dy - xhat[i] * mean_dy_xhat);
}

}  // namespace

void group_normalize_into(const Tensor& x, int64_t groups, float eps,
                          Tensor& out, float* inv_std) {
  const int64_t n = x.dim(0);
  const int64_t c = x.dim(1);
  int64_t inner = 1;
  for (int d = 2; d < x.rank(); ++d) inner *= x.dim(d);
  const int64_t m = (c / groups) * inner;  // slab size
  const float* px = x.data();
  float* po = out.data();
  for (int64_t slab = 0; slab < n * groups; ++slab) {
    const float* src = px + slab * m;
    float* dst = po + slab * m;
    double sum = 0.0;
    for (int64_t i = 0; i < m; ++i) sum += src[i];
    const double mean = sum / static_cast<double>(m);
    double var = 0.0;
    for (int64_t i = 0; i < m; ++i) {
      const double d = src[i] - mean;
      var += d * d;
    }
    var /= static_cast<double>(m);
    const float s = 1.0f / std::sqrt(static_cast<float>(var) + eps);
    if (inv_std != nullptr) inv_std[slab] = s;
    for (int64_t i = 0; i < m; ++i)
      dst[i] = (src[i] - static_cast<float>(mean)) * s;
  }
}

Variable group_normalize(const Variable& x, int64_t groups, float eps) {
  const Tensor& xv = x.value();
  RIPPLE_CHECK(xv.rank() >= 2) << "group_normalize needs rank >= 2, got "
                               << shape_to_string(xv.shape());
  const int64_t n = xv.dim(0);
  const int64_t c = xv.dim(1);
  RIPPLE_CHECK(groups >= 1 && c % groups == 0)
      << "group_normalize: " << c << " channels not divisible into " << groups
      << " groups";
  int64_t inner = 1;
  for (int d = 2; d < xv.rank(); ++d) inner *= xv.dim(d);
  const int64_t group_channels = c / groups;
  const int64_t m = group_channels * inner;  // slab size
  RIPPLE_CHECK(m > 1) << "group_normalize slab has a single element; "
                         "statistics are degenerate";

  Tensor out = Tensor::empty(xv.shape());
  Tensor inv_std({n * groups});
  group_normalize_into(xv, groups, eps, out, inv_std.data());

  if (deploy::active_trace() != nullptr) {
    deploy::TraceStep ts;
    ts.tag = deploy::OpTag::kGroupNorm;
    ts.inputs = {xv};
    ts.output = out;
    ts.i0 = groups;
    ts.fn = [groups, eps](const Tensor* const* ins, int, Tensor& o) {
      group_normalize_into(*ins[0], groups, eps, o, nullptr);
    };
    deploy::active_trace()->record(std::move(ts));
  }

  Tensor xhat = out;  // share storage; forward value is never mutated
  return make_op_node(
      std::move(out), {x.node()},
      [xhat, inv_std, n, groups, m](Node& nd) {
        if (!nd.parents[0]->requires_grad) return;
        Tensor dx = Tensor::zeros(xhat.shape());
        const float* pdy = nd.grad.data();
        const float* ph = xhat.data();
        const float* ps = inv_std.data();
        float* pdx = dx.data();
        for (int64_t slab = 0; slab < n * groups; ++slab)
          standardize_backward_slab(pdy + slab * m, ph + slab * m, ps[slab], m,
                                    pdx + slab * m);
        nd.parents[0]->accumulate_grad(dx);
      },
      "group_normalize");
}

Variable batch_normalize(const Variable& x, Tensor& running_mean,
                         Tensor& running_var, bool training, float momentum,
                         float eps) {
  const Tensor& xv = x.value();
  RIPPLE_CHECK(xv.rank() >= 2) << "batch_normalize needs rank >= 2";
  const int64_t n = xv.dim(0);
  const int64_t c = xv.dim(1);
  int64_t inner = 1;
  for (int d = 2; d < xv.rank(); ++d) inner *= xv.dim(d);
  RIPPLE_CHECK(running_mean.rank() == 1 && running_mean.dim(0) == c)
      << "running_mean shape mismatch";
  RIPPLE_CHECK(running_var.rank() == 1 && running_var.dim(0) == c)
      << "running_var shape mismatch";
  const int64_t m = n * inner;  // elements per channel

  Tensor out(xv.shape());
  const float* px = xv.data();
  float* po = out.data();

  if (!training) {
    // Eval: constant statistics; gradient is a plain per-channel scale.
    Tensor scale({c});
    const float* pm = running_mean.data();
    const float* pv = running_var.data();
    float* psc = scale.data();
    for (int64_t ch = 0; ch < c; ++ch)
      psc[ch] = 1.0f / std::sqrt(pv[ch] + eps);
    for (int64_t i = 0; i < n; ++i)
      for (int64_t ch = 0; ch < c; ++ch) {
        const int64_t base = (i * c + ch) * inner;
        for (int64_t k = 0; k < inner; ++k)
          po[base + k] = (px[base + k] - pm[ch]) * psc[ch];
      }
    if (deploy::active_trace() != nullptr) {
      // w/b carry (μ, 1/σ) so the compiler can fuse a following affine
      // into one kBnAffine sweep; the closure is the unfused fallback.
      deploy::TraceStep ts;
      ts.tag = deploy::OpTag::kBatchNormEval;
      ts.inputs = {xv};
      ts.output = out;
      ts.w = running_mean;
      ts.b = scale;
      Tensor mean = running_mean;
      ts.fn = [mean, scale](const Tensor* const* ins, int, Tensor& o) {
        const Tensor& x = *ins[0];
        const int64_t n = x.dim(0);
        const int64_t c = mean.dim(0);
        const int64_t inner = x.numel() / (n * c);
        const float* px = x.data();
        const float* pm = mean.data();
        const float* psc = scale.data();
        float* po = o.data();
        for (int64_t i = 0; i < n; ++i)
          for (int64_t ch = 0; ch < c; ++ch) {
            const int64_t base = (i * c + ch) * inner;
            for (int64_t k = 0; k < inner; ++k)
              po[base + k] = (px[base + k] - pm[ch]) * psc[ch];
          }
      };
      deploy::active_trace()->record(std::move(ts));
    }
    return make_op_node(
        std::move(out), {x.node()},
        [scale, n, c, inner](Node& nd) {
          if (!nd.parents[0]->requires_grad) return;
          Tensor dx(nd.grad.shape());
          const float* pdy = nd.grad.data();
          const float* psc = scale.data();
          float* pdx = dx.data();
          for (int64_t i = 0; i < n; ++i)
            for (int64_t ch = 0; ch < c; ++ch) {
              const int64_t base = (i * c + ch) * inner;
              for (int64_t k = 0; k < inner; ++k)
                pdx[base + k] = pdy[base + k] * psc[ch];
            }
          nd.parents[0]->accumulate_grad(dx);
        },
        "batch_normalize_eval");
  }

  RIPPLE_CHECK(m > 1) << "batch_normalize needs more than one element per "
                         "channel in training mode";
  if (deploy::TraceRecorder* tr = deploy::active_trace()) {
    // Training-mode statistics depend on the whole batch and mutate the
    // running buffers — not a compilable serving forward.
    tr->abort("training-mode batch_normalize");
  }
  Tensor inv_std({c});
  {
    float* prm = running_mean.data();
    float* prv = running_var.data();
    float* ps = inv_std.data();
    for (int64_t ch = 0; ch < c; ++ch) {
      double sum = 0.0;
      for (int64_t i = 0; i < n; ++i) {
        const float* src = px + (i * c + ch) * inner;
        for (int64_t k = 0; k < inner; ++k) sum += src[k];
      }
      const double mean = sum / static_cast<double>(m);
      double var = 0.0;
      for (int64_t i = 0; i < n; ++i) {
        const float* src = px + (i * c + ch) * inner;
        for (int64_t k = 0; k < inner; ++k) {
          const double d = src[k] - mean;
          var += d * d;
        }
      }
      var /= static_cast<double>(m);
      const float s = 1.0f / std::sqrt(static_cast<float>(var) + eps);
      ps[ch] = s;
      for (int64_t i = 0; i < n; ++i) {
        const float* src = px + (i * c + ch) * inner;
        float* dst = po + (i * c + ch) * inner;
        for (int64_t k = 0; k < inner; ++k)
          dst[k] = (src[k] - static_cast<float>(mean)) * s;
      }
      prm[ch] = (1.0f - momentum) * prm[ch] +
                momentum * static_cast<float>(mean);
      prv[ch] =
          (1.0f - momentum) * prv[ch] + momentum * static_cast<float>(var);
    }
  }

  Tensor xhat = out;
  return make_op_node(
      std::move(out), {x.node()},
      [xhat, inv_std, n, c, inner, m](Node& nd) {
        if (!nd.parents[0]->requires_grad) return;
        Tensor dx = Tensor::zeros(xhat.shape());
        const float* pdy = nd.grad.data();
        const float* ph = xhat.data();
        const float* ps = inv_std.data();
        float* pdx = dx.data();
        // Per-channel standardization backward; slab is strided (one chunk
        // per sample), so gather the sums first.
        for (int64_t ch = 0; ch < c; ++ch) {
          double sum_dy = 0.0;
          double sum_dy_xhat = 0.0;
          for (int64_t i = 0; i < n; ++i) {
            const int64_t base = (i * c + ch) * inner;
            for (int64_t k = 0; k < inner; ++k) {
              sum_dy += pdy[base + k];
              sum_dy_xhat +=
                  static_cast<double>(pdy[base + k]) * ph[base + k];
            }
          }
          const float mean_dy =
              static_cast<float>(sum_dy / static_cast<double>(m));
          const float mean_dy_xhat =
              static_cast<float>(sum_dy_xhat / static_cast<double>(m));
          const float s = ps[ch];
          for (int64_t i = 0; i < n; ++i) {
            const int64_t base = (i * c + ch) * inner;
            for (int64_t k = 0; k < inner; ++k)
              pdx[base + k] = s * (pdy[base + k] - mean_dy -
                                   ph[base + k] * mean_dy_xhat);
          }
        }
        nd.parents[0]->accumulate_grad(dx);
      },
      "batch_normalize");
}

}  // namespace ripple::autograd
