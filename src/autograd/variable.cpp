#include "autograd/variable.h"

#include <algorithm>
#include <unordered_set>

#include "tensor/ops.h"

namespace ripple::autograd {

namespace {
thread_local bool g_grad_enabled = true;
}

Tensor& Node::ensure_grad() {
  if (!grad.defined()) grad = Tensor::zeros(value.shape());
  return grad;
}

void Node::accumulate_grad(const Tensor& g) {
  RIPPLE_CHECK(g.same_shape(value))
      << "gradient shape " << shape_to_string(g.shape())
      << " does not match value shape " << shape_to_string(value.shape())
      << " in op '" << op << "'";
  ops::add_inplace(ensure_grad(), g);
}

Variable::Variable(Tensor value, bool requires_grad) {
  node_ = std::make_shared<Node>();
  node_->value = std::move(value);
  node_->requires_grad = requires_grad;
}

const Tensor& Variable::value() const {
  RIPPLE_CHECK(node_ != nullptr) << "value() on undefined Variable";
  return node_->value;
}

Tensor& Variable::value() {
  RIPPLE_CHECK(node_ != nullptr) << "value() on undefined Variable";
  return node_->value;
}

bool Variable::requires_grad() const {
  return node_ != nullptr && node_->requires_grad;
}

void Variable::set_requires_grad(bool rg) {
  RIPPLE_CHECK(node_ != nullptr) << "set_requires_grad on undefined Variable";
  node_->requires_grad = rg;
}

bool Variable::has_grad() const {
  return node_ != nullptr && node_->grad.defined();
}

const Tensor& Variable::grad() const {
  RIPPLE_CHECK(has_grad()) << "grad() but no gradient was accumulated";
  return node_->grad;
}

void Variable::zero_grad() {
  if (node_ != nullptr && node_->grad.defined()) node_->grad.fill(0.0f);
}

void Variable::backward() {
  RIPPLE_CHECK(defined()) << "backward() on undefined Variable";
  RIPPLE_CHECK(node_->value.numel() == 1)
      << "backward() without seed requires a scalar value, shape is "
      << shape_to_string(node_->value.shape());
  backward(Tensor::full(node_->value.shape(), 1.0f));
}

void Variable::backward(const Tensor& seed) {
  RIPPLE_CHECK(defined()) << "backward() on undefined Variable";
  node_->accumulate_grad(seed);

  // Iterative post-order DFS to get a reverse topological order.
  std::vector<Node*> order;
  std::unordered_set<Node*> visited;
  std::vector<std::pair<Node*, size_t>> stack;
  stack.emplace_back(node_.get(), 0);
  visited.insert(node_.get());
  while (!stack.empty()) {
    auto& [n, next_child] = stack.back();
    if (next_child < n->parents.size()) {
      Node* child = n->parents[next_child].get();
      ++next_child;
      if (child != nullptr && visited.insert(child).second)
        stack.emplace_back(child, 0);
    } else {
      order.push_back(n);
      stack.pop_back();
    }
  }
  // order is post-order (leaves first); traverse from root to leaves.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* n = *it;
    if (n->backward_fn && n->grad.defined()) n->backward_fn(*n);
  }
}

Variable Variable::detach() const {
  RIPPLE_CHECK(defined()) << "detach() on undefined Variable";
  return Variable(node_->value, /*requires_grad=*/false);
}

NoGradGuard::NoGradGuard() : previous_(g_grad_enabled) {
  g_grad_enabled = false;
}

NoGradGuard::~NoGradGuard() { g_grad_enabled = previous_; }

bool grad_enabled() { return g_grad_enabled; }

Variable make_op_node(Tensor value, std::vector<NodePtr> parents,
                      std::function<void(Node&)> backward_fn, const char* op) {
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  node->op = op;
  const bool any_parent_grad =
      std::any_of(parents.begin(), parents.end(), [](const NodePtr& p) {
        return p != nullptr && p->requires_grad;
      });
  if (grad_enabled() && any_parent_grad) {
    node->requires_grad = true;
    node->parents = std::move(parents);
    node->backward_fn = std::move(backward_fn);
  }
  return Variable(node);
}

}  // namespace ripple::autograd
