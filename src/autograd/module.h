// Module base class: parameter registration, training-mode flag, recursive
// traversal. Layers own their child modules as plain members and register
// non-owning pointers.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "autograd/variable.h"

namespace ripple::autograd {

/// Role of a parameter; fault injectors use this to decide which tensors a
/// given non-ideality applies to (e.g. bit flips hit deployed weights, not
/// digital biases).
enum class ParamKind {
  kWeight,        // conv / linear weight deployed on the crossbar
  kBias,          // digitally-added bias
  kAffineWeight,  // normalization scale γ
  kAffineBias,    // normalization shift β
  kOther,         // anything else (e.g. PACT clip value)
};

const char* param_kind_name(ParamKind kind);

/// A named, trainable tensor.
struct Parameter {
  std::string name;
  Variable var;  // requires_grad = true
  ParamKind kind = ParamKind::kWeight;
};

/// Base class for all layers and models.
class Module {
 public:
  Module() = default;
  virtual ~Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// A named, non-trainable state tensor (e.g. BatchNorm running stats).
  struct BufferRef {
    std::string name;
    Tensor* tensor;
  };

  /// All parameters, recursively, in registration order.
  std::vector<Parameter*> parameters();
  /// Only parameters of one kind.
  std::vector<Parameter*> parameters(ParamKind kind);
  /// All buffers, recursively, in registration order.
  std::vector<BufferRef> buffers();

  /// Zeroes gradients of every parameter.
  void zero_grad();

  /// Total trainable scalar count.
  int64_t parameter_count();

  bool training() const { return training_; }
  /// Switches train/eval mode recursively (affects dropout, batch stats).
  void set_training(bool training);

 protected:
  /// Registers a fresh trainable parameter initialized with `init`.
  Parameter& register_parameter(std::string name, Tensor init,
                                ParamKind kind = ParamKind::kWeight);
  /// Registers a child module (non-owning; the child must outlive `this`,
  /// which holds for members of derived classes).
  void register_module(std::string name, Module& child);

  /// Registers a state tensor that is saved/loaded with the model but not
  /// trained (non-owning; must outlive `this`).
  void register_buffer(std::string name, Tensor& buffer);

 private:
  bool training_ = true;
  std::vector<std::unique_ptr<Parameter>> params_;
  std::vector<std::pair<std::string, Tensor*>> buffers_;
  std::vector<std::pair<std::string, Module*>> children_;
};

}  // namespace ripple::autograd
