// Fig. 6a — Google-Speech-Commands/M5 stand-in: keyword-spotting accuracy
// of the four variants under bit flips and additive variation in the
// deployed 8-bit weights.
#include "bench_common.h"

using namespace ripple;
using namespace ripple::bench;

int main() {
  std::printf("=== Fig. 6a — audio classification robustness "
              "(M5, W/A=8/8) ===\n");
  const Workload w = audio_workload();
  const AudioTask task = make_audio_task(w);
  std::printf("train %lld / test %lld clips, %d epochs, T=%d, runs=%d\n",
              static_cast<long long>(w.train_n),
              static_cast<long long>(w.test_n), w.epochs, w.mc_samples,
              w.mc_runs);

  std::vector<std::unique_ptr<models::M5>> zoo;
  std::vector<std::unique_ptr<serve::InferenceSession>> sessions;
  std::vector<std::string> names;
  for (models::Variant v : models::all_variants()) {
    zoo.push_back(audio_model(v, task, w));
    sessions.push_back(std::make_unique<serve::InferenceSession>(
        *zoo.back(),
        serving_options(serve::TaskKind::kClassification, w, v)));
    names.emplace_back(models::variant_name(v));
  }

  auto run_sweep = [&](const std::string& axis,
                       const std::vector<double>& levels,
                       const std::function<fault::FaultSpec(double)>& spec) {
    SweepTable table;
    table.axis_name = axis;
    table.levels = levels;
    table.variant_names = names;
    for (double level : levels) {
      std::vector<fault::MonteCarloStats> row;
      for (auto& session : sessions)
        row.push_back(sweep_point(
            *session, spec(level), w.mc_runs,
            [&](serve::InferenceSession& s) {
              return serve::accuracy(s, task.test);
            }));
      table.stats.push_back(std::move(row));
    }
    return table;
  };

  std::printf("\n-- bit-flip faults in deployed 8-bit weights --\n");
  SweepTable flips = run_sweep(
      "flip_rate", {0.0, 0.01, 0.02, 0.05, 0.10},
      [](double p) {
        return fault::FaultSpec::bitflips(static_cast<float>(p));
      });
  flips.print("accuracy");
  flips.write_csv("fig6a_bitflips.csv");

  std::printf("\n-- additive conductance variation (on weights) --\n");
  SweepTable additive = run_sweep(
      "sigma", {0.0, 0.2, 0.4, 0.6, 0.8}, [](double s) {
        return fault::FaultSpec::additive(static_cast<float>(s));
      });
  additive.print("accuracy");
  additive.write_csv("fig6a_additive.csv");
  return 0;
}
