// Fig. 5b — DRIVE/U-Net stand-in: segmentation mIoU of the four variants
// under bit flips in the binary weights and additive variation on the
// pre-quantization activations. The paper reports only marginal
// improvements here — the expected shape is parity at low fault rates with
// the Proposed variant ahead at the high-fault tail.
#include "bench_common.h"

using namespace ripple;
using namespace ripple::bench;

int main() {
  std::printf("=== Fig. 5b — vessel segmentation robustness "
              "(U-Net, W/A=1/4) ===\n");
  const Workload w = vessel_workload();
  const VesselTask task = make_vessel_task(w);
  std::printf("train %lld / test %lld images, %d epochs, T=%d, runs=%d\n",
              static_cast<long long>(w.train_n),
              static_cast<long long>(w.test_n), w.epochs, w.mc_samples,
              w.mc_runs);

  std::vector<std::unique_ptr<models::UNet>> zoo;
  std::vector<std::unique_ptr<serve::InferenceSession>> sessions;
  std::vector<std::string> names;
  for (models::Variant v : models::all_variants()) {
    zoo.push_back(vessel_model(v, task, w));
    sessions.push_back(std::make_unique<serve::InferenceSession>(
        *zoo.back(), serving_options(serve::TaskKind::kSegmentation, w, v)));
    names.emplace_back(models::variant_name(v));
  }

  auto run_sweep = [&](const std::string& axis,
                       const std::vector<double>& levels,
                       const std::function<fault::FaultSpec(double)>& spec) {
    SweepTable table;
    table.axis_name = axis;
    table.levels = levels;
    table.variant_names = names;
    for (double level : levels) {
      std::vector<fault::MonteCarloStats> row;
      for (auto& session : sessions)
        row.push_back(sweep_point(
            *session, spec(level), w.mc_runs,
            [&](serve::InferenceSession& s) {
              return serve::miou(s, task.test);
            }));
      table.stats.push_back(std::move(row));
    }
    return table;
  };

  std::printf("\n-- bit-flip faults in deployed binary weights --\n");
  SweepTable flips = run_sweep(
      "flip_rate", {0.0, 0.02, 0.05, 0.10, 0.15},
      [](double p) {
        return fault::FaultSpec::bitflips(static_cast<float>(p));
      });
  flips.print("mIoU");
  flips.write_csv("fig5b_bitflips.csv");

  std::printf("\n-- additive conductance variation (on activations) --\n");
  SweepTable additive = run_sweep(
      "sigma", {0.0, 0.2, 0.4, 0.6, 0.8}, [](double s) {
        return fault::FaultSpec::additive(static_cast<float>(s),
                                          /*on_activations=*/true);
      });
  additive.print("mIoU");
  additive.write_csv("fig5b_additive.csv");
  return 0;
}
