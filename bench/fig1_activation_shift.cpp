// Fig. 1 — change of the pre-normalization weighted-sum distribution of a
// trained conv layer under 10% / 20% bit flips in its binary weights.
// Prints the density over activation-value bins (the paper's histogram) —
// expected shape: fault-free is a tight zero-mean bell; flips widen and
// shift it, which is exactly what per-instance (inverted) normalization
// re-standardizes away.
#include "autograd/ops.h"
#include "tensor/ops.h"
#include "bench_common.h"

using namespace ripple;
using namespace ripple::bench;

namespace {

/// Pre-normalization weighted sums of the first *binary* conv
/// (fault_targets()[1] = stage-1 conv1) of a trained proposed model, fed
/// with the stem's sign activations — the tensor whose distribution the
/// paper's Fig. 1 plots. Bit flips are injected into the deployed binary
/// weights before the forward.
Tensor weighted_sums(models::BinaryResNet& model, const Tensor& images,
                     float flip_rate, Rng& rng) {
  fault::FaultInjector inj(model.fault_targets(), model.noise());
  if (flip_rate > 0.0f)
    inj.apply(fault::FaultSpec::bitflips(flip_rate), rng);
  autograd::NoGradGuard no_grad;
  // Stem: full-precision conv → inverted norm → sign (binary activations).
  autograd::Parameter* stem = model.fault_targets()[0].param;
  autograd::Variable h = autograd::conv2d(
      autograd::Variable(images), stem->var, autograd::Variable(), 1, 1);
  h = autograd::group_normalize(h, 1);
  h = autograd::sign_ste(h);
  // Stage-1 binary conv: the weighted sum whose distribution shifts.
  autograd::Parameter* conv1 = model.fault_targets()[1].param;
  autograd::Variable y = autograd::conv2d(h, conv1->var,
                                          autograd::Variable(), 1, 1);
  Tensor out = y.value().clone();
  if (flip_rate > 0.0f) inj.restore();
  return out;
}

}  // namespace

int main() {
  std::printf("=== Fig. 1 — activation distribution shift under bit "
              "flips ===\n");
  const Workload w = image_workload();
  const ImageTask task = make_image_task(w);
  auto model = image_model(models::Variant::kProposed, task, w);

  Rng rng(77);
  const Tensor probe = data::slice_rows(task.test.x, 0, task.test.size());
  const Tensor clean = weighted_sums(*model, probe, 0.0f, rng);
  const Tensor flip10 = weighted_sums(*model, probe, 0.10f, rng);
  const Tensor flip20 = weighted_sums(*model, probe, 0.20f, rng);

  const float lo = std::min(ops::min(clean),
                            std::min(ops::min(flip10), ops::min(flip20)));
  const float hi = std::max(ops::max(clean),
                            std::max(ops::max(flip10), ops::max(flip20)));
  const int bins = 21;
  const ops::Histogram h0 = ops::histogram(clean, bins, lo, hi);
  const ops::Histogram h1 = ops::histogram(flip10, bins, lo, hi);
  const ops::Histogram h2 = ops::histogram(flip20, bins, lo, hi);
  const auto d0 = h0.density();
  const auto d1 = h1.density();
  const auto d2 = h2.density();

  std::printf("%-12s %12s %12s %12s\n", "activation", "fault-free",
              "10% flips", "20% flips");
  for (int b = 0; b < bins; ++b)
    std::printf("%-12.3f %12.5f %12.5f %12.5f\n", h0.bin_center(b), d0[b],
                d1[b], d2[b]);

  std::printf("\nsummary statistics (weighted sums of stage-1 conv):\n");
  auto describe = [](const char* name, const Tensor& t) {
    std::printf("  %-12s mean %+8.4f  std %8.4f  range [%+.3f, %+.3f]\n",
                name, ops::mean(t), std::sqrt(ops::variance(t)), ops::min(t),
                ops::max(t));
  };
  describe("fault-free", clean);
  describe("10% flips", flip10);
  describe("20% flips", flip20);

  CsvWriter csv(csv_output_dir() + "/fig1_activation_shift.csv",
                {"bin_center", "faultfree", "flip10", "flip20"});
  for (int b = 0; b < bins; ++b)
    csv.row(std::vector<double>{h0.bin_center(b), d0[b], d1[b], d2[b]});
  std::printf("csv: %s/fig1_activation_shift.csv\n",
              csv_output_dir().c_str());
  return 0;
}
