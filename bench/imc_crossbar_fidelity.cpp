// Design-validation bench (not a paper figure): end-to-end fidelity of the
// analog crossbar VMM engine vs. the ideal digital computation, across ADC
// resolution and post-programming conductance variation. Grounds the
// algorithmic fault models of Figs. 5-6 in the circuit-level simulator.
#include <cstdio>

#include "imc/crossbar.h"
#include "tensor/gemm.h"
#include "tensor/io.h"
#include "tensor/ops.h"

using namespace ripple;

int main() {
  std::printf("=== IMC crossbar fidelity (design validation) ===\n");
  Rng rng(7);
  const int64_t rows = 64;
  const int64_t cols = 32;
  Tensor w = Tensor::randn({cols, rows}, rng, 0.0f, 0.3f);
  Tensor probe = Tensor::randn({64, rows}, rng);
  const float signal =
      std::sqrt(ops::variance(ripple::matmul(probe, ops::transpose2d(w))));

  std::printf("\n-- RMSE vs ADC bits (DAC fixed at 8 bits) --\n");
  std::printf("%-10s %14s %14s\n", "adc_bits", "rmse", "rel. error");
  CsvWriter adc_csv(csv_output_dir() + "/imc_adc_sweep.csv",
                    {"adc_bits", "rmse", "relative_error"});
  for (int bits : {2, 4, 6, 8, 10, 12}) {
    imc::CrossbarConfig cfg;
    cfg.rows = rows;
    cfg.cols = cols;
    cfg.adc_bits = bits;
    imc::Crossbar xb(cfg);
    Rng prog_rng(11);
    xb.program(w, prog_rng);
    const double rmse = xb.fidelity_rmse(probe);
    std::printf("%-10d %14.5f %13.2f%%\n", bits, rmse,
                100.0 * rmse / signal);
    adc_csv.row(std::vector<double>{static_cast<double>(bits), rmse,
                                    rmse / signal});
  }

  std::printf("\n-- RMSE vs conductance variation (ADC 10 bits) --\n");
  std::printf("%-12s %14s %14s\n", "sigma_mult", "rmse", "rel. error");
  CsvWriter var_csv(csv_output_dir() + "/imc_variation_sweep.csv",
                    {"sigma", "rmse", "relative_error"});
  for (double sigma : {0.0, 0.05, 0.1, 0.2, 0.3, 0.5}) {
    imc::CrossbarConfig cfg;
    cfg.rows = rows;
    cfg.cols = cols;
    cfg.adc_bits = 10;
    imc::Crossbar xb(cfg);
    Rng prog_rng(12);
    xb.program(w, prog_rng);
    Rng var_rng(13);
    xb.apply_conductance_variation(sigma, 0.0, var_rng);
    const double rmse = xb.fidelity_rmse(probe);
    std::printf("%-12.2f %14.5f %13.2f%%\n", sigma, rmse,
                100.0 * rmse / signal);
    var_csv.row(std::vector<double>{sigma, rmse, rmse / signal});
  }

  std::printf("\n-- RMSE vs stuck-cell fraction (ADC 10 bits) --\n");
  std::printf("%-12s %14s %14s\n", "fraction", "rmse", "rel. error");
  for (double frac : {0.0, 0.01, 0.05, 0.1, 0.2}) {
    imc::CrossbarConfig cfg;
    cfg.rows = rows;
    cfg.cols = cols;
    cfg.adc_bits = 10;
    imc::Crossbar xb(cfg);
    Rng prog_rng(14);
    xb.program(w, prog_rng);
    Rng stuck_rng(15);
    xb.apply_stuck_cells(frac, stuck_rng);
    const double rmse = xb.fidelity_rmse(probe);
    std::printf("%-12.2f %14.5f %13.2f%%\n", frac, rmse,
                100.0 * rmse / signal);
  }
  std::printf("csv: %s/imc_adc_sweep.csv, imc_variation_sweep.csv\n",
              csv_output_dir().c_str());
  return 0;
}
