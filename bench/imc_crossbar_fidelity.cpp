// Design-validation bench (not a paper figure): end-to-end fidelity of the
// analog crossbar VMM engine vs. the ideal digital computation, across ADC
// resolution and post-programming conductance variation. Grounds the
// algorithmic fault models of Figs. 5-6 in the circuit-level simulator.
#include <cstdio>

#include "imc/crossbar.h"
#include "imc/tiled_array.h"
#include "tensor/gemm.h"
#include "tensor/io.h"
#include "tensor/ops.h"

using namespace ripple;

int main() {
  std::printf("=== IMC crossbar fidelity (design validation) ===\n");
  Rng rng(7);
  const int64_t rows = 64;
  const int64_t cols = 32;
  Tensor w = Tensor::randn({cols, rows}, rng, 0.0f, 0.3f);
  Tensor probe = Tensor::randn({64, rows}, rng);
  const float signal =
      std::sqrt(ops::variance(ripple::matmul(probe, ops::transpose2d(w))));

  std::printf("\n-- RMSE vs ADC bits (DAC fixed at 8 bits) --\n");
  std::printf("%-10s %14s %14s\n", "adc_bits", "rmse", "rel. error");
  CsvWriter adc_csv(csv_output_dir() + "/imc_adc_sweep.csv",
                    {"adc_bits", "rmse", "relative_error"});
  for (int bits : {2, 4, 6, 8, 10, 12}) {
    imc::CrossbarConfig cfg;
    cfg.rows = rows;
    cfg.cols = cols;
    cfg.adc_bits = bits;
    imc::Crossbar xb(cfg);
    Rng prog_rng(11);
    xb.program(w, prog_rng);
    const double rmse = xb.fidelity_rmse(probe);
    std::printf("%-10d %14.5f %13.2f%%\n", bits, rmse,
                100.0 * rmse / signal);
    adc_csv.row(std::vector<double>{static_cast<double>(bits), rmse,
                                    rmse / signal});
  }

  std::printf("\n-- RMSE vs conductance variation (ADC 10 bits) --\n");
  std::printf("%-12s %14s %14s\n", "sigma_mult", "rmse", "rel. error");
  CsvWriter var_csv(csv_output_dir() + "/imc_variation_sweep.csv",
                    {"sigma", "rmse", "relative_error"});
  for (double sigma : {0.0, 0.05, 0.1, 0.2, 0.3, 0.5}) {
    imc::CrossbarConfig cfg;
    cfg.rows = rows;
    cfg.cols = cols;
    cfg.adc_bits = 10;
    imc::Crossbar xb(cfg);
    Rng prog_rng(12);
    xb.program(w, prog_rng);
    Rng var_rng(13);
    xb.apply_conductance_variation(sigma, 0.0, var_rng);
    const double rmse = xb.fidelity_rmse(probe);
    std::printf("%-12.2f %14.5f %13.2f%%\n", sigma, rmse,
                100.0 * rmse / signal);
    var_csv.row(std::vector<double>{sigma, rmse, rmse / signal});
  }

  std::printf("\n-- RMSE vs stuck-cell fraction (ADC 10 bits) --\n");
  std::printf("%-12s %14s %14s\n", "fraction", "rmse", "rel. error");
  for (double frac : {0.0, 0.01, 0.05, 0.1, 0.2}) {
    imc::CrossbarConfig cfg;
    cfg.rows = rows;
    cfg.cols = cols;
    cfg.adc_bits = 10;
    imc::Crossbar xb(cfg);
    Rng prog_rng(14);
    xb.program(w, prog_rng);
    Rng stuck_rng(15);
    xb.apply_stuck_cells(frac, stuck_rng);
    const double rmse = xb.fidelity_rmse(probe);
    std::printf("%-12.2f %14.5f %13.2f%%\n", frac, rmse,
                100.0 * rmse / signal);
  }
  // Per-tile fault heterogeneity: the same stuck-cell dose confined to a
  // single tile of the grid vs. spread across every tile. Tiles carrying
  // column blocks contribute whole output coordinates, so per-tile damage
  // is not interchangeable — the sweep quantifies how much the mapping
  // (which logical block a faulty array holds) matters at equal fault mass.
  std::printf(
      "\n-- RMSE vs faulty tile (stuck 15%% in ONE tile, 32x16 grid) --\n");
  std::printf("%-10s %8s %8s %14s %14s\n", "tile", "grid_r", "grid_c",
              "rmse", "rel. error");
  CsvWriter tile_csv(csv_output_dir() + "/imc_tile_heterogeneity.csv",
                     {"tile", "grid_r", "grid_c", "rmse", "relative_error"});
  imc::TiledArrayConfig tcfg;
  tcfg.device.adc_bits = 10;
  tcfg.geometry = {32, 16};
  imc::TiledArray tiled(cols, rows, tcfg);
  Rng tile_prog_rng(16);
  tiled.program(w, tile_prog_rng);
  const double tile_frac = 0.15;
  for (int64_t t = 0; t < tiled.plan().tile_count(); ++t) {
    Rng stuck_rng(17);
    tiled.apply_stuck_cells(tile_frac, stuck_rng, t);
    const double rmse = tiled.fidelity_rmse(probe);
    const imc::TileSpec& spec = tiled.plan().tiles[static_cast<size_t>(t)];
    std::printf("%-10lld %8lld %8lld %14.5f %13.2f%%\n",
                static_cast<long long>(t),
                static_cast<long long>(spec.grid_r),
                static_cast<long long>(spec.grid_c), rmse,
                100.0 * rmse / signal);
    tile_csv.row(std::vector<double>{
        static_cast<double>(t), static_cast<double>(spec.grid_r),
        static_cast<double>(spec.grid_c), rmse, rmse / signal});
    tiled.restore();
  }
  {
    Rng stuck_rng(17);
    tiled.apply_stuck_cells(tile_frac, stuck_rng);  // every tile
    const double rmse = tiled.fidelity_rmse(probe);
    std::printf("%-10s %8s %8s %14.5f %13.2f%%\n", "all", "-", "-", rmse,
                100.0 * rmse / signal);
    tile_csv.row(std::vector<double>{-1.0, -1.0, -1.0, rmse, rmse / signal});
    tiled.restore();
  }

  std::printf(
      "csv: %s/imc_adc_sweep.csv, imc_variation_sweep.csv, "
      "imc_tile_heterogeneity.csv\n",
      csv_output_dir().c_str());
  return 0;
}
