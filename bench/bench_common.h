// Shared infrastructure for the experiment-reproduction benches.
//
// Every bench binary regenerates one table or figure of the paper: it
// (train-or-load)s the four model variants for its task, deploys them,
// sweeps a fault axis with the Monte-Carlo harness and prints the rows the
// paper plots. CSVs are written next to the binary (RIPPLE_CSV_DIR).
//
// Workload knobs (env): RIPPLE_TRAIN_N, RIPPLE_TEST_N, RIPPLE_EPOCHS,
// RIPPLE_MC_RUNS, RIPPLE_MC_SAMPLES, RIPPLE_FAST, RIPPLE_MODEL_CACHE.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "data/co2_series.h"
#include "data/synthetic_audio.h"
#include "data/synthetic_images.h"
#include "data/vessel_segmentation.h"
#include "fault/evaluation.h"
#include "fault/injector.h"
#include "fault/monte_carlo.h"
#include "models/lstm_forecaster.h"
#include "models/m5.h"
#include "models/resnet.h"
#include "models/trainer.h"
#include "models/unet.h"
#include "models/zoo.h"
#include "serve/metrics.h"
#include "serve/session.h"
#include "tensor/env.h"
#include "tensor/io.h"

namespace ripple::bench {

// ---- workload sizing -------------------------------------------------------

struct Workload {
  int64_t train_n;
  int64_t test_n;
  int epochs;
  int mc_runs;     // Monte-Carlo chip instances per fault point
  int mc_samples;  // Bayesian forward passes T
};

inline Workload image_workload() {
  const bool fast = fast_mode();
  return {
      .train_n = env_int("RIPPLE_TRAIN_N", fast ? 200 : 800),
      .test_n = env_int("RIPPLE_TEST_N", fast ? 60 : 120),
      .epochs = env_int("RIPPLE_EPOCHS", fast ? 4 : 16),
      .mc_runs = fault::default_mc_runs(5),
      .mc_samples = env_int("RIPPLE_MC_SAMPLES", fast ? 3 : 6),
  };
}

inline Workload audio_workload() {
  const bool fast = fast_mode();
  return {
      .train_n = env_int("RIPPLE_TRAIN_N", fast ? 160 : 640),
      .test_n = env_int("RIPPLE_TEST_N", fast ? 64 : 128),
      .epochs = env_int("RIPPLE_EPOCHS", fast ? 4 : 14),
      .mc_runs = fault::default_mc_runs(5),
      .mc_samples = env_int("RIPPLE_MC_SAMPLES", fast ? 3 : 6),
  };
}

inline Workload series_workload() {
  const bool fast = fast_mode();
  return {
      .train_n = 0,  // derived from the series split
      .test_n = 0,
      .epochs = env_int("RIPPLE_EPOCHS", fast ? 6 : 24),
      .mc_runs = fault::default_mc_runs(6),
      .mc_samples = env_int("RIPPLE_MC_SAMPLES", fast ? 3 : 6),
  };
}

inline Workload vessel_workload() {
  const bool fast = fast_mode();
  return {
      .train_n = env_int("RIPPLE_TRAIN_N", fast ? 48 : 160),
      .test_n = env_int("RIPPLE_TEST_N", fast ? 16 : 40),
      .epochs = env_int("RIPPLE_EPOCHS", fast ? 4 : 12),
      .mc_runs = fault::default_mc_runs(4),
      .mc_samples = env_int("RIPPLE_MC_SAMPLES", fast ? 3 : 5),
  };
}

// ---- model construction (paper hyper-parameters) ---------------------------

inline models::VariantConfig variant_config(models::Variant v) {
  models::VariantConfig c;
  c.variant = v;
  c.dropout_p = static_cast<float>(env_double("RIPPLE_DROPOUT_P", 0.3));
  c.init = core::AffineInit::normal(0.3f, 0.3f);
  return c;
}

inline data::ImageConfig image_data_config() {
  data::ImageConfig c;
  c.pixel_noise = 0.3f;  // hard enough that clean accuracy is not saturated
  return c;
}

struct ImageTask {
  data::ClassificationData train;
  data::ClassificationData test;
};

inline ImageTask make_image_task(const Workload& w) {
  Rng rng(101);
  return {data::make_images(w.train_n, image_data_config(), rng),
          data::make_images(w.test_n, image_data_config(), rng)};
}

struct AudioTask {
  data::ClassificationData train;
  data::ClassificationData test;
};

inline AudioTask make_audio_task(const Workload& w) {
  Rng rng(202);
  return {data::make_audio(w.train_n, data::AudioConfig{}, rng),
          data::make_audio(w.test_n, data::AudioConfig{}, rng)};
}

inline data::Co2Split make_series_task() {
  Rng rng(303);
  return data::make_co2_windows(data::Co2Config{}, 0.8f, rng);
}

struct VesselTask {
  data::SegmentationData train;
  data::SegmentationData test;
};

inline VesselTask make_vessel_task(const Workload& w) {
  Rng rng(404);
  return {data::make_vessels(w.train_n, data::VesselConfig{}, rng),
          data::make_vessels(w.test_n, data::VesselConfig{}, rng)};
}

/// Cache key encoding everything that affects trained weights.
inline std::string cache_key(const char* task, models::Variant v,
                             const Workload& w) {
  return std::string(task) + "_" + models::variant_name(v) + "_n" +
         std::to_string(w.train_n) + "_e" + std::to_string(w.epochs);
}

/// Trains (or loads the cached artifact of) one image-classifier variant;
/// train_or_load hands the model back deployed either way.
inline std::unique_ptr<models::BinaryResNet> image_model(
    models::Variant v, const ImageTask& task, const Workload& w) {
  auto model = std::make_unique<models::BinaryResNet>(
      models::BinaryResNet::Topology{.in_channels = 3, .classes = 10,
                                     .width = 12},
      variant_config(v));
  const bool cached =
      models::train_or_load(*model, cache_key("resnet", v, w), [&] {
        models::TrainConfig tc;
        tc.epochs = w.epochs;
        tc.seed = 1000 + static_cast<uint64_t>(v);
        models::train_classifier(*model, task.train, tc);
      });
  std::fprintf(stderr, "  [%s] %s\n", models::variant_name(v),
               cached ? "loaded from cache" : "trained");
  model->set_training(false);
  return model;
}

inline std::unique_ptr<models::M5> audio_model(models::Variant v,
                                               const AudioTask& task,
                                               const Workload& w) {
  auto model = std::make_unique<models::M5>(
      models::M5::Topology{.classes = 8, .width = 12, .input_length = 512},
      variant_config(v));
  const bool cached =
      models::train_or_load(*model, cache_key("m5", v, w), [&] {
        models::TrainConfig tc;
        tc.epochs = w.epochs;
        tc.seed = 2000 + static_cast<uint64_t>(v);
        models::train_classifier(*model, task.train, tc);
      });
  std::fprintf(stderr, "  [%s] %s\n", models::variant_name(v),
               cached ? "loaded from cache" : "trained");
  model->set_training(false);
  return model;
}

inline std::unique_ptr<models::LstmForecaster> series_model(
    models::Variant v, const data::Co2Split& split, const Workload& w) {
  auto model = std::make_unique<models::LstmForecaster>(
      models::LstmForecaster::Topology{.hidden = 24, .window = 24},
      variant_config(v));
  Workload keyed = w;
  keyed.train_n = split.train.size();
  const bool cached =
      models::train_or_load(*model, cache_key("lstm", v, keyed), [&] {
        models::TrainConfig tc;
        tc.epochs = w.epochs;
        tc.batch_size = 64;
        tc.seed = 3000 + static_cast<uint64_t>(v);
        models::train_regressor(*model, split.train, tc);
      });
  std::fprintf(stderr, "  [%s] %s\n", models::variant_name(v),
               cached ? "loaded from cache" : "trained");
  model->set_training(false);
  return model;
}

inline std::unique_ptr<models::UNet> vessel_model(models::Variant v,
                                                  const VesselTask& task,
                                                  const Workload& w) {
  auto model = std::make_unique<models::UNet>(
      models::UNet::Topology{.base_channels = 8, .activation_bits = 4},
      variant_config(v));
  const bool cached =
      models::train_or_load(*model, cache_key("unet", v, w), [&] {
        models::TrainConfig tc;
        tc.epochs = w.epochs;
        tc.batch_size = 16;
        tc.seed = 4000 + static_cast<uint64_t>(v);
        models::train_segmenter(*model, task.train, tc);
      });
  std::fprintf(stderr, "  [%s] %s\n", models::variant_name(v),
               cached ? "loaded from cache" : "trained");
  model->set_training(false);
  return model;
}

// ---- sweeps --------------------------------------------------------------

/// Serving options for one deployed variant: the session owns T (clamped
/// to 1 for the deterministic variant), the mask streams and the packed
/// weights for the whole sweep — chip instances differ only in the
/// injected faults (common random numbers across runs).
inline serve::SessionOptions serving_options(serve::TaskKind task,
                                             const Workload& w,
                                             models::Variant v) {
  serve::SessionOptions options;
  options.task = task;
  options.mc_samples = w.mc_samples;
  options.seed = 0x5eed0000ull + static_cast<uint64_t>(v);
  return options;
}

/// Metric under one fault spec, averaged over Monte-Carlo chip instances —
/// the session-based fault-injection evaluation loop (fault/evaluation.h).
inline fault::MonteCarloStats sweep_point(
    serve::InferenceSession& session, const fault::FaultSpec& spec,
    int mc_runs,
    const std::function<double(serve::InferenceSession&)>& evaluate) {
  return fault::evaluate_under_faults(session, spec, mc_runs,
                                      /*base_seed=*/9000, evaluate);
}

/// Paper-style sweep table: one row per fault level, one mean±std column
/// per variant.
struct SweepTable {
  std::string axis_name;
  std::vector<double> levels;
  std::vector<std::string> variant_names;
  // stats[level][variant]
  std::vector<std::vector<fault::MonteCarloStats>> stats;

  void print(const char* metric_name) const {
    std::printf("%-12s", axis_name.c_str());
    for (const auto& v : variant_names) std::printf("  %20s", v.c_str());
    std::printf("\n");
    for (size_t l = 0; l < levels.size(); ++l) {
      std::printf("%-12.4g", levels[l]);
      for (size_t v = 0; v < variant_names.size(); ++v)
        std::printf("  %13.4f ± %5.4f", stats[l][v].mean, stats[l][v].stddev);
      std::printf("\n");
    }
    std::printf("(%s; mean ± std over %d Monte-Carlo chip instances)\n",
                metric_name, stats.empty() ? 0 : stats[0][0].runs);
  }

  void write_csv(const std::string& filename) const {
    std::vector<std::string> cols = {axis_name};
    for (const auto& v : variant_names) {
      cols.push_back(v + "_mean");
      cols.push_back(v + "_std");
    }
    CsvWriter csv(csv_output_dir() + "/" + filename, cols);
    for (size_t l = 0; l < levels.size(); ++l) {
      std::vector<double> row = {levels[l]};
      for (size_t v = 0; v < variant_names.size(); ++v) {
        row.push_back(stats[l][v].mean);
        row.push_back(stats[l][v].stddev);
      }
      csv.row(row);
    }
    std::printf("csv: %s\n", (csv_output_dir() + "/" + filename).c_str());
  }
};

}  // namespace ripple::bench
