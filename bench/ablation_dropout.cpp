// §III-B ablation — affine-dropout granularity (vector-wise vs
// element-wise) and dropout-rate sweep. The paper deploys vector-wise with
// p=0.3 and notes that smaller p buys clean accuracy at the cost of
// robustness (§IV-B); this bench regenerates that trade-off curve.
#include "bench_common.h"

using namespace ripple;
using namespace ripple::bench;

namespace {

std::unique_ptr<models::BinaryResNet> trained(
    const ImageTask& task, const Workload& w, float p,
    core::DropGranularity g) {
  models::VariantConfig vc = variant_config(models::Variant::kProposed);
  vc.dropout_p = p;
  vc.granularity = g;
  auto model = std::make_unique<models::BinaryResNet>(
      models::BinaryResNet::Topology{.in_channels = 3, .classes = 10,
                                     .width = 12},
      vc);
  const std::string tag =
      std::string("ablation_drop_") +
      (g == core::DropGranularity::kVectorWise ? "vec" : "elem") + "_p" +
      std::to_string(static_cast<int>(p * 100.0f + 0.5f)) + "_n" +
      std::to_string(w.train_n) + "_e" + std::to_string(w.epochs);
  models::train_or_load(*model, tag, [&] {
    models::TrainConfig tc;
    tc.epochs = w.epochs;
    tc.seed = 6000;
    models::train_classifier(*model, task.train, tc);
  });
  // train_or_load hands back a deployed model (artifact cache).
  model->set_training(false);
  return model;
}

}  // namespace

int main() {
  std::printf("=== §III-B — affine-dropout granularity & rate ablation "
              "===\n");
  const Workload w = image_workload();
  const ImageTask task = make_image_task(w);

  std::printf("%-14s %-8s %12s %18s\n", "granularity", "p", "clean acc",
              "acc@10% flips");
  CsvWriter csv(csv_output_dir() + "/ablation_dropout.csv",
                {"granularity", "p", "clean", "flip10"});
  for (core::DropGranularity g : {core::DropGranularity::kVectorWise,
                                  core::DropGranularity::kElementWise}) {
    for (float p : {0.1f, 0.3f, 0.5f}) {
      auto model = trained(task, w, p, g);
      serve::InferenceSession session(
          *model, serving_options(serve::TaskKind::kClassification, w,
                                  models::Variant::kProposed));
      const double clean = serve::accuracy(session, task.test);
      const double f10 =
          sweep_point(session, fault::FaultSpec::bitflips(0.10f), w.mc_runs,
                      [&](serve::InferenceSession& s) {
                        return serve::accuracy(s, task.test);
                      })
              .mean;
      std::printf("%-14s %-8.2f %12.4f %18.4f\n",
                  core::drop_granularity_name(g), p, clean, f10);
      csv.row(std::vector<std::string>{core::drop_granularity_name(g),
                                       std::to_string(p),
                                       std::to_string(clean),
                                       std::to_string(f10)});
    }
  }
  std::printf("(vector-wise needs a single RNG per layer in the IMC "
              "realization — the paper's deployment choice)\n");
  std::printf("csv: %s/ablation_dropout.csv\n", csv_output_dir().c_str());
  return 0;
}
