// Serving-layer overhead (google-benchmark): one uncertainty-aware
// predict() through serve::InferenceSession vs the raw batched MC forward
// it wraps. The session adds stream-context setup, softmax + moments
// aggregation and the (frozen, lock-free) pack-cache lookup — this bench
// keeps that overhead visible. items/sec counts stochastic samples
// (T × batch) per second, matching perf_mc_inference.cpp, so
// BM_SessionPredict* is directly comparable against BM_Mc*Batched.
// scripts/bench.sh captures the JSON as BENCH_serve.json.
#include <benchmark/benchmark.h>

#include "models/evaluate.h"
#include "models/lstm_forecaster.h"
#include "models/m5.h"
#include "models/resnet.h"
#include "models/unet.h"
#include "serve/session.h"
#include "tensor/random.h"

using namespace ripple;

namespace {

constexpr uint64_t kSeed = 0xABCD;

models::VariantConfig proposed() {
  return {.variant = models::Variant::kProposed};
}

serve::SessionOptions session_options(serve::TaskKind task, int t) {
  serve::SessionOptions opts;
  opts.task = task;
  opts.mc_samples = t;
  opts.seed = kSeed;
  return opts;
}

void BM_SessionPredictResNet(benchmark::State& state) {
  const int t = static_cast<int>(state.range(0));
  models::BinaryResNet model({.in_channels = 3, .classes = 10, .width = 12},
                             proposed());
  model.set_training(false);
  model.deploy();
  serve::InferenceSession session(
      model, session_options(serve::TaskKind::kClassification, t));
  Rng rng(1);
  Tensor x = Tensor::randn({1, 3, 16, 16}, rng);
  for (auto _ : state) {
    serve::Classification mc = session.classify(x);
    benchmark::DoNotOptimize(mc.mean_probs.data());
  }
  state.SetItemsProcessed(state.iterations() * t * x.dim(0));
}
BENCHMARK(BM_SessionPredictResNet)->Arg(4)->Arg(8)->Arg(16);

// Same model/shape via the deprecated raw helper (no aggregation): the
// reference the session overhead is measured against.
void BM_RawMcForwardBatchedResNet(benchmark::State& state) {
  const int t = static_cast<int>(state.range(0));
  models::BinaryResNet model({.in_channels = 3, .classes = 10, .width = 12},
                             proposed());
  model.set_training(false);
  model.deploy();
  Rng rng(1);
  Tensor x = Tensor::randn({1, 3, 16, 16}, rng);
  for (auto _ : state) {
    Tensor y = models::mc_forward_batched(model, x, t, kSeed);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * t * x.dim(0));
}
BENCHMARK(BM_RawMcForwardBatchedResNet)->Arg(4)->Arg(8)->Arg(16);

void BM_SessionPredictM5(benchmark::State& state) {
  const int t = static_cast<int>(state.range(0));
  models::M5 model({.classes = 8, .width = 12, .input_length = 512},
                   proposed());
  model.set_training(false);
  model.deploy();
  serve::InferenceSession session(
      model, session_options(serve::TaskKind::kClassification, t));
  Rng rng(2);
  Tensor x = Tensor::randn({1, 1, 512}, rng);
  for (auto _ : state) {
    serve::Classification mc = session.classify(x);
    benchmark::DoNotOptimize(mc.mean_probs.data());
  }
  state.SetItemsProcessed(state.iterations() * t * x.dim(0));
}
BENCHMARK(BM_SessionPredictM5)->Arg(8);

void BM_SessionPredictLstm(benchmark::State& state) {
  const int t = static_cast<int>(state.range(0));
  models::LstmForecaster model({.hidden = 24, .window = 24}, proposed());
  model.set_training(false);
  model.deploy();
  serve::InferenceSession session(
      model, session_options(serve::TaskKind::kRegression, t));
  Rng rng(4);
  Tensor x = Tensor::randn({1, 24, 1}, rng);
  for (auto _ : state) {
    serve::Regression mc = session.regress(x);
    benchmark::DoNotOptimize(mc.mean.data());
  }
  state.SetItemsProcessed(state.iterations() * t * x.dim(0));
}
BENCHMARK(BM_SessionPredictLstm)->Arg(4)->Arg(8)->Arg(16);

void BM_SessionPredictUNet(benchmark::State& state) {
  const int t = static_cast<int>(state.range(0));
  models::UNet model({.base_channels = 8, .activation_bits = 4}, proposed());
  model.set_training(false);
  model.deploy();
  serve::InferenceSession session(
      model, session_options(serve::TaskKind::kSegmentation, t));
  Rng rng(5);
  Tensor x = Tensor::randn({1, 1, 32, 32}, rng);
  for (auto _ : state) {
    serve::Segmentation mc = session.segment(x);
    benchmark::DoNotOptimize(mc.mean_probs.data());
  }
  state.SetItemsProcessed(state.iterations() * t * x.dim(0));
}
BENCHMARK(BM_SessionPredictUNet)->Arg(8);

void BM_SessionPredictMany(benchmark::State& state) {
  // Micro-batching front door: 8 single-row requests coalesced into the
  // session's batch versus served one by one.
  const int t = static_cast<int>(state.range(0));
  models::BinaryResNet model({.in_channels = 3, .classes = 10, .width = 12},
                             proposed());
  model.set_training(false);
  model.deploy();
  serve::InferenceSession session(
      model, session_options(serve::TaskKind::kClassification, t));
  Rng rng(3);
  std::vector<Tensor> requests;
  for (int i = 0; i < 8; ++i)
    requests.push_back(Tensor::randn({1, 3, 16, 16}, rng));
  for (auto _ : state) {
    std::vector<serve::Prediction> out = session.predict_many(requests);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * t *
                          static_cast<int64_t>(requests.size()));
}
BENCHMARK(BM_SessionPredictMany)->Arg(8);

}  // namespace

BENCHMARK_MAIN();
